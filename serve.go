package wlpm

import (
	"context"

	"wlpm/internal/server"
)

// Serving façade: ServeEngine adapts a System to the serving
// subsystem's Engine interface (internal/server; fronted by
// cmd/wlserved and spoken to by the client package). Each tenant the
// server opens becomes one Session — with its own working-memory
// budget, admission policy and collection namespace — so remote
// tenants get exactly the isolation in-process callers get, and remote
// query results are byte-identical to in-process execution of the same
// plan DSL.

// ServeEngine exposes the system to the query server over the given
// table catalog: remote plans resolve scan(T) against it by name.
func (s *System) ServeEngine(catalog map[string]Collection) server.Engine {
	return &serveEngine{sys: s, lookup: CollectionLookup(catalog)}
}

type serveEngine struct {
	sys    *System
	lookup func(name string) (Collection, error)
}

func (e *serveEngine) OpenSession(tenant string, budget int64, failFast bool, bidSlack float64) (server.EngineSession, error) {
	opts := []SessionOption{WithTenant(tenant)}
	if budget > 0 {
		opts = append(opts, WithSessionBudget(budget))
	}
	if failFast {
		opts = append(opts, WithAdmission(AdmitFailFast))
	}
	if bidSlack > 0 {
		opts = append(opts, WithGrantBidding(bidSlack))
	}
	return &serveSession{eng: e, sess: e.sys.Session(opts...)}, nil
}

func (e *serveEngine) BrokerStats() server.BrokerStats {
	m := e.sys.mem
	return server.BrokerStats{
		Total:     m.Total(),
		InUse:     m.InUse(),
		HighWater: m.HighWater(),
		Waiting:   m.Waiting(),
	}
}

func (e *serveEngine) DeviceStats() Stats { return e.sys.Stats() }

type serveSession struct {
	eng  *serveEngine
	sess *Session
}

func (ss *serveSession) Query(dsl string) (server.EngineQuery, error) {
	q, err := ss.sess.ParseQuery(dsl, ss.eng.lookup)
	if err != nil {
		return nil, err
	}
	return &serveQuery{q: q}, nil
}

func (ss *serveSession) Close() error { return ss.sess.Close() }

type serveQuery struct{ q *Query }

func (sq *serveQuery) Explain() (*QueryExplain, error) { return sq.q.ExplainGranted() }

func (sq *serveQuery) Rows(ctx context.Context) (server.RowStream, error) {
	rows, err := sq.q.Rows(ctx)
	if err != nil {
		return nil, err
	}
	return rows, nil
}
