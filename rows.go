package wlpm

import (
	"context"
	"fmt"
	"io"
	"sync"

	"wlpm/internal/broker"
	"wlpm/internal/exec"
	"wlpm/internal/record"
)

// Rows is a streaming query result in the database/sql style: records
// are pulled incrementally from the compiled plan's Volcano iterators
// instead of being materialized into a caller collection. Blocking
// stages (sorts, joins, aggregations) still do their work when the
// cursor opens; the final stream above them never touches the device.
//
// A Rows holds its session's memory grant until Close. Always Close the
// cursor (defer is fine): Close tears the operator tree down, destroys
// any temporaries an aborted run left behind and releases the grant. If
// the cursor's context is cancelled the grant is released immediately —
// even before Close — so a stuck consumer cannot pin the broker's
// budget.
//
// Rows is safe for use by one goroutine at a time.
type Rows struct {
	mu     sync.Mutex
	ctx    context.Context
	ec     *exec.Ctx
	root   exec.Operator
	cur    *exec.Cursor // record-level view over the root's batches
	ex     *QueryExplain
	grant  *broker.Grant
	stop   func() bool // cancels the context watcher
	rec    []byte
	err    error
	done   bool
	closed bool
}

// Rows compiles the plan — the cost model prices it at the session's
// broker grant — executes its blocking stages, and returns a cursor over
// the result stream. The grant is acquired under the session's admission
// policy first (bidding sessions offer the broker every candidate budget
// the plan prices well at, and plan at whatever was granted); a
// cancelled ctx aborts both the wait for memory and the execution
// itself.
func (q *Query) Rows(ctx context.Context) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g, err := q.sess.acquireFor(ctx, q)
	if err != nil {
		return nil, err
	}
	r, err := q.openRows(ctx, g.Bytes(), g, exec.CompileOptions{})
	if err != nil {
		g.Release()
		return nil, err
	}
	return r, nil
}

// openRows compiles and opens the plan, returning a live cursor. The
// caller releases the grant if an error comes back.
func (q *Query) openRows(ctx context.Context, budget int64, grant *broker.Grant, opts exec.CompileOptions) (*Rows, error) {
	root, ex, ec, err := q.compile(budget, opts)
	if err != nil {
		return nil, err
	}
	if err := ec.Bind(ctx, root); err != nil {
		return nil, err
	}
	if err := root.Open(ctx, ec); err != nil {
		root.Close()    //nolint:errcheck // best-effort cleanup after failure
		ec.SweepTemps() //nolint:errcheck // best-effort cleanup after failure
		return nil, err
	}
	r := &Rows{ctx: ctx, ec: ec, root: root, cur: exec.NewCursor(root), ex: ex, grant: grant}
	if grant != nil {
		// Release the memory grant the moment the context dies, whether or
		// not the consumer gets around to Close (Release is idempotent).
		r.stop = context.AfterFunc(ctx, grant.Release)
	}
	return r, nil
}

// Next advances to the next record, reporting false at the end of the
// stream, on error, or once the cursor's context is cancelled. Err
// distinguishes the three.
func (r *Rows) Next() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.done || r.err != nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return false
	}
	// The mutex serializes Next/Scan/Close against each other, and the
	// cursor advance is the call's whole purpose — no other goroutine
	// legitimately contends while a fetch is in flight, and cancellation
	// cuts a blocked fetch loose via r.ctx, which Close does not need
	// r.mu to cancel.
	//lint:allow wlvet/lockblock cursor advance is the guarded operation itself; contenders are the same consumer's calls and ctx cancellation unblocks it
	rec, err := r.cur.Next(r.ctx)
	if err == io.EOF {
		r.done = true
		return false
	}
	if err != nil {
		r.err = err
		return false
	}
	r.rec = append(r.rec[:0], rec...)
	return true
}

// Scan copies the current record into dsts. Each destination is either a
// *uint64 receiving the next 8-byte attribute in order, or a single
// *[]byte receiving a copy of the whole record. Next must have returned
// true.
func (r *Rows) Scan(dsts ...any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("wlpm: Scan on closed Rows")
	}
	if len(r.rec) == 0 {
		return fmt.Errorf("wlpm: Scan called without a successful Next")
	}
	if len(dsts) == 1 {
		if p, ok := dsts[0].(*[]byte); ok {
			*p = append((*p)[:0], r.rec...)
			return nil
		}
	}
	if len(dsts)*record.AttrSize > len(r.rec) {
		return fmt.Errorf("wlpm: Scan of %d attributes from a %d-byte record", len(dsts), len(r.rec))
	}
	for i, d := range dsts {
		p, ok := d.(*uint64)
		if !ok {
			return fmt.Errorf("wlpm: Scan destination %d is %T, want *uint64 or a single *[]byte", i, d)
		}
		*p = record.Attr(r.rec, i)
	}
	return nil
}

// Record returns the current record. The slice is owned by the cursor
// and only valid until the next call to Next; copy to retain.
func (r *Rows) Record() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rec
}

// RecordSize is the byte width of the cursor's records.
func (r *Rows) RecordSize() int { return r.root.RecordSize() }

// Explain describes the compiled physical plan; after the stream has
// been consumed its choices also carry the actuals observed at run time.
func (r *Rows) Explain() *QueryExplain { return r.ex }

// Err returns the error that terminated the stream, if any (nil after a
// complete, uncancelled iteration).
func (r *Rows) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close tears down the operator tree, destroys any temporaries the run
// left behind (none after a clean run; spills and partitions after an
// abort) and releases the session's memory grant. Idempotent.
func (r *Rows) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.stop != nil {
		r.stop()
	}
	err := r.root.Close()
	if serr := r.ec.SweepTemps(); err == nil {
		err = serr
	}
	r.grant.Release()
	return err
}
