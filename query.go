package wlpm

import (
	"wlpm/internal/exec"
	"wlpm/internal/storage"
)

// Query-engine façade: the fluent builder over internal/exec. A Query is
// a logical plan; Run compiles it with the cost-model physical planner —
// which picks the write-limited sort and join variants (and places their
// intensity knobs) from the device λ, the per-stage memory share and the
// cardinality estimates of the internal/stats catalog (filter
// selectivities, group counts, join sizes and join order; collected
// automatically on first use, or explicitly with System.Collect) — and
// executes it as a pipeline. Use the *With variants to pin an algorithm
// instead.
//
//	q := sys.Query(dim).Join(sys.Query(fact)).
//	        Project(0, 1, 12, 13, 14, 15, 16, 17, 18, 19).
//	        GroupBy(3).OrderBy().Limit(10)
//	err := q.Run(out, 4<<20)

// Predicate compares one 8-byte attribute against a constant; see the
// comparison constants below.
type Predicate = exec.Predicate

// QueryExplain describes a compiled physical plan: the operator tree,
// the stage budget split, and each cost-model algorithm choice.
type QueryExplain = exec.Explain

// Comparison operators for Filter predicates.
const (
	CmpEq = exec.Eq
	CmpNe = exec.Ne
	CmpLt = exec.Lt
	CmpLe = exec.Le
	CmpGt = exec.Gt
	CmpGe = exec.Ge
)

// Query is a logical query plan under construction.
type Query struct {
	sys  *System
	plan *exec.Plan
}

// Query starts a plan with a scan of c.
func (s *System) Query(c Collection) *Query {
	return &Query{sys: s, plan: exec.Table(c)}
}

// ParseQuery parses the plan DSL of cmd/wlquery (see that command's
// documentation for the grammar), resolving table names via lookup.
func (s *System) ParseQuery(src string, lookup func(name string) (Collection, error)) (*Query, error) {
	p, err := exec.ParsePlan(src, func(name string) (storage.Collection, error) { return lookup(name) })
	if err != nil {
		return nil, err
	}
	return &Query{sys: s, plan: p}, nil
}

// Filter keeps records satisfying pred.
func (q *Query) Filter(pred Predicate) *Query {
	return &Query{sys: q.sys, plan: q.plan.Filter(pred)}
}

// Project keeps the chosen 8-byte attributes, in order.
func (q *Query) Project(attrs ...int) *Query {
	return &Query{sys: q.sys, plan: q.plan.Project(attrs...)}
}

// Join equi-joins q (the build side — put the smaller input here) with
// right on the key attributes; the planner picks the algorithm.
func (q *Query) Join(right *Query) *Query { return q.JoinWith(right, nil) }

// JoinWith is Join with a pinned algorithm. A nil right surfaces as a
// deferred error from Run/Explain, like every other construction error.
func (q *Query) JoinWith(right *Query, a JoinAlgorithm) *Query {
	var rp *exec.Plan
	if right != nil {
		rp = right.plan
	}
	return &Query{sys: q.sys, plan: q.plan.JoinWith(rp, a)}
}

// GroupBy groups by the key attribute and aggregates attr into the
// GroupAttr* result slots; the planner picks hash vs sort-based
// execution (see GroupHint) and the sort algorithm.
func (q *Query) GroupBy(attr int) *Query {
	return &Query{sys: q.sys, plan: q.plan.GroupBy(attr)}
}

// GroupByWith is GroupBy with a pinned sort algorithm.
func (q *Query) GroupByWith(attr int, a SortAlgorithm) *Query {
	return &Query{sys: q.sys, plan: q.plan.GroupByWith(attr, a)}
}

// GroupHint tells the planner how many distinct groups to expect from
// the next GroupBy, overriding the collected column statistics; a group
// count that fits the stage budget selects the in-memory hash
// aggregation. With statistics available (see System.Collect and
// auto-collection) the hint is optional, and an underestimated hint no
// longer fails the query — the hash aggregation spills to sorted runs
// and merges them, degrading to the sort-based plan's I/O profile.
func (q *Query) GroupHint(groups int) *Query {
	return &Query{sys: q.sys, plan: q.plan.GroupHint(groups)}
}

// OrderBy sorts by the record total order (key attribute first); the
// planner picks the algorithm and its write-intensity knob.
func (q *Query) OrderBy() *Query {
	return &Query{sys: q.sys, plan: q.plan.OrderBy()}
}

// OrderByWith is OrderBy with a pinned algorithm.
func (q *Query) OrderByWith(a SortAlgorithm) *Query {
	return &Query{sys: q.sys, plan: q.plan.OrderByWith(a)}
}

// Limit keeps the first n records.
func (q *Query) Limit(n int) *Query {
	return &Query{sys: q.sys, plan: q.plan.Limit(n)}
}

// ctx builds the execution context: the whole-plan memory budget that
// the engine splits across blocking stages, the system parallelism, and
// the statistics catalog the planner estimates cardinalities from.
func (q *Query) ctx(memoryBudget int64) *exec.Ctx {
	ctx := exec.NewCtx(q.sys.fac, memoryBudget, q.sys.par)
	ctx.Stats = q.sys.stats
	return ctx
}

// Run compiles the plan (cost model fills the open algorithm choices)
// and executes it as a pipeline, appending the result to out.
func (q *Query) Run(out Collection, memoryBudget int64) error {
	_, err := q.RunExplained(out, memoryBudget)
	return err
}

// RunExplained is Run returning the compiled plan's explanation, whose
// choices carry both the planner's estimates and the actual input rows
// observed while the plan ran — the estimate-vs-actual view that makes
// planner misestimates visible.
func (q *Query) RunExplained(out Collection, memoryBudget int64) (*QueryExplain, error) {
	ctx := q.ctx(memoryBudget)
	root, ex, err := exec.Compile(ctx, q.plan)
	if err != nil {
		return nil, err
	}
	if err := exec.Run(ctx, root, out); err != nil {
		return ex, err
	}
	return ex, nil
}

// RunMaterialized executes the plan with a materialization barrier after
// every operator — the naive composition the pipeline is measured
// against. Results are identical to Run; only the device traffic
// differs.
func (q *Query) RunMaterialized(out Collection, memoryBudget int64) error {
	ctx := q.ctx(memoryBudget)
	root, _, err := exec.CompileWith(ctx, q.plan, exec.CompileOptions{MaterializeEveryStep: true})
	if err != nil {
		return err
	}
	return exec.Run(ctx, root, out)
}

// Explain compiles the plan without running it and reports the physical
// operator tree and the planner's algorithm choices.
func (q *Query) Explain(memoryBudget int64) (*QueryExplain, error) {
	_, ex, err := exec.Compile(q.ctx(memoryBudget), q.plan)
	return ex, err
}
