package wlpm

import (
	"context"

	"wlpm/internal/broker"
	"wlpm/internal/exec"
	"wlpm/internal/storage"
)

// Query-engine façade: the fluent builder over internal/exec. A Query is
// a logical plan; Rows (or RunCtx) compiles it with the cost-model
// physical planner — which picks the write-limited sort and join
// variants (and places their intensity knobs) from the device λ, the
// per-stage share of the session's broker-granted memory and the
// cardinality estimates of the internal/stats catalog (filter
// selectivities, group counts, join sizes and join order; collected
// automatically on first use, or explicitly with System.Collect) — and
// executes it as a pipeline. Use the *With variants to pin an algorithm
// instead.
//
//	q := sess.Query(dim).Join(sess.Query(fact)).
//	        Project(0, 1, 12, 13, 14, 15, 16, 17, 18, 19).
//	        GroupBy(3).OrderBy().Limit(10)
//	rows, err := q.Rows(ctx)

// Predicate compares one 8-byte attribute against a constant; see the
// comparison constants below.
type Predicate = exec.Predicate

// QueryExplain describes a compiled physical plan: the operator tree,
// the stage budget split, and each cost-model algorithm choice.
type QueryExplain = exec.Explain

// Comparison operators for Filter predicates.
const (
	CmpEq = exec.Eq
	CmpNe = exec.Ne
	CmpLt = exec.Lt
	CmpLe = exec.Le
	CmpGt = exec.Gt
	CmpGe = exec.Ge
)

// Query is a logical query plan under construction. A query built from
// a Session (or from System.Query, which binds the system's implicit
// default session) executes through the memory broker: Rows and RunCtx
// request the session's grant before planning.
type Query struct {
	sys  *System
	sess *Session
	plan *exec.Plan
}

// Query starts a plan with a scan of c, bound to the system's implicit
// default session (per-query grant of a quarter of the system budget,
// blocking admission). Use Session.Query to control budget and
// admission policy.
func (s *System) Query(c Collection) *Query {
	return &Query{sys: s, sess: s.def, plan: exec.Table(c)}
}

// ParseQuery parses the plan DSL of cmd/wlquery (see that command's
// documentation for the grammar), resolving table names via lookup. The
// query is bound to the system's implicit default session.
func (s *System) ParseQuery(src string, lookup func(name string) (Collection, error)) (*Query, error) {
	p, err := exec.ParsePlan(src, func(name string) (storage.Collection, error) { return lookup(name) })
	if err != nil {
		return nil, err
	}
	return &Query{sys: s, sess: s.def, plan: p}, nil
}

// derive continues the fluent chain with a new plan node, preserving the
// session binding.
func (q *Query) derive(p *exec.Plan) *Query {
	return &Query{sys: q.sys, sess: q.sess, plan: p}
}

// Filter keeps records satisfying pred.
func (q *Query) Filter(pred Predicate) *Query {
	return q.derive(q.plan.Filter(pred))
}

// Project keeps the chosen 8-byte attributes, in order.
func (q *Query) Project(attrs ...int) *Query {
	return q.derive(q.plan.Project(attrs...))
}

// Join equi-joins q (the build side — put the smaller input here) with
// right on the key attributes; the planner picks the algorithm.
func (q *Query) Join(right *Query) *Query { return q.JoinWith(right, nil) }

// JoinWith is Join with a pinned algorithm. A nil right surfaces as a
// deferred error from Run/Explain, like every other construction error.
func (q *Query) JoinWith(right *Query, a JoinAlgorithm) *Query {
	var rp *exec.Plan
	if right != nil {
		rp = right.plan
	}
	return q.derive(q.plan.JoinWith(rp, a))
}

// GroupBy groups by the key attribute and aggregates attr into the
// GroupAttr* result slots; the planner picks hash vs sort-based
// execution (see GroupHint) and the sort algorithm.
func (q *Query) GroupBy(attr int) *Query {
	return q.derive(q.plan.GroupBy(attr))
}

// GroupByWith is GroupBy with a pinned sort algorithm.
func (q *Query) GroupByWith(attr int, a SortAlgorithm) *Query {
	return q.derive(q.plan.GroupByWith(attr, a))
}

// GroupHint tells the planner how many distinct groups to expect from
// the next GroupBy, overriding the collected column statistics; a group
// count that fits the stage budget selects the in-memory hash
// aggregation. With statistics available (see System.Collect and
// auto-collection) the hint is optional, and an underestimated hint no
// longer fails the query — the hash aggregation spills to sorted runs
// and merges them, degrading to the sort-based plan's I/O profile.
func (q *Query) GroupHint(groups int) *Query {
	return q.derive(q.plan.GroupHint(groups))
}

// OrderBy sorts by the record total order (key attribute first); the
// planner picks the algorithm and its write-intensity knob.
func (q *Query) OrderBy() *Query {
	return q.derive(q.plan.OrderBy())
}

// OrderByWith is OrderBy with a pinned algorithm.
func (q *Query) OrderByWith(a SortAlgorithm) *Query {
	return q.derive(q.plan.OrderByWith(a))
}

// Limit keeps the first n records.
func (q *Query) Limit(n int) *Query {
	return q.derive(q.plan.Limit(n))
}

// compile builds the execution context — the plan memory budget the
// engine splits across blocking stages, the system parallelism, the
// statistics catalog — and compiles the plan with the physical planner.
func (q *Query) compile(memoryBudget int64, opts exec.CompileOptions) (exec.Operator, *QueryExplain, *exec.Ctx, error) {
	ec := exec.NewCtx(q.sys.fac, memoryBudget, q.sys.par)
	ec.BatchSize = q.sys.batch
	ec.Stats = q.sys.stats
	root, ex, err := exec.CompileWith(ec, q.plan, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return root, ex, ec, nil
}

// bidCandidates prices the plan at descending fractions of the session
// budget (full, 1/2, 1/4, 1/8) with the planner's budget allocator and
// returns the candidates whose predicted cost stays within slack × the
// full-budget prediction, descending — the bid handed to
// broker.AcquireBest. Pricing walks cardinality estimates only; no
// operators are built. On any pricing failure the full budget alone is
// returned and admission degrades to the fixed grant.
func (q *Query) bidCandidates(full int64, slack float64) []int64 {
	fracs := []int64{full, full / 2, full / 4, full / 8}
	budgets := fracs[:1]
	for _, b := range fracs[1:] {
		if b > 0 {
			budgets = append(budgets, b)
		}
	}
	ec := exec.NewCtx(q.sys.fac, full, q.sys.par)
	ec.Stats = q.sys.stats
	costs, err := exec.PlanCosts(ec, q.plan, budgets)
	if err != nil {
		return []int64{full}
	}
	cands := []int64{full}
	for i := 1; i < len(budgets); i++ {
		if costs[i] <= slack*costs[0] {
			cands = append(cands, budgets[i])
		}
	}
	return cands
}

// repricer returns the broker callback that re-prices this query's
// queued bid at the budget actually free (see broker.Repricer): when the
// plan's predicted cost at the free budget stays within slack × the
// full-budget prediction, the free budget becomes the bid, so the query
// admits at today's right size instead of waiting for a static
// candidate to fit. Declining (nil) keeps the static candidate list.
func (q *Query) repricer(full int64, slack float64) broker.Repricer {
	return func(free int64) []int64 {
		if free <= 0 || free >= full {
			return nil // the static candidates already cover this regime
		}
		ec := exec.NewCtx(q.sys.fac, full, q.sys.par)
		ec.Stats = q.sys.stats
		costs, err := exec.PlanCosts(ec, q.plan, []int64{full, free})
		if err != nil {
			return nil
		}
		if costs[1] <= slack*costs[0] {
			return []int64{free}
		}
		return nil
	}
}

// runInto compiles the plan at the given budget and executes it under
// ctx, appending the result to out (blocking roots emit directly). The
// grant, when non-nil, is released on return.
func (q *Query) runInto(ctx context.Context, out Collection, memoryBudget int64, grant *broker.Grant, opts exec.CompileOptions) (*QueryExplain, error) {
	defer grant.Release()
	root, ex, ec, err := q.compile(memoryBudget, opts)
	if err != nil {
		return nil, err
	}
	if err := exec.RunCtx(ctx, ec, root, out); err != nil {
		return ex, err
	}
	return ex, nil
}

// RunCtx executes the plan under ctx with the session's broker-granted
// memory budget, appending the result to out, and returns the plan
// explanation (choices carry estimated and actual rows after the run).
// Cancellation aborts the run mid-operator, destroys its temporaries and
// releases the grant. Prefer Rows when the caller wants to stream the
// result instead of materializing it.
func (q *Query) RunCtx(ctx context.Context, out Collection) (*QueryExplain, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g, err := q.sess.acquireFor(ctx, q)
	if err != nil {
		return nil, err
	}
	return q.runInto(ctx, out, g.Bytes(), g, exec.CompileOptions{})
}

// Run compiles the plan (cost model fills the open algorithm choices)
// and executes it as a pipeline, appending the result to out.
//
// Deprecated: the fixed caller budget bypasses the memory broker and the
// call cannot be cancelled. Use Rows (streaming) or RunCtx
// (materializing) on a session-bound query.
func (q *Query) Run(out Collection, memoryBudget int64) error {
	_, err := q.RunExplained(out, memoryBudget)
	return err
}

// RunExplained is Run returning the compiled plan's explanation, whose
// choices carry both the planner's estimates and the actual input rows
// observed while the plan ran — the estimate-vs-actual view that makes
// planner misestimates visible.
//
// Deprecated: see Run; use RunCtx, which returns the same explanation.
func (q *Query) RunExplained(out Collection, memoryBudget int64) (*QueryExplain, error) {
	//lint:allow wlvet/ctxparam deprecated pre-context compat shim; RunExplainedCtx is the real API
	return q.runInto(context.Background(), out, memoryBudget, nil, exec.CompileOptions{})
}

// RunMaterialized executes the plan with a materialization barrier after
// every operator — the naive composition the pipeline is measured
// against. Results are identical to Run; only the device traffic
// differs.
//
// Deprecated: the fixed caller budget bypasses the memory broker. Use
// RunMaterializedCtx.
func (q *Query) RunMaterialized(out Collection, memoryBudget int64) error {
	//lint:allow wlvet/ctxparam deprecated pre-context compat shim; RunMaterializedCtx is the real API
	_, err := q.runInto(context.Background(), out, memoryBudget, nil, exec.CompileOptions{MaterializeEveryStep: true})
	return err
}

// RunMaterializedCtx is RunCtx with a materialization barrier after
// every operator (the naive-composition baseline).
func (q *Query) RunMaterializedCtx(ctx context.Context, out Collection) error {
	if ctx == nil {
		ctx = context.Background()
	}
	g, err := q.sess.acquireFor(ctx, q)
	if err != nil {
		return err
	}
	_, err = q.runInto(ctx, out, g.Bytes(), g, exec.CompileOptions{MaterializeEveryStep: true})
	return err
}

// Explain compiles the plan without running it and reports the physical
// operator tree and the planner's algorithm choices at the given budget.
func (q *Query) Explain(memoryBudget int64) (*QueryExplain, error) {
	_, ex, _, err := q.compile(memoryBudget, exec.CompileOptions{})
	return ex, err
}

// ExplainGranted is Explain at the session's per-query grant size — the
// budget Rows and RunCtx will actually plan with.
func (q *Query) ExplainGranted() (*QueryExplain, error) {
	if q.sess == nil {
		return nil, ErrSessionClosed
	}
	return q.Explain(q.sess.Budget())
}
