package wlpm_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"wlpm"
)

// starQuerySetup loads the 3-table star schema (two dimensions over one
// key domain, one fact table) into a fresh system.
func starQuerySetup(t *testing.T, nDim, nFact, par int) (*wlpm.System, wlpm.Collection, wlpm.Collection, wlpm.Collection) {
	t.Helper()
	sys, err := wlpm.New(wlpm.WithCapacity(512<<20), wlpm.WithParallelism(par))
	if err != nil {
		t.Fatal(err)
	}
	dim1, err := sys.Create("dim1")
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sys.Create("fact")
	if err != nil {
		t.Fatal(err)
	}
	if err := wlpm.GenerateJoinInputs(nDim, nFact, 7, dim1.Append, fact.Append); err != nil {
		t.Fatal(err)
	}
	dim2, err := sys.Create("dim2")
	if err != nil {
		t.Fatal(err)
	}
	if err := wlpm.GenerateRecords(nDim, 13, dim2.Append); err != nil {
		t.Fatal(err)
	}
	for _, c := range []wlpm.Collection{dim1, dim2, fact} {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return sys, dim1, dim2, fact
}

func readAllBytes(t *testing.T, c wlpm.Collection) []byte {
	t.Helper()
	var buf bytes.Buffer
	it := c.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(rec)
	}
	return buf.Bytes()
}

// TestQueryFacadeStarJoin is the façade face of the acceptance
// criterion: a 3-table star join + group-by + order-by through
// wlpm.Query, byte-identical at P=1 and P=4, with the pipelined run
// writing strictly fewer cachelines than the materialize-every-step run.
func TestQueryFacadeStarJoin(t *testing.T) {
	const nDim, nFact = 300, 3000
	budget := int64(nFact * wlpm.RecordSize / 20)

	run := func(par int, materialized bool) ([]byte, uint64) {
		sys, dim1, dim2, fact := starQuerySetup(t, nDim, nFact, par)
		q := sys.Query(dim2).
			Join(sys.Query(dim1).Join(sys.Query(fact))).
			Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).
			GroupBy(3).
			OrderBy()
		out, err := sys.Create("result")
		if err != nil {
			t.Fatal(err)
		}
		sys.ResetStats()
		if materialized {
			err = q.RunMaterialized(out, budget)
		} else {
			err = q.Run(out, budget)
		}
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() == 0 {
			t.Fatal("star query produced no rows")
		}
		return readAllBytes(t, out), sys.Stats().Writes
	}

	serial, pipelinedWrites := run(1, false)
	parallel, _ := run(4, false)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("P=4 query output differs from P=1")
	}
	materialized, materializedWrites := run(1, true)
	if !bytes.Equal(serial, materialized) {
		t.Fatal("materialized query output differs from pipelined")
	}
	if pipelinedWrites >= materializedWrites {
		t.Fatalf("pipelined run wrote %d cachelines, materialized %d: want strictly fewer",
			pipelinedWrites, materializedWrites)
	}
}

func TestQueryExplainSurfacesChoices(t *testing.T) {
	sys, dim1, _, fact := starQuerySetup(t, 300, 3000, 1)
	q := sys.Query(dim1).Join(sys.Query(fact)).OrderBy()
	ex, err := q.Explain(int64(3000 * wlpm.RecordSize / 20))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stages != 2 {
		t.Errorf("explain stages = %d, want 2", ex.Stages)
	}
	if len(ex.Choices) != 2 {
		t.Fatalf("explain has %d choices, want 2", len(ex.Choices))
	}
	if ex.Lambda != 15 {
		t.Errorf("explain λ = %v, want the default device's 15", ex.Lambda)
	}
	s := ex.String()
	for _, want := range []string{"Join[", "OrderBy[", "choice"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain rendering misses %q:\n%s", want, s)
		}
	}
}

func TestParseQueryFacade(t *testing.T) {
	sys, dim1, _, fact := starQuerySetup(t, 200, 2000, 1)
	lookup := func(name string) (wlpm.Collection, error) {
		switch name {
		case "dim":
			return dim1, nil
		case "fact":
			return fact, nil
		}
		return nil, fmt.Errorf("no table %q", name)
	}
	q, err := sys.ParseQuery("scan(dim) | join(scan(fact)) | project(a0,a1,a12,a13,a14,a5,a16,a7,a18,a9) | groupby(a3) | orderby", lookup)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Create("result")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(out, int64(2000*wlpm.RecordSize/20)); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 200 {
		t.Fatalf("parsed query produced %d groups, want 200", out.Len())
	}
	if _, err := sys.ParseQuery("scan(nope) | orderby", lookup); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestQueryStatsAndSpillFacade exercises the statistics subsystem at the
// façade: auto-collected column statistics make GroupHint optional (the
// planner picks the hash aggregation from the key column's distinct
// count), a 10×-underestimated hint completes via the spill fallback
// instead of erroring, and RunExplained reports estimated next to actual
// rows.
func TestQueryStatsAndSpillFacade(t *testing.T) {
	const n, groups = 4000, 50
	setup := func(opts ...wlpm.Option) (*wlpm.System, wlpm.Collection) {
		sys, err := wlpm.New(append([]wlpm.Option{wlpm.WithCapacity(256 << 20)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		in, err := sys.Create("in")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			rec := wlpm.NewRecord(uint64(i % groups))
			wlpm.SetAttr(rec, 4, uint64(i))
			if err := in.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		return sys, in
	}

	run := func(sys *wlpm.System, q *wlpm.Query) ([]byte, *wlpm.QueryExplain) {
		out, err := sys.Create(fmt.Sprintf("out%d", sys.Stats().Reads))
		if err != nil {
			t.Fatal(err)
		}
		ex, err := q.RunExplained(out, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return readAllBytes(t, out), ex
	}

	// Ground truth: pinned sort-based group-by, statistics disabled.
	sysRef, inRef := setup(wlpm.WithAutoCollect(false))
	want, _ := run(sysRef, sysRef.Query(inRef).GroupByWith(4, wlpm.ExternalMergeSort()))

	// No hint: auto-collected statistics select the hash path.
	sys, in := setup()
	got, ex := run(sys, sys.Query(in).GroupBy(4))
	if len(ex.Choices) != 1 || ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("hintless query chose %+v, want HashAgg from statistics", ex.Choices)
	}
	if ex.Choices[0].ActualRows != n {
		t.Errorf("explain actual rows = %d, want %d", ex.Choices[0].ActualRows, n)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("statistics-planned output differs from the pinned sort-based plan")
	}
	if ts := sys.TableStats("in"); ts == nil || ts.Col(0).Distinct != groups {
		t.Errorf("auto-collected statistics missing or wrong: %+v", ts)
	}

	// A 10×-underestimated hint on a high-cardinality input: hash path,
	// must spill and still match the sort-based output byte for byte.
	const bigGroups = 2000
	sysSp, err := wlpm.New(wlpm.WithCapacity(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	inSp, err := sysSp.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := wlpm.NewRecord(uint64(i % bigGroups))
		wlpm.SetAttr(rec, 4, uint64(i))
		if err := inSp.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := inSp.Close(); err != nil {
		t.Fatal(err)
	}
	budget := int64(64 << 10)
	outSp, err := sysSp.Create("spill")
	if err != nil {
		t.Fatal(err)
	}
	exSp, err := sysSp.Query(inSp).GroupHint(bigGroups/10).GroupBy(4).RunExplained(outSp, budget)
	if err != nil {
		t.Fatalf("underestimated hint failed instead of spilling: %v", err)
	}
	if exSp.Choices[0].Algorithm != "HashAgg" || !exSp.Choices[0].Spilled {
		t.Fatalf("expected a spilled HashAgg, got %+v", exSp.Choices[0])
	}
	refSp, err := sysSp.Create("spill.ref")
	if err != nil {
		t.Fatal(err)
	}
	if err := sysSp.Query(inSp).GroupByWith(4, wlpm.ExternalMergeSort()).Run(refSp, budget); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readAllBytes(t, outSp), readAllBytes(t, refSp)) {
		t.Fatal("spilled façade output differs from the sort-based plan")
	}
}

// TestQueryFilterPushesNoWrites asserts the streaming property at the
// façade: a filter+project pipeline only writes the result.
func TestQueryFilterPushesNoWrites(t *testing.T) {
	sys, err := wlpm.New(wlpm.WithCapacity(128 << 20))
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	if err := wlpm.GenerateRecords(n, 3, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := sys.CreateSized("out", 2*8)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	q := sys.Query(in).
		Filter(wlpm.Predicate{Attr: 0, Op: wlpm.CmpLt, Value: n / 2}).
		Project(0, 3)
	if err := q.Run(out, 64<<10); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if out.Len() != n/2 {
		t.Fatalf("filter kept %d records, want %d", out.Len(), n/2)
	}
	// The only writes are the result's own cachelines (16 B records):
	// allow block-flush rounding but nothing near a full materialization.
	resultLines := uint64(out.Len()*16)/64 + 64
	if st.Writes > resultLines*2 {
		t.Errorf("streaming pipeline wrote %d cachelines, result needs ~%d", st.Writes, resultLines)
	}
}
