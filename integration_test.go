package wlpm_test

import (
	"io"
	"testing"

	"wlpm"
)

// A full query pipeline across modules and backends: generate → sort the
// dimension (write-limited) → join with the fact input (lazy) → group the
// result by key (write-limited aggregation). Every stage runs on the same
// simulated device, so the test also asserts the end-to-end write budget
// stays below the symmetric-I/O pipeline's.
func TestQueryPipelineAcrossBackends(t *testing.T) {
	const (
		nDim  = 800
		nFact = 8000
	)
	for _, backend := range wlpm.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			pipeline := func(sortAlg wlpm.SortAlgorithm, joinAlg wlpm.JoinAlgorithm) (uint64, int) {
				sys, err := wlpm.New(wlpm.WithCapacity(512<<20), wlpm.WithBackend(backend))
				if err != nil {
					t.Fatal(err)
				}
				dim, err := sys.Create("dim")
				if err != nil {
					t.Fatal(err)
				}
				fact, err := sys.Create("fact")
				if err != nil {
					t.Fatal(err)
				}
				if err := wlpm.GenerateJoinInputs(nDim, nFact, 7, dim.Append, fact.Append); err != nil {
					t.Fatal(err)
				}
				if err := dim.Close(); err != nil {
					t.Fatal(err)
				}
				if err := fact.Close(); err != nil {
					t.Fatal(err)
				}

				budget := int64(nDim * wlpm.RecordSize / 10)
				sys.ResetStats()

				sortedDim, err := sys.Create("dim.sorted")
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Sort(sortAlg, dim, sortedDim, budget); err != nil {
					t.Fatal(err)
				}

				joined, err := sys.Create("joined") // projected 80 B results
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Join(joinAlg, sortedDim, fact, joined, budget); err != nil {
					t.Fatal(err)
				}

				rollup, err := sys.Create("rollup")
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.GroupBy(sortAlg, joined, 1, rollup, budget); err != nil {
					t.Fatal(err)
				}

				// Correctness: every dimension key appears with the join
				// fan-out as its count.
				if rollup.Len() != nDim {
					t.Fatalf("%d groups, want %d", rollup.Len(), nDim)
				}
				it := rollup.Scan()
				defer it.Close()
				for {
					rec, err := it.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					if got := wlpm.Attr(rec, wlpm.GroupAttrCount); got != nFact/nDim {
						t.Fatalf("group %d count %d, want %d", wlpm.Attr(rec, wlpm.GroupAttrKey), got, nFact/nDim)
					}
				}
				return sys.Stats().Writes, rollup.Len()
			}

			wlWrites, _ := pipeline(wlpm.SegmentSort(0.2), wlpm.LazyHashJoin())
			symWrites, _ := pipeline(wlpm.ExternalMergeSort(), wlpm.HashJoin())
			if wlWrites >= symWrites {
				t.Errorf("write-limited pipeline wrote %d lines, symmetric %d — no end-to-end savings", wlWrites, symWrites)
			}
		})
	}
}
