package wlpm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- helpers ---

func newTestSystem(t testing.TB, opts ...Option) *System {
	t.Helper()
	sys, err := New(append([]Option{WithCapacity(256 << 20)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// loadStarTables loads the pipeline workload's inputs: two dimension
// tables over one key domain and a fact table with matches per key.
func loadStarTables(t testing.TB, sys *System, nDim, nFact int, tag string) (dim1, dim2, fact Collection) {
	t.Helper()
	create := func(name string) Collection {
		c, err := sys.Create(name + tag)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	dim1, fact = create("dim1"), create("fact")
	if err := GenerateJoinInputs(nDim, nFact, 7, dim1.Append, fact.Append); err != nil {
		t.Fatal(err)
	}
	dim2 = create("dim2")
	if err := GenerateRecords(nDim, 13, dim2.Append); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Collection{dim1, dim2, fact} {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dim1, dim2, fact
}

// starQuery is the pipeline workload of the bench harness: a 3-table
// star join projected back to the benchmark schema, grouped and ordered.
// Algorithms are pinned so concurrent and serial runs are bit-for-bit
// comparable regardless of planner statistics.
func starQuery(sess *Session, dim1, dim2, fact Collection) *Query {
	inner := sess.Query(dim1).JoinWith(sess.Query(fact), GraceJoin())
	star := sess.Query(dim2).JoinWith(inner, GraceJoin())
	return star.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).
		GroupByWith(3, ExternalMergeSort()).
		OrderByWith(ExternalMergeSort())
}

func collectRows(t testing.TB, rows *Rows) []byte {
	t.Helper()
	var buf bytes.Buffer
	for rows.Next() {
		buf.Write(rows.Record())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// --- acceptance: concurrent sessions under one budget ---

// TestConcurrentSessionsRespectBudget is the PR's acceptance scenario:
// two sessions run the pipeline workload concurrently on one System,
// the broker's high-water mark never exceeds the System-wide budget,
// and every concurrent result is byte-identical to a serial run.
func TestConcurrentSessionsRespectBudget(t *testing.T) {
	const nDim, nFact, iters = 120, 1200, 3
	perQuery := int64(nFact * RecordSize / 20)
	sys := newTestSystem(t, WithMemoryBudget(2*perQuery))
	dim1, dim2, fact := loadStarTables(t, sys, nDim, nFact, "")

	// Serial reference.
	ref := collectRows(t, mustRows(t, starQuery(sys.Session(WithSessionBudget(perQuery)), dim1, dim2, fact)))
	if len(ref) == 0 {
		t.Fatal("empty reference result")
	}

	// Both sessions hold their first cursor open at the same time (the
	// barrier guarantees real overlap), so the broker's high-water mark
	// deterministically reaches the two-grant level.
	var openBarrier sync.WaitGroup
	openBarrier.Add(2)
	var wg sync.WaitGroup
	errs := make(chan error, 2*iters)
	for s := 0; s < 2; s++ {
		sess := sys.Session(WithSessionBudget(perQuery))
		wg.Add(1)
		go func(sess *Session, s int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rows, err := starQuery(sess, dim1, dim2, fact).Rows(context.Background())
				if err != nil {
					if i == 0 {
						openBarrier.Done() // never strand the peer at the barrier
					}
					errs <- fmt.Errorf("session %d iter %d: %w", s, i, err)
					return
				}
				if i == 0 {
					openBarrier.Done()
					openBarrier.Wait()
				}
				var buf bytes.Buffer
				for rows.Next() {
					buf.Write(rows.Record())
				}
				err = rows.Err()
				cerr := rows.Close()
				if err != nil || cerr != nil {
					errs <- fmt.Errorf("session %d iter %d: err=%v close=%v", s, i, err, cerr)
					return
				}
				if !bytes.Equal(buf.Bytes(), ref) {
					errs <- fmt.Errorf("session %d iter %d: result differs from serial run", s, i)
					return
				}
			}
		}(sess, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if hw, total := sys.mem.HighWater(), sys.mem.Total(); hw > total {
		t.Fatalf("broker high water %d B exceeds the system budget %d B", hw, total)
	}
	if hw := sys.mem.HighWater(); hw < 2*perQuery {
		t.Fatalf("high water %d B: the two sessions never actually ran concurrently (want %d)", hw, 2*perQuery)
	}
	if inUse := sys.MemoryInUse(); inUse != 0 {
		t.Fatalf("%d B still granted after all cursors closed", inUse)
	}
}

func mustRows(t testing.TB, q *Query) *Rows {
	t.Helper()
	rows, err := q.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// --- acceptance: cancellation releases everything ---

// pollCountCtx counts cancellation polls (calibration).
type pollCountCtx struct {
	context.Context
	calls atomic.Int64
}

func (c *pollCountCtx) Err() error {
	c.calls.Add(1)
	return c.Context.Err()
}

// cancelAfterCtx flips to Canceled from the n-th poll onwards.
type cancelAfterCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *cancelAfterCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestCancelledQueryReleasesGrantAndLeaksNothing cancels the pipeline
// workload mid-run and asserts the three leak-freedom properties of the
// acceptance criteria: the broker grant is released, no temp collections
// survive, and no goroutines linger.
func TestCancelledQueryReleasesGrantAndLeaksNothing(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			sys := newTestSystem(t, WithParallelism(par))
			dim1, dim2, fact := loadStarTables(t, sys, 200, 2000, "")
			sess := sys.Session()

			// Calibrate the poll count of a clean run.
			calib := &pollCountCtx{Context: context.Background()}
			rows, err := starQuery(sess, dim1, dim2, fact).Rows(calib)
			if err != nil {
				t.Fatal(err)
			}
			collectRows(t, rows)
			total := calib.calls.Load()
			if total < 4 {
				t.Fatalf("only %d cancellation polls; workload too small to steer", total)
			}

			base := runtime.NumGoroutine()
			for _, frac := range []float64{0, 0.3, 0.7} {
				ctx := &cancelAfterCtx{Context: context.Background()}
				ctx.remaining.Store(int64(float64(total) * frac))
				rows, err := starQuery(sess, dim1, dim2, fact).Rows(ctx)
				if err == nil {
					for rows.Next() {
					}
					err = rows.Err()
					if cerr := rows.Close(); cerr != nil {
						t.Fatalf("Close after cancel: %v", cerr)
					}
					if live := rows.ec.LiveTemps(); live != 0 {
						t.Fatalf("cancel at %.0f%%: %d temp collections leaked after Close", frac*100, live)
					}
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at %.0f%%: err = %v, want context.Canceled", frac*100, err)
				}
				if inUse := sys.MemoryInUse(); inUse != 0 {
					t.Fatalf("cancel at %.0f%%: %d B still granted", frac*100, inUse)
				}
				waitGoroutineBaseline(t, base)
			}
		})
	}
}

func waitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelReleasesGrantWithoutClose: the context watcher alone must
// return the grant to the broker, even before the consumer calls Close.
func TestCancelReleasesGrantWithoutClose(t *testing.T) {
	sys := newTestSystem(t)
	dim1, dim2, fact := loadStarTables(t, sys, 50, 500, "")
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := starQuery(sys.Session(), dim1, dim2, fact).Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sys.MemoryInUse() == 0 {
		t.Fatal("no grant held by an open cursor")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for sys.MemoryInUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d B still granted after context cancellation", sys.MemoryInUse())
		}
		time.Sleep(time.Millisecond)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}
}

// --- cursor semantics ---

func TestRowsStreamsSameResultAsRun(t *testing.T) {
	sys := newTestSystem(t)
	dim1, dim2, fact := loadStarTables(t, sys, 100, 1000, "")

	out, err := sys.CreateSized("ref", RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	q := starQuery(sys.Session(), dim1, dim2, fact)
	if _, err := q.RunCtx(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	it := out.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err != nil {
			break
		}
		want.Write(rec)
	}

	rows := mustRows(t, starQuery(sys.Session(), dim1, dim2, fact))
	if rows.RecordSize() != RecordSize {
		t.Fatalf("RecordSize = %d, want %d", rows.RecordSize(), RecordSize)
	}
	if rows.Explain() == nil || rows.Explain().Stages == 0 {
		t.Fatal("cursor carries no explanation")
	}
	n := 0
	var got bytes.Buffer
	for rows.Next() {
		var key uint64
		var rec []byte
		if err := rows.Scan(&rec); err != nil {
			t.Fatal(err)
		}
		if err := rows.Scan(&key); err != nil {
			t.Fatal(err)
		}
		if Key(rec) != key {
			t.Fatalf("Scan attribute %d disagrees with record key %d", key, Key(rec))
		}
		got.Write(rec)
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if n == 0 || !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("cursor stream (%d records) differs from RunCtx output", n)
	}
	if sys.MemoryInUse() != 0 {
		t.Fatalf("%d B still granted", sys.MemoryInUse())
	}
}

func TestScanValidation(t *testing.T) {
	sys := newTestSystem(t)
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(10, 42, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	rows := mustRows(t, sys.Query(in))
	if err := rows.Scan(new(uint64)); err == nil {
		t.Fatal("Scan before Next succeeded")
	}
	if !rows.Next() {
		t.Fatal("Next = false on non-empty input")
	}
	var a [10]uint64
	if err := rows.Scan(&a[0], &a[1], &a[2], &a[3], &a[4], &a[5], &a[6], &a[7], &a[8], &a[9]); err != nil {
		t.Fatal(err)
	}
	if err := rows.Scan(new(uint64), new(string)); err == nil {
		t.Fatal("Scan into *string succeeded")
	}
	var eleven [11]*uint64
	for i := range eleven {
		eleven[i] = new(uint64)
	}
	if err := rows.Scan(eleven[0], eleven[1], eleven[2], eleven[3], eleven[4], eleven[5], eleven[6], eleven[7], eleven[8], eleven[9], eleven[10]); err == nil {
		t.Fatal("Scan of 11 attributes from a 10-attribute record succeeded")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Scan(new(uint64)); err == nil {
		t.Fatal("Scan after Close succeeded")
	}
}

// --- admission policies and session lifecycle ---

func TestAdmissionFailFast(t *testing.T) {
	sys := newTestSystem(t, WithMemoryBudget(1<<20))
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(100, 42, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	hog := sys.Session(WithSessionBudget(sys.MemoryBudget()))
	rows := mustRows(t, hog.Query(in))
	defer rows.Close()

	fast := sys.Session(WithAdmission(AdmitFailFast))
	if _, err := fast.Query(in).Rows(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission", err)
	}

	// A blocking session queues and proceeds once the hog closes.
	done := make(chan error, 1)
	go func() {
		r, err := sys.Session().Query(in).Rows(context.Background())
		if err == nil {
			err = r.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blocking query finished while the budget was held (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking query never admitted after release")
	}
}

func TestSessionClose(t *testing.T) {
	sys := newTestSystem(t)
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(10, 42, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	sess := sys.Session()
	q := sess.Query(in)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Rows(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Query(in).RunCtx(context.Background(), nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("RunCtx err = %v, want ErrSessionClosed", err)
	}
}

func TestQueryDeadline(t *testing.T) {
	sys := newTestSystem(t)
	dim1, dim2, fact := loadStarTables(t, sys, 200, 2000, "")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := starQuery(sys.Session(), dim1, dim2, fact).Rows(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sys.MemoryInUse() != 0 {
		t.Fatalf("%d B granted after deadline failure", sys.MemoryInUse())
	}
}

// --- grant bidding ---

// TestGrantBiddingRunsInsteadOfQueueing is the bidding acceptance
// scenario: while a hog pins three quarters of the System budget, a
// fail-fast session demanding its full grant is refused — but the same
// session with bidding enabled prices the plan at smaller candidate
// budgets, is admitted at one that fits the free quarter, and completes
// with the correct result.
func TestGrantBiddingRunsInsteadOfQueueing(t *testing.T) {
	const total = int64(1 << 20)
	sys := newTestSystem(t, WithMemoryBudget(total))
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(500, 42, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference result with the budget free.
	ref := collectRows(t, mustRows(t, sys.Session().Query(in).OrderBy()))

	hog := sys.Session(WithSessionBudget(3 * total / 4))
	hogRows := mustRows(t, hog.Query(in))
	defer hogRows.Close()

	// Fixed grant: the full session budget does not fit the free quarter.
	fixed := sys.Session(WithSessionBudget(total/2), WithAdmission(AdmitFailFast))
	if _, err := fixed.Query(in).OrderBy().Rows(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("fixed grant err = %v, want ErrAdmission", err)
	}

	// Bidding: the plan prices nearly identically at total/4, so the
	// session bids down and is admitted immediately.
	bidding := sys.Session(WithSessionBudget(total/2), WithAdmission(AdmitFailFast), WithGrantBidding(3))
	rows, err := bidding.Query(in).OrderBy().Rows(context.Background())
	if err != nil {
		t.Fatalf("bidding session refused: %v", err)
	}
	if granted := sys.MemoryInUse() - 3*total/4; granted <= 0 || granted > total/4 {
		t.Errorf("bid granted %d B, want a candidate within the free %d B", granted, total/4)
	}
	if got := collectRows(t, rows); !bytes.Equal(got, ref) {
		t.Error("bidding session's result differs from the reference")
	}
	if err := hogRows.Close(); err != nil {
		t.Fatal(err)
	}
	if use := sys.MemoryInUse(); use != 0 {
		t.Fatalf("%d B still granted after all cursors closed", use)
	}
}

// TestGrantBiddingKeepsFullGrantWhenFree: with the budget uncontended a
// bidding session still plans at its full grant.
func TestGrantBiddingKeepsFullGrantWhenFree(t *testing.T) {
	sys := newTestSystem(t, WithMemoryBudget(1<<20))
	in, err := sys.Create("in")
	if err != nil {
		t.Fatal(err)
	}
	if err := GenerateRecords(200, 9, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	sess := sys.Session(WithSessionBudget(1<<19), WithGrantBidding(2))
	rows := mustRows(t, sess.Query(in).OrderBy())
	defer rows.Close()
	if got := rows.Explain().TotalBudget; got != 1<<19 {
		t.Errorf("uncontended bidding planned at %d B, want the full grant %d B", got, 1<<19)
	}
}
