// Package wlpm is a Go implementation of write-limited sorts and joins
// for persistent memory, reproducing Viglas, PVLDB 7(5), 2014.
//
// Persistent memory is byte-addressable but write-asymmetric: writes cost
// roughly an order of magnitude more than reads (λ = w/r > 1). The
// algorithms here trade expensive writes for cheap(er) reads, either by
// splitting the computation into a write-incurring and a write-limited
// part with a tunable "write intensity" knob (segment sort, hybrid sort,
// hybrid Grace-nested-loops join, segmented Grace join), or by processing
// lazily and materializing intermediate results only when the accumulated
// re-read penalty exceeds the write savings (lazy sort, lazy hash join).
//
// The package is a façade over the building blocks:
//
//   - a simulated persistent-memory device with per-cacheline read/write
//     accounting and latency charging (10 ns / 150 ns by default)
//   - four persistence-layer backends mirroring the paper's
//     implementation study: blocked memory, a PMFS-like byte-addressable
//     filesystem, a sector-based RAM disk, and doubling dynamic arrays
//   - the sort and join operators with their baselines
//   - the analytic cost model (Eqs. 1–11) and knob solvers
//   - the deferred-materialization runtime API (split/partition/filter/
//     merge over a control-flow graph)
//   - the experiment harness regenerating every figure and table of the
//     paper's evaluation
//
// # Quick start
//
//	sys, _ := wlpm.New(wlpm.WithCapacity(1 << 30))
//	in, _ := sys.Create("input")
//	_ = wlpm.GenerateRecords(1_000_000, 42, in.Append)
//	_ = in.Close()
//	out, _ := sys.Create("sorted")
//	_ = sys.SortCtx(ctx, wlpm.SegmentSort(0.2), in, out, 4<<20) // 4 MiB budget
//	fmt.Println(sys.Stats()) // cacheline writes vs reads
//
// # Concurrent use
//
// The query API is session-based: a System-wide memory broker
// (WithMemoryBudget) admits each query's working-memory grant before it
// is planned, queries stream through cancellable cursors, and grants are
// released on cursor Close or context cancellation — so any number of
// concurrent sessions share one System without oversubscribing its DRAM
// budget. The planner splits each grant across the plan's blocking
// stages by marginal benefit (the stage whose cost curve bends most gets
// the memory), and sessions can bid for right-sized grants instead of
// fixed ones (WithGrantBidding). See the README's "Memory planning" and
// "Concurrent use" sections and examples/concurrent.
//
//	sess := sys.Session(wlpm.WithSessionBudget(16 << 20))
//	rows, err := sess.Query(dim).Join(sess.Query(fact)).GroupBy(3).Rows(ctx)
//	...
//	defer rows.Close()
//	for rows.Next() {
//	    var key, count uint64
//	    _ = rows.Scan(&key, &count)
//	}
package wlpm

import (
	"context"
	"time"

	"wlpm/internal/aggregate"
	"wlpm/internal/algo"
	"wlpm/internal/bench"
	"wlpm/internal/broker"
	"wlpm/internal/core"
	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/stats"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// Re-exported building blocks. The aliases make the internal types usable
// by external importers through this package's namespace.
type (
	// Device is the simulated persistent-memory device.
	Device = pmem.Device
	// DeviceConfig parametrizes a Device.
	DeviceConfig = pmem.Config
	// Stats is a snapshot of device counters: cacheline reads/writes and
	// the simulated clock.
	Stats = pmem.Stats
	// WearSummary aggregates per-cacheline write counters.
	WearSummary = pmem.WearSummary
	// Collection is an append-only sequence of fixed-size records on the
	// persistence layer.
	Collection = storage.Collection
	// Iterator streams a collection's records.
	Iterator = storage.Iterator
	// Factory creates collections on one backend.
	Factory = storage.Factory
	// Env is the execution environment (factory + memory budget) of one
	// operator invocation.
	Env = algo.Env
	// SortAlgorithm is a persistent-memory sort operator.
	SortAlgorithm = sorts.Algorithm
	// JoinAlgorithm is a persistent-memory equi-join operator.
	JoinAlgorithm = joins.Algorithm
	// OpCtx is the deferred-materialization runtime of §3.1.
	OpCtx = core.OpCtx
	// Readable is the consumer-facing face of a possibly-deferred
	// collection.
	Readable = core.Readable
	// ExperimentConfig controls the paper-experiment harness.
	ExperimentConfig = bench.Config
	// Report is one regenerated table or figure.
	Report = bench.Report
	// TableStats is the collected column statistics of one collection:
	// per-attribute distinct-count estimates and equi-depth histograms
	// feeding the physical planner.
	TableStats = stats.Table
	// ColumnStats is the statistics of one 8-byte attribute.
	ColumnStats = stats.Column
)

// RecordSize is the benchmark schema's record size: ten 8-byte integer
// attributes; the key is attribute zero.
const RecordSize = record.Size

// Attribute slots of GroupBy result records.
const (
	GroupAttrKey   = aggregate.AttrGroupKey
	GroupAttrCount = aggregate.AttrCount
	GroupAttrSum   = aggregate.AttrSum
	GroupAttrMin   = aggregate.AttrMin
	GroupAttrMax   = aggregate.AttrMax
)

// Attr reads attribute i of a benchmark record.
func Attr(rec []byte, i int) uint64 { return record.Attr(rec, i) }

// SetAttr writes attribute i of a benchmark record.
func SetAttr(rec []byte, i int, v uint64) { record.SetAttr(rec, i, v) }

// Backends lists the four persistence-layer implementations.
var Backends = storage.Backends

// Option configures New.
type Option func(*sysConfig)

type sysConfig struct {
	capacity      int64
	backend       string
	blockSize     int
	readLatency   time.Duration
	writeLatency  time.Duration
	trackWear     bool
	spin          bool
	parallelism   int
	batchSize     int
	noAutoCollect bool
	memoryBudget  int64
}

// WithCapacity sets the device size in bytes (default 256 MiB).
func WithCapacity(bytes int64) Option { return func(c *sysConfig) { c.capacity = bytes } }

// WithBackend selects the persistence layer: "blocked" (default),
// "pmfs", "ramdisk" or "dynarray".
func WithBackend(name string) Option { return func(c *sysConfig) { c.backend = name } }

// WithBlockSize sets the DRAM↔PM exchange unit (default 1024 bytes).
func WithBlockSize(bytes int) Option { return func(c *sysConfig) { c.blockSize = bytes } }

// WithLatencies sets the charged per-cacheline latencies (defaults
// 10 ns read, 150 ns write: λ = 15).
func WithLatencies(read, write time.Duration) Option {
	return func(c *sysConfig) { c.readLatency, c.writeLatency = read, write }
}

// WithWearTracking enables the per-cacheline endurance counters.
func WithWearTracking() Option { return func(c *sysConfig) { c.trackWear = true } }

// WithSpin makes the device busy-wait for each charged latency, like the
// paper's idle-loop instrumentation, instead of only accounting it.
func WithSpin() Option { return func(c *sysConfig) { c.spin = true } }

// WithParallelism sets P, the number of workers operators fan independent
// partitions, runs and probe chunks out to (default 1, the paper's serial
// execution). Per-worker memory budgets sum to the operator's M and the
// output is byte-identical to the serial run at any P.
func WithParallelism(n int) Option { return func(c *sysConfig) { c.parallelism = n } }

// WithBatchSize sets the records-per-batch window of the vectorized
// executor (default 1024). Batch size changes only how many records move
// per operator pull: output and simulated device traffic are identical
// at any setting, and 1 degenerates to record-at-a-time execution.
func WithBatchSize(n int) Option { return func(c *sysConfig) { c.batchSize = n } }

// WithAutoCollect controls whether queries collect missing table
// statistics on first use (default true). With it disabled the planner
// only sees statistics gathered explicitly through System.Collect.
func WithAutoCollect(enabled bool) Option {
	return func(c *sysConfig) { c.noAutoCollect = !enabled }
}

// WithMemoryBudget sets the System-wide DRAM working-memory budget in
// bytes — the one pool of operator memory (heaps, hash tables, merge
// buffers) the memory broker rations among concurrent sessions. The
// default is a quarter of the device capacity. Session queries request
// grants against this budget before planning; the deprecated
// budget-taking façade methods (Sort, Run, …) bypass it.
func WithMemoryBudget(bytes int64) Option {
	return func(c *sysConfig) { c.memoryBudget = bytes }
}

// System bundles a device, a persistence layer, the statistics catalog
// feeding the query planner, and the memory broker that admits
// concurrent sessions against one shared DRAM budget.
type System struct {
	dev   *pmem.Device
	fac   storage.Factory
	par   int
	batch int
	stats *stats.Cache
	mem   *broker.Broker
	def   *Session // implicit session backing System.Query(...).Rows
}

// New opens a fresh system.
func New(opts ...Option) (*System, error) {
	cfg := sysConfig{
		capacity:  256 << 20,
		backend:   "blocked",
		blockSize: storage.DefaultBlockSize,
	}
	for _, o := range opts {
		o(&cfg)
	}
	dev, err := pmem.Open(pmem.Config{
		Capacity:     cfg.capacity,
		ReadLatency:  cfg.readLatency,
		WriteLatency: cfg.writeLatency,
		TrackWear:    cfg.trackWear,
		Spin:         cfg.spin,
	})
	if err != nil {
		return nil, err
	}
	fac, err := all.New(cfg.backend, dev, cfg.blockSize)
	if err != nil {
		return nil, err
	}
	total := cfg.memoryBudget
	if total <= 0 {
		total = cfg.capacity / 4
		if total < 1 {
			total = 1
		}
	}
	mem, err := broker.New(total)
	if err != nil {
		return nil, err
	}
	s := &System{dev: dev, fac: fac, par: cfg.parallelism, batch: cfg.batchSize, stats: stats.NewCache(!cfg.noAutoCollect), mem: mem}
	s.def = s.Session()
	return s, nil
}

// Device exposes the underlying simulated device.
func (s *System) Device() *Device { return s.dev }

// Factory exposes the persistence layer.
func (s *System) Factory() Factory { return s.fac }

// Backend reports the persistence layer's name.
func (s *System) Backend() string { return s.fac.Name() }

// Parallelism reports the configured worker count (0 and 1 both mean
// serial execution).
func (s *System) Parallelism() int { return s.par }

// BatchSize reports the configured records-per-batch window (0 means
// the executor default).
func (s *System) BatchSize() int { return s.batch }

// Create makes a collection of benchmark-schema records.
func (s *System) Create(name string) (Collection, error) {
	return s.fac.Create(name, RecordSize)
}

// CreateSized makes a collection with a custom record size.
func (s *System) CreateSized(name string, recordSize int) (Collection, error) {
	return s.fac.Create(name, recordSize)
}

// Sort runs a sort algorithm with the given DRAM budget in bytes.
//
// Deprecated: the fixed caller budget bypasses the memory broker, so
// concurrent callers can oversubscribe the system budget. Use SortCtx
// (cancellable, leak-swept) or a Session query with OrderBy.
func (s *System) Sort(a SortAlgorithm, in, out Collection, memoryBudget int64) error {
	//lint:allow wlvet/ctxparam deprecated pre-context compat shim; SortCtx is the real API
	return s.SortCtx(context.Background(), a, in, out, memoryBudget)
}

// SortCtx runs a sort algorithm under ctx with the given DRAM budget.
// Cancellation is polled between batches inside the algorithm; on any
// error — including cancellation — the temporaries (runs, intermediate
// inputs) the sort created are destroyed before returning.
func (s *System) SortCtx(ctx context.Context, a SortAlgorithm, in, out Collection, memoryBudget int64) error {
	env := s.NewEnv(memoryBudget).WithContext(ctx)
	if err := a.Sort(env, in, out); err != nil {
		env.SweepTemps() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return nil
}

// Join runs a join algorithm with the given DRAM budget in bytes. The
// output collection's record size must be the sum of the inputs'.
//
// Deprecated: the fixed caller budget bypasses the memory broker. Use
// JoinCtx or a Session query with Join.
func (s *System) Join(a JoinAlgorithm, left, right, out Collection, memoryBudget int64) error {
	//lint:allow wlvet/ctxparam deprecated pre-context compat shim; JoinCtx is the real API
	return s.JoinCtx(context.Background(), a, left, right, out, memoryBudget)
}

// JoinCtx runs a join algorithm under ctx with the given DRAM budget.
// Cancellation is polled between batches (partitioning, builds, probes);
// on any error the join's temporaries (partitions, intermediate inputs)
// are destroyed before returning.
func (s *System) JoinCtx(ctx context.Context, a JoinAlgorithm, left, right, out Collection, memoryBudget int64) error {
	env := s.NewEnv(memoryBudget).WithContext(ctx)
	if err := a.Join(env, left, right, out); err != nil {
		env.SweepTemps() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return nil
}

// NewEnv builds an operator environment for direct algorithm use,
// carrying the system's parallelism.
func (s *System) NewEnv(memoryBudget int64) *Env {
	return algo.NewParallelEnv(s.fac, memoryBudget, s.par)
}

// GroupBy runs the write-limited sort-based aggregation (an extension in
// the spirit of the paper's §6 outlook): in is grouped by key and
// attribute attr is aggregated; out receives one benchmark-schema record
// per group carrying count/sum/min/max in the GroupAttr* slots. The write
// profile is inherited from the chosen sort algorithm.
//
// Deprecated: the fixed caller budget bypasses the memory broker. Use
// GroupByCtx or a Session query with GroupBy.
func (s *System) GroupBy(a SortAlgorithm, in Collection, attr int, out Collection, memoryBudget int64) error {
	//lint:allow wlvet/ctxparam deprecated pre-context compat shim; GroupByCtx is the real API
	return s.GroupByCtx(context.Background(), a, in, attr, out, memoryBudget)
}

// GroupByCtx runs the sort-based aggregation under ctx with the given
// DRAM budget, polling cancellation and sweeping temporaries on error.
func (s *System) GroupByCtx(ctx context.Context, a SortAlgorithm, in Collection, attr int, out Collection, memoryBudget int64) error {
	env := s.NewEnv(memoryBudget).WithContext(ctx)
	if err := aggregate.GroupBy(env, a, in, attr, out); err != nil {
		env.SweepTemps() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return nil
}

// MemoryBudget is the System-wide DRAM budget the memory broker rations
// among sessions (WithMemoryBudget; default capacity/4).
func (s *System) MemoryBudget() int64 { return s.mem.Total() }

// MemoryInUse is the sum of the outstanding broker grants.
func (s *System) MemoryInUse() int64 { return s.mem.InUse() }

// Collect gathers column statistics for c in one read-only streaming
// pass — the ANALYZE of this engine — and caches them for the query
// planner: distinct-count sketches drive group-count and join-cardinality
// estimates (making GroupHint optional), equi-depth histograms drive
// filter selectivities, and multi-join plans are reordered
// smallest-build-first from the resulting estimates. Queries auto-collect
// missing statistics on first use unless WithAutoCollect(false) was set.
func (s *System) Collect(c Collection) (*TableStats, error) {
	return s.stats.Collect(c)
}

// TableStats returns the cached statistics of the named collection, or
// nil when none were collected.
func (s *System) TableStats(name string) *TableStats { return s.stats.Lookup(name) }

// InvalidateStats drops the cached statistics of the named collection.
// Call it (or Collect afresh) after destroying a collection and reusing
// its name: the cache validates entries by name and row count only, so a
// recreated table of the same length would otherwise keep serving the
// old distribution to the planner.
func (s *System) InvalidateStats(name string) { s.stats.Invalidate(name) }

// NewOpCtx builds a deferred-materialization runtime context (§3.1).
func (s *System) NewOpCtx(memoryBudget int64) *OpCtx {
	return core.NewOpCtx(s.NewEnv(memoryBudget))
}

// Stats snapshots the device counters.
func (s *System) Stats() Stats { return s.dev.Stats() }

// ResetStats zeroes the device counters.
func (s *System) ResetStats() { s.dev.ResetStats() }

// Wear summarizes device endurance exposure (requires WithWearTracking).
func (s *System) Wear() WearSummary { return s.dev.Wear() }

// EnergyPJ estimates the device energy spent so far in picojoules using
// PCM access energies (§4.3's power-asymmetry remark: write-limited
// algorithms gain more under energy metrics than under latency, because
// the write/read energy ratio is steeper).
func (s *System) EnergyPJ() float64 { return s.dev.Stats().EnergyPJ(0, 0) }

// --- Sort algorithm constructors ---

// ExternalMergeSort is ExMS, the symmetric-I/O baseline.
func ExternalMergeSort() SortAlgorithm { return sorts.NewExternalMergeSort() }

// SelectionSort is SelS, the write-minimal multi-pass selection sort.
func SelectionSort() SortAlgorithm { return sorts.NewSelectionSort() }

// SegmentSort is SegS with write intensity x ∈ [0, 1] (§2.1.1).
func SegmentSort(x float64) SortAlgorithm { return sorts.NewSegmentSort(x) }

// AutoSegmentSort is SegS with its intensity placed by the cost model
// (Eq. 4).
func AutoSegmentSort() SortAlgorithm { return sorts.NewAutoSegmentSort() }

// HybridSort is HybS with selection-region fraction x ∈ [0, 1] (§2.1.2).
func HybridSort(x float64) SortAlgorithm { return sorts.NewHybridSort(x) }

// LazySort is LaS (§2.1.3).
func LazySort() SortAlgorithm { return sorts.NewLazySort() }

// --- Join algorithm constructors ---

// NestedLoopsJoin is NLJ, the write-minimal read-intensive baseline.
func NestedLoopsJoin() JoinAlgorithm { return joins.NewNestedLoops() }

// HashJoin is HJ, the standard iterative hash join.
func HashJoin() JoinAlgorithm { return joins.NewHash() }

// GraceJoin is GJ, the partition-everything baseline.
func GraceJoin() JoinAlgorithm { return joins.NewGrace() }

// HybridJoin is HybJ with Grace fractions x (left) and y (right) (§2.2.1).
func HybridJoin(x, y float64) JoinAlgorithm { return joins.NewHybridGraceNL(x, y) }

// AutoHybridJoin is HybJ with its knobs placed by the cost model
// (Eqs. 7–8).
func AutoHybridJoin() JoinAlgorithm { return joins.NewAutoHybridGraceNL() }

// SegmentedGraceJoin is SegJ materializing the given fraction of
// partitions (§2.2.2).
func SegmentedGraceJoin(intensity float64) JoinAlgorithm {
	return joins.NewSegmentedGrace(intensity)
}

// LazyHashJoin is LaJ (§2.2.3).
func LazyHashJoin() JoinAlgorithm { return joins.NewLazyHash() }

// --- Workload generators ---

// GenerateRecords emits n benchmark records whose keys are a seeded
// permutation of 0..n-1 (the Wisconsin-style sort input).
func GenerateRecords(n int, seed uint64, emit func(rec []byte) error) error {
	return record.Generate(n, seed, record.Emit(emit))
}

// GenerateJoinInputs emits the join microbenchmark: nLeft unique-keyed
// records and nRight records with nRight/nLeft matches per left key.
func GenerateJoinInputs(nLeft, nRight int, seed uint64, emitLeft, emitRight func(rec []byte) error) error {
	return record.GenerateJoin(nLeft, nRight, seed, record.Emit(emitLeft), record.Emit(emitRight))
}

// Key returns a benchmark record's key attribute.
func Key(rec []byte) uint64 { return record.Key(rec) }

// NewRecord builds a benchmark record with key k and derived payload.
func NewRecord(k uint64) []byte { return record.New(k) }

// --- Cost model ---

// Lambda computes the write/read cost ratio of a latency pair.
func Lambda(read, write time.Duration) float64 {
	if read <= 0 {
		return 1
	}
	return float64(write) / float64(read)
}

// OptimalSegmentSortIntensity solves Eq. 4 for the response-time-minimal
// write intensity; sizes in buffers.
func OptimalSegmentSortIntensity(t, m, lambda float64) float64 {
	return cost.SegmentSortOptimalX(t, m, lambda)
}

// HybridJoinSaddle returns the Eq. 7–8 saddle point of the HybJ cost.
func HybridJoinSaddle(t, v, m, lambda float64) (x, y float64) {
	return cost.HybridJoinSaddle(t, v, m, lambda)
}

// KendallTau is the rank-correlation coefficient of the validation study.
func KendallTau(a, b []float64) float64 { return cost.KendallTau(a, b) }

// SegmentSortCost evaluates Eq. 1: the cost of SegS at write intensity x
// for an input of t buffers with m buffers of memory, in buffer-read
// units. x = 1 degenerates to external mergesort, x = 0 to selection
// sort.
func SegmentSortCost(x, t, m, lambda float64) float64 {
	return cost.SegmentSortCost(x, t, m, lambda)
}

// HybridJoinCost evaluates Eq. 6 for HybJ at intensities (x, y).
func HybridJoinCost(x, y, t, v, m, lambda float64) float64 {
	return cost.HybridJoinCost(x, y, t, v, m, lambda)
}

// GraceJoinCost evaluates r(|T|+|V|)(2+λ).
func GraceJoinCost(t, v, lambda float64) float64 { return cost.GraceJoinCost(t, v, lambda) }

// IOProfile is an estimated read/write volume in buffer units, priced via
// Price(read, write). Unlike the printed-equation surfaces above, the
// Profile* constructors model this library's shipped implementations and
// are what an optimizer embedding wlpm should rank with (they are what
// the Fig. 12 concordance study validates).
type IOProfile = cost.Profile

// ProfileExternalMergeSort estimates ExMS over t input buffers with m
// buffers of memory.
func ProfileExternalMergeSort(t, m float64) IOProfile { return cost.ExMSProfile(t, m) }

// ProfileSelectionSort estimates SelS.
func ProfileSelectionSort(t, m float64) IOProfile { return cost.SelSProfile(t, m) }

// ProfileSegmentSort estimates SegS at write intensity x.
func ProfileSegmentSort(x, t, m float64) IOProfile { return cost.SegSProfile(x, t, m) }

// ProfileHybridSort estimates HybS at selection fraction x.
func ProfileHybridSort(x, t, m float64) IOProfile { return cost.HybSProfile(x, t, m) }

// ProfileGraceJoin estimates GJ for inputs of t and v buffers.
func ProfileGraceJoin(t, v float64) IOProfile { return cost.GJProfile(t, v) }

// ProfileHashJoin estimates HJ.
func ProfileHashJoin(t, v, m float64) IOProfile { return cost.HJProfile(t, v, m) }

// ProfileNestedLoopsJoin estimates NLJ.
func ProfileNestedLoopsJoin(t, v, m float64) IOProfile { return cost.NLJProfile(t, v, m) }

// ProfileHybridJoin estimates HybJ at intensities (x, y).
func ProfileHybridJoin(x, y, t, v, m float64) IOProfile { return cost.HybJProfile(x, y, t, v, m) }

// ProfileSegmentedGraceJoin estimates SegJ at the given intensity.
func ProfileSegmentedGraceJoin(intensity, t, v, m float64) IOProfile {
	return cost.SegJProfile(intensity, t, v, m)
}

// --- Experiments ---

// Experiments lists the reproducible paper artifacts (fig2…fig12,
// table1, table2).
func Experiments() []string { return bench.Experiments() }

// RunExperiment regenerates one paper figure or table.
func RunExperiment(id string, cfg ExperimentConfig) ([]*Report, error) {
	return bench.Run(id, cfg)
}

// Version identifies this reproduction.
const Version = "1.0.0"
