package wlpm

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"wlpm/client"
	"wlpm/internal/bench"
	"wlpm/internal/record"
	"wlpm/internal/server"
)

// The serve experiment: K clients streaming the join pipeline through
// cmd/wlserved's HTTP layer versus the same K clients as in-process
// sessions. Same tables, same plan, same broker ration (two grants, so
// admission queues under both modes); the delta is what the network
// front costs — and the identity check is what it must not cost:
// remote results are byte-identical to in-process execution.
//
// The runner lives in the façade package (not internal/bench) because
// it spans the layers bench sits below — the server and client packages
// — and registers itself with the bench registry at init.

func init() { bench.Register("serve", serveBench) }

const (
	serveBenchAdmit   = 2 // broker ration in grants, the concurrency bench's
	serveBenchQueries = 2 // queries per client
)

// serveBenchPlan is the measured pipeline: grace join + external merge
// sort, pinned so both modes compile identical physical plans.
const serveBenchPlan = "scan(dim) | join(scan(fact); GJ) | orderby(ExMS)"

type serveRunStats struct {
	wall      time.Duration
	latencies []time.Duration // per query, sorted
	rows      int64           // total rows streamed
	hash      uint64          // FNV-64a over every query's record bytes (order-checked per query)
}

func serveBench(cfg bench.Config) ([]*bench.Report, error) {
	// Spin mode, like the concurrency experiment: charged device
	// latencies are real delays, so concurrent streams genuinely overlap
	// and tail latency means something.
	cfg.Spin = true
	k := cfg.Sessions
	if k <= 0 {
		k = 4
	}
	nDim, nFact := cfg.JoinRows()
	grant := int64(0.05 * float64(nFact) * record.Size)
	if grant < record.Size {
		grant = record.Size
	}

	logf := func(format string, args ...any) {
		if cfg.Verbose && cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	logf("serve: K=%d in-process sessions", k)
	local, err := serveBenchLocal(cfg, nDim, nFact, grant, k)
	if err != nil {
		return nil, err
	}
	logf("serve: K=%d remote clients", k)
	remote, met, err := serveBenchRemote(cfg, nDim, nFact, grant, k)
	if err != nil {
		return nil, err
	}

	identical := local.hash == remote.hash && local.rows == remote.rows
	rep := &bench.Report{
		ID: "serve",
		Title: fmt.Sprintf("K=%d clients × %d queries, %s (%d ⋈ %d, backend=%s, admit %d grants)",
			k, serveBenchQueries, serveBenchPlan, nDim, nFact, cfg.Backend, serveBenchAdmit),
		Columns: []string{"mode", "wall (ms)", "queries/s", "rows/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"},
	}
	for _, row := range []struct {
		name string
		s    serveRunStats
	}{{"in-process", local}, {"remote (wlserved)", remote}} {
		n := float64(k * serveBenchQueries)
		rep.Rows = append(rep.Rows, []string{
			row.name,
			fmt.Sprintf("%.3f", float64(row.s.wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", n/row.s.wall.Seconds()),
			fmt.Sprintf("%.0f", float64(row.s.rows)/row.s.wall.Seconds()),
			pctileMs(row.s.latencies, 50), pctileMs(row.s.latencies, 95), pctileMs(row.s.latencies, 99),
		})
	}
	if identical {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"remote results byte-identical to in-process execution (%d rows/query, FNV-64a %016x)",
			local.rows/int64(k*serveBenchQueries), local.hash))
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"IDENTITY FAILURE: in-process %d rows hash %016x, remote %d rows hash %016x",
			local.rows, local.hash, remote.rows, remote.hash))
	}
	var totalQueries int64
	for _, tm := range met.Tenants {
		totalQueries += tm.Queries
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"server metrics after the run: %d queries across %d tenants, broker high water %d B of %d B, gate depth %d",
		totalQueries, len(met.Tenants), met.Broker.HighWater, met.Broker.Total, met.GateDepth))

	if cfg.ServeJSON != "" {
		if err := writeServeJSON(cfg.ServeJSON, k, local, remote, identical, met); err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("machine-readable result: %s", cfg.ServeJSON))
	}
	if !identical {
		return []*bench.Report{rep}, fmt.Errorf("serve: remote results diverged from in-process execution")
	}
	return []*bench.Report{rep}, nil
}

// serveBenchTenant numbers remote tenants t0..t{K-1}; metrics are
// spot-checked against t0.
const serveBenchTenant = "t0"

// serveBenchRig builds one system with the benchmark tables, rationing
// serveBenchAdmit grants of the given size.
func serveBenchRig(cfg bench.Config, nDim, nFact int, grant int64) (*System, map[string]Collection, error) {
	payload := int64(nDim+nFact) * record.Size
	opts := []Option{
		WithCapacity(payload*16 + (64 << 20)),
		WithBackend(cfg.Backend),
		WithBlockSize(cfg.BlockSize),
		WithLatencies(cfg.ReadLatency, cfg.WriteLatency),
		WithParallelism(cfg.Parallelism),
		WithBatchSize(cfg.BatchSize),
		WithMemoryBudget(serveBenchAdmit * grant),
	}
	if cfg.Spin {
		opts = append(opts, WithSpin())
	}
	sys, err := New(opts...)
	if err != nil {
		return nil, nil, err
	}
	dim, err := sys.Create("dim")
	if err != nil {
		return nil, nil, err
	}
	fact, err := sys.Create("fact")
	if err != nil {
		return nil, nil, err
	}
	if err := GenerateJoinInputs(nDim, nFact, 42, dim.Append, fact.Append); err != nil {
		return nil, nil, err
	}
	if err := dim.Close(); err != nil {
		return nil, nil, err
	}
	if err := fact.Close(); err != nil {
		return nil, nil, err
	}
	cols := map[string]Collection{"dim": dim, "fact": fact}
	for _, c := range cols {
		if _, err := sys.Collect(c); err != nil {
			return nil, nil, err
		}
	}
	return sys, cols, nil
}

// serveBenchLocal runs K in-process sessions, each streaming the plan
// serveBenchQueries times.
func serveBenchLocal(cfg bench.Config, nDim, nFact int, grant int64, k int) (serveRunStats, error) {
	sys, cols, err := serveBenchRig(cfg, nDim, nFact, grant)
	if err != nil {
		return serveRunStats{}, err
	}
	lookup := CollectionLookup(cols)
	return serveBenchDrive(k, func(i, q int) (int64, uint64, time.Duration, error) {
		sess := sys.Session(WithSessionBudget(grant))
		query, err := sess.ParseQuery(serveBenchPlan, lookup)
		if err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; queries run to completion by design
		rows, err := query.Rows(context.Background())
		if err != nil {
			return 0, 0, 0, err
		}
		h := fnv.New64a()
		var n int64
		for rows.Next() {
			h.Write(rows.Record())
			n++
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return 0, 0, 0, err
		}
		if err := rows.Close(); err != nil {
			return 0, 0, 0, err
		}
		return n, h.Sum64(), time.Since(start), nil
	})
}

// serveBenchRemote starts a real wlserved stack on a loopback listener
// and runs K client-package tenants against it, then snapshots the
// metrics endpoint.
func serveBenchRemote(cfg bench.Config, nDim, nFact int, grant int64, k int) (serveRunStats, *server.Metrics, error) {
	sys, cols, err := serveBenchRig(cfg, nDim, nFact, grant)
	if err != nil {
		return serveRunStats{}, nil, err
	}
	tenants := make([]server.Tenant, k)
	for i := range tenants {
		tenants[i] = server.Tenant{Name: fmt.Sprintf("t%d", i), Weight: 1, Budget: grant}
	}
	srv, err := server.New(server.Config{Engine: sys.ServeEngine(cols), Tenants: tenants})
	if err != nil {
		return serveRunStats{}, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveRunStats{}, nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	addr := l.Addr().String()

	stats, err := serveBenchDrive(k, func(i, q int) (int64, uint64, time.Duration, error) {
		sess := client.Dial(addr).Session(fmt.Sprintf("t%d", i))
		start := time.Now()
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; queries run to completion by design
		rows, err := sess.Query(serveBenchPlan).Rows(context.Background())
		if err != nil {
			return 0, 0, 0, err
		}
		h := fnv.New64a()
		var n int64
		for rows.Next() {
			h.Write(rows.Record())
			n++
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return 0, 0, 0, err
		}
		if err := rows.Close(); err != nil {
			return 0, 0, 0, err
		}
		return n, h.Sum64(), time.Since(start), nil
	})
	if err != nil {
		return serveRunStats{}, nil, err
	}

	//lint:allow wlvet/ctxparam bench harness owns the run lifetime
	met, err := client.Dial(addr).Session(serveBenchTenant).Metrics(context.Background())
	if err != nil {
		return serveRunStats{}, nil, err
	}
	//lint:allow wlvet/ctxparam bench teardown drains to completion; no caller context exists to thread
	if err := srv.Shutdown(context.Background()); err != nil {
		return serveRunStats{}, nil, err
	}
	if err := <-serveErr; err != nil {
		return serveRunStats{}, nil, err
	}
	return stats, met, nil
}

// serveBenchDrive fans K clients × serveBenchQueries queries through
// run, checking every query returns the same bytes, and aggregates the
// run's wall time, per-query latencies and the common hash.
func serveBenchDrive(k int, run func(client, query int) (rows int64, hash uint64, lat time.Duration, err error)) (serveRunStats, error) {
	type result struct {
		rows int64
		hash uint64
		lat  time.Duration
		err  error
	}
	results := make([][]result, k)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		results[i] = make([]result, serveBenchQueries)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for q := 0; q < serveBenchQueries; q++ {
				rows, hash, lat, err := run(i, q)
				results[i][q] = result{rows, hash, lat, err}
				if err != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	stats := serveRunStats{wall: time.Since(start)}
	h := fnv.New64a()
	var refHash uint64
	var refRows int64
	for i := range results {
		for q, r := range results[i] {
			if r.err != nil {
				return stats, fmt.Errorf("client %d query %d: %w", i, q, r.err)
			}
			if i == 0 && q == 0 {
				refHash, refRows = r.hash, r.rows
			} else if r.hash != refHash || r.rows != refRows {
				return stats, fmt.Errorf("client %d query %d: %d rows hash %016x, want %d rows hash %016x",
					i, q, r.rows, r.hash, refRows, refHash)
			}
			stats.rows += r.rows
			stats.latencies = append(stats.latencies, r.lat)
			// Fold every query's hash so the mode hash covers the run.
			fmt.Fprintf(h, "%016x", r.hash)
		}
	}
	sort.Slice(stats.latencies, func(a, b int) bool { return stats.latencies[a] < stats.latencies[b] })
	stats.hash = h.Sum64()
	return stats, nil
}

func pctileMs(sorted []time.Duration, p int) string {
	if len(sorted) == 0 {
		return "-"
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return fmt.Sprintf("%.3f", float64(sorted[idx])/float64(time.Millisecond))
}

// writeServeJSON emits the machine-readable artifact (BENCH_serve.json).
func writeServeJSON(path string, k int, local, remote serveRunStats, identical bool, met *server.Metrics) error {
	type mode struct {
		Name    string  `json:"name"`
		WallMs  float64 `json:"wall_ms"`
		QPS     float64 `json:"queries_per_s"`
		RowsPS  float64 `json:"rows_per_s"`
		P50Ms   string  `json:"p50_ms"`
		P95Ms   string  `json:"p95_ms"`
		P99Ms   string  `json:"p99_ms"`
		Rows    int64   `json:"rows"`
		HashHex string  `json:"hash"`
	}
	mk := func(name string, s serveRunStats) mode {
		n := float64(len(s.latencies))
		return mode{
			Name:    name,
			WallMs:  float64(s.wall) / float64(time.Millisecond),
			QPS:     n / s.wall.Seconds(),
			RowsPS:  float64(s.rows) / s.wall.Seconds(),
			P50Ms:   pctileMs(s.latencies, 50),
			P95Ms:   pctileMs(s.latencies, 95),
			P99Ms:   pctileMs(s.latencies, 99),
			Rows:    s.rows,
			HashHex: fmt.Sprintf("%016x", s.hash),
		}
	}
	doc := struct {
		Experiment string          `json:"experiment"`
		K          int             `json:"k"`
		Queries    int             `json:"queries_per_client"`
		Plan       string          `json:"plan"`
		Identical  bool            `json:"byte_identical"`
		Modes      []mode          `json:"modes"`
		Metrics    *server.Metrics `json:"server_metrics"`
	}{
		Experiment: "serve",
		K:          k,
		Queries:    serveBenchQueries,
		Plan:       serveBenchPlan,
		Identical:  identical,
		Modes:      []mode{mk("in-process", local), mk("remote", remote)},
		Metrics:    met,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
