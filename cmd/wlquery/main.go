// Command wlquery runs a query plan through the pipelined execution
// engine: it parses a tiny plan DSL, lets the cost-model physical
// planner choose the write-limited sort and join algorithms (unless the
// plan pins them), and prints the chosen plan next to the measured
// response and cacheline traffic.
//
// Plan DSL (stages piped left to right; see internal/exec):
//
//	scan(T)                          start from table T
//	filter(aN OP value)              OP: == != < <= > >=
//	project(aI,aJ,...)               keep 8-byte attributes, in order
//	join(PLAN)  join(PLAN; GJ)       equi-join on a0; optional pinned algorithm
//	groupby(aN) groupby(aN, groups=G; SegS:0.4)
//	orderby     orderby(ExMS)
//	limit(N)
//
// Tables are generated: -table name=rows creates unique permuted keys
// 0..rows-1; -table name=rows:parent draws keys from parent's key
// domain (the paper's join microbenchmark shape).
//
// Usage:
//
//	wlquery -table dim=20000 -table fact=200000:dim \
//	    -plan 'scan(dim) | join(scan(fact)) | project(a0,a1,a12,a13,a14,a5,a16,a7,a18,a9) | groupby(a3) | orderby' \
//	    -mem 0.05 -p 4 -explain
//
// With -addr the plan runs on a wlserved instance instead: tables live
// server-side (declared when the server started), results stream back
// over HTTP, and Ctrl-C cancels the remote cursor:
//
//	wlquery -addr localhost:8080 -tenant alice -plan 'scan(dim) | orderby'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"wlpm"
	"wlpm/client"
	"wlpm/internal/cliutil"
	"wlpm/internal/record"
)

const cmd = "wlquery"

func main() {
	var tables cliutil.TableFlags
	var (
		addr        = flag.String("addr", "", "run the plan on a wlserved instance at this address instead of in-process")
		tenant      = flag.String("tenant", "", "tenant name for -addr (open-mode servers; default tenant when empty)")
		token       = flag.String("token", "", "bearer token for -addr (servers with configured tenants)")
		planSrc     = flag.String("plan", "", "plan DSL (required)")
		mem         = flag.Float64("mem", 0.05, "plan memory budget as a fraction of the largest table")
		backend     = flag.String("backend", "blocked", "blocked|pmfs|ramdisk|dynarray")
		block       = flag.Int("block", 1024, "block size in bytes")
		rdLat       = flag.Duration("read-latency", 10*time.Nanosecond, "read latency per cacheline")
		wrLat       = flag.Duration("write-latency", 150*time.Nanosecond, "write latency per cacheline")
		par         = flag.Int("p", 1, "worker parallelism (1 = serial)")
		batch       = flag.Int("batch", 0, "operator batch size (0 = engine default 1024; 1 = record-at-a-time)")
		timeout     = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit); Ctrl-C cancels either way")
		bid         = flag.Float64("bid", 0, "grant bidding: accept a smaller memory grant when its predicted cost is within this factor of the full grant's (≥ 1; 0 = fixed grant)")
		stat        = flag.Bool("stats", true, "collect column statistics (ANALYZE) before planning; -stats=false plans from textbook defaults")
		explain     = flag.Bool("explain", false, "print the physical plan, algorithm choices and estimated vs actual rows")
		materialize = flag.Bool("materialize", false, "materialize after every operator (the naive baseline)")
		show        = flag.Int("show", 5, "result records to print")
		seed        = flag.Uint64("seed", 42, "workload generator seed")
	)
	flag.Var(&tables, "table", "table to generate: name=rows or name=rows:parent (repeatable)")
	flag.Parse()

	if *planSrc == "" {
		cliutil.Usage(cmd, "-plan is required")
	}
	if *addr != "" {
		runRemote(*addr, *tenant, *token, *planSrc, *explain, *show, *timeout)
		return
	}
	if len(tables) == 0 {
		cliutil.Usage(cmd, "at least one -table is required")
	}
	cliutil.CheckPositiveFloat(cmd, "mem", *mem)
	cliutil.CheckPositiveInt(cmd, "block", *block)
	cliutil.CheckParallelism(cmd, *par)
	if *show < 0 {
		cliutil.Usage(cmd, "-show must be non-negative, got %d", *show)
	}
	if *timeout < 0 {
		cliutil.Usage(cmd, "-timeout must be non-negative, got %v", *timeout)
	}
	if *bid != 0 && *bid < 1 {
		cliutil.Usage(cmd, "-bid must be ≥ 1 (or 0 to disable), got %v", *bid)
	}
	if *batch < 0 {
		cliutil.Usage(cmd, "-batch must be non-negative, got %d", *batch)
	}

	// The run's cancellation context: Ctrl-C cancels, -timeout deadlines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	byName, maxRows := cliutil.ValidateTables(cmd, tables)
	payload := cliutil.TablesPayload(tables)
	budget := int64(*mem * float64(maxRows) * record.Size)
	if budget < record.Size {
		budget = record.Size
	}
	sys, err := wlpm.New(
		wlpm.WithCapacity(payload*16+(64<<20)),
		wlpm.WithBackend(*backend),
		wlpm.WithBlockSize(*block),
		wlpm.WithLatencies(*rdLat, *wrLat),
		wlpm.WithParallelism(*par),
		wlpm.WithBatchSize(*batch),
		wlpm.WithAutoCollect(*stat),
		wlpm.WithMemoryBudget(2*budget),
	)
	if err != nil {
		cliutil.Fatal(cmd, err)
	}
	sessOpts := []wlpm.SessionOption{wlpm.WithSessionBudget(budget)}
	if *bid >= 1 {
		sessOpts = append(sessOpts, wlpm.WithGrantBidding(*bid))
	}
	sess := sys.Session(sessOpts...)

	// Generate the tables in declaration order so parents exist first.
	cols := map[string]wlpm.Collection{}
	for _, spec := range tables {
		c, err := sys.Create(spec.Name)
		if err != nil {
			cliutil.Fatal(cmd, err)
		}
		if err := cliutil.GenerateTable(spec, byName[spec.Parent].Rows, *seed, c.Append); err != nil {
			cliutil.Fatal(cmd, err)
		}
		if err := c.Close(); err != nil {
			cliutil.Fatal(cmd, err)
		}
		// ANALYZE up front so the statistics pass is not part of the
		// measured run (subsequent plans hit the cache).
		if *stat {
			if _, err := sys.Collect(c); err != nil {
				cliutil.Fatal(cmd, err)
			}
		}
		cols[spec.Name] = c
	}

	lookup := wlpm.CollectionLookup(cols)
	q, err := sess.ParseQuery(*planSrc, func(name string) (wlpm.Collection, error) {
		c, err := lookup(name)
		if err != nil {
			return nil, fmt.Errorf("%w (declare it with -table)", err)
		}
		return c, nil
	})
	if err != nil {
		cliutil.Usage(cmd, "%v", err)
	}

	ex, err := q.ExplainGranted()
	if err != nil {
		cliutil.Fatal(cmd, err)
	}
	if *explain {
		fmt.Print(ex.String())
	}

	out, err := sys.CreateSized("result", ex.RecordSize)
	if err != nil {
		cliutil.Fatal(cmd, err)
	}
	sys.ResetStats()
	start := time.Now()
	if *materialize {
		err = q.RunMaterializedCtx(ctx, out)
	} else {
		ex, err = q.RunCtx(ctx, out)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			cliutil.Fatal(cmd, fmt.Errorf("query aborted: -timeout %v exceeded (partial work discarded, memory grant released)", *timeout))
		case errors.Is(err, context.Canceled):
			cliutil.Fatal(cmd, fmt.Errorf("query canceled (partial work discarded, memory grant released)"))
		}
		cliutil.Fatal(cmd, err)
	}
	wall := time.Since(start)
	st := sys.Stats()

	// After the run the choices carry the actual input rows observed at
	// each blocking operator's Open — print them next to the estimates so
	// planner misestimates are visible.
	if *explain && !*materialize {
		fmt.Println("after run (estimated vs actual rows):")
		fmt.Print(ex.String())
		fmt.Println()
	}

	mode := "pipelined"
	if *materialize {
		mode = "materialize-every-step"
	}
	fmt.Printf("mode           %s on %s (block %d B, P=%d)\n", mode, sys.Backend(), *block, *par)
	fmt.Printf("memory         %d B across %d blocking stage(s)\n", budget, ex.Stages)
	fmt.Printf("result         %d records × %d B\n", out.Len(), out.RecordSize())
	fmt.Printf("response       %v  (wall %v + sim I/O %v + soft %v)\n",
		(wall + st.SimTime()).Round(time.Microsecond), wall.Round(time.Microsecond),
		st.SimIOTime.Round(time.Microsecond), st.SoftTime.Round(time.Microsecond))
	fmt.Printf("cacheline I/O  %d writes, %d reads (λ=%.1f)\n", st.Writes, st.Reads, sys.Device().Lambda())

	if *show > 0 && out.Len() > 0 {
		n := *show
		if n > out.Len() {
			n = out.Len()
		}
		fmt.Printf("\nfirst %d record(s):\n", n)
		it := out.Scan()
		defer it.Close()
		for i := 0; i < n; i++ {
			rec, err := it.Next()
			if err != nil {
				cliutil.Fatal(cmd, err)
			}
			attrs := len(rec) / record.AttrSize
			fmt.Printf("  [")
			for a := 0; a < attrs; a++ {
				if a > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%d", record.Attr(rec, a))
			}
			fmt.Println("]")
		}
	}
}

// runRemote executes the plan on a wlserved instance through the client
// package, streaming the result back and printing the same summary the
// in-process path prints.
func runRemote(addr, tenant, token, planSrc string, explain bool, show int, timeout time.Duration) {
	if timeout < 0 {
		cliutil.Usage(cmd, "-timeout must be non-negative, got %v", timeout)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var opts []client.SessionOption
	if token != "" {
		opts = append(opts, client.WithToken(token))
	}
	sess := client.Dial(addr).Session(tenant, opts...)
	q := sess.Query(planSrc)
	if explain {
		doc, err := q.Explain(ctx)
		if err != nil {
			cliutil.Fatal(cmd, err)
		}
		fmt.Print(doc.Explain.String())
	}

	start := time.Now()
	rows, err := q.Rows(ctx)
	if err != nil {
		cliutil.Fatal(cmd, err)
	}
	defer rows.Close()
	var first [][]byte
	n := int64(0)
	for rows.Next() {
		if len(first) < show {
			first = append(first, append([]byte(nil), rows.Record()...))
		}
		n++
	}
	if err := rows.Err(); err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			cliutil.Fatal(cmd, fmt.Errorf("query aborted: -timeout %v exceeded (server cancelled the cursor)", timeout))
		case errors.Is(err, context.Canceled):
			cliutil.Fatal(cmd, fmt.Errorf("query canceled (server cancelled the cursor)"))
		}
		cliutil.Fatal(cmd, err)
	}
	wall := time.Since(start)

	end := rows.Explain()
	if explain && end != nil && end.Explain != nil {
		fmt.Println("after run (estimated vs actual rows):")
		fmt.Print(end.Explain.String())
		fmt.Println()
	}
	fmt.Printf("mode           remote via %s\n", addr)
	fmt.Printf("result         %d records × %d B\n", n, rows.RecordSize())
	fmt.Printf("response       %v (client wall; includes admission and streaming)\n", wall.Round(time.Microsecond))

	if show > 0 && len(first) > 0 {
		fmt.Printf("\nfirst %d record(s):\n", len(first))
		for _, rec := range first {
			attrs := len(rec) / record.AttrSize
			fmt.Printf("  [")
			for a := 0; a < attrs; a++ {
				if a > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%d", record.Attr(rec, a))
			}
			fmt.Println("]")
		}
	}
}
