// wlvet runs the engine's static-analysis suite (internal/analysis):
// the wave-1 resource contracts (cancellation polling, temp-sweep
// hygiene, grant release, batch ownership, context threading) and the
// wave-2 concurrency contracts (lock ordering, blocking under locks,
// goroutine lifecycle, field synchronization).
//
// Standalone:
//
//	wlvet ./...            # exit 1 on any diagnostic
//	wlvet -json ./...      # machine-readable findings + allow audit
//
// As a go vet tool (unitchecker protocol):
//
//	go vet -vettool=$(which wlvet) ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"golang.org/x/tools/go/analysis/unitchecker"

	wlvet "wlpm/internal/analysis"
	"wlpm/internal/analysis/driver"
)

// jsonReport is the -json output: every live finding, plus every
// suppressed one with the reason its //lint:allow comment gave, so
// suppressions stay auditable by the same tooling that consumes
// findings.
type jsonReport struct {
	Diagnostics []jsonDiag  `json:"diagnostics"`
	Allowed     []jsonAllow `json:"allowed"`
	Packages    int         `json:"packages"`
	ElapsedMS   int64       `json:"elapsed_ms"`
	Workers     int         `json:"workers"`
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonAllow struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"allow_reason"`
}

func main() {
	for _, a := range os.Args[1:] {
		// go vet invokes the tool with -V=full (version probe) and
		// -flags (flag discovery) before the per-package *.cfg calls.
		if a == "-flags" || strings.HasPrefix(a, "-V") || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(wlvet.All()...) // does not return
		}
	}

	jsonOut := flag.Bool("json", false, "emit machine-readable JSON diagnostics on stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := driver.Run(wlvet.All(), patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlvet:", err)
		os.Exit(2)
	}
	allowed := wlvet.TakeAllowLog()

	if *jsonOut {
		rep := jsonReport{
			Diagnostics: []jsonDiag{},
			Allowed:     []jsonAllow{},
			Packages:    res.Reported,
			ElapsedMS:   res.Elapsed.Milliseconds(),
			Workers:     res.Workers,
		}
		for _, d := range res.Diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, a := range allowed {
			rep.Allowed = append(rep.Allowed, jsonAllow{
				File: a.Pos.Filename, Line: a.Pos.Line,
				Analyzer: a.Analyzer, Reason: a.Reason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "wlvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(os.Stdout, "%s: %s\n", d.Pos, d.Message)
		}
	}

	fmt.Fprintf(os.Stderr, "wlvet: %d package(s) analyzed (%d total incl. deps) in %v with %d worker(s)\n",
		res.Reported, res.Packages, res.Elapsed.Round(time.Millisecond), res.Workers)
	if n := len(res.Diags); n > 0 {
		fmt.Fprintf(os.Stderr, "wlvet: %d invariant violation(s)\n", n)
		os.Exit(1)
	}
}
