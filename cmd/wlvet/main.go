// wlvet runs the engine's static-analysis suite (internal/analysis):
// cancellation polling, temp-sweep hygiene, grant release, batch
// ownership, and context threading.
//
// Standalone:
//
//	wlvet ./...            # exit 1 on any diagnostic
//
// As a go vet tool (unitchecker protocol):
//
//	go vet -vettool=$(which wlvet) ./...
package main

import (
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	wlvet "wlpm/internal/analysis"
	"wlpm/internal/analysis/driver"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		// go vet invokes the tool with -V=full (version probe) and
		// -flags (flag discovery) before the per-package *.cfg calls.
		if a == "-flags" || strings.HasPrefix(a, "-V") || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(wlvet.All()...) // does not return
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := driver.Run(os.Stdout, wlvet.All(), patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "wlvet: %d invariant violation(s)\n", n)
		os.Exit(1)
	}
}
