// Command wlserved serves the query engine over HTTP: it generates the
// declared tables on a simulated persistent-memory device, then accepts
// plan-DSL queries on /v1/query (NDJSON result streaming), plan
// explanations on /v1/explain and broker/device/tenant telemetry on
// /v1/metrics. Each tenant runs in its own engine session — own
// working-memory grant, admission policy and collection namespace — and
// a weighted fairness gate schedules tenants' queries into the memory
// broker, so one tenant's burst cannot starve the rest.
//
// Tenancy: with no -tenant flags the server runs open — any client
// names a tenant with the X-Wlpm-Tenant header and it is provisioned on
// first use with the default budget. -tenant flags close the set:
//
//	wlserved -addr :8080 -table dim=20000 -table fact=200000:dim \
//	    -tenant alice:s3cret:3 -tenant bob::1
//
// declares alice (token "s3cret", weight 3) and bob (no token — selected
// by header — weight 1). The full form is name[:token[:weight[:budget]]]
// with budget in bytes (0 = the -mem default).
//
// Graceful shutdown: on SIGINT/SIGTERM the server stops accepting, lets
// in-flight streams drain for -drain, then cancels their cursors (which
// releases grants and temporaries) and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wlpm"
	"wlpm/internal/cliutil"
	"wlpm/internal/record"
	"wlpm/internal/server"
)

const cmd = "wlserved"

// tenantFlags collects repeated -tenant flags: name[:token[:weight[:budget]]].
type tenantFlags []server.Tenant

func (t *tenantFlags) String() string { return fmt.Sprintf("%v", []server.Tenant(*t)) }

func (t *tenantFlags) Set(s string) error {
	parts := strings.SplitN(s, ":", 4)
	if parts[0] == "" {
		return fmt.Errorf("want name[:token[:weight[:budget]]], got %q", s)
	}
	tn := server.Tenant{Name: parts[0], Weight: 1}
	if len(parts) > 1 {
		tn.Token = parts[1]
	}
	if len(parts) > 2 && parts[2] != "" {
		w, err := strconv.Atoi(parts[2])
		if err != nil || w < 1 {
			return fmt.Errorf("bad weight in %q", s)
		}
		tn.Weight = w
	}
	if len(parts) > 3 && parts[3] != "" {
		b, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil || b < 0 {
			return fmt.Errorf("bad budget in %q", s)
		}
		tn.Budget = b
	}
	*t = append(*t, tn)
	return nil
}

func main() {
	var tables cliutil.TableFlags
	var tenants tenantFlags
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		mem     = flag.Float64("mem", 0.05, "default per-query memory grant as a fraction of the largest table")
		admit   = flag.Int("admit", 4, "system memory budget in per-query grants (concurrent admissions before queueing)")
		backend = flag.String("backend", "blocked", "blocked|pmfs|ramdisk|dynarray")
		block   = flag.Int("block", 1024, "block size in bytes")
		rdLat   = flag.Duration("read-latency", 10*time.Nanosecond, "read latency per cacheline")
		wrLat   = flag.Duration("write-latency", 150*time.Nanosecond, "write latency per cacheline")
		par     = flag.Int("p", 1, "worker parallelism (1 = serial)")
		batch   = flag.Int("batch", 0, "operator batch size (0 = engine default)")
		bid     = flag.Float64("bid", 0, "grant bidding for tenant sessions: accepted slowdown factor (≥ 1; 0 = fixed grants)")
		stat    = flag.Bool("stats", true, "collect column statistics before serving")
		seed    = flag.Uint64("seed", 42, "workload generator seed")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window before in-flight cursors are cancelled")
		verbose = flag.Bool("v", false, "log one line per completed request")
	)
	flag.Var(&tables, "table", "table to generate: name=rows or name=rows:parent (repeatable)")
	flag.Var(&tenants, "tenant", "tenant to configure: name[:token[:weight[:budget]]] (repeatable; none = open mode)")
	flag.Parse()

	if len(tables) == 0 {
		cliutil.Usage(cmd, "at least one -table is required")
	}
	cliutil.CheckPositiveFloat(cmd, "mem", *mem)
	cliutil.CheckPositiveInt(cmd, "block", *block)
	cliutil.CheckPositiveInt(cmd, "admit", *admit)
	cliutil.CheckParallelism(cmd, *par)
	if *bid != 0 && *bid < 1 {
		cliutil.Usage(cmd, "-bid must be ≥ 1 (or 0 to disable), got %v", *bid)
	}

	byName, maxRows := cliutil.ValidateTables(cmd, tables)
	payload := cliutil.TablesPayload(tables)
	budget := int64(*mem * float64(maxRows) * record.Size)
	if budget < record.Size {
		budget = record.Size
	}
	sys, err := wlpm.New(
		wlpm.WithCapacity(payload*16+(64<<20)),
		wlpm.WithBackend(*backend),
		wlpm.WithBlockSize(*block),
		wlpm.WithLatencies(*rdLat, *wrLat),
		wlpm.WithParallelism(*par),
		wlpm.WithBatchSize(*batch),
		wlpm.WithAutoCollect(*stat),
		wlpm.WithMemoryBudget(int64(*admit)*budget),
	)
	if err != nil {
		cliutil.Fatal(cmd, err)
	}

	cols := map[string]wlpm.Collection{}
	for _, spec := range tables {
		c, err := sys.Create(spec.Name)
		if err != nil {
			cliutil.Fatal(cmd, err)
		}
		if err := cliutil.GenerateTable(spec, byName[spec.Parent].Rows, *seed, c.Append); err != nil {
			cliutil.Fatal(cmd, err)
		}
		if err := c.Close(); err != nil {
			cliutil.Fatal(cmd, err)
		}
		if *stat {
			if _, err := sys.Collect(c); err != nil {
				cliutil.Fatal(cmd, err)
			}
		}
		cols[spec.Name] = c
		fmt.Printf("table %-12s %d records × %d B\n", spec.Name, c.Len(), c.RecordSize())
	}

	// Tenants without an explicit budget serve with the -mem default.
	for i := range tenants {
		if tenants[i].Budget == 0 {
			tenants[i].Budget = budget
		}
		tenants[i].BidSlack = *bid
	}

	cfg := server.Config{
		Engine:       sys.ServeEngine(cols),
		Tenants:      tenants,
		DrainTimeout: *drain,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wlserved: "+format+"\n", args...)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		cliutil.Fatal(cmd, err)
	}

	mode := "open (tenants auto-provision via " + server.TenantHeader + ")"
	if len(tenants) > 0 {
		mode = fmt.Sprintf("%d configured tenant(s)", len(tenants))
	}
	fmt.Printf("serving on %s  backend=%s grant=%dB admissions=%d  %s\n",
		*addr, sys.Backend(), budget, *admit, mode)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			cliutil.Fatal(cmd, err)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "wlserved: %v: draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			cliutil.Fatal(cmd, err)
		}
		<-errc
	}
}
