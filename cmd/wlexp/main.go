// Command wlexp regenerates the paper's experiments: every figure and
// table of the evaluation section, at a configurable scale.
//
// Usage:
//
//	wlexp -run all                 # everything, default 1/50 scale
//	wlexp -run fig5,fig7 -scale 0.1
//	wlexp -run fig6 -mem 0.05,0.10 -v
//	wlexp -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wlpm"
	"wlpm/internal/cliutil"
)

const cmd = "wlexp"

func main() {
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0.02, "fraction of the paper's cardinalities (1.0 = 10M-row sort, 1M⋈10M join)")
		backend  = flag.String("backend", "blocked", "persistence layer for single-backend experiments (blocked|pmfs|ramdisk|dynarray)")
		block    = flag.Int("block", 1024, "persistence-layer block size in bytes")
		rdLat    = flag.Duration("read-latency", 10*time.Nanosecond, "device read latency per cacheline")
		wrLat    = flag.Duration("write-latency", 150*time.Nanosecond, "device write latency per cacheline")
		memList  = flag.String("mem", "", "comma-separated memory fractions overriding each experiment's sweep (e.g. 0.05,0.10)")
		par      = flag.Int("p", 0, "operator worker parallelism (0/1 = serial; the scaling experiment sweeps its own)")
		batch    = flag.Int("batch", 0, "operator batch size for the engine experiments (0 = engine default 1024; 1 = record-at-a-time)")
		batchOut = flag.String("batch-json", "BENCH_batch.json", "path where the batch experiment writes its JSON result (empty = don't write)")
		serveOut = flag.String("serve-json", "BENCH_serve.json", "path where the serve experiment writes its JSON result (empty = don't write)")
		scalOut  = flag.String("scaling-json", "BENCH_scaling.json", "path where the scaling experiment writes its JSON result (empty = don't write)")
		sessions = flag.Int("sessions", 0, "K concurrent sessions for the concurrency experiment (0 = its default of 4)")
		spin     = flag.Bool("spin", false, "inject device latencies as real delays (scaling forces this on)")
		budget   = flag.Bool("budget", false, "shorthand for -run budget: even vs cost-driven stage shares vs grant bidding")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		verbose  = flag.Bool("v", false, "progress output on stderr")
	)
	flag.Parse()

	if *list {
		for _, id := range wlpm.Experiments() {
			fmt.Println(id)
		}
		return
	}

	cliutil.CheckPositiveFloat(cmd, "scale", *scale)
	cliutil.CheckPositiveInt(cmd, "block", *block)
	cliutil.CheckParallelism(cmd, *par)
	if *sessions < 0 {
		cliutil.Usage(cmd, "-sessions must be non-negative, got %d", *sessions)
	}
	if *batch < 0 {
		cliutil.Usage(cmd, "-batch must be non-negative, got %d", *batch)
	}

	cfg := wlpm.ExperimentConfig{
		Scale:        *scale,
		Backend:      *backend,
		BlockSize:    *block,
		ReadLatency:  *rdLat,
		WriteLatency: *wrLat,
		Parallelism:  *par,
		BatchSize:    *batch,
		BatchJSON:    *batchOut,
		ServeJSON:    *serveOut,
		ScalingJSON:  *scalOut,
		Sessions:     *sessions,
		Spin:         *spin,
		Verbose:      *verbose,
		Log:          os.Stderr,
	}
	if *memList != "" {
		for _, s := range strings.Split(*memList, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || f <= 0 {
				cliutil.Usage(cmd, "bad -mem entry %q (want a positive fraction)", s)
			}
			cfg.MemoryPoints = append(cfg.MemoryPoints, f)
		}
	}

	known := map[string]bool{}
	for _, id := range wlpm.Experiments() {
		known[id] = true
	}
	ids := wlpm.Experiments()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
			if !known[ids[i]] {
				cliutil.Usage(cmd, "unknown experiment %q (have %s)", ids[i], strings.Join(wlpm.Experiments(), " "))
			}
		}
	} else if *budget {
		ids = nil
	}
	if *budget {
		found := false
		for _, id := range ids {
			found = found || id == "budget"
		}
		if !found {
			ids = append(ids, "budget")
		}
	}
	for _, id := range ids {
		start := time.Now()
		reps, err := wlpm.RunExperiment(id, cfg)
		if err != nil {
			cliutil.Fatal(cmd, fmt.Errorf("%s: %w", id, err))
		}
		for _, r := range reps {
			r.Print(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "wlexp: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
}
