// Command wlsort runs a single sort measurement: one algorithm, one
// backend, one memory budget — and prints the response-time and I/O
// breakdown.
//
// Usage:
//
//	wlsort -algo SegS -x 0.4 -n 200000 -mem 0.05 -backend pmfs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"wlpm/internal/algo"
	"wlpm/internal/cliutil"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage/all"
)

const cmd = "wlsort"

func main() {
	var (
		algoName = flag.String("algo", "SegS", "ExMS|SelS|SegS|HybS|LaS")
		x        = flag.Float64("x", 0.5, "write intensity for SegS/HybS")
		auto     = flag.Bool("auto", false, "let the cost model place SegS's intensity")
		n        = flag.Int("n", 200_000, "input records (80 B each)")
		mem      = flag.Float64("mem", 0.05, "memory budget as a fraction of the input size")
		backend  = flag.String("backend", "blocked", "blocked|pmfs|ramdisk|dynarray")
		block    = flag.Int("block", 1024, "block size in bytes")
		rdLat    = flag.Duration("read-latency", 10*time.Nanosecond, "read latency per cacheline")
		wrLat    = flag.Duration("write-latency", 150*time.Nanosecond, "write latency per cacheline")
		wear     = flag.Bool("wear", false, "track and report device wear")
		par      = flag.Int("p", 1, "worker parallelism (1 = the paper's serial execution)")
		timeout  = flag.Duration("timeout", 0, "abort the sort after this long (0 = no limit); Ctrl-C cancels either way")
	)
	flag.Parse()

	cliutil.CheckPositiveInt(cmd, "n", *n)
	cliutil.CheckPositiveFloat(cmd, "mem", *mem)
	cliutil.CheckPositiveInt(cmd, "block", *block)
	cliutil.CheckParallelism(cmd, *par)
	cliutil.CheckFraction(cmd, "x", *x)

	var a sorts.Algorithm
	switch *algoName {
	case "ExMS":
		a = sorts.NewExternalMergeSort()
	case "SelS":
		a = sorts.NewSelectionSort()
	case "SegS":
		if *auto {
			a = sorts.NewAutoSegmentSort()
		} else {
			a = sorts.NewSegmentSort(*x)
		}
	case "HybS":
		a = sorts.NewHybridSort(*x)
	case "LaS":
		a = sorts.NewLazySort()
	default:
		cliutil.UnknownAlgorithm(cmd, *algoName, []string{"ExMS", "SelS", "SegS", "HybS", "LaS"})
	}

	payload := int64(*n) * record.Size
	dev, err := pmem.Open(pmem.Config{
		Capacity:     payload*8 + (64 << 20),
		ReadLatency:  *rdLat,
		WriteLatency: *wrLat,
		TrackWear:    *wear,
	})
	if err != nil {
		fatal(err)
	}
	fac, err := all.New(*backend, dev, *block)
	if err != nil {
		fatal(err)
	}
	in, err := fac.Create("input", record.Size)
	if err != nil {
		fatal(err)
	}
	if err := record.Generate(*n, 42, in.Append); err != nil {
		fatal(err)
	}
	if err := in.Close(); err != nil {
		fatal(err)
	}
	out, err := fac.Create("output", record.Size)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	env := algo.NewParallelEnv(fac, int64(*mem*float64(payload)), *par).WithContext(ctx)
	dev.ResetStats()
	start := time.Now()
	if err := a.Sort(env, in, out); err != nil {
		env.SweepTemps() //nolint:errcheck // best-effort cleanup before exit
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fatal(fmt.Errorf("sort aborted: -timeout %v exceeded (temporary runs destroyed)", *timeout))
		case errors.Is(err, context.Canceled):
			fatal(fmt.Errorf("sort canceled (temporary runs destroyed)"))
		}
		fatal(err)
	}
	wall := time.Since(start)
	st := dev.Stats()

	fmt.Printf("algorithm      %s on %s (block %d B, P=%d)\n", a.Name(), *backend, *block, *par)
	fmt.Printf("input          %d records (%d MB), memory %.1f%%\n", *n, payload>>20, *mem*100)
	fmt.Printf("response       %v  (wall %v + sim I/O %v + soft %v)\n",
		(wall + st.SimTime()).Round(time.Microsecond), wall.Round(time.Microsecond),
		st.SimIOTime.Round(time.Microsecond), st.SoftTime.Round(time.Microsecond))
	fmt.Printf("cacheline I/O  %d writes, %d reads (λ=%.1f)\n", st.Writes, st.Reads, dev.Lambda())
	if *wear {
		w := dev.Wear()
		fmt.Printf("wear           %d lines written, max %d writes/line, mean %.2f\n", w.Written, w.MaxWrites, w.MeanWrite)
	}
	if out.Len() != *n {
		fatal(fmt.Errorf("output has %d records, want %d", out.Len(), *n))
	}
}

func fatal(err error) { cliutil.Fatal(cmd, err) }
