// Command wljoin runs a single join measurement: one algorithm, one
// backend, one memory budget — and prints the response-time and I/O
// breakdown.
//
// Usage:
//
//	wljoin -algo SegJ -x 0.5 -left 20000 -right 200000 -mem 0.05
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"wlpm/internal/algo"
	"wlpm/internal/cliutil"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage/all"
)

const cmd = "wljoin"

func main() {
	var (
		algoName = flag.String("algo", "SegJ", "NLJ|HJ|GJ|HybJ|SegJ|LaJ")
		x        = flag.Float64("x", 0.5, "write intensity (SegJ; HybJ left fraction)")
		y        = flag.Float64("y", 0.5, "HybJ right fraction")
		auto     = flag.Bool("auto", false, "let the cost model place HybJ's intensities")
		nLeft    = flag.Int("left", 20_000, "left (smaller) input records")
		nRight   = flag.Int("right", 200_000, "right input records")
		mem      = flag.Float64("mem", 0.05, "memory budget as a fraction of the left input size")
		backend  = flag.String("backend", "blocked", "blocked|pmfs|ramdisk|dynarray")
		block    = flag.Int("block", 1024, "block size in bytes")
		rdLat    = flag.Duration("read-latency", 10*time.Nanosecond, "read latency per cacheline")
		wrLat    = flag.Duration("write-latency", 150*time.Nanosecond, "write latency per cacheline")
		par      = flag.Int("p", 1, "worker parallelism (1 = the paper's serial execution)")
		timeout  = flag.Duration("timeout", 0, "abort the join after this long (0 = no limit); Ctrl-C cancels either way")
	)
	flag.Parse()

	cliutil.CheckPositiveInt(cmd, "left", *nLeft)
	cliutil.CheckPositiveInt(cmd, "right", *nRight)
	cliutil.CheckPositiveFloat(cmd, "mem", *mem)
	cliutil.CheckPositiveInt(cmd, "block", *block)
	cliutil.CheckParallelism(cmd, *par)
	cliutil.CheckFraction(cmd, "x", *x)
	cliutil.CheckFraction(cmd, "y", *y)

	var a joins.Algorithm
	switch *algoName {
	case "NLJ":
		a = joins.NewNestedLoops()
	case "HJ":
		a = joins.NewHash()
	case "GJ":
		a = joins.NewGrace()
	case "HybJ":
		if *auto {
			a = joins.NewAutoHybridGraceNL()
		} else {
			a = joins.NewHybridGraceNL(*x, *y)
		}
	case "SegJ":
		a = joins.NewSegmentedGrace(*x)
	case "LaJ":
		a = joins.NewLazyHash()
	default:
		cliutil.UnknownAlgorithm(cmd, *algoName, []string{"NLJ", "HJ", "GJ", "HybJ", "SegJ", "LaJ"})
	}

	payload := int64(*nLeft+*nRight) * record.Size
	dev, err := pmem.Open(pmem.Config{
		Capacity:     payload*16 + (64 << 20),
		ReadLatency:  *rdLat,
		WriteLatency: *wrLat,
	})
	if err != nil {
		fatal(err)
	}
	fac, err := all.New(*backend, dev, *block)
	if err != nil {
		fatal(err)
	}
	left, err := fac.Create("left", record.Size)
	if err != nil {
		fatal(err)
	}
	right, err := fac.Create("right", record.Size)
	if err != nil {
		fatal(err)
	}
	if err := record.GenerateJoin(*nLeft, *nRight, 42, left.Append, right.Append); err != nil {
		fatal(err)
	}
	if err := left.Close(); err != nil {
		fatal(err)
	}
	if err := right.Close(); err != nil {
		fatal(err)
	}
	out, err := fac.Create("output", 2*record.Size)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	env := algo.NewParallelEnv(fac, int64(*mem*float64(*nLeft)*record.Size), *par).WithContext(ctx)
	dev.ResetStats()
	start := time.Now()
	if err := a.Join(env, left, right, out); err != nil {
		env.SweepTemps() //nolint:errcheck // best-effort cleanup before exit
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fatal(fmt.Errorf("join aborted: -timeout %v exceeded (temporary partitions destroyed)", *timeout))
		case errors.Is(err, context.Canceled):
			fatal(fmt.Errorf("join canceled (temporary partitions destroyed)"))
		}
		fatal(err)
	}
	wall := time.Since(start)
	st := dev.Stats()

	fmt.Printf("algorithm      %s on %s (block %d B, P=%d)\n", a.Name(), *backend, *block, *par)
	fmt.Printf("inputs         %d ⋈ %d records, memory %.1f%% of left\n", *nLeft, *nRight, *mem*100)
	fmt.Printf("matches        %d\n", out.Len())
	fmt.Printf("response       %v  (wall %v + sim I/O %v + soft %v)\n",
		(wall + st.SimTime()).Round(time.Microsecond), wall.Round(time.Microsecond),
		st.SimIOTime.Round(time.Microsecond), st.SoftTime.Round(time.Microsecond))
	fmt.Printf("cacheline I/O  %d writes, %d reads (λ=%.1f)\n", st.Writes, st.Reads, dev.Lambda())
}

func fatal(err error) { cliutil.Fatal(cmd, err) }
