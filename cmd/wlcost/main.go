// Command wlcost explores the analytic cost model without running any
// simulation: per-algorithm cost estimates, optimal knob placement, the
// Fig. 2 heatmaps and the Table 1 ledger.
//
// Usage:
//
//	wlcost -t 781250 -m 39062 -lambda 15            # sort estimates
//	wlcost -join -t 78125 -v 781250 -m 3906         # join estimates
//	wlcost -heatmap -ratio 10 -lambda 5             # one Fig. 2 panel
//	wlcost -ledger -k 8 -lambda 15                  # Table 1
//	wlcost -alloc -stages sort:4000,join:400/4000,sort:40 -m 600
//
// Sizes t, v and memory m are in buffers (cachelines or small multiples),
// the paper's cost unit; costs print in buffer-read units.
//
// -alloc runs the engine's marginal-benefit budget allocator over a
// hand-written pipeline of blocking stages (comma-separated: sort:t or
// join:t/v) with m buffers of total memory, printing each stage's cost
// curve, the even-split and cost-driven shares, and both predictions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wlpm/internal/cliutil"
	"wlpm/internal/cost"
	"wlpm/internal/exec"
)

const cmd = "wlcost"

var shades = []byte(" .:-=+*#%@")

func main() {
	var (
		t       = flag.Float64("t", 781250, "|T| in buffers (the smaller/join-left or sort input)")
		v       = flag.Float64("v", 7812500, "|V| in buffers (join right input)")
		m       = flag.Float64("m", 39062, "memory M in buffers")
		lambda  = flag.Float64("lambda", 15, "write/read cost ratio λ")
		join    = flag.Bool("join", false, "print join estimates instead of sort estimates")
		heatmap = flag.Bool("heatmap", false, "print a Fig. 2 heatmap panel")
		ratio   = flag.Float64("ratio", 1, "|V|/|T| ratio for -heatmap")
		ledger  = flag.Bool("ledger", false, "print the Table 1 lazy-join ledger")
		k       = flag.Int("k", 8, "iterations for -ledger")
		grants  = flag.Int("sessions", 1, "price estimates at the broker grant m/K of K concurrent sessions instead of all of m")
		alloc   = flag.Bool("alloc", false, "run the budget allocator over -stages with m buffers of total memory")
		stages  = flag.String("stages", "sort:4000,join:400/4000,sort:40", "blocking stages for -alloc: sort:t or join:t/v, comma-separated")
	)
	flag.Parse()

	cliutil.CheckPositiveFloat(cmd, "t", *t)
	cliutil.CheckPositiveFloat(cmd, "v", *v)
	cliutil.CheckPositiveFloat(cmd, "m", *m)
	cliutil.CheckPositiveFloat(cmd, "lambda", *lambda)
	cliutil.CheckPositiveFloat(cmd, "ratio", *ratio)
	cliutil.CheckPositiveInt(cmd, "k", *k)
	cliutil.CheckPositiveInt(cmd, "sessions", *grants)
	if *grants > 1 {
		// The memory broker hands each of K concurrent sessions a 1/K
		// grant of the system budget; estimates below describe one such
		// query, which is how the engine's planner actually prices plans
		// under concurrency.
		*m = *m / float64(*grants)
		fmt.Printf("pricing at the per-session grant m=%.0f buffers (system budget split %d ways)\n\n", *m, *grants)
	}

	switch {
	case *alloc:
		printAlloc(*stages, *m, *lambda)
	case *heatmap:
		printHeatmap(*ratio, *lambda)
	case *ledger:
		printLedger(*k, *lambda)
	case *join:
		printJoin(*t, *v, *m, *lambda)
	default:
		printSort(*t, *m, *lambda)
	}
}

// allocStage is one parsed -stages entry.
type allocStage struct {
	kind string // "sort" or "join"
	t, v float64
}

func parseStages(spec string) ([]allocStage, error) {
	var out []allocStage
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kind, sizes, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("stage %q: want sort:t or join:t/v", part)
		}
		ts, vs, hasV := strings.Cut(sizes, "/")
		t, err := strconv.ParseFloat(ts, 64)
		if err != nil || t <= 0 {
			return nil, fmt.Errorf("stage %q: bad input size %q", part, ts)
		}
		s := allocStage{kind: kind, t: t}
		switch kind {
		case "sort":
			if hasV {
				return nil, fmt.Errorf("stage %q: sort takes one input size", part)
			}
		case "join":
			if !hasV {
				return nil, fmt.Errorf("stage %q: join wants t/v", part)
			}
			if s.v, err = strconv.ParseFloat(vs, 64); err != nil || s.v <= 0 {
				return nil, fmt.Errorf("stage %q: bad probe size %q", part, vs)
			}
		default:
			return nil, fmt.Errorf("stage %q: unknown kind %q (sort|join)", part, kind)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no stages in %q", spec)
	}
	return out, nil
}

// printAlloc runs the engine's marginal-benefit allocator over the
// spec'd pipeline at m total buffers, comparing the even split against
// the cost-driven shares. Shares are computed in buffer units
// (blockSize 1), exactly how the physical planner computes them in
// bytes.
func printAlloc(spec string, m, lambda float64) {
	stages, err := parseStages(spec)
	if err != nil {
		cliutil.Usage(cmd, "-stages: %v", err)
	}
	pricers := make([]func(float64) float64, len(stages))
	for i, s := range stages {
		s := s
		if s.kind == "sort" {
			pricers[i] = func(mm float64) float64 { return cost.BestSortPlan(s.t, mm, lambda).Cost }
		} else {
			pricers[i] = func(mm float64) float64 { return cost.BestJoinPlan(s.t, s.v, mm, lambda).Cost }
		}
	}
	total := int64(m)
	a := exec.Allocate(total, 1, pricers)
	even := total / int64(len(stages))
	if even < 2 {
		even = 2
	}
	fmt.Printf("budget allocation: M=%.0f buffers over %d blocking stage(s), λ=%.1f\n\n", m, len(stages), lambda)
	fmt.Printf("  %-3s %-18s %12s %14s %12s %14s\n", "#", "stage", "even m", "even cost", "alloc m", "alloc cost")
	for i, s := range stages {
		name := fmt.Sprintf("%s:%.0f", s.kind, s.t)
		if s.kind == "join" {
			name = fmt.Sprintf("join:%.0f/%.0f", s.t, s.v)
		}
		fmt.Printf("  %-3d %-18s %12d %14.4g %12d %14.4g\n",
			i, name, even, pricers[i](float64(even)), a.Shares[i], pricers[i](float64(a.Shares[i])))
	}
	fmt.Printf("\n  predicted plan cost: even split %.4g, cost-driven %.4g", a.EvenCost, a.Cost)
	switch {
	case a.Even:
		fmt.Printf(" (even split kept: no stage curve bends enough)\n")
	case a.EvenCost > 0:
		fmt.Printf(" (%.1f%% saved)\n", 100*(a.EvenCost-a.Cost)/a.EvenCost)
	default:
		fmt.Println()
	}
	fmt.Printf("\nper-stage cost curves (cheapest implementation as a function of the stage share):\n")
	for i := range stages {
		curve := cost.SampleCurve(pricers[i], 2, m, 7)
		fmt.Printf("  stage %d:", i)
		for j := range curve.M {
			fmt.Printf("  m=%.0f→%.3g", curve.M[j], curve.C[j])
		}
		fmt.Println()
	}
}

func printSort(t, m, lambda float64) {
	fmt.Printf("sort cost estimates (|T|=%.0f, M=%.0f buffers, λ=%.1f; buffer-read units)\n\n", t, m, lambda)
	fmt.Printf("  %-12s %14.4g\n", "ExMS", cost.ExternalMergeSortCost(t, m, lambda))
	fmt.Printf("  %-12s %14.4g\n", "SelS", cost.SelectionSortCost(t, m, lambda))
	for _, x := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("  %-12s %14.4g\n", fmt.Sprintf("SegS(%.1f)", x), cost.SegmentSortCost(x, t, m, lambda))
		fmt.Printf("  %-12s %14.4g\n", fmt.Sprintf("HybS(%.1f)", x), cost.HybridSortCost(x, t, m, lambda))
	}
	fmt.Printf("  %-12s %14.4g\n", "LaS", cost.LazySortCost(t, m, lambda))
	fmt.Println()
	if cost.SegmentSortApplicable(t, m, lambda) {
		x := cost.SegmentSortOptimalX(t, m, lambda)
		fmt.Printf("SegS optimal write intensity (Eq. 4): x = %.4f → cost %.4g\n",
			x, cost.SegmentSortCost(x, t, m, lambda))
	} else {
		fmt.Printf("SegS cost model inapplicable: λ ≥ 2(|T|/M)·lnM; write-minimal x = 0 recommended\n")
	}
	fmt.Printf("LaS materialization iteration (Eq. 5): n = %d\n",
		cost.LazySortMaterializeIteration(t, m, lambda))
}

func printJoin(t, v, m, lambda float64) {
	fmt.Printf("join cost estimates (|T|=%.0f, |V|=%.0f, M=%.0f buffers, λ=%.1f)\n\n", t, v, m, lambda)
	fmt.Printf("  %-16s %14.4g\n", "GJ", cost.GraceJoinCost(t, v, lambda))
	fmt.Printf("  %-16s %14.4g\n", "HJ", cost.HashJoinCost(t, v, m, lambda))
	fmt.Printf("  %-16s %14.4g\n", "NLJ", cost.NestedLoopsJoinCost(t, v, m))
	for _, xy := range [][2]float64{{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}} {
		fmt.Printf("  %-16s %14.4g\n", fmt.Sprintf("HybJ(%.1f,%.1f)", xy[0], xy[1]),
			cost.HybridJoinCost(xy[0], xy[1], t, v, m, lambda))
	}
	kParts := int(1.2*t/m + 1)
	for _, x := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("  %-16s %14.4g\n", fmt.Sprintf("SegJ(%.1f)", x),
			cost.SegmentedGraceCost(x*float64(kParts), kParts, t, v, lambda))
	}
	fmt.Println()
	xh, yh := cost.HybridJoinSaddle(t, v, m, lambda)
	fmt.Printf("HybJ saddle point (Eqs. 7–8): x = %.4f, y = %.4f\n", xh, yh)
	fmt.Printf("SegJ beats GJ below x = %.4f of k = %d partitions (Eq. 10)\n",
		cost.SegmentedGraceBeatsGraceBound(kParts, lambda), kParts)
	fmt.Printf("LaJ materialization iteration (λ-consistent Eq. 11): n = %d of k = %d\n",
		cost.LazyHashJoinMaterializeIteration(kParts, lambda), kParts)
}

func printHeatmap(ratio, lambda float64) {
	h := cost.HybridJoinHeatmap(ratio, lambda, 33)
	min, max := h.MinMax()
	fmt.Printf("Jh(x,y) heatmap: |V|/|T| = %.0f, λ = %.1f (lighter = better, range [%.3g, %.3g])\n\n",
		ratio, lambda, min, max)
	for iy := h.N - 1; iy >= 0; iy-- {
		fmt.Printf("  y=%.2f  ", float64(iy)/float64(h.N-1))
		for ix := 0; ix < h.N; ix++ {
			norm := 0.0
			if max > min {
				norm = (h.Cost[iy][ix] - min) / (max - min)
			}
			fmt.Printf("%c", shades[int(norm*float64(len(shades)-1))])
		}
		fmt.Println()
	}
	fmt.Printf("          x: 0 %s 1\n", spaces(h.N-4))
}

func printLedger(k int, lambda float64) {
	fmt.Printf("standard vs lazy hash join (k=%d, λ=%.1f; unit = M+M_T buffers)\n\n", k, lambda)
	fmt.Printf("  %-4s %10s %10s %10s %10s %10s %10s\n",
		"it", "std rd", "std wr", "lazy rd", "lazy wr", "savings", "penalty")
	for _, r := range cost.LazyHashJoinLedger(k, 1, 0, lambda) {
		fmt.Printf("  %-4d %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			r.Iteration, r.StandardReads, r.StandardWrites, r.LazyReads, r.LazyWrites, r.Savings, r.Penalty)
	}
	fmt.Printf("\nmaterialize at iteration n = %d (λ-consistent Eq. 11)\n",
		cost.LazyHashJoinMaterializeIteration(k, lambda))
}

func spaces(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wlcost [-join|-heatmap|-ledger] [flags]\n")
		flag.PrintDefaults()
	}
}
