package wlpm_test

import (
	"io"
	"testing"
	"time"

	"wlpm"
)

func newSystem(t *testing.T, opts ...wlpm.Option) *wlpm.System {
	t.Helper()
	sys, err := wlpm.New(append([]wlpm.Option{wlpm.WithCapacity(128 << 20)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemDefaults(t *testing.T) {
	sys := newSystem(t)
	if sys.Backend() != "blocked" {
		t.Errorf("default backend %q, want blocked", sys.Backend())
	}
	if got := sys.Device().Lambda(); got != 15 {
		t.Errorf("default λ = %v, want 15", got)
	}
}

func TestSystemOptions(t *testing.T) {
	sys := newSystem(t,
		wlpm.WithBackend("pmfs"),
		wlpm.WithBlockSize(2048),
		wlpm.WithLatencies(20*time.Nanosecond, 100*time.Nanosecond),
		wlpm.WithWearTracking(),
	)
	if sys.Backend() != "pmfs" {
		t.Errorf("backend %q, want pmfs", sys.Backend())
	}
	if got := sys.Device().Lambda(); got != 5 {
		t.Errorf("λ = %v, want 5", got)
	}
	if sys.Factory().BlockSize() != 2048 {
		t.Errorf("block size %d, want 2048", sys.Factory().BlockSize())
	}
	c, err := sys.Create("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(wlpm.NewRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !sys.Wear().Tracked {
		t.Error("wear not tracked despite WithWearTracking")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := wlpm.New(wlpm.WithCapacity(-1)); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := wlpm.New(wlpm.WithBackend("floppy")); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestEndToEndSortAllAlgorithms(t *testing.T) {
	const n = 2000
	for _, a := range []wlpm.SortAlgorithm{
		wlpm.ExternalMergeSort(), wlpm.SelectionSort(), wlpm.SegmentSort(0.3),
		wlpm.AutoSegmentSort(), wlpm.HybridSort(0.5), wlpm.LazySort(),
	} {
		sys := newSystem(t)
		in, err := sys.Create("in")
		if err != nil {
			t.Fatal(err)
		}
		if err := wlpm.GenerateRecords(n, 1, in.Append); err != nil {
			t.Fatal(err)
		}
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := sys.Create("out")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Sort(a, in, out, 10*wlpm.RecordSize*n/100); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if out.Len() != n {
			t.Fatalf("%s: %d records out", a.Name(), out.Len())
		}
		it := out.Scan()
		prev := uint64(0)
		for i := 0; i < n; i++ {
			rec, err := it.Next()
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			k := wlpm.Key(rec)
			if i > 0 && k < prev {
				t.Fatalf("%s: out of order at %d", a.Name(), i)
			}
			prev = k
		}
		it.Close()
	}
}

func TestEndToEndJoinAllAlgorithms(t *testing.T) {
	const nDim, nFact = 500, 5000
	for _, a := range []wlpm.JoinAlgorithm{
		wlpm.NestedLoopsJoin(), wlpm.HashJoin(), wlpm.GraceJoin(),
		wlpm.HybridJoin(0.5, 0.5), wlpm.AutoHybridJoin(),
		wlpm.SegmentedGraceJoin(0.5), wlpm.LazyHashJoin(),
	} {
		sys := newSystem(t)
		dim, err := sys.Create("dim")
		if err != nil {
			t.Fatal(err)
		}
		fact, err := sys.Create("fact")
		if err != nil {
			t.Fatal(err)
		}
		if err := wlpm.GenerateJoinInputs(nDim, nFact, 1, dim.Append, fact.Append); err != nil {
			t.Fatal(err)
		}
		if err := dim.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fact.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := sys.CreateSized("out", 2*wlpm.RecordSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Join(a, dim, fact, out, 5*wlpm.RecordSize*nDim/100); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if out.Len() != nFact {
			t.Fatalf("%s: %d matches, want %d", a.Name(), out.Len(), nFact)
		}
	}
}

func TestOpCtxThroughFacade(t *testing.T) {
	sys := newSystem(t)
	src, err := sys.Create("src")
	if err != nil {
		t.Fatal(err)
	}
	if err := wlpm.GenerateRecords(100, 1, src.Append); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := sys.NewOpCtx(1 << 20)
	if err := ctx.Source("src", src); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Filter("src", func(rec []byte) bool { return wlpm.Key(rec) < 10 }, 0.1, "f"); err != nil {
		t.Fatal(err)
	}
	r, err := ctx.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	it := r.Scan()
	count := 0
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	it.Close()
	if count != 10 {
		t.Fatalf("filtered view has %d records, want 10", count)
	}
}

func TestCostFacade(t *testing.T) {
	if x := wlpm.OptimalSegmentSortIntensity(100000, 5000, 15); x <= 0 || x >= 1 {
		t.Errorf("optimal x = %v", x)
	}
	x, y := wlpm.HybridJoinSaddle(5e4, 5e5, 3e3, 5)
	if x <= 0 || y <= 0 {
		t.Errorf("saddle (%v, %v)", x, y)
	}
	if tau := wlpm.KendallTau([]float64{1, 2, 3}, []float64{1, 2, 3}); tau != 1 {
		t.Errorf("τ = %v", tau)
	}
	if wlpm.Lambda(10*time.Nanosecond, 150*time.Nanosecond) != 15 {
		t.Error("Lambda broken")
	}
	if wlpm.GraceJoinCost(10, 100, 2) != 440 {
		t.Error("GraceJoinCost broken")
	}
	if wlpm.SegmentSortCost(1, 1000, 100, 15) <= 0 {
		t.Error("SegmentSortCost broken")
	}
	if wlpm.HybridJoinCost(0.5, 0.5, 1000, 10000, 100, 15) <= 0 {
		t.Error("HybridJoinCost broken")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := wlpm.Experiments()
	if len(ids) != 17 {
		t.Fatalf("got %d experiments, want 17", len(ids))
	}
	found := false
	for _, id := range ids {
		found = found || id == "serve"
	}
	if !found {
		t.Fatal("serve experiment not registered through the façade")
	}
	reps, err := wlpm.RunExperiment("table2", wlpm.ExperimentConfig{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || len(reps[0].Rows) == 0 {
		t.Fatal("table2 report malformed")
	}
}

// TestParallelismFacade runs a parallel sort and join end-to-end through
// the façade and checks the output matches the serial system's.
func TestParallelismFacade(t *testing.T) {
	const n = 10_000
	results := make(map[int][]uint64)
	for _, p := range []int{1, 4} {
		sys := newSystem(t, wlpm.WithParallelism(p))
		if sys.Parallelism() != p {
			t.Fatalf("Parallelism() = %d, want %d", sys.Parallelism(), p)
		}
		in, err := sys.Create("in")
		if err != nil {
			t.Fatal(err)
		}
		if err := wlpm.GenerateRecords(n, 3, in.Append); err != nil {
			t.Fatal(err)
		}
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := sys.Create("sorted")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Sort(wlpm.SegmentSort(0.4), in, out, 40*1024); err != nil {
			t.Fatalf("P=%d sort: %v", p, err)
		}
		if out.Len() != n {
			t.Fatalf("P=%d: sorted %d records, want %d", p, out.Len(), n)
		}
		var keys []uint64
		it := out.Scan()
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, wlpm.Key(rec))
		}
		it.Close()
		results[p] = keys

		jl, err := sys.Create("jl")
		if err != nil {
			t.Fatal(err)
		}
		jr, err := sys.Create("jr")
		if err != nil {
			t.Fatal(err)
		}
		if err := wlpm.GenerateJoinInputs(1000, 5000, 3, jl.Append, jr.Append); err != nil {
			t.Fatal(err)
		}
		if err := jl.Close(); err != nil {
			t.Fatal(err)
		}
		if err := jr.Close(); err != nil {
			t.Fatal(err)
		}
		jout, err := sys.CreateSized("jout", 2*wlpm.RecordSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Join(wlpm.GraceJoin(), jl, jr, jout, 16*1024); err != nil {
			t.Fatalf("P=%d join: %v", p, err)
		}
		if jout.Len() != 5000 {
			t.Fatalf("P=%d: %d matches, want 5000", p, jout.Len())
		}
	}
	serial, parallel := results[1], results[4]
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("sorted key %d differs: P=1 %d, P=4 %d", i, serial[i], parallel[i])
		}
	}
}
