package wlpm_test

import (
	"fmt"
	"log"

	"wlpm"
)

// ExampleSystem_Sort sorts a small collection with a write-limited
// algorithm and inspects the device counters.
func ExampleSystem_Sort() {
	sys, err := wlpm.New(wlpm.WithCapacity(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	in, _ := sys.Create("input")
	for _, k := range []uint64{5, 1, 4, 2, 3, 0} {
		if err := in.Append(wlpm.NewRecord(k)); err != nil {
			log.Fatal(err)
		}
	}
	in.Close()

	out, _ := sys.Create("sorted")
	if err := sys.Sort(wlpm.SegmentSort(0.5), in, out, 1<<20); err != nil {
		log.Fatal(err)
	}

	it := out.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err != nil {
			break
		}
		fmt.Print(wlpm.Key(rec), " ")
	}
	fmt.Println()
	// Output: 0 1 2 3 4 5
}

// ExampleSystem_Join joins a dimension with a fact input and counts
// matches.
func ExampleSystem_Join() {
	sys, err := wlpm.New(wlpm.WithCapacity(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	dim, _ := sys.Create("dim")
	fact, _ := sys.Create("fact")
	if err := wlpm.GenerateJoinInputs(10, 40, 1, dim.Append, fact.Append); err != nil {
		log.Fatal(err)
	}
	dim.Close()
	fact.Close()

	out, _ := sys.CreateSized("result", 2*wlpm.RecordSize)
	if err := sys.Join(wlpm.LazyHashJoin(), dim, fact, out, 1<<16); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", out.Len())
	// Output: matches: 40
}

// ExampleSystem_GroupBy rolls readings up per key with a write-limited
// sort underneath.
func ExampleSystem_GroupBy() {
	sys, err := wlpm.New(wlpm.WithCapacity(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	in, _ := sys.Create("readings")
	for i, k := range []uint64{1, 2, 1, 2, 1} {
		rec := wlpm.NewRecord(k)
		wlpm.SetAttr(rec, 3, uint64(10*(i+1)))
		if err := in.Append(rec); err != nil {
			log.Fatal(err)
		}
	}
	in.Close()

	out, _ := sys.Create("rollup")
	if err := sys.GroupBy(wlpm.LazySort(), in, 3, out, 1<<16); err != nil {
		log.Fatal(err)
	}
	it := out.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err != nil {
			break
		}
		fmt.Printf("key=%d count=%d sum=%d\n",
			wlpm.Attr(rec, wlpm.GroupAttrKey),
			wlpm.Attr(rec, wlpm.GroupAttrCount),
			wlpm.Attr(rec, wlpm.GroupAttrSum))
	}
	// Output:
	// key=1 count=3 sum=90
	// key=2 count=2 sum=60
}

// ExampleIOProfile ranks two sort candidates without touching the device.
func ExampleIOProfile() {
	const t, m = 10000, 500 // buffers
	exms := wlpm.ProfileExternalMergeSort(t, m)
	segs := wlpm.ProfileSegmentSort(0.2, t, m)
	fmt.Printf("ExMS writes %.0f, SegS(0.2) writes %.0f\n", exms.Writes, segs.Writes)
	fmt.Println("SegS cheaper on a λ=15 medium:", segs.Price(10, 150) < exms.Price(10, 150))
	// Output:
	// ExMS writes 20000, SegS(0.2) writes 12000
	// SegS cheaper on a λ=15 medium: true
}
