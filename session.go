package wlpm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"wlpm/internal/broker"
)

// Concurrency façade: Sessions are the unit of admission control. A
// Session is a lightweight handle on the System whose queries request
// working-memory grants from the System's broker before they are
// planned — the physical planner prices every plan at the granted
// budget — and release them when their cursor closes or their context
// is cancelled. Many sessions may run queries concurrently on one
// System; the broker guarantees their grants never sum past the
// System-wide budget (WithMemoryBudget).
//
//	sess := sys.Session(wlpm.WithSessionBudget(8<<20))
//	rows, err := sess.Query(fact).Filter(pred).OrderBy().Rows(ctx)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var key uint64
//	    _ = rows.Scan(&key)
//	}
//	err = rows.Err()

// AdmissionPolicy selects how a session's queries behave when their
// grant request does not fit the free system budget.
type AdmissionPolicy = broker.Policy

const (
	// AdmitBlock queues the query FIFO until memory frees (or its
	// context is cancelled). The default.
	AdmitBlock = broker.Block
	// AdmitFailFast fails the query immediately with ErrAdmission.
	AdmitFailFast = broker.FailFast
)

// ErrAdmission is returned by fail-fast sessions when the requested
// memory is not free.
var ErrAdmission = broker.ErrAdmission

// ErrSessionClosed is returned by queries started on a closed session.
var ErrSessionClosed = errors.New("wlpm: session is closed")

// SessionOption configures System.Session.
type SessionOption func(*Session)

// WithSessionBudget sets the per-query working-memory grant the
// session's queries request from the broker (default: a quarter of the
// System budget, so four default sessions run concurrently without
// queueing). The planner prices each query's plan at this budget.
func WithSessionBudget(bytes int64) SessionOption {
	return func(s *Session) { s.budget = bytes }
}

// WithAdmission sets the session's admission policy (default AdmitBlock).
func WithAdmission(p AdmissionPolicy) SessionOption {
	return func(s *Session) { s.policy = p }
}

// WithGrantBidding makes the session bid for its queries' memory instead
// of demanding one fixed grant: each query is priced by the planner's
// budget allocator at descending fractions of the session budget (the
// full budget, then 1/2, 1/4 and 1/8), every candidate whose predicted
// cost stays within maxSlowdown × the full-budget prediction joins the
// bid, and the broker admits the largest candidate that currently fits
// (broker.AcquireBest; FIFO order preserved). A query whose cost curve
// is flat below the session budget therefore starts at a smaller grant
// instead of queueing — or, under AdmitFailFast, instead of failing.
//
// maxSlowdown ≥ 1: 1.0 bids only candidates predicted to cost no more
// than the full grant; 1.25 accepts up to 25% predicted slowdown in
// exchange for earlier admission. Values below 1 are clamped to 1.
func WithGrantBidding(maxSlowdown float64) SessionOption {
	return func(s *Session) {
		if maxSlowdown < 1 {
			maxSlowdown = 1
		}
		s.bidSlack = maxSlowdown
	}
}

// WithTenant labels the session with a tenant name. The label prefixes
// the session's collection namespace (so the collections of one tenant's
// sessions are recognizable on the device) and identifies the session in
// server-side metrics; it does not change admission behaviour.
func WithTenant(name string) SessionOption {
	return func(s *Session) { s.tenant = name }
}

// Session is one caller's handle on the System for concurrent query
// execution. Sessions are cheap (no goroutines, no device state); create
// one per logical client. A Session's methods are safe for concurrent
// use, but each Query/Rows it produces remains single-owner.
type Session struct {
	sys      *System
	id       int64
	tenant   string
	budget   int64
	policy   AdmissionPolicy
	bidSlack float64 // > 0: grant bidding on, with this accepted slowdown
	closed   atomic.Bool
}

// sessionSeq numbers sessions so their collection namespaces are
// disjoint even across tenants sharing a name.
var sessionSeq atomic.Int64

// Session opens a session on the system.
func (s *System) Session(opts ...SessionOption) *Session {
	se := &Session{sys: s, id: sessionSeq.Add(1), policy: AdmitBlock}
	se.budget = s.mem.Total() / 4
	if se.budget < 1 {
		se.budget = 1
	}
	for _, o := range opts {
		o(se)
	}
	return se
}

// Budget is the per-query grant this session requests.
func (se *Session) Budget() int64 { return se.budget }

// Policy is the session's admission policy.
func (se *Session) Policy() AdmissionPolicy { return se.policy }

// Tenant is the session's tenant label ("" when unset).
func (se *Session) Tenant() string { return se.tenant }

// Namespace is the prefix of every collection this session creates:
// unique per session, so concurrent sessions (and therefore tenants)
// materializing the same plan never collide on Create names.
func (se *Session) Namespace() string {
	if se.tenant != "" {
		return fmt.Sprintf("%s.s%d.", se.tenant, se.id)
	}
	return fmt.Sprintf("s%d.", se.id)
}

// Create makes a benchmark-schema collection inside the session's
// namespace: the given name is prefixed with Namespace, so two sessions
// may both Create("result") — materializing the same plan concurrently —
// without colliding on the factory's unique-name rule. Use it for the
// output collections of RunCtx/RunMaterializedCtx in concurrent code;
// System.Create remains the way to make shared, globally-named tables.
func (se *Session) Create(name string) (Collection, error) {
	return se.CreateSized(name, RecordSize)
}

// CreateSized is Create with a custom record size (query outputs are
// often projections narrower than the benchmark schema).
func (se *Session) CreateSized(name string, recordSize int) (Collection, error) {
	if se.closed.Load() {
		return nil, ErrSessionClosed
	}
	return se.sys.fac.Create(se.Namespace()+name, recordSize)
}

// Query starts a plan with a scan of c, bound to this session: its
// Rows/RunCtx executions are admitted through the memory broker.
func (se *Session) Query(c Collection) *Query {
	q := se.sys.Query(c)
	q.sess = se
	return q
}

// ParseQuery parses the plan DSL of cmd/wlquery, binding the resulting
// query to this session.
func (se *Session) ParseQuery(src string, lookup func(name string) (Collection, error)) (*Query, error) {
	q, err := se.sys.ParseQuery(src, lookup)
	if err != nil {
		return nil, err
	}
	q.sess = se
	return q, nil
}

// Close marks the session closed; queries started afterwards fail with
// ErrSessionClosed. Grants already held by open cursors are unaffected —
// they release on cursor Close as usual.
func (se *Session) Close() error {
	se.closed.Store(true)
	return nil
}

// acquire requests this session's grant from the broker under the
// session's admission policy.
func (se *Session) acquire(ctx context.Context) (*broker.Grant, error) {
	if se == nil {
		return nil, fmt.Errorf("wlpm: query has no session (construct it via System.Query or Session.Query)")
	}
	if se.closed.Load() {
		return nil, ErrSessionClosed
	}
	g, err := se.sys.mem.Acquire(ctx, se.budget, se.policy)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// acquireFor is acquire with grant bidding: when the session bids
// (WithGrantBidding), the query's plan is priced at descending candidate
// budgets and the broker admits the largest feasible candidate whose
// predicted cost the session accepts. Sessions without bidding — and
// bids whose pricing fails — fall back to the fixed grant.
func (se *Session) acquireFor(ctx context.Context, q *Query) (*broker.Grant, error) {
	if se == nil || se.bidSlack < 1 || q == nil {
		return se.acquire(ctx)
	}
	if se.closed.Load() {
		return nil, ErrSessionClosed
	}
	cands := q.bidCandidates(se.budget, se.bidSlack)
	if len(cands) < 2 {
		return se.acquire(ctx)
	}
	// The bid stays live while queued: the broker re-prices it against
	// the free budget on every grant release (wake-and-reprice), so the
	// query can start at whatever right-sized grant frees up first.
	return se.sys.mem.AcquireBestFunc(ctx, cands, q.repricer(se.budget, se.bidSlack), se.policy)
}

// CollectionLookup adapts a fixed name→collection map to the lookup
// function ParseQuery takes — a convenience for CLIs and tests.
func CollectionLookup(cols map[string]Collection) func(name string) (Collection, error) {
	return func(name string) (Collection, error) {
		c, ok := cols[name]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", name)
		}
		return c, nil
	}
}
