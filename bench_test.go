package wlpm_test

// One benchmark per paper artifact (every table and figure of the
// evaluation section), plus micro-benchmarks of the operators and the
// ablation benches called out in DESIGN.md. The figure benches run the
// same harness as cmd/wlexp at a reduced scale; `go test -bench .`
// therefore regenerates every experiment end to end.

import (
	"fmt"
	"testing"
	"time"

	"wlpm"
)

// benchScale keeps `go test -bench .` minutes-fast; raise via wlexp for
// paper-sized runs.
const benchScale = 0.002

func benchConfig() wlpm.ExperimentConfig {
	return wlpm.ExperimentConfig{Scale: benchScale, MemoryPoints: []float64{0.05, 0.10}}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reps, err := wlpm.RunExperiment(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) == 0 {
			b.Fatalf("%s: no reports", id)
		}
	}
}

func BenchmarkFig2HeatmapPanels(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkFig5SortResponse(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig6SortImplementations(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7JoinResponse(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8JoinImplementations(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9SortWriteIntensity(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10JoinWriteIntensity(b *testing.B)   { runExperiment(b, "fig10") }
func BenchmarkFig11WriteLatency(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12CostModelConcordance(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkTable1LazyJoinLedger(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2DeviceProfile(b *testing.B)       { runExperiment(b, "table2") }

// --- Operator micro-benchmarks ---

const (
	microRows    = 20_000
	microDim     = 2_000
	microFact    = 20_000
	microMemFrac = 0.05
)

func benchSort(b *testing.B, a wlpm.SortAlgorithm, backend string) {
	b.Helper()
	var totalWrites uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := wlpm.New(wlpm.WithCapacity(256<<20), wlpm.WithBackend(backend))
		if err != nil {
			b.Fatal(err)
		}
		in, err := sys.Create("in")
		if err != nil {
			b.Fatal(err)
		}
		if err := wlpm.GenerateRecords(microRows, 42, in.Append); err != nil {
			b.Fatal(err)
		}
		if err := in.Close(); err != nil {
			b.Fatal(err)
		}
		out, err := sys.Create("out")
		if err != nil {
			b.Fatal(err)
		}
		sys.ResetStats()
		b.StartTimer()
		if err := sys.Sort(a, in, out, int64(microMemFrac*microRows*wlpm.RecordSize)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		totalWrites += sys.Stats().Writes
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalWrites)/float64(b.N), "cl-writes/op")
	b.SetBytes(int64(microRows * wlpm.RecordSize))
}

func BenchmarkSortExMS(b *testing.B)     { benchSort(b, wlpm.ExternalMergeSort(), "blocked") }
func BenchmarkSortSegS20(b *testing.B)   { benchSort(b, wlpm.SegmentSort(0.2), "blocked") }
func BenchmarkSortSegS80(b *testing.B)   { benchSort(b, wlpm.SegmentSort(0.8), "blocked") }
func BenchmarkSortSegSAuto(b *testing.B) { benchSort(b, wlpm.AutoSegmentSort(), "blocked") }
func BenchmarkSortHybS50(b *testing.B)   { benchSort(b, wlpm.HybridSort(0.5), "blocked") }
func BenchmarkSortLaS(b *testing.B)      { benchSort(b, wlpm.LazySort(), "blocked") }

func BenchmarkSortSegS50Blocked(b *testing.B)  { benchSort(b, wlpm.SegmentSort(0.5), "blocked") }
func BenchmarkSortSegS50PMFS(b *testing.B)     { benchSort(b, wlpm.SegmentSort(0.5), "pmfs") }
func BenchmarkSortSegS50RAMDisk(b *testing.B)  { benchSort(b, wlpm.SegmentSort(0.5), "ramdisk") }
func BenchmarkSortSegS50DynArray(b *testing.B) { benchSort(b, wlpm.SegmentSort(0.5), "dynarray") }

func benchJoin(b *testing.B, a wlpm.JoinAlgorithm, backend string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := wlpm.New(wlpm.WithCapacity(256<<20), wlpm.WithBackend(backend))
		if err != nil {
			b.Fatal(err)
		}
		dim, err := sys.Create("dim")
		if err != nil {
			b.Fatal(err)
		}
		fact, err := sys.Create("fact")
		if err != nil {
			b.Fatal(err)
		}
		if err := wlpm.GenerateJoinInputs(microDim, microFact, 42, dim.Append, fact.Append); err != nil {
			b.Fatal(err)
		}
		if err := dim.Close(); err != nil {
			b.Fatal(err)
		}
		if err := fact.Close(); err != nil {
			b.Fatal(err)
		}
		out, err := sys.CreateSized("out", 2*wlpm.RecordSize)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sys.Join(a, dim, fact, out, int64(microMemFrac*microDim*wlpm.RecordSize)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64((microDim + microFact) * wlpm.RecordSize))
}

func BenchmarkJoinNLJ(b *testing.B)      { benchJoin(b, wlpm.NestedLoopsJoin(), "blocked") }
func BenchmarkJoinHJ(b *testing.B)       { benchJoin(b, wlpm.HashJoin(), "blocked") }
func BenchmarkJoinGJ(b *testing.B)       { benchJoin(b, wlpm.GraceJoin(), "blocked") }
func BenchmarkJoinLaJ(b *testing.B)      { benchJoin(b, wlpm.LazyHashJoin(), "blocked") }
func BenchmarkJoinSegJ50(b *testing.B)   { benchJoin(b, wlpm.SegmentedGraceJoin(0.5), "blocked") }
func BenchmarkJoinHybJ55(b *testing.B)   { benchJoin(b, wlpm.HybridJoin(0.5, 0.5), "blocked") }
func BenchmarkJoinHybJAuto(b *testing.B) { benchJoin(b, wlpm.AutoHybridJoin(), "blocked") }

// --- Ablations (DESIGN.md §7) ---

// Block-size ablation: the paper's §4 setup study (512 B … 8 KiB; they
// settled on 1 KiB after seeing ~10% improvement from 512→1024 and
// little beyond).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int{512, 1024, 2048, 4096, 8192} {
		bs := bs
		b.Run(fmt.Sprintf("%dB", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := wlpm.New(wlpm.WithCapacity(256<<20), wlpm.WithBlockSize(bs))
				if err != nil {
					b.Fatal(err)
				}
				in, err := sys.Create("in")
				if err != nil {
					b.Fatal(err)
				}
				if err := wlpm.GenerateRecords(microRows, 42, in.Append); err != nil {
					b.Fatal(err)
				}
				if err := in.Close(); err != nil {
					b.Fatal(err)
				}
				out, err := sys.Create("out")
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Sort(wlpm.SegmentSort(0.5), in, out, int64(microMemFrac*microRows*wlpm.RecordSize)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// λ ablation: how the write/read ratio moves the write-limited /
// symmetric crossover (paper Fig. 11 generalized to the whole ratio).
func BenchmarkAblationLambda(b *testing.B) {
	for _, w := range []int{50, 150, 300} {
		w := w
		b.Run(fmt.Sprintf("w%dns", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := wlpm.New(wlpm.WithCapacity(256<<20),
					wlpm.WithLatencies(10*time.Nanosecond, time.Duration(w)*time.Nanosecond))
				if err != nil {
					b.Fatal(err)
				}
				in, err := sys.Create("in")
				if err != nil {
					b.Fatal(err)
				}
				if err := wlpm.GenerateRecords(microRows, 42, in.Append); err != nil {
					b.Fatal(err)
				}
				if err := in.Close(); err != nil {
					b.Fatal(err)
				}
				out, err := sys.Create("out")
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Sort(wlpm.LazySort(), in, out, int64(microMemFrac*microRows*wlpm.RecordSize)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Energy ablation (paper §4.3): the asymmetry also manifests as power.
// With the PCM literature's ~2/16 pJ-per-bit figures the energy ratio is
// 8 — *smaller* than the default latency λ of 15 — so aggressive
// read-for-write trades (LaS) can cost more energy than they save, while
// moderate intensities (SegS 0.2) still win on writes. This is precisely
// why the write-intensity knob must be re-placed per optimization
// objective, the tunability argument of §4.3. Reported as µJ/op.
func BenchmarkAblationEnergy(b *testing.B) {
	for _, tc := range []struct {
		name string
		algo wlpm.SortAlgorithm
	}{
		{"ExMS", wlpm.ExternalMergeSort()},
		{"SegS20", wlpm.SegmentSort(0.2)},
		{"LaS", wlpm.LazySort()},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				sys, err := wlpm.New(wlpm.WithCapacity(256 << 20))
				if err != nil {
					b.Fatal(err)
				}
				in, err := sys.Create("in")
				if err != nil {
					b.Fatal(err)
				}
				if err := wlpm.GenerateRecords(microRows, 42, in.Append); err != nil {
					b.Fatal(err)
				}
				if err := in.Close(); err != nil {
					b.Fatal(err)
				}
				out, err := sys.Create("out")
				if err != nil {
					b.Fatal(err)
				}
				sys.ResetStats()
				if err := sys.Sort(tc.algo, in, out, int64(microMemFrac*microRows*wlpm.RecordSize)); err != nil {
					b.Fatal(err)
				}
				energy += sys.EnergyPJ()
			}
			b.ReportMetric(energy/float64(b.N)/1e6, "µJ/op")
		})
	}
}

// Replacement-selection run-length ablation: ExMS run formation should
// produce ≈2M-record runs on random input (the Eq. 1 assumption).
func BenchmarkAblationRunFormation(b *testing.B) {
	for _, memFrac := range []float64{0.01, 0.05, 0.10} {
		memFrac := memFrac
		b.Run(fmt.Sprintf("mem%.0f%%", memFrac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := wlpm.New(wlpm.WithCapacity(256 << 20))
				if err != nil {
					b.Fatal(err)
				}
				in, err := sys.Create("in")
				if err != nil {
					b.Fatal(err)
				}
				if err := wlpm.GenerateRecords(microRows, 42, in.Append); err != nil {
					b.Fatal(err)
				}
				if err := in.Close(); err != nil {
					b.Fatal(err)
				}
				out, err := sys.Create("out")
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Sort(wlpm.ExternalMergeSort(), in, out, int64(memFrac*microRows*wlpm.RecordSize)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
