package wlpm

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"wlpm/client"
	"wlpm/internal/server"
)

// serveStarPlan is the star pipeline of the concurrency acceptance
// tests, as plan DSL with every algorithm pinned — so the in-process
// reference and every remote client compile the identical physical plan
// and results can be compared byte for byte.
const serveStarPlan = "scan(dim2) | join(scan(dim1) | join(scan(fact); GJ); GJ) | " +
	"project(a0,a1,a12,a13,a23,a24,a5,a16,a27,a8) | groupby(a3; ExMS) | orderby(ExMS)"

// recordingEngine wraps the façade's serve engine so the test can reach
// the concrete *Rows cursors the server hands out — and therefore their
// execution contexts' temp accounting — from outside the handler.
type recordingEngine struct {
	server.Engine
	mu      sync.Mutex
	streams []*Rows
}

func (e *recordingEngine) OpenSession(tenant string, budget int64, failFast bool, bidSlack float64) (server.EngineSession, error) {
	s, err := e.Engine.OpenSession(tenant, budget, failFast, bidSlack)
	if err != nil {
		return nil, err
	}
	return &recordingSession{EngineSession: s, eng: e}, nil
}

type recordingSession struct {
	server.EngineSession
	eng *recordingEngine
}

func (s *recordingSession) Query(dsl string) (server.EngineQuery, error) {
	q, err := s.EngineSession.Query(dsl)
	if err != nil {
		return nil, err
	}
	return &recordingQuery{EngineQuery: q, eng: s.eng}, nil
}

type recordingQuery struct {
	server.EngineQuery
	eng *recordingEngine
}

func (q *recordingQuery) Rows(ctx context.Context) (server.RowStream, error) {
	rs, err := q.EngineQuery.Rows(ctx)
	if err != nil {
		return nil, err
	}
	if rows, ok := rs.(*Rows); ok {
		q.eng.mu.Lock()
		q.eng.streams = append(q.eng.streams, rows)
		q.eng.mu.Unlock()
	}
	return rs, nil
}

// liveTemps sums the live temporaries of every cursor the server opened.
func (e *recordingEngine) liveTemps() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.streams {
		n += r.ec.LiveTemps()
	}
	return n
}

// newServeStack builds a system with the star tables, a server over it
// (open tenancy) and an httptest front, plus the recording engine for
// leak assertions.
func newServeStack(t *testing.T, nDim, nFact int, budget int64) (*System, map[string]Collection, *recordingEngine, *server.Server, *httptest.Server) {
	t.Helper()
	sys := newTestSystem(t, WithMemoryBudget(budget))
	dim1, dim2, fact := loadStarTables(t, sys, nDim, nFact, "")
	catalog := map[string]Collection{"dim1": dim1, "dim2": dim2, "fact": fact}
	eng := &recordingEngine{Engine: sys.ServeEngine(catalog)}
	srv, err := server.New(server.Config{Engine: eng, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return sys, catalog, eng, srv, hs
}

// TestServeEndToEndByteIdentical is the serving acceptance scenario:
// K=8 concurrent remote clients stream the star pipeline and every one
// receives bytes identical to in-process execution of the same plan;
// afterwards the metrics endpoint's broker figures are consistent with
// the run and nothing is left granted.
func TestServeEndToEndByteIdentical(t *testing.T) {
	total := int64(4 << 20)
	sys, catalog, eng, srv, hs := newServeStack(t, 200, 2000, total)

	// In-process reference, via the identical DSL and session budget
	// (the server's open-mode default: a quarter of the system budget).
	refSess := sys.Session()
	q, err := refSess.ParseQuery(serveStarPlan, CollectionLookup(catalog))
	if err != nil {
		t.Fatal(err)
	}
	ref := collectRows(t, mustRows(t, q))
	if len(ref) == 0 {
		t.Fatal("empty reference result")
	}

	const K = 8
	got := make([][]byte, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := client.Dial(hs.URL).Session(fmt.Sprintf("c%d", i))
			rows, err := sess.Query(serveStarPlan).Rows(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			defer rows.Close()
			var buf bytes.Buffer
			for rows.Next() {
				buf.Write(rows.Record())
			}
			if err := rows.Err(); err != nil {
				errs[i] = err
				return
			}
			got[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], ref) {
			t.Fatalf("client %d received %d bytes differing from the %d-byte in-process reference", i, len(got[i]), len(ref))
		}
	}

	met, err := client.Dial(hs.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if met.Broker.Total != total {
		t.Fatalf("metrics broker total %d, want %d", met.Broker.Total, total)
	}
	if met.Broker.HighWater <= 0 || met.Broker.HighWater > total {
		t.Fatalf("metrics broker high water %d out of (0, %d]", met.Broker.HighWater, total)
	}
	if met.Broker.InUse != 0 || met.InFlight != 0 || met.GateDepth != 0 {
		t.Fatalf("after drain: in_use=%d in_flight=%d gate_depth=%d", met.Broker.InUse, met.InFlight, met.GateDepth)
	}
	var queries, completed int64
	for _, tm := range met.Tenants {
		queries += tm.Queries
		completed += tm.Completed
	}
	if queries != K || completed != K {
		t.Fatalf("metrics count %d queries (%d completed), want %d", queries, completed, K)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if use := sys.MemoryInUse(); use != 0 {
		t.Fatalf("%d B still granted after shutdown", use)
	}
	if n := eng.liveTemps(); n != 0 {
		t.Fatalf("%d temporaries still live after shutdown", n)
	}
}

// TestServeClientDisconnectNoLeaks kills a client mid-stream and then
// proves the server side fully unwound: the memory grant released, the
// cursor's temporaries destroyed, the handler goroutines gone — and the
// service still healthy for the next query.
func TestServeClientDisconnectNoLeaks(t *testing.T) {
	// The wide plan streams every fact row (no group-by), megabytes of
	// NDJSON — enough to fill the transport buffers and leave the server
	// mid-write when the client walks away.
	const widePlan = "scan(dim1) | join(scan(fact); GJ) | orderby(ExMS)"
	sys, _, eng, srv, hs := newServeStack(t, 200, 20000, 4<<20)

	baseline := runtime.NumGoroutine()

	rows, err := client.Dial(hs.URL).Session("dropper").Query(widePlan).Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
		}
	}
	// Disconnect mid-stream. The server sees the write fail (or the
	// request context die) and cancels the cursor.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	waitUnwound(t, sys, eng, baseline)

	// The service takes the next query as if nothing happened.
	rows2, err := client.Dial(hs.URL).Session("dropper").Query(widePlan).Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows2.Next() {
		n++
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows after reconnect")
	}

	met, err := client.Dial(hs.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tm := met.Tenants["dropper"]
	if tm.Cancelled != 1 || tm.Completed != 1 || tm.Queries != 2 {
		t.Fatalf("dropper counters %+v, want 2 queries = 1 cancelled + 1 completed", tm)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitUnwound(t, sys, eng, baseline)
}

// TestServeShutdownCancelsInFlight checks graceful shutdown's second
// phase: a cursor that outlives the drain window is cancelled, its
// grant and temporaries released.
func TestServeShutdownCancelsInFlight(t *testing.T) {
	sys := newTestSystem(t, WithMemoryBudget(4<<20))
	dim1, dim2, fact := loadStarTables(t, sys, 200, 2000, "")
	catalog := map[string]Collection{"dim1": dim1, "dim2": dim2, "fact": fact}
	eng := &recordingEngine{Engine: sys.ServeEngine(catalog)}
	srv, err := server.New(server.Config{Engine: eng, DrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	rows, err := client.Dial(hs.URL).Session("slow").Query(serveStarPlan).Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// Don't read further: the stream idles past the drain window.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sys.MemoryInUse() != 0 || eng.liveTemps() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("after forced shutdown: %d B granted, %d temps live", sys.MemoryInUse(), eng.liveTemps())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitUnwound polls until no grant is held, no temp is live and the
// goroutine count is back at (or under) the baseline plus a small
// allowance for idle HTTP keep-alive machinery.
func waitUnwound(t *testing.T, sys *System, eng *recordingEngine, baseline int) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sys.MemoryInUse() == 0 && eng.liveTemps() == 0 && runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("did not unwind: %d B granted, %d temps, %d goroutines (baseline %d)",
				sys.MemoryInUse(), eng.liveTemps(), runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}
