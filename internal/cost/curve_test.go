package cost

import (
	"math"
	"testing"
)

// TestBestSortPlanIsArgmin: the returned plan must price at the minimum
// of the candidate set across a (t, m, λ) grid.
func TestBestSortPlanIsArgmin(t *testing.T) {
	for _, lambda := range []float64{1.5, 5, 15, 40} {
		for _, frac := range []float64{0.01, 0.05, 0.15} {
			tb := 4000.0
			m := tb * frac
			best := BestSortPlan(tb, m, lambda)
			candidates := []Profile{
				ExMSProfile(tb, m),
				SelSProfile(tb, m),
				LaSProfile(tb, m, lambda),
				SegSProfile(BestKnob(lambda, func(x float64) Profile { return SegSProfile(x, tb, m) },
					SegmentSortOptimalX(tb, m, lambda)), tb, m),
				HybSProfile(BestKnob(lambda, func(x float64) Profile { return HybSProfile(x, tb, m) }), tb, m),
			}
			min := math.Inf(1)
			for _, p := range candidates {
				if c := p.Price(1, lambda); c < min {
					min = c
				}
			}
			if best.Cost > min*(1+1e-12) {
				t.Errorf("λ=%.1f m=%.0f: BestSortPlan %s at %.6g, candidate minimum %.6g",
					lambda, m, best.Algo, best.Cost, min)
			}
			if got := best.Profile.Price(1, lambda); math.Abs(got-best.Cost) > 1e-9*(1+best.Cost) {
				t.Errorf("plan cost %.6g disagrees with its own profile %.6g", best.Cost, got)
			}
		}
	}
}

// TestBestJoinPlanIsArgmin is the join twin.
func TestBestJoinPlanIsArgmin(t *testing.T) {
	for _, lambda := range []float64{1.5, 15, 40} {
		tb, vb := 1000.0, 10000.0
		for _, frac := range []float64{0.01, 0.05, 0.15} {
			m := tb * frac
			best := BestJoinPlan(tb, vb, m, lambda)
			min := math.Inf(1)
			for _, p := range []Profile{
				NLJProfile(tb, vb, m), GJProfile(tb, vb), HJProfile(tb, vb, m),
				LaJProfile(tb, vb, m, lambda),
			} {
				if c := p.Price(1, lambda); c < min {
					min = c
				}
			}
			if best.Cost > min*(1+1e-12) {
				t.Errorf("λ=%.1f m=%.0f: BestJoinPlan %s at %.6g above a fixed candidate at %.6g",
					lambda, m, best.Algo, best.Cost, min)
			}
		}
	}
}

// TestSampleCurveInterpolation: sampling a known function and reading it
// back must clamp at the ends and interpolate monotonically in between.
func TestSampleCurveInterpolation(t *testing.T) {
	price := func(m float64) float64 { return 1000 / m }
	c := SampleCurve(price, 2, 512, 16)
	if len(c.M) != 16 || c.M[0] != 2 || c.M[15] != 512 {
		t.Fatalf("grid endpoints wrong: %v", c.M)
	}
	if got := c.Cost(1); got != c.C[0] {
		t.Errorf("below-range Cost = %g, want clamp to %g", got, c.C[0])
	}
	if got := c.Cost(1 << 20); got != c.C[15] {
		t.Errorf("above-range Cost = %g, want clamp to %g", got, c.C[15])
	}
	prev := math.Inf(1)
	for m := 2.0; m <= 512; m *= 1.3 {
		got := c.Cost(m)
		if got > prev+1e-9 {
			t.Errorf("interpolated curve not non-increasing at m=%.1f: %g after %g", m, got, prev)
		}
		prev = got
		if want := price(m); math.Abs(got-want)/want > 0.25 {
			t.Errorf("Cost(%.1f) = %g, want within 25%% of %g", m, got, want)
		}
	}
	if mb := c.Marginal(2, 100); mb <= 0 {
		t.Errorf("Marginal on a falling curve = %g, want positive", mb)
	}
	if mb := c.Marginal(512, 100); mb != 0 {
		t.Errorf("Marginal past the sampled range = %g, want 0 (clamped)", mb)
	}
}
