package cost

import "math"

// Heatmap is a grid of HybJ cost values over the (x, y) unit square,
// reproducing one panel of Fig. 2.
type Heatmap struct {
	Ratio  float64 // |T|/|V| cardinality ratio (T the smaller input)
	Lambda float64
	N      int         // grid resolution per axis
	Cost   [][]float64 // Cost[iy][ix] = Jh(x=ix/(N-1), y=iy/(N-1))
}

// HybridJoinHeatmap evaluates Eq. 6 on an n×n grid for the given input
// ratio and λ, normalizing |V| = 1 000 000 buffers, |T| = ratio⁻¹… — to
// match the paper's panels T is the smaller input, so |T| = |V|/ratio
// with ratio ≥ 1 interpreted as |V|/|T|. Memory is the paper's Fig. 2
// assumption M = √(1.2·|T|) (the Grace-applicability boundary).
func HybridJoinHeatmap(ratioVoverT, lambda float64, n int) *Heatmap {
	if n < 2 {
		n = 2
	}
	v := 1_000_000.0
	t := v / ratioVoverT
	m := math.Sqrt(1.2 * t)
	h := &Heatmap{Ratio: ratioVoverT, Lambda: lambda, N: n, Cost: make([][]float64, n)}
	for iy := 0; iy < n; iy++ {
		h.Cost[iy] = make([]float64, n)
		y := float64(iy) / float64(n-1)
		for ix := 0; ix < n; ix++ {
			x := float64(ix) / float64(n-1)
			h.Cost[iy][ix] = HybridJoinCost(x, y, t, v, m, lambda)
		}
	}
	return h
}

// Min and Max report the extreme cells, for shading.
func (h *Heatmap) MinMax() (min, max float64) {
	min, max = h.Cost[0][0], h.Cost[0][0]
	for _, row := range h.Cost {
		for _, c := range row {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
	}
	return min, max
}
