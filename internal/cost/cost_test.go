package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentSortEndpoints(t *testing.T) {
	const tt, m, lambda = 100000, 5000, 15
	// x = 1 is external mergesort, x = 0 is pure selection sort.
	if got, want := SegmentSortCost(1, tt, m, lambda), ExternalMergeSortCost(tt, m, lambda); math.Abs(got-want) > want*0.05 {
		t.Errorf("SegS(1) = %v, ExMS = %v", got, want)
	}
	s0 := SegmentSortCost(0, tt, m, lambda)
	sel := SelectionSortCost(tt, m, lambda)
	if math.Abs(s0-sel) > sel*0.05 {
		t.Errorf("SegS(0) = %v, SelS = %v", s0, sel)
	}
}

func TestSegmentSortOptimalXMinimizes(t *testing.T) {
	cases := []struct{ t, m, lambda float64 }{
		{100000, 5000, 15},
		{100000, 10000, 8},
		{50000, 1000, 5},
		{200000, 4000, 2},
	}
	for _, tc := range cases {
		if !SegmentSortApplicable(tc.t, tc.m, tc.lambda) {
			continue
		}
		x := SegmentSortOptimalX(tc.t, tc.m, tc.lambda)
		if x <= 0 || x >= 1 {
			t.Errorf("optimal x = %v for %+v, want interior", x, tc)
			continue
		}
		opt := SegmentSortCost(x, tc.t, tc.m, tc.lambda)
		for g := 0.05; g < 1; g += 0.05 {
			if c := SegmentSortCost(g, tc.t, tc.m, tc.lambda); c < opt*0.999 {
				t.Errorf("grid x=%v cost %v beats 'optimal' x=%v cost %v for %+v", g, c, x, opt, tc)
				break
			}
		}
	}
}

func TestSegmentSortApplicability(t *testing.T) {
	// λ beyond 2(|T|/M)lnM makes the model inapplicable.
	if SegmentSortApplicable(1000, 900, 50) {
		t.Error("applicable with tiny |T|/M and huge λ")
	}
	if !SegmentSortApplicable(100000, 1000, 15) {
		t.Error("not applicable in the paper's main regime")
	}
	if x := SegmentSortOptimalX(1000, 900, 1e9); x != 0 {
		t.Errorf("inapplicable model returned x = %v, want 0", x)
	}
}

func TestLazySortThresholdMatchesEq5(t *testing.T) {
	// Eq. 5: n = ⌊|T|λ / (M(λ+1))⌋.
	if got := LazySortMaterializeIteration(160000, 8000, 15); got != 18 {
		t.Errorf("n = %d, want 18", got)
	}
	if got := LazySortMaterializeIteration(100, 1000, 15); got != 1 {
		t.Errorf("tiny input n = %d, want clamp to 1", got)
	}
}

func TestGraceInvariants(t *testing.T) {
	const tt, v, lambda = 1e4, 1e5, 5.0
	// HybJ at (1,1) degenerates to Grace join.
	m := math.Sqrt(1.2 * tt)
	if got, want := HybridJoinCost(1, 1, tt, v, m, lambda), GraceJoinCost(tt, v, lambda); math.Abs(got-want) > 1e-6 {
		t.Errorf("HybJ(1,1) = %v, Grace = %v", got, want)
	}
	// SegJ materializing all k partitions degenerates to Grace join.
	k := 9
	if got, want := SegmentedGraceCost(float64(k), k, tt, v, lambda), GraceJoinCost(tt, v, lambda); math.Abs(got-want) > 1e-6 {
		t.Errorf("SegJ(x=k) = %v, Grace = %v", got, want)
	}
}

func TestHybridJoinSaddleIsCritical(t *testing.T) {
	const tt, v, m, lambda = 5e4, 5e5, 3e3, 5.0
	x, y := HybridJoinSaddle(tt, v, m, lambda)
	if x <= 0 || x >= 1 || y <= 0 || y >= 1 {
		t.Fatalf("saddle (%v, %v) not interior", x, y)
	}
	// Finite-difference partials vanish at the saddle (Eqs. 7–8).
	const h = 1e-6
	dx := (HybridJoinCost(x+h, y, tt, v, m, lambda) - HybridJoinCost(x-h, y, tt, v, m, lambda)) / (2 * h)
	dy := (HybridJoinCost(x, y+h, tt, v, m, lambda) - HybridJoinCost(x, y-h, tt, v, m, lambda)) / (2 * h)
	scale := HybridJoinCost(x, y, tt, v, m, lambda)
	if math.Abs(dx) > scale*1e-3 || math.Abs(dy) > scale*1e-3 {
		t.Errorf("partials at saddle: dJ/dx = %v, dJ/dy = %v (scale %v)", dx, dy, scale)
	}
}

func TestHashJoinCostStructure(t *testing.T) {
	const tt, v, lambda = 1e4, 1e5, 5.0
	// One iteration: read both inputs once, write nothing.
	if got, want := HashJoinCost(tt, v, tt, lambda), tt+v; math.Abs(got-want) > 1 {
		t.Errorf("HJ k=1 cost = %v, want %v", got, want)
	}
	// More iterations cost strictly more.
	if HashJoinCost(tt, v, tt/10, lambda) <= HashJoinCost(tt, v, tt/2, lambda) {
		t.Error("HJ cost not increasing as memory shrinks")
	}
}

func TestNestedLoopsCost(t *testing.T) {
	if got := NestedLoopsJoinCost(100, 1000, 50); got != 100+2*1000 {
		t.Errorf("NLJ cost = %v, want 2100", got)
	}
	if got := NestedLoopsJoinCost(100, 1000, 200); got != 100+1000 {
		t.Errorf("NLJ cost (T fits) = %v, want 1100", got)
	}
}

func TestLazyHashJoinThreshold(t *testing.T) {
	// λ-consistent form: n = ⌊kλ/(λ+1)⌋ (see the doc comment for why the
	// printed Eq. 11 drops the λ).
	if got := LazyHashJoinMaterializeIteration(16, 15); got != 15 {
		t.Errorf("n = %d, want 15", got)
	}
	if got := LazyHashJoinMaterializeIteration(2, 1); got != 1 {
		t.Errorf("n = %d, want 1", got)
	}
	// Laziness extends with λ: more expensive writes → later materialization.
	if LazyHashJoinMaterializeIteration(20, 2) >= LazyHashJoinMaterializeIteration(20, 19) {
		t.Error("threshold not increasing in λ")
	}
}

func TestSegmentedGraceBound(t *testing.T) {
	// With k small and λ large the bound is permissive; Eq. 10 shape.
	b := SegmentedGraceBeatsGraceBound(3, 15)
	if b <= 0 {
		t.Errorf("bound %v not positive for k=3 λ=15", b)
	}
	// Verify against the cost functions: x below the bound beats Grace.
	const tt, v = 1e4, 1e5
	for _, x := range []float64{0.5, 1, 1.5, 2} {
		if x >= b {
			continue
		}
		if SegmentedGraceCost(x, 3, tt, v, 15) >= GraceJoinCost(tt, v, 15) {
			t.Errorf("x=%v below bound %v but does not beat Grace", x, b)
		}
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("τ(identical) = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Errorf("τ(reversed) = %v, want -1", got)
	}
	if got := KendallTau(a, []float64{1, 2}); got != 0 {
		t.Errorf("τ(length mismatch) = %v, want 0", got)
	}
	// One swapped adjacent pair: τ = 1 − 2/10 = 0.8.
	if got := KendallTau(a, []float64{2, 1, 3, 4, 5}); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("τ(one swap) = %v, want 0.8", got)
	}
}

func TestQuickKendallBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		tau := KendallTau(a, b)
		return tau >= -1 && tau <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyHashJoinLedgerTable1(t *testing.T) {
	// Table 1 with unit = M + M_T: check the printed patterns.
	rows := LazyHashJoinLedger(5, 60, 40, 2)
	unit := 100.0
	for i, row := range rows {
		it := float64(i + 1)
		if row.StandardReads != (5-it+1)*unit {
			t.Errorf("row %d standard reads = %v", i+1, row.StandardReads)
		}
		if row.StandardWrites != (5-it)*unit {
			t.Errorf("row %d standard writes = %v", i+1, row.StandardWrites)
		}
		if row.LazyReads != 5*unit || row.LazyWrites != 0 {
			t.Errorf("row %d lazy profile = (%v, %v)", i+1, row.LazyReads, row.LazyWrites)
		}
		if row.Savings != (5-it)*unit*2 {
			t.Errorf("row %d savings = %v", i+1, row.Savings)
		}
		if row.Penalty != (it-1)*unit {
			t.Errorf("row %d penalty = %v", i+1, row.Penalty)
		}
	}
}

func TestHeatmapFig2(t *testing.T) {
	for _, ratio := range []float64{1, 10, 100} {
		for _, lambda := range []float64{2, 5, 8} {
			h := HybridJoinHeatmap(ratio, lambda, 21)
			min, max := h.MinMax()
			if !(min < max) {
				t.Errorf("ratio=%v λ=%v: degenerate heatmap [%v, %v]", ratio, lambda, min, max)
			}
			// The Grace corner (1,1) must be cheap relative to the NL
			// corner (0,0) when inputs are equal-sized (Fig. 2 top row).
			if ratio == 1 {
				if h.Cost[h.N-1][h.N-1] >= h.Cost[0][0] {
					t.Errorf("ratio=1 λ=%v: Grace corner %v not cheaper than NL corner %v",
						lambda, h.Cost[h.N-1][h.N-1], h.Cost[0][0])
				}
			}
		}
	}
}

func TestHybridSortCostShape(t *testing.T) {
	const tt, m, lambda = 100000, 5000, 15
	// Higher write intensity (bigger selection region) must not increase
	// the modelled write component: cost at x=0.9 below cost at x=0.1 in
	// this regime (matches Fig. 9's HybS trend).
	if HybridSortCost(0.9, tt, m, lambda) >= HybridSortCost(0.1, tt, m, lambda) {
		t.Error("HybS model: intensity 0.9 not cheaper than 0.1")
	}
}

func TestLazySortCostPositiveAndBounded(t *testing.T) {
	const tt, m, lambda = 100000.0, 5000.0, 15.0
	c := LazySortCost(tt, m, lambda)
	if c <= 0 {
		t.Fatalf("LaS cost = %v", c)
	}
	// Lower bound: one full read and the minimal writes.
	if c < tt*(1+lambda) {
		t.Errorf("LaS cost %v below the floor %v", c, tt*(1+lambda))
	}
}
