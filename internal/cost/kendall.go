package cost

// KendallTau computes Kendall's τ-a rank correlation between two score
// slices over the same items (§4.2.3, Fig. 12): the fraction of
// concordant minus discordant pairs. 1 means the orderings agree
// completely, −1 that they are reversed, 0 that they are independent.
// Tied pairs in either slice count as neither concordant nor discordant.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			da := sign(a[i] - a[j])
			db := sign(b[i] - b[j])
			switch {
			case da == 0 || db == 0:
			case da == db:
				concordant++
			default:
				discordant++
			}
		}
	}
	pairs := len(a) * (len(a) - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// LedgerRow is one iteration of Table 1: the progress of standard hash
// join compared to lazy hash join, in buffers (reads/writes) and cost
// units (savings/penalty).
type LedgerRow struct {
	Iteration      int
	StandardReads  float64
	StandardWrites float64
	LazyReads      float64
	LazyWrites     float64
	Savings        float64 // (k−i)(M+M_T)·λ·r saved writes
	Penalty        float64 // (i−1)(M+M_T)·r extra reads
}

// LazyHashJoinLedger reproduces Table 1 for k iterations with per-
// iteration input portion m + mt (the paper's M + M_T) and ratio λ.
func LazyHashJoinLedger(k int, m, mt, lambda float64) []LedgerRow {
	unit := m + mt
	rows := make([]LedgerRow, 0, k)
	for i := 1; i <= k; i++ {
		fi := float64(i)
		fk := float64(k)
		rows = append(rows, LedgerRow{
			Iteration:      i,
			StandardReads:  (fk - fi + 1) * unit,
			StandardWrites: (fk - fi) * unit,
			LazyReads:      fk * unit,
			LazyWrites:     0,
			Savings:        (fk - fi) * unit * lambda,
			Penalty:        (fi - 1) * unit,
		})
	}
	return rows
}
