package cost

import (
	"testing"
	"testing/quick"
)

func TestProfilePrice(t *testing.T) {
	p := Profile{Reads: 10, Writes: 2}
	if got := p.Price(1, 15); got != 40 {
		t.Errorf("Price = %v, want 40", got)
	}
}

func TestSortProfilesStructure(t *testing.T) {
	const tt, m = 100000.0, 5000.0

	exms := ExMSProfile(tt, m)
	// Run formation + output: two full writes; input + run re-read: two
	// full reads (single merge pass at this fan-in).
	if exms.Writes != 2*tt || exms.Reads != 2*tt {
		t.Errorf("ExMS profile %+v, want reads=writes=2|T|", exms)
	}

	sels := SelSProfile(tt, m)
	if sels.Writes != tt {
		t.Errorf("SelS writes %v, want |T| (write-minimal)", sels.Writes)
	}
	if sels.Reads != 20*tt {
		t.Errorf("SelS reads %v, want |T|²/M = 20|T|", sels.Reads)
	}

	// SegS endpoints collapse to the neighbours.
	if got := SegSProfile(1, tt, m); got != exms {
		t.Errorf("SegS(1) = %+v, want ExMS %+v", got, exms)
	}
	if got := SegSProfile(0, tt, m); got != sels {
		t.Errorf("SegS(0) = %+v, want SelS %+v", got, sels)
	}

	// Writes grow with intensity; reads shrink.
	lo, hi := SegSProfile(0.2, tt, m), SegSProfile(0.8, tt, m)
	if !(lo.Writes < hi.Writes && lo.Reads > hi.Reads) {
		t.Errorf("SegS intensity trade broken: low %+v high %+v", lo, hi)
	}
}

func TestHybSProfileBounds(t *testing.T) {
	const tt, m = 100000.0, 5000.0
	p := HybSProfile(0.5, tt, m)
	// Never fewer writes than the output, never more than ExMS-like 2|T|
	// (plus merge passes).
	if p.Writes < tt || p.Writes > 2.5*tt {
		t.Errorf("HybS writes %v out of [|T|, 2.5|T|]", p.Writes)
	}
	// Higher intensity diverts more records straight to the output.
	if HybSProfile(0.9, tt, m).Writes >= HybSProfile(0.1, tt, m).Writes {
		t.Error("HybS writes not decreasing in intensity")
	}
}

func TestJoinProfilesStructure(t *testing.T) {
	const tt, v, m = 10000.0, 100000.0, 500.0

	gj := GJProfile(tt, v)
	if gj.Writes != (tt+v)+v || gj.Reads != 2*(tt+v) {
		t.Errorf("GJ profile %+v", gj)
	}

	nlj := NLJProfile(tt, v, m)
	if nlj.Writes != v {
		t.Errorf("NLJ writes %v, want output only", nlj.Writes)
	}
	if nlj.Reads <= v {
		t.Errorf("NLJ reads %v suspiciously low", nlj.Reads)
	}

	hj := HJProfile(tt, v, m)
	if hj.Writes <= gj.Writes {
		t.Errorf("HJ writes %v not above GJ %v", hj.Writes, gj.Writes)
	}

	// SegJ at full intensity materializes every partition ≈ Grace.
	segFull := SegJProfile(1, tt, v, m)
	if segFull.Writes != gj.Writes {
		t.Errorf("SegJ(1) writes %v, want GJ %v", segFull.Writes, gj.Writes)
	}
	// Lower intensity: fewer writes, more reads.
	seg2, seg8 := SegJProfile(0.2, tt, v, m), SegJProfile(0.8, tt, v, m)
	if !(seg2.Writes < seg8.Writes && seg2.Reads > seg8.Reads) {
		t.Errorf("SegJ trade broken: %+v vs %+v", seg2, seg8)
	}

	// HybJ at (1,1) degenerates to Grace's write profile.
	hybFull := HybJProfile(1, 1, tt, v, m)
	if hybFull.Writes != gj.Writes {
		t.Errorf("HybJ(1,1) writes %v, want GJ %v", hybFull.Writes, gj.Writes)
	}
	// HybJ at (0,0) is nested loops.
	hyb0 := HybJProfile(0, 0, tt, v, m)
	if hyb0.Writes != nlj.Writes {
		t.Errorf("HybJ(0,0) writes %v, want NLJ %v", hyb0.Writes, nlj.Writes)
	}
}

func TestLazyProfilesStructure(t *testing.T) {
	const tt, m, lambda = 100000.0, 5000.0, 15.0

	las := LaSProfile(tt, m, lambda)
	sels := SelSProfile(tt, m)
	exms := ExMSProfile(tt, m)
	// Lazy sort sits between the write-minimal and symmetric extremes:
	// fewer writes than ExMS (it defers materialization), more reads than
	// ExMS, and at least the output's |T| writes.
	if las.Writes < tt || las.Writes >= exms.Writes {
		t.Errorf("LaS writes %v out of [|T|, ExMS %v)", las.Writes, exms.Writes)
	}
	if las.Reads <= exms.Reads || las.Reads > sels.Reads {
		t.Errorf("LaS reads %v out of (ExMS %v, SelS %v]", las.Reads, exms.Reads, sels.Reads)
	}

	const v = 10 * tt
	laj := LaJProfile(tt, v, m, lambda)
	hj := HJProfile(tt, v, m)
	// Lazy hash join trades rewrites for re-reads against standard HJ.
	if laj.Writes >= hj.Writes {
		t.Errorf("LaJ writes %v not below HJ %v", laj.Writes, hj.Writes)
	}
	if laj.Reads <= hj.Reads {
		t.Errorf("LaJ reads %v not above HJ %v", laj.Reads, hj.Reads)
	}
	// A higher λ defers materialization further: fewer writes still.
	lajHot := LaJProfile(tt, v, m, 2)
	if laj.Writes > lajHot.Writes {
		t.Errorf("LaJ writes at λ=15 (%v) above λ=2 (%v)", laj.Writes, lajHot.Writes)
	}

	// Degenerate sizes return empty profiles instead of looping.
	for _, p := range []Profile{
		LaSProfile(0, m, lambda), LaSProfile(tt, 0, lambda),
		LaJProfile(0, v, m, lambda), LaJProfile(tt, v, 0, lambda),
	} {
		if p != (Profile{}) {
			t.Errorf("degenerate lazy profile %+v, want zero", p)
		}
	}
}

// Property: profiles are non-negative and monotone in input size.
func TestQuickProfilesSane(t *testing.T) {
	f := func(tRaw, mRaw uint16, x8 uint8) bool {
		tt := float64(tRaw%10000) + 100
		m := float64(mRaw%1000) + 10
		x := float64(x8%101) / 100
		for _, p := range []Profile{
			ExMSProfile(tt, m), SelSProfile(tt, m), SegSProfile(x, tt, m),
			HybSProfile(x, tt, m), GJProfile(tt, 10*tt), HJProfile(tt, 10*tt, m),
			NLJProfile(tt, 10*tt, m), HybJProfile(x, 1-x, tt, 10*tt, m),
			SegJProfile(x, tt, 10*tt, m),
			LaSProfile(tt, m, 1+14*x), LaJProfile(tt, 10*tt, m, 1+14*x),
		} {
			if p.Reads < 0 || p.Writes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
