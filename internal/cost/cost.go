// Package cost implements the paper's analytic cost model (§2) for every
// sort and join algorithm, the knob-placement solvers derived from it, and
// the Kendall-τ concordance machinery of the validation study (§4.2.3).
//
// Conventions: sizes t (=|T|) and v (=|V|), memory m (=M) are measured in
// buffers (the paper's cacheline-multiple I/O unit); the read cost r is
// normalized to 1, so every returned cost is in units of buffer reads;
// lambda (=λ) is the write/read cost ratio, λ > 1. Ceilings and floors
// are omitted exactly as in the paper's analysis.
package cost

import "math"

// --- Sorting (§2.1) ---

// ExternalMergeSortCost is the cost of ExMS with replacement-selection
// run formation producing runs of ≈ 2M: the run-formation pass reads and
// writes the input once, and each of the log_M(|T|/2M) merge passes does
// the same. This is Eq. 1's x = 1 specialization.
func ExternalMergeSortCost(t, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	return t*(1+lambda) + t*(1+lambda)*mergePasses(t/(2*m), m)
}

// SelectionSortCost is the multi-pass selection sort: |T|/M read passes
// over the input plus exactly one write per buffer (§2.1.1:
// r·|T|·(|T|/M + λ)).
func SelectionSortCost(t, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	return t * (t/m + lambda)
}

// SegmentSortCost is Eq. 1: fraction x of the input through external
// mergesort run formation, the rest through selection sort into one long
// run, then a merge of all runs.
func SegmentSortCost(x, t, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	rest := (1 - x) * t
	c := x*t*(1+lambda) + rest*(rest/m+lambda)
	c += t * (1 + lambda) * mergePasses(x*t/(2*m)+1, m)
	return c
}

// mergePasses is log_M(runs), clamped at zero (a single run needs no
// merge pass beyond the final one, which the callers account as writing
// the output).
func mergePasses(runs, m float64) float64 {
	if runs <= 1 || m <= 1 {
		return 0
	}
	return math.Log(runs) / math.Log(m)
}

// SegmentSortOptimalX solves Eq. 3 for the write intensity x that
// minimizes Eq. 2, returning the admissible plus-sign root of Eq. 4
// clamped into [0, 1]. When the model is inapplicable (λ too large for
// the discriminant, Eq. 4's sanity conditions) it returns 0: the
// write-minimal setting.
func SegmentSortOptimalX(t, m, lambda float64) float64 {
	if t <= 0 || m <= 1 {
		return 0
	}
	lnM := math.Log(m)
	disc := lnM * (lnM*t*t + 2*t*m*lnM - lambda*m*m)
	if disc < 0 {
		return 0
	}
	x := (-lnM*t + math.Sqrt(disc)) / (m * lnM)
	return clamp01(x)
}

// SegmentSortApplicable is the validity bound derived in §2.1.1's sanity
// check: the cost-minimizing x lies in (0,1) only when
// λ < 2·(|T|/M)·ln M.
func SegmentSortApplicable(t, m, lambda float64) bool {
	if t <= 0 || m <= 1 {
		return false
	}
	return lambda < 2*(t/m)*math.Log(m)
}

// HybridSortCost models HybS (§2.1.2, Algorithm 1). The paper does not
// print a closed form; this model follows the algorithm's structure the
// same way Eq. 1 follows segment sort's: the selection region (x·M) holds
// records written exactly once, directly to the output; the remaining
// input passes through replacement selection with (1−x)·M memory
// (one run write and read each), and the resulting runs of ≈ 2(1−x)M
// buffers are merged with fan-in M. Unlike the paper's continuous
// log_M(runs) (adequate for ExMS's many runs), the pass count here is
// discrete: at realistic budgets all runs merge in a single final pass,
// which is what makes higher intensity cheaper — the measured behaviour
// of Fig. 9.
func HybridSortCost(x, t, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	rr := (1 - x) * m
	if rr < 1 {
		rr = 1
	}
	direct := x * m // buffers emitted straight from the selection region
	if direct > t {
		direct = t
	}
	rest := t - direct
	runs := rest / (2 * rr)
	extra := 0.0 // merge passes beyond the final one
	if runs > 1 && m > 1 {
		if p := math.Ceil(math.Log(runs)/math.Log(m)) - 1; p > 0 {
			extra = p
		}
	}
	// reads: input scan + run re-reads; writes: runs + output.
	return t*(1+lambda) + rest*(1+lambda)*(1+extra)
}

// LazySortMaterializeIteration is Eq. 5: the iteration n at which lazy
// sort should materialize its intermediate input,
// n = ⌊|T|λ / (M(λ+1))⌋, never below 1.
func LazySortMaterializeIteration(t, m, lambda float64) int {
	if m <= 0 {
		return 1
	}
	n := int(t * lambda / (m * (lambda + 1)))
	if n < 1 {
		n = 1
	}
	return n
}

// LazySortCost models LaS for completeness (the paper excludes the lazy
// algorithms from its optimizer validation because their decisions are
// dynamic): with materialization every n-th iteration the expected cost
// interleaves selection scans with periodic rewrites of the shrinking
// input.
func LazySortCost(t, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	total := 0.0
	remaining := t
	for remaining > 0 {
		n := float64(LazySortMaterializeIteration(remaining, m, lambda))
		// n scans of the current input, emitting n·m buffers.
		emitted := n * m
		if emitted > remaining {
			emitted = remaining
		}
		total += n * remaining // reads: n passes (upper bound; passes shrink with bound filtering)
		total += emitted * lambda
		remaining -= emitted
		if remaining > 0 {
			total += remaining * lambda // materialize Ti
		}
	}
	return total
}

// --- Joins (§2.2) ---

// GraceJoinCost is r(|T|+|V|)(2+λ): read, partition-write, re-read both
// inputs (§2.2.2).
func GraceJoinCost(t, v, lambda float64) float64 {
	return (t + v) * (2 + lambda)
}

// HashJoinCost is the standard iterative hash join of §2.2.3 and
// Table 1's left half: k = |T|/M iterations; iteration i reads the
// surviving (k−i+1)/k of both inputs and writes back (k−i)/k of them.
func HashJoinCost(t, v, m, lambda float64) float64 {
	if t <= 0 {
		return 0
	}
	k := math.Ceil(t / m)
	if k < 1 {
		k = 1
	}
	per := (t + v) / k
	reads, writes := 0.0, 0.0
	for i := 1.0; i <= k; i++ {
		reads += (k - i + 1) * per
		writes += (k - i) * per
	}
	return reads + lambda*writes
}

// NestedLoopsJoinCost is block nested loops: read T once plus one pass
// over V per memory-sized block of T; no writes beyond the output.
func NestedLoopsJoinCost(t, v, m float64) float64 {
	if t <= 0 {
		return 0
	}
	return t + math.Ceil(t/m)*v
}

// HybridJoinCost is Eq. 6, the cost of hybrid Grace-nested-loops with
// fractions x of T and y of V processed by Grace join.
func HybridJoinCost(x, y, t, v, m, lambda float64) float64 {
	return (2+lambda)*(x*t+y*v) + (1-x)*t + t*v/m*(1-x*y)
}

// HybridJoinSaddle returns the saddle point (x_h, y_h) of Eq. 6 from
// Eqs. 7–8: y_h = M(λ+1)/|V|, x_h = M(λ+2)/|T|, each clamped to [0, 1].
func HybridJoinSaddle(t, v, m, lambda float64) (x, y float64) {
	if t <= 0 || v <= 0 {
		return 0, 0
	}
	return clamp01(m * (lambda + 2) / t), clamp01(m * (lambda + 1) / v)
}

// SegmentedGraceCost is Eq. 9: scan both inputs once, write and re-read x
// of the k partitions, and re-scan both inputs once per remaining
// partition.
func SegmentedGraceCost(x float64, k int, t, v, lambda float64) float64 {
	if k < 1 {
		k = 1
	}
	kk := float64(k)
	return (t + v) + x*(1+lambda)*(t+v)/kk + (kk-x)*(t+v)
}

// SegmentedGraceBeatsGraceBound is Eq. 10: segmented Grace outperforms
// Grace join when x < (λ+1−k)k / (λ+1−k²). The bound can be vacuous
// (negative or > k) depending on the sign of the denominator; callers
// treat it as a guide, per the paper ("regardless of outperforming Grace
// join, the choice of x is a knob").
func SegmentedGraceBeatsGraceBound(k int, lambda float64) float64 {
	kk := float64(k)
	den := lambda + 1 - kk*kk
	if den == 0 {
		return math.Inf(1)
	}
	return (lambda + 1 - kk) * kk / den
}

// LazyHashJoinMaterializeIteration is the iteration at which lazy hash
// join's rescan penalty overtakes its write savings: n = ⌊kλ/(λ+1)⌋,
// never below 1.
//
// Note on Eq. 11 as printed: the paper states n = ⌊k/(λ+1)⌋, but that
// contradicts both Table 1's ledger (savings (k−i)·unit·λ stay above the
// penalty (i−1)·unit until i ≈ kλ/(λ+1)) and the paper's own Eq. 5, whose
// identical derivation for lazy sort keeps the λ in the numerator
// (n = |T|λ/(M(λ+1)), which with |T| = kM is exactly kλ/(λ+1)). As
// printed, any λ ≥ k−1 would force materialization on every iteration —
// the algorithm would degenerate to standard hash join precisely when
// writes are most expensive. We take the λ-consistent form.
func LazyHashJoinMaterializeIteration(k int, lambda float64) int {
	n := int(float64(k) * lambda / (lambda + 1))
	if n < 1 {
		n = 1
	}
	return n
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
