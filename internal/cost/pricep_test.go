package cost

import (
	"math"
	"testing"
)

// TestPricePSerialConsistency: par=1 is Price, and price never increases
// with par (the serial floor is the limit).
func TestPricePSerialConsistency(t *testing.T) {
	const tt, v, m, lambda = 100000.0, 300000.0, 5000.0, 15.0
	profiles := map[string]Profile{
		"ExMS":      ExMSProfile(tt, m),
		"SelS":      SelSProfile(tt, m),
		"SegS(0.6)": SegSProfile(0.6, tt, m),
		"HybS(0.4)": HybSProfile(0.4, tt, m),
		"LaS":       LaSProfile(tt, m, lambda),
		"GJ":        GJProfile(tt, v),
		"NLJ":       NLJProfile(tt, v, m),
		"HJ":        HJProfile(tt, v, m),
		"LaJ":       LaJProfile(tt, v, m, lambda),
		"HybJ":      HybJProfile(0.5, 0.5, tt, v, m),
		"SegJ(0.5)": SegJProfile(0.5, tt, v, m),
	}
	for name, p := range profiles {
		if got, want := p.PriceP(1, lambda, 1), p.Price(1, lambda); got != want {
			t.Errorf("%s: PriceP(par=1) = %v, Price = %v", name, got, want)
		}
		prev := p.PriceP(1, lambda, 1)
		for _, par := range []float64{2, 4, 8, 16} {
			cur := p.PriceP(1, lambda, par)
			if cur > prev+1e-9 {
				t.Errorf("%s: price rose from %v to %v at par=%v", name, prev, cur, par)
			}
			floor := p.SerialReads + p.SerialWrites*lambda
			if cur < floor-1e-9 {
				t.Errorf("%s: price %v fell below serial floor %v at par=%v", name, cur, floor, par)
			}
			prev = cur
		}
	}
}

// TestPricePSerialInvariant: fully serial profiles gain nothing from
// parallelism; fully parallel ones divide exactly by par.
func TestPricePSerialInvariant(t *testing.T) {
	const tt, v, m, lambda = 100000.0, 300000.0, 5000.0, 15.0
	for name, p := range map[string]Profile{
		"SelS": SelSProfile(tt, m),
		"LaS":  LaSProfile(tt, m, lambda),
		"HJ":   HJProfile(tt, v, m),
		"LaJ":  LaJProfile(tt, v, m, lambda),
	} {
		if got, want := p.PriceP(1, lambda, 8), p.Price(1, lambda); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s is serial but PriceP(8) = %v, Price = %v", name, got, want)
		}
	}
	for name, p := range map[string]Profile{
		"ExMS": ExMSProfile(tt, m),
		"GJ":   GJProfile(tt, v),
	} {
		if got, want := p.PriceP(1, lambda, 8), p.Price(1, lambda)/8; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s is fully parallel but PriceP(8) = %v, want %v", name, got, want)
		}
	}
}

// TestBestSortPlanPShiftsChoice: at the paper's λ the write-minimal
// serial sorts win small memories serially, but parallelism discounts
// ExMS/HybS and must never make the chosen plan more expensive.
func TestBestSortPlanPShiftsChoice(t *testing.T) {
	const tt, m, lambda = 100000.0, 5000.0, 15.0
	serial := BestSortPlan(tt, m, lambda)
	if got := BestSortPlanP(tt, m, lambda, 1); got != serial {
		t.Fatalf("BestSortPlanP(par=1) = %+v, want %+v", got, serial)
	}
	prev := serial.Cost
	for _, par := range []float64{2, 4, 8} {
		plan := BestSortPlanP(tt, m, lambda, par)
		if plan.Cost > prev+1e-9 {
			t.Errorf("best sort cost rose from %v to %v at par=%v", prev, plan.Cost, par)
		}
		prev = plan.Cost
	}
	// At high parallelism the fully parallel ExMS outruns every
	// serial-floored candidate at this operating point.
	if plan := BestSortPlanP(tt, m, lambda, 64); plan.Algo != SortExMS && plan.Algo != SortHybS {
		t.Errorf("par=64 picked %s (cost %v), want a parallel-phase sort", plan.Algo, plan.Cost)
	}
}

// TestBestJoinPlanPMonotone mirrors the sort check for joins.
func TestBestJoinPlanPMonotone(t *testing.T) {
	const tt, v, m, lambda = 100000.0, 300000.0, 5000.0, 15.0
	serial := BestJoinPlan(tt, v, m, lambda)
	if got := BestJoinPlanP(tt, v, m, lambda, 1); got != serial {
		t.Fatalf("BestJoinPlanP(par=1) = %+v, want %+v", got, serial)
	}
	prev := serial.Cost
	for _, par := range []float64{2, 4, 8} {
		plan := BestJoinPlanP(tt, v, m, lambda, par)
		if plan.Cost > prev+1e-9 {
			t.Errorf("best join cost rose from %v to %v at par=%v", prev, plan.Cost, par)
		}
		prev = plan.Cost
	}
}
