package cost

import "math"

// Marginal-benefit API: the optimizer-facing view of the cost model.
//
// The Profile constructors price one algorithm at one memory point; the
// planner's real question is the inverse — "what is the cheapest way to
// run this blocking stage as a function of its memory share m?". That
// function is what a budget allocator water-fills over: memory should
// flow to the stage whose cost curve bends most, not be split evenly.
// BestSortPlan and BestJoinPlan answer it pointwise (the cheapest shipped
// implementation with its intensity knobs placed, exactly the candidate
// set exec.ChooseSort/ChooseJoin instantiate), and Curve exposes the
// piecewise curve sampled over a memory range for display and analysis.

// Sort algorithm identifiers of BestSortPlan results.
const (
	SortExMS = "ExMS"
	SortSelS = "SelS"
	SortLaS  = "LaS"
	SortSegS = "SegS"
	SortHybS = "HybS"
)

// Join algorithm identifiers of BestJoinPlan results.
const (
	JoinNLJ  = "NLJ"
	JoinGJ   = "GJ"
	JoinHJ   = "HJ"
	JoinLaJ  = "LaJ"
	JoinHybJ = "HybJ"
	JoinSegJ = "SegJ"
)

// SortPlan is the cheapest shipped sort implementation at one
// (t, m, λ) point: the algorithm, its placed intensity knob (SegS/HybS;
// zero otherwise), its I/O profile and the profile's price in
// buffer-read units.
type SortPlan struct {
	Algo      string
	Intensity float64
	Profile   Profile
	Cost      float64
}

// JoinPlan is SortPlan's join twin; X and Y are the HybJ fractions (X
// doubles as the SegJ intensity).
type JoinPlan struct {
	Algo    string
	X, Y    float64
	Profile Profile
	Cost    float64
}

// BestSortPlan prices every shipped sort implementation (knobs placed by
// solver-seeded grid search) for t input buffers with m buffers of
// memory at write/read ratio λ and returns the cheapest. Candidate order
// and tie-breaking match exec.ChooseSort, which instantiates the result.
func BestSortPlan(t, m, lambda float64) SortPlan {
	return BestSortPlanP(t, m, lambda, 1)
}

// BestSortPlanP is BestSortPlan under par-way intra-operator
// parallelism: each candidate is priced with its serial portions at full
// cost and the rest overlapped par ways, so the knob search sees — and
// exploits — a phase's parallel discount. At par > 1 the write-serial
// algorithms (SelS, LaS) lose ground to ExMS/HybS exactly as their
// engine counterparts do.
func BestSortPlanP(t, m, lambda, par float64) SortPlan {
	best := SortPlan{Cost: math.Inf(1)}
	consider := func(algo string, knob float64, p Profile) {
		if c := p.PriceP(1, lambda, par); c < best.Cost {
			best = SortPlan{Algo: algo, Intensity: knob, Profile: p, Cost: c}
		}
	}
	consider(SortExMS, 0, ExMSProfile(t, m))
	consider(SortSelS, 0, SelSProfile(t, m))
	consider(SortLaS, 0, LaSProfile(t, m, lambda))
	xSeg := BestKnobP(lambda, par, func(x float64) Profile { return SegSProfile(x, t, m) },
		SegmentSortOptimalX(t, m, lambda))
	consider(SortSegS, xSeg, SegSProfile(xSeg, t, m))
	xHyb := BestKnobP(lambda, par, func(x float64) Profile { return HybSProfile(x, t, m) })
	consider(SortHybS, xHyb, HybSProfile(xHyb, t, m))
	return best
}

// BestJoinPlan prices every shipped equi-join implementation for t
// build-side and v probe-side buffers with m buffers of memory at ratio
// λ and returns the cheapest. Candidate order and tie-breaking match
// exec.ChooseJoin.
func BestJoinPlan(t, v, m, lambda float64) JoinPlan {
	return BestJoinPlanP(t, v, m, lambda, 1)
}

// BestJoinPlanP is BestJoinPlan under par-way intra-operator
// parallelism (see BestSortPlanP).
func BestJoinPlanP(t, v, m, lambda, par float64) JoinPlan {
	best := JoinPlan{Cost: math.Inf(1)}
	consider := func(algo string, x, y float64, p Profile) {
		if c := p.PriceP(1, lambda, par); c < best.Cost {
			best = JoinPlan{Algo: algo, X: x, Y: y, Profile: p, Cost: c}
		}
	}
	consider(JoinNLJ, 0, 0, NLJProfile(t, v, m))
	consider(JoinGJ, 0, 0, GJProfile(t, v))
	consider(JoinHJ, 0, 0, HJProfile(t, v, m))
	consider(JoinLaJ, 0, 0, LaJProfile(t, v, m, lambda))
	sx, sy := HybridJoinSaddle(t, v, m, lambda)
	bx, by, bp := 0.0, 0.0, HybJProfile(0, 0, t, v, m)
	bc := bp.PriceP(1, lambda, par)
	tryXY := func(x, y float64) {
		if x < 0 || x > 1 || y < 0 || y > 1 {
			return
		}
		p := HybJProfile(x, y, t, v, m)
		if c := p.PriceP(1, lambda, par); c < bc {
			bx, by, bp, bc = x, y, p, c
		}
	}
	for xi := 0; xi <= 4; xi++ {
		for yi := 0; yi <= 4; yi++ {
			tryXY(float64(xi)*0.25, float64(yi)*0.25)
		}
	}
	tryXY(sx, sy)
	consider(JoinHybJ, bx, by, bp)
	xSeg := BestKnobP(lambda, par, func(x float64) Profile { return SegJProfile(x, t, v, m) })
	consider(JoinSegJ, xSeg, 0, SegJProfile(xSeg, t, v, m))
	return best
}

// BestKnob grid-searches an intensity knob x ∈ [0, 1] (step 0.05) plus
// any analytic seeds for the cheapest profile price at ratio λ.
func BestKnob(lambda float64, f func(x float64) Profile, seeds ...float64) float64 {
	return BestKnobP(lambda, 1, f, seeds...)
}

// BestKnobP is BestKnob priced under par-way parallelism; a knob that
// shifts work from a serial phase to a parallel one pays off more as par
// grows, so the placed intensity depends on par.
func BestKnobP(lambda, par float64, f func(x float64) Profile, seeds ...float64) float64 {
	bestX, bestC := 0.0, math.Inf(1)
	try := func(x float64) {
		if x < 0 || x > 1 {
			return
		}
		if c := f(x).PriceP(1, lambda, par); c < bestC {
			bestX, bestC = x, c
		}
	}
	for i := 0; i <= 20; i++ {
		try(float64(i) * 0.05)
	}
	for _, s := range seeds {
		try(s)
	}
	return bestX
}

// Curve is the piecewise cost-vs-memory curve of one blocking stage: the
// predicted price of the stage's cheapest implementation sampled on an
// ascending memory grid, both in buffer units. It is the object a budget
// allocator trades between stages — Marginal is the water-filling
// signal.
type Curve struct {
	M []float64 // ascending memory points (buffers)
	C []float64 // predicted cost at each point (buffer-read units)
}

// SampleCurve evaluates price on a geometric grid of points memory
// values spanning [mMin, mMax] (both clamped to ≥ 2 buffers, the
// engine's stage floor). At least two points are sampled.
func SampleCurve(price func(m float64) float64, mMin, mMax float64, points int) Curve {
	if mMin < 2 {
		mMin = 2
	}
	if mMax < mMin {
		mMax = mMin
	}
	if points < 2 {
		points = 2
	}
	c := Curve{M: make([]float64, points), C: make([]float64, points)}
	ratio := math.Pow(mMax/mMin, 1/float64(points-1))
	m := mMin
	for i := 0; i < points; i++ {
		if i == points-1 {
			m = mMax
		}
		c.M[i] = m
		c.C[i] = price(m)
		m *= ratio
	}
	return c
}

// Cost interpolates the curve linearly at m, clamping to the sampled
// range's end values.
func (c Curve) Cost(m float64) float64 {
	if len(c.M) == 0 {
		return 0
	}
	if m <= c.M[0] {
		return c.C[0]
	}
	last := len(c.M) - 1
	if m >= c.M[last] {
		return c.C[last]
	}
	for i := 1; i <= last; i++ {
		if m <= c.M[i] {
			span := c.M[i] - c.M[i-1]
			if span <= 0 {
				return c.C[i]
			}
			f := (m - c.M[i-1]) / span
			return c.C[i-1] + f*(c.C[i]-c.C[i-1])
		}
	}
	return c.C[last]
}

// Marginal is the predicted cost saved per extra buffer when growing the
// stage's share from m to m+dm — the quantity a greedy allocator
// maximizes across stages. Positive when more memory helps.
func (c Curve) Marginal(m, dm float64) float64 {
	if dm <= 0 {
		return 0
	}
	return (c.Cost(m) - c.Cost(m+dm)) / dm
}
