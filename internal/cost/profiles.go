package cost

import "math"

// Profile is an estimated I/O profile in buffer units: what an optimizer
// predicts an algorithm will read and write. Pricing it with the medium's
// latencies (and the engine's per-line CPU constant) yields the response
// estimate that Fig. 12 rank-correlates against measurements.
//
// The paper's printed cost expressions (Eqs. 1–11) are kept verbatim
// elsewhere in this package for the knob solvers; the profiles here model
// the *shipped implementations* — e.g. segment sort streams its selection
// segment into the final merge instead of materializing a long run, and
// all sorts materialize their output — so that the optimizer predicts the
// engine it actually drives.
type Profile struct {
	Reads  float64 // buffer reads
	Writes float64 // buffer writes

	// SerialReads and SerialWrites are the portions of Reads/Writes
	// charged by phases whose execution order is the output order (HybS's
	// fill pass, SegS's streaming final merge, HJ/LaJ's fused
	// build-offload scans…) and therefore cannot fan out to workers. The
	// remainder — partition scans, run formation, merge passes, table
	// builds, probes and the splitter-partitioned final merge — overlaps
	// across P workers, which is exactly how the engine's device overlap
	// clock credits it. Zero means fully parallelizable.
	SerialReads  float64
	SerialWrites float64
}

// Price converts the profile to a response estimate given per-buffer read
// and write costs (in any consistent unit, e.g. nanoseconds including the
// engine's CPU share).
func (p Profile) Price(read, write float64) float64 {
	return p.PriceP(read, write, 1)
}

// PriceP prices the profile under par-way intra-operator parallelism:
// the serial portions cost full price, the parallelizable remainder
// overlaps par ways. par ≤ 1 is the serial estimate.
func (p Profile) PriceP(read, write, par float64) float64 {
	if par < 1 {
		par = 1
	}
	sr, sw := p.SerialReads, p.SerialWrites
	if sr > p.Reads {
		sr = p.Reads
	}
	if sw > p.Writes {
		sw = p.Writes
	}
	return sr*read + sw*write + (p.Reads-sr)*read/par + (p.Writes-sw)*write/par
}

// extraMergePasses is the number of merge passes beyond the final one for
// the given run count and fan-in.
func extraMergePasses(runs, fanIn float64) float64 {
	if runs <= 1 || fanIn <= 1 {
		return 0
	}
	p := math.Ceil(math.Log(runs)/math.Log(fanIn)) - 1
	if p < 0 {
		return 0
	}
	return p
}

// ExMSProfile: replacement-selection run formation (read input, write
// runs), merge passes, materialized output. Every phase fans out to
// workers (chunked run formation, concurrent merge groups, the
// splitter-partitioned final merge), so nothing is serial.
func ExMSProfile(t, m float64) Profile {
	if t <= 0 {
		return Profile{}
	}
	e := extraMergePasses(t/(2*m), m)
	return Profile{
		Reads:  t + t + e*t, // input scan + run re-read (+ extra passes)
		Writes: t + e*t + t, // runs (+ extra passes) + output
	}
}

// SelSProfile: multi-pass selection sort straight into the output. Each
// pass's emission order is the output order — fully serial.
func SelSProfile(t, m float64) Profile {
	if t <= 0 {
		return Profile{}
	}
	passes := math.Ceil(t / m)
	return Profile{
		Reads: passes * t, Writes: t,
		SerialReads: passes * t, SerialWrites: t,
	}
}

// SegSProfile: fraction x through run formation, the rest streamed into
// the final merge by repeated selection passes over the suffix segment.
func SegSProfile(x, t, m float64) Profile {
	if t <= 0 {
		return Profile{}
	}
	seg := (1 - x) * t
	passes := 0.0
	if seg > 0 {
		passes = math.Ceil(seg / m)
	}
	e := extraMergePasses(x*t/(2*m), m)
	p := Profile{
		Reads:  x*t + x*t + e*x*t + passes*seg, // segment A scan + run re-read + selection passes
		Writes: x*t + e*x*t + t,                // runs + output
	}
	// The selection segment streams into the final merge, keeping that
	// whole pass — the run re-read, the selection passes and the output —
	// serial at every P; only run formation and the extra merge passes
	// fan out. At x = 1 there is no segment and the final merge
	// parallelizes like ExMS's.
	if seg > 0 {
		p.SerialReads = x*t + passes*seg
		p.SerialWrites = t
	}
	return p
}

// HybSProfile: a selection region of x·m buffers feeds the output
// directly; everything else passes through replacement selection with
// (1−x)·m memory.
func HybSProfile(x, t, m float64) Profile {
	if t <= 0 {
		return Profile{}
	}
	direct := x * m
	if direct > t {
		direct = t
	}
	rest := t - direct
	rr := (1 - x) * m
	if rr < 1 {
		rr = 1
	}
	e := extraMergePasses(rest/(2*rr), m)
	return Profile{
		Reads:  t + rest + e*rest,
		Writes: rest + e*rest + t,
		// The fill pass is order-dependent (the selection region tracks
		// the global minima seen so far): the input scan, the run spills
		// and the direct Rs output stay serial. The merge passes and the
		// splitter-partitioned final merge over the runs fan out.
		SerialReads:  t,
		SerialWrites: rest + direct,
	}
}

// LaSProfile: lazy sort's dynamic behaviour in expectation — selection
// scans of the shrinking input, with the remainder materialized every
// n-th iteration (Eq. 5). Unlike the other sort profiles the estimate
// depends on λ, because the materialization points do.
func LaSProfile(t, m, lambda float64) Profile {
	if t <= 0 || m <= 0 {
		return Profile{}
	}
	var p Profile
	remaining := t
	for remaining > 0 {
		n := float64(LazySortMaterializeIteration(remaining, m, lambda))
		emitted := n * m
		if emitted > remaining {
			emitted = remaining
		}
		p.Reads += n * remaining // n selection passes over the current input
		p.Writes += emitted      // output buffers written once each
		remaining -= emitted
		if remaining > 0 {
			p.Writes += remaining // materialize the intermediate input Ti
			p.Reads += remaining  // and re-read it next round
		}
	}
	// Selection passes emit in output order and the materialization is
	// fused with them — fully serial, like SelS.
	p.SerialReads, p.SerialWrites = p.Reads, p.Writes
	return p
}

// joinOutput is the materialized result size in buffers: the paper's
// evaluation writes one input-sized record per match, and the benchmark
// produces |V| matches.
func joinOutput(v float64) float64 { return v }

// GJProfile: partition both inputs, read the partitions back, write the
// output. Partitioning, builds and probes all fan out — nothing serial.
func GJProfile(t, v float64) Profile {
	return Profile{
		Reads:  2 * (t + v),
		Writes: (t + v) + joinOutput(v),
	}
}

// HJProfile: Table 1's standard hash join — iteration i re-reads the
// surviving (k−i+1)/k of both inputs and rewrites (k−i)/k of them.
func HJProfile(t, v, m float64) Profile {
	k := math.Ceil(1.2 * t / m)
	if k < 1 {
		k = 1
	}
	per := (t + v) / k
	reads, writes := 0.0, 0.0
	for i := 1.0; i <= k; i++ {
		reads += (k - i + 1) * per
		writes += (k - i) * per
	}
	// HJ's builds are fused with the survivor-offload scans (scan order is
	// survivor order), so the whole algorithm stays serial.
	p := Profile{Reads: reads, Writes: writes + joinOutput(v)}
	p.SerialReads, p.SerialWrites = p.Reads, p.Writes
	return p
}

// NLJProfile: block nested loops with in-memory tables of m/f buffers.
// Block builds and probe scans fan out — nothing serial.
func NLJProfile(t, v, m float64) Profile {
	blocks := math.Ceil(1.2 * t / m)
	if blocks < 1 {
		blocks = 1
	}
	return Profile{Reads: t + blocks*v, Writes: joinOutput(v)}
}

// HybJProfile: Grace over (x·t, y·v) with the right suffix piggybacked
// per partition and nested loops for the left suffix.
func HybJProfile(x, y, t, v, m float64) Profile {
	k := math.Ceil(1.2 * x * t / m)
	if k < 1 {
		k = 1
	}
	nlBlocks := math.Ceil(1.2 * (1 - x) * t / m)
	if (1-x)*t <= 0 {
		nlBlocks = 0
	}
	return Profile{
		Reads:  x*t + y*v + x*t + y*v + k*(1-y)*v + (1-x)*t + nlBlocks*v,
		Writes: x*t + y*v + joinOutput(v),
	}
}

// LaJProfile: lazy hash join — Table 1's right half up to the
// materialization iteration n (every pass re-reads the original inputs,
// writes nothing), then the surviving fraction is materialized and the
// remaining iterations proceed like standard hash join. λ places n.
func LaJProfile(t, v, m, lambda float64) Profile {
	if t <= 0 || m <= 0 {
		return Profile{}
	}
	k := math.Ceil(1.2 * t / m)
	if k < 1 {
		k = 1
	}
	per := (t + v) / k
	n := float64(LazyHashJoinMaterializeIteration(int(k), lambda))
	if n > k {
		n = k
	}
	var p Profile
	p.Reads = n * (t + v)         // lazy passes re-scan the full inputs
	p.Writes = (k - n) * per      // materialize the survivors at iteration n
	for i := n + 1; i <= k; i++ { // standard iterations over the remainder
		p.Reads += (k - i + 1) * per
		p.Writes += (k - i) * per
	}
	p.Writes += joinOutput(v)
	// Like HJ, every scan either probes or routes survivors in scan
	// order — fully serial.
	p.SerialReads, p.SerialWrites = p.Reads, p.Writes
	return p
}

// SegJProfile: initial scan offloading x of the k partitions, their
// re-read, and one filtered re-scan of both inputs per remaining
// partition.
func SegJProfile(intensity, t, v, m float64) Profile {
	k := math.Ceil(1.2 * t / m)
	if k < 1 {
		k = 1
	}
	xp := math.Floor(intensity * k)
	return Profile{
		Reads:  (t + v) + xp*(t+v)/k + (k-xp)*(t+v),
		Writes: xp*(t+v)/k + joinOutput(v),
	}
}
