// Package core implements the paper's library support for write-limited
// algorithms (§3.1): a flexible API — split, partition, filter, merge —
// that records a blueprint of an operator's computation in a control-flow
// graph, plus the runtime machinery that decides, per collection and at
// access time, whether to materialize it to persistent memory or to defer
// it and reconstruct it from its materialized ancestors by re-applying
// the recorded computation.
//
// Graph nodes are collections or API calls (Fig. 4). Declaring a
// collection never materializes it; only access does, and only when the
// runtime's rules say writing is cheaper than re-reading:
//
//	multi-process     materialize a collection processed more times than
//	                  the write-to-read ratio λ
//	eager-partition   materializing one output of a partition() amortizes
//	                  the scan: all remaining outputs materialize too
//	process-to-append results appended straight into another collection
//	                  are always deferred
//	read-over-write   materialize when the write cost Cm ≤ accumulated
//	                  input read cost Cr + construction read cost Cc
package core

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/storage"
)

// Status is a collection's materialization state (Listing 1's c_status_t).
type Status int

// Collection states.
const (
	// StatusMemory marks purely in-memory collections (never spilled).
	StatusMemory Status = iota
	// StatusMaterialized marks collections present in persistent memory.
	StatusMaterialized
	// StatusDeferred marks collections that exist only as blueprint: they
	// are reconstructed from ancestors on access.
	StatusDeferred
)

func (s Status) String() string {
	switch s {
	case StatusMemory:
		return "MEMORY"
	case StatusMaterialized:
		return "MATERIALIZED"
	case StatusDeferred:
		return "DEFERRED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// PartitionFunc assigns a record to one of k partitions.
type PartitionFunc func(rec []byte) int

// Predicate filters records.
type Predicate func(rec []byte) bool

// Readable is the consumer-facing face of a collection: either a
// materialized storage.Collection or a deferred reconstruction stream.
type Readable interface {
	Name() string
	RecordSize() int
	Scan() storage.Iterator
}

// MergeFunc combines two inputs into an output (the paper's m(): a
// partial join, a run merge, …). emit appends to the merge's output
// collection.
type MergeFunc func(l, r Readable, emit func(rec []byte) error) error

type opKind int

const (
	opSplit opKind = iota
	opPartition
	opFilter
	opMerge
)

func (k opKind) String() string {
	return [...]string{"split", "partition", "filter", "merge"}[k]
}

// node is a collection node of the control-flow graph.
type node struct {
	name    string
	status  Status
	recSize int
	coll    storage.Collection // backing storage when materialized
	prod    *op                // producing API call; nil for sources
	outIdx  int                // index among prod's outputs

	estRecords int64 // expected cardinality (blueprint annotation)
	opens      int   // times accessed (multi-process rule)
	appendOnly bool  // process-to-append rule tag
	readAccum  int64 // records served from this node while materialized
}

// op is an API-call node of the control-flow graph.
type op struct {
	kind    opKind
	inputs  []*node
	outputs []*node

	splitAt int
	part    PartitionFunc
	k       int
	pred    Predicate
	sel     float64
	mergeFn MergeFunc
}

// Decision records one assess() outcome, for introspection and tests.
type Decision struct {
	Collection  string
	Materialize bool
	Rule        string
}

// OpCtx is the operator context of Listing 1/2: it owns the control-flow
// graph, names, and the materialization policy.
type OpCtx struct {
	env       *algo.Env
	nodes     map[string]*node
	merges    []*op
	decisions []Decision
	nameSeq   int
}

// NewOpCtx returns an empty context over env.
func NewOpCtx(env *algo.Env) *OpCtx {
	return &OpCtx{env: env, nodes: make(map[string]*node)}
}

// CreateName generates a fresh collection identifier (Listing 2's
// create_name()).
func (ctx *OpCtx) CreateName() string {
	ctx.nameSeq++
	return fmt.Sprintf("c%04d", ctx.nameSeq)
}

// Decisions returns the assess log.
func (ctx *OpCtx) Decisions() []Decision { return ctx.decisions }

// Status reports a collection's current state.
func (ctx *OpCtx) Status(name string) (Status, error) {
	n, err := ctx.lookup(name)
	if err != nil {
		return 0, err
	}
	return n.status, nil
}

func (ctx *OpCtx) lookup(name string) (*node, error) {
	n, ok := ctx.nodes[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown collection %q", name)
	}
	return n, nil
}

func (ctx *OpCtx) declare(name string, recSize int, est int64, prod *op, outIdx int) (*node, error) {
	if _, ok := ctx.nodes[name]; ok {
		return nil, fmt.Errorf("core: collection %q already declared", name)
	}
	n := &node{name: name, status: StatusDeferred, recSize: recSize, prod: prod, outIdx: outIdx, estRecords: est}
	ctx.nodes[name] = n
	return n, nil
}

// Source registers an existing materialized collection (a primary input).
func (ctx *OpCtx) Source(name string, c storage.Collection) error {
	if c == nil {
		return fmt.Errorf("core: nil collection for source %q", name)
	}
	n, err := ctx.declare(name, c.RecordSize(), int64(c.Len()), nil, 0)
	if err != nil {
		return err
	}
	n.status = StatusMaterialized
	n.coll = c
	return nil
}

// Output registers a collection that must be materialized (tagged at
// declaration time, like the paper's final result S).
func (ctx *OpCtx) Output(name string, c storage.Collection) error {
	return ctx.Source(name, c)
}

// MarkAppendOnly tags a collection for the process-to-append rule.
func (ctx *OpCtx) MarkAppendOnly(name string) error {
	n, err := ctx.lookup(name)
	if err != nil {
		return err
	}
	n.appendOnly = true
	return nil
}

// Split records split(T, n, Tl, Th): T's first at records flow to lo, the
// rest to hi.
func (ctx *OpCtx) Split(in string, at int, lo, hi string) error {
	src, err := ctx.lookup(in)
	if err != nil {
		return err
	}
	o := &op{kind: opSplit, inputs: []*node{src}, splitAt: at}
	nLo, err := ctx.declare(lo, src.recSize, int64(at), o, 0)
	if err != nil {
		return err
	}
	nHi, err := ctx.declare(hi, src.recSize, src.estRecords-int64(at), o, 1)
	if err != nil {
		return err
	}
	o.outputs = []*node{nLo, nHi}
	return nil
}

// Partition records partition(T, h(), k, ⟨Ti⟩, ⟨si⟩): T is split into k
// partitions by h. sizes are the expected cardinalities; nil means |T|/k
// each (the API's optional last argument).
func (ctx *OpCtx) Partition(in string, h PartitionFunc, k int, outs []string, sizes []int64) error {
	src, err := ctx.lookup(in)
	if err != nil {
		return err
	}
	if k <= 0 || len(outs) != k {
		return fmt.Errorf("core: partition of %q: k=%d with %d outputs", in, k, len(outs))
	}
	if sizes != nil && len(sizes) != k {
		return fmt.Errorf("core: partition of %q: %d size hints for k=%d", in, len(sizes), k)
	}
	o := &op{kind: opPartition, inputs: []*node{src}, part: h, k: k}
	o.outputs = make([]*node, k)
	for i, name := range outs {
		est := src.estRecords / int64(k)
		if sizes != nil {
			est = sizes[i]
		}
		n, err := ctx.declare(name, src.recSize, est, o, i)
		if err != nil {
			return err
		}
		o.outputs[i] = n
	}
	return nil
}

// Filter records filter(T, p(), f, Tp): Tp is the subset of T satisfying
// p, expected to be f·|T| records, f ∈ [0, 1].
func (ctx *OpCtx) Filter(in string, p Predicate, f float64, out string) error {
	src, err := ctx.lookup(in)
	if err != nil {
		return err
	}
	if f < 0 || f > 1 {
		return fmt.Errorf("core: filter selectivity %v out of [0,1]", f)
	}
	o := &op{kind: opFilter, inputs: []*node{src}, pred: p, sel: f}
	n, err := ctx.declare(out, src.recSize, int64(f*float64(src.estRecords)), o, 0)
	if err != nil {
		return err
	}
	o.outputs = []*node{n}
	return nil
}

// Merge records merge(Tl, Tr, m(), T): the outputs of m over Tl and Tr
// are appended to T, which must already be declared (typically the
// operator's materialized output). Merge results immediately appended to
// another collection stay deferred per the process-to-append rule — the
// merge streams straight into T when executed.
func (ctx *OpCtx) Merge(l, r string, m MergeFunc, out string) error {
	nl, err := ctx.lookup(l)
	if err != nil {
		return err
	}
	nr, err := ctx.lookup(r)
	if err != nil {
		return err
	}
	no, err := ctx.lookup(out)
	if err != nil {
		return err
	}
	o := &op{kind: opMerge, inputs: []*node{nl, nr}, outputs: []*node{no}, mergeFn: m}
	ctx.merges = append(ctx.merges, o)
	return nil
}
