package core

import (
	"io"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

func newCtx(t *testing.T, budgetRecords int) (*OpCtx, *algo.Env) {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := algo.NewEnv(f, int64(budgetRecords*record.Size))
	return NewOpCtx(env), env
}

func loadSource(t *testing.T, ctx *OpCtx, env *algo.Env, name string, n int) storage.Collection {
	t.Helper()
	c, err := env.Factory.Create(name, record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.Generate(n, 1, c.Append); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Source(name, c); err != nil {
		t.Fatal(err)
	}
	return c
}

func drain(t *testing.T, r Readable) []uint64 {
	t.Helper()
	it := r.Scan()
	defer it.Close()
	var keys []uint64
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return keys
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, record.Key(rec))
	}
}

func TestDeclareDoesNotMaterialize(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 1000)
	parts := []string{ctx.CreateName(), ctx.CreateName(), ctx.CreateName()}
	h := func(rec []byte) int { return int(record.Key(rec) % 3) }
	dev := env.Factory.Device()
	before := dev.Stats()
	if err := ctx.Partition("T", h, 3, parts, nil); err != nil {
		t.Fatal(err)
	}
	if delta := dev.Stats().Sub(before); delta.Writes != 0 {
		t.Errorf("Partition declaration wrote %d cachelines", delta.Writes)
	}
	for _, p := range parts {
		st, err := ctx.Status(p)
		if err != nil {
			t.Fatal(err)
		}
		if st != StatusDeferred {
			t.Errorf("partition %s status %v, want DEFERRED", p, st)
		}
	}
}

func TestDeferredReconstructionIsExact(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 300)
	parts := []string{"p0", "p1", "p2"}
	h := func(rec []byte) int { return int(record.Key(rec) % 3) }
	if err := ctx.Partition("T", h, 3, parts, nil); err != nil {
		t.Fatal(err)
	}
	// First access: Cm = 100·λ = 1500 > Cr+Cc = 0+300 → deferred.
	r, err := ctx.Open("p1")
	if err != nil {
		t.Fatal(err)
	}
	keys := drain(t, r)
	if len(keys) == 0 {
		t.Fatal("reconstructed partition empty")
	}
	for _, k := range keys {
		if k%3 != 1 {
			t.Fatalf("partition p1 contains key %d", k)
		}
	}
	if st, _ := ctx.Status("p1"); st != StatusDeferred {
		t.Errorf("p1 status %v after first open, want DEFERRED", st)
	}
}

func TestReadOverWriteEventuallyMaterializes(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 300)
	parts := []string{"p0", "p1", "p2"}
	h := func(rec []byte) int { return int(record.Key(rec) % 3) }
	if err := ctx.Partition("T", h, 3, parts, nil); err != nil {
		t.Fatal(err)
	}
	// λ = 15, |T| = 300, partition ≈ 100. Cm = 1500. Each reconstruction
	// of a partition reads all of T (Cr += 300). After enough opens the
	// accumulated reads exceed Cm and the rule flips to materialize.
	materializedAt := -1
	for i := 0; i < 12; i++ {
		r, err := ctx.Open("p0")
		if err != nil {
			t.Fatal(err)
		}
		drain(t, r)
		if st, _ := ctx.Status("p0"); st == StatusMaterialized {
			materializedAt = i
			break
		}
	}
	if materializedAt < 0 {
		t.Fatal("p0 never materialized despite repeated scans")
	}
	if materializedAt < 2 {
		t.Errorf("p0 materialized on open #%d, expected laziness first", materializedAt)
	}
	// Eager-partition: materializing p0 must have materialized siblings.
	for _, p := range []string{"p1", "p2"} {
		if st, _ := ctx.Status(p); st != StatusMaterialized {
			t.Errorf("sibling %s status %v, want MATERIALIZED (eager-partition)", p, st)
		}
	}
}

func TestMultiProcessRule(t *testing.T) {
	ctx, env := newCtx(t, 100)
	// Low λ: multi-process fires after few opens even if read-over-write
	// would not.
	env.Factory.Device().SetLatencies(10, 20) // λ = 2
	loadSource(t, ctx, env, "T", 300)
	if err := ctx.Filter("T", func(rec []byte) bool { return record.Key(rec) < 10 }, 0.04, "F"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r, err := ctx.Open("F")
		if err != nil {
			t.Fatal(err)
		}
		drain(t, r)
	}
	st, _ := ctx.Status("F")
	if st != StatusMaterialized {
		t.Errorf("F status %v after 4 opens at λ=2, want MATERIALIZED", st)
	}
	// Materialized contents must equal the predicate's selection.
	r, _ := ctx.Open("F")
	keys := drain(t, r)
	if len(keys) != 10 {
		t.Errorf("F has %d records, want 10", len(keys))
	}
}

func TestProcessToAppendRule(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 300)
	if err := ctx.Filter("T", func(rec []byte) bool { return record.Key(rec)%2 == 0 }, 0.5, "F"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.MarkAppendOnly("F"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r, err := ctx.Open("F")
		if err != nil {
			t.Fatal(err)
		}
		drain(t, r)
	}
	if st, _ := ctx.Status("F"); st != StatusDeferred {
		t.Errorf("append-only F status %v, want DEFERRED forever", st)
	}
}

func TestSplitViews(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 100)
	if err := ctx.Split("T", 30, "lo", "hi"); err != nil {
		t.Fatal(err)
	}
	lo, err := ctx.Open("lo")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ctx.Open("hi")
	if err != nil {
		t.Fatal(err)
	}
	kLo, kHi := drain(t, lo), drain(t, hi)
	if len(kLo)+len(kHi) != 100 {
		t.Fatalf("split sizes %d + %d != 100", len(kLo), len(kHi))
	}
	seen := make(map[uint64]bool)
	for _, k := range append(kLo, kHi...) {
		if seen[k] {
			t.Fatalf("split duplicated key %d", k)
		}
		seen[k] = true
	}
}

func TestChainedOpsReconstruct(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 200)
	h := func(rec []byte) int { return int(record.Key(rec) % 2) }
	if err := ctx.Partition("T", h, 2, []string{"e", "o"}, nil); err != nil {
		t.Fatal(err)
	}
	// Filter on top of a deferred partition: reconstruction must chain.
	if err := ctx.Filter("e", func(rec []byte) bool { return record.Key(rec) < 50 }, 0.25, "small"); err != nil {
		t.Fatal(err)
	}
	r, err := ctx.Open("small")
	if err != nil {
		t.Fatal(err)
	}
	keys := drain(t, r)
	if len(keys) != 25 {
		t.Fatalf("chained reconstruction: %d records, want 25 (even keys < 50)", len(keys))
	}
	for _, k := range keys {
		if k%2 != 0 || k >= 50 {
			t.Fatalf("chained reconstruction leaked key %d", k)
		}
	}
}

// The Fig. 4 workflow end-to-end: the segmented-Grace control-flow graph
// with partition + pairwise merge (partial hash joins) into S.
func TestFig4SegmentedGraceWorkflow(t *testing.T) {
	ctx, env := newCtx(t, 100)
	left, err := env.Factory.Create("T", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	right, err := env.Factory.Create("V", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	const nL, nR = 150, 600
	if err := record.GenerateJoin(nL, nR, 3, left.Append, right.Append); err != nil {
		t.Fatal(err)
	}
	if err := left.Close(); err != nil {
		t.Fatal(err)
	}
	if err := right.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Source("T", left); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Source("V", right); err != nil {
		t.Fatal(err)
	}
	out, err := env.Factory.Create("S", 2*record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Output("S", out); err != nil {
		t.Fatal(err)
	}

	const k = 3
	h := func(rec []byte) int { return int(record.Key(rec) % k) }
	tp := []string{"T0", "T1", "T2"}
	vp := []string{"V0", "V1", "V2"}
	if err := ctx.Partition("T", h, k, tp, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Partition("V", h, k, vp, nil); err != nil {
		t.Fatal(err)
	}
	join := func(l, r Readable, emit func(rec []byte) error) error {
		byKey := make(map[uint64][][]byte)
		it := l.Scan()
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			cp := append([]byte(nil), rec...)
			byKey[record.Key(cp)] = append(byKey[record.Key(cp)], cp)
		}
		it.Close()
		rit := r.Scan()
		defer rit.Close()
		joined := make([]byte, 2*record.Size)
		for {
			rec, err := rit.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			for _, lrec := range byKey[record.Key(rec)] {
				copy(joined, lrec)
				copy(joined[record.Size:], rec)
				if err := emit(joined); err != nil {
					return err
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		if err := ctx.Merge(tp[i], vp[i], join, "S"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.ExecuteMerges(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != nR {
		t.Fatalf("S has %d records, want %d", out.Len(), nR)
	}
	if len(ctx.Decisions()) == 0 {
		t.Error("no materialization decisions recorded")
	}
}

func TestErrorPaths(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 10)
	if _, err := ctx.Open("nope"); err == nil {
		t.Error("Open of unknown collection succeeded")
	}
	if err := ctx.Partition("nope", nil, 2, []string{"a", "b"}, nil); err == nil {
		t.Error("Partition of unknown input succeeded")
	}
	if err := ctx.Partition("T", nil, 2, []string{"a"}, nil); err == nil {
		t.Error("Partition with wrong output count succeeded")
	}
	if err := ctx.Filter("T", nil, 1.5, "f"); err == nil {
		t.Error("Filter with selectivity > 1 succeeded")
	}
	if err := ctx.Source("T", nil); err == nil {
		t.Error("duplicate Source succeeded")
	}
	if err := ctx.Produce("T"); err != nil {
		t.Errorf("Produce of an already-materialized source should be a no-op, got %v", err)
	}
	if err := ctx.Merge("T", "T", nil, "nope"); err == nil {
		t.Error("Merge into undeclared output succeeded")
	}
}
