package core

import (
	"io"
	"testing"

	"wlpm/internal/record"
)

// A two-operator plan — selection feeding a partitioned join — sharing
// one control-flow graph: the §3.1 "Extensions" scenario. The selection's
// output is an intermediate consumed by the join's partitioning; the
// runtime decides across the operator boundary whether it ever exists in
// persistent memory.
func TestPlanCrossOperatorDeferral(t *testing.T) {
	ctx, env := newCtx(t, 100)
	loadSource(t, ctx, env, "T", 400)

	outColl, err := env.Factory.Create("S", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Output("S", outColl); err != nil {
		t.Fatal(err)
	}

	const k = 2
	h := func(rec []byte) int { return int(record.Key(rec) % k) }
	plan := NewPlan(ctx).
		AddFilter("T", func(rec []byte) bool { return record.Key(rec) < 200 }, 0.5, "sel").
		AddPartition("sel", h, k, []string{"p0", "p1"}).
		AddExec("collect", func(ctx *OpCtx) error {
			for _, name := range []string{"p0", "p1"} {
				r, err := ctx.Open(name)
				if err != nil {
					return err
				}
				if _, err := CopyReadable(outColl, r); err != nil {
					return err
				}
			}
			return nil
		})
	if len(plan.Stages()) != 3 {
		t.Fatalf("plan has %d stages", len(plan.Stages()))
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err == nil {
		t.Error("plan ran twice")
	}
	if outColl.Len() != 200 {
		t.Fatalf("plan output %d records, want 200", outColl.Len())
	}
	// Neither the selection nor the single-use partitions were worth
	// writing: each was consumed once, below every materialization
	// threshold.
	for _, name := range []string{"sel", "p0", "p1"} {
		st, err := ctx.Status(name)
		if err != nil {
			t.Fatal(err)
		}
		if st != StatusDeferred {
			t.Errorf("intermediate %s status %v, want DEFERRED across operators", name, st)
		}
	}
}

// When a downstream operator scans a shared intermediate often enough,
// the multi-process rule materializes it once for the whole plan.
func TestPlanSharedIntermediateMaterializes(t *testing.T) {
	ctx, env := newCtx(t, 100)
	env.Factory.Device().SetLatencies(10, 20) // λ = 2: low threshold
	loadSource(t, ctx, env, "T", 300)

	scans := 0
	plan := NewPlan(ctx).
		AddFilter("T", func(rec []byte) bool { return record.Key(rec)%3 == 0 }, 0.33, "hot").
		AddExec("consumer", func(ctx *OpCtx) error {
			// Several downstream operators each scan "hot".
			for i := 0; i < 5; i++ {
				r, err := ctx.Open("hot")
				if err != nil {
					return err
				}
				it := r.Scan()
				for {
					if _, err := it.Next(); err == io.EOF {
						break
					} else if err != nil {
						return err
					}
					scans++
				}
				it.Close()
			}
			return nil
		})
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	if scans != 5*100 {
		t.Fatalf("consumed %d records, want 500", scans)
	}
	st, err := ctx.Status("hot")
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusMaterialized {
		t.Errorf("hot intermediate status %v, want MATERIALIZED after repeated plan-wide use", st)
	}
}

func TestPlanStageErrorPropagates(t *testing.T) {
	ctx, _ := newCtx(t, 100)
	plan := NewPlan(ctx).AddFilter("missing", func([]byte) bool { return true }, 1, "f")
	err := plan.Run()
	if err == nil {
		t.Fatal("plan with broken stage succeeded")
	}
}
