package core

import (
	"fmt"
	"io"

	"wlpm/internal/storage"
)

// Plan generalizes the single-operator runtime to entire evaluation plans
// — the §3.1 "Extensions" paragraph: operators connected through
// intermediate result collections, all sharing one control-flow graph so
// that the materialization rules apply across operator boundaries. An
// intermediate that one operator produces and the next consumes once is
// reconstructed rather than written; one that several downstream
// operators scan repeatedly crosses the multi-process threshold and
// materializes exactly once.
//
// A Plan is a sequence of stages. Declarative stages (Split, Partition,
// Filter) only extend the blueprint; Exec stages run operator logic
// against Readables resolved through the deferral policy.
type Plan struct {
	ctx    *OpCtx
	stages []planStage
	ran    bool
}

type planStage struct {
	name string
	run  func(ctx *OpCtx) error
}

// NewPlan builds an empty plan over the context.
func NewPlan(ctx *OpCtx) *Plan { return &Plan{ctx: ctx} }

// Ctx exposes the shared operator context for declarations.
func (p *Plan) Ctx() *OpCtx { return p.ctx }

// AddFilter appends a filter declaration stage.
func (p *Plan) AddFilter(in string, pred Predicate, sel float64, out string) *Plan {
	p.stages = append(p.stages, planStage{
		name: fmt.Sprintf("filter(%s→%s)", in, out),
		run:  func(ctx *OpCtx) error { return ctx.Filter(in, pred, sel, out) },
	})
	return p
}

// AddSplit appends a split declaration stage.
func (p *Plan) AddSplit(in string, at int, lo, hi string) *Plan {
	p.stages = append(p.stages, planStage{
		name: fmt.Sprintf("split(%s→%s,%s)", in, lo, hi),
		run:  func(ctx *OpCtx) error { return ctx.Split(in, at, lo, hi) },
	})
	return p
}

// AddPartition appends a partition declaration stage.
func (p *Plan) AddPartition(in string, h PartitionFunc, k int, outs []string) *Plan {
	p.stages = append(p.stages, planStage{
		name: fmt.Sprintf("partition(%s→%d)", in, k),
		run:  func(ctx *OpCtx) error { return ctx.Partition(in, h, k, outs, nil) },
	})
	return p
}

// AddMerge appends a merge declaration stage (its execution happens in
// the plan's final ExecuteMerges pass, preserving declaration order).
func (p *Plan) AddMerge(l, r string, m MergeFunc, out string) *Plan {
	p.stages = append(p.stages, planStage{
		name: fmt.Sprintf("merge(%s,%s→%s)", l, r, out),
		run:  func(ctx *OpCtx) error { return ctx.Merge(l, r, m, out) },
	})
	return p
}

// AddExec appends an imperative stage: operator logic that opens
// collections through the deferral policy and appends results to
// materialized outputs.
func (p *Plan) AddExec(name string, fn func(ctx *OpCtx) error) *Plan {
	p.stages = append(p.stages, planStage{name: name, run: fn})
	return p
}

// Run declares and executes every stage in order, then executes the
// recorded merges. It can run once.
func (p *Plan) Run() error {
	if p.ran {
		return fmt.Errorf("core: plan already ran")
	}
	p.ran = true
	for _, s := range p.stages {
		if err := s.run(p.ctx); err != nil {
			return fmt.Errorf("core: plan stage %s: %w", s.name, err)
		}
	}
	return p.ctx.ExecuteMerges()
}

// Stages reports the plan's stage names, for inspection.
func (p *Plan) Stages() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.name
	}
	return names
}

// CopyReadable drains a Readable into a materialized collection —
// a helper for plan outputs that must persist.
func CopyReadable(dst storage.Collection, src Readable) (int, error) {
	it := src.Scan()
	defer it.Close()
	n := 0
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Append(rec); err != nil {
			return n, err
		}
		n++
	}
}
