package core

import (
	"fmt"
	"io"

	"wlpm/internal/storage"
)

// Open accesses a collection (Listing 1's Collection::open): it assesses
// a deferred collection, materializes it if the rules say so, and returns
// a Readable — the stored collection, or a reconstruction stream that
// re-applies the recorded computation from the nearest materialized
// ancestor.
func (ctx *OpCtx) Open(name string) (Readable, error) {
	n, err := ctx.lookup(name)
	if err != nil {
		return nil, err
	}
	n.opens++
	if n.status != StatusDeferred {
		return ctx.readable(n)
	}
	d := ctx.assess(n)
	ctx.decisions = append(ctx.decisions, d)
	if d.Materialize {
		if err := ctx.Produce(name); err != nil {
			return nil, err
		}
	}
	return ctx.readable(n)
}

// readable wraps a node for consumption, tracking accumulated reads on
// materialized nodes (the running sums behind the read-over-write rule).
func (ctx *OpCtx) readable(n *node) (Readable, error) {
	if n.status != StatusDeferred {
		if n.coll == nil {
			return nil, fmt.Errorf("core: collection %q has no backing storage", n.name)
		}
		n.readAccum += int64(n.coll.Len())
		return n.coll, nil
	}
	return &streamReadable{ctx: ctx, n: n}, nil
}

// assess applies the materialization rules to a deferred node.
func (ctx *OpCtx) assess(n *node) Decision {
	lambda := ctx.env.Lambda()
	// Rule (c), process-to-append: always defer.
	if n.appendOnly {
		return Decision{n.name, false, "process-to-append"}
	}
	if n.prod == nil {
		return Decision{n.name, false, "source"}
	}
	// Rule (a), multi-process: a collection processed more times than the
	// write-to-read ratio is worth writing once.
	if float64(n.opens) > lambda {
		return Decision{n.name, true, "multi-process"}
	}
	// Rule (d), read-over-write: materialize when the write cost Cm is
	// within the reads already paid for the input (Cr) plus the reads to
	// construct it once more (Cc).
	in := n.prod.inputs[0]
	cm := float64(n.estRecords) * lambda
	cr := float64(in.readAccum)
	cc := float64(in.estRecords)
	if cm <= cr+cc {
		return Decision{n.name, true, "read-over-write"}
	}
	return Decision{n.name, false, "read-over-write"}
}

// Produce materializes a deferred collection by re-applying the recorded
// computation from its nearest materialized ancestor (Listing 1's
// produce()). For partition outputs the eager-partition rule applies: the
// single input scan materializes every remaining deferred sibling, so no
// input is fully scanned twice for the same purpose.
func (ctx *OpCtx) Produce(name string) error {
	n, err := ctx.lookup(name)
	if err != nil {
		return err
	}
	if n.status != StatusDeferred {
		return nil
	}
	o := n.prod
	if o == nil {
		return fmt.Errorf("core: cannot produce source collection %q", name)
	}
	if o.kind == opMerge {
		return fmt.Errorf("core: merge outputs are produced by ExecuteMerges, not Produce")
	}

	// Targets: the requested node, plus — for partitions — all deferred
	// siblings (eager-partition).
	targets := []*node{n}
	if o.kind == opPartition {
		targets = targets[:0]
		for _, sib := range o.outputs {
			if sib.status == StatusDeferred {
				targets = append(targets, sib)
			}
		}
		ctx.decisions = append(ctx.decisions, Decision{n.name, true, "eager-partition"})
	}
	sinks := make(map[*node]storage.Collection, len(targets))
	for _, t := range targets {
		c, err := ctx.env.Factory.Create(ctx.prefixed(t.name), t.recSize)
		if err != nil {
			return err
		}
		sinks[t] = c
	}

	// One streaming pass over the (possibly itself reconstructed) input.
	it, err := ctx.streamScan(o.inputs[0])
	if err != nil {
		return err
	}
	defer it.Close()
	pos := 0
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch o.kind {
		case opSplit:
			var dst *node
			if pos < o.splitAt {
				dst = o.outputs[0]
			} else {
				dst = o.outputs[1]
			}
			if c, ok := sinks[dst]; ok {
				if err := c.Append(rec); err != nil {
					return err
				}
			}
		case opPartition:
			dst := o.outputs[o.part(rec)]
			if c, ok := sinks[dst]; ok {
				if err := c.Append(rec); err != nil {
					return err
				}
			}
		case opFilter:
			if o.pred(rec) {
				if err := sinks[n].Append(rec); err != nil {
					return err
				}
			}
		}
		pos++
	}
	for t, c := range sinks {
		if err := c.Close(); err != nil {
			return err
		}
		t.coll = c
		t.status = StatusMaterialized
		t.estRecords = int64(c.Len())
	}
	return nil
}

// prefixed namespaces runtime-created collections within the factory.
func (ctx *OpCtx) prefixed(name string) string {
	return fmt.Sprintf("opctx.%s", name)
}

// ExecuteMerges runs every recorded merge in declaration order, opening
// inputs through the materialization policy and streaming results into
// the merge outputs (process-to-append: merge results are never staged).
func (ctx *OpCtx) ExecuteMerges() error {
	for _, o := range ctx.merges {
		l, err := ctx.Open(o.inputs[0].name)
		if err != nil {
			return err
		}
		r, err := ctx.Open(o.inputs[1].name)
		if err != nil {
			return err
		}
		out := o.outputs[0]
		if out.coll == nil {
			return fmt.Errorf("core: merge output %q is not backed by storage", out.name)
		}
		if err := o.mergeFn(l, r, out.coll.Append); err != nil {
			return err
		}
	}
	return nil
}

// streamScan returns an iterator over a node's logical contents without
// materializing anything: materialized nodes scan their storage (and
// account the read), deferred nodes wrap their input's stream with the
// producing op's transformation.
func (ctx *OpCtx) streamScan(n *node) (storage.Iterator, error) {
	if n.status != StatusDeferred {
		if n.coll == nil {
			return nil, fmt.Errorf("core: collection %q has no backing storage", n.name)
		}
		n.readAccum += int64(n.coll.Len())
		return n.coll.Scan(), nil
	}
	o := n.prod
	if o == nil {
		return nil, fmt.Errorf("core: deferred source %q", n.name)
	}
	switch o.kind {
	case opSplit:
		in := o.inputs[0]
		// A materialized ancestor supports positioned scans: no read cost
		// for the skipped prefix.
		if in.status != StatusDeferred && in.coll != nil {
			var view storage.Collection
			if n.outIdx == 0 {
				view = storage.Slice(in.coll, 0, o.splitAt)
			} else {
				view = storage.Slice(in.coll, o.splitAt, in.coll.Len())
			}
			in.readAccum += int64(view.Len())
			return view.Scan(), nil
		}
		base, err := ctx.streamScan(in)
		if err != nil {
			return nil, err
		}
		return &rangeIterator{it: base, lo: rangeLo(n.outIdx, o.splitAt), hi: rangeHi(n.outIdx, o.splitAt)}, nil
	case opPartition:
		base, err := ctx.streamScan(o.inputs[0])
		if err != nil {
			return nil, err
		}
		idx := n.outIdx
		return &filterIterator{it: base, keep: func(rec []byte) bool { return o.part(rec) == idx }}, nil
	case opFilter:
		base, err := ctx.streamScan(o.inputs[0])
		if err != nil {
			return nil, err
		}
		return &filterIterator{it: base, keep: o.pred}, nil
	default:
		return nil, fmt.Errorf("core: cannot stream %s output %q", o.kind, n.name)
	}
}

func rangeLo(outIdx, at int) int {
	if outIdx == 0 {
		return 0
	}
	return at
}

func rangeHi(outIdx, at int) int {
	if outIdx == 0 {
		return at
	}
	return -1 // unbounded
}

// streamReadable reconstructs a deferred collection on every Scan.
type streamReadable struct {
	ctx *OpCtx
	n   *node
}

func (s *streamReadable) Name() string    { return s.n.name }
func (s *streamReadable) RecordSize() int { return s.n.recSize }

func (s *streamReadable) Scan() storage.Iterator {
	it, err := s.ctx.streamScan(s.n)
	if err != nil {
		return &errIterator{err: err}
	}
	return it
}

// filterIterator yields records satisfying keep.
type filterIterator struct {
	it   storage.Iterator
	keep func(rec []byte) bool
}

func (f *filterIterator) Next() ([]byte, error) {
	for {
		rec, err := f.it.Next()
		if err != nil {
			return nil, err
		}
		if f.keep(rec) {
			return rec, nil
		}
	}
}

func (f *filterIterator) Close() error { return f.it.Close() }

// rangeIterator yields records with index in [lo, hi) (hi < 0 means ∞).
type rangeIterator struct {
	it     storage.Iterator
	lo, hi int
	pos    int
}

func (r *rangeIterator) Next() ([]byte, error) {
	for {
		rec, err := r.it.Next()
		if err != nil {
			return nil, err
		}
		i := r.pos
		r.pos++
		if i < r.lo {
			continue
		}
		if r.hi >= 0 && i >= r.hi {
			return nil, io.EOF
		}
		return rec, nil
	}
}

func (r *rangeIterator) Close() error { return r.it.Close() }

// errIterator reports a construction error on first use.
type errIterator struct{ err error }

func (e *errIterator) Next() ([]byte, error) { return nil, e.err }
func (e *errIterator) Close() error          { return nil }
