package pmem

import (
	"fmt"
	"sort"
	"sync"
)

// Allocator hands out byte ranges of a Device with first-fit placement and
// free-range coalescing.
//
// Allocation metadata lives in DRAM: a production persistent allocator
// would persist and recover it (cf. NV-heaps, Coburn et al., ASPLOS 2011),
// but the paper treats allocation persistence as orthogonal to query
// processing and so do we. What matters for the experiments is *where* data
// lands and how many cachelines each algorithm touches.
type Allocator struct {
	dev *Device

	mu    sync.Mutex
	free  []span          // sorted by offset, pairwise non-adjacent
	live  map[int64]int64 // offset → size
	align int64           // allocation alignment (cacheline)
	used  int64           // bytes currently allocated
	peak  int64           // high-water mark
}

type span struct{ off, size int64 }

// NewAllocator manages the whole of dev.
func NewAllocator(dev *Device) *Allocator {
	return NewAllocatorRange(dev, 0, dev.Capacity())
}

// NewAllocatorRange manages the byte range [start, end) of dev; used by
// filesystem backends whose data area begins after their metadata regions.
func NewAllocatorRange(dev *Device, start, end int64) *Allocator {
	if start < 0 || end > dev.Capacity() || start >= end {
		panic(fmt.Sprintf("pmem: invalid allocator range [%d, %d) on device of %d bytes", start, end, dev.Capacity()))
	}
	align := int64(dev.CachelineSize())
	start = (start + align - 1) / align * align
	return &Allocator{
		dev:   dev,
		free:  []span{{start, end - start}},
		live:  make(map[int64]int64),
		align: align,
	}
}

// Device returns the device this allocator manages.
func (a *Allocator) Device() *Device { return a.dev }

// Alloc reserves size bytes and returns the range's device offset. Ranges
// are cacheline-aligned so that distinct allocations never share a line
// (one allocation's writes must not wear another's lines).
func (a *Allocator) Alloc(size int64) (int64, error) {
	return a.AllocAligned(size, a.align)
}

// AllocAligned reserves size bytes at an offset that is a multiple of
// align. Filesystem backends use this to keep extents sector-aligned.
func (a *Allocator) AllocAligned(size, align int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("pmem: alloc size must be positive, got %d", size)
	}
	if align < a.align {
		align = a.align
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("pmem: alignment %d is not a power of two", align)
	}
	need := (size + a.align - 1) / a.align * a.align

	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.free {
		off := (s.off + align - 1) / align * align
		head := off - s.off
		if head+need > s.size {
			continue
		}
		tail := s.size - head - need
		switch {
		case head == 0 && tail == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case head == 0:
			a.free[i] = span{off + need, tail}
		case tail == 0:
			a.free[i] = span{s.off, head}
		default:
			a.free[i] = span{s.off, head}
			a.free = append(a.free, span{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = span{off + need, tail}
		}
		a.live[off] = need
		a.used += need
		if a.used > a.peak {
			a.peak = a.used
		}
		return off, nil
	}
	return 0, fmt.Errorf("pmem: out of device memory: need %d bytes aligned to %d, %d in use of %d", need, align, a.used, a.dev.Capacity())
}

// Free releases a range previously returned by Alloc.
func (a *Allocator) Free(off int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.live[off]
	if !ok {
		return fmt.Errorf("pmem: free of unallocated offset %d", off)
	}
	delete(a.live, off)
	a.used -= size

	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{off, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// InUse reports the bytes currently allocated.
func (a *Allocator) InUse() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak reports the allocation high-water mark in bytes.
func (a *Allocator) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocations reports the number of live allocations.
func (a *Allocator) Allocations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live)
}
