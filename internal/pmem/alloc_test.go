package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	d := testDevice(t, 4096)
	a := NewAllocator(d)
	off1, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	off2, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off1 == off2 {
		t.Fatal("two allocations share an offset")
	}
	if off1%int64(d.CachelineSize()) != 0 || off2%int64(d.CachelineSize()) != 0 {
		t.Error("allocations not cacheline-aligned")
	}
	if a.Allocations() != 2 {
		t.Errorf("Allocations = %d, want 2", a.Allocations())
	}
	if err := a.Free(off1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(off1); err == nil {
		t.Error("double free succeeded")
	}
	if err := a.Free(12345); err == nil {
		t.Error("free of bogus offset succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	d := testDevice(t, 1024)
	a := NewAllocator(d)
	if _, err := a.Alloc(2048); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
	off, err := a.Alloc(1024)
	if err != nil {
		t.Fatalf("full-device alloc failed: %v", err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("alloc on full device succeeded")
	}
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestAllocInvalidSize(t *testing.T) {
	a := NewAllocator(testDevice(t, 1024))
	if _, err := a.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("Alloc(-5) succeeded")
	}
}

func TestAllocCoalescing(t *testing.T) {
	d := testDevice(t, 4096)
	a := NewAllocator(d)
	var offs []int64
	for i := 0; i < 4; i++ {
		off, err := a.Alloc(1024)
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		offs = append(offs, off)
	}
	// Free out of order; the free list must coalesce back to one span.
	for _, i := range []int{2, 0, 3, 1} {
		if err := a.Free(offs[i]); err != nil {
			t.Fatalf("Free #%d: %v", i, err)
		}
	}
	if _, err := a.Alloc(4096); err != nil {
		t.Fatalf("full-device alloc after frees failed (fragmentation?): %v", err)
	}
}

func TestAllocPeak(t *testing.T) {
	a := NewAllocator(testDevice(t, 4096))
	o1, _ := a.Alloc(1024)
	o2, _ := a.Alloc(1024)
	if err := a.Free(o1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(o2); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 0 {
		t.Errorf("InUse = %d, want 0", a.InUse())
	}
	if a.Peak() != 2048 {
		t.Errorf("Peak = %d, want 2048", a.Peak())
	}
}

// Property: any interleaving of allocs and frees never hands out
// overlapping ranges and always leaves the allocator consistent.
func TestQuickAllocNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := MustOpen(Config{Capacity: 1 << 16})
		a := NewAllocator(d)
		type alloc struct{ off, size int64 }
		var live []alloc
		overlaps := func(x alloc) bool {
			for _, y := range live {
				if x.off < y.off+y.size && y.off < x.off+x.size {
					return true
				}
			}
			return false
		}
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				if err := a.Free(live[k].off); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			size := int64(rng.Intn(2000) + 1)
			off, err := a.Alloc(size)
			if err != nil {
				continue // exhaustion is legal
			}
			na := alloc{off, size}
			if overlaps(na) {
				return false
			}
			live = append(live, na)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
