// Package pmem simulates a byte-addressable persistent-memory device with
// asymmetric read/write costs.
//
// The device is the substrate for every experiment in this repository. It
// mirrors the methodology of Viglas (VLDB 2014), §4: persistent memory is
// modelled by charging a fixed latency per cacheline read (default 10 ns)
// and per cacheline write (default 150 ns). All I/O is counted at cacheline
// granularity regardless of the caller's access size, so a 512-byte sector
// write costs eight cacheline writes while an 8-byte inode update costs one.
//
// By default latencies are only *accounted* (added to a simulated clock,
// see Stats.SimIOTime) so tests and benchmarks run at full speed. Setting
// Config.Spin injects real busy-wait delays, reproducing the paper's
// idle-loop instrumentation.
package pmem

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Default device parameters. Latencies follow the paper's main
// configuration (10 ns reads, 150 ns writes, λ = 15); the cacheline size is
// the "buffer" unit of the paper's algorithmic framework.
const (
	DefaultCachelineSize = 64
	DefaultReadLatency   = 10 * time.Nanosecond
	DefaultWriteLatency  = 150 * time.Nanosecond
)

// Config parametrizes a simulated device.
type Config struct {
	// Capacity is the device size in bytes. Required.
	Capacity int64
	// CachelineSize is the accounting granularity in bytes.
	// Defaults to DefaultCachelineSize. Must be a power of two.
	CachelineSize int
	// ReadLatency is charged per cacheline read. Defaults to DefaultReadLatency.
	ReadLatency time.Duration
	// WriteLatency is charged per cacheline written. Defaults to DefaultWriteLatency.
	WriteLatency time.Duration
	// Spin makes every access busy-wait for its charged latency, like the
	// idle loops of the paper's instrumentation. When false (the default)
	// latencies accumulate only in the simulated clock.
	Spin bool
	// TrackWear maintains a per-cacheline write counter (endurance model).
	TrackWear bool
}

func (c *Config) setDefaults() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("pmem: capacity must be positive, got %d", c.Capacity)
	}
	if c.CachelineSize == 0 {
		c.CachelineSize = DefaultCachelineSize
	}
	if c.CachelineSize < 8 || c.CachelineSize&(c.CachelineSize-1) != 0 {
		return fmt.Errorf("pmem: cacheline size must be a power of two ≥ 8, got %d", c.CachelineSize)
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = DefaultReadLatency
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = DefaultWriteLatency
	}
	if c.ReadLatency < 0 || c.WriteLatency < 0 {
		return fmt.Errorf("pmem: latencies must be non-negative")
	}
	return nil
}

// Device is a simulated persistent-memory device.
//
// Counters are safe for concurrent use; the backing memory itself is not
// synchronized — callers that share address ranges across goroutines must
// coordinate, exactly as with real memory.
type Device struct {
	cfg  Config
	mem  []byte
	wear []uint32

	reads      atomic.Uint64 // cachelines read
	writes     atomic.Uint64 // cachelines written
	readOps    atomic.Uint64
	writeOps   atomic.Uint64
	bytesRead  atomic.Uint64
	bytesWrite atomic.Uint64
	simIONanos atomic.Int64
	ovlNanos   atomic.Int64 // overlap clock: latency ÷ concurrently active workers
	active     atomic.Int64 // workers inside an EnterWorker/LeaveWorker bracket
	softNanos  atomic.Int64
	spinDebt   atomic.Int64 // spin mode: sub-quantum delay owed but not yet slept

	readLat  atomic.Int64 // current latencies, mutable for sweeps
	writeLat atomic.Int64
}

// Open creates a device of cfg.Capacity bytes.
func Open(cfg Config) (*Device, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg: cfg,
		mem: make([]byte, cfg.Capacity),
	}
	if cfg.TrackWear {
		d.wear = make([]uint32, (cfg.Capacity+int64(cfg.CachelineSize)-1)/int64(cfg.CachelineSize))
	}
	d.readLat.Store(int64(cfg.ReadLatency))
	d.writeLat.Store(int64(cfg.WriteLatency))
	return d, nil
}

// MustOpen is Open for tests and examples where the config is known good.
func MustOpen(cfg Config) *Device {
	d, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Capacity reports the device size in bytes.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// CachelineSize reports the accounting granularity in bytes.
func (d *Device) CachelineSize() int { return d.cfg.CachelineSize }

// ReadLatency reports the currently charged per-cacheline read latency.
func (d *Device) ReadLatency() time.Duration { return time.Duration(d.readLat.Load()) }

// WriteLatency reports the currently charged per-cacheline write latency.
func (d *Device) WriteLatency() time.Duration { return time.Duration(d.writeLat.Load()) }

// SetLatencies changes the charged latencies; used by the write-latency
// sensitivity sweep (paper Fig. 11).
func (d *Device) SetLatencies(read, write time.Duration) {
	d.readLat.Store(int64(read))
	d.writeLat.Store(int64(write))
}

// Lambda reports the write/read cost ratio λ = w/r of the current latencies.
func (d *Device) Lambda() float64 {
	r := d.readLat.Load()
	if r == 0 {
		return 1
	}
	return float64(d.writeLat.Load()) / float64(r)
}

func (d *Device) checkRange(op string, off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Capacity {
		return fmt.Errorf("pmem: %s [%d, %d) out of range [0, %d)", op, off, off+int64(n), d.cfg.Capacity)
	}
	return nil
}

// lines reports how many cachelines the byte range [off, off+n) touches.
func (d *Device) lines(off int64, n int) uint64 {
	if n == 0 {
		return 0
	}
	cls := int64(d.cfg.CachelineSize)
	first := off / cls
	last := (off + int64(n) - 1) / cls
	return uint64(last - first + 1)
}

// ReadAt copies len(p) bytes at offset off into p, charging one read per
// touched cacheline.
func (d *Device) ReadAt(p []byte, off int64) error {
	if err := d.checkRange("read", off, len(p)); err != nil {
		return err
	}
	copy(p, d.mem[off:off+int64(len(p))])
	n := d.lines(off, len(p))
	d.reads.Add(n)
	d.readOps.Add(1)
	d.bytesRead.Add(uint64(len(p)))
	d.charge(n, time.Duration(d.readLat.Load()))
	return nil
}

// WriteAt copies p to offset off, charging one write per touched cacheline
// and bumping the wear counters when enabled.
func (d *Device) WriteAt(p []byte, off int64) error {
	if err := d.checkRange("write", off, len(p)); err != nil {
		return err
	}
	copy(d.mem[off:off+int64(len(p))], p)
	n := d.lines(off, len(p))
	d.writes.Add(n)
	d.writeOps.Add(1)
	d.bytesWrite.Add(uint64(len(p)))
	d.charge(n, time.Duration(d.writeLat.Load()))
	if d.wear != nil && len(p) > 0 {
		cls := int64(d.cfg.CachelineSize)
		for line := off / cls; line <= (off+int64(len(p))-1)/cls; line++ {
			atomic.AddUint32(&d.wear[line], 1)
		}
	}
	return nil
}

// spinSleepThreshold is the spin-mode delay quantum: delays at or above
// it are served by one sleep, and shorter charges accrue into a shared
// debt that is slept off one quantum at a time. Serving delays through
// the scheduler instead of busy-waiting is what lets modelled device
// latency overlap with other workers' real CPU work — including on
// single-core hosts, where a busy-wait would hold the only core and
// serialize the very overlap spin mode exists to demonstrate.
const spinSleepThreshold = 100 * time.Microsecond

// charge adds n accesses of latency lat to the simulated clock and
// optionally delays for the same duration. Long delays sleep directly;
// short ones add to the device's delay debt, and the charge that tips
// the debt over a quantum sleeps it off on behalf of everyone. Batching
// the sleeps keeps per-charge overhead near zero while the total slept
// time still equals the total charged latency.
func (d *Device) charge(n uint64, lat time.Duration) {
	total := time.Duration(n) * lat
	d.simIONanos.Add(int64(total))
	if w := d.active.Load(); w > 1 {
		d.ovlNanos.Add(int64(total) / w)
	} else {
		d.ovlNanos.Add(int64(total))
	}
	if !d.cfg.Spin || total <= 0 {
		return
	}
	if total >= spinSleepThreshold {
		d.sleepOff(total)
		return
	}
	debt := d.spinDebt.Add(int64(total))
	if debt < int64(spinSleepThreshold) {
		return
	}
	// Claim one quantum of the shared debt; losing the race just means
	// another charge is already sleeping it off.
	if d.spinDebt.CompareAndSwap(debt, debt-int64(spinSleepThreshold)) {
		d.sleepOff(spinSleepThreshold)
	}
}

// sleepOff sleeps for want and credits any overshoot back against the
// delay debt. Sleep granularity is host-dependent (often ~1 ms), so
// without the credit every quantum would oversleep by up to a timer
// tick and spin-mode wall time would be dominated by the host's timer
// resolution instead of the charged latencies; with it, the total slept
// time converges to the total charged latency.
func (d *Device) sleepOff(want time.Duration) {
	start := time.Now()
	time.Sleep(want)
	if over := time.Since(start) - want; over > 0 {
		d.spinDebt.Add(-int64(over))
	}
}

// EnterWorker registers the calling goroutine as one worker of a
// parallel phase: while k workers are inside an Enter/Leave bracket,
// every charged latency advances the overlap clock (Stats.SimIOOverlap)
// by 1/k of its nominal cost, modelling k device accesses in flight at
// once. Serial execution (no bracket, or a single worker) leaves the
// overlap clock equal to SimIOTime. Pair every EnterWorker with a
// LeaveWorker (defer is fine).
func (d *Device) EnterWorker() { d.active.Add(1) }

// LeaveWorker undoes one EnterWorker.
func (d *Device) LeaveWorker() { d.active.Add(-1) }

// ChargeSoftware adds software-path overhead (filesystem call costs,
// copies) to the simulated clock. The persistence-layer backends use this
// to model the per-call overheads the paper attributes to each
// implementation alternative (§3.2); the raw blocked-memory backend charges
// nothing.
func (d *Device) ChargeSoftware(dur time.Duration) {
	if dur > 0 {
		d.softNanos.Add(int64(dur))
	}
}

// Stats is a snapshot of the device counters.
type Stats struct {
	Reads        uint64 // cachelines read
	Writes       uint64 // cachelines written
	ReadOps      uint64 // ReadAt calls
	WriteOps     uint64 // WriteAt calls
	BytesRead    uint64
	BytesWritten uint64
	SimIOTime    time.Duration // Σ accesses × latency
	SimIOOverlap time.Duration // Σ accesses × latency ÷ active workers (≤ SimIOTime)
	SoftTime     time.Duration // accumulated software-path overhead
}

// Sub returns s − o, the activity between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:        s.Reads - o.Reads,
		Writes:       s.Writes - o.Writes,
		ReadOps:      s.ReadOps - o.ReadOps,
		WriteOps:     s.WriteOps - o.WriteOps,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		SimIOTime:    s.SimIOTime - o.SimIOTime,
		SimIOOverlap: s.SimIOOverlap - o.SimIOOverlap,
		SoftTime:     s.SoftTime - o.SoftTime,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:        s.Reads + o.Reads,
		Writes:       s.Writes + o.Writes,
		ReadOps:      s.ReadOps + o.ReadOps,
		WriteOps:     s.WriteOps + o.WriteOps,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
		SimIOTime:    s.SimIOTime + o.SimIOTime,
		SimIOOverlap: s.SimIOOverlap + o.SimIOOverlap,
		SoftTime:     s.SoftTime + o.SoftTime,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d simIO=%v", s.Reads, s.Writes, s.SimIOTime)
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:        d.reads.Load(),
		Writes:       d.writes.Load(),
		ReadOps:      d.readOps.Load(),
		WriteOps:     d.writeOps.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWrite.Load(),
		SimIOTime:    time.Duration(d.simIONanos.Load()),
		SimIOOverlap: time.Duration(d.ovlNanos.Load()),
		SoftTime:     time.Duration(d.softNanos.Load()),
	}
}

// SimTime is the total simulated time: device I/O plus software overhead.
func (s Stats) SimTime() time.Duration { return s.SimIOTime + s.SoftTime }

// Phase-change-memory access energies per cacheline, derived from the
// ~2 pJ/bit read and ~16 pJ/bit write figures of the PCM literature the
// paper builds on (Qureshi et al. 2012): asymmetry manifests in power as
// well as latency (§4.3), and more sharply — λ_energy = 8 here versus
// whatever the latency ratio is.
const (
	DefaultReadEnergyPJ  = 2 * 64 * 8  // pJ per line read
	DefaultWriteEnergyPJ = 16 * 64 * 8 // pJ per line written
)

// EnergyPJ estimates the device energy of the recorded accesses in
// picojoules, given per-line access energies (zero values select the PCM
// defaults). The paper notes the algorithms' relative gains grow under
// energy metrics because the write/read asymmetry is more pronounced.
func (s Stats) EnergyPJ(readPJ, writePJ float64) float64 {
	if readPJ <= 0 {
		readPJ = DefaultReadEnergyPJ
	}
	if writePJ <= 0 {
		writePJ = DefaultWriteEnergyPJ
	}
	return float64(s.Reads)*readPJ + float64(s.Writes)*writePJ
}

// ResetStats zeroes all counters (wear map included).
func (d *Device) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.readOps.Store(0)
	d.writeOps.Store(0)
	d.bytesRead.Store(0)
	d.bytesWrite.Store(0)
	d.simIONanos.Store(0)
	d.ovlNanos.Store(0)
	d.softNanos.Store(0)
	for i := range d.wear {
		atomic.StoreUint32(&d.wear[i], 0)
	}
}

// WearSummary aggregates the per-cacheline write counters.
type WearSummary struct {
	Tracked   bool
	Lines     int     // cachelines on the device
	Written   int     // lines written at least once
	MaxWrites uint32  // hottest line
	MeanWrite float64 // average over written lines
}

// Wear summarizes device endurance exposure. Zero value when tracking is off.
func (d *Device) Wear() WearSummary {
	if d.wear == nil {
		return WearSummary{}
	}
	s := WearSummary{Tracked: true, Lines: len(d.wear)}
	var sum uint64
	for i := range d.wear {
		w := atomic.LoadUint32(&d.wear[i])
		if w == 0 {
			continue
		}
		s.Written++
		sum += uint64(w)
		if w > s.MaxWrites {
			s.MaxWrites = w
		}
	}
	if s.Written > 0 {
		s.MeanWrite = float64(sum) / float64(s.Written)
	}
	return s
}
