package pmem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testDevice(t *testing.T, cap int64) *Device {
	t.Helper()
	d, err := Open(Config{Capacity: cap, TrackWear: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestOpenValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{}},
		{"negative capacity", Config{Capacity: -1}},
		{"non power-of-two cacheline", Config{Capacity: 1024, CachelineSize: 96}},
		{"tiny cacheline", Config{Capacity: 1024, CachelineSize: 4}},
		{"negative latency", Config{Capacity: 1024, ReadLatency: -time.Nanosecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.cfg); err == nil {
				t.Fatalf("Open(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}

func TestOpenDefaults(t *testing.T) {
	d := testDevice(t, 4096)
	if got := d.CachelineSize(); got != DefaultCachelineSize {
		t.Errorf("CachelineSize = %d, want %d", got, DefaultCachelineSize)
	}
	if got := d.ReadLatency(); got != DefaultReadLatency {
		t.Errorf("ReadLatency = %v, want %v", got, DefaultReadLatency)
	}
	if got := d.WriteLatency(); got != DefaultWriteLatency {
		t.Errorf("WriteLatency = %v, want %v", got, DefaultWriteLatency)
	}
	if got := d.Lambda(); got != 15 {
		t.Errorf("Lambda = %v, want 15", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := testDevice(t, 4096)
	in := []byte("persistent memory is byte-addressable")
	if err := d.WriteAt(in, 100); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	out := make([]byte, len(in))
	if err := d.ReadAt(out, 100); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("round trip mismatch: %q != %q", out, in)
	}
}

func TestOutOfRange(t *testing.T) {
	d := testDevice(t, 256)
	buf := make([]byte, 16)
	if err := d.ReadAt(buf, 250); err == nil {
		t.Error("ReadAt past end succeeded, want error")
	}
	if err := d.WriteAt(buf, -1); err == nil {
		t.Error("WriteAt negative offset succeeded, want error")
	}
	if err := d.WriteAt(make([]byte, 300), 0); err == nil {
		t.Error("WriteAt larger than device succeeded, want error")
	}
}

func TestCachelineAccounting(t *testing.T) {
	d := testDevice(t, 4096)
	cases := []struct {
		off   int64
		n     int
		lines uint64
	}{
		{0, 1, 1},      // single byte, one line
		{0, 64, 1},     // exactly one line
		{0, 65, 2},     // spills into second line
		{63, 2, 2},     // straddles a boundary
		{64, 64, 1},    // aligned second line
		{10, 80, 2},    // an 80-byte record usually touches 2 lines
		{0, 1024, 16},  // one block = 16 lines
		{32, 1024, 17}, // unaligned block touches 17
	}
	for _, tc := range cases {
		d.ResetStats()
		if err := d.WriteAt(make([]byte, tc.n), tc.off); err != nil {
			t.Fatalf("WriteAt(%d, %d): %v", tc.off, tc.n, err)
		}
		if got := d.Stats().Writes; got != tc.lines {
			t.Errorf("write [%d,+%d): %d lines, want %d", tc.off, tc.n, got, tc.lines)
		}
		d.ResetStats()
		if err := d.ReadAt(make([]byte, tc.n), tc.off); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", tc.off, tc.n, err)
		}
		if got := d.Stats().Reads; got != tc.lines {
			t.Errorf("read [%d,+%d): %d lines, want %d", tc.off, tc.n, got, tc.lines)
		}
	}
}

func TestSimIOTime(t *testing.T) {
	d := MustOpen(Config{Capacity: 4096, ReadLatency: 10 * time.Nanosecond, WriteLatency: 150 * time.Nanosecond})
	if err := d.WriteAt(make([]byte, 128), 0); err != nil { // 2 lines
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 64), 0); err != nil { // 1 line
		t.Fatal(err)
	}
	want := 2*150*time.Nanosecond + 1*10*time.Nanosecond
	if got := d.Stats().SimIOTime; got != want {
		t.Errorf("SimIOTime = %v, want %v", got, want)
	}
}

func TestSimIOOverlap(t *testing.T) {
	d := MustOpen(Config{Capacity: 4096, ReadLatency: 10 * time.Nanosecond, WriteLatency: 150 * time.Nanosecond})

	// Serial: overlap clock tracks the serial clock exactly.
	if err := d.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.SimIOOverlap != st.SimIOTime {
		t.Errorf("serial SimIOOverlap = %v, want SimIOTime %v", st.SimIOOverlap, st.SimIOTime)
	}

	// Two registered workers: each charge advances the overlap clock by
	// half its latency.
	d.ResetStats()
	d.EnterWorker()
	d.EnterWorker()
	if err := d.ReadAt(make([]byte, 256), 0); err != nil { // 4 lines
		t.Fatal(err)
	}
	d.LeaveWorker()
	d.LeaveWorker()
	st = d.Stats()
	if want := 4 * 10 * time.Nanosecond; st.SimIOTime != want {
		t.Fatalf("SimIOTime = %v, want %v", st.SimIOTime, want)
	}
	if want := st.SimIOTime / 2; st.SimIOOverlap != want {
		t.Errorf("SimIOOverlap under 2 workers = %v, want %v", st.SimIOOverlap, want)
	}

	// Brackets closed: back to serial accounting.
	if err := d.ReadAt(make([]byte, 64), 0); err != nil { // 1 line
		t.Fatal(err)
	}
	st2 := d.Stats()
	if got, want := st2.SimIOOverlap-st.SimIOOverlap, 10*time.Nanosecond; got != want {
		t.Errorf("post-bracket overlap delta = %v, want %v", got, want)
	}
}

func TestSetLatencies(t *testing.T) {
	d := testDevice(t, 4096)
	d.SetLatencies(10*time.Nanosecond, 50*time.Nanosecond)
	if got := d.Lambda(); got != 5 {
		t.Errorf("Lambda after SetLatencies = %v, want 5", got)
	}
	d.ResetStats()
	if err := d.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().SimIOTime; got != 50*time.Nanosecond {
		t.Errorf("SimIOTime = %v, want 50ns", got)
	}
}

func TestWearTracking(t *testing.T) {
	d := testDevice(t, 1024)
	for i := 0; i < 5; i++ {
		if err := d.WriteAt(make([]byte, 64), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteAt(make([]byte, 64), 512); err != nil {
		t.Fatal(err)
	}
	w := d.Wear()
	if !w.Tracked {
		t.Fatal("wear not tracked")
	}
	if w.Written != 2 {
		t.Errorf("Written = %d, want 2", w.Written)
	}
	if w.MaxWrites != 5 {
		t.Errorf("MaxWrites = %d, want 5", w.MaxWrites)
	}
	if w.MeanWrite != 3 {
		t.Errorf("MeanWrite = %v, want 3", w.MeanWrite)
	}
}

func TestStatsSubAdd(t *testing.T) {
	d := testDevice(t, 4096)
	if err := d.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := d.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(before)
	if delta.Writes != 2 {
		t.Errorf("delta.Writes = %d, want 2", delta.Writes)
	}
	sum := before.Add(delta)
	if sum != d.Stats() {
		t.Errorf("Add/Sub not inverse: %+v != %+v", sum, d.Stats())
	}
}

// Property: reading back any written range returns the written bytes, and
// the cacheline count matches the analytic formula.
func TestQuickReadBackAndLineCount(t *testing.T) {
	d := testDevice(t, 1<<16)
	f := func(off uint16, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		o := int64(off) % (d.Capacity() - int64(len(raw)))
		if o < 0 {
			o = 0
		}
		before := d.Stats()
		if err := d.WriteAt(raw, o); err != nil {
			return false
		}
		got := make([]byte, len(raw))
		if err := d.ReadAt(got, o); err != nil {
			return false
		}
		delta := d.Stats().Sub(before)
		cls := int64(d.CachelineSize())
		wantLines := uint64((o+int64(len(raw))-1)/cls - o/cls + 1)
		return bytes.Equal(raw, got) && delta.Writes == wantLines && delta.Reads == wantLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := testDevice(t, 4096)
	if err := d.WriteAt(make([]byte, 64), 0); err != nil { // 1 line
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 128), 0); err != nil { // 2 lines
		t.Fatal(err)
	}
	st := d.Stats()
	want := float64(DefaultWriteEnergyPJ) + 2*float64(DefaultReadEnergyPJ)
	if got := st.EnergyPJ(0, 0); got != want {
		t.Errorf("EnergyPJ = %v, want %v", got, want)
	}
	if got := st.EnergyPJ(1, 10); got != 12 {
		t.Errorf("custom EnergyPJ = %v, want 12", got)
	}
	// The asymmetry property the paper leans on: a write-heavy profile
	// costs more energy than a read-heavy one of equal line count.
	writeHeavy := Stats{Reads: 0, Writes: 100}
	readHeavy := Stats{Reads: 100, Writes: 0}
	if writeHeavy.EnergyPJ(0, 0) <= readHeavy.EnergyPJ(0, 0) {
		t.Error("write energy not above read energy")
	}
}

func TestZeroLengthAccess(t *testing.T) {
	d := testDevice(t, 256)
	if err := d.WriteAt(nil, 0); err != nil {
		t.Fatalf("zero-length write: %v", err)
	}
	if err := d.ReadAt(nil, 256); err != nil { // at end, zero length: legal
		t.Fatalf("zero-length read at end: %v", err)
	}
	st := d.Stats()
	if st.Reads != 0 || st.Writes != 0 {
		t.Errorf("zero-length access counted lines: %+v", st)
	}
}

// TestSpinChargeYields checks both spin paths: short charges busy-wait
// (yielding), long charges sleep — and both account the simulated clock
// while wall time stays the same order as the charge, not a livelock.
func TestSpinChargeYields(t *testing.T) {
	d := MustOpen(Config{
		Capacity:     1 << 20,
		Spin:         true,
		ReadLatency:  50 * time.Nanosecond,   // short path: 64 B read = 50 ns spin
		WriteLatency: 200 * time.Microsecond, // long path: ≥ spinSleepThreshold, sleeps
	})
	buf := make([]byte, 64)
	start := time.Now()
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	st := d.Stats()
	want := 50*time.Nanosecond + 200*time.Microsecond
	if st.SimIOTime != want {
		t.Errorf("SimIOTime = %v, want %v", st.SimIOTime, want)
	}
	if elapsed < 200*time.Microsecond {
		t.Errorf("spin mode returned after %v, before the charged %v", elapsed, want)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("spin mode took %v for a %v charge", elapsed, want)
	}
}

// TestSpinChargeConcurrent drives a spinning device from many goroutines;
// with the yielding loop this completes promptly even on one core.
func TestSpinChargeConcurrent(t *testing.T) {
	d := MustOpen(Config{Capacity: 1 << 20, Spin: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 512)
			off := int64(g) * 1024
			for i := 0; i < 50; i++ {
				if err := d.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				if err := d.ReadAt(buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := d.Stats(); st.Writes != 8*50*8 {
		t.Errorf("writes = %d, want %d", st.Writes, 8*50*8)
	}
}
