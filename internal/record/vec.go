package record

import "sort"

// Vec is a DRAM-resident vector of fixed-size records backed by one flat
// byte slice. Algorithms use it for their in-memory working sets (the
// budget M): a flat backing array keeps the Go garbage collector out of the
// measured path, per the reproduction note on GC obscuring write costs.
type Vec struct {
	data []byte
	size int // record size in bytes
	n    int // records
}

// NewVec returns a Vec for records of size bytes with capacity for
// capRecords records (it grows as needed).
func NewVec(size, capRecords int) *Vec {
	if size <= 0 {
		panic("record: non-positive record size")
	}
	return &Vec{data: make([]byte, 0, size*capRecords), size: size}
}

// Len reports the number of records.
func (v *Vec) Len() int { return v.n }

// RecordSize reports the per-record size in bytes.
func (v *Vec) RecordSize() int { return v.size }

// Bytes reports the payload size in bytes.
func (v *Vec) Bytes() int { return v.n * v.size }

// Append copies rec into the vector.
func (v *Vec) Append(rec []byte) {
	if len(rec) != v.size {
		panic("record: Vec.Append size mismatch")
	}
	v.data = append(v.data, rec...)
	v.n++
}

// AppendVec copies every record of src onto the end of v, preserving
// src's record order.
func (v *Vec) AppendVec(src *Vec) {
	if src.size != v.size {
		panic("record: Vec.AppendVec record size mismatch")
	}
	v.data = append(v.data, src.data...)
	v.n += src.n
}

// At returns record i. The slice aliases the vector's storage.
func (v *Vec) At(i int) []byte {
	return v.data[i*v.size : (i+1)*v.size : (i+1)*v.size]
}

// Set overwrites record i with rec.
func (v *Vec) Set(i int, rec []byte) {
	copy(v.data[i*v.size:(i+1)*v.size], rec)
}

// Swap exchanges records i and j.
func (v *Vec) Swap(i, j int) {
	if i == j {
		return
	}
	tmp := make([]byte, v.size)
	copy(tmp, v.At(i))
	copy(v.data[i*v.size:], v.At(j))
	copy(v.data[j*v.size:], tmp)
}

// Reset empties the vector, keeping capacity.
func (v *Vec) Reset() {
	v.data = v.data[:0]
	v.n = 0
}

// Truncate keeps the first n records.
func (v *Vec) Truncate(n int) {
	if n < 0 || n > v.n {
		panic("record: Vec.Truncate out of range")
	}
	v.data = v.data[:n*v.size]
	v.n = n
}

type vecSorter struct {
	v   *Vec
	tmp []byte
}

func (s vecSorter) Len() int           { return s.v.n }
func (s vecSorter) Less(i, j int) bool { return Less(s.v.At(i), s.v.At(j)) }
func (s vecSorter) Swap(i, j int) {
	copy(s.tmp, s.v.At(i))
	copy(s.v.data[i*s.v.size:], s.v.At(j))
	copy(s.v.data[j*s.v.size:], s.tmp)
}

// SortByKey sorts the records in place by ascending key.
func (v *Vec) SortByKey() {
	sort.Sort(vecSorter{v: v, tmp: make([]byte, v.size)})
}

// SortedByKey reports whether the records are in ascending key order.
func (v *Vec) SortedByKey() bool {
	return sort.IsSorted(vecSorter{v: v, tmp: make([]byte, v.size)})
}
