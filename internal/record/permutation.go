package record

// Permutation is a bijection on [0, n) with good dispersion, standing in
// for the Wisconsin benchmark's unique key-value permutation. It composes a
// full-period linear congruential step on the next power of two with cycle
// walking, which preserves bijectivity on the restricted domain.
type Permutation struct {
	n    uint64
	mask uint64 // m-1 where m = next power of two ≥ n
	mult uint64 // ≡ 1 (mod 4) for full period on a power-of-two ring
	add  uint64 // odd for full period
}

// NewPermutation builds a permutation of [0, n) seeded by seed.
func NewPermutation(n uint64, seed uint64) *Permutation {
	if n == 0 {
		panic("record: permutation over empty domain")
	}
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	// Derive full-period LCG parameters from the seed (splitmix-style
	// scrambling), then force the Hull–Dobell conditions for a
	// power-of-two modulus: mult ≡ 1 (mod 4), add odd.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	mult := z&^3 | 5 // low bits 101: mult ≡ 1 (mod 4) and mult ≥ 5
	add := z>>32 | 1
	return &Permutation{n: n, mask: m - 1, mult: mult, add: add}
}

// N reports the domain size.
func (p *Permutation) N() uint64 { return p.n }

// Apply maps i ∈ [0, n) to its permuted value in [0, n).
func (p *Permutation) Apply(i uint64) uint64 {
	if i >= p.n {
		panic("record: permutation input out of domain")
	}
	x := i
	for {
		x = (x*p.mult + p.add) & p.mask
		if x < p.n {
			return x
		}
	}
}
