package record

import "fmt"

// Emit receives one generated record. The slice is reused between calls;
// implementations must copy if they retain it.
type Emit func(rec []byte) error

// Generate produces n records whose keys are a seeded permutation of
// 0..n-1, calling emit for each. This is the sort benchmark's input.
func Generate(n int, seed uint64, emit Emit) error {
	if n < 0 {
		return fmt.Errorf("record: negative cardinality %d", n)
	}
	if n == 0 {
		return nil
	}
	perm := NewPermutation(uint64(n), seed)
	rec := make([]byte, Size)
	for i := 0; i < n; i++ {
		Fill(rec, perm.Apply(uint64(i)))
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// GenerateJoin produces the paper's join microbenchmark: a left input of
// nLeft records with unique permuted keys 0..nLeft-1, and a right input of
// nRight records whose keys cycle through 0..nLeft-1 in permuted order, so
// every left record matches exactly nRight/nLeft right records (ten in the
// paper's 1M ⋈ 10M setup).
func GenerateJoin(nLeft, nRight int, seed uint64, emitLeft, emitRight Emit) error {
	if nLeft <= 0 || nRight < 0 {
		return fmt.Errorf("record: invalid join cardinalities %d ⋈ %d", nLeft, nRight)
	}
	permL := NewPermutation(uint64(nLeft), seed)
	rec := make([]byte, Size)
	for i := 0; i < nLeft; i++ {
		Fill(rec, permL.Apply(uint64(i)))
		if err := emitLeft(rec); err != nil {
			return err
		}
	}
	permR := NewPermutation(uint64(nLeft), seed+1)
	for i := 0; i < nRight; i++ {
		Fill(rec, permR.Apply(uint64(i%nLeft)))
		if err := emitRight(rec); err != nil {
			return err
		}
	}
	return nil
}
