// Package record defines the tuple format and workload generators used by
// every experiment in this repository.
//
// The schema follows the paper's microbenchmark (§4, "Datasets and
// metrics"): ten eight-byte integer attributes for a total record size of
// 80 bytes. The key attribute follows a Wisconsin-benchmark-style unique
// value permutation; the remaining attributes are derived from the key
// through integer division and modulo computations.
package record

import (
	"encoding/binary"
	"fmt"
)

// Schema constants. A record is NumAttrs fixed-width attributes; the key is
// attribute zero.
const (
	NumAttrs = 10
	AttrSize = 8
	Size     = NumAttrs * AttrSize // 80 bytes
)

// Key returns the key attribute (attribute 0) of rec.
func Key(rec []byte) uint64 {
	return binary.LittleEndian.Uint64(rec)
}

// SetKey stores k as the key attribute of rec.
func SetKey(rec []byte, k uint64) {
	binary.LittleEndian.PutUint64(rec, k)
}

// Attr returns attribute i of rec.
func Attr(rec []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(rec[i*AttrSize:])
}

// SetAttr stores v as attribute i of rec.
func SetAttr(rec []byte, i int, v uint64) {
	binary.LittleEndian.PutUint64(rec[i*AttrSize:], v)
}

// Fill populates rec (which must be at least Size bytes) with key k and the
// derived payload attributes.
func Fill(rec []byte, k uint64) {
	SetKey(rec, k)
	for i := 1; i < NumAttrs; i++ {
		// Wisconsin-style derivation: alternating integer division and
		// modulo of the key, offset by the attribute index so attributes
		// are pairwise distinct.
		var v uint64
		if i%2 == 0 {
			v = k / uint64(i+1)
		} else {
			v = k % uint64(i*1000+1)
		}
		SetAttr(rec, i, v)
	}
}

// New returns a fresh record with key k.
func New(k uint64) []byte {
	rec := make([]byte, Size)
	Fill(rec, k)
	return rec
}

// Less orders records by key ascending; ties cannot occur in the
// benchmark's unique-key workloads but are broken by full byte order so the
// relation is total.
func Less(a, b []byte) bool {
	ka, kb := Key(a), Key(b)
	if ka != kb {
		return ka < kb
	}
	return string(a) < string(b)
}

// Validate checks that rec has the schema size.
func Validate(rec []byte) error {
	if len(rec) != Size {
		return fmt.Errorf("record: got %d bytes, want %d", len(rec), Size)
	}
	return nil
}
