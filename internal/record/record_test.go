package record

import (
	"testing"
	"testing/quick"
)

func TestFillRoundTrip(t *testing.T) {
	rec := New(42)
	if err := Validate(rec); err != nil {
		t.Fatal(err)
	}
	if Key(rec) != 42 {
		t.Errorf("Key = %d, want 42", Key(rec))
	}
	SetKey(rec, 7)
	if Key(rec) != 7 {
		t.Errorf("Key after SetKey = %d, want 7", Key(rec))
	}
	SetAttr(rec, 3, 999)
	if Attr(rec, 3) != 999 {
		t.Errorf("Attr(3) = %d, want 999", Attr(rec, 3))
	}
}

func TestFillDerivedAttrs(t *testing.T) {
	rec := New(123456)
	for i := 1; i < NumAttrs; i++ {
		var want uint64
		if i%2 == 0 {
			want = 123456 / uint64(i+1)
		} else {
			want = 123456 % uint64(i*1000+1)
		}
		if got := Attr(rec, i); got != want {
			t.Errorf("Attr(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(make([]byte, Size)); err != nil {
		t.Errorf("Validate(80B) = %v", err)
	}
	if err := Validate(make([]byte, Size-1)); err == nil {
		t.Error("Validate(79B) passed")
	}
}

func TestLessTotalOrder(t *testing.T) {
	a, b := New(1), New(2)
	if !Less(a, b) || Less(b, a) {
		t.Error("Less not ordering by key")
	}
	c := New(1)
	SetAttr(c, 5, Attr(c, 5)+1)
	if Less(a, c) == Less(c, a) {
		t.Error("Less not total on equal keys")
	}
}

func TestPermutationIsBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 64, 100, 1000, 4097} {
		p := NewPermutation(n, 42)
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.Apply(i)
			if v >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	const n = 1000
	p1, p2 := NewPermutation(n, 1), NewPermutation(n, 2)
	same := 0
	for i := uint64(0); i < n; i++ {
		if p1.Apply(i) == p2.Apply(i) {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("seeds 1 and 2 agree on %d/%d positions", same, n)
	}
}

func TestPermutationDisperses(t *testing.T) {
	// The permutation should not be close to the identity: count fixed
	// points and adjacent mappings.
	const n = 10000
	p := NewPermutation(n, 7)
	fixed := 0
	for i := uint64(0); i < n; i++ {
		if p.Apply(i) == i {
			fixed++
		}
	}
	if fixed > n/100 {
		t.Errorf("%d fixed points in %d (permutation too close to identity)", fixed, n)
	}
}

// Property: for arbitrary domain sizes the permutation stays in range and
// two distinct inputs never collide.
func TestQuickPermutationInjective(t *testing.T) {
	f := func(nRaw uint16, seed uint64, a, b uint16) bool {
		n := uint64(nRaw)%5000 + 2
		p := NewPermutation(n, seed)
		x, y := uint64(a)%n, uint64(b)%n
		px, py := p.Apply(x), p.Apply(y)
		if px >= n || py >= n {
			return false
		}
		return (x == y) == (px == py)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUniqueKeys(t *testing.T) {
	const n = 5000
	seen := make(map[uint64]bool, n)
	err := Generate(n, 3, func(rec []byte) error {
		k := Key(rec)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("generated %d unique keys, want %d", len(seen), n)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if err := Generate(0, 1, func([]byte) error { t.Fatal("emit on empty"); return nil }); err != nil {
		t.Errorf("Generate(0) = %v", err)
	}
	if err := Generate(-1, 1, func([]byte) error { return nil }); err == nil {
		t.Error("Generate(-1) succeeded")
	}
}

func TestGenerateJoinFanOut(t *testing.T) {
	const nL, nR = 100, 1000
	counts := make(map[uint64]int)
	leftKeys := make(map[uint64]bool)
	err := GenerateJoin(nL, nR, 9,
		func(rec []byte) error { leftKeys[Key(rec)] = true; return nil },
		func(rec []byte) error { counts[Key(rec)]++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(leftKeys) != nL {
		t.Fatalf("left has %d unique keys, want %d", len(leftKeys), nL)
	}
	for k, c := range counts {
		if !leftKeys[k] {
			t.Fatalf("right key %d missing from left", k)
		}
		if c != nR/nL {
			t.Fatalf("key %d occurs %d times on the right, want %d", k, c, nR/nL)
		}
	}
}

func TestVecBasics(t *testing.T) {
	v := NewVec(Size, 4)
	for _, k := range []uint64{5, 3, 9, 1} {
		v.Append(New(k))
	}
	if v.Len() != 4 || v.Bytes() != 4*Size {
		t.Fatalf("Len=%d Bytes=%d", v.Len(), v.Bytes())
	}
	if Key(v.At(2)) != 9 {
		t.Errorf("At(2) key = %d, want 9", Key(v.At(2)))
	}
	v.Swap(0, 3)
	if Key(v.At(0)) != 1 || Key(v.At(3)) != 5 {
		t.Error("Swap did not exchange records")
	}
	v.SortByKey()
	if !v.SortedByKey() {
		t.Error("not sorted after SortByKey")
	}
	for i, want := range []uint64{1, 3, 5, 9} {
		if Key(v.At(i)) != want {
			t.Errorf("sorted[%d] = %d, want %d", i, Key(v.At(i)), want)
		}
	}
	v.Truncate(2)
	if v.Len() != 2 {
		t.Errorf("Len after Truncate = %d", v.Len())
	}
	v.Reset()
	if v.Len() != 0 {
		t.Errorf("Len after Reset = %d", v.Len())
	}
}

func TestVecSet(t *testing.T) {
	v := NewVec(Size, 2)
	v.Append(New(1))
	v.Set(0, New(77))
	if Key(v.At(0)) != 77 {
		t.Errorf("Set did not overwrite: key = %d", Key(v.At(0)))
	}
}

// Property: sorting any batch of generated records yields ascending keys
// and preserves the multiset of keys.
func TestQuickVecSortPermutes(t *testing.T) {
	f := func(keys []uint64) bool {
		v := NewVec(Size, len(keys))
		before := make(map[uint64]int)
		for _, k := range keys {
			v.Append(New(k))
			before[k]++
		}
		v.SortByKey()
		if !v.SortedByKey() {
			return false
		}
		after := make(map[uint64]int)
		for i := 0; i < v.Len(); i++ {
			after[Key(v.At(i))]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, c := range before {
			if after[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
