// Package broker is the System-wide memory broker: it owns the one DRAM
// budget the paper's cost model rations (working memory M for heaps,
// hash tables and merge buffers) and admits concurrent queries against
// it. Each query requests a grant before it is planned — the physical
// planner then prices the plan at the granted budget, not at a caller
// constant — and releases the grant when its cursor closes or its
// context is cancelled, so K concurrent sessions can never oversubscribe
// the device host's memory the way K private fixed budgets would.
//
// Admission is FIFO: a request that does not fit waits behind earlier
// waiters (no starvation of large requests behind a stream of small
// ones) and is woken as releases free memory. Blocking requests honour
// context cancellation; fail-fast requests return ErrAdmission
// immediately when the memory is not free.
//
// AcquireBest adds grant bidding on top of the FIFO: a query names every
// grant size it is willing to run at (descending), and the broker admits
// the largest that currently fits — raising utilization without letting
// any bidder overtake requests queued ahead of it. AcquireBestFunc makes
// the bid live: queued bids are re-priced on every grant release (not
// just at enqueue), so a shrunken queue admits right-sized waiters
// sooner.
package broker

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Policy selects the admission behaviour of Acquire when the requested
// grant does not currently fit the free budget.
type Policy int

const (
	// Block queues the request FIFO and waits for releases (or context
	// cancellation).
	Block Policy = iota
	// FailFast returns ErrAdmission instead of waiting.
	FailFast
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case FailFast:
		return "fail-fast"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrAdmission is returned by fail-fast acquisition when the requested
// memory is not free.
var ErrAdmission = errors.New("broker: memory budget exhausted")

// Broker arbitrates one total memory budget among concurrent grants.
// Safe for concurrent use.
type Broker struct {
	total int64

	mu        sync.Mutex
	used      int64
	highWater int64
	waiters   []*waiter // FIFO admission queue
}

type waiter struct {
	cands   []int64       // acceptable grant sizes, descending
	reprice Repricer      // optional: recomputes cands at each release
	granted int64         // the candidate admit charged, set before ready closes
	ready   chan struct{} // closed by admit with the grant charged
}

// fit returns the largest candidate not exceeding free, or 0.
func (w *waiter) fit(free int64) int64 {
	for _, c := range w.cands {
		if c <= free {
			return c
		}
	}
	return 0
}

// New returns a broker over a total budget in bytes.
func New(total int64) (*Broker, error) {
	if total <= 0 {
		return nil, fmt.Errorf("broker: total memory budget must be positive, got %d", total)
	}
	return &Broker{total: total}, nil
}

// Total is the System-wide budget the broker rations.
func (b *Broker) Total() int64 { return b.total }

// InUse is the sum of the outstanding grants.
func (b *Broker) InUse() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// HighWater is the largest InUse ever observed — the oversubscription
// check concurrent-session tests assert against Total.
func (b *Broker) HighWater() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// Waiting reports the number of queued admission requests.
func (b *Broker) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.waiters)
}

// Acquire requests a grant of bytes. A request larger than the total
// budget can never be admitted and fails under either policy; ctx
// cancellation aborts a blocked request. The returned grant must be
// released exactly once (Release is idempotent, so "at least once" is
// safe).
func (b *Broker) Acquire(ctx context.Context, bytes int64, p Policy) (*Grant, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("broker: grant request must be positive, got %d", bytes)
	}
	return b.AcquireBest(ctx, []int64{bytes}, p)
}

// Repricer recomputes a queued bid's acceptable grant sizes against the
// budget currently free. The broker consults it on every grant release
// while the bid waits at the head of the queue — not just at enqueue —
// so a bid priced when the queue (and the free budget) looked different
// can right-size itself to the memory actually available and start
// sooner. Returning nil (or no positive candidate) keeps the bid's
// previous candidate list.
//
// The broker calls the repricer with its own lock held: it must be a
// pure computation (walking a plan's cost curves is fine) and must not
// call back into the broker.
type Repricer func(free int64) []int64

// AcquireBest is multi-candidate admission — the grant-bidding half of
// cost-driven memory planning. The caller names every grant size it is
// willing to run at (a session prices its plan at several budgets first
// and keeps the ones whose predicted cost stays acceptable); the broker
// admits the largest candidate that currently fits, so a query that runs
// well at M/2 starts immediately instead of queueing behind its full-M
// ask. FIFO fairness is preserved: when other requests are already
// queued the bidder queues behind them, and a queued bidder is woken
// with the largest of its candidates that fits at release time.
//
// Candidates are normalized to descending order; candidates above the
// system budget are dropped (an error if none survive). All must be
// positive.
func (b *Broker) AcquireBest(ctx context.Context, candidates []int64, p Policy) (*Grant, error) {
	return b.AcquireBestFunc(ctx, candidates, nil, p)
}

// AcquireBestFunc is AcquireBest with a live bid: reprice, when non-nil,
// recomputes the queued bid's candidate sizes on every grant release
// while the request waits (see Repricer). The initial candidates decide
// immediate admission and the FailFast outcome; repricing only affects a
// request that queued.
func (b *Broker) AcquireBestFunc(ctx context.Context, candidates []int64, reprice Repricer, p Policy) (*Grant, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("broker: grant request needs at least one candidate size")
	}
	cands := make([]int64, 0, len(candidates))
	for _, c := range candidates {
		if c <= 0 {
			return nil, fmt.Errorf("broker: grant request must be positive, got %d", c)
		}
		if c <= b.total {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("broker: grant request %d B exceeds the system budget %d B", candidates[0], b.total)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	// Admit immediately only when nothing is queued ahead (FIFO); take
	// the largest candidate the free budget covers.
	if len(b.waiters) == 0 {
		if g := (&waiter{cands: cands}).fit(b.total - b.used); g > 0 {
			b.chargeLocked(g)
			b.mu.Unlock()
			return &Grant{b: b, bytes: g}, nil
		}
	}
	if p == FailFast {
		used := b.used
		b.mu.Unlock()
		return nil, fmt.Errorf("%w (requested %d B, %d B of %d B in use)", ErrAdmission, cands[0], used, b.total)
	}
	w := &waiter{cands: cands, reprice: reprice, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	select {
	case <-w.ready:
		return &Grant{b: b, bytes: w.granted}, nil
	case <-ctx.Done():
		b.mu.Lock()
		// Lost race: admit may have fired between Done and the lock.
		select {
		case <-w.ready:
			b.releaseLocked(w.granted)
			b.mu.Unlock()
			return nil, ctx.Err()
		default:
		}
		for i, q := range b.waiters {
			if q == w {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		return nil, ctx.Err()
	}
}

// chargeLocked books bytes against the budget. The Locked suffix is the
// engine's caller-holds-b.mu contract, machine-checked by
// wlvet/syncfield at every call site.
func (b *Broker) chargeLocked(bytes int64) {
	b.used += bytes
	if b.used > b.highWater {
		b.highWater = b.used
	}
}

// releaseLocked returns bytes to the budget and admits queued waiters,
// in order, while any of their candidate sizes fit (largest first per
// waiter). A waiter with a repricer first recomputes its candidates
// against the free budget — the wake-and-reprice path — so a bid sized
// when the queue looked different admits at today's right size instead
// of waiting for yesterday's. The head waiter still gates the queue — a
// small bidder never overtakes a large request queued ahead of it.
// The Locked suffix is the caller-holds-b.mu contract, machine-checked
// by wlvet/syncfield at every call site.
func (b *Broker) releaseLocked(bytes int64) {
	b.used -= bytes
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		free := b.total - b.used
		if w.reprice != nil {
			if cands := normalizeCands(w.reprice(free), b.total); len(cands) > 0 {
				w.cands = cands
			}
		}
		g := w.fit(free)
		if g == 0 {
			break
		}
		w.granted = g
		b.chargeLocked(g)
		b.waiters = b.waiters[1:]
		close(w.ready)
	}
}

// normalizeCands drops non-positive and over-budget candidates and sorts
// the survivors descending.
func normalizeCands(cands []int64, total int64) []int64 {
	out := cands[:0]
	for _, c := range cands {
		if c > 0 && c <= total {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Grant is one admitted share of the broker's budget.
type Grant struct {
	b     *Broker
	bytes int64

	mu       sync.Mutex
	released bool
}

// Bytes is the granted budget — the M the physical planner prices the
// query's plan at.
func (g *Grant) Bytes() int64 { return g.bytes }

// Release returns the grant to the broker. Idempotent: cursors release
// on Close and again on context cancellation without double-crediting.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	g.b.mu.Lock()
	g.b.releaseLocked(g.bytes)
	g.b.mu.Unlock()
}
