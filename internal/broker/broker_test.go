package broker

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, total int64) *Broker {
	t.Helper()
	b, err := New(total)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("New(-5) succeeded")
	}
}

func TestAcquireRelease(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 60, Block)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 60 {
		t.Fatalf("InUse = %d, want 60", got)
	}
	g2, err := b.Acquire(context.Background(), 40, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	g.Release()
	g.Release() // idempotent
	g2.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if hw := b.HighWater(); hw != 100 {
		t.Fatalf("HighWater = %d, want 100", hw)
	}
}

func TestFailFast(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 80, Block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire(context.Background(), 30, FailFast); !errors.Is(err, ErrAdmission) {
		t.Fatalf("FailFast over budget: err = %v, want ErrAdmission", err)
	}
	g.Release()
	if _, err := b.Acquire(context.Background(), 30, FailFast); err != nil {
		t.Fatalf("FailFast under budget: %v", err)
	}
}

func TestRequestLargerThanTotal(t *testing.T) {
	b := mustNew(t, 100)
	if _, err := b.Acquire(context.Background(), 101, Block); err == nil {
		t.Fatal("oversized request admitted")
	}
	if _, err := b.Acquire(context.Background(), 0, Block); err == nil {
		t.Fatal("zero request admitted")
	}
}

func TestBlockWaitsForRelease(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 100, Block)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Grant)
	go func() {
		g2, err := b.Acquire(context.Background(), 50, Block)
		if err != nil {
			t.Error(err)
		}
		admitted <- g2
	}()
	select {
	case <-admitted:
		t.Fatal("blocked request admitted while budget full")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case g2 := <-admitted:
		g2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("blocked request not admitted after release")
	}
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

func TestBlockedAcquireHonorsCancellation(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 100, Block)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		_, err := b.Acquire(ctx, 10, Block)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	if w := b.Waiting(); w != 0 {
		t.Fatalf("Waiting = %d after cancellation, want 0", w)
	}
	g.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestFIFONoStarvation: a large request queued behind a stream of small
// ones is admitted in arrival order, not starved.
func TestFIFONoStarvation(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 90, Block)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // queued first: needs 80
		defer wg.Done()
		gBig, err := b.Acquire(context.Background(), 80, Block)
		if err != nil {
			t.Error(err)
			return
		}
		order <- "big"
		gBig.Release()
	}()
	time.Sleep(10 * time.Millisecond) // establish queue order
	go func() {                       // queued second: cannot fit next to big, so it observes big's admission
		defer wg.Done()
		gSmall, err := b.Acquire(context.Background(), 30, Block)
		if err != nil {
			t.Error(err)
			return
		}
		order <- "small"
		gSmall.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	g.Release()
	wg.Wait()
	if first := <-order; first != "big" {
		t.Fatalf("first admitted = %q, want \"big\" (FIFO)", first)
	}
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

// TestConcurrentChurn hammers the broker with concurrent acquire/release
// cycles and asserts accounting invariants (run with -race).
func TestConcurrentChurn(t *testing.T) {
	b := mustNew(t, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g, err := b.Acquire(context.Background(), int64(8+w), Block)
				if err != nil {
					t.Error(err)
					return
				}
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after churn, want 0", got)
	}
	if hw := b.HighWater(); hw > 64 {
		t.Fatalf("HighWater = %d exceeds total 64", hw)
	}
}
