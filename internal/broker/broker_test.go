package broker

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustNew(t *testing.T, total int64) *Broker {
	t.Helper()
	b, err := New(total)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("New(-5) succeeded")
	}
}

func TestAcquireRelease(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 60, Block)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 60 {
		t.Fatalf("InUse = %d, want 60", got)
	}
	g2, err := b.Acquire(context.Background(), 40, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	g.Release()
	g.Release() // idempotent
	g2.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if hw := b.HighWater(); hw != 100 {
		t.Fatalf("HighWater = %d, want 100", hw)
	}
}

func TestFailFast(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 80, Block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire(context.Background(), 30, FailFast); !errors.Is(err, ErrAdmission) {
		t.Fatalf("FailFast over budget: err = %v, want ErrAdmission", err)
	}
	g.Release()
	if _, err := b.Acquire(context.Background(), 30, FailFast); err != nil {
		t.Fatalf("FailFast under budget: %v", err)
	}
}

func TestRequestLargerThanTotal(t *testing.T) {
	b := mustNew(t, 100)
	if _, err := b.Acquire(context.Background(), 101, Block); err == nil {
		t.Fatal("oversized request admitted")
	}
	if _, err := b.Acquire(context.Background(), 0, Block); err == nil {
		t.Fatal("zero request admitted")
	}
}

func TestBlockWaitsForRelease(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 100, Block)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Grant)
	go func() {
		g2, err := b.Acquire(context.Background(), 50, Block)
		if err != nil {
			t.Error(err)
		}
		admitted <- g2
	}()
	select {
	case <-admitted:
		t.Fatal("blocked request admitted while budget full")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case g2 := <-admitted:
		g2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("blocked request not admitted after release")
	}
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

func TestBlockedAcquireHonorsCancellation(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 100, Block)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		_, err := b.Acquire(ctx, 10, Block)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	if w := b.Waiting(); w != 0 {
		t.Fatalf("Waiting = %d after cancellation, want 0", w)
	}
	g.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestFIFONoStarvation: a large request queued behind a stream of small
// ones is admitted in arrival order, not starved.
func TestFIFONoStarvation(t *testing.T) {
	b := mustNew(t, 100)
	g, err := b.Acquire(context.Background(), 90, Block)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // queued first: needs 80
		defer wg.Done()
		gBig, err := b.Acquire(context.Background(), 80, Block)
		if err != nil {
			t.Error(err)
			return
		}
		order <- "big"
		gBig.Release()
	}()
	time.Sleep(10 * time.Millisecond) // establish queue order
	go func() {                       // queued second: cannot fit next to big, so it observes big's admission
		defer wg.Done()
		gSmall, err := b.Acquire(context.Background(), 30, Block)
		if err != nil {
			t.Error(err)
			return
		}
		order <- "small"
		gSmall.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	g.Release()
	wg.Wait()
	if first := <-order; first != "big" {
		t.Fatalf("first admitted = %q, want \"big\" (FIFO)", first)
	}
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

// TestConcurrentChurn hammers the broker with concurrent acquire/release
// cycles and asserts accounting invariants (run with -race).
func TestConcurrentChurn(t *testing.T) {
	b := mustNew(t, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g, err := b.Acquire(context.Background(), int64(8+w), Block)
				if err != nil {
					t.Error(err)
					return
				}
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after churn, want 0", got)
	}
	if hw := b.HighWater(); hw > 64 {
		t.Fatalf("HighWater = %d exceeds total 64", hw)
	}
}

// --- AcquireBest: grant bidding ---

func TestAcquireBestTakesLargestFit(t *testing.T) {
	b := mustNew(t, 100)
	hold, err := b.Acquire(context.Background(), 60, Block)
	if err != nil {
		t.Fatal(err)
	}
	// 80 does not fit next to the 60-byte hold; 40 does. Candidate order
	// in the call must not matter.
	g, err := b.AcquireBest(context.Background(), []int64{40, 80}, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 40 {
		t.Fatalf("granted %d B, want the largest fitting candidate 40", g.Bytes())
	}
	g.Release()
	hold.Release()
	// With the budget free the full candidate wins.
	g, err = b.AcquireBest(context.Background(), []int64{80, 40}, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 80 {
		t.Fatalf("granted %d B, want 80 with the budget free", g.Bytes())
	}
	g.Release()
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

func TestAcquireBestValidation(t *testing.T) {
	b := mustNew(t, 100)
	if _, err := b.AcquireBest(context.Background(), nil, Block); err == nil {
		t.Error("empty candidate list accepted")
	}
	if _, err := b.AcquireBest(context.Background(), []int64{50, 0}, Block); err == nil {
		t.Error("zero candidate accepted")
	}
	if _, err := b.AcquireBest(context.Background(), []int64{500, 200}, Block); err == nil {
		t.Error("candidates above the total accepted")
	}
	// Oversized candidates are dropped, feasible ones survive.
	g, err := b.AcquireBest(context.Background(), []int64{500, 60}, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 60 {
		t.Fatalf("granted %d B, want 60", g.Bytes())
	}
	g.Release()
}

// TestAcquireBestPreservesFIFO pins the fairness contract: a bidder with
// a fitting small candidate must not overtake a larger request queued
// ahead of it, and when the queue drains the head is served its full
// demand before the bidder fits into what remains. Admission order is
// asserted through broker state (queue length, granted sizes), not
// through goroutine wake order — both waiters can legitimately be
// admitted in the same release pass.
func TestAcquireBestPreservesFIFO(t *testing.T) {
	b := mustNew(t, 100)
	hold, err := b.Acquire(context.Background(), 90, Block)
	if err != nil {
		t.Fatal(err)
	}
	bigGranted := make(chan int64, 1)
	bidGranted := make(chan int64, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // queued first: needs 80
		defer wg.Done()
		g, err := b.Acquire(context.Background(), 80, Block)
		if err != nil {
			t.Error(err)
			return
		}
		bigGranted <- g.Bytes()
		g.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	wg.Add(1)
	go func() { // bidder behind it: its 10-byte candidate fits the free
		// 10 B right now, but the queue is non-empty, so FIFO must keep
		// it queued instead of admitting it ahead of the big request.
		defer wg.Done()
		g, err := b.AcquireBest(context.Background(), []int64{70, 10}, Block)
		if err != nil {
			t.Error(err)
			return
		}
		bidGranted <- g.Bytes()
		g.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	if got := b.Waiting(); got != 2 {
		t.Fatalf("Waiting = %d, want 2 (the bidder queued FIFO instead of taking its fitting candidate)", got)
	}
	hold.Release()
	wg.Wait()
	// The head was served its full 80 B demand; the bidder fit the
	// 20 B remainder with its small candidate, not the 70 B one.
	if got := <-bigGranted; got != 80 {
		t.Fatalf("head of queue granted %d B, want its full 80 B demand", got)
	}
	if got := <-bidGranted; got != 10 {
		t.Fatalf("bidder granted %d B, want the 10 B candidate that fit behind the head", got)
	}
	if hw := b.HighWater(); hw > 100 {
		t.Fatalf("HighWater = %d exceeds total", hw)
	}
}

// TestAcquireBestWakesWithLargestFitting: a queued bidder is granted the
// largest of its candidates that fits at release time, not the one that
// happened to fit when it queued.
func TestAcquireBestWakesWithLargestFitting(t *testing.T) {
	b := mustNew(t, 100)
	hold, err := b.Acquire(context.Background(), 95, Block)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		// Neither candidate fits next to the 95-byte hold, so the bidder
		// queues; the release frees everything and the larger candidate
		// must win.
		g, err := b.AcquireBest(context.Background(), []int64{80, 40}, Block)
		if err != nil {
			t.Error(err)
			return
		}
		got <- g.Bytes()
		g.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	hold.Release() // frees everything: the 80-byte candidate now fits
	if bytes := <-got; bytes != 80 {
		t.Fatalf("woken with %d B, want the largest candidate 80", bytes)
	}
}

// TestAcquireBestChurnNoStarvation hammers mixed fixed and bidding
// acquisitions (run with -race): everything completes, accounting holds.
func TestAcquireBestChurnNoStarvation(t *testing.T) {
	b := mustNew(t, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var g *Grant
				var err error
				if w%2 == 0 {
					g, err = b.AcquireBest(context.Background(), []int64{48, 16, 4}, Block)
				} else {
					g, err = b.Acquire(context.Background(), int64(8+w), Block)
				}
				if err != nil {
					t.Error(err)
					return
				}
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after churn, want 0", got)
	}
	if hw := b.HighWater(); hw > 64 {
		t.Fatalf("HighWater = %d exceeds total 64", hw)
	}
	if wting := b.Waiting(); wting != 0 {
		t.Fatalf("Waiting = %d after churn, want 0", wting)
	}
}

// TestAcquireBestFuncRepricesOnRelease is the wake-and-reprice path: a
// bid queued with candidates sized for yesterday's queue is re-priced at
// every release, so it admits at the budget actually free instead of
// waiting for its original ask.
func TestAcquireBestFuncRepricesOnRelease(t *testing.T) {
	b := mustNew(t, 100)
	g1, err := b.Acquire(context.Background(), 40, Block)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.Acquire(context.Background(), 60, Block)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	admitted := make(chan *Grant)
	go func() {
		// Static candidates would wait for 80 B free; the repricer
		// accepts whatever is free once at least 30 B opened up.
		g, err := b.AcquireBestFunc(context.Background(), []int64{80},
			func(free int64) []int64 {
				calls.Add(1)
				if free < 30 {
					return nil
				}
				return []int64{free}
			}, Block)
		if err != nil {
			t.Error(err)
		}
		admitted <- g
	}()

	// The bid must queue: 0 B free, and the repricer is not consulted at
	// enqueue time.
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("repricer called %d times before any release", n)
	}

	// First release frees 40 B — short of the static 80 B ask, but the
	// repricer right-sizes the bid to the free budget.
	g1.Release()
	select {
	case g := <-admitted:
		if g.Bytes() != 40 {
			t.Fatalf("admitted at %d B, want the repriced free budget 40", g.Bytes())
		}
		g.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("repriced bid not admitted after release freed 40 B")
	}
	if n := calls.Load(); n == 0 {
		t.Fatal("repricer never consulted on release")
	}
	g2.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

// TestAcquireBestFuncRepriceKeepsCandsOnNil keeps the previous candidate
// list when the repricer declines (returns nil): the bid still admits
// once an original candidate fits.
func TestAcquireBestFuncRepriceKeepsCandsOnNil(t *testing.T) {
	b := mustNew(t, 100)
	g1, err := b.Acquire(context.Background(), 70, Block)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.Acquire(context.Background(), 30, Block)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Grant)
	go func() {
		g, err := b.AcquireBestFunc(context.Background(), []int64{60, 30},
			func(int64) []int64 { return nil }, Block)
		if err != nil {
			t.Error(err)
		}
		admitted <- g
	}()
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	g2.Release() // 30 B free: the declined reprice leaves {60, 30}; 30 fits
	select {
	case g := <-admitted:
		if g.Bytes() != 30 {
			t.Fatalf("admitted at %d B, want the original candidate 30", g.Bytes())
		}
		g.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("bid not admitted from its original candidates")
	}
	g1.Release()
}

// TestAcquireBestFuncRepricePreservesFIFO: a repricing bidder at the
// head of the queue does not let later arrivals overtake it, and a
// repricing bidder behind a fixed request cannot jump the queue.
func TestAcquireBestFuncRepricePreservesFIFO(t *testing.T) {
	b := mustNew(t, 100)
	g1, err := b.Acquire(context.Background(), 100, Block)
	if err != nil {
		t.Fatal(err)
	}
	// First in line: a fixed 90 B request.
	first := make(chan *Grant)
	go func() {
		g, err := b.Acquire(context.Background(), 90, Block)
		if err != nil {
			t.Error(err)
		}
		first <- g
	}()
	for b.Waiting() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Second: a repricing bidder that would happily take anything free.
	second := make(chan *Grant)
	go func() {
		g, err := b.AcquireBestFunc(context.Background(), []int64{90},
			func(free int64) []int64 { return []int64{free} }, Block)
		if err != nil {
			t.Error(err)
		}
		second <- g
	}()
	for b.Waiting() != 2 {
		time.Sleep(time.Millisecond)
	}
	g1.Release() // 100 B free: head takes 90, bidder reprices to the 10 left
	g := <-first
	select {
	case g2 := <-second:
		if g2.Bytes() != 10 {
			t.Fatalf("queued bidder admitted at %d B, want the repriced remainder 10", g2.Bytes())
		}
		g2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("queued bidder not admitted behind the drained head")
	}
	g.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}
