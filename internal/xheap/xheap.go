// Package xheap provides a generic binary heap used by the run-formation
// phases of the sort and join algorithms (replacement selection, selection
// regions, multiway merge).
package xheap

// Heap is a binary heap ordered by the provided less function: a min-heap
// when less is "a < b", a max-heap when inverted.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap with the given order and capacity hint.
func New[T any](less func(a, b T) bool, capHint int) *Heap[T] {
	return &Heap[T]{items: make([]T, 0, capHint), less: less}
}

// Heapify builds a heap in place from items, taking ownership of the slice.
func Heapify[T any](items []T, less func(a, b T) bool) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len reports the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the root without removing it. It panics on an empty heap.
func (h *Heap[T]) Peek() T {
	if len(h.items) == 0 {
		panic("xheap: Peek on empty heap")
	}
	return h.items[0]
}

// Pop removes and returns the root. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	if len(h.items) == 0 {
		panic("xheap: Pop on empty heap")
	}
	root := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return root
}

// ReplaceRoot swaps the root for x and restores heap order; equivalent to
// Pop-then-Push but with a single sift. It panics on an empty heap.
func (h *Heap[T]) ReplaceRoot(x T) T {
	if len(h.items) == 0 {
		panic("xheap: ReplaceRoot on empty heap")
	}
	root := h.items[0]
	h.items[0] = x
	h.down(0)
	return root
}

// Drain removes all elements in heap order and returns them ascending by
// the heap's order.
func (h *Heap[T]) Drain() []T {
	out := make([]T, 0, len(h.items))
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}

// Reset empties the heap, keeping capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
