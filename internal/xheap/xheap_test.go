package xheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestPushPopOrder(t *testing.T) {
	h := New(intLess, 0)
	for _, x := range []int{5, 1, 9, 3, 7, 2, 8} {
		h.Push(x)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop #%d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len after drain = %d", h.Len())
	}
}

func TestMaxHeap(t *testing.T) {
	h := New(func(a, b int) bool { return a > b }, 0)
	for _, x := range []int{5, 1, 9} {
		h.Push(x)
	}
	if got := h.Peek(); got != 9 {
		t.Errorf("max-heap Peek = %d, want 9", got)
	}
	if got := h.Pop(); got != 9 {
		t.Errorf("max-heap Pop = %d, want 9", got)
	}
}

func TestHeapify(t *testing.T) {
	items := []int{9, 4, 7, 1, 0, 8, 2}
	h := Heapify(items, intLess)
	got := h.Drain()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("Drain after Heapify not sorted: %v", got)
	}
	if len(got) != 7 {
		t.Fatalf("Drain length = %d, want 7", len(got))
	}
}

func TestReplaceRoot(t *testing.T) {
	h := Heapify([]int{1, 5, 3}, intLess)
	if old := h.ReplaceRoot(4); old != 1 {
		t.Fatalf("ReplaceRoot returned %d, want 1", old)
	}
	if got := h.Pop(); got != 3 {
		t.Fatalf("Pop after ReplaceRoot = %d, want 3", got)
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(*Heap[int]){
		"Pop":         func(h *Heap[int]) { h.Pop() },
		"Peek":        func(h *Heap[int]) { h.Peek() },
		"ReplaceRoot": func(h *Heap[int]) { h.ReplaceRoot(1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty heap did not panic", name)
				}
			}()
			f(New(intLess, 0))
		})
	}
}

func TestReset(t *testing.T) {
	h := New(intLess, 0)
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(5)
	if h.Peek() != 5 {
		t.Error("heap unusable after Reset")
	}
}

// Property: popping everything yields the sorted input.
func TestQuickHeapSorts(t *testing.T) {
	f := func(xs []int) bool {
		h := New(intLess, len(xs))
		for _, x := range xs {
			h.Push(x)
		}
		got := h.Drain()
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved Push/Pop maintains the invariant that Pop returns
// the current minimum.
func TestQuickInterleaved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(intLess, 0)
		var mirror []int
		for i := 0; i < 300; i++ {
			if len(mirror) > 0 && rng.Intn(3) == 0 {
				min := mirror[0]
				idx := 0
				for j, v := range mirror {
					if v < min {
						min, idx = v, j
					}
				}
				if h.Pop() != min {
					return false
				}
				mirror = append(mirror[:idx], mirror[idx+1:]...)
			} else {
				v := rng.Intn(1000)
				h.Push(v)
				mirror = append(mirror, v)
			}
		}
		return h.Len() == len(mirror)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
