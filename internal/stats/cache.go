package stats

import (
	"sync"

	"wlpm/internal/storage"
)

// Provider supplies per-table statistics to the physical planner. A nil
// result means "unknown"; the planner falls back to its textbook
// defaults.
type Provider interface {
	TableStats(c storage.Collection) *Table
}

// Cache holds collected statistics keyed by collection name, invalidated
// by row count. With AutoCollect set, a lookup miss (or a stale entry)
// triggers a fresh collection pass — the ANALYZE-on-first-query behaviour
// of the façade. Safe for concurrent use.
type Cache struct {
	autoCollect bool

	mu sync.Mutex
	m  map[string]*Table
}

// NewCache returns an empty cache. With autoCollect, TableStats collects
// missing or stale statistics on demand instead of returning nil.
func NewCache(autoCollect bool) *Cache {
	return &Cache{autoCollect: autoCollect, m: make(map[string]*Table)}
}

// Collect gathers fresh statistics for c (one read-only streaming pass)
// and caches them, replacing any previous entry — the explicit ANALYZE.
func (s *Cache) Collect(c storage.Collection) (*Table, error) {
	t, err := Collect(c)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.m[t.Name] = t
	s.mu.Unlock()
	return t, nil
}

// Lookup returns the cached statistics of the named collection, or nil.
func (s *Cache) Lookup(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Invalidate drops the cached statistics of the named collection.
func (s *Cache) Invalidate(name string) {
	s.mu.Lock()
	delete(s.m, name)
	s.mu.Unlock()
}

// TableStats implements Provider: the cached entry when it still matches
// the collection's row count; otherwise a fresh collection when
// AutoCollect is on (collection errors degrade to "unknown"), else nil.
//
// Freshness is judged by (name, row count) only — the cache cannot
// observe Destroy. A caller that destroys a collection and recreates the
// name with different data of the same length must Invalidate (or
// re-Collect) the name, or the planner sees the old distribution; the
// estimates degrade, never the results.
func (s *Cache) TableStats(c storage.Collection) *Table {
	if c == nil {
		return nil
	}
	s.mu.Lock()
	t := s.m[c.Name()]
	s.mu.Unlock()
	if t != nil && t.Rows == c.Len() {
		return t
	}
	if !s.autoCollect {
		return t // possibly stale: an estimate beats no estimate
	}
	t, err := s.Collect(c)
	if err != nil {
		return nil
	}
	return t
}
