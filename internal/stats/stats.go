// Package stats is the engine's column-statistics subsystem: per-attribute
// distinct-count sketches and equi-depth histograms collected in one
// streaming pass over a storage collection, cached per table, and consumed
// by the physical planner in internal/exec.
//
// The planner's blind spots before this package existed were exactly the
// quantities estimated here: filter selectivities (previously fixed
// textbook constants), group counts (previously a caller-supplied
// GroupHint), and join cardinalities (previously "every probe matches").
// Collection is read-only — a scan of the base collection, never a write —
// so gathering statistics costs cheap reads, the currency the paper's
// write-limited algorithms are happy to spend.
//
// Accuracy, documented so tests can pin it:
//
//   - Distinct counts use a KMV (k minimum hash values) sketch with
//     k = SketchSize. Counts up to k are exact; beyond that the estimate's
//     relative standard error is ≈ 1/√(k−2) (~6% at k = 256). Tests allow
//     3σ ≈ 20%.
//   - Histograms are equi-depth over a SampleSize-value reservoir sample.
//     A cumulative-fraction estimate carries error O(1/HistogramBuckets)
//     from bucket granularity plus O(1/√SampleSize) sampling noise; tests
//     allow ±0.08 absolute on cumulative fractions. Columns with at most
//     SampleSize rows are sampled completely, leaving only the bucket
//     granularity term.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Sketch and histogram sizing. The whole per-column state is a few KiB, so
// collecting a ten-attribute table costs tens of KiB of DRAM — negligible
// next to any operator budget.
const (
	// SketchSize is k of the KMV distinct sketch.
	SketchSize = 256
	// SampleSize is the per-attribute reservoir feeding histogram bounds.
	SampleSize = 1024
	// HistogramBuckets is the number of equi-depth buckets.
	HistogramBuckets = 64
)

// Table is the collected statistics of one collection (or, after the
// planner's transforms, of one intermediate result).
type Table struct {
	// Name of the collection the statistics were collected from.
	Name string
	// Rows is the row count the statistics describe.
	Rows int
	// Cols holds one entry per 8-byte attribute of the schema.
	Cols []Column
}

// Column is the statistics of one attribute.
type Column struct {
	// Min and Max are the exact value bounds seen during collection.
	Min, Max uint64
	// Distinct is the estimated distinct-value count (exact when the
	// column has at most SketchSize distinct values).
	Distinct int
	// Hist is the equi-depth histogram of the value distribution.
	Hist Histogram
}

// Col returns the statistics of attribute attr, or nil when the table is
// unknown or the attribute is outside the collected schema. All planner
// call sites go through this nil-safe accessor.
func (t *Table) Col(attr int) *Column {
	if t == nil || attr < 0 || attr >= len(t.Cols) {
		return nil
	}
	return &t.Cols[attr]
}

// --- Selectivity estimators ---

// FracEq estimates the fraction of rows with value exactly v: the uniform
// 1/Distinct within the observed [Min, Max] bounds, zero outside them.
func (c *Column) FracEq(v uint64) float64 {
	if c == nil || c.Distinct <= 0 || v < c.Min || v > c.Max {
		return 0
	}
	return 1 / float64(c.Distinct)
}

// FracLE estimates the fraction of rows with value ≤ v from the
// equi-depth histogram, interpolating linearly inside the bucket v falls
// into.
func (c *Column) FracLE(v uint64) float64 {
	if c == nil {
		return 0
	}
	return c.Hist.FracLE(v)
}

// FracLT estimates the fraction of rows with value < v.
func (c *Column) FracLT(v uint64) float64 {
	f := c.FracLE(v) - c.FracEq(v)
	if f < 0 {
		return 0
	}
	return f
}

// Histogram is an equi-depth histogram: Bounds[i] is the inclusive upper
// bound of bucket i, each bucket holding an equal share of the rows. The
// lower bound of bucket 0 is the column minimum.
type Histogram struct {
	Lo     uint64
	Bounds []uint64
}

// FracLE is the estimated cumulative fraction of values ≤ v.
func (h Histogram) FracLE(v uint64) float64 {
	n := len(h.Bounds)
	if n == 0 {
		return 0
	}
	if v < h.Lo {
		return 0
	}
	if v >= h.Bounds[n-1] {
		return 1
	}
	// Buckets whose upper bound is ≤ v lie entirely below v — with heavy
	// duplicates many buckets share one bound, and all of them count —
	// then v interpolates inside the first bucket whose bound exceeds it.
	i := sort.Search(n, func(j int) bool { return h.Bounds[j] > v })
	lo := h.Lo
	if i > 0 {
		lo = h.Bounds[i-1]
	}
	hi := h.Bounds[i]
	interp := 1.0
	if hi > lo {
		interp = float64(v-lo) / float64(hi-lo)
	}
	f := (float64(i) + interp) / float64(n)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// --- Collection ---

// Collect streams collection c once and returns its statistics. The pass
// is read-only; its cost is one scan of the collection. The record size
// must be a whole number of 8-byte attributes.
func Collect(c storage.Collection) (*Table, error) {
	if c == nil {
		return nil, fmt.Errorf("stats: nil collection")
	}
	recSize := c.RecordSize()
	if recSize <= 0 || recSize%record.AttrSize != 0 {
		return nil, fmt.Errorf("stats: record size %d is not a whole number of %d-byte attributes", recSize, record.AttrSize)
	}
	attrs := recSize / record.AttrSize
	cols := make([]collector, attrs)
	for i := range cols {
		cols[i].init(i)
	}
	it := c.Scan()
	defer it.Close()
	rows := 0
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rows++
		for i := range cols {
			cols[i].add(record.Attr(rec, i))
		}
	}
	t := &Table{Name: c.Name(), Rows: rows, Cols: make([]Column, attrs)}
	for i := range cols {
		t.Cols[i] = cols[i].finish(rows)
	}
	return t, nil
}

// collector is the streaming per-attribute state of one Collect pass.
type collector struct {
	min, max uint64
	any      bool
	sketch   kmv
	sample   reservoir
}

func (c *collector) init(attr int) {
	c.sketch = kmv{k: SketchSize}
	// Seed the reservoir's deterministic generator per attribute so
	// repeated collections of the same data give identical statistics.
	c.sample = reservoir{cap: SampleSize, rng: 0x9e3779b97f4a7c15 ^ uint64(attr+1)}
}

func (c *collector) add(v uint64) {
	if !c.any || v < c.min {
		c.min = v
	}
	if !c.any || v > c.max {
		c.max = v
	}
	c.any = true
	c.sketch.add(mix(v))
	c.sample.add(v)
}

func (c *collector) finish(rows int) Column {
	col := Column{Min: c.min, Max: c.max, Distinct: c.sketch.estimate()}
	if col.Distinct > rows {
		col.Distinct = rows
	}
	col.Hist = buildHistogram(c.sample.vals, c.min, HistogramBuckets)
	return col
}

// mix is the splitmix64 finalizer: a cheap 64-bit mixer whose output is
// uniform enough for the KMV estimate.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// kmv keeps the k smallest distinct hash values seen. With fewer than k
// distinct values the count is exact; beyond that the k-th smallest hash
// locates the distinct density of the hash space.
type kmv struct {
	k    int
	vals []uint64 // ascending, distinct, len ≤ k
}

func (s *kmv) add(h uint64) {
	n := len(s.vals)
	if n == s.k && h >= s.vals[n-1] {
		return
	}
	i := sort.Search(n, func(j int) bool { return s.vals[j] >= h })
	if i < n && s.vals[i] == h {
		return
	}
	if n < s.k {
		s.vals = append(s.vals, 0)
		copy(s.vals[i+1:], s.vals[i:n])
	} else {
		copy(s.vals[i+1:], s.vals[i:n-1])
	}
	s.vals[i] = h
}

func (s *kmv) estimate() int {
	n := len(s.vals)
	if n < s.k {
		return n
	}
	frac := float64(s.vals[n-1]) / float64(math.MaxUint64)
	if frac <= 0 {
		return n
	}
	return int(float64(s.k-1)/frac + 0.5)
}

// reservoir is algorithm-R reservoir sampling with a deterministic
// xorshift64 generator, so collection is reproducible.
type reservoir struct {
	cap  int
	vals []uint64
	seen uint64
	rng  uint64
}

func (r *reservoir) next() uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng
}

func (r *reservoir) add(v uint64) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.next() % r.seen; j < uint64(r.cap) {
		r.vals[j] = v
	}
}

// buildHistogram sorts the sample (in place) and takes equi-depth bucket
// bounds from its quantiles.
func buildHistogram(sample []uint64, lo uint64, buckets int) Histogram {
	if len(sample) == 0 || buckets <= 0 {
		return Histogram{}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	if buckets > len(sample) {
		buckets = len(sample)
	}
	bounds := make([]uint64, buckets)
	for b := 0; b < buckets; b++ {
		bounds[b] = sample[((b+1)*len(sample)-1)/buckets]
	}
	return Histogram{Lo: lo, Bounds: bounds}
}

// --- Planner transforms ---
//
// The planner propagates base-table statistics through its plan tree with
// the transforms below. They follow the classic no-correlation assumption:
// value distributions survive row-count changes, distinct counts are only
// clamped, never rescaled.

// WithRows returns a copy of t describing rows rows, with each column's
// distinct count clamped to the new row count. Nil-safe.
func (t *Table) WithRows(rows int) *Table {
	if t == nil {
		return nil
	}
	d := &Table{Name: t.Name, Rows: rows, Cols: append([]Column(nil), t.Cols...)}
	for i := range d.Cols {
		if d.Cols[i].Distinct > rows {
			d.Cols[i].Distinct = rows
		}
	}
	return d
}

// Restrict returns a copy of t describing rows rows where column attr is
// additionally known to lie in [lo, hi] — the shape of the table that
// survives a range (or equality) filter. Unlike WithRows, which only
// clamps distinct counts, Restrict propagates the predicate's bounds
// into the surviving column: Min/Max tighten to the intersection, the
// equi-depth histogram is clipped to the surviving buckets (interior
// bounds keep their quantile positions, so depths stay approximately
// equal up to the two boundary buckets), and the distinct count scales
// by the histogram mass of the surviving range. lo > hi denotes an
// empty range (e.g. "< 0"). Nil-safe; columns other than attr are only
// distinct-clamped, as before.
func (t *Table) Restrict(attr int, lo, hi uint64, rows int) *Table {
	d := t.WithRows(rows)
	if d == nil || attr < 0 || attr >= len(d.Cols) {
		return d
	}
	col := &d.Cols[attr]
	empty := lo > hi
	if !empty {
		if lo < col.Min {
			lo = col.Min
		}
		if hi > col.Max {
			hi = col.Max
		}
		empty = lo > hi
	}
	if empty {
		// Nothing survives: an impossible-range column. Keep the bounds
		// collapsed so every later estimate over it reports zero.
		col.Distinct = 0
		col.Hist = Histogram{}
		col.Min, col.Max = 1, 0
		return d
	}
	frac := col.Hist.FracLE(hi)
	if lo > 0 {
		frac -= col.Hist.FracLE(lo - 1)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// Scale from the pre-clamp distinct count: WithRows already clamped
	// col.Distinct to the surviving rows, and scaling that again would
	// double-count the reduction.
	if orig := t.Col(attr).Distinct; orig > 0 {
		scaled := int(float64(orig)*frac + 0.5)
		if scaled < 1 {
			scaled = 1
		}
		if scaled < col.Distinct {
			col.Distinct = scaled
		}
	}
	if col.Distinct > rows {
		col.Distinct = rows
	}
	col.Min, col.Max = lo, hi
	col.Hist = col.Hist.clip(lo, hi)
	return d
}

// clip restricts an equi-depth histogram to [lo, hi]: bounds outside the
// range drop, the surviving range's maximum becomes the final bound, and
// the lower edge moves to lo. The surviving interior bounds keep their
// quantile positions, so the clipped histogram stays approximately
// equi-depth over the surviving rows (exact up to the two boundary
// buckets).
func (h Histogram) clip(lo, hi uint64) Histogram {
	if len(h.Bounds) == 0 {
		return Histogram{Lo: lo, Bounds: []uint64{hi}}
	}
	bounds := make([]uint64, 0, len(h.Bounds)+1)
	for _, b := range h.Bounds {
		if b >= lo && b < hi {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, hi)
	return Histogram{Lo: lo, Bounds: bounds}
}

// Project returns the statistics of the projected schema: column attrs[i]
// of t becomes column i. Returns nil when t is unknown or any attribute is
// outside the collected schema.
func (t *Table) Project(attrs []int) *Table {
	if t == nil {
		return nil
	}
	d := &Table{Name: t.Name, Rows: t.Rows, Cols: make([]Column, len(attrs))}
	for i, a := range attrs {
		c := t.Col(a)
		if c == nil {
			return nil
		}
		d.Cols[i] = *c
	}
	return d
}

// Concat returns the statistics of the l‖r concatenated schema describing
// rows rows — the shape of a join output. Nil when either side is unknown.
func Concat(l, r *Table, rows int) *Table {
	if l == nil || r == nil {
		return nil
	}
	d := &Table{
		Name: l.Name + "+" + r.Name,
		Rows: rows,
		Cols: append(append([]Column(nil), l.Cols...), r.Cols...),
	}
	for i := range d.Cols {
		if d.Cols[i].Distinct > rows {
			d.Cols[i].Distinct = rows
		}
	}
	return d
}
