package stats

import (
	"math"
	"sort"
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/blocked"
)

// newCollection loads the values as the key attribute of benchmark
// records in the given order.
func newCollection(t *testing.T, name string, values []uint64) storage.Collection {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	fac := blocked.New(dev, 0)
	c, err := fac.Create(name, record.Size)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := c.Append(record.New(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return c
}

// shuffle permutes values deterministically (xorshift64), so the
// streaming collectors never see a conveniently sorted stream.
func shuffle(values []uint64) {
	rng := uint64(0x1234_5678_9abc_def1)
	for i := len(values) - 1; i > 0; i-- {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		j := rng % uint64(i+1)
		values[i], values[j] = values[j], values[i]
	}
}

// exactDistinct counts the ground truth.
func exactDistinct(values []uint64) int {
	seen := make(map[uint64]bool, len(values))
	for _, v := range values {
		seen[v] = true
	}
	return len(seen)
}

// exactFracLE is the ground-truth cumulative fraction.
func exactFracLE(sorted []uint64, v uint64) float64 {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] > v })
	return float64(i) / float64(len(sorted))
}

// Error bounds documented in the package comment: KMV distinct estimates
// within 3σ ≈ 20% relative, histogram cumulative fractions within ±0.08
// absolute.
const (
	distinctRelBound = 0.20
	histAbsBound     = 0.08
)

// domains are the three key distributions of the satellite task: uniform
// permutation, zipf-like skew, and clustered (few dense value runs).
func domains() map[string][]uint64 {
	const n = 20000
	uniform := make([]uint64, n)
	for i := range uniform {
		uniform[i] = uint64(i)
	}
	// Zipf-like: value r (1-based rank) appears ~n/(2r) times, giving a
	// heavy head and a long tail of rare values.
	var zipf []uint64
	for r := uint64(1); len(zipf) < n; r++ {
		reps := n / (2 * int(r))
		if reps < 1 {
			reps = 1
		}
		for i := 0; i < reps && len(zipf) < n; i++ {
			zipf = append(zipf, r*1000)
		}
	}
	clustered := make([]uint64, n)
	for i := range clustered {
		clustered[i] = uint64(i / 40) // 500 clusters of 40 equal keys
	}
	out := map[string][]uint64{"uniform": uniform, "zipf": zipf, "clustered": clustered}
	for _, vals := range out {
		shuffle(vals)
	}
	return out
}

func TestDistinctEstimateWithinBound(t *testing.T) {
	for name, values := range domains() {
		tbl, err := Collect(newCollection(t, name, values))
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rows != len(values) {
			t.Fatalf("%s: rows %d, want %d", name, tbl.Rows, len(values))
		}
		want := exactDistinct(values)
		got := tbl.Col(0).Distinct
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if want <= SketchSize {
			if got != want {
				t.Errorf("%s: %d distinct values must be exact below the sketch size, got %d", name, want, got)
			}
		} else if relErr > distinctRelBound {
			t.Errorf("%s: distinct estimate %d vs actual %d (%.1f%% error > %.0f%% bound)",
				name, got, want, relErr*100, distinctRelBound*100)
		}
		t.Logf("%s: distinct est %d / actual %d", name, got, want)
	}
}

func TestHistogramCumulativeFractionWithinBound(t *testing.T) {
	for name, values := range domains() {
		tbl, err := Collect(newCollection(t, name, values))
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]uint64(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		col := tbl.Col(0)
		if col.Min != sorted[0] || col.Max != sorted[len(sorted)-1] {
			t.Fatalf("%s: bounds [%d, %d], want [%d, %d]", name, col.Min, col.Max, sorted[0], sorted[len(sorted)-1])
		}
		worst := 0.0
		for p := 1; p < 20; p++ { // probe the 5%…95% quantiles
			v := sorted[p*len(sorted)/20]
			got, want := col.FracLE(v), exactFracLE(sorted, v)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
			if math.Abs(got-want) > histAbsBound {
				t.Errorf("%s: FracLE(%d) = %.3f, actual %.3f (>±%.2f)", name, v, got, want, histAbsBound)
			}
		}
		t.Logf("%s: worst cumulative-fraction error %.3f", name, worst)
	}
}

func TestSelectivityEstimators(t *testing.T) {
	n := 1000
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i)
	}
	shuffle(values)
	tbl, err := Collect(newCollection(t, "sel", values))
	if err != nil {
		t.Fatal(err)
	}
	col := tbl.Col(0)
	if got, want := col.FracEq(500), 1.0/float64(n); math.Abs(got-want) > want/2 {
		t.Errorf("FracEq(500) = %v, want ~%v", got, want)
	}
	if got := col.FracEq(99999); got != 0 {
		t.Errorf("FracEq outside [min,max] = %v, want 0", got)
	}
	if got := col.FracLE(uint64(n)); got != 1 {
		t.Errorf("FracLE(max+) = %v, want 1", got)
	}
	if got := col.FracLT(0); got != 0 {
		t.Errorf("FracLT(min) = %v, want 0", got)
	}
	// A nil column (unknown table/attribute) estimates zero everywhere.
	var nilTbl *Table
	if nilTbl.Col(0) != nil {
		t.Error("nil table returned a column")
	}
	if nilTbl.Col(0).FracEq(1) != 0 || nilTbl.Col(0).FracLE(1) != 0 {
		t.Error("nil column estimators not zero")
	}
}

func TestCollectRejectsUnalignedRecords(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 1 << 20})
	fac := blocked.New(dev, 0)
	c, err := fac.Create("odd", 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(c); err == nil {
		t.Error("Collect accepted a 12-byte record size")
	}
	if _, err := Collect(nil); err == nil {
		t.Error("Collect accepted a nil collection")
	}
}

func TestCacheLifecycle(t *testing.T) {
	values := []uint64{1, 2, 3, 4, 5}
	c := newCollection(t, "life", values)

	auto := NewCache(true)
	tbl := auto.TableStats(c)
	if tbl == nil || tbl.Rows != 5 {
		t.Fatalf("auto-collect missed: %+v", tbl)
	}
	if auto.TableStats(c) != tbl {
		t.Error("fresh entry was re-collected instead of cached")
	}
	auto.Invalidate(c.Name())
	if auto.Lookup(c.Name()) != nil {
		t.Error("Invalidate left the entry behind")
	}

	manual := NewCache(false)
	if manual.TableStats(c) != nil {
		t.Error("manual cache collected without being asked")
	}
	if _, err := manual.Collect(c); err != nil {
		t.Fatal(err)
	}
	if manual.TableStats(c) == nil {
		t.Error("explicit Collect did not populate the cache")
	}
}

func TestTransforms(t *testing.T) {
	values := make([]uint64, 100)
	for i := range values {
		values[i] = uint64(i % 10)
	}
	tbl, err := Collect(newCollection(t, "tr", values))
	if err != nil {
		t.Fatal(err)
	}
	if d := tbl.Col(0).Distinct; d != 10 {
		t.Fatalf("distinct = %d, want exactly 10", d)
	}
	// WithRows clamps distinct counts to the new cardinality.
	if got := tbl.WithRows(4).Col(0).Distinct; got != 4 {
		t.Errorf("WithRows(4) distinct = %d, want 4", got)
	}
	// Project remaps columns; out-of-range projections are unknown.
	proj := tbl.Project([]int{3, 0})
	if proj == nil || proj.Col(1).Distinct != 10 {
		t.Fatalf("Project misplaced the key column: %+v", proj)
	}
	if tbl.Project([]int{99}) != nil {
		t.Error("out-of-schema projection produced statistics")
	}
	// Concat concatenates schemas and clamps to the joined cardinality.
	cat := Concat(tbl, tbl, 100)
	if cat == nil || len(cat.Cols) != 2*record.NumAttrs || cat.Col(record.NumAttrs).Distinct != 10 {
		t.Fatalf("Concat misshaped: %+v", cat)
	}
	if Concat(nil, tbl, 10) != nil || Concat(tbl, nil, 10) != nil {
		t.Error("Concat with an unknown side produced statistics")
	}
	var nilTbl *Table
	if nilTbl.WithRows(5) != nil || nilTbl.Project([]int{0}) != nil {
		t.Error("nil table transforms not nil")
	}
}

// TestRestrictPropagatesRangeBounds: restricting a uniform column to a
// sub-range tightens Min/Max, scales the distinct count by the surviving
// histogram mass, and re-bases the histogram so cumulative-fraction
// estimates describe the conditional distribution.
func TestRestrictPropagatesRangeBounds(t *testing.T) {
	const n = 8000
	values := make([]uint64, n) // keys 0..n-1, shuffled
	for i := range values {
		values[i] = uint64(i)
	}
	shuffle(values)
	c := newCollection(t, "restrict", values)
	tbl, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	half := tbl.Restrict(0, 0, n/2-1, n/2)
	col := half.Col(0)
	if col.Min != 0 || col.Max != n/2-1 {
		t.Fatalf("restricted bounds [%d, %d], want [0, %d]", col.Min, col.Max, n/2-1)
	}
	if d := float64(col.Distinct); d < 0.8*n/2 || d > 1.2*n/2 {
		t.Errorf("restricted distinct = %.0f, want ~%d (±20%%)", d, n/2)
	}
	// The restricted histogram must answer fractions of the *surviving*
	// rows: half the filtered domain is ~50%, not the base table's ~25%.
	if f := col.FracLE(n / 4); math.Abs(f-0.5) > 0.08 {
		t.Errorf("FracLE(n/4) over [0, n/2) = %.3f, want ~0.5", f)
	}
	// Values beyond the restriction are impossible.
	if f := col.FracEq(3 * n / 4); f != 0 {
		t.Errorf("FracEq outside the range = %v, want 0", f)
	}
	// Other columns are untouched beyond the distinct clamp.
	if other := half.Col(3); other.Min != tbl.Col(3).Min || other.Max != tbl.Col(3).Max {
		t.Error("Restrict touched an unrelated column's bounds")
	}

	// Empty intersection collapses the column to "nothing survives".
	empty := tbl.Restrict(0, uint64(n+100), uint64(n+200), 1)
	if col := empty.Col(0); col.Distinct != 0 || col.FracLE(n) != 0 || col.FracEq(0) != 0 {
		t.Errorf("empty-range restriction still estimates rows: %+v", col)
	}
	// lo > hi is the explicit empty range.
	lohi := tbl.Restrict(0, 1, 0, 1)
	if col := lohi.Col(0); col.Distinct != 0 {
		t.Errorf("lo>hi restriction kept distinct = %d", col.Distinct)
	}

	// Nil-safety and out-of-schema attributes.
	var nilTbl *Table
	if nilTbl.Restrict(0, 0, 10, 5) != nil {
		t.Error("nil table Restrict not nil")
	}
	if tbl.Restrict(99, 0, 10, 5) == nil {
		t.Error("out-of-schema Restrict dropped the table")
	}
}
