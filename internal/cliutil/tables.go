package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"wlpm/internal/record"
)

// TableSpec is one -table flag: name=rows generates unique permuted
// keys 0..rows-1; name=rows:parent draws keys from parent's key domain
// (the paper's join microbenchmark shape). Shared by wlquery and
// wlserved so the local and remote CLIs generate identical workloads
// from identical flags.
type TableSpec struct {
	Name   string
	Rows   int
	Parent string
}

// TableFlags collects repeated -table flags in declaration order.
type TableFlags []TableSpec

func (t *TableFlags) String() string { return fmt.Sprintf("%v", []TableSpec(*t)) }

// Set parses name=rows or name=rows:parent.
func (t *TableFlags) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=rows or name=rows:parent, got %q", s)
	}
	rowsStr, parent, _ := strings.Cut(spec, ":")
	rows, err := strconv.Atoi(rowsStr)
	if err != nil || rows <= 0 {
		return fmt.Errorf("bad row count in %q", s)
	}
	*t = append(*t, TableSpec{Name: name, Rows: rows, Parent: parent})
	return nil
}

// ValidateTables checks the spec list — unique names, parents declared
// before children — exiting with a usage error otherwise, and returns
// the specs by name plus the largest row count (the budget base).
func ValidateTables(cmd string, tables []TableSpec) (byName map[string]TableSpec, maxRows int) {
	byName = map[string]TableSpec{}
	for _, spec := range tables {
		if _, dup := byName[spec.Name]; dup {
			Usage(cmd, "duplicate table %q", spec.Name)
		}
		if spec.Parent != "" {
			if _, ok := byName[spec.Parent]; !ok {
				Usage(cmd, "table %q references unknown parent %q (declare the parent first)", spec.Name, spec.Parent)
			}
		}
		byName[spec.Name] = spec
		if spec.Rows > maxRows {
			maxRows = spec.Rows
		}
	}
	return byName, maxRows
}

// GenerateTable emits spec's records: unique permuted keys for root
// tables, keys cycling through the parent's 0..parentRows-1 domain for
// child tables. parentRows is ignored for root tables.
func GenerateTable(spec TableSpec, parentRows int, seed uint64, emit func(rec []byte) error) error {
	if spec.Parent == "" {
		return record.Generate(spec.Rows, seed, emit)
	}
	// The parent rows were generated from the same domain, so every
	// child key matches.
	sink := func([]byte) error { return nil }
	return record.GenerateJoin(parentRows, spec.Rows, seed, sink, emit)
}

// TablesPayload is the total byte size of the generated tables.
func TablesPayload(tables []TableSpec) int64 {
	var payload int64
	for _, spec := range tables {
		payload += int64(spec.Rows) * record.Size
	}
	return payload
}
