// Package cliutil unifies flag validation and exit-code conventions
// across the repository's commands: usage errors (bad flag values,
// unknown algorithm names) print a one-line message plus a usage hint to
// stderr and exit 2; runtime failures exit 1. Every cmd/* main shares
// these helpers so the conventions cannot drift.
package cliutil

import (
	"fmt"
	"os"
	"strings"
)

// exit is swapped out by tests.
var exit = os.Exit

// Usage prints a usage-style error for cmd and exits 2.
func Usage(cmd, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", cmd, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "run '%s -h' for usage\n", cmd)
	exit(2)
}

// Fatal reports a runtime failure for cmd and exits 1.
func Fatal(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	exit(1)
}

// CheckParallelism rejects negative -p values (0 and 1 both mean
// serial).
func CheckParallelism(cmd string, p int) {
	if p < 0 {
		Usage(cmd, "-p must be non-negative, got %d", p)
	}
}

// CheckPositiveInt rejects non-positive integer flags.
func CheckPositiveInt(cmd, flagName string, v int) {
	if v <= 0 {
		Usage(cmd, "-%s must be positive, got %d", flagName, v)
	}
}

// CheckPositiveFloat rejects non-positive float flags (memory budgets,
// sizes).
func CheckPositiveFloat(cmd, flagName string, v float64) {
	if v <= 0 {
		Usage(cmd, "-%s must be positive, got %g", flagName, v)
	}
}

// CheckFraction rejects knob flags outside [0, 1].
func CheckFraction(cmd, flagName string, v float64) {
	if v < 0 || v > 1 {
		Usage(cmd, "-%s must be a fraction in [0, 1], got %g", flagName, v)
	}
}

// UnknownAlgorithm reports an unrecognized algorithm name with the valid
// spellings and exits 2.
func UnknownAlgorithm(cmd, name string, valid []string) {
	Usage(cmd, "unknown algorithm %q (have %s)", name, strings.Join(valid, "|"))
}
