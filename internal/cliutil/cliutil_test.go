package cliutil

import (
	"errors"
	"os"
	"testing"
)

// capture records the exit code instead of terminating. The result is
// named so the recovered panic still returns the recorded code.
func capture(t *testing.T, fn func()) (code int) {
	t.Helper()
	code = -1
	exit = func(c int) { code = c; panic("exit") }
	defer func() {
		exit = os.Exit
		_ = recover()
	}()
	fn()
	return code
}

func TestUsageErrorsExit2(t *testing.T) {
	for name, fn := range map[string]func(){
		"usage":       func() { Usage("cmd", "boom") },
		"parallelism": func() { CheckParallelism("cmd", -1) },
		"posint":      func() { CheckPositiveInt("cmd", "n", 0) },
		"posfloat":    func() { CheckPositiveFloat("cmd", "mem", -0.5) },
		"fraction":    func() { CheckFraction("cmd", "x", 1.5) },
		"algo":        func() { UnknownAlgorithm("cmd", "ZZZ", []string{"A", "B"}) },
	} {
		if code := capture(t, fn); code != 2 {
			t.Errorf("%s: exit code %d, want 2", name, code)
		}
	}
}

func TestFatalExits1(t *testing.T) {
	if code := capture(t, func() { Fatal("cmd", errors.New("boom")) }); code != 1 {
		t.Errorf("Fatal exit code %d, want 1", code)
	}
}

func TestValidValuesPass(t *testing.T) {
	exit = func(int) { t.Error("exit called for valid value") }
	defer func() { exit = os.Exit }()
	CheckParallelism("cmd", 0)
	CheckParallelism("cmd", 8)
	CheckPositiveInt("cmd", "n", 1)
	CheckPositiveFloat("cmd", "mem", 0.05)
	CheckFraction("cmd", "x", 0)
	CheckFraction("cmd", "x", 1)
}
