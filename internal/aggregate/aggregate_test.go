package aggregate

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage/all"
)

func newEnv(t testing.TB) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewEnv(f, 100*record.Size)
}

type groupRef struct {
	count, sum, min, max uint64
}

func TestGroupByMatchesReference(t *testing.T) {
	for _, a := range []sorts.Algorithm{
		sorts.NewExternalMergeSort(),
		sorts.NewSegmentSort(0.3),
		sorts.NewLazySort(),
	} {
		env := newEnv(t)
		in, err := env.Factory.Create("in", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		ref := make(map[uint64]*groupRef)
		const attr = 4
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(100))
			rec := record.New(k)
			v := uint64(rng.Intn(1000))
			record.SetAttr(rec, attr, v)
			if err := in.Append(rec); err != nil {
				t.Fatal(err)
			}
			g := ref[k]
			if g == nil {
				g = &groupRef{min: v, max: v}
				ref[k] = g
			}
			g.count++
			g.sum += v
			if v < g.min {
				g.min = v
			}
			if v > g.max {
				g.max = v
			}
		}
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := env.Factory.Create("out", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		if err := GroupBy(env, a, in, attr, out); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if out.Len() != len(ref) {
			t.Fatalf("%s: %d groups, want %d", a.Name(), out.Len(), len(ref))
		}
		it := out.Scan()
		prev := int64(-1)
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			k := record.Attr(rec, AttrGroupKey)
			if int64(k) <= prev {
				t.Fatalf("%s: groups out of order at key %d", a.Name(), k)
			}
			prev = int64(k)
			g := ref[k]
			if g == nil {
				t.Fatalf("%s: unexpected group %d", a.Name(), k)
			}
			if record.Attr(rec, AttrCount) != g.count ||
				record.Attr(rec, AttrSum) != g.sum ||
				record.Attr(rec, AttrMin) != g.min ||
				record.Attr(rec, AttrMax) != g.max {
				t.Fatalf("%s: group %d aggregates mismatch", a.Name(), k)
			}
		}
		it.Close()
	}
}

func TestGroupByValidation(t *testing.T) {
	env := newEnv(t)
	in, _ := env.Factory.Create("in", record.Size)
	out, _ := env.Factory.Create("out", record.Size)
	if err := GroupBy(env, sorts.NewExternalMergeSort(), in, -1, out); err == nil {
		t.Error("negative attribute accepted")
	}
	if err := GroupBy(env, sorts.NewExternalMergeSort(), in, record.NumAttrs, out); err == nil {
		t.Error("out-of-schema attribute accepted")
	}
	bad, _ := env.Factory.Create("bad", 16)
	if err := GroupBy(env, sorts.NewExternalMergeSort(), bad, 1, out); err == nil {
		t.Error("wrong input record size accepted")
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	env := newEnv(t)
	in, _ := env.Factory.Create("in", record.Size)
	out, _ := env.Factory.Create("out", record.Size)
	if err := GroupBy(env, sorts.NewLazySort(), in, 1, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty input produced %d groups", out.Len())
	}
}

// Property: group counts always sum to the input cardinality and every
// group key existed in the input.
func TestQuickGroupByTotals(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%500 + 1
		env := newEnv(t)
		in, err := env.Factory.Create("in", record.Size)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		keys := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(30))
			keys[k] = true
			if err := in.Append(record.New(k)); err != nil {
				return false
			}
		}
		if err := in.Close(); err != nil {
			return false
		}
		out, err := env.Factory.Create("out", record.Size)
		if err != nil {
			return false
		}
		if err := GroupBy(env, sorts.NewSegmentSort(0.5), in, 2, out); err != nil {
			return false
		}
		total := uint64(0)
		it := out.Scan()
		defer it.Close()
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			if !keys[record.Attr(rec, AttrGroupKey)] {
				return false
			}
			total += record.Attr(rec, AttrCount)
		}
		return total == uint64(n) && out.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
