// Package aggregate implements a write-limited sort-based group-by — the
// paper's §6 names aggregation as the natural next operation for
// write-limited processing. The operator sorts its input with any of the
// write-limited sort algorithms (inheriting their write profile) and
// streams grouped aggregates out of the sorted order, so the only
// materialized intermediate is whatever the chosen sort writes.
package aggregate

import (
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// Result is the output schema: one record per group with the benchmark
// record layout, carrying the aggregates in fixed attribute slots.
const (
	AttrGroupKey = 0 // the group key
	AttrCount    = 1 // number of records in the group
	AttrSum      = 2 // Σ of the aggregated attribute
	AttrMin      = 3 // minimum of the aggregated attribute
	AttrMax      = 4 // maximum of the aggregated attribute
)

// GroupBy groups in by its key attribute and aggregates attribute attr,
// appending one result record per group to out in ascending group-key
// order. The write intensity of the operation is inherited from the sort
// algorithm: a lazy or low-intensity sort yields a write-limited
// aggregation.
func GroupBy(env *algo.Env, a sorts.Algorithm, in storage.Collection, attr int, out storage.Collection) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if attr < 0 || attr >= record.NumAttrs {
		return fmt.Errorf("aggregate: attribute %d out of schema (0..%d)", attr, record.NumAttrs-1)
	}
	if in.RecordSize() != record.Size || out.RecordSize() != record.Size {
		return fmt.Errorf("aggregate: benchmark-schema records required (%d bytes)", record.Size)
	}

	sorted, err := env.CreateTemp("groupby", record.Size)
	if err != nil {
		return err
	}
	defer sorted.Destroy() //nolint:errcheck // destroy of a consumed temp
	if err := a.Sort(env, in, sorted); err != nil {
		return err
	}

	it := sorted.Scan()
	defer it.Close()

	var (
		open            bool
		key, count, sum uint64
		minVal, maxVal  uint64
		result          = make([]byte, record.Size)
	)
	flush := func() error {
		if !open {
			return nil
		}
		for i := range result {
			result[i] = 0
		}
		record.SetAttr(result, AttrGroupKey, key)
		record.SetAttr(result, AttrCount, count)
		record.SetAttr(result, AttrSum, sum)
		record.SetAttr(result, AttrMin, minVal)
		record.SetAttr(result, AttrMax, maxVal)
		return out.Append(result)
	}
	poll := env.Poll()
	for {
		if err := poll(); err != nil {
			return err
		}
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		k := record.Key(rec)
		v := record.Attr(rec, attr)
		if !open || k != key {
			if err := flush(); err != nil {
				return err
			}
			open, key, count, sum, minVal, maxVal = true, k, 0, 0, v, v
		}
		count++
		sum += v
		if v < minVal {
			minVal = v
		}
		if v > maxVal {
			maxVal = v
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return out.Close()
}
