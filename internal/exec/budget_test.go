package exec

import (
	"bytes"
	"testing"
	"time"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// budgetPlanShapes is the plan-shape grid of the allocator tests: every
// blocking-operator combination the engine plans, from a single sort to
// the skewed star pipeline the allocator exists for.
func budgetPlanShapes(dim1, dim2, fact storage.Collection) map[string]func() *Plan {
	star := func() *Plan {
		inner := Table(dim1).Join(Table(fact))
		return Table(dim2).Join(inner).
			Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(3).OrderBy()
	}
	return map[string]func() *Plan{
		"sort":       func() *Plan { return Table(fact).OrderBy() },
		"join+sort":  func() *Plan { return Table(dim1).Join(Table(fact)).OrderBy() },
		"groupcliff": func() *Plan { return Table(fact).GroupHint(testDim).GroupBy(3).OrderBy() },
		"star":       star,
		"skewed": func() *Plan {
			return Table(dim1).Join(Table(fact)).
				Project(0, 1, 12, 13, 14, 5, 16, 7, 18, 9).GroupHint(testDim).GroupBy(3).OrderBy()
		},
	}
}

// TestAllocatorNeverWorseThanEvenSplit is the acceptance grid: for every
// plan shape × memory point × device asymmetry, the cost-driven shares'
// predicted total cost must not exceed the even split's, every stage
// share must respect the two-buffer floor, and the shares must not
// oversubscribe the budget (beyond the floors a degenerate budget
// forces).
func TestAllocatorNeverWorseThanEvenSplit(t *testing.T) {
	for _, lambdaWrite := range []time.Duration{15 * time.Nanosecond, 150 * time.Nanosecond, 900 * time.Nanosecond} {
		dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20, ReadLatency: 10 * time.Nanosecond, WriteLatency: lambdaWrite})
		fac, err := all.New("blocked", dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		r := &rig{dev: dev, fac: fac}
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		floor := 2 * int64(fac.BlockSize())
		for name, plan := range budgetPlanShapes(dim1, dim2, fact) {
			for _, frac := range []float64{0.01, 0.05, 0.15} {
				budget := int64(frac * float64(testFact) * record.Size)
				if budget < 1 {
					budget = 1
				}
				_, ex, err := Compile(NewCtx(fac, budget, 1), plan())
				if err != nil {
					t.Fatalf("%s λw=%v mem=%.0f%%: %v", name, lambdaWrite, frac*100, err)
				}
				if ex.PlanCost > ex.EvenCost*(1+1e-9) {
					t.Errorf("%s λw=%v mem=%.0f%%: cost-driven %.6g worse than even %.6g",
						name, lambdaWrite, frac*100, ex.PlanCost, ex.EvenCost)
				}
				if len(ex.StageShares) != ex.Stages {
					t.Fatalf("%s: %d shares for %d stages", name, len(ex.StageShares), ex.Stages)
				}
				var sum int64
				for i, s := range ex.StageShares {
					if s < floor {
						t.Errorf("%s λw=%v mem=%.0f%%: stage %d share %d below the %d B floor",
							name, lambdaWrite, frac*100, i, s, floor)
					}
					sum += s
				}
				if minTotal := int64(ex.Stages) * floor; sum > budget && sum > minTotal {
					t.Errorf("%s λw=%v mem=%.0f%%: shares sum %d oversubscribe budget %d",
						name, lambdaWrite, frac*100, sum, budget)
				}
			}
		}
	}
}

// TestBudgetSplitsByteIdenticalOutput pins the safety half of the
// refactor: the even split and the cost-driven split run the same
// algorithms' contracts, so the query output must be byte-identical —
// only device traffic and predicted cost may differ.
func TestBudgetSplitsByteIdenticalOutput(t *testing.T) {
	for _, frac := range []float64{0.01, 0.05} {
		budget := int64(frac * float64(testFact) * record.Size)
		run := func(even bool) []byte {
			r := newRig(t)
			dim1, dim2, fact := r.loadStar(t, testDim, testFact)
			inner := Table(dim1).Join(Table(fact))
			plan := Table(dim2).Join(inner).
				Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(3).OrderBy()
			ctx := r.ctx(budget, 1)
			root, ex, err := CompileWith(ctx, plan, CompileOptions{EvenBudgetSplit: even})
			if err != nil {
				t.Fatal(err)
			}
			if even != ex.EvenSplit && even {
				t.Fatalf("EvenBudgetSplit not reflected in Explain: %+v", ex)
			}
			out := r.create(t, "out", record.Size)
			if err := Run(ctx, root, out); err != nil {
				t.Fatal(err)
			}
			return readBytes(t, out)
		}
		evenOut := run(true)
		costOut := run(false)
		if len(evenOut) == 0 {
			t.Fatal("even split produced no output")
		}
		if !bytes.Equal(evenOut, costOut) {
			t.Errorf("mem=%.0f%%: cost-driven output differs from even split", frac*100)
		}
	}
}

// TestStageShareFloor is the satellite bugfix regression: a budget far
// below what the plan's stages need must floor every share at two
// persistence-layer buffers (the old floor was one byte), matching
// algo.Env.BudgetBuffers and the planner's memBuffers.
func TestStageShareFloor(t *testing.T) {
	r := newRig(t)
	dim1, dim2, fact := r.loadStar(t, testDim, testFact)
	inner := Table(dim1).Join(Table(fact))
	plan := Table(dim2).Join(inner).
		Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(3).OrderBy()
	ctx := r.ctx(1, 1) // one byte for four blocking stages
	_, ex, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	floor := 2 * int64(r.fac.BlockSize())
	for i, s := range ex.StageShares {
		if s < floor {
			t.Errorf("stage %d share %d B, want ≥ %d B", i, s, floor)
		}
	}
	if got := ctx.StageBudget(); got < floor {
		t.Errorf("Ctx.StageBudget() = %d B, want ≥ %d B", got, floor)
	}
}

// TestOpenTimeResplit drives actuals away from the estimates: without
// statistics a ≥-filter is estimated at the textbook 0.5 though it keeps
// every record, so the first blocking stage opens on 2× its estimated
// input. The budget plan must propagate the divergence and re-split the
// remaining stages' shares, and the result must stay correct.
func TestOpenTimeResplit(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(4000, 11, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	// filter (keeps all, estimated half) → group-by → order-by.
	plan := Table(in).Filter(Predicate{Attr: 0, Op: Ge, Value: 0}).GroupBy(3).OrderBy()
	ctx := r.ctx(int64(4000*record.Size/10), 1)
	root, ex, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	compiled := append([]int64(nil), ex.StageShares...)
	out := r.create(t, "out", record.Size)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4000 {
		t.Fatalf("%d result groups, want 4000 (unique keys)", out.Len())
	}
	first := ex.Choices[0]
	if first.ActualRows != 4000 || first.InputRows >= 4000 {
		t.Fatalf("first stage est %d act %d, want a real misestimate", first.InputRows, first.ActualRows)
	}
	resplit := false
	for i, c := range ex.Choices {
		if c.Resplit {
			resplit = true
		}
		if c.Resplit && c.Share == compiled[i] {
			t.Errorf("choice %d marked re-split but share unchanged (%d B)", i, c.Share)
		}
	}
	if !resplit {
		t.Errorf("2x input divergence re-split no stage; compiled %v, final %+v", compiled, ex.Choices)
	}
	var sum int64
	for _, c := range ex.Choices {
		sum += c.Share
	}
	if sum > ctx.MemoryBudget {
		t.Errorf("re-split shares sum %d oversubscribe budget %d", sum, ctx.MemoryBudget)
	}
}

// TestPlanCostsMatchesCompile pins the bidding path's pricing to the
// compiler's: PlanCosts at the compile budget must reproduce
// Explain.PlanCost, and pricing at several budgets must not error.
func TestPlanCostsMatchesCompile(t *testing.T) {
	r := newRig(t)
	dim1, _, fact := r.loadStar(t, testDim, testFact)
	plan := func() *Plan { return Table(dim1).Join(Table(fact)).OrderBy() }
	budget := testBudget
	ctx := r.ctx(budget, 1)
	_, ex, err := Compile(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	costs, err := PlanCosts(r.ctx(budget, 1), plan(), []int64{budget, budget / 2, budget / 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := costs[0] - ex.PlanCost; diff > 1e-6*ex.PlanCost || diff < -1e-6*ex.PlanCost {
		t.Errorf("PlanCosts(full) = %.6g, Explain.PlanCost = %.6g", costs[0], ex.PlanCost)
	}
	for i, c := range costs {
		if c <= 0 {
			t.Errorf("cost[%d] = %g, want positive", i, c)
		}
	}
}

// TestAllocateSyntheticCurves checks the allocator directly: a stage
// with a steep curve takes budget from a flat one, floors hold, and the
// even fallback engages when the total cannot cover the floors.
func TestAllocateSyntheticCurves(t *testing.T) {
	steep := func(m float64) float64 { return 1e6 / m }
	flat := func(m float64) float64 { return 100 }
	a := Allocate(100<<10, 1024, []func(float64) float64{steep, flat})
	if a.Even {
		t.Fatalf("steep+flat fell back to even: %+v", a)
	}
	if a.Shares[0] <= a.Shares[1] {
		t.Errorf("steep stage got %d B, flat got %d B — memory flowed the wrong way", a.Shares[0], a.Shares[1])
	}
	if a.Cost > a.EvenCost*(1+1e-9) {
		t.Errorf("allocation cost %.4g worse than even %.4g", a.Cost, a.EvenCost)
	}
	if a.Shares[1] < 2*1024 {
		t.Errorf("flat stage share %d below the floor", a.Shares[1])
	}

	tiny := Allocate(1024, 1024, []func(float64) float64{steep, flat})
	if !tiny.Even {
		t.Errorf("sub-floor total did not fall back to even: %+v", tiny)
	}
	for i, s := range tiny.Shares {
		if s < 2*1024 {
			t.Errorf("tiny stage %d share %d below the floor", i, s)
		}
	}
}

// TestEvenSplitOptionPinsLegacyBehaviour: under EvenBudgetSplit every
// stage share is the even split and no Open-time re-split happens even
// when actuals diverge.
func TestEvenSplitOptionPinsLegacyBehaviour(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(2000, 3, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	plan := Table(in).Filter(Predicate{Attr: 0, Op: Ge, Value: 0}).
		OrderByWith(sorts.NewExternalMergeSort()).OrderByWith(sorts.NewExternalMergeSort())
	ctx := r.ctx(int64(2000*record.Size/10), 1)
	root, ex, err := CompileWith(ctx, plan, CompileOptions{EvenBudgetSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.EvenSplit {
		t.Fatal("EvenSplit flag not set")
	}
	want := ctx.MemoryBudget / 2
	out := r.create(t, "out", record.Size)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	for i, c := range ex.Choices {
		if c.Share != want {
			t.Errorf("stage %d share %d, want even %d", i, c.Share, want)
		}
		if c.Resplit {
			t.Errorf("stage %d re-split under EvenBudgetSplit", i)
		}
	}
}
