package exec

import (
	"bytes"
	"math"
	"testing"

	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/stats"
)

// statsCtx is a rig context wired to an auto-collecting statistics
// cache, the configuration the façade hands the planner.
func (r *rig) statsCtx(budget int64, par int) *Ctx {
	ctx := r.ctx(budget, par)
	ctx.Stats = stats.NewCache(true)
	return ctx
}

// TestStatsReplaceTextbookSelectivities pins the tentpole's estimate
// upgrade: with column statistics a range filter's output estimate comes
// from the histogram (~25% for key < n/4) instead of the fixed 0.5.
func TestStatsReplaceTextbookSelectivities(t *testing.T) {
	const n = 8000
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(n, 3, in.Append); err != nil {
		t.Fatal(err)
	}
	in.Close()
	plan := Table(in).Filter(Predicate{Attr: 0, Op: Lt, Value: n / 4}).OrderBy()

	_, exDefault, err := Compile(r.ctx(64<<10, 1), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := exDefault.Choices[0].InputRows; got != n/2 {
		t.Fatalf("textbook estimate = %d rows, want the fixed-selectivity %d", got, n/2)
	}

	_, exStats, err := Compile(r.statsCtx(64<<10, 1), plan)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(exStats.Choices[0].InputRows)
	if math.Abs(got-n/4) > 0.15*n/4 {
		t.Errorf("histogram estimate = %.0f rows, want ~%d (±15%%)", got, n/4)
	}
}

// TestRangeBoundsPropagateThroughFilters pins the histogram-restriction
// upgrade: after a range filter the surviving statistics describe the
// conditional distribution, so a second range predicate on the same
// column is estimated against the filtered domain. With uniform keys
// 0..n-1, `a0 < n/2` then `a0 < n/4` keeps n/4 rows; the old
// distinct-clamp-only propagation kept the base histogram and estimated
// (n/2)·FracLE(n/4) = n/8 — off by 2×.
func TestRangeBoundsPropagateThroughFilters(t *testing.T) {
	const n = 8000
	cases := []struct {
		name  string
		preds []Predicate
		want  float64
	}{
		{"lt-then-lt", []Predicate{
			{Attr: 0, Op: Lt, Value: n / 2},
			{Attr: 0, Op: Lt, Value: n / 4},
		}, n / 4},
		{"ge-then-lt", []Predicate{
			{Attr: 0, Op: Ge, Value: n / 2},
			{Attr: 0, Op: Lt, Value: 3 * n / 4},
		}, n / 4},
		{"le-then-ge", []Predicate{
			{Attr: 0, Op: Le, Value: n / 2},
			{Attr: 0, Op: Ge, Value: n / 4},
		}, n / 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			in := r.create(t, "in", record.Size)
			if err := record.Generate(n, 3, in.Append); err != nil {
				t.Fatal(err)
			}
			in.Close()
			plan := Table(in)
			for _, p := range tc.preds {
				plan = plan.Filter(p)
			}
			ctx := r.statsCtx(64<<10, 1)
			root, ex, err := Compile(ctx, plan.OrderBy())
			if err != nil {
				t.Fatal(err)
			}
			est := float64(ex.Choices[0].InputRows)
			if math.Abs(est-tc.want) > 0.15*tc.want {
				t.Errorf("chained-filter estimate = %.0f rows, want ~%.0f (±15%%)", est, tc.want)
			}
			// Accuracy against the actual surviving rows, the satellite's
			// acceptance check: estimate within 15% of what the filters keep.
			out := r.create(t, "out", record.Size)
			if err := Run(ctx, root, out); err != nil {
				t.Fatal(err)
			}
			act := float64(out.Len())
			if math.Abs(est-act) > 0.15*act {
				t.Errorf("estimate %.0f vs actual %.0f rows (>15%% off)", est, act)
			}
			t.Logf("est %.0f vs actual %.0f", est, act)
		})
	}
}

// TestImpossibleRangeEstimatesToFloor: contradictory range predicates
// drive the estimate to the 1-row floor instead of a histogram artifact.
func TestImpossibleRangeEstimatesToFloor(t *testing.T) {
	const n = 4000
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(n, 5, in.Append); err != nil {
		t.Fatal(err)
	}
	in.Close()
	plan := Table(in).
		Filter(Predicate{Attr: 0, Op: Lt, Value: n / 4}).
		Filter(Predicate{Attr: 0, Op: Ge, Value: n / 2}).
		OrderBy()
	_, ex, err := Compile(r.statsCtx(64<<10, 1), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Choices[0].InputRows; got != 1 {
		t.Errorf("impossible-range estimate = %d rows, want the 1-row floor", got)
	}
}

// TestStatsMakeGroupHintOptional: the key column's distinct count from
// the statistics selects the hash aggregation with no GroupHint at all,
// and the result stays byte-identical to the sort-based plan.
func TestStatsMakeGroupHintOptional(t *testing.T) {
	const n, groups = 3000, 40
	r := newRig(t)
	in := loadGrouped(t, r, "in", n, groups)
	ctx := r.statsCtx(1<<20, 1)
	root, ex, err := Compile(ctx, Table(in).GroupBy(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 1 || ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("hintless plan with statistics chose %+v, want HashAgg", ex.Choices)
	}
	out := r.create(t, "hash", record.Size)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	if ex.Choices[0].ActualRows != n {
		t.Errorf("actual rows = %d, want %d", ex.Choices[0].ActualRows, n)
	}

	ctx2 := r.ctx(1<<20, 1)
	root2, _, err := Compile(ctx2, Table(in).GroupByWith(4, sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	out2 := r.create(t, "sorted", record.Size)
	if err := Run(ctx2, root2, out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, out), readBytes(t, out2)) {
		t.Fatal("hash aggregate output differs from sort-based group-by")
	}
}

// TestJoinReorderSmallestBuildFirst: a two-table join written with the
// fact table as the build side is flipped dimension-first, the
// compensating projection restores the written column layout, and the
// reordered plan prices no worse than the written order.
func TestJoinReorderSmallestBuildFirst(t *testing.T) {
	r := newRig(t)
	dim, _, fact := r.loadStar(t, testDim, testFact)
	plan := Table(fact).Join(Table(dim)).OrderBy() // fact as build side: the wrong way round

	ctx := r.statsCtx(testBudget, 1)
	rootRe, exRe, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !exRe.Reordered {
		t.Fatal("planner kept the fact table as the build side")
	}
	join := exRe.Choices[0]
	if join.Operator != "Join" || join.Buffers >= join.RightBuf {
		t.Fatalf("reordered join build side t=%.0f not smaller than probe v=%.0f", join.Buffers, join.RightBuf)
	}

	ctxW := r.statsCtx(testBudget, 1)
	_, exW, err := CompileWith(ctxW, plan, CompileOptions{DisableJoinReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	written := exW.Choices[0]
	if join.Cost > written.Cost {
		t.Errorf("reordered join priced %.4g, written order %.4g: reorder made it worse", join.Cost, written.Cost)
	}
	t.Logf("join cost: reordered %.4g vs written %.4g", join.Cost, written.Cost)

	// Byte-identity through the canonicalizing order-by: the compensating
	// projection must restore the written fact‖dim layout exactly.
	outRe := r.create(t, "reordered", 2*record.Size)
	if err := Run(ctx, rootRe, outRe); err != nil {
		t.Fatal(err)
	}
	ctxW2 := r.statsCtx(testBudget, 1)
	rootW, _, err := CompileWith(ctxW2, plan, CompileOptions{DisableJoinReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	outW := r.create(t, "written", 2*record.Size)
	if err := Run(ctxW2, rootW, outW); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, outRe), readBytes(t, outW)) {
		t.Fatal("reordered join output differs from the written-order plan")
	}
}

// TestJoinReorderStarChain reorders a three-table chain written
// fact-first and checks the result (through the full star pipeline)
// against the written order and against the hand-pinned plan.
func TestJoinReorderStarChain(t *testing.T) {
	build := func(r *rig, opts CompileOptions, pinJoin joins.Algorithm) []byte {
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		inner := Table(fact).JoinWith(Table(dim1), pinJoin) // fact‖dim1
		star := Table(dim2).JoinWith(inner, pinJoin)        // dim2‖fact‖dim1
		plan := star.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(4).OrderBy()
		ctx := r.statsCtx(testBudget, 1)
		root, ex, err := CompileWith(ctx, plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		if pinJoin == nil && !opts.DisableJoinReorder && !ex.Reordered {
			t.Fatal("three-table chain written fact-first was not reordered")
		}
		if pinJoin != nil && ex.Reordered {
			t.Fatal("pinned join chain was reordered")
		}
		out := r.create(t, "out", record.Size)
		if err := Run(ctx, root, out); err != nil {
			t.Fatal(err)
		}
		return readBytes(t, out)
	}

	reordered := build(newRig(t), CompileOptions{}, nil)
	written := build(newRig(t), CompileOptions{DisableJoinReorder: true}, nil)
	pinned := build(newRig(t), CompileOptions{}, joins.NewGrace())
	if len(reordered) == 0 {
		t.Fatal("star chain produced no output")
	}
	if !bytes.Equal(reordered, written) {
		t.Fatal("reordered star output differs from the written-order plan")
	}
	if !bytes.Equal(reordered, pinned) {
		t.Fatal("reordered star output differs from the pinned-plan variant")
	}

	// The chosen order must price no worse than the written order: sum
	// the join choices of both compilations of the same star plan.
	joinCost := func(opts CompileOptions) float64 {
		r := newRig(t)
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		inner := Table(fact).Join(Table(dim1))
		star := Table(dim2).Join(inner)
		plan := star.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(4).OrderBy()
		_, ex, err := CompileWith(r.statsCtx(testBudget, 1), plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, c := range ex.Choices {
			if c.Operator == "Join" {
				sum += c.Cost
			}
		}
		return sum
	}
	re, wr := joinCost(CompileOptions{}), joinCost(CompileOptions{DisableJoinReorder: true})
	if re > wr {
		t.Errorf("reordered star joins priced %.4g, written order %.4g: reorder made it worse", re, wr)
	}
	t.Logf("star join cost: reordered %.4g vs written %.4g", re, wr)
}

// TestPinnedChoicesCarryCosts pins satellite #3: Explain no longer omits
// the predicted cost of pinned choices, so pinned and planner-chosen
// plans can be compared in the same units.
func TestPinnedChoicesCarryCosts(t *testing.T) {
	r := newRig(t)
	dim1, dim2, fact := r.loadStar(t, testDim, testFact)
	ctx := r.ctx(testBudget, 1)
	_, ex, err := Compile(ctx, starPlan(dim1, dim2, fact, sorts.NewSegmentSort(0.4), joins.NewGrace()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 4 {
		t.Fatalf("star plan has %d choices, want 4", len(ex.Choices))
	}
	for _, c := range ex.Choices {
		if !c.Pinned {
			t.Errorf("%s choice not marked pinned", c.Operator)
		}
		if c.Cost <= 0 {
			t.Errorf("pinned %s → %s has no cost", c.Operator, c.Algorithm)
		}
		if c.ActualRows != -1 {
			t.Errorf("%s actual rows %d before any run, want -1", c.Operator, c.ActualRows)
		}
	}
}

// TestEstimateVsActualWithStats runs the star pipeline across the
// planner grid's memory fractions with statistics enabled and asserts
// every blocking stage's estimated input cardinality lands within 20% of
// the actual rows observed at Open — the estimate-vs-actual face of the
// planner grid tests.
func TestEstimateVsActualWithStats(t *testing.T) {
	for _, frac := range plannerGrid.fracs {
		budget := int64(float64(testFact*record.Size) * frac)
		if budget < record.Size {
			budget = record.Size
		}
		r := newRig(t)
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		ctx := r.statsCtx(budget, 1)
		root, ex, err := Compile(ctx, starPlan(dim1, dim2, fact, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		out := r.create(t, "out", record.Size)
		if err := Run(ctx, root, out); err != nil {
			t.Fatal(err)
		}
		for _, c := range ex.Choices {
			if c.ActualRows < 0 {
				t.Errorf("mem=%.0f%%: %s choice never observed its input", frac*100, c.Operator)
				continue
			}
			est, act := float64(c.InputRows), float64(c.ActualRows)
			if math.Abs(est-act) > 0.2*act {
				t.Errorf("mem=%.0f%%: %s est %0.f rows vs actual %.0f (>20%% off)", frac*100, c.Operator, est, act)
			}
			t.Logf("mem=%.0f%%: %-8s est %6.0f act %6.0f (%s)", frac*100, c.Operator, est, act, c.Algorithm)
		}
	}
}

// TestRunClampsEstimatesAtOpen: when the compile-time estimate is badly
// wrong (textbook selectivity, no statistics), the blocking operator
// re-chooses its algorithm from the actual materialized cardinality at
// Open — the Explain choice records the actual rows and the replan.
func TestRunClampsEstimatesAtOpen(t *testing.T) {
	const n = 20000
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(n, 11, in.Append); err != nil {
		t.Fatal(err)
	}
	in.Close()
	// Textbook estimate for != is 0.9·n; the predicate actually keeps 10
	// rows. A sort sized for 18000 rows is the wrong pick for 10.
	plan := Table(in).Filter(Predicate{Attr: 0, Op: Lt, Value: 10}).OrderBy()
	ctx := r.ctx(int64(n*record.Size/100), 1)
	root, ex, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if est := ex.Choices[0].InputRows; est != n/2 {
		t.Fatalf("compile-time estimate %d, want textbook %d", est, n/2)
	}
	out := r.create(t, "out", record.Size)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("filter kept %d rows, want 10", out.Len())
	}
	if got := ex.Choices[0].ActualRows; got != 10 {
		t.Errorf("choice actual rows = %d, want 10", got)
	}
	// At 10 rows every candidate sort collapses to "fits in memory", so
	// the clamp must have re-priced; whether the algorithm flips depends
	// on the candidates, but the actuals must be recorded either way.
	t.Logf("clamp: est %d → act %d, algorithm %s (replanned=%v)",
		ex.Choices[0].InputRows, ex.Choices[0].ActualRows, ex.Choices[0].Algorithm, ex.Choices[0].Replanned)
}
