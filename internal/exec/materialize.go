package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/storage"
)

// Materialize is an explicit pipeline breaker: it drains its child into
// a temporary collection at Open and then streams the temporary. It is
// what the engine's pipelining avoids — the planner's
// MaterializeEveryStep mode inserts one above every streaming operator
// (blocking operators already materialize their own output once) to
// model the naive compose-by-collections execution that the pipelined
// plan's cacheline-write count is measured against. It claims no memory
// share (it holds no working state beyond one record).
type Materialize struct {
	child Operator
	tmp   storage.Collection
	sc    *batchScanner
}

// NewMaterialize returns a materialization barrier over child.
func NewMaterialize(child Operator) *Materialize { return &Materialize{child: child} }

func (m *Materialize) Name() string         { return fmt.Sprintf("Materialize(%s)", m.child.Name()) }
func (m *Materialize) RecordSize() int      { return m.child.RecordSize() }
func (m *Materialize) Children() []Operator { return []Operator{m.child} }
func (m *Materialize) consumesMemory() bool { return false }

func (m *Materialize) Open(ctx context.Context, ec *Ctx) error {
	if err := m.child.Open(ctx, ec); err != nil {
		return err
	}
	tmp, err := ec.tempEnv().CreateTemp("mat", m.child.RecordSize())
	if err != nil {
		return err
	}
	if err := drain(ctx, m.child, tmp.Append); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	if err := tmp.Close(); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	m.tmp = tmp
	m.sc = newBatchScanner(tmp.Scan(), tmp.RecordSize(), ec.batchSize())
	return nil
}

func (m *Materialize) Next(context.Context) (*Batch, error) {
	if m.sc == nil {
		return nil, io.EOF
	}
	return m.sc.next()
}

// limitHint caps the reads of the materialized temporary; the child is
// drained in full at Open regardless, exactly like the record engine.
func (m *Materialize) limitHint(n int) {
	if m.sc != nil {
		m.sc.limit(n)
	}
}

func (m *Materialize) Close() error {
	var first error
	if m.sc != nil {
		first = m.sc.Close()
		m.sc = nil
	}
	if m.tmp != nil {
		if err := m.tmp.Destroy(); err != nil && first == nil {
			first = err
		}
		m.tmp = nil
	}
	if err := m.child.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (m *Materialize) source() (storage.Collection, bool) { return m.tmp, m.tmp != nil }
