package exec

import (
	"bytes"
	"fmt"
	"testing"

	"wlpm/internal/aggregate"
	"wlpm/internal/algo"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// rig is one isolated engine test environment.
type rig struct {
	dev *pmem.Device
	fac storage.Factory
}

func newRig(t testing.TB) *rig {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	fac, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{dev: dev, fac: fac}
}

func (r *rig) ctx(budget int64, par int) *Ctx { return NewCtx(r.fac, budget, par) }

func (r *rig) create(t testing.TB, name string, recSize int) storage.Collection {
	t.Helper()
	c, err := r.fac.Create(name, recSize)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loadStar loads the 3-table star schema: two dimension tables over the
// same key domain and a fact table with nFact/nDim matches per key.
func (r *rig) loadStar(t testing.TB, nDim, nFact int) (dim1, dim2, fact storage.Collection) {
	t.Helper()
	dim1 = r.create(t, "dim1", record.Size)
	fact = r.create(t, "fact", record.Size)
	if err := record.GenerateJoin(nDim, nFact, 7, dim1.Append, fact.Append); err != nil {
		t.Fatal(err)
	}
	dim2 = r.create(t, "dim2", record.Size)
	if err := record.Generate(nDim, 13, dim2.Append); err != nil {
		t.Fatal(err)
	}
	for _, c := range []storage.Collection{dim1, dim2, fact} {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dim1, dim2, fact
}

func readBytes(t testing.TB, c storage.Collection) []byte {
	t.Helper()
	recs, err := storage.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(r)
	}
	return buf.Bytes()
}

// starPlan is the acceptance-criteria pipeline: a 3-table star join,
// projected back to the benchmark schema, grouped and ordered. The
// projection keeps the shared key at a0 and pulls payload attributes
// from all three sides of the 30-attribute join record
// (dim2‖dim1‖fact).
func starPlan(dim1, dim2, fact storage.Collection, sortA sorts.Algorithm, joinA joins.Algorithm) *Plan {
	inner := Table(dim1).JoinWith(Table(fact), joinA)        // dim1‖fact, 160 B
	star := Table(dim2).JoinWith(inner, joinA)               // dim2‖dim1‖fact, 240 B
	slim := star.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8) // back to 10 attrs, key first
	return slim.GroupByWith(3, sortA).OrderByWith(sortA).Limit(64)
}

const (
	testDim  = 200
	testFact = 2000
	// ~5% of the fact table: small enough that every blocking stage
	// spills, the regime the paper studies.
	testBudget = int64(testFact * record.Size / 20)
)

func TestStarPipelineMatchesHandWired(t *testing.T) {
	fixedSort := sorts.NewExternalMergeSort()
	fixedJoin := joins.NewGrace()

	// Engine run, fixed algorithms so the hand-wired sequence below is
	// bit-for-bit comparable.
	r := newRig(t)
	dim1, dim2, fact := r.loadStar(t, testDim, testFact)
	ctx := r.ctx(testBudget, 1)
	plan := starPlan(dim1, dim2, fact, fixedSort, fixedJoin)
	root, _, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	got := r.create(t, "result", record.Size)
	if err := Run(ctx, root, got); err != nil {
		t.Fatal(err)
	}

	// Hand-wired sequence: the same star join written the pre-engine
	// way — explicit temporaries between every algorithm invocation.
	want := handWiredStar(t, fixedSort, fixedJoin)
	if !bytes.Equal(readBytes(t, got), want) {
		t.Fatalf("engine output differs from hand-wired sequence (%d records)", got.Len())
	}

	// The same plan at P=4 must stay byte-identical.
	r4 := newRig(t)
	d1, d2, f := r4.loadStar(t, testDim, testFact)
	ctx4 := r4.ctx(testBudget, 4)
	root4, _, err := Compile(ctx4, starPlan(d1, d2, f, fixedSort, fixedJoin))
	if err != nil {
		t.Fatal(err)
	}
	got4 := r4.create(t, "result", record.Size)
	if err := Run(ctx4, root4, got4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, got4), want) {
		t.Fatal("P=4 output differs from P=1")
	}
}

// handWiredStar runs the star pipeline the way a caller had to before
// the engine existed: hand-picked algorithms, hand-managed temps, and a
// full materialization after every step.
func handWiredStar(t *testing.T, sortA sorts.Algorithm, joinA joins.Algorithm) []byte {
	t.Helper()
	r := newRig(t)
	dim1, dim2, fact := r.loadStar(t, testDim, testFact)
	// The engine splits the plan budget over its 4 blocking stages
	// (2 joins, groupby, orderby); the hand-wired version mirrors that
	// split so the algorithms run with identical memory.
	stageBudget := testBudget / 4

	inner := r.create(t, "hw.inner", 2*record.Size)
	if err := joinA.Join(algo.NewParallelEnv(r.fac, stageBudget, 1), dim1, fact, inner); err != nil {
		t.Fatal(err)
	}
	star := r.create(t, "hw.star", 3*record.Size)
	if err := joinA.Join(algo.NewParallelEnv(r.fac, stageBudget, 1), dim2, inner, star); err != nil {
		t.Fatal(err)
	}
	// Manual projection scan.
	attrs := []int{0, 1, 12, 13, 23, 24, 5, 16, 27, 8}
	slim := r.create(t, "hw.slim", record.Size)
	recs, err := storage.ReadAll(star)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, record.Size)
	for _, rec := range recs {
		for i, a := range attrs {
			copy(buf[i*record.AttrSize:(i+1)*record.AttrSize], rec[a*record.AttrSize:(a+1)*record.AttrSize])
		}
		if err := slim.Append(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := slim.Close(); err != nil {
		t.Fatal(err)
	}
	grouped := r.create(t, "hw.grouped", record.Size)
	if err := aggregate.GroupBy(algo.NewParallelEnv(r.fac, stageBudget, 1), sortA, slim, 3, grouped); err != nil {
		t.Fatal(err)
	}
	ordered := r.create(t, "hw.ordered", record.Size)
	if err := sortA.Sort(algo.NewParallelEnv(r.fac, stageBudget, 1), grouped, ordered); err != nil {
		t.Fatal(err)
	}
	// Manual limit.
	out, err := storage.ReadAll(ordered)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 64 {
		out = out[:64]
	}
	var b bytes.Buffer
	for _, rec := range out {
		b.Write(rec)
	}
	return b.Bytes()
}

func TestPipelineWritesFewerCachelines(t *testing.T) {
	run := func(materialize bool) uint64 {
		r := newRig(t)
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		ctx := r.ctx(testBudget, 1)
		plan := starPlan(dim1, dim2, fact, sorts.NewExternalMergeSort(), joins.NewGrace())
		root, _, err := CompileWith(ctx, plan, CompileOptions{MaterializeEveryStep: materialize})
		if err != nil {
			t.Fatal(err)
		}
		out := r.create(t, "result", record.Size)
		r.dev.ResetStats()
		if err := Run(ctx, root, out); err != nil {
			t.Fatal(err)
		}
		return r.dev.Stats().Writes
	}
	pipelined, materialized := run(false), run(true)
	if pipelined >= materialized {
		t.Fatalf("pipelined plan wrote %d cachelines, materialize-every-step %d: want strictly fewer",
			pipelined, materialized)
	}
	t.Logf("cacheline writes: pipelined %d vs materialized %d (%.1f%% saved)",
		pipelined, materialized, 100*(1-float64(pipelined)/float64(materialized)))
}

func TestStreamingOperators(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	const n = 1000
	if err := record.Generate(n, 3, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	ctx := r.ctx(8<<10, 1)
	plan := Table(in).
		Filter(Predicate{Attr: 0, Op: Ge, Value: 500}).
		Project(0, 2).
		Limit(100)
	root, _, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	out := r.create(t, "out", 2*record.AttrSize)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("limit produced %d records, want 100", out.Len())
	}
	recs, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if len(rec) != 2*record.AttrSize {
			t.Fatalf("projected record is %d bytes", len(rec))
		}
		k := record.Attr(rec, 0)
		if k < 500 {
			t.Fatalf("filter leaked key %d", k)
		}
		if want := k / 3; record.Attr(rec, 1) != want {
			t.Fatalf("projection scrambled a2: got %d want %d", record.Attr(rec, 1), want)
		}
	}
}

func TestHashAggregateMatchesSortGroupBy(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	const n, groups = 3000, 40
	for i := 0; i < n; i++ {
		rec := record.New(uint64(i % groups))
		record.SetAttr(rec, 4, uint64(i))
		if err := in.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	// Generous budget + hint: the planner must pick the hash path.
	ctx := r.ctx(1<<20, 1)
	root, ex, err := Compile(ctx, Table(in).GroupHint(groups).GroupBy(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 1 || ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("planner chose %+v, want HashAgg", ex.Choices)
	}
	hashOut := r.create(t, "hash", record.Size)
	if err := Run(ctx, root, hashOut); err != nil {
		t.Fatal(err)
	}

	// Pinned sort-based group-by over the same input.
	ctx2 := r.ctx(1<<20, 1)
	root2, _, err := Compile(ctx2, Table(in).GroupByWith(4, sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	sortOut := r.create(t, "sorted", record.Size)
	if err := Run(ctx2, root2, sortOut); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(readBytes(t, hashOut), readBytes(t, sortOut)) {
		t.Fatal("hash aggregate output differs from sort-based group-by")
	}
	if hashOut.Len() != groups {
		t.Fatalf("got %d groups, want %d", hashOut.Len(), groups)
	}
}

// TestFusedFilterWritesNothing pins the fusion property: a filter
// feeding a blocking sort contributes zero cacheline writes — the
// order-by over the fused view writes exactly what the same order-by
// writes over a pre-materialized collection holding the filtered rows.
func TestFusedFilterWritesNothing(t *testing.T) {
	const n = 4000
	pred := Predicate{Attr: 0, Op: Lt, Value: n / 2}

	// Engine: scan → filter → orderby, fused.
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(n, 9, in.Append); err != nil {
		t.Fatal(err)
	}
	in.Close()
	ctx := r.ctx(16<<10, 1)
	root, _, err := Compile(ctx, Table(in).Filter(pred).OrderByWith(sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	out := r.create(t, "out", record.Size)
	r.dev.ResetStats()
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	fusedWrites := r.dev.Stats().Writes

	// Reference: the same sort over an already-filtered base collection
	// (its writes are the sort's own floor — the filter must add none).
	r2 := newRig(t)
	pre := r2.create(t, "pre", record.Size)
	if err := record.Generate(n, 9, func(rec []byte) error {
		if pred.Eval(rec) {
			return pre.Append(rec)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pre.Close()
	ctx2 := r2.ctx(16<<10, 1)
	root2, _, err := Compile(ctx2, Table(pre).OrderByWith(sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	out2 := r2.create(t, "out", record.Size)
	r2.dev.ResetStats()
	if err := Run(ctx2, root2, out2); err != nil {
		t.Fatal(err)
	}
	refWrites := r2.dev.Stats().Writes

	if !bytes.Equal(readBytes(t, out), readBytes(t, out2)) {
		t.Fatal("fused filter changed the sorted result")
	}
	if fusedWrites != refWrites {
		t.Errorf("fused filter pipeline wrote %d cachelines, sort floor is %d", fusedWrites, refWrites)
	}
}

func TestGroupHintSurvivesStreamingStages(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	const groups = 40
	for i := 0; i < 2000; i++ {
		if err := in.Append(record.New(uint64(i % groups))); err != nil {
			t.Fatal(err)
		}
	}
	in.Close()
	ctx := r.ctx(1<<20, 1)
	// The hint is set below a filter; the nearest group-by above must
	// still see it and take the hash path.
	plan := Table(in).GroupHint(groups).
		Filter(Predicate{Attr: 1, Op: Ge, Value: 0}).
		GroupBy(4)
	_, ex, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 1 || ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("hint below a filter was dropped: planner chose %+v", ex.Choices)
	}
	// Across a shape-changing stage (project) it must NOT survive.
	ctx2 := r.ctx(1<<20, 1)
	_, ex2, err := Compile(ctx2, Table(in).GroupHint(groups).Project(1, 0, 2, 3, 4, 5, 6, 7, 8, 9).GroupBy(4))
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Choices[0].Algorithm == "HashAgg" {
		t.Fatal("hint leaked through a projection that rewrites the key")
	}
}

// loadGrouped fills a collection with n rows over the given number of
// distinct keys, attribute 4 carrying a per-row value so every aggregate
// slot is exercised.
func loadGrouped(t testing.TB, r *rig, name string, n, groups int) storage.Collection {
	t.Helper()
	in := r.create(t, name, record.Size)
	for i := 0; i < n; i++ {
		rec := record.New(uint64(i % groups))
		record.SetAttr(rec, 4, uint64(i))
		if err := in.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestHashAggregateSpillFallback is the regression test of the budget
// blow-up bug: a GroupHint underestimating the group count 10× used to
// abort the running query with the budget-share error; now the hash table
// spills its partial aggregates to sorted runs and merges them, so the
// query completes with output byte-identical to the pinned sort-based
// GroupBy plan. An absent hint (and no statistics) keeps choosing the
// spill-safe sort path, which also completes.
func TestHashAggregateSpillFallback(t *testing.T) {
	const (
		n      = 20000
		groups = 5000 // actual distinct groups
		hint   = 500  // 10× underestimate
		budget = int64(128 << 10)
	)

	// Ground truth: the pinned sort-based plan.
	rs := newRig(t)
	ctxS := rs.ctx(budget, 1)
	rootS, _, err := Compile(ctxS, Table(loadGrouped(t, rs, "in", n, groups)).GroupByWith(4, sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	sortOut := rs.create(t, "sorted", record.Size)
	if err := Run(ctxS, rootS, sortOut); err != nil {
		t.Fatal(err)
	}
	want := readBytes(t, sortOut)

	// The underestimated hint selects the hash path, which must spill.
	rh := newRig(t)
	ctxH := rh.ctx(budget, 1)
	rootH, ex, err := Compile(ctxH, Table(loadGrouped(t, rh, "in", n, groups)).GroupHint(hint).GroupBy(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 1 || ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("hinted plan chose %+v, want HashAgg", ex.Choices)
	}
	hashOut := rh.create(t, "hash", record.Size)
	if err := Run(ctxH, rootH, hashOut); err != nil {
		t.Fatalf("underestimated hint no longer degrades, it fails: %v", err)
	}
	if !ex.Choices[0].Spilled {
		t.Error("explain choice not marked as spilled")
	}
	if got := ex.Choices[0].ActualRows; got != n {
		t.Errorf("explain actual rows = %d, want %d", got, n)
	}
	if hashOut.Len() != groups {
		t.Fatalf("spill fallback produced %d groups, want %d", hashOut.Len(), groups)
	}
	if !bytes.Equal(readBytes(t, hashOut), want) {
		t.Fatal("spill-fallback output differs from the pinned sort-based GroupBy plan")
	}

	// Absent hint, no statistics: the planner assumes every record is its
	// own group, stays on the sort path, and completes.
	ra := newRig(t)
	ctxA := ra.ctx(budget, 1)
	rootA, exA, err := Compile(ctxA, Table(loadGrouped(t, ra, "in", n, groups)).GroupBy(4))
	if err != nil {
		t.Fatal(err)
	}
	if exA.Choices[0].Algorithm == "HashAgg" {
		t.Fatalf("hintless, statless plan chose the hash path: %+v", exA.Choices)
	}
	outA := ra.create(t, "nohint", record.Size)
	if err := Run(ctxA, rootA, outA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, outA), want) {
		t.Fatal("hintless output differs from the pinned sort-based GroupBy plan")
	}
}

// TestHashAggregateSpillMultiPassMerge shrinks the budget until the
// spill produces far more runs than the merge fan-in (floored at 2),
// exercising the intermediate merge passes — and stacks an OrderBy above
// the spilled aggregate so a blocking parent consumes the merged result
// through its collection source.
func TestHashAggregateSpillMultiPassMerge(t *testing.T) {
	const (
		n      = 2000
		groups = 1000
		budget = int64(4 << 10) // two stages: 2 KiB each, fan-in at the floor
	)
	rh := newRig(t)
	ctxH := rh.ctx(budget, 1)
	rootH, ex, err := Compile(ctxH, Table(loadGrouped(t, rh, "in", n, groups)).GroupHint(10).GroupBy(4).OrderBy())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Choices[0].Algorithm != "HashAgg" {
		t.Fatalf("plan chose %+v, want HashAgg", ex.Choices)
	}
	hashOut := rh.create(t, "hash", record.Size)
	if err := Run(ctxH, rootH, hashOut); err != nil {
		t.Fatal(err)
	}
	if !ex.Choices[0].Spilled {
		t.Error("explain choice not marked as spilled")
	}

	rs := newRig(t)
	ctxS := rs.ctx(budget, 1)
	rootS, _, err := Compile(ctxS, Table(loadGrouped(t, rs, "in", n, groups)).
		GroupByWith(4, sorts.NewExternalMergeSort()).OrderByWith(sorts.NewExternalMergeSort()))
	if err != nil {
		t.Fatal(err)
	}
	sortOut := rs.create(t, "sorted", record.Size)
	if err := Run(ctxS, rootS, sortOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readBytes(t, hashOut), readBytes(t, sortOut)) {
		t.Fatal("multi-pass spill merge output differs from the sort-based plan")
	}
}

func TestDSLPlanMatchesBuilder(t *testing.T) {
	r := newRig(t)
	dim1, dim2, fact := r.loadStar(t, testDim, testFact)
	lookup := func(name string) (storage.Collection, error) {
		switch name {
		case "dim1":
			return dim1, nil
		case "dim2":
			return dim2, nil
		case "fact":
			return fact, nil
		}
		return nil, fmt.Errorf("no table %q", name)
	}

	src := "scan(dim2) | join(scan(dim1) | join(scan(fact); GJ); GJ) " +
		"| project(a0,a1,a12,a13,a23,a24,a5,a16,a27,a8) | groupby(a3; ExMS) | orderby(ExMS) | limit(64)"
	parsed, err := ParsePlan(src, lookup)
	if err != nil {
		t.Fatal(err)
	}
	ctx := r.ctx(testBudget, 1)
	root, _, err := Compile(ctx, parsed)
	if err != nil {
		t.Fatal(err)
	}
	got := r.create(t, "dsl.out", record.Size)
	if err := Run(ctx, root, got); err != nil {
		t.Fatal(err)
	}

	r2 := newRig(t)
	d1, d2, f := r2.loadStar(t, testDim, testFact)
	ctx2 := r2.ctx(testBudget, 1)
	root2, _, err := Compile(ctx2, starPlan(d1, d2, f, sorts.NewExternalMergeSort(), joins.NewGrace()))
	if err != nil {
		t.Fatal(err)
	}
	want := r2.create(t, "builder.out", record.Size)
	if err := Run(ctx2, root2, want); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(readBytes(t, got), readBytes(t, want)) {
		t.Fatal("DSL plan output differs from builder plan output")
	}
}

func TestDSLErrors(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "t", record.Size)
	lookup := func(string) (storage.Collection, error) { return in, nil }
	for _, src := range []string{
		"",
		"filter(a0 == 1)",                  // must start with scan
		"scan(t) | scan(t)",                // scan mid-plan
		"scan(t) | frobnicate(a1)",         // unknown stage
		"scan(t) | filter(a0 ~ 3)",         // bad operator
		"scan(t) | join(scan(t); ZJ)",      // unknown join algorithm
		"scan(t) | orderby(SegS)",          // missing knob
		"scan(t) | orderby(SegS:2)",        // knob out of range
		"scan(t) | join(scan(t)",           // unbalanced parens
		"scan(t) | groupby(a1, groups=-3)", // bad group hint
		"scan(t) | limit(x)",               // bad limit
	} {
		if _, err := ParsePlan(src, lookup); err == nil {
			t.Errorf("ParsePlan(%q) accepted", src)
		}
	}
}

func TestRunValidation(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(10, 1, in.Append); err != nil {
		t.Fatal(err)
	}
	in.Close()

	// Wrong output width.
	bad := r.create(t, "bad", 16)
	if err := Run(r.ctx(4<<10, 1), NewScan(in), bad); err == nil {
		t.Error("record-size mismatch accepted")
	}
	// Non-empty output.
	full := r.create(t, "full", record.Size)
	full.Append(record.New(1)) //nolint:errcheck
	if err := Run(r.ctx(4<<10, 1), NewScan(in), full); err == nil {
		t.Error("non-empty output accepted")
	}
	// Bad budget.
	out := r.create(t, "out", record.Size)
	if err := Run(r.ctx(0, 1), NewScan(in), out); err == nil {
		t.Error("zero budget accepted")
	}
	// Bad predicate attribute fails at plan time.
	ctx := r.ctx(4<<10, 1)
	if _, _, err := Compile(ctx, Table(in).Filter(Predicate{Attr: 99, Op: Eq, Value: 0})); err == nil {
		t.Error("out-of-record predicate compiled")
	}
	// A group-by over an unprojected join fails at plan time too.
	if _, _, err := Compile(r.ctx(4<<10, 1), Table(in).Join(Table(in)).GroupBy(3)); err == nil {
		t.Error("group-by over 160-byte join records compiled")
	}
}

func TestEmptyInputPipeline(t *testing.T) {
	r := newRig(t)
	empty := r.create(t, "empty", record.Size)
	empty.Close()
	ctx := r.ctx(8<<10, 1)
	root, _, err := Compile(ctx, Table(empty).Filter(Predicate{Attr: 1, Op: Gt, Value: 3}).OrderBy())
	if err != nil {
		t.Fatal(err)
	}
	out := r.create(t, "out", record.Size)
	if err := Run(ctx, root, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty pipeline produced %d records", out.Len())
	}
}
