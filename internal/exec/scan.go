package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// --- Scan ---

// Scan streams a base collection. It is the only leaf operator; its
// output "materialization" is the collection itself, so blocking parents
// consume it without any copying.
type Scan struct {
	c  storage.Collection
	it storage.Iterator
}

// NewScan returns a scan over c.
func NewScan(c storage.Collection) *Scan { return &Scan{c: c} }

func (s *Scan) Name() string         { return fmt.Sprintf("Scan(%s)", s.c.Name()) }
func (s *Scan) RecordSize() int      { return s.c.RecordSize() }
func (s *Scan) Children() []Operator { return nil }

func (s *Scan) Open(context.Context, *Ctx) error {
	s.it = s.c.Scan()
	return nil
}

func (s *Scan) Next(context.Context) ([]byte, error) {
	if s.it == nil {
		return nil, io.EOF
	}
	return s.it.Next()
}

func (s *Scan) Close() error {
	if s.it == nil {
		return nil
	}
	it := s.it
	s.it = nil
	return it.Close()
}

func (s *Scan) source() (storage.Collection, bool) { return s.c, true }

// --- Predicates ---

// CmpOp is a comparison operator of a filter predicate.
type CmpOp int

// The comparison operators of the plan DSL.
const (
	Eq CmpOp = iota // ==
	Ne              // !=
	Lt              // <
	Le              // <=
	Gt              // >
	Ge              // >=
)

var cmpNames = map[CmpOp]string{Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func (o CmpOp) String() string { return cmpNames[o] }

// Predicate compares one fixed-width attribute of a record against a
// constant: the filter form of the benchmark schema (every attribute is
// an unsigned 64-bit integer).
type Predicate struct {
	Attr  int
	Op    CmpOp
	Value uint64
}

func (p Predicate) String() string { return fmt.Sprintf("a%d %s %d", p.Attr, p.Op, p.Value) }

// Eval reports whether rec satisfies the predicate.
func (p Predicate) Eval(rec []byte) bool {
	v := record.Attr(rec, p.Attr)
	switch p.Op {
	case Eq:
		return v == p.Value
	case Ne:
		return v != p.Value
	case Lt:
		return v < p.Value
	case Le:
		return v <= p.Value
	case Gt:
		return v > p.Value
	case Ge:
		return v >= p.Value
	}
	return false
}

// Selectivity is the planner's fraction-of-rows-surviving estimate. With
// no value statistics the engine uses the textbook defaults: equality is
// selective, inequality barely filters, ranges halve.
func (p Predicate) Selectivity() float64 {
	switch p.Op {
	case Eq:
		return 0.1
	case Ne:
		return 0.9
	default:
		return 0.5
	}
}

func (p Predicate) validate(recSize int) error {
	if p.Attr < 0 || (p.Attr+1)*record.AttrSize > recSize {
		return fmt.Errorf("exec: predicate attribute a%d outside %d-byte record", p.Attr, recSize)
	}
	return nil
}

// --- Filter ---

// Filter streams the records of its child that satisfy a predicate.
// Non-blocking: it touches no device lines of its own.
type Filter struct {
	child Operator
	pred  Predicate
}

// NewFilter returns a filter over child.
func NewFilter(child Operator, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred}
}

func (f *Filter) Name() string         { return fmt.Sprintf("Filter[%s](%s)", f.pred, f.child.Name()) }
func (f *Filter) RecordSize() int      { return f.child.RecordSize() }
func (f *Filter) Children() []Operator { return []Operator{f.child} }

func (f *Filter) Open(ctx context.Context, ec *Ctx) error {
	if err := f.pred.validate(f.child.RecordSize()); err != nil {
		return err
	}
	return f.child.Open(ctx, ec)
}

func (f *Filter) Next(ctx context.Context) ([]byte, error) {
	for {
		rec, err := f.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if f.pred.Eval(rec) {
			return rec, nil
		}
	}
}

func (f *Filter) Close() error { return f.child.Close() }

// --- Project ---

// Project re-arranges each record to the chosen 8-byte attributes, in
// order (duplicates allowed). Non-blocking; the output record width is
// 8·len(attrs).
type Project struct {
	child Operator
	attrs []int
	buf   []byte
}

// NewProject returns a projection of child to attrs.
func NewProject(child Operator, attrs ...int) *Project {
	return &Project{child: child, attrs: append([]int(nil), attrs...)}
}

func (p *Project) Name() string {
	return fmt.Sprintf("Project%v(%s)", p.attrs, p.child.Name())
}
func (p *Project) RecordSize() int      { return len(p.attrs) * record.AttrSize }
func (p *Project) Children() []Operator { return []Operator{p.child} }

func (p *Project) Open(ctx context.Context, ec *Ctx) error {
	if len(p.attrs) == 0 {
		return fmt.Errorf("exec: projection with no attributes")
	}
	in := p.child.RecordSize()
	for _, a := range p.attrs {
		if a < 0 || (a+1)*record.AttrSize > in {
			return fmt.Errorf("exec: projected attribute a%d outside %d-byte record", a, in)
		}
	}
	p.buf = make([]byte, p.RecordSize())
	return p.child.Open(ctx, ec)
}

func (p *Project) Next(ctx context.Context) ([]byte, error) {
	rec, err := p.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	for i, a := range p.attrs {
		copy(p.buf[i*record.AttrSize:(i+1)*record.AttrSize], rec[a*record.AttrSize:(a+1)*record.AttrSize])
	}
	return p.buf, nil
}

func (p *Project) Close() error { return p.child.Close() }

// --- Limit ---

// Limit passes through the first n records. Non-blocking.
type Limit struct {
	child Operator
	n     int
	seen  int
}

// NewLimit returns a limit of n records over child.
func NewLimit(child Operator, n int) *Limit { return &Limit{child: child, n: n} }

func (l *Limit) Name() string         { return fmt.Sprintf("Limit[%d](%s)", l.n, l.child.Name()) }
func (l *Limit) RecordSize() int      { return l.child.RecordSize() }
func (l *Limit) Children() []Operator { return []Operator{l.child} }

func (l *Limit) Open(ctx context.Context, ec *Ctx) error {
	if l.n < 0 {
		return fmt.Errorf("exec: negative limit %d", l.n)
	}
	l.seen = 0
	return l.child.Open(ctx, ec)
}

func (l *Limit) Next(ctx context.Context) ([]byte, error) {
	if l.seen >= l.n {
		return nil, io.EOF
	}
	rec, err := l.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	l.seen++
	return rec, nil
}

func (l *Limit) Close() error { return l.child.Close() }
