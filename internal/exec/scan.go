package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// --- Scan ---

// Scan streams a base collection in batches. It is the only leaf
// operator; its output "materialization" is the collection itself, so
// blocking parents consume it without any copying. When the collection's
// iterator supports chunked reads the batches alias the iterator's block
// buffer — zero per-record copies.
type Scan struct {
	c  storage.Collection
	sc *batchScanner
}

// NewScan returns a scan over c.
func NewScan(c storage.Collection) *Scan { return &Scan{c: c} }

func (s *Scan) Name() string         { return fmt.Sprintf("Scan(%s)", s.c.Name()) }
func (s *Scan) RecordSize() int      { return s.c.RecordSize() }
func (s *Scan) Children() []Operator { return nil }

func (s *Scan) Open(_ context.Context, ec *Ctx) error {
	s.sc = newBatchScanner(s.c.Scan(), s.c.RecordSize(), ec.batchSize())
	return nil
}

func (s *Scan) Next(context.Context) (*Batch, error) {
	if s.sc == nil {
		return nil, io.EOF
	}
	return s.sc.next()
}

func (s *Scan) limitHint(n int) {
	if s.sc != nil {
		s.sc.limit(n)
	}
}

func (s *Scan) Close() error {
	if s.sc == nil {
		return nil
	}
	sc := s.sc
	s.sc = nil
	return sc.Close()
}

func (s *Scan) source() (storage.Collection, bool) { return s.c, true }

// --- Predicates ---

// CmpOp is a comparison operator of a filter predicate.
type CmpOp int

// The comparison operators of the plan DSL.
const (
	Eq CmpOp = iota // ==
	Ne              // !=
	Lt              // <
	Le              // <=
	Gt              // >
	Ge              // >=
)

var cmpNames = map[CmpOp]string{Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func (o CmpOp) String() string { return cmpNames[o] }

// Predicate compares one fixed-width attribute of a record against a
// constant: the filter form of the benchmark schema (every attribute is
// an unsigned 64-bit integer).
type Predicate struct {
	Attr  int
	Op    CmpOp
	Value uint64
}

func (p Predicate) String() string { return fmt.Sprintf("a%d %s %d", p.Attr, p.Op, p.Value) }

// Eval reports whether rec satisfies the predicate.
func (p Predicate) Eval(rec []byte) bool {
	v := record.Attr(rec, p.Attr)
	switch p.Op {
	case Eq:
		return v == p.Value
	case Ne:
		return v != p.Value
	case Lt:
		return v < p.Value
	case Le:
		return v <= p.Value
	case Gt:
		return v > p.Value
	case Ge:
		return v >= p.Value
	}
	return false
}

// matcher specializes the predicate to a single-comparison closure: the
// operator switch is resolved once, so per-record evaluation in batch
// loops and fused views is one attribute load and one compare.
func (p Predicate) matcher() func(rec []byte) bool {
	a, v := p.Attr, p.Value
	switch p.Op {
	case Eq:
		return func(rec []byte) bool { return record.Attr(rec, a) == v }
	case Ne:
		return func(rec []byte) bool { return record.Attr(rec, a) != v }
	case Lt:
		return func(rec []byte) bool { return record.Attr(rec, a) < v }
	case Le:
		return func(rec []byte) bool { return record.Attr(rec, a) <= v }
	case Gt:
		return func(rec []byte) bool { return record.Attr(rec, a) > v }
	case Ge:
		return func(rec []byte) bool { return record.Attr(rec, a) >= v }
	}
	return func([]byte) bool { return false }
}

// selectInto appends the records of recs that satisfy match to dst and
// returns it: the selection-vector form of filtering. The comparison
// branches once per batch (see Predicate.matcher); the per-record loop
// is a tight load-compare-append with no early returns.
func selectInto(dst [][]byte, recs [][]byte, match func(rec []byte) bool) [][]byte {
	for _, rec := range recs {
		if match(rec) {
			dst = append(dst, rec)
		}
	}
	return dst
}

// Selectivity is the planner's fraction-of-rows-surviving estimate. With
// no value statistics the engine uses the textbook defaults: equality is
// selective, inequality barely filters, ranges halve.
func (p Predicate) Selectivity() float64 {
	switch p.Op {
	case Eq:
		return 0.1
	case Ne:
		return 0.9
	default:
		return 0.5
	}
}

func (p Predicate) validate(recSize int) error {
	if p.Attr < 0 || (p.Attr+1)*record.AttrSize > recSize {
		return fmt.Errorf("exec: predicate attribute a%d outside %d-byte record", p.Attr, recSize)
	}
	return nil
}

// --- Filter ---

// Filter streams the records of its child that satisfy a predicate,
// using a selection vector: each output batch aliases the surviving
// records of one child batch. Non-blocking: it touches no device lines
// of its own.
type Filter struct {
	child Operator
	pred  Predicate
	match func(rec []byte) bool
	out   Batch
	sel   [][]byte
	need  int // records the parent still wants under a limit hint; -1 none
}

// NewFilter returns a filter over child.
func NewFilter(child Operator, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred}
}

func (f *Filter) Name() string         { return fmt.Sprintf("Filter[%s](%s)", f.pred, f.child.Name()) }
func (f *Filter) RecordSize() int      { return f.child.RecordSize() }
func (f *Filter) Children() []Operator { return []Operator{f.child} }

func (f *Filter) Open(ctx context.Context, ec *Ctx) error {
	if err := f.pred.validate(f.child.RecordSize()); err != nil {
		return err
	}
	f.match = f.pred.matcher()
	f.need = -1
	return f.child.Open(ctx, ec)
}

// limitHint bounds read-ahead under a Limit: the filter re-hints its
// child before every pull with the records still needed, narrowing the
// child's fetches as matches accumulate. Selectivity is unknown, so the
// bound is per-pull, not exact — the child may fetch up to one hinted
// batch past the lazy record-at-a-time stopping point.
func (f *Filter) limitHint(n int) { f.need = n }

func (f *Filter) Next(ctx context.Context) (*Batch, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if f.need >= 0 {
			if f.need == 0 {
				return nil, io.EOF
			}
			hintLimit(f.child, f.need)
		}
		cb, err := f.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		//lint:allow wlvet/batchown PR 6 aliasing license: the selection vector is rebuilt from the child's fresh batch before every emit and never outlives it
		f.sel = selectInto(f.sel[:0], cb.Recs, f.match)
		if len(f.sel) == 0 {
			continue
		}
		if f.need > 0 {
			f.need -= len(f.sel)
			if f.need < 0 {
				f.need = 0
			}
		}
		f.out.Recs = f.sel
		return &f.out, nil
	}
}

func (f *Filter) Close() error { return f.child.Close() }

// --- Project ---

// Project re-arranges each record to the chosen 8-byte attributes, in
// order (duplicates allowed). Non-blocking; the output record width is
// 8·len(attrs). Output batches are owned (projection copies).
type Project struct {
	child Operator
	attrs []int
	out   *Batch
}

// NewProject returns a projection of child to attrs.
func NewProject(child Operator, attrs ...int) *Project {
	return &Project{child: child, attrs: append([]int(nil), attrs...)}
}

func (p *Project) Name() string {
	return fmt.Sprintf("Project%v(%s)", p.attrs, p.child.Name())
}
func (p *Project) RecordSize() int      { return len(p.attrs) * record.AttrSize }
func (p *Project) Children() []Operator { return []Operator{p.child} }

func (p *Project) Open(ctx context.Context, ec *Ctx) error {
	if len(p.attrs) == 0 {
		return fmt.Errorf("exec: projection with no attributes")
	}
	in := p.child.RecordSize()
	for _, a := range p.attrs {
		if a < 0 || (a+1)*record.AttrSize > in {
			return fmt.Errorf("exec: projected attribute a%d outside %d-byte record", a, in)
		}
	}
	p.out = newBatch(p.RecordSize(), ec.batchSize())
	return p.child.Open(ctx, ec)
}

// limitHint propagates 1:1 to the child.
func (p *Project) limitHint(n int) { hintLimit(p.child, n) }

func (p *Project) Next(ctx context.Context) (*Batch, error) {
	cb, err := p.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	n := len(cb.Recs)
	if n > len(p.out.views) {
		// Children never exceed the run's batch size; guard anyway.
		n = len(p.out.views)
	}
	for i := 0; i < n; i++ {
		rec, buf := cb.Recs[i], p.out.views[i]
		for j, a := range p.attrs {
			copy(buf[j*record.AttrSize:(j+1)*record.AttrSize], rec[a*record.AttrSize:(a+1)*record.AttrSize])
		}
	}
	p.out.Recs = p.out.views[:n]
	return p.out, nil
}

func (p *Project) Close() error { return p.child.Close() }

// --- Limit ---

// Limit passes through the first n records, slicing the final child
// batch at the cut. Non-blocking. At Open it hints the bound down the
// chain (see limitHinted) so hinted producers fetch no input past the
// n-th record.
type Limit struct {
	child Operator
	n     int
	seen  int
	out   Batch
}

// NewLimit returns a limit of n records over child.
func NewLimit(child Operator, n int) *Limit { return &Limit{child: child, n: n} }

func (l *Limit) Name() string         { return fmt.Sprintf("Limit[%d](%s)", l.n, l.child.Name()) }
func (l *Limit) RecordSize() int      { return l.child.RecordSize() }
func (l *Limit) Children() []Operator { return []Operator{l.child} }

func (l *Limit) Open(ctx context.Context, ec *Ctx) error {
	if l.n < 0 {
		return fmt.Errorf("exec: negative limit %d", l.n)
	}
	l.seen = 0
	if err := l.child.Open(ctx, ec); err != nil {
		return err
	}
	hintLimit(l.child, l.n)
	return nil
}

func (l *Limit) limitHint(n int) {
	if n < l.n-l.seen {
		hintLimit(l.child, n)
	}
}

func (l *Limit) Next(ctx context.Context) (*Batch, error) {
	if l.seen >= l.n {
		return nil, io.EOF
	}
	cb, err := l.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	k := len(cb.Recs)
	if rest := l.n - l.seen; k > rest {
		k = rest
	}
	l.seen += k
	//lint:allow wlvet/batchown PR 6 aliasing license: the truncated view is re-sliced from the child's fresh batch on every call and handed out under the same validity window
	l.out.Recs = cb.Recs[:k]
	return &l.out, nil
}

func (l *Limit) Close() error { return l.child.Close() }
