package exec

import (
	"fmt"

	"wlpm/internal/joins"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// Plan is a logical query plan: what to compute, without physical
// algorithm choices. Build one with Table and the fluent methods, then
// hand it to Compile — the physical planner fills in the sort and join
// algorithms (and their write-intensity knobs) from the cost model,
// unless a *With method pinned a fixed algorithm.
//
// Construction errors (nil inputs, bad attribute numbers) are deferred:
// they surface from Compile, so call chains stay unconditional.
type Plan struct {
	kind  planKind
	col   storage.Collection // scan
	pred  Predicate          // filter
	attrs []int              // project
	n     int                // limit
	attr  int                // group-by aggregate attribute
	hint  int                // group-by distinct-groups estimate (0 = unknown)
	sortA sorts.Algorithm    // pinned sort (order-by, group-by); nil = planner's choice
	joinA joins.Algorithm    // pinned join; nil = planner's choice

	left, right *Plan
	err         error
}

type planKind int

const (
	planScan planKind = iota
	planFilter
	planProject
	planJoin
	planGroupBy
	planOrderBy
	planLimit
)

// Table starts a plan: a scan of c.
func Table(c storage.Collection) *Plan {
	p := &Plan{kind: planScan, col: c}
	if c == nil {
		p.err = fmt.Errorf("exec: Table(nil)")
	}
	return p
}

func (p *Plan) derive(kind planKind) *Plan {
	d := &Plan{kind: kind, left: p, err: p.err}
	// A group hint survives stages that preserve the key domain and the
	// group count (an upper bound after a filter), so it reaches the
	// nearest group-by above the node it annotated. Shape-changing
	// stages (project, join, group-by) invalidate it.
	switch kind {
	case planFilter, planLimit, planOrderBy:
		d.hint = p.hint
	}
	return d
}

// Filter keeps the records satisfying pred.
func (p *Plan) Filter(pred Predicate) *Plan {
	d := p.derive(planFilter)
	d.pred = pred
	return d
}

// Project keeps the chosen 8-byte attributes, in order.
func (p *Plan) Project(attrs ...int) *Plan {
	d := p.derive(planProject)
	d.attrs = append([]int(nil), attrs...)
	return d
}

// Join equi-joins p (build side — put the smaller input here) with
// right on the key attributes; the planner picks the algorithm.
func (p *Plan) Join(right *Plan) *Plan { return p.JoinWith(right, nil) }

// JoinWith is Join with a pinned algorithm (nil defers to the planner).
func (p *Plan) JoinWith(right *Plan, a joins.Algorithm) *Plan {
	d := p.derive(planJoin)
	d.joinA = a
	d.right = right
	if right == nil {
		d.err = fmt.Errorf("exec: Join(nil)")
	} else if d.err == nil {
		d.err = right.err
	}
	return d
}

// GroupBy groups by the key attribute and aggregates attr
// (count/sum/min/max); the planner picks hash vs sort-based execution
// and the sort algorithm.
func (p *Plan) GroupBy(attr int) *Plan { return p.GroupByWith(attr, nil) }

// GroupByWith is GroupBy with a pinned sort algorithm (nil defers to
// the planner; pinning forces the sort-based operator).
func (p *Plan) GroupByWith(attr int, a sorts.Algorithm) *Plan {
	d := p.derive(planGroupBy)
	d.attr = attr
	d.sortA = a
	return d
}

// GroupHint tells the planner how many distinct groups the nearest
// group-by above p should expect (it has no value statistics of its
// own). The hint survives filters, limits and order-bys but not
// shape-changing stages (project, join, group-by). Without a hint the
// planner assumes every record is its own group, which always picks the
// spill-safe sort-based operator.
func (p *Plan) GroupHint(groups int) *Plan {
	d := *p
	d.hint = groups
	return &d
}

// OrderBy sorts by the record total order (key attribute first); the
// planner picks the algorithm and its knob.
func (p *Plan) OrderBy() *Plan { return p.OrderByWith(nil) }

// OrderByWith is OrderBy with a pinned algorithm (nil defers to the
// planner).
func (p *Plan) OrderByWith(a sorts.Algorithm) *Plan {
	d := p.derive(planOrderBy)
	d.sortA = a
	return d
}

// Limit keeps the first n records.
func (p *Plan) Limit(n int) *Plan {
	d := p.derive(planLimit)
	d.n = n
	if n < 0 && d.err == nil {
		d.err = fmt.Errorf("exec: Limit(%d)", n)
	}
	return d
}

// Err reports a deferred construction error, if any.
func (p *Plan) Err() error { return p.err }
