package exec

import (
	"fmt"
	"io"
	"sort"

	"wlpm/internal/aggregate"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// GroupBy is the sort-based write-limited aggregation: it groups its
// benchmark-schema input by key and aggregates one attribute
// (count/sum/min/max in the aggregate package's result slots), emitting
// one record per group in ascending key order. The write profile is the
// chosen sort algorithm's — the planner places the same intensity knob
// it places for order-by. Blocking.
type GroupBy struct {
	child   Operator
	attr    int
	algo    sorts.Algorithm
	grouped storage.Collection
	it      storage.Iterator
}

// NewGroupBy returns a sort-based group-by over child aggregating attr.
func NewGroupBy(child Operator, attr int, a sorts.Algorithm) *GroupBy {
	return &GroupBy{child: child, attr: attr, algo: a}
}

func (g *GroupBy) Name() string {
	return fmt.Sprintf("GroupBy[a%d, %s](%s)", g.attr, g.algo.Name(), g.child.Name())
}
func (g *GroupBy) RecordSize() int      { return record.Size }
func (g *GroupBy) Children() []Operator { return []Operator{g.child} }
func (g *GroupBy) consumesMemory() bool { return true }

func (g *GroupBy) groupInto(ctx *Ctx, dst storage.Collection) error {
	if g.child.RecordSize() != record.Size {
		return fmt.Errorf("exec: group-by needs %d-byte benchmark records, child emits %d (project first)",
			record.Size, g.child.RecordSize())
	}
	in, cleanup, err := inputCollection(ctx, g.child)
	if err != nil {
		return err
	}
	env := ctx.StageEnv()
	if err := aggregate.GroupBy(env, g.algo, in, g.attr, dst); err != nil {
		cleanup() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return cleanup()
}

func (g *GroupBy) Open(ctx *Ctx) error {
	tmp, err := ctx.tempEnv().CreateTemp("grouped", record.Size)
	if err != nil {
		return err
	}
	if err := g.groupInto(ctx, tmp); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	g.grouped = tmp
	g.it = tmp.Scan()
	return nil
}

func (g *GroupBy) emitTo(ctx *Ctx, out storage.Collection) error {
	return g.groupInto(ctx, out)
}

func (g *GroupBy) Next() ([]byte, error) {
	if g.it == nil {
		return nil, io.EOF
	}
	return g.it.Next()
}

func (g *GroupBy) Close() error {
	var first error
	if g.it != nil {
		first = g.it.Close()
		g.it = nil
	}
	if g.grouped != nil {
		if err := g.grouped.Destroy(); err != nil && first == nil {
			first = err
		}
		g.grouped = nil
	}
	if err := g.child.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (g *GroupBy) source() (storage.Collection, bool) { return g.grouped, g.grouped != nil }

// HashAggregate is the in-memory aggregation fast path: one DRAM hash
// table over the group keys, no device writes beyond the result. The
// planner chooses it over the sort-based GroupBy only when the estimated
// group count fits the stage budget; at runtime the table is
// budget-checked so an underestimate fails loudly instead of silently
// blowing M. Output is byte-identical to GroupBy's (ascending key
// order, same result layout). Blocking, but writes no intermediates.
type HashAggregate struct {
	child Operator
	attr  int

	groups map[uint64]*aggState
	keys   []uint64
	pos    int
	buf    []byte
}

type aggState struct {
	count, sum, min, max uint64
}

// NewHashAggregate returns an in-memory group-by over child aggregating
// attr.
func NewHashAggregate(child Operator, attr int) *HashAggregate {
	return &HashAggregate{child: child, attr: attr}
}

func (h *HashAggregate) Name() string {
	return fmt.Sprintf("HashAggregate[a%d](%s)", h.attr, h.child.Name())
}
func (h *HashAggregate) RecordSize() int      { return record.Size }
func (h *HashAggregate) Children() []Operator { return []Operator{h.child} }
func (h *HashAggregate) consumesMemory() bool { return true }

func (h *HashAggregate) Open(ctx *Ctx) error {
	if h.child.RecordSize() != record.Size {
		return fmt.Errorf("exec: hash aggregate needs %d-byte benchmark records, child emits %d (project first)",
			record.Size, h.child.RecordSize())
	}
	if h.attr < 0 || h.attr >= record.NumAttrs {
		return fmt.Errorf("exec: aggregate attribute a%d out of schema (0..%d)", h.attr, record.NumAttrs-1)
	}
	if err := h.child.Open(ctx); err != nil {
		return err
	}
	budget := ctx.StageEnv().BudgetHashRecords(record.Size)
	h.groups = make(map[uint64]*aggState)
	err := drain(h.child, func(rec []byte) error {
		k := record.Key(rec)
		v := record.Attr(rec, h.attr)
		st, ok := h.groups[k]
		if !ok {
			if len(h.groups) >= budget {
				return fmt.Errorf("exec: hash aggregate exceeded its %d-group budget share (use the sort-based group-by)", budget)
			}
			st = &aggState{min: v, max: v}
			h.groups[k] = st
		}
		st.count++
		st.sum += v
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
		return nil
	})
	if err != nil {
		return err
	}
	h.keys = make([]uint64, 0, len(h.groups))
	for k := range h.groups {
		h.keys = append(h.keys, k)
	}
	sort.Slice(h.keys, func(i, j int) bool { return h.keys[i] < h.keys[j] })
	h.pos = 0
	h.buf = make([]byte, record.Size)
	return nil
}

func (h *HashAggregate) Next() ([]byte, error) {
	if h.pos >= len(h.keys) {
		return nil, io.EOF
	}
	k := h.keys[h.pos]
	st := h.groups[k]
	h.pos++
	for i := range h.buf {
		h.buf[i] = 0
	}
	record.SetAttr(h.buf, aggregate.AttrGroupKey, k)
	record.SetAttr(h.buf, aggregate.AttrCount, st.count)
	record.SetAttr(h.buf, aggregate.AttrSum, st.sum)
	record.SetAttr(h.buf, aggregate.AttrMin, st.min)
	record.SetAttr(h.buf, aggregate.AttrMax, st.max)
	return h.buf, nil
}

func (h *HashAggregate) Close() error {
	h.groups, h.keys = nil, nil
	return h.child.Close()
}
