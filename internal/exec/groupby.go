package exec

import (
	"context"
	"fmt"
	"io"
	"sort"

	"wlpm/internal/aggregate"
	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
	"wlpm/internal/xheap"
)

// GroupBy is the sort-based write-limited aggregation: it groups its
// benchmark-schema input by key and aggregates one attribute
// (count/sum/min/max in the aggregate package's result slots), emitting
// one record per group in ascending key order. The write profile is the
// chosen sort algorithm's — the planner places the same intensity knob
// it places for order-by. Blocking.
type GroupBy struct {
	child   Operator
	attr    int
	algo    sorts.Algorithm
	rc      *runtimeChoice // planner handle: Open-time estimate clamping
	grouped storage.Collection
	sc      *batchScanner
}

// NewGroupBy returns a sort-based group-by over child aggregating attr.
func NewGroupBy(child Operator, attr int, a sorts.Algorithm) *GroupBy {
	return &GroupBy{child: child, attr: attr, algo: a}
}

func (g *GroupBy) Name() string {
	return fmt.Sprintf("GroupBy[a%d, %s](%s)", g.attr, g.algo.Name(), g.child.Name())
}
func (g *GroupBy) RecordSize() int      { return record.Size }
func (g *GroupBy) Children() []Operator { return []Operator{g.child} }
func (g *GroupBy) consumesMemory() bool { return true }

func (g *GroupBy) groupInto(ctx context.Context, ec *Ctx, dst storage.Collection) error {
	if g.child.RecordSize() != record.Size {
		return fmt.Errorf("exec: group-by needs %d-byte benchmark records, child emits %d (project first)",
			record.Size, g.child.RecordSize())
	}
	in, cleanup, err := inputCollection(ctx, ec, g.child)
	if err != nil {
		return err
	}
	// Clamp the compile-time estimate against the materialized input: a
	// planner-owned sort choice is re-priced at the actual cardinality,
	// and the stage's budget share is re-split from the actuals first.
	g.algo = g.rc.clampSort(in.Len(), in.RecordSize(), g.algo)
	env := ec.StageEnvFor(g.rc)
	if err := aggregate.GroupBy(env, g.algo, in, g.attr, dst); err != nil {
		cleanup() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return cleanup()
}

func (g *GroupBy) Open(ctx context.Context, ec *Ctx) error {
	tmp, err := ec.tempEnv().CreateTemp("grouped", record.Size)
	if err != nil {
		return err
	}
	if err := g.groupInto(ctx, ec, tmp); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	g.grouped = tmp
	g.sc = newBatchScanner(tmp.Scan(), record.Size, ec.batchSize())
	return nil
}

func (g *GroupBy) emitTo(ctx context.Context, ec *Ctx, out storage.Collection) error {
	return g.groupInto(ctx, ec, out)
}

func (g *GroupBy) Next(context.Context) (*Batch, error) {
	if g.sc == nil {
		return nil, io.EOF
	}
	return g.sc.next()
}

// limitHint caps the reads of the grouped result; the aggregation ran
// in full at Open, exactly like the record engine.
func (g *GroupBy) limitHint(n int) {
	if g.sc != nil {
		g.sc.limit(n)
	}
}

func (g *GroupBy) Close() error {
	var first error
	if g.sc != nil {
		first = g.sc.Close()
		g.sc = nil
	}
	if g.grouped != nil {
		if err := g.grouped.Destroy(); err != nil && first == nil {
			first = err
		}
		g.grouped = nil
	}
	if err := g.child.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (g *GroupBy) source() (storage.Collection, bool) { return g.grouped, g.grouped != nil }

// HashAggregate is the in-memory aggregation fast path: one DRAM hash
// table over the group keys, no device writes beyond the result. The
// planner chooses it when the estimated group count (hint or column
// statistics) fits the stage budget; at runtime the table is
// budget-checked, and an underestimate degrades gracefully — the partial
// table spills to a sorted run of per-group aggregates and the runs are
// merged (combining equal keys) at the end, so the operator keeps the
// sort-based GroupBy's output byte for byte instead of aborting the
// query. Output is always ascending key order with the same result
// layout. Blocking; writes intermediates only when it spills.
type HashAggregate struct {
	child Operator
	attr  int
	rc    *runtimeChoice // planner handle: actuals + spill reporting

	groups map[uint64]*aggState
	keys   []uint64
	pos    int
	out    *Batch // in-memory result batches, rendered from the table

	env    *algo.Env            // stage share; owns the spill runs
	spills []storage.Collection // sorted partial-aggregate runs
	merged storage.Collection   // merged result when the table spilled
	sc     *batchScanner        // streams merged when the table spilled
}

type aggState struct {
	count, sum, min, max uint64
}

// NewHashAggregate returns an in-memory group-by over child aggregating
// attr.
func NewHashAggregate(child Operator, attr int) *HashAggregate {
	return &HashAggregate{child: child, attr: attr}
}

func (h *HashAggregate) Name() string {
	return fmt.Sprintf("HashAggregate[a%d](%s)", h.attr, h.child.Name())
}
func (h *HashAggregate) RecordSize() int      { return record.Size }
func (h *HashAggregate) Children() []Operator { return []Operator{h.child} }
func (h *HashAggregate) consumesMemory() bool { return true }

// aggregate drains the child into the partial table, spilling sorted
// runs on budget overflow; shared by Open and emitTo.
func (h *HashAggregate) aggregate(ctx context.Context, ec *Ctx) error {
	if h.child.RecordSize() != record.Size {
		return fmt.Errorf("exec: hash aggregate needs %d-byte benchmark records, child emits %d (project first)",
			record.Size, h.child.RecordSize())
	}
	if h.attr < 0 || h.attr >= record.NumAttrs {
		return fmt.Errorf("exec: aggregate attribute a%d out of schema (0..%d)", h.attr, record.NumAttrs-1)
	}
	if err := h.child.Open(ctx, ec); err != nil {
		return err
	}
	// The hash table learns its real input only while draining it, so the
	// stage freezes at its compiled share — later stages' re-splits must
	// not move memory a running hash table is already counting on.
	h.rc.freeze()
	h.env = ec.StageEnvFor(h.rc)
	budget := h.env.BudgetHashRecords(record.Size)
	h.groups = make(map[uint64]*aggState)
	rows := 0
	err := drain(ctx, h.child, func(rec []byte) error {
		rows++
		k := record.Key(rec)
		v := record.Attr(rec, h.attr)
		st, ok := h.groups[k]
		if !ok {
			if len(h.groups) >= budget {
				if err := h.spill(); err != nil {
					return err
				}
			}
			st = &aggState{min: v, max: v}
			h.groups[k] = st
		}
		st.count++
		st.sum += v
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
		return nil
	})
	if h.rc != nil {
		h.rc.choice.ActualRows = rows
	}
	return err
}

// sortedKeys returns the partial table's keys ascending.
func (h *HashAggregate) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(h.groups))
	for k := range h.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// finishSpill closes the degraded path: the group count blew the budget
// share, so the final partial table flushes as one more sorted run and
// the runs merge (combining groups) into dst — the sort-based fallback
// the estimate should have selected up front.
func (h *HashAggregate) finishSpill(dst storage.Collection) error {
	if h.rc != nil {
		h.rc.choice.Spilled = true
	}
	if err := h.spill(); err != nil {
		return err
	}
	return h.mergeSpills(dst)
}

func (h *HashAggregate) Open(ctx context.Context, ec *Ctx) error {
	if err := h.aggregate(ctx, ec); err != nil {
		return err
	}
	if len(h.spills) == 0 {
		h.keys = h.sortedKeys()
		h.pos = 0
		h.out = newBatch(record.Size, ec.batchSize())
		return nil
	}
	merged, err := ec.tempEnv().CreateTemp("hashagg.merged", record.Size)
	if err != nil {
		return err
	}
	if err := h.finishSpill(merged); err != nil {
		merged.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	h.merged = merged
	h.sc = newBatchScanner(merged.Scan(), record.Size, ec.batchSize())
	return nil
}

// emitTo writes the aggregates straight into the plan output when the
// operator sits at the root, saving the temp-then-copy of the generic
// drain — on the spill path the run merge lands directly in out.
func (h *HashAggregate) emitTo(ctx context.Context, ec *Ctx, out storage.Collection) error {
	if err := h.aggregate(ctx, ec); err != nil {
		return err
	}
	if len(h.spills) == 0 {
		buf := make([]byte, record.Size)
		for _, k := range h.sortedKeys() {
			fillAggRecord(buf, k, h.groups[k])
			if err := out.Append(buf); err != nil {
				return err
			}
		}
		return nil
	}
	return h.finishSpill(out)
}

// spill writes the current partial table to a key-sorted run of
// aggregate records and resets the table.
func (h *HashAggregate) spill() error {
	if len(h.groups) == 0 {
		return nil
	}
	run, err := h.env.CreateTemp("hashagg.run", record.Size)
	if err != nil {
		return err
	}
	buf := make([]byte, record.Size)
	for _, k := range h.sortedKeys() {
		fillAggRecord(buf, k, h.groups[k])
		if err := run.Append(buf); err != nil {
			run.Destroy() //nolint:errcheck // best-effort cleanup after failure
			return err
		}
	}
	if err := run.Close(); err != nil {
		run.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	h.spills = append(h.spills, run)
	h.groups = make(map[uint64]*aggState)
	return nil
}

// pollEmit wraps emit with the stage environment's amortized
// cancellation check, so the spill-merge passes stop mid-stream when the
// run's context is cancelled (the drain path polls through drain; this
// is its merge-phase twin, matching the sorts' pollEmit).
func (h *HashAggregate) pollEmit(emit func(rec []byte) error) func(rec []byte) error {
	poll := h.env.Poll()
	return func(rec []byte) error {
		if err := poll(); err != nil {
			return err
		}
		return emit(rec)
	}
}

// mergeSpills combines the sorted runs into dst, merging equal keys.
// Fan-in is capped at the stage's buffer budget less one output buffer
// (the same headroom the sorts' merges reserve); larger run counts go
// through intermediate merge passes, external-mergesort style.
func (h *HashAggregate) mergeSpills(dst storage.Collection) error {
	fanIn := h.env.BudgetBuffers() - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(h.spills) > fanIn {
		batch := h.spills[:fanIn]
		out, err := h.env.CreateTemp("hashagg.merge", record.Size)
		if err != nil {
			return err
		}
		if err := mergeAggRuns(batch, h.pollEmit(out.Append)); err != nil {
			out.Destroy() //nolint:errcheck // best-effort cleanup after failure
			return err
		}
		if err := out.Close(); err != nil {
			out.Destroy() //nolint:errcheck // best-effort cleanup after failure
			return err
		}
		for _, r := range batch {
			r.Destroy() //nolint:errcheck // destroy of a consumed temp
		}
		h.spills = append(append([]storage.Collection(nil), h.spills[fanIn:]...), out)
	}
	if err := mergeAggRuns(h.spills, h.pollEmit(dst.Append)); err != nil {
		return err
	}
	for _, r := range h.spills {
		r.Destroy() //nolint:errcheck // destroy of a consumed temp
	}
	h.spills = nil
	return dst.Close()
}

// mergeAggRuns multiway-merges key-sorted runs of partial aggregate
// records on a head heap (the same shape as the sorts' run merges),
// combining the partials of equal keys (counts and sums add, min/max
// fold), and feeds each merged group to emit in ascending key order.
// Keys are distinct within a run, so equal keys always sit on different
// heads.
func mergeAggRuns(runs []storage.Collection, emit func(rec []byte) error) error {
	type head struct {
		it  storage.Iterator
		rec []byte // copied current record
		key uint64
	}
	iters := make([]storage.Iterator, 0, len(runs))
	defer func() {
		for _, it := range iters {
			it.Close() //nolint:errcheck // read-only iterator teardown
		}
	}()
	advance := func(h *head) (bool, error) {
		rec, err := h.it.Next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		copy(h.rec, rec)
		h.key = record.Key(h.rec)
		return true, nil
	}
	heap := xheap.New(func(a, b *head) bool { return a.key < b.key }, len(runs))
	for _, r := range runs {
		h := &head{it: r.Scan(), rec: make([]byte, record.Size)}
		iters = append(iters, h.it)
		ok, err := advance(h)
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h)
		}
	}
	buf := make([]byte, record.Size)
	for heap.Len() > 0 {
		h := heap.Pop()
		key := h.key
		st := aggState{
			count: record.Attr(h.rec, aggregate.AttrCount),
			sum:   record.Attr(h.rec, aggregate.AttrSum),
			min:   record.Attr(h.rec, aggregate.AttrMin),
			max:   record.Attr(h.rec, aggregate.AttrMax),
		}
		for {
			ok, err := advance(h)
			if err != nil {
				return err
			}
			if ok {
				heap.Push(h)
			}
			if heap.Len() == 0 || heap.Peek().key != key {
				break
			}
			h = heap.Pop()
			st.count += record.Attr(h.rec, aggregate.AttrCount)
			st.sum += record.Attr(h.rec, aggregate.AttrSum)
			if v := record.Attr(h.rec, aggregate.AttrMin); v < st.min {
				st.min = v
			}
			if v := record.Attr(h.rec, aggregate.AttrMax); v > st.max {
				st.max = v
			}
		}
		fillAggRecord(buf, key, &st)
		if err := emit(buf); err != nil {
			return err
		}
	}
	return nil
}

// fillAggRecord renders one group's aggregates in the result layout
// shared with the sort-based GroupBy.
func fillAggRecord(buf []byte, key uint64, st *aggState) {
	for i := range buf {
		buf[i] = 0
	}
	record.SetAttr(buf, aggregate.AttrGroupKey, key)
	record.SetAttr(buf, aggregate.AttrCount, st.count)
	record.SetAttr(buf, aggregate.AttrSum, st.sum)
	record.SetAttr(buf, aggregate.AttrMin, st.min)
	record.SetAttr(buf, aggregate.AttrMax, st.max)
}

func (h *HashAggregate) Next(context.Context) (*Batch, error) {
	if h.sc != nil {
		return h.sc.next()
	}
	if h.out == nil || h.pos >= len(h.keys) {
		return nil, io.EOF
	}
	n := 0
	for n < len(h.out.views) && h.pos < len(h.keys) {
		k := h.keys[h.pos]
		fillAggRecord(h.out.views[n], k, h.groups[k])
		h.pos++
		n++
	}
	h.out.Recs = h.out.views[:n]
	return h.out, nil
}

// limitHint caps the reads of the merged spill result; the in-memory
// path serves from DRAM and needs no cap.
func (h *HashAggregate) limitHint(n int) {
	if h.sc != nil {
		h.sc.limit(n)
	}
}

// source exposes the merged spill result to blocking parents so they
// consume it directly instead of re-draining it into a pipe temporary
// (one saved write+read of the whole aggregate output). The in-memory
// path has no device-side materialization to share.
func (h *HashAggregate) source() (storage.Collection, bool) { return h.merged, h.merged != nil }

func (h *HashAggregate) Close() error {
	var first error
	if h.sc != nil {
		first = h.sc.Close()
		h.sc = nil
	}
	if h.merged != nil {
		if err := h.merged.Destroy(); err != nil && first == nil {
			first = err
		}
		h.merged = nil
	}
	for _, r := range h.spills {
		if err := r.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	h.spills = nil
	h.groups, h.keys = nil, nil
	if err := h.child.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
