package exec

import (
	"context"
	"errors"
	"io"
	"testing"

	"wlpm/internal/record"
)

// The fused filter view walks arbitrarily many base records per call —
// its count pass scans the whole base and a selective predicate makes a
// single iterator Next unbounded — so both loops must poll the run's
// context like any kernel loop (the wlvet/ctxpoll contract).

// fuseFilter opens a Filter-over-Table plan and fuses it under ctx.
func fuseFilter(t *testing.T, ctx context.Context, n int, pred Predicate) (*filterView, func()) {
	t.Helper()
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(n, 21, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	ec := r.ctx(int64(n)*record.Size, 1)
	root, _, err := Compile(ec, Table(in).Filter(pred))
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Open(context.Background(), ec); err != nil {
		t.Fatal(err)
	}
	c, ok, err := fuseView(ctx, root)
	if err != nil {
		root.Close() //nolint:errcheck
		t.Fatalf("fuseView: %v", err)
	}
	if !ok {
		root.Close() //nolint:errcheck
		t.Fatal("filter over a table did not fuse")
	}
	v, ok := c.(*filterView)
	if !ok {
		root.Close() //nolint:errcheck
		t.Fatalf("fused collection is %T, want *filterView", c)
	}
	return v, func() { root.Close() } //nolint:errcheck
}

// TestFuseCountPollsCancellation: the eager count scan must stop once
// the context is cancelled instead of reading the base to the end.
func TestFuseCountPollsCancellation(t *testing.T) {
	r := newRig(t)
	in := r.create(t, "in", record.Size)
	if err := record.Generate(4000, 21, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	ec := r.ctx(4000*record.Size, 1)
	root, _, err := Compile(ec, Table(in).Filter(Predicate{Attr: 1, Op: Gt, Value: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Open(context.Background(), ec); err != nil {
		t.Fatal(err)
	}
	defer root.Close() //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := fuseView(ctx, root); !errors.Is(err, context.Canceled) {
		t.Fatalf("fuseView under a cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestFuseScanPollsCancellation: a fused view's iterator must surface
// cancellation mid-scan even when the predicate never matches (the
// unbounded-Next case).
func TestFuseScanPollsCancellation(t *testing.T) {
	// Predicate matching nothing: one Next call walks the entire base.
	v, done := fuseFilter(t, context.Background(), 4000, Predicate{Attr: 1, Op: Gt, Value: 1 << 60})
	defer done()
	if v.Len() != 0 {
		t.Fatalf("predicate unexpectedly matched %d records", v.Len())
	}

	ctx, cancel := context.WithCancel(context.Background())
	v.ctx = ctx // re-arm the view with a cancellable context for the scan
	it := v.Scan()
	defer it.Close() //nolint:errcheck
	cancel()
	if _, err := it.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next on a cancelled scan: err = %v, want context.Canceled", err)
	}
}

// TestFuseScanCleanCompletion: polling must not disturb a clean scan.
func TestFuseScanCleanCompletion(t *testing.T) {
	v, done := fuseFilter(t, context.Background(), 1000, Predicate{Attr: 1, Op: Gt, Value: 1})
	defer done()
	it := v.Scan()
	defer it.Close() //nolint:errcheck
	n := 0
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != v.Len() {
		t.Fatalf("scan yielded %d records, Len reports %d", n, v.Len())
	}
}
