package exec

import (
	"sort"

	"wlpm/internal/record"
)

// Join-order optimization: the written plan joins in whatever order the
// query author nested the Join calls, but every join in a chain is an
// equi-join on attribute 0 of each side — one shared key domain — so the
// leaves can be joined in any order without changing the result multiset.
// The planner rebuilds each fully-unpinned join chain as a right-deep
// spine over the leaves sorted by estimated cardinality: the smallest
// inputs become the build sides (t of the cost model), which is what the
// paper's join costs are most sensitive to. Because concatenation is
// associative, the output column layout depends only on the leaf order;
// when that order changes, a zero-write compensating projection (fused
// into the consumer like any Filter/Project chain) restores the written
// layout, so downstream operators and the final schema are unaffected.
// Row order of a bare join result may differ from the written-order
// plan's — exactly as it already differs between physical join
// algorithms — and is canonicalized by any OrderBy/GroupBy above.

// reorderJoins rewrites every maximal unpinned join chain of the plan
// smallest-build-first. Chains containing a pinned join algorithm are
// left exactly as written: a pinned choice is an instruction, and
// rebuilding the tree around it would silently change its inputs.
func (c *compiler) reorderJoins(p *Plan) *Plan {
	if p == nil || p.err != nil {
		return p
	}
	if p.kind == planJoin && p.joinA == nil {
		if leaves, rightDeep, ok := flattenJoinChain(p); ok {
			rewritten := make([]*Plan, len(leaves))
			changed := false
			for i, l := range leaves {
				rewritten[i] = c.reorderJoins(l)
				changed = changed || rewritten[i] != l
			}
			return c.rebuildChain(p, rewritten, rightDeep && !changed)
		}
	}
	if p.left == nil && p.right == nil {
		return p
	}
	d := *p
	d.left = c.reorderJoins(p.left)
	d.right = c.reorderJoins(p.right)
	if d.left == p.left && d.right == p.right {
		return p
	}
	return &d
}

// flattenJoinChain collects the chain's leaves in written (left-to-right)
// order. ok is false when any join in the chain pins its algorithm;
// rightDeep reports whether the written tree is already the spine shape
// the rebuild produces.
func flattenJoinChain(p *Plan) (leaves []*Plan, rightDeep, ok bool) {
	if p.kind != planJoin {
		return []*Plan{p}, true, true
	}
	if p.joinA != nil {
		return nil, false, false
	}
	l, _, ok := flattenJoinChain(p.left)
	if !ok {
		return nil, false, false
	}
	r, rdRight, ok := flattenJoinChain(p.right)
	if !ok {
		return nil, false, false
	}
	return append(l, r...), p.left.kind != planJoin && rdRight, true
}

// rebuildChain re-nests the chain as a right-deep spine over the leaves
// sorted ascending by estimated rows (stable, so ties keep the written
// order), adding a compensating projection when the leaf order changed.
// identity short-circuits to the original node when the sorted order and
// tree shape already match the written plan.
func (c *compiler) rebuildChain(orig *Plan, leaves []*Plan, identity bool) *Plan {
	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	rows := make([]int, len(leaves))
	for i, l := range leaves {
		rows[i] = c.estimateNode(l).rows
	}
	sort.SliceStable(order, func(a, b int) bool { return rows[order[a]] < rows[order[b]] })
	permuted := false
	for i, o := range order {
		if i != o {
			permuted = true
			break
		}
	}
	if !permuted && identity {
		return orig
	}
	if permuted && !projectable(leaves) {
		// A leaf's record is not attribute-aligned, so no projection can
		// restore the written layout: keep the written order.
		permuted = false
		for i := range order {
			order[i] = i
		}
		if identity {
			return orig
		}
	}
	spine := leaves[order[len(order)-1]]
	for i := len(order) - 2; i >= 0; i-- {
		spine = &Plan{kind: planJoin, left: leaves[order[i]], right: spine}
	}
	if !permuted {
		spine.hint = orig.hint
		return spine
	}
	c.reordered = true
	proj := &Plan{kind: planProject, left: spine, attrs: compensatingAttrs(leaves, order)}
	// A GroupHint set on the join result must stay visible to the nearest
	// group-by above, which reads its input node's hint.
	proj.hint = orig.hint
	return proj
}

// projectable reports whether every leaf's record splits into whole
// 8-byte attributes, the precondition of the compensating projection.
func projectable(leaves []*Plan) bool {
	for _, l := range leaves {
		if planRecordSize(l)%record.AttrSize != 0 {
			return false
		}
	}
	return true
}

// compensatingAttrs maps the reordered concatenation back to the written
// layout: for each leaf in written order, its attributes at their offset
// within the new leaf order.
func compensatingAttrs(leaves []*Plan, order []int) []int {
	width := func(i int) int { return planRecordSize(leaves[i]) / record.AttrSize }
	offset := make([]int, len(leaves)) // attribute offset of each leaf in the new layout
	at := 0
	for _, o := range order {
		offset[o] = at
		at += width(o)
	}
	attrs := make([]int, 0, at)
	for i := range leaves {
		for a := 0; a < width(i); a++ {
			attrs = append(attrs, offset[i]+a)
		}
	}
	return attrs
}

// planRecordSize is the byte width of the node's output records,
// computed logically (0 when a construction error makes it undefined).
func planRecordSize(p *Plan) int {
	if p == nil || p.err != nil {
		return 0
	}
	switch p.kind {
	case planScan:
		return p.col.RecordSize()
	case planProject:
		return len(p.attrs) * record.AttrSize
	case planJoin:
		return planRecordSize(p.left) + planRecordSize(p.right)
	case planGroupBy:
		return record.Size
	default:
		return planRecordSize(p.left)
	}
}
