package exec

import (
	"context"
	"io"

	"wlpm/internal/storage"
)

// DefaultBatchSize is the records-per-Next window operators use when the
// context does not set one. ~1K records keeps the per-batch costs
// (virtual dispatch, context polls, selection branches) three orders of
// magnitude below the per-record work while the window of an 80-byte
// schema still fits comfortably in L2.
const DefaultBatchSize = 1024

// Batch is the unit of exchange of the vectorized Operator contract: a
// window of up to Ctx.BatchSize records in stream order. Batches are
// never empty — an exhausted stream returns io.EOF instead.
//
// Ownership: the producing operator owns the batch. Recs and the bytes
// they point into are only valid until the producer's next Next or Close
// call; consumers copy what they retain. Streaming operators are allowed
// to alias their child's batch (Filter and Limit return selection views
// into the child's records), so the window a consumer holds may reach
// all the way down to a scan's block buffer — the rule is the same
// either way: one live batch per operator, invalidated by the next pull.
type Batch struct {
	// Recs holds the record views of the batch, in stream order.
	Recs [][]byte

	views [][]byte // capacity-strided views over buf for owned batches
	buf   []byte
}

// Len is the number of records in the batch.
func (b *Batch) Len() int { return len(b.Recs) }

// newBatch returns an owned batch backed by its own buffer, holding up
// to n records of recSize bytes.
func newBatch(recSize, n int) *Batch {
	if n < 1 {
		n = 1
	}
	b := &Batch{buf: make([]byte, recSize*n), views: make([][]byte, n)}
	for i := range b.views {
		b.views[i] = b.buf[i*recSize : (i+1)*recSize]
	}
	return b
}

// limitHinted is the optional operator extension behind Limit: the hint
// promises that at most n more records will be consumed from the
// operator, so hinted producers stop fetching input past the n-th record
// and the engine's simulated reads match the record-at-a-time engine,
// which stops pulling lazily. Operators whose output maps 1:1 onto a
// source (Scan, Project, the blocking operators' materialized results)
// propagate the hint; Filter re-hints its child before every pull with
// the records still needed, which bounds — but cannot byte-exactly
// match — the lazy engine's read-ahead.
type limitHinted interface {
	limitHint(n int)
}

// hintLimit forwards a limit hint to op if it accepts one.
func hintLimit(op Operator, n int) {
	if h, ok := op.(limitHinted); ok {
		h.limitHint(n)
	}
}

// batchScanner adapts a storage iterator to batch-valued pulls: the
// shared Next implementation of every operator that streams a
// materialized collection (Scan, Materialize, OrderBy, GroupBy, Join,
// the spilled HashAggregate). When the iterator supports chunked reads
// the batch aliases the iterator's block buffer — zero per-record
// copies; otherwise records are copied into an owned batch.
type batchScanner struct {
	it        storage.Iterator
	ch        storage.ChunkIterator // non-nil: zero-copy fast path
	view      Batch                 // wraps chunked views
	owned     *Batch                // lazily allocated copying fallback
	recSize   int
	size      int // max records per batch
	remaining int // records still wanted under a limit hint; -1 unbounded
}

func newBatchScanner(it storage.Iterator, recSize, batchSize int) *batchScanner {
	if batchSize < 1 {
		batchSize = 1
	}
	s := &batchScanner{it: it, recSize: recSize, size: batchSize, remaining: -1}
	if ch, ok := it.(storage.ChunkIterator); ok {
		s.ch = ch
	}
	return s
}

// limit caps the scanner at n more records from now; the cap replaces
// any earlier one (parents re-hint as their own demand shrinks).
func (s *batchScanner) limit(n int) {
	if n >= 0 {
		s.remaining = n
	}
}

func (s *batchScanner) next() (*Batch, error) {
	if s.it == nil || s.remaining == 0 {
		return nil, io.EOF
	}
	max := s.size
	if s.remaining > 0 && s.remaining < max {
		max = s.remaining
	}
	if s.ch != nil {
		recs, err := s.ch.NextChunk(max)
		if err != nil {
			return nil, err
		}
		if s.remaining > 0 {
			s.remaining -= len(recs)
		}
		s.view.Recs = recs
		return &s.view, nil
	}
	if s.owned == nil {
		s.owned = newBatch(s.recSize, s.size)
	}
	n := 0
	for n < max {
		rec, err := s.it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		copy(s.owned.views[n], rec)
		n++
	}
	if n == 0 {
		return nil, io.EOF
	}
	if s.remaining > 0 {
		s.remaining -= n
	}
	s.owned.Recs = s.owned.views[:n]
	return s.owned, nil
}

// Close closes the underlying iterator; further pulls return io.EOF.
func (s *batchScanner) Close() error {
	if s.it == nil {
		return nil
	}
	it := s.it
	s.it, s.ch = nil, nil
	return it.Close()
}

// Cursor adapts the batch contract back to record-at-a-time pulls: the
// compatibility shim for record-level consumers (the façade's Rows
// cursor, and any caller migrating from the pre-batch Operator
// interface). The record returned by Next is owned by the operator's
// current batch and only valid until the following call.
type Cursor struct {
	op Operator
	b  *Batch
	i  int
}

// NewCursor wraps an opened operator in a record-level cursor.
func NewCursor(op Operator) *Cursor { return &Cursor{op: op} }

// Next returns the next record, io.EOF at the end of the stream, or the
// context's error once ctx is cancelled.
func (c *Cursor) Next(ctx context.Context) ([]byte, error) {
	for c.b == nil || c.i >= c.b.Len() {
		b, err := c.op.Next(ctx)
		if err != nil {
			return nil, err
		}
		//lint:allow wlvet/batchown cursor contract: the held batch is valid until the next Next call, which replaces it before pulling again
		c.b, c.i = b, 0
	}
	rec := c.b.Recs[c.i]
	c.i++
	return rec, nil
}
