// Package exec is the pipelined query-execution engine layered over the
// paper's operators: a Volcano-style batch-iterator tree of physical
// operators (scan, filter, project, limit, order-by, group-by, join,
// materialize) over storage collections, a small logical-plan builder,
// and a physical planner that consults the internal/cost model — device
// λ, per-stage memory budget, input cardinalities — to choose among the
// write-limited sort and join variants (and place their write-intensity
// knobs) instead of requiring the caller to name an algorithm.
//
// Non-blocking operators (Filter, Project, Limit) stream records without
// touching the device, so a pipelined plan writes strictly fewer
// cachelines than the naive compose-by-materializing sequence of the
// same operators. Blocking operators (OrderBy, GroupBy, Join) share the
// plan's DRAM budget M through the marginal-benefit allocator (see
// budget.go): each stage's share is sized by how much its cost curve
// bends, with the even split as a guaranteed-no-worse fallback, and
// shares are re-split at Open time when actual cardinalities diverge
// from the estimates. Every stage inherits the plan's Parallelism, so
// the partition-parallel execution of the underlying algorithms carries
// over to whole pipelines.
package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/stats"
	"wlpm/internal/storage"
)

// Operator is one node of a physical plan: a pull-based stream of
// record batches in the vectorized Volcano style. Each Next returns a
// non-empty window of up to Ctx.BatchSize records, amortizing virtual
// dispatch, context polls and predicate branches over the whole window;
// the batch (and every record view in it) is only valid until the
// operator's following Next or Close — see Batch for the ownership
// rules. Operators are single-owner and not safe for concurrent use —
// parallelism lives inside the blocking operators' algorithms, not
// between operators. Record-level consumers pull through a Cursor.
//
// Both Open and Next take the run's cancellation context: blocking
// operators hand it (through their stage environments) to the sort and
// join algorithms, which poll it between batches, and streaming
// operators forward it down the pull chain, so a cancelled query stops
// mid-sort, mid-merge or mid-probe instead of running to completion.
type Operator interface {
	// Name renders the operator (with its physical algorithm choice, if
	// any) for plan display.
	Name() string
	// RecordSize is the byte width of the records this operator emits.
	RecordSize() int
	// Children returns the input operators, left to right.
	Children() []Operator
	// Open prepares the stream. Blocking operators do their work here,
	// honouring ctx cancellation.
	Open(ctx context.Context, ec *Ctx) error
	// Next returns the next batch of records, or io.EOF when exhausted,
	// or the context's error once ctx is cancelled. Batches are never
	// empty and never exceed Ctx.BatchSize records.
	Next(ctx context.Context) (*Batch, error)
	// Close releases resources (temporaries, iterators) and closes the
	// children. Close is idempotent.
	Close() error
}

// memoryConsumer marks blocking operators that claim an equal share of
// the plan's memory budget. Materialize is deliberately not one: it
// breaks the pipeline but holds no working state beyond one record.
type memoryConsumer interface {
	consumesMemory() bool
}

// collectionSource is implemented by operators whose whole output
// already exists as a storage collection once Open returns: Scan (the
// base collection) and the blocking operators (their materialized
// result). Blocking parents use it to hand the collection straight to a
// sort/join algorithm instead of copying the stream.
type collectionSource interface {
	source() (storage.Collection, bool)
}

// directEmitter is implemented by blocking operators that can write
// their result straight into the caller's output collection, saving the
// temp-then-copy writes when they sit at the plan root.
type directEmitter interface {
	emitTo(ctx context.Context, ec *Ctx, out storage.Collection) error
}

// Ctx is the execution context of one plan run: the persistence layer,
// the total DRAM budget M shared by the plan's blocking stages, and the
// worker parallelism P handed to each stage's algorithm environment.
type Ctx struct {
	Factory      storage.Factory
	MemoryBudget int64
	Parallelism  int
	// BatchSize is the records-per-batch window of the run's operators;
	// 0 means DefaultBatchSize. 1 degenerates to record-at-a-time
	// execution — same output, same simulated device traffic, none of
	// the amortization.
	BatchSize int
	// Stats supplies per-table column statistics to the physical planner
	// (selectivities, group counts, join cardinalities, join ordering).
	// Nil planning falls back to the textbook defaults.
	Stats stats.Provider

	stages  int       // blocking stages sharing the budget (≥ 1)
	scratch *algo.Env // root environment: temp tracking + cancellation ctx
}

// NewCtx builds a context. The budget is the whole plan's M; Run divides
// it among the blocking stages it finds in the operator tree.
func NewCtx(fac storage.Factory, memoryBudget int64, parallelism int) *Ctx {
	return &Ctx{Factory: fac, MemoryBudget: memoryBudget, Parallelism: parallelism}
}

func (c *Ctx) validate() error {
	if c.Factory == nil {
		return fmt.Errorf("exec: nil storage factory")
	}
	if c.MemoryBudget <= 0 {
		return fmt.Errorf("exec: memory budget must be positive, got %d", c.MemoryBudget)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("exec: parallelism must be non-negative, got %d", c.Parallelism)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("exec: batch size must be non-negative, got %d", c.BatchSize)
	}
	return nil
}

// batchSize resolves the run's records-per-batch window.
func (c *Ctx) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// init counts the blocking stages of the tree rooted at op so StageEnv
// can split the budget, and binds the run's cancellation context to the
// root environment every stage environment derives from. Idempotent per
// run.
func (c *Ctx) init(ctx context.Context, root Operator) error {
	if err := c.validate(); err != nil {
		return err
	}
	c.stages = countConsumers(root)
	if c.stages < 1 {
		c.stages = 1
	}
	c.scratch = algo.NewParallelEnv(c.Factory, c.MemoryBudget, c.Parallelism).WithContext(ctx)
	return nil
}

func countConsumers(op Operator) int {
	n := 0
	if m, ok := op.(memoryConsumer); ok && m.consumesMemory() {
		n++
	}
	for _, ch := range op.Children() {
		n += countConsumers(ch)
	}
	return n
}

// Stages reports the number of blocking stages found by the last run
// (for display; 0 before any run).
func (c *Ctx) Stages() int { return c.stages }

// StageBudget is the even per-blocking-stage share of the plan budget —
// the fallback for operators built without the planner's allocation.
// Floored at two persistence-layer buffers (one fan-in plus one output
// buffer, matching algo.Env.BudgetBuffers): the old 1-byte floor
// admitted shares no algorithm could actually run at, so hash caps and
// merge fan-ins were computed from a budget the engine then ignored.
func (c *Ctx) StageBudget() int64 {
	stages := c.stages
	if stages < 1 {
		stages = 1
	}
	share := c.MemoryBudget / int64(stages)
	if floor := 2 * int64(c.Factory.BlockSize()); share < floor {
		share = floor
	}
	return share
}

// StageEnv builds the execution environment of one blocking stage at the
// even split, carrying the plan parallelism, the run's cancellation
// context and the shared temp tracker.
func (c *Ctx) StageEnv() *algo.Env {
	return c.tempEnv().Derive(c.StageBudget())
}

// StageEnvFor is StageEnv at the stage's allocated share: blocking
// operators compiled by the planner carry their runtimeChoice, whose
// share the budget allocator sized (and Open-time re-splitting may have
// moved). Operators without one fall back to the even split.
func (c *Ctx) StageEnvFor(rc *runtimeChoice) *algo.Env {
	if share := rc.stageShare(); share > 0 {
		return c.tempEnv().Derive(share)
	}
	return c.StageEnv()
}

// tempEnv is the environment non-consuming operators (Materialize,
// stream drains) allocate temporaries from.
func (c *Ctx) tempEnv() *algo.Env {
	if c.scratch == nil {
		c.scratch = algo.NewParallelEnv(c.Factory, c.MemoryBudget, c.Parallelism)
	}
	return c.scratch
}

// LiveTemps reports the temporary collections of the last run that are
// still alive — zero after a clean run or sweep (leak tests assert it).
func (c *Ctx) LiveTemps() int {
	if c.scratch == nil {
		return 0
	}
	return c.scratch.LiveTemps()
}

// SweepTemps destroys every temporary the last run left behind. Run and
// the Rows cursor call it on error and cancellation paths; an aborted
// plan therefore leaks no spill, partition or pipe collections even when
// the failure struck mid-phase inside an algorithm.
func (c *Ctx) SweepTemps() error {
	if c.scratch == nil {
		return nil
	}
	return c.scratch.SweepTemps()
}

// Bind prepares the context for an incremental (cursor-driven) run of
// the plan rooted at root: it validates the configuration, counts the
// blocking stages that will share the budget and attaches ctx to the
// root environment. Callers then Open the root themselves and pull it
// record by record — the streaming shape of the façade's Rows cursor.
func (c *Ctx) Bind(ctx context.Context, root Operator) error {
	return c.init(ctx, root)
}

// Run executes the plan rooted at root, appending its stream to out (in
// stream order) and closing both the tree and out. It is RunCtx without
// cancellation.
func Run(ec *Ctx, root Operator, out storage.Collection) error {
	//lint:allow wlvet/ctxparam pre-context compat entry point; RunCtx is the real API
	return RunCtx(context.Background(), ec, root, out)
}

// RunCtx executes the plan rooted at root under ctx, appending its
// stream to out (in stream order) and closing both the tree and out. out
// must be empty and match the root's record size. When the root is a
// blocking operator it emits directly into out, avoiding a final
// temp-and-copy. On error — including cancellation — the operator tree
// is closed and every temporary the run created is destroyed.
func RunCtx(ctx context.Context, ec *Ctx, root Operator, out storage.Collection) error {
	if err := ec.init(ctx, root); err != nil {
		return err
	}
	if out == nil {
		return fmt.Errorf("exec: nil output collection")
	}
	if out.RecordSize() != root.RecordSize() {
		return fmt.Errorf("exec: output record size %d, plan emits %d", out.RecordSize(), root.RecordSize())
	}
	if out.Len() != 0 {
		return fmt.Errorf("exec: output collection %q not empty", out.Name())
	}
	fail := func(err error) error {
		root.Close()    //nolint:errcheck // best-effort cleanup after failure
		ec.SweepTemps() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	if e, ok := root.(directEmitter); ok {
		if err := e.emitTo(ctx, ec, out); err != nil {
			return fail(err)
		}
		if err := root.Close(); err != nil {
			return err
		}
		return out.Close()
	}
	if err := root.Open(ctx, ec); err != nil {
		return fail(err)
	}
	if err := drain(ctx, root, out.Append); err != nil {
		return fail(err)
	}
	if err := root.Close(); err != nil {
		return err
	}
	return out.Close()
}

// drain pulls op until EOF, feeding each record of each batch to emit
// and polling ctx once per batch.
func drain(ctx context.Context, op Operator, emit func(rec []byte) error) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := op.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for _, rec := range b.Recs {
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
}

// inputCollection opens child and returns its whole output as a storage
// collection: directly when the child's output already lives on storage
// (Scan, blocking children), as a re-scannable zero-write view when the
// child is a Filter/Project chain over such a source (see fuseView),
// and otherwise by draining the stream into a temporary. The returned
// cleanup destroys the temporary (it is a no-op for direct collections
// and views) and must be called once the collection has been consumed;
// the child itself is closed by the caller's Close.
func inputCollection(ctx context.Context, ec *Ctx, child Operator) (storage.Collection, func() error, error) {
	if err := child.Open(ctx, ec); err != nil {
		return nil, nil, err
	}
	if c, ok, err := fuseView(ctx, child); err != nil {
		return nil, nil, err
	} else if ok {
		return c, func() error { return nil }, nil
	}
	tmp, err := ec.tempEnv().CreateTemp("pipe", child.RecordSize())
	if err != nil {
		return nil, nil, err
	}
	if err := drain(ctx, child, tmp.Append); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return nil, nil, err
	}
	if err := tmp.Close(); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return nil, nil, err
	}
	return tmp, tmp.Destroy, nil
}

// closeAll closes every operator, keeping the first error.
func closeAll(ops ...Operator) error {
	var first error
	for _, op := range ops {
		if op == nil {
			continue
		}
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
