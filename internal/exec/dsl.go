// Plan DSL: a pipe syntax for small query plans, parsed into logical
// Plans for cmd/wlquery.
//
// Grammar (whitespace-insensitive; '|' pipes stages left to right):
//
//	plan    := 'scan(' NAME ')' { '|' stage }
//	stage   := 'filter(' attr OP UINT ')'
//	         | 'project(' attr { ',' attr } ')'
//	         | 'join(' plan [ ';' join_algo ] ')'
//	         | 'groupby(' attr [ ',' 'groups' '=' UINT ] [ ';' sort_algo ] ')'
//	         | 'orderby' [ '(' sort_algo ')' ]
//	         | 'limit(' UINT ')'
//	attr    := 'a' DIGIT+                 (a0 is the key)
//	OP      := '==' | '!=' | '<' | '<=' | '>' | '>='
//	sort_algo := 'ExMS' | 'SelS' | 'LaS' | 'SegS:' X | 'HybS:' X
//	join_algo := 'NLJ' | 'HJ' | 'GJ' | 'LaJ' | 'SegJ:' X | 'HybJ:' X ':' Y
//
// Stages that omit the algorithm leave the choice to the physical
// planner. The scan starting the plan is the join build side — put the
// smaller table there. Example:
//
//	scan(dim) | join(scan(fact)) | project(a0,a3,a2,a3,a4,a5,a6,a7,a8,a9)
//	  | groupby(a3, groups=1000) | orderby | limit(10)
package exec

import (
	"fmt"
	"strconv"
	"strings"

	"wlpm/internal/joins"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// TableLookup resolves a DSL table name to its collection.
type TableLookup func(name string) (storage.Collection, error)

// ParsePlan parses the plan DSL, resolving table names through lookup.
func ParsePlan(src string, lookup TableLookup) (*Plan, error) {
	stages, err := splitTop(src, '|')
	if err != nil {
		return nil, err
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("exec: empty plan")
	}
	var p *Plan
	for i, st := range stages {
		st = strings.TrimSpace(st)
		name, arg, err := splitCall(st)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if name != "scan" {
				return nil, fmt.Errorf("exec: plan must start with scan(...), got %q", st)
			}
		} else if name == "scan" {
			return nil, fmt.Errorf("exec: scan(...) only starts a plan")
		}
		p, err = applyStage(p, name, arg, lookup)
		if err != nil {
			return nil, err
		}
	}
	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

func applyStage(p *Plan, name, arg string, lookup TableLookup) (*Plan, error) {
	switch name {
	case "scan":
		c, err := lookup(strings.TrimSpace(arg))
		if err != nil {
			return nil, err
		}
		return Table(c), nil

	case "filter":
		pred, err := parsePredicate(arg)
		if err != nil {
			return nil, err
		}
		return p.Filter(pred), nil

	case "project":
		parts := strings.Split(arg, ",")
		attrs := make([]int, 0, len(parts))
		for _, part := range parts {
			a, err := parseAttr(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		}
		return p.Project(attrs...), nil

	case "join":
		sub, algoName, err := splitAlgoSuffix(arg)
		if err != nil {
			return nil, err
		}
		right, err := ParsePlan(sub, lookup)
		if err != nil {
			return nil, err
		}
		var a joins.Algorithm
		if algoName != "" {
			if a, err = ParseJoinAlgorithm(algoName); err != nil {
				return nil, err
			}
		}
		return p.JoinWith(right, a), nil

	case "groupby":
		sub, algoName, err := splitAlgoSuffix(arg)
		if err != nil {
			return nil, err
		}
		var a sorts.Algorithm
		if algoName != "" {
			if a, err = ParseSortAlgorithm(algoName); err != nil {
				return nil, err
			}
		}
		parts := strings.Split(sub, ",")
		attr, err := parseAttr(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		groups := 0
		for _, part := range parts[1:] {
			part = strings.TrimSpace(part)
			val, ok := strings.CutPrefix(part, "groups=")
			if !ok {
				return nil, fmt.Errorf("exec: bad groupby option %q (want groups=N)", part)
			}
			if groups, err = strconv.Atoi(strings.TrimSpace(val)); err != nil || groups <= 0 {
				return nil, fmt.Errorf("exec: bad group count %q", val)
			}
		}
		if groups > 0 {
			p = p.GroupHint(groups)
		}
		return p.GroupByWith(attr, a), nil

	case "orderby":
		if strings.TrimSpace(arg) == "" {
			return p.OrderBy(), nil
		}
		a, err := ParseSortAlgorithm(strings.TrimSpace(arg))
		if err != nil {
			return nil, err
		}
		return p.OrderByWith(a), nil

	case "limit":
		n, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("exec: bad limit %q", arg)
		}
		return p.Limit(n), nil
	}
	return nil, fmt.Errorf("exec: unknown stage %q", name)
}

// SortAlgorithms lists the DSL sort-algorithm spellings.
var SortAlgorithms = []string{"ExMS", "SelS", "LaS", "SegS:<x>", "HybS:<x>"}

// ParseSortAlgorithm parses a DSL sort-algorithm name.
func ParseSortAlgorithm(s string) (sorts.Algorithm, error) {
	name, knobs, err := parseKnobs(s, map[string]int{"ExMS": 0, "SelS": 0, "LaS": 0, "SegS": 1, "HybS": 1})
	if err != nil {
		return nil, fmt.Errorf("%w (sorts: %s)", err, strings.Join(SortAlgorithms, " "))
	}
	switch name {
	case "ExMS":
		return sorts.NewExternalMergeSort(), nil
	case "SelS":
		return sorts.NewSelectionSort(), nil
	case "LaS":
		return sorts.NewLazySort(), nil
	case "SegS":
		return sorts.NewSegmentSort(knobs[0]), nil
	case "HybS":
		return sorts.NewHybridSort(knobs[0]), nil
	}
	panic("unreachable")
}

// JoinAlgorithms lists the DSL join-algorithm spellings.
var JoinAlgorithms = []string{"NLJ", "HJ", "GJ", "LaJ", "SegJ:<x>", "HybJ:<x>:<y>"}

// ParseJoinAlgorithm parses a DSL join-algorithm name.
func ParseJoinAlgorithm(s string) (joins.Algorithm, error) {
	name, knobs, err := parseKnobs(s, map[string]int{"NLJ": 0, "HJ": 0, "GJ": 0, "LaJ": 0, "SegJ": 1, "HybJ": 2})
	if err != nil {
		return nil, fmt.Errorf("%w (joins: %s)", err, strings.Join(JoinAlgorithms, " "))
	}
	switch name {
	case "NLJ":
		return joins.NewNestedLoops(), nil
	case "HJ":
		return joins.NewHash(), nil
	case "GJ":
		return joins.NewGrace(), nil
	case "LaJ":
		return joins.NewLazyHash(), nil
	case "SegJ":
		return joins.NewSegmentedGrace(knobs[0]), nil
	case "HybJ":
		return joins.NewHybridGraceNL(knobs[0], knobs[1]), nil
	}
	panic("unreachable")
}

// parseKnobs splits "Name:k1:k2" and validates the knob count against
// arity and each knob against [0, 1].
func parseKnobs(s string, arity map[string]int) (string, []float64, error) {
	parts := strings.Split(s, ":")
	name := strings.TrimSpace(parts[0])
	want, ok := arity[name]
	if !ok {
		return "", nil, fmt.Errorf("exec: unknown algorithm %q", name)
	}
	if len(parts)-1 != want {
		return "", nil, fmt.Errorf("exec: algorithm %q takes %d knob(s), got %d", name, want, len(parts)-1)
	}
	knobs := make([]float64, 0, want)
	for _, ks := range parts[1:] {
		k, err := strconv.ParseFloat(strings.TrimSpace(ks), 64)
		if err != nil || k < 0 || k > 1 {
			return "", nil, fmt.Errorf("exec: bad knob %q (want a fraction in [0, 1])", ks)
		}
		knobs = append(knobs, k)
	}
	return name, knobs, nil
}

// parsePredicate parses "aN OP VALUE".
func parsePredicate(s string) (Predicate, error) {
	s = strings.TrimSpace(s)
	for _, op := range []struct {
		tok string
		op  CmpOp
	}{ // two-char operators first so "<=" doesn't parse as "<"
		{"==", Eq}, {"!=", Ne}, {"<=", Le}, {">=", Ge}, {"<", Lt}, {">", Gt},
	} {
		if i := strings.Index(s, op.tok); i >= 0 {
			attr, err := parseAttr(strings.TrimSpace(s[:i]))
			if err != nil {
				return Predicate{}, err
			}
			v, err := strconv.ParseUint(strings.TrimSpace(s[i+len(op.tok):]), 10, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("exec: bad predicate value in %q", s)
			}
			return Predicate{Attr: attr, Op: op.op, Value: v}, nil
		}
	}
	return Predicate{}, fmt.Errorf("exec: bad predicate %q (want aN OP value)", s)
}

// parseAttr parses "aN".
func parseAttr(s string) (int, error) {
	num, ok := strings.CutPrefix(s, "a")
	if !ok {
		return 0, fmt.Errorf("exec: bad attribute %q (want aN)", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("exec: bad attribute %q (want aN)", s)
	}
	return n, nil
}

// splitCall splits "name(arg)" or bare "name" into its parts, validating
// balanced parentheses.
func splitCall(s string) (name, arg string, err error) {
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("exec: unbalanced parentheses in %q", s)
	}
	body := s[i+1 : len(s)-1]
	depth := 0
	for _, r := range body {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return "", "", fmt.Errorf("exec: unbalanced parentheses in %q", s)
			}
		}
	}
	if depth != 0 {
		return "", "", fmt.Errorf("exec: unbalanced parentheses in %q", s)
	}
	return strings.TrimSpace(s[:i]), body, nil
}

// splitTop splits s on sep at parenthesis depth zero.
func splitTop(s string, sep byte) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("exec: unbalanced parentheses in %q", s)
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("exec: unbalanced parentheses in %q", s)
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// splitAlgoSuffix splits "body; algo" at top level, returning body and
// the optional algorithm name.
func splitAlgoSuffix(s string) (body, algoName string, err error) {
	parts, err := splitTop(s, ';')
	if err != nil {
		return "", "", err
	}
	switch len(parts) {
	case 1:
		return strings.TrimSpace(parts[0]), "", nil
	case 2:
		return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
	}
	return "", "", fmt.Errorf("exec: more than one ';' in %q", s)
}
