package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// OrderBy sorts its input by the record total order (key attribute,
// full-byte tiebreak) with one of the paper's sort algorithms. Blocking:
// it claims one stage share of the plan budget, materializes its child
// if the child is not already a collection, and — at the plan root —
// sorts straight into the output collection.
type OrderBy struct {
	child  Operator
	algo   sorts.Algorithm
	rc     *runtimeChoice // planner handle: Open-time estimate clamping
	sorted storage.Collection
	sc     *batchScanner
}

// NewOrderBy returns an order-by over child using the given sort
// algorithm (the physical planner chooses one from the cost model).
func NewOrderBy(child Operator, a sorts.Algorithm) *OrderBy {
	return &OrderBy{child: child, algo: a}
}

func (o *OrderBy) Name() string {
	return fmt.Sprintf("OrderBy[%s](%s)", o.algo.Name(), o.child.Name())
}
func (o *OrderBy) RecordSize() int      { return o.child.RecordSize() }
func (o *OrderBy) Children() []Operator { return []Operator{o.child} }
func (o *OrderBy) consumesMemory() bool { return true }

// sortInto runs the sort of the child's materialized input into dst.
func (o *OrderBy) sortInto(ctx context.Context, ec *Ctx, dst storage.Collection) error {
	in, cleanup, err := inputCollection(ctx, ec, o.child)
	if err != nil {
		return err
	}
	// Clamp the compile-time estimate against the materialized input: a
	// planner-owned choice is re-priced at the actual cardinality, and
	// the stage's budget share is re-split from the actuals first.
	o.algo = o.rc.clampSort(in.Len(), in.RecordSize(), o.algo)
	env := ec.StageEnvFor(o.rc)
	if err := o.algo.Sort(env, in, dst); err != nil {
		cleanup() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	return cleanup()
}

func (o *OrderBy) Open(ctx context.Context, ec *Ctx) error {
	tmp, err := ec.tempEnv().CreateTemp("sorted", o.RecordSize())
	if err != nil {
		return err
	}
	if err := o.sortInto(ctx, ec, tmp); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	o.sorted = tmp
	o.sc = newBatchScanner(tmp.Scan(), tmp.RecordSize(), ec.batchSize())
	return nil
}

func (o *OrderBy) emitTo(ctx context.Context, ec *Ctx, out storage.Collection) error {
	return o.sortInto(ctx, ec, out)
}

func (o *OrderBy) Next(context.Context) (*Batch, error) {
	if o.sc == nil {
		return nil, io.EOF
	}
	return o.sc.next()
}

// limitHint caps the reads of the sorted result; the sort itself ran in
// full at Open, exactly like the record engine.
func (o *OrderBy) limitHint(n int) {
	if o.sc != nil {
		o.sc.limit(n)
	}
}

func (o *OrderBy) Close() error {
	var first error
	if o.sc != nil {
		first = o.sc.Close()
		o.sc = nil
	}
	if o.sorted != nil {
		if err := o.sorted.Destroy(); err != nil && first == nil {
			first = err
		}
		o.sorted = nil
	}
	if err := o.child.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (o *OrderBy) source() (storage.Collection, bool) { return o.sorted, o.sorted != nil }
