package exec

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"context"

	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// The batch engine's hard invariant: batching is an interpretation-layer
// change only. For every plan shape, memory budget and parallelism level,
// the output bytes and the simulated cacheline writes must be identical at
// every batch size, because all device writes flow through the same
// per-record Append path. Device reads are identical too for every shape
// except a Limit above a Filter, where the batch engine's limit hints
// bound — but cannot exactly reproduce — the record engine's lazy
// read-ahead (see the Filter caveat in README's Batch execution section).

// batchGridSizes is the batch-size grid: 1 is the record engine (the
// baseline every other size is compared against), 7 forces ragged batch
// boundaries everywhere, 1024 is the default.
var batchGridSizes = []int{7, 1024}

// batchCase is one plan shape of the identity grid.
type batchCase struct {
	name       string
	exactReads bool  // reads must match the record engine exactly
	budget     int64 // plan memory budget
	opts       CompileOptions
	build      func(t *testing.T, r *rig) *Plan
}

const (
	bgRows   = 2000
	bgDim    = 100
	bgFact   = 1000
	bgBudget = int64(bgFact * record.Size / 20) // spill regime, as in exec_test
)

// loadRows fills a fresh collection with bgRows generated records.
func loadRows(t *testing.T, r *rig) storage.Collection {
	t.Helper()
	in := r.create(t, "in", record.Size)
	if err := record.Generate(bgRows, 21, in.Append); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	return in
}

var batchPred = Predicate{Attr: 1, Op: Ge, Value: 100}

var batchCases = []batchCase{
	{
		name: "scan", exactReads: true, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan { return Table(loadRows(t, r)) },
	},
	{
		name: "scan-filter", exactReads: true, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan { return Table(loadRows(t, r)).Filter(batchPred) },
	},
	{
		name: "scan-project", exactReads: true, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan { return Table(loadRows(t, r)).Project(3, 0, 5) },
	},
	{
		name: "limit-scan", exactReads: true, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan { return Table(loadRows(t, r)).Limit(50) },
	},
	{
		name: "limit-project-scan", exactReads: true, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan { return Table(loadRows(t, r)).Project(0, 2, 4).Limit(64) },
	},
	{
		// The documented exception: a Limit above a Filter re-hints the
		// child with the remaining need, which bounds but cannot exactly
		// match the record engine's lazy read-ahead. Writes stay exact.
		name: "limit-project-filter-scan", exactReads: false, budget: 8 << 10,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadRows(t, r)).Filter(batchPred).Project(0, 1, 2).Limit(100)
		},
	},
	{
		name: "filter-orderby", exactReads: true, budget: bgBudget,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadRows(t, r)).Filter(batchPred).OrderByWith(sorts.NewExternalMergeSort())
		},
	},
	{
		name: "limit-orderby", exactReads: true, budget: bgBudget,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadRows(t, r)).OrderByWith(sorts.NewExternalMergeSort()).Limit(32)
		},
	},
	{
		name: "groupby-sort", exactReads: true, budget: bgBudget,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadGrouped(t, r, "in", bgRows, 40)).GroupByWith(4, sorts.NewExternalMergeSort())
		},
	},
	{
		name: "hashagg-memory", exactReads: true, budget: 1 << 20,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadGrouped(t, r, "in", bgRows, 40)).GroupHint(40).GroupBy(4)
		},
	},
	{
		name: "hashagg-spill", exactReads: true, budget: 16 << 10,
		build: func(t *testing.T, r *rig) *Plan {
			return Table(loadGrouped(t, r, "in", 4000, 1000)).GroupHint(100).GroupBy(4)
		},
	},
	{
		name: "join", exactReads: true, budget: bgBudget,
		build: func(t *testing.T, r *rig) *Plan {
			dim1, _, fact := r.loadStar(t, bgDim, bgFact)
			return Table(dim1).JoinWith(Table(fact), joins.NewGrace())
		},
	},
	{
		name: "star", exactReads: true, budget: bgBudget,
		build: func(t *testing.T, r *rig) *Plan {
			dim1, dim2, fact := r.loadStar(t, bgDim, bgFact)
			return starPlan(dim1, dim2, fact, sorts.NewExternalMergeSort(), joins.NewGrace())
		},
	},
	{
		name: "star-materialized", exactReads: true, budget: bgBudget,
		opts: CompileOptions{MaterializeEveryStep: true},
		build: func(t *testing.T, r *rig) *Plan {
			dim1, dim2, fact := r.loadStar(t, bgDim, bgFact)
			return starPlan(dim1, dim2, fact, sorts.NewExternalMergeSort(), joins.NewGrace())
		},
	},
}

// runBatchCase executes one grid cell on a fresh rig and returns the
// output bytes and the device stats of the run itself (loading excluded).
func runBatchCase(t *testing.T, pc batchCase, par, batchSize int) ([]byte, pmem.Stats) {
	t.Helper()
	r := newRig(t)
	plan := pc.build(t, r)
	ec := r.ctx(pc.budget, par)
	opts := pc.opts
	opts.BatchSize = batchSize
	root, ex, err := CompileWith(ec, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ex.BatchSize != batchSize {
		t.Fatalf("Explain.BatchSize = %d, want %d", ex.BatchSize, batchSize)
	}
	out := r.create(t, "out", root.RecordSize())
	r.dev.ResetStats()
	if err := Run(ec, root, out); err != nil {
		t.Fatal(err)
	}
	st := r.dev.Stats()
	if live := ec.LiveTemps(); live != 0 {
		t.Fatalf("run left %d live temps", live)
	}
	return readBytes(t, out), st
}

// TestBatchRecordIdentityGrid runs every plan shape of the grid at P ∈
// {1, 8} and compares each batch size against the record engine
// (BatchSize 1): output bytes identical, simulated cacheline writes
// identical, and — for every shape without a Limit above a Filter —
// simulated reads identical too.
func TestBatchRecordIdentityGrid(t *testing.T) {
	for _, pc := range batchCases {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/p%d", pc.name, par), func(t *testing.T) {
				wantOut, wantSt := runBatchCase(t, pc, par, 1)
				for _, bs := range batchGridSizes {
					gotOut, gotSt := runBatchCase(t, pc, par, bs)
					if !bytes.Equal(gotOut, wantOut) {
						t.Errorf("batch=%d: output differs from record engine (%d vs %d bytes)",
							bs, len(gotOut), len(wantOut))
					}
					if gotSt.Writes != wantSt.Writes {
						t.Errorf("batch=%d: %d cacheline writes, record engine wrote %d",
							bs, gotSt.Writes, wantSt.Writes)
					}
					if pc.exactReads && gotSt.Reads != wantSt.Reads {
						t.Errorf("batch=%d: %d cacheline reads, record engine read %d",
							bs, gotSt.Reads, wantSt.Reads)
					}
					if !pc.exactReads && gotSt.Reads > wantSt.Reads+wantSt.Reads/2 {
						t.Errorf("batch=%d: reads %d exceed 1.5× the record engine's %d — hint no longer bounds read-ahead",
							bs, gotSt.Reads, wantSt.Reads)
					}
				}
			})
		}
	}
}

// TestBatchSizeOneDegenerates pins that BatchSize 1 really is the record
// engine: every batch the root produces holds exactly one record.
func TestBatchSizeOneDegenerates(t *testing.T) {
	r := newRig(t)
	in := loadRows(t, r)
	ec := r.ctx(8<<10, 1)
	ec.BatchSize = 1
	root, _, err := Compile(ec, Table(in).Filter(batchPred).Project(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := root.Open(ctx, ec); err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	n := 0
	for {
		b, err := root.Next(ctx)
		if err != nil {
			break
		}
		if b.Len() != 1 {
			t.Fatalf("BatchSize=1 produced a %d-record batch", b.Len())
		}
		n += b.Len()
	}
	if n == 0 {
		t.Fatal("no records produced")
	}
}

// batchCancelCases are cancellable plans spanning the streaming drain
// (small batches, many drain polls) and the blocking algorithms (default
// batches, polls inside the operators).
var batchCancelCases = []struct {
	name      string
	batchSize int
	plan      cancelPlanCase
}{
	{
		name: "stream-batch7", batchSize: 7,
		plan: cancelPlanCase{
			name: "stream",
			plan: func(t *testing.T, r *rig) *Plan {
				in := r.create(t, "in", record.Size)
				if err := record.Generate(8000, 42, in.Append); err != nil {
					t.Fatal(err)
				}
				if err := in.Close(); err != nil {
					t.Fatal(err)
				}
				return Table(in).Filter(Predicate{Attr: 1, Op: Gt, Value: 1}).Project(0, 1, 2)
			},
		},
	},
	{name: "sort-batch1024", batchSize: DefaultBatchSize, plan: cancelPlans[0]},
	{name: "join-batch1024", batchSize: DefaultBatchSize, plan: cancelPlans[1]},
	{name: "spill-batch7", batchSize: 7, plan: cancelPlans[2]},
}

// runBatchCancel executes the case's plan once under ctx at the given
// batch size on a fresh rig.
func runBatchCancel(t *testing.T, pc cancelPlanCase, par, batchSize int, ctx context.Context) (*Ctx, error) {
	t.Helper()
	r := newRig(t)
	p := pc.plan(t, r)
	ec := r.ctx(8000*record.Size/50, par)
	ec.BatchSize = batchSize
	root, _, err := Compile(ec, p)
	if err != nil {
		t.Fatal(err)
	}
	out := r.create(t, "out", root.RecordSize())
	return ec, RunCtx(ctx, ec, root, out)
}

// TestBatchCancelMidBatchLeaksNothing steers cancellation into the middle
// of batch production and consumption: each cancelled run must surface
// context.Canceled, leave zero live temporaries and leak no goroutines —
// at small and default batch sizes, serial and parallel.
func TestBatchCancelMidBatchLeaksNothing(t *testing.T) {
	for _, par := range []int{1, 8} {
		for _, cc := range batchCancelCases {
			t.Run(fmt.Sprintf("%s/p%d", cc.name, par), func(t *testing.T) {
				calib := &countingCtx{Context: context.Background()}
				ec, err := runBatchCancel(t, cc.plan, par, cc.batchSize, calib)
				if err != nil {
					t.Fatalf("calibration run: %v", err)
				}
				if n := ec.LiveTemps(); n != 0 {
					t.Fatalf("clean run left %d live temps", n)
				}
				total := calib.calls.Load()
				if total < 4 {
					t.Fatalf("plan polls cancellation only %d times; inputs too small to steer", total)
				}
				base := runtime.NumGoroutine()
				for _, frac := range []float64{0, 0.25, 0.5, 0.85} {
					n := int64(float64(total) * frac)
					ec, err := runBatchCancel(t, cc.plan, par, cc.batchSize, newCountdownCtx(n))
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", n, total, err)
					}
					if live := ec.LiveTemps(); live != 0 {
						t.Fatalf("cancel at poll %d/%d leaked %d temp collections", n, total, live)
					}
					waitGoroutines(t, base)
				}
			})
		}
	}
}
