package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Fusion: a Filter/Project chain over an already-materialized input is
// deterministic and therefore re-scannable, so a blocking consumer can
// treat it as a read-only collection view instead of draining it into a
// temporary. Every re-scan recomputes the transformation and re-reads
// the base — trading cheap reads for expensive writes, which is the
// paper's trade — and the view writes nothing at all. Limit is not
// fused (its operator form already streams, and blocking consumers of a
// limit are rare enough that the pipe temp is fine).

// fuseView converts a streaming chain over a materialized source into a
// re-scannable view. The chain's operators must already be Open (their
// blocking leaves hold the materialized collections). Counting a
// filter's length costs one read-only scan, done eagerly here so Len
// stays error-free. ctx bounds that scan and every later re-scan: a
// filter view over a huge base with a selective predicate can walk
// arbitrarily many records per Next, so its loops poll like any kernel.
func fuseView(ctx context.Context, op Operator) (storage.Collection, bool, error) {
	switch o := op.(type) {
	case *Filter:
		base, ok, err := fuseView(ctx, o.child)
		if !ok || err != nil {
			return nil, ok, err
		}
		v := &filterView{ctx: ctx, base: base, pred: o.pred, match: o.pred.matcher()}
		n, err := v.count()
		if err != nil {
			return nil, false, err
		}
		v.n = n
		return v, true, nil
	case *Project:
		base, ok, err := fuseView(ctx, o.child)
		if !ok || err != nil {
			return nil, ok, err
		}
		return &projectView{base: base, attrs: o.attrs}, true, nil
	case collectionSource:
		c, ok := o.source()
		return c, ok, nil
	}
	return nil, false, nil
}

// readOnly is the error fused views return from mutating methods.
func readOnly(verb, name string) error {
	return fmt.Errorf("exec: %s of read-only view %q", verb, name)
}

// projectView is the fused form of Project: records map 1:1, so length
// and positional scans delegate straight to the base.
type projectView struct {
	base  storage.Collection
	attrs []int
}

func (v *projectView) Append([]byte) error { return readOnly("append", v.Name()) }
func (v *projectView) Truncate() error     { return readOnly("truncate", v.Name()) }
func (v *projectView) Destroy() error      { return readOnly("destroy", v.Name()) }
func (v *projectView) Close() error        { return nil }

func (v *projectView) Name() string {
	return fmt.Sprintf("project%v(%s)", v.attrs, v.base.Name())
}
func (v *projectView) RecordSize() int { return len(v.attrs) * record.AttrSize }
func (v *projectView) Len() int        { return v.base.Len() }

func (v *projectView) Scan() storage.Iterator { return v.ScanFrom(0) }

func (v *projectView) ScanFrom(start int) storage.Iterator {
	return &projectIterator{it: v.base.ScanFrom(start), attrs: v.attrs, buf: make([]byte, v.RecordSize())}
}

type projectIterator struct {
	it    storage.Iterator
	attrs []int
	buf   []byte
}

func (it *projectIterator) Next() ([]byte, error) {
	rec, err := it.it.Next()
	if err != nil {
		return nil, err
	}
	for i, a := range it.attrs {
		copy(it.buf[i*record.AttrSize:(i+1)*record.AttrSize], rec[a*record.AttrSize:(a+1)*record.AttrSize])
	}
	return it.buf, nil
}

func (it *projectIterator) Close() error { return it.it.Close() }

// filterView is the fused form of Filter. Length is counted once at
// construction; positional scans re-read the base from the start and
// discard the skipped prefix (reads, never writes). The predicate's
// comparison switch is specialized once (see Predicate.matcher), so the
// per-record work of every scan is one load and one compare.
type filterView struct {
	ctx   context.Context // run-scoped: the view lives only within one Run (see fuseView)
	base  storage.Collection
	pred  Predicate
	match func(rec []byte) bool
	n     int
}

func (v *filterView) Append([]byte) error { return readOnly("append", v.Name()) }
func (v *filterView) Truncate() error     { return readOnly("truncate", v.Name()) }
func (v *filterView) Destroy() error      { return readOnly("destroy", v.Name()) }
func (v *filterView) Close() error        { return nil }

func (v *filterView) Name() string {
	return fmt.Sprintf("filter[%s](%s)", v.pred, v.base.Name())
}
func (v *filterView) RecordSize() int { return v.base.RecordSize() }
func (v *filterView) Len() int        { return v.n }

func (v *filterView) count() (int, error) {
	it := v.base.Scan()
	defer it.Close()
	n, budget := 0, algo.PollInterval
	for {
		if budget--; budget <= 0 {
			budget = algo.PollInterval
			if err := v.ctx.Err(); err != nil {
				return 0, err
			}
		}
		rec, err := it.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		if v.match(rec) {
			n++
		}
	}
}

func (v *filterView) Scan() storage.Iterator { return v.ScanFrom(0) }

func (v *filterView) ScanFrom(start int) storage.Iterator {
	return &filterIterator{ctx: v.ctx, it: v.base.Scan(), match: v.match, skip: start}
}

type filterIterator struct {
	ctx   context.Context
	it    storage.Iterator
	match func(rec []byte) bool
	skip  int
}

func (it *filterIterator) Next() ([]byte, error) {
	budget := algo.PollInterval
	for {
		if budget--; budget <= 0 {
			budget = algo.PollInterval
			if err := it.ctx.Err(); err != nil {
				return nil, err
			}
		}
		rec, err := it.it.Next()
		if err != nil {
			return nil, err
		}
		if !it.match(rec) {
			continue
		}
		if it.skip > 0 {
			it.skip--
			continue
		}
		return rec, nil
	}
}

func (it *filterIterator) Close() error { return it.it.Close() }
