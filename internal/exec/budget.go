package exec

import (
	"math"
	"sync"

	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/record"
)

// Budget allocation: memory planning as a first-class layer.
//
// The plan's DRAM budget M used to be split evenly across the blocking
// stages. The allocator here splits it by marginal benefit instead: each
// stage exposes the price of its cheapest implementation as a function
// of its share (cost.BestSortPlan / cost.BestJoinPlan, plus the
// hash-aggregation fit cliff), and a greedy water-filling pass hands
// quanta of the budget to whichever stage's cost curve bends most. The
// even split remains a guaranteed-no-worse fallback: the allocator
// compares the two predictions and keeps the even shares whenever the
// greedy result does not beat them.
//
// At run time the shares stay live: when a blocking stage opens and its
// actual input cardinality diverges from the estimate, budgetPlan.commit
// scales the estimates of the stages it feeds and re-splits the
// not-yet-opened stages' shares over the remaining budget — the memory
// twin of the Open-time algorithm re-planning the operators already do.

// allocQuantaPerStage bounds the greedy pass: the remaining budget above
// the floors is handed out in at most ~this many quanta per stage.
const allocQuantaPerStage = 64

// Allocation is the result of one budget split across blocking stages.
type Allocation struct {
	Shares   []int64 // per-stage share in bytes, stage order
	Cost     float64 // predicted plan cost at Shares (buffer-read units)
	EvenCost float64 // predicted plan cost at the even split
	Even     bool    // the even split won (or was forced) — Shares hold it
}

// stageFloor is the smallest useful stage share: two persistence-layer
// buffers, matching algo.Env.BudgetBuffers and the compiler's memBuffers
// floor (one input/fan-in buffer plus one output buffer). Shares are
// never sized below it — the old 1-byte floor admitted budgets no
// algorithm could run at.
func stageFloor(blockSize int) int64 {
	if blockSize < 1 {
		blockSize = 1
	}
	return 2 * int64(blockSize)
}

// allocBuffers converts a share in bytes to the cost model's m, floored
// at 2 buffers like the rest of the engine.
func allocBuffers(share int64, blockSize int) float64 {
	m := float64(share) / float64(blockSize)
	if m < 2 {
		m = 2
	}
	return m
}

// Allocate splits total bytes across the stages' cost curves. Each
// pricer maps a stage share m (in buffers, ≥ 2) to the predicted price
// of the stage's cheapest implementation. Every share is floored at two
// buffers; when the total cannot cover the floors, or when the greedy
// result does not beat the even split's prediction, the even split is
// returned with Even set.
func Allocate(total int64, blockSize int, pricers []func(m float64) float64) Allocation {
	n := len(pricers)
	if n == 0 {
		return Allocation{}
	}
	if blockSize < 1 {
		blockSize = 1
	}
	floor := stageFloor(blockSize)
	costAt := func(shares []int64) float64 {
		sum := 0.0
		for i, p := range pricers {
			sum += p(allocBuffers(shares[i], blockSize))
		}
		return sum
	}
	evenShare := total / int64(n)
	if evenShare < floor {
		evenShare = floor
	}
	even := make([]int64, n)
	for i := range even {
		even[i] = evenShare
	}
	evenCost := costAt(even)
	if total < int64(n)*floor {
		return Allocation{Shares: even, Cost: evenCost, EvenCost: evenCost, Even: true}
	}

	shares := make([]int64, n)
	for i := range shares {
		shares[i] = floor
	}
	rest := total - int64(n)*floor
	quantum := int64(blockSize)
	if q := rest / int64(allocQuantaPerStage*n); q > quantum {
		quantum = (q / int64(blockSize)) * int64(blockSize)
	}
	// Water-filling with step-aware probing: the curves are staircases
	// (pass counts are ceilings), so a fixed small quantum would see a
	// zero gradient inside a flat step and give up too early. Each round
	// probes geometrically growing windows (quantum, 4×, 16×, …, rest)
	// per stage and hands the window with the best cost-saved-per-byte
	// rate to its stage.
	for rounds := 0; rest >= quantum && quantum > 0 && rounds < 4*allocQuantaPerStage*n; rounds++ {
		bestI, bestW, bestRate := -1, int64(0), 0.0
		for i, p := range pricers {
			base := p(allocBuffers(shares[i], blockSize))
			probe := func(w int64) {
				rate := (base - p(allocBuffers(shares[i]+w, blockSize))) / float64(w)
				if rate > bestRate {
					bestI, bestW, bestRate = i, w, rate
				}
			}
			for w := quantum; w < rest; w *= 4 {
				probe(w)
			}
			probe(rest)
		}
		if bestI < 0 {
			break // flat curves: more memory buys nothing anywhere
		}
		shares[bestI] += bestW
		rest -= bestW
	}
	// Whatever the greedy pass left (flat tails, sub-quantum remainder)
	// is spread evenly rather than parked: the model says it buys
	// nothing, and idle budget would just shrink the stages for free.
	if rest > 0 {
		per := rest / int64(n)
		for i := range shares {
			shares[i] += per
		}
		shares[0] += rest - per*int64(n)
	}
	greedyCost := costAt(shares)
	if !(greedyCost <= evenCost+1e-9*(1+math.Abs(evenCost))) {
		return Allocation{Shares: even, Cost: evenCost, EvenCost: evenCost, Even: true}
	}
	return Allocation{Shares: shares, Cost: greedyCost, EvenCost: evenCost}
}

// stageAlloc is one blocking stage's allocation state, shared between
// the compiler (which prices it from estimates), the Explain choice
// (which displays it) and the run (which re-splits it from actuals).
type stageAlloc struct {
	op     string
	idx    int                           // position in the plan's stage order (build's post-order)
	price  func(t, v, m float64) float64 // cheapest-impl price at input sizes (buffers)
	t, v   float64                       // current input-size estimates (buffers)
	inEst  float64                       // estimated build/input rows, divergence baseline
	tFrom  int                           // stage index feeding the t input (-1: base tables only)
	vFrom  int                           // stage index feeding the v input (-1: none/base)
	share  int64                         // allocated share in bytes
	opened bool                          // the stage has started; its share is frozen
	choice *Choice                       // Explain entry mirroring share/resplit
}

func (s *stageAlloc) pricer(blockSize int) func(m float64) float64 {
	return func(m float64) float64 { return s.price(s.t, s.v, m) }
}

// budgetPlan carries one compiled plan's allocation through its run.
type budgetPlan struct {
	mu        sync.Mutex
	blockSize int
	total     int64
	stages    []*stageAlloc
}

// pricersOf builds the allocator inputs for a subset of stages.
func pricersOf(stages []*stageAlloc, blockSize int) []func(m float64) float64 {
	ps := make([]func(m float64) float64, len(stages))
	for i, s := range stages {
		ps[i] = s.pricer(blockSize)
	}
	return ps
}

// commit is called when stage idx opens with its actual input sizes
// (buffers) and build-side rows. It scales the estimates of the unopened
// stages this one feeds by the observed divergence, re-splits the
// remaining budget — total minus the frozen shares of already-opened
// stages — across the unopened stages (idx included: it has not built
// its environment yet), freezes idx, and returns its share's m in
// buffers. actRows 0 freezes without re-splitting (no new information).
func (bp *budgetPlan) commit(idx int, actT, actV float64, actRows int) float64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := bp.stages[idx]
	if s.opened {
		return allocBuffers(s.share, bp.blockSize)
	}
	if actRows <= 0 {
		s.opened = true
		return allocBuffers(s.share, bp.blockSize)
	}
	ratio := 1.0
	if s.inEst > 0 {
		ratio = float64(actRows) / s.inEst
	}
	if actT > 0 {
		s.t = actT
	}
	if actV > 0 {
		s.v = actV
	}
	s.inEst = float64(actRows)
	// Misestimates propagate multiplicatively through the streaming
	// operators between stages, so the observed input divergence scales
	// every unopened stage downstream of this one (transitively).
	scaled := map[int]bool{idx: true}
	for changed := true; changed; {
		changed = false
		for j, d := range bp.stages {
			if d.opened || scaled[j] {
				continue
			}
			if scaled[d.tFrom] {
				d.t = math.Max(1, d.t*ratio)
				d.inEst *= ratio
				scaled[j] = true
				changed = true
				continue
			}
			if scaled[d.vFrom] {
				d.v = math.Max(1, d.v*ratio)
				scaled[j] = true
				changed = true
			}
		}
	}
	// Re-split the unopened stages over what the opened ones left.
	remaining := bp.total
	var open []*stageAlloc
	for _, d := range bp.stages {
		if d.opened {
			remaining -= d.share
		} else {
			open = append(open, d)
		}
	}
	if remaining > 0 && len(open) > 0 {
		alloc := Allocate(remaining, bp.blockSize, pricersOf(open, bp.blockSize))
		for i, d := range open {
			if alloc.Shares[i] != d.share && d.choice != nil {
				d.choice.Resplit = true
			}
			d.share = alloc.Shares[i]
			if d.choice != nil {
				d.choice.Share = d.share
			}
		}
	}
	s.opened = true
	return allocBuffers(s.share, bp.blockSize)
}

// --- Compile-time demand collection ---

// hashAggCap is the largest estimated group count whose hash table the
// planner trusts to a stage share: the paper's f expansion plus 2×
// headroom for estimate error. Shared by the compiler's hash-vs-sort
// decision and the allocator's group-by cost curve so the two can never
// disagree about which side of the cliff a share lands on.
func hashAggCap(shareBytes float64) float64 {
	return shareBytes / (2 * algo.HashTableExpansion * float64(record.Size))
}

// stageDemands walks the (already join-reordered) plan in build's
// post-order, returning one stageAlloc per blocking stage: the stage's
// cost-vs-memory pricer at the compile-time cardinality estimates, plus
// the dataflow links divergence propagation follows.
func (c *compiler) stageDemands(p *Plan) []*stageAlloc {
	var out []*stageAlloc
	c.demandWalk(p, &out)
	return out
}

// demandWalk returns the node's output estimate and the index of the
// blocking stage its output streams from (-1 when it derives from base
// tables only).
func (c *compiler) demandWalk(p *Plan, out *[]*stageAlloc) (planEstimate, int) {
	if p == nil || p.err != nil {
		return planEstimate{}, -1
	}
	switch p.kind {
	case planScan:
		return planEstimate{rows: p.col.Len(), tbl: c.statsFor(p)}, -1

	case planFilter:
		in, from := c.demandWalk(p.left, out)
		return c.filterEstimate(in, p.pred), from

	case planProject:
		in, from := c.demandWalk(p.left, out)
		return projectEstimate(in, p.attrs), from

	case planLimit:
		in, from := c.demandWalk(p.left, out)
		return limitEstimate(in, p.n), from

	case planOrderBy:
		in, from := c.demandWalk(p.left, out)
		t := c.buffers(in.rows, planRecordSize(p.left))
		lambda, par, pinned := c.lambda, c.par, p.sortA
		s := &stageAlloc{
			op: "OrderBy",
			price: func(t, _, m float64) float64 {
				if pinned != nil {
					if prof, ok := pinnedSortProfile(pinned, t, m, lambda); ok {
						return prof.PriceP(1, lambda, par)
					}
				}
				return cost.BestSortPlanP(t, m, lambda, par).Cost
			},
			t: t, inEst: float64(in.rows), tFrom: from, vFrom: -1,
		}
		*out = append(*out, s)
		return in, len(*out) - 1

	case planGroupBy:
		in, from := c.demandWalk(p.left, out)
		est, groups := c.groupEstimate(p, in)
		t := c.buffers(in.rows, planRecordSize(p.left))
		groupBuf := c.buffers(groups, record.Size)
		lambda, par, blockSize, pinned := c.lambda, c.par, float64(c.blockSize), p.sortA
		s := &stageAlloc{
			op: "GroupBy",
			price: func(t, _, m float64) float64 {
				if pinned != nil {
					if prof, ok := pinnedSortProfile(pinned, t, m, lambda); ok {
						return prof.PriceP(1, lambda, par)
					}
					return cost.BestSortPlanP(t, m, lambda, par).Cost
				}
				// The fit cliff: once the estimated groups' hash table
				// fits the share, the stage reads its input once and
				// writes only the result. Hash aggregation is not
				// parallelized, so its price ignores par.
				if est > 0 && float64(est) <= hashAggCap(m*blockSize) {
					return cost.Profile{Reads: t, Writes: groupBuf}.Price(1, lambda)
				}
				return cost.BestSortPlanP(t, m, lambda, par).Cost
			},
			t: t, inEst: float64(in.rows), tFrom: from, vFrom: -1,
		}
		*out = append(*out, s)
		return planEstimate{rows: groups}, len(*out) - 1

	case planJoin:
		lest, lfrom := c.demandWalk(p.left, out)
		rest, rfrom := c.demandWalk(p.right, out)
		t := c.buffers(lest.rows, planRecordSize(p.left))
		v := c.buffers(rest.rows, planRecordSize(p.right))
		outEst := c.joinEstimate(lest, rest)
		outBuf := c.buffers(outEst.rows, planRecordSize(p.left)+planRecordSize(p.right))
		lambda, par, pinned := c.lambda, c.par, p.joinA
		s := &stageAlloc{
			op: "Join",
			price: func(t, v, m float64) float64 {
				// The engine's concatenated-output write term, the same
				// constant shift build applies (see the adjust closure).
				adjust := lambda * (outBuf - v)
				if pinned != nil {
					if prof, ok := pinnedJoinProfile(pinned, t, v, m, lambda); ok {
						return prof.PriceP(1, lambda, par) + adjust
					}
				}
				return cost.BestJoinPlanP(t, v, m, lambda, par).Cost + adjust
			},
			t: t, v: v, inEst: float64(lest.rows), tFrom: lfrom, vFrom: rfrom,
		}
		*out = append(*out, s)
		return outEst, len(*out) - 1
	}
	return planEstimate{}, -1
}

// PlanCosts prices the plan's predicted total cost at several candidate
// budgets without building operators: one demand walk, one allocation
// per budget. This is what grant bidding runs before asking the broker
// for memory — a plan whose cost barely moves between M and M/2 can bid
// for the smaller grant and start instead of queueing.
func PlanCosts(ctx *Ctx, p *Plan, budgets []int64) ([]float64, error) {
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, errNilPlan
	}
	if p.err != nil {
		return nil, p.err
	}
	c := &compiler{
		lambda:    ctx.Factory.Device().Lambda(),
		par:       parOf(ctx.Parallelism),
		blockSize: ctx.Factory.BlockSize(),
		stats:     ctx.Stats,
	}
	p = c.reorderJoins(p)
	demands := c.stageDemands(p)
	pricers := pricersOf(demands, c.blockSize)
	costs := make([]float64, len(budgets))
	for i, b := range budgets {
		if len(demands) == 0 || b <= 0 {
			continue
		}
		costs[i] = Allocate(b, c.blockSize, pricers).Cost
	}
	return costs, nil
}
