package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// The cancellation tests steer the cancel point deterministically: the
// engine and the algorithms only observe cancellation through ctx.Err()
// polls, so a context whose Err flips to Canceled after a fixed number
// of calls cancels the run at a reproducible depth — early polls land in
// run formation/partitioning, later ones in merging and probing. Each
// cancelled run must (a) surface context.Canceled, (b) leave zero live
// temporaries after RunCtx's sweep, and (c) leak no goroutines.

// countingCtx counts Err calls without ever cancelling (calibration).
type countingCtx struct {
	context.Context
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	c.calls.Add(1)
	return c.Context.Err()
}

// countdownCtx reports Canceled from the n-th Err call onwards.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// waitGoroutines waits for the goroutine count to drop back to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cancelPlanCase builds one cancellable plan over fresh inputs.
type cancelPlanCase struct {
	name string
	plan func(t *testing.T, r *rig) *Plan
}

var cancelPlans = []cancelPlanCase{
	{
		// OrderBy over a filter: cancellation lands in replacement-
		// selection run formation or in the merge passes.
		name: "sort",
		plan: func(t *testing.T, r *rig) *Plan {
			in := r.create(t, "in", record.Size)
			if err := record.Generate(8000, 42, in.Append); err != nil {
				t.Fatal(err)
			}
			if err := in.Close(); err != nil {
				t.Fatal(err)
			}
			return Table(in).Filter(Predicate{Attr: 1, Op: Gt, Value: 1}).OrderByWith(sorts.NewExternalMergeSort())
		},
	},
	{
		// Grace join: cancellation lands in partitioning, the hash-table
		// builds or the probes.
		name: "join",
		plan: func(t *testing.T, r *rig) *Plan {
			dim := r.create(t, "dim", record.Size)
			fact := r.create(t, "fact", record.Size)
			if err := record.GenerateJoin(800, 8000, 42, dim.Append, fact.Append); err != nil {
				t.Fatal(err)
			}
			for _, c := range []storage.Collection{dim, fact} {
				if err := c.Close(); err != nil {
					t.Fatal(err)
				}
			}
			return Table(dim).JoinWith(Table(fact), joins.NewGrace())
		},
	},
	{
		// Underestimated hash aggregation: cancellation lands in the drain
		// or in the spill-merge fallback.
		name: "groupby-spill",
		plan: func(t *testing.T, r *rig) *Plan {
			in := r.create(t, "in", record.Size)
			if err := record.Generate(8000, 42, in.Append); err != nil {
				t.Fatal(err)
			}
			if err := in.Close(); err != nil {
				t.Fatal(err)
			}
			return Table(in).GroupHint(8).GroupBy(3)
		},
	},
}

// runCancelPlan executes the case's plan once under ctx on a fresh rig.
func runCancelPlan(t *testing.T, pc cancelPlanCase, par int, ctx context.Context) (*Ctx, error) {
	t.Helper()
	r := newRig(t)
	p := pc.plan(t, r)
	ec := r.ctx(8000*record.Size/50, par) // 2% of the biggest input
	root, _, err := Compile(ec, p)
	if err != nil {
		t.Fatal(err)
	}
	out := r.create(t, "out", root.RecordSize())
	return ec, RunCtx(ctx, ec, root, out)
}

func TestCancelMidPhaseLeaksNothing(t *testing.T) {
	for _, par := range []int{1, 8} {
		for _, pc := range cancelPlans {
			t.Run(fmt.Sprintf("%s/p%d", pc.name, par), func(t *testing.T) {
				// Calibrate: how many cancellation polls does a clean run of
				// this plan make at this parallelism?
				calib := &countingCtx{Context: context.Background()}
				ec, err := runCancelPlan(t, pc, par, calib)
				if err != nil {
					t.Fatalf("calibration run: %v", err)
				}
				if n := ec.LiveTemps(); n != 0 {
					t.Fatalf("clean run left %d live temps", n)
				}
				total := calib.calls.Load()
				if total < 4 {
					t.Fatalf("plan polls cancellation only %d times; inputs too small to steer", total)
				}

				base := runtime.NumGoroutine()
				// Cancel at increasing depths: the first poll (formation or
				// partitioning), mid-run, and late (merging/probing).
				for _, frac := range []float64{0, 0.25, 0.5, 0.85} {
					n := int64(float64(total) * frac)
					ec, err := runCancelPlan(t, pc, par, newCountdownCtx(n))
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", n, total, err)
					}
					if live := ec.LiveTemps(); live != 0 {
						t.Fatalf("cancel at poll %d/%d leaked %d temp collections", n, total, live)
					}
					waitGoroutines(t, base)
				}
			})
		}
	}
}

// TestCancelBeforeOpen: a context cancelled before execution fails fast
// and creates nothing.
func TestCancelBeforeOpen(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec, err := runCancelPlan(t, cancelPlans[0], 1, ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if live := ec.LiveTemps(); live != 0 {
		t.Fatalf("pre-cancelled run leaked %d temps", live)
	}
}

// TestDeadlineExceededSurfaces: deadline expiry is reported as
// context.DeadlineExceeded, the error cmd/wlquery's -timeout maps to a
// clean exit.
func TestDeadlineExceededSurfaces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := runCancelPlan(t, cancelPlans[1], 1, ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
