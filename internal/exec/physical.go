package exec

import (
	"fmt"
	"math"
	"strings"

	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/stats"
)

// CompileOptions tunes physical planning.
type CompileOptions struct {
	// MaterializeEveryStep inserts a Materialize barrier above every
	// non-scan operator: the naive compose-by-collections execution the
	// pipelined plan is benchmarked against.
	MaterializeEveryStep bool
	// DisableJoinReorder keeps multi-join plans in their written order
	// instead of letting the planner rebuild them smallest-build-first
	// from the cardinality estimates.
	DisableJoinReorder bool
	// EvenBudgetSplit forces the legacy even budget split across the
	// blocking stages instead of the marginal-benefit allocation, and
	// disables Open-time share re-splitting — the baseline the budget
	// experiment and the byte-identity tests compare against.
	EvenBudgetSplit bool
	// BatchSize overrides the context's records-per-batch window for
	// this compilation (0 keeps the context's setting; see
	// Ctx.BatchSize). 1 yields record-at-a-time execution with
	// identical output and device traffic.
	BatchSize int
}

var errNilPlan = fmt.Errorf("exec: nil plan")

// Choice records one physical algorithm decision for Explain. The planner
// fills the estimates at compile time; the blocking operator updates
// ActualRows (and, for non-pinned choices, Algorithm/Replanned) when its
// Open observes the materialized input.
type Choice struct {
	Operator   string  // "OrderBy", "GroupBy", "Join"
	Algorithm  string  // chosen algorithm with knobs, e.g. "SegS(0.31)"
	Pinned     bool    // true when the caller fixed the algorithm
	InputRows  int     // estimated input cardinality (left side for joins)
	ActualRows int     // input rows observed at Open; -1 before a run
	Buffers    float64 // estimated input size in buffers (t; joins also use v)
	RightBuf   float64 // v for joins, 0 otherwise
	Cost       float64 // predicted price in buffer-read units
	Share      int64   // the stage's memory share in bytes (live: re-splits update it)
	Resplit    bool    // an Open-time re-split changed this stage's share
	Replanned  bool    // Open-time actuals changed the planner's algorithm
	Spilled    bool    // hash aggregation degraded to its sort-merge fallback
}

// Explain describes the compiled physical plan. Choices are shared with
// the operator tree, so after a Run they also carry the actuals observed
// at Open time and the shares Open-time re-splitting settled on.
type Explain struct {
	Root        string  // the physical operator tree, root first
	RecordSize  int     // byte width of the plan's output records
	Stages      int     // blocking stages sharing the budget
	TotalBudget int64   // plan M in bytes
	StageShares []int64 // compile-time per-stage shares in bytes, stage order
	EvenSplit   bool    // the allocator fell back to (or was forced to) the even split
	PlanCost    float64 // predicted plan cost at StageShares (buffer-read units)
	EvenCost    float64 // predicted plan cost at the even split
	Lambda      float64
	BatchSize   int  // records per operator pull (the vectorization window)
	Reordered   bool // the planner rebuilt a join chain smallest-build-first
	Choices     []*Choice
}

// String renders the explanation for CLIs and examples.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan    %s\n", e.Root)
	split := "cost-driven"
	if e.EvenSplit {
		split = "even-split"
	}
	fmt.Fprintf(&b, "memory  %d B across %d blocking stage(s), %s shares %s (λ=%.1f, predicted %.4g vs %.4g even)\n",
		e.TotalBudget, e.Stages, split, fmtShares(e.StageShares), e.Lambda, e.PlanCost, e.EvenCost)
	if e.BatchSize > 0 {
		fmt.Fprintf(&b, "batch   %d records per operator pull\n", e.BatchSize)
	}
	if e.Reordered {
		fmt.Fprintf(&b, "joins   reordered smallest-build-first from the cardinality estimates (compensating projection restores the written column order)\n")
	}
	for _, c := range e.Choices {
		origin := "cost model"
		if c.Pinned {
			origin = "pinned"
		}
		rows := fmt.Sprintf("est %d rows", c.InputRows)
		if c.ActualRows >= 0 {
			rows += fmt.Sprintf(", act %d", c.ActualRows)
		}
		var notes string
		if c.Resplit {
			notes += "; share re-split at open"
		}
		if c.Replanned {
			notes += "; replanned at open"
		}
		if c.Spilled {
			notes += "; spilled to sort-merge"
		}
		if c.RightBuf > 0 {
			fmt.Fprintf(&b, "choice  %-8s → %-14s (%s; t=%.0f v=%.0f buffers, %s, share %d B, est cost %.3g%s)\n",
				c.Operator, c.Algorithm, origin, c.Buffers, c.RightBuf, rows, c.Share, c.Cost, notes)
		} else {
			fmt.Fprintf(&b, "choice  %-8s → %-14s (%s; t=%.0f buffers, %s, share %d B, est cost %.3g%s)\n",
				c.Operator, c.Algorithm, origin, c.Buffers, rows, c.Share, c.Cost, notes)
		}
	}
	return b.String()
}

// fmtShares renders a share list as "[a+b+c]" bytes.
func fmtShares(shares []int64) string {
	if len(shares) == 0 {
		return "[—]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range shares {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteByte(']')
	return b.String()
}

// Compile turns a logical plan into a physical operator tree, consulting
// the cost model for every sort and join the plan left open: the device
// λ, the per-stage share of the context's memory budget, and bottom-up
// cardinality estimates — from the context's statistics provider when one
// is set, textbook defaults otherwise — select the algorithm and place
// its write-intensity knob.
func Compile(ctx *Ctx, p *Plan) (Operator, *Explain, error) {
	return CompileWith(ctx, p, CompileOptions{})
}

// CompileWith is Compile with options.
func CompileWith(ctx *Ctx, p *Plan, opts CompileOptions) (Operator, *Explain, error) {
	if err := ctx.validate(); err != nil {
		return nil, nil, err
	}
	if p == nil {
		return nil, nil, errNilPlan
	}
	if p.err != nil {
		return nil, nil, p.err
	}
	if opts.BatchSize > 0 {
		ctx.BatchSize = opts.BatchSize
	}
	c := &compiler{
		opts:      opts,
		lambda:    ctx.Factory.Device().Lambda(),
		par:       parOf(ctx.Parallelism),
		blockSize: ctx.Factory.BlockSize(),
		stats:     ctx.Stats,
	}
	if !opts.DisableJoinReorder {
		p = c.reorderJoins(p)
	}
	// Memory planning: price every blocking stage's cheapest
	// implementation as a function of its share and split the plan
	// budget by marginal benefit (the even split is the guaranteed
	// no-worse fallback, and the forced baseline under EvenBudgetSplit).
	demands := c.stageDemands(p)
	alloc := Allocate(ctx.MemoryBudget, c.blockSize, pricersOf(demands, c.blockSize))
	if opts.EvenBudgetSplit && len(demands) > 0 {
		even := stageFloor(c.blockSize)
		if s := ctx.MemoryBudget / int64(len(demands)); s > even {
			even = s
		}
		shares := make([]int64, len(demands))
		for i := range shares {
			shares[i] = even
		}
		alloc = Allocation{Shares: shares, Cost: alloc.EvenCost, EvenCost: alloc.EvenCost, Even: true}
	}
	for i, d := range demands {
		d.idx = i
		d.share = alloc.Shares[i]
	}
	c.stages = demands
	if !opts.EvenBudgetSplit {
		c.bp = &budgetPlan{blockSize: c.blockSize, total: ctx.MemoryBudget, stages: demands}
	}
	root, _, err := c.build(p)
	if err != nil {
		return nil, nil, err
	}
	stages := len(demands)
	if stages < 1 {
		stages = 1
	}
	ex := &Explain{
		Root:        root.Name(),
		RecordSize:  root.RecordSize(),
		Stages:      stages,
		TotalBudget: ctx.MemoryBudget,
		StageShares: alloc.Shares,
		EvenSplit:   alloc.Even,
		PlanCost:    alloc.Cost,
		EvenCost:    alloc.EvenCost,
		Lambda:      c.lambda,
		BatchSize:   ctx.batchSize(),
		Reordered:   c.reordered,
		Choices:     c.choices,
	}
	return root, ex, nil
}

type compiler struct {
	opts      CompileOptions
	lambda    float64
	par       float64 // effective intra-operator parallelism (≥1) for P-aware pricing
	blockSize int
	stats     stats.Provider
	stages    []*stageAlloc // allocated blocking stages, build's post-order
	bp        *budgetPlan   // runtime re-split state (nil under EvenBudgetSplit)
	next      int           // stages consumed by build so far
	reordered bool
	choices   []*Choice
}

// takeStage hands build the next blocking stage's allocation. The demand
// walk mirrors build's traversal exactly, so the cursor stays aligned;
// the fallback covers plans that error later in build anyway.
func (c *compiler) takeStage() *stageAlloc {
	if c.next >= len(c.stages) {
		return &stageAlloc{share: stageFloor(c.blockSize)}
	}
	s := c.stages[c.next]
	c.next++
	return s
}

// stageBuffers is a stage share in buffer units (m of the cost model),
// floored at 2 like algo.Env.BudgetBuffers.
func (c *compiler) stageBuffers(s *stageAlloc) float64 {
	return allocBuffers(s.share, c.blockSize)
}

// buffers converts a (rows, recordSize) estimate to buffer units (t or v
// of the cost model), floored at 1.
func (c *compiler) buffers(rows, recSize int) float64 {
	b := math.Ceil(float64(rows) * float64(recSize) / float64(c.blockSize))
	if b < 1 {
		b = 1
	}
	return b
}

// breaker wraps op in a Materialize barrier in MaterializeEveryStep
// mode. Blocking operators are left alone — they already materialize
// their output once, exactly like the hand-wired compose-by-collections
// caller the mode models; wrapping them too would double-count their
// writes and flatter the pipelined comparison.
func (c *compiler) breaker(op Operator) Operator {
	if !c.opts.MaterializeEveryStep {
		return op
	}
	if m, ok := op.(memoryConsumer); ok && m.consumesMemory() {
		return op
	}
	return NewMaterialize(op)
}

// newChoice registers an Explain entry for the given stage and returns
// it together with the runtime-clamp handle handed to the blocking
// operator.
func (c *compiler) newChoice(ch Choice, s *stageAlloc) (*Choice, *runtimeChoice) {
	ch.ActualRows = -1
	ch.Share = s.share
	p := &ch
	s.choice = p
	c.choices = append(c.choices, p)
	return p, &runtimeChoice{choice: p, m: c.stageBuffers(s), lambda: c.lambda, par: c.par, blockSize: c.blockSize, bp: c.bp, stage: s}
}

// build compiles the node and returns the operator plus its output
// estimate.
func (c *compiler) build(p *Plan) (Operator, planEstimate, error) {
	if p.err != nil {
		return nil, planEstimate{}, p.err
	}
	switch p.kind {
	case planScan:
		return NewScan(p.col), c.estimateNode(p), nil

	case planFilter:
		child, in, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		if err := p.pred.validate(child.RecordSize()); err != nil {
			return nil, planEstimate{}, err
		}
		return c.breaker(NewFilter(child, p.pred)), c.filterEstimate(in, p.pred), nil

	case planProject:
		child, in, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		if len(p.attrs) == 0 {
			return nil, planEstimate{}, fmt.Errorf("exec: projection with no attributes")
		}
		for _, a := range p.attrs {
			if a < 0 || (a+1)*record.AttrSize > child.RecordSize() {
				return nil, planEstimate{}, fmt.Errorf("exec: projected attribute a%d outside %d-byte record", a, child.RecordSize())
			}
		}
		return c.breaker(NewProject(child, p.attrs...)), projectEstimate(in, p.attrs), nil

	case planLimit:
		child, in, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		return c.breaker(NewLimit(child, p.n)), limitEstimate(in, p.n), nil

	case planOrderBy:
		child, in, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		st := c.takeStage()
		t, m := c.buffers(in.rows, child.RecordSize()), c.stageBuffers(st)
		a := p.sortA
		ch := Choice{Operator: "OrderBy", InputRows: in.rows, Buffers: t, Pinned: a != nil}
		if a == nil {
			var prof cost.Profile
			a, prof = ChooseSortP(t, m, c.lambda, c.par)
			ch.Cost = prof.PriceP(1, c.lambda, c.par)
		} else if prof, ok := pinnedSortProfile(a, t, m, c.lambda); ok {
			ch.Cost = prof.PriceP(1, c.lambda, c.par)
		}
		ch.Algorithm = a.Name()
		_, rc := c.newChoice(ch, st)
		op := NewOrderBy(child, a)
		op.rc = rc
		return c.breaker(op), in, nil

	case planGroupBy:
		child, in, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		// Fail width mismatches at plan time so Explain never prices a
		// group-by that cannot execute.
		if child.RecordSize() != record.Size {
			return nil, planEstimate{}, fmt.Errorf("exec: group-by needs %d-byte benchmark records, input emits %d (project first)",
				record.Size, child.RecordSize())
		}
		if p.attr < 0 || p.attr >= record.NumAttrs {
			return nil, planEstimate{}, fmt.Errorf("exec: aggregate attribute a%d out of schema (0..%d)", p.attr, record.NumAttrs-1)
		}
		est, groups := c.groupEstimate(p, in)
		st := c.takeStage()
		t, m := c.buffers(in.rows, child.RecordSize()), c.stageBuffers(st)
		out := planEstimate{rows: groups}
		ch := Choice{Operator: "GroupBy", InputRows: in.rows, Buffers: t, Pinned: p.sortA != nil}
		if p.sortA != nil {
			ch.Algorithm = p.sortA.Name()
			if prof, ok := pinnedSortProfile(p.sortA, t, m, c.lambda); ok {
				ch.Cost = prof.PriceP(1, c.lambda, c.par)
			}
			_, rc := c.newChoice(ch, st)
			op := NewGroupBy(child, p.attr, p.sortA)
			op.rc = rc
			return c.breaker(op), out, nil
		}
		// The hash table must fit the stage share with the paper's f
		// expansion and headroom for estimate error (hashAggCap, shared
		// with the allocator's cost curve so the fit cliff the allocator
		// priced is the one the compiler acts on). An estimate (hint or
		// statistics) is required: without one the planner assumes every
		// record is its own group and stays on the spill-safe sort path.
		if est > 0 && float64(est) <= hashAggCap(m*float64(c.blockSize)) {
			ch.Algorithm = "HashAgg"
			// The hash path reads the input once and writes only the
			// result; an underestimate degrades to the sort-merge spill
			// fallback rather than failing.
			ch.Cost = cost.Profile{Reads: t, Writes: c.buffers(groups, record.Size)}.Price(1, c.lambda)
			_, rc := c.newChoice(ch, st)
			op := NewHashAggregate(child, p.attr)
			op.rc = rc
			return c.breaker(op), out, nil
		}
		a, prof := ChooseSortP(t, m, c.lambda, c.par)
		ch.Algorithm = a.Name()
		ch.Cost = prof.PriceP(1, c.lambda, c.par)
		_, rc := c.newChoice(ch, st)
		op := NewGroupBy(child, p.attr, a)
		op.rc = rc
		return c.breaker(op), out, nil

	case planJoin:
		left, lest, err := c.build(p.left)
		if err != nil {
			return nil, planEstimate{}, err
		}
		right, rest, err := c.build(p.right)
		if err != nil {
			return nil, planEstimate{}, err
		}
		st := c.takeStage()
		t := c.buffers(lest.rows, left.RecordSize())
		v := c.buffers(rest.rows, right.RecordSize())
		m := c.stageBuffers(st)
		out := c.joinEstimate(lest, rest)
		// The cost profiles charge the paper's microbenchmark output
		// (joinOutput: |V| single-record results), but the engine
		// materializes full left‖right concatenations of the estimated
		// output cardinality. Re-pricing that term is a constant shift
		// across the algorithm candidates — the argmin is unchanged — yet
		// it matters when comparing join orders, where v flips sides while
		// the real output stays put.
		outBuf := c.buffers(out.rows, left.RecordSize()+right.RecordSize())
		adjust := func(price float64) float64 { return price + c.lambda*(outBuf-v) }
		a := p.joinA
		ch := Choice{Operator: "Join", InputRows: lest.rows, Buffers: t, RightBuf: v, Pinned: a != nil}
		if a == nil {
			var prof cost.Profile
			a, prof = ChooseJoinP(t, v, m, c.lambda, c.par)
			ch.Cost = adjust(prof.PriceP(1, c.lambda, c.par))
		} else if prof, ok := pinnedJoinProfile(a, t, v, m, c.lambda); ok {
			ch.Cost = adjust(prof.PriceP(1, c.lambda, c.par))
		}
		ch.Algorithm = a.Name()
		_, rc := c.newChoice(ch, st)
		rc.outBuf = outBuf
		op := NewJoin(left, right, a)
		op.rc = rc
		return c.breaker(op), out, nil
	}
	return nil, planEstimate{}, fmt.Errorf("exec: unknown plan node %d", p.kind)
}

// --- Cardinality estimates ---

// planEstimate is the planner's view of one intermediate result: a row
// count plus, when statistics reached this node, the column statistics of
// its output schema.
type planEstimate struct {
	rows int
	tbl  *stats.Table
}

// statsFor consults the context's statistics provider for a base table.
func (c *compiler) statsFor(p *Plan) *stats.Table {
	if c.stats == nil || p.col == nil {
		return nil
	}
	return c.stats.TableStats(p.col)
}

// estimateNode derives the node's output estimate bottom-up, without
// building operators — used by the join-order rewrite (build applies the
// same per-node transforms incrementally to its children's estimates).
func (c *compiler) estimateNode(p *Plan) planEstimate {
	if p == nil || p.err != nil {
		return planEstimate{}
	}
	switch p.kind {
	case planScan:
		return planEstimate{rows: p.col.Len(), tbl: c.statsFor(p)}
	case planFilter:
		return c.filterEstimate(c.estimateNode(p.left), p.pred)
	case planProject:
		return projectEstimate(c.estimateNode(p.left), p.attrs)
	case planLimit:
		return limitEstimate(c.estimateNode(p.left), p.n)
	case planOrderBy:
		return c.estimateNode(p.left)
	case planGroupBy:
		_, groups := c.groupEstimate(p, c.estimateNode(p.left))
		return planEstimate{rows: groups}
	case planJoin:
		return c.joinEstimate(c.estimateNode(p.left), c.estimateNode(p.right))
	}
	return planEstimate{}
}

// filterEstimate applies a predicate's selectivity to the input estimate
// and propagates the predicate's value bounds into the surviving
// statistics: a range or equality filter tightens the filtered column's
// histogram and distinct count (stats.Restrict), so a later predicate on
// the same column is estimated against the conditional distribution
// instead of the base table's.
func (c *compiler) filterEstimate(in planEstimate, pred Predicate) planEstimate {
	rows := int(float64(in.rows) * c.selectivity(pred, in.tbl))
	if rows < 1 {
		rows = 1
	}
	lo, hi, bounded := predBounds(pred)
	if !bounded {
		return planEstimate{rows: rows, tbl: in.tbl.WithRows(rows)}
	}
	return planEstimate{rows: rows, tbl: in.tbl.Restrict(pred.Attr, lo, hi, rows)}
}

// predBounds converts a predicate to the half-open value range it
// confines its attribute to. Ne confines nothing; Lt 0 and Gt MaxUint64
// confine everything away (lo > hi, the empty range).
func predBounds(pred Predicate) (lo, hi uint64, ok bool) {
	switch pred.Op {
	case Eq:
		return pred.Value, pred.Value, true
	case Lt:
		if pred.Value == 0 {
			return 1, 0, true // empty
		}
		return 0, pred.Value - 1, true
	case Le:
		return 0, pred.Value, true
	case Gt:
		if pred.Value == math.MaxUint64 {
			return 1, 0, true // empty
		}
		return pred.Value + 1, math.MaxUint64, true
	case Ge:
		return pred.Value, math.MaxUint64, true
	}
	return 0, 0, false
}

// projectEstimate remaps the input estimate to the projected schema.
func projectEstimate(in planEstimate, attrs []int) planEstimate {
	return planEstimate{rows: in.rows, tbl: in.tbl.Project(attrs)}
}

// limitEstimate caps the input estimate at n rows.
func limitEstimate(in planEstimate, n int) planEstimate {
	rows := in.rows
	if n < rows {
		rows = n
	}
	return planEstimate{rows: rows, tbl: in.tbl.WithRows(rows)}
}

// selectivity estimates the surviving fraction of a predicate: from the
// input's column statistics when they reached this node, else the
// textbook defaults.
func (c *compiler) selectivity(pred Predicate, tbl *stats.Table) float64 {
	col := tbl.Col(pred.Attr)
	if col == nil || tbl.Rows == 0 {
		return pred.Selectivity()
	}
	var f float64
	switch pred.Op {
	case Eq:
		f = col.FracEq(pred.Value)
	case Ne:
		f = 1 - col.FracEq(pred.Value)
	case Lt:
		f = col.FracLT(pred.Value)
	case Le:
		f = col.FracLE(pred.Value)
	case Gt:
		f = 1 - col.FracLE(pred.Value)
	case Ge:
		f = 1 - col.FracLT(pred.Value)
	default:
		return pred.Selectivity()
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// groupEstimate returns (est, groups): est is the best available
// distinct-group estimate (the caller's hint first, then the key column's
// distinct count from statistics; 0 when neither exists), and groups is
// the output cardinality — est clamped to the input rows, or the rows
// themselves when no estimate exists (aggregation assumed not to shrink).
func (c *compiler) groupEstimate(p *Plan, in planEstimate) (est, groups int) {
	est = p.left.hint // GroupHint annotates the group-by's input
	if est <= 0 {
		if col := in.tbl.Col(0); col != nil {
			est = col.Distinct
		}
	}
	groups = est
	if groups <= 0 || groups > in.rows {
		groups = in.rows
	}
	return est, groups
}

// joinEstimate prices the equi-join of the two inputs on their key
// attributes: |L|·|R| / max(d_L, d_R) when both key columns carry
// distinct counts, the paper's microbenchmark default of "every probe
// record matches" (|R| rows) otherwise.
func (c *compiler) joinEstimate(l, r planEstimate) planEstimate {
	rows := r.rows
	lc, rc := l.tbl.Col(0), r.tbl.Col(0)
	if lc != nil && rc != nil && lc.Distinct > 0 && rc.Distinct > 0 {
		denom := lc.Distinct
		if rc.Distinct > denom {
			denom = rc.Distinct
		}
		rows = int(float64(l.rows) * float64(r.rows) / float64(denom))
	}
	if rows < 1 {
		rows = 1
	}
	return planEstimate{rows: rows, tbl: stats.Concat(l.tbl, r.tbl, rows)}
}

// --- Pinned-choice pricing ---

// pinnedSortProfile prices a caller-pinned sort algorithm with the same
// implementation profiles the planner ranks, so Explain reports a cost
// for pinned choices too. Unknown implementations report ok=false.
func pinnedSortProfile(a sorts.Algorithm, t, m, lambda float64) (cost.Profile, bool) {
	switch s := a.(type) {
	case *sorts.ExternalMergeSort:
		return cost.ExMSProfile(t, m), true
	case *sorts.SelectionSort:
		return cost.SelSProfile(t, m), true
	case *sorts.LazySort:
		return cost.LaSProfile(t, m, lambda), true
	case *sorts.SegmentSort:
		x := s.Intensity
		if s.Auto {
			x = cost.SegmentSortOptimalX(t, m, lambda)
		}
		return cost.SegSProfile(x, t, m), true
	case *sorts.HybridSort:
		return cost.HybSProfile(s.Intensity, t, m), true
	}
	return cost.Profile{}, false
}

// pinnedJoinProfile is pinnedSortProfile's join twin.
func pinnedJoinProfile(a joins.Algorithm, t, v, m, lambda float64) (cost.Profile, bool) {
	switch j := a.(type) {
	case *joins.NestedLoops:
		return cost.NLJProfile(t, v, m), true
	case *joins.Grace:
		return cost.GJProfile(t, v), true
	case *joins.Hash:
		return cost.HJProfile(t, v, m), true
	case *joins.LazyHash:
		return cost.LaJProfile(t, v, m, lambda), true
	case *joins.HybridGraceNL:
		x, y := j.X, j.Y
		if j.Auto {
			// The saddle solver already clamps to [0, 1].
			x, y = cost.HybridJoinSaddle(t, v, m, lambda)
		}
		return cost.HybJProfile(x, y, t, v, m), true
	case *joins.SegmentedGrace:
		return cost.SegJProfile(j.Intensity, t, v, m), true
	}
	return cost.Profile{}, false
}

// --- Open-time clamping ---

// runtimeChoice carries the planner's pricing inputs into a blocking
// operator so its Open can clamp the compile-time estimates against the
// actual input cardinalities: actuals are recorded on the shared Explain
// choice, the stage's memory share is re-split (commit propagates the
// observed divergence to the unopened stages and water-fills the
// remaining budget over them), and a non-pinned algorithm is re-chosen
// from the actual sizes at the re-split share — the misestimate repair
// the fixed selectivities and hints cannot make at compile time.
type runtimeChoice struct {
	choice    *Choice
	m         float64
	lambda    float64
	par       float64 // intra-operator parallelism the plan will run with
	blockSize int
	outBuf    float64     // joins: estimated output buffers for cost adjustment
	bp        *budgetPlan // runtime re-split state (nil: fixed shares)
	stage     *stageAlloc // this operator's allocation entry
}

// stageShare is the operator's current memory share in bytes; Ctx uses
// it to size the stage environment. Zero when the operator was built
// without the planner.
func (rc *runtimeChoice) stageShare() int64 {
	if rc == nil || rc.stage == nil {
		return 0
	}
	return rc.stage.share
}

// commit records the actual input sizes with the budget plan, re-splits
// the unopened stages' shares and updates this choice's m accordingly.
func (rc *runtimeChoice) commit(t, v float64, rows int) {
	if rc.bp == nil || rc.stage == nil {
		return
	}
	rc.m = rc.bp.commit(rc.stage.idx, t, v, rows)
	rc.choice.Share = rc.stage.share
}

// freeze marks the stage opened at its current share without re-pricing
// (used by operators that learn their input size only after running).
func (rc *runtimeChoice) freeze() {
	if rc == nil || rc.bp == nil || rc.stage == nil {
		return
	}
	rc.bp.commit(rc.stage.idx, 0, 0, 0)
}

func (rc *runtimeChoice) buffers(rows, recSize int) float64 {
	b := math.Ceil(float64(rows) * float64(recSize) / float64(rc.blockSize))
	if b < 1 {
		b = 1
	}
	return b
}

// clampSort records the actual input size, re-prices the choice at the
// actual cardinality (pinned choices via their own profile, so cost and
// algorithm always describe each other), and re-runs the planner's
// choice when it owns the decision.
func (rc *runtimeChoice) clampSort(rows, recSize int, cur sorts.Algorithm) sorts.Algorithm {
	if rc == nil {
		return cur
	}
	rc.choice.ActualRows = rows
	t := rc.buffers(rows, recSize)
	rc.commit(t, 0, rows)
	if rc.choice.Pinned {
		if prof, ok := pinnedSortProfile(cur, t, rc.m, rc.lambda); ok {
			rc.choice.Cost = prof.PriceP(1, rc.lambda, rc.par)
		}
		return cur
	}
	a, prof := ChooseSortP(t, rc.m, rc.lambda, rc.par)
	rc.choice.Cost = prof.PriceP(1, rc.lambda, rc.par)
	if a.Name() != cur.Name() {
		rc.choice.Replanned = true
		rc.choice.Algorithm = a.Name()
		return a
	}
	return cur
}

// clampJoin is clampSort's join twin (actuals are the build side's
// rows); the re-priced cost keeps the compile-time output adjustment —
// the output hasn't been produced yet, so its estimate stands.
func (rc *runtimeChoice) clampJoin(lrows, lrec, rrows, rrec int, cur joins.Algorithm) joins.Algorithm {
	if rc == nil {
		return cur
	}
	rc.choice.ActualRows = lrows
	t, v := rc.buffers(lrows, lrec), rc.buffers(rrows, rrec)
	rc.commit(t, v, lrows)
	adjust := func(price float64) float64 { return price + rc.lambda*(rc.outBuf-v) }
	if rc.choice.Pinned {
		if prof, ok := pinnedJoinProfile(cur, t, v, rc.m, rc.lambda); ok {
			rc.choice.Cost = adjust(prof.PriceP(1, rc.lambda, rc.par))
		}
		return cur
	}
	a, prof := ChooseJoinP(t, v, rc.m, rc.lambda, rc.par)
	rc.choice.Cost = adjust(prof.PriceP(1, rc.lambda, rc.par))
	if a.Name() != cur.Name() {
		rc.choice.Replanned = true
		rc.choice.Algorithm = a.Name()
		return a
	}
	return cur
}

// parOf maps a context's Parallelism knob to the effective
// intra-operator parallelism for pricing: values below 1 (including the
// "unset" zero) price serially.
func parOf(p int) float64 {
	if p < 1 {
		return 1
	}
	return float64(p)
}

// ChooseSort returns the cost-model-optimal sort for t input buffers
// with m buffers of stage memory at write/read ratio λ, along with its
// predicted I/O profile. The pricing lives in cost.BestSortPlan — the
// same function the budget allocator water-fills over — so the
// instantiated algorithm and the allocator's curves can never disagree.
func ChooseSort(t, m, lambda float64) (sorts.Algorithm, cost.Profile) {
	return ChooseSortP(t, m, lambda, 1)
}

// ChooseSortP is ChooseSort priced under par-way intra-operator
// parallelism: phases that fan out (run formation, merge passes, the
// splitter-partitioned final merge) are discounted par ways, so at high
// par the write-serial sorts lose to ExMS/HybS exactly as the engine's
// overlap clock says they should.
func ChooseSortP(t, m, lambda, par float64) (sorts.Algorithm, cost.Profile) {
	p := cost.BestSortPlanP(t, m, lambda, par)
	switch p.Algo {
	case cost.SortSelS:
		return sorts.NewSelectionSort(), p.Profile
	case cost.SortLaS:
		return sorts.NewLazySort(), p.Profile
	case cost.SortSegS:
		return sorts.NewSegmentSort(p.Intensity), p.Profile
	case cost.SortHybS:
		return sorts.NewHybridSort(p.Intensity), p.Profile
	default:
		return sorts.NewExternalMergeSort(), p.Profile
	}
}

// ChooseJoin returns the cost-model-optimal equi-join for t build-side
// and v probe-side buffers with m buffers of stage memory at ratio λ,
// along with its predicted I/O profile. Pricing delegates to
// cost.BestJoinPlan, ChooseSort-style.
func ChooseJoin(t, v, m, lambda float64) (joins.Algorithm, cost.Profile) {
	return ChooseJoinP(t, v, m, lambda, 1)
}

// ChooseJoinP is ChooseJoin priced under par-way intra-operator
// parallelism (see ChooseSortP).
func ChooseJoinP(t, v, m, lambda, par float64) (joins.Algorithm, cost.Profile) {
	p := cost.BestJoinPlanP(t, v, m, lambda, par)
	switch p.Algo {
	case cost.JoinGJ:
		return joins.NewGrace(), p.Profile
	case cost.JoinHJ:
		return joins.NewHash(), p.Profile
	case cost.JoinLaJ:
		return joins.NewLazyHash(), p.Profile
	case cost.JoinHybJ:
		return joins.NewHybridGraceNL(p.X, p.Y), p.Profile
	case cost.JoinSegJ:
		return joins.NewSegmentedGrace(p.X), p.Profile
	default:
		return joins.NewNestedLoops(), p.Profile
	}
}
