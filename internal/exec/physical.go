package exec

import (
	"fmt"
	"math"
	"strings"

	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
)

// CompileOptions tunes physical planning.
type CompileOptions struct {
	// MaterializeEveryStep inserts a Materialize barrier above every
	// non-scan operator: the naive compose-by-collections execution the
	// pipelined plan is benchmarked against.
	MaterializeEveryStep bool
}

// Choice records one physical algorithm decision for Explain.
type Choice struct {
	Operator  string  // "OrderBy", "GroupBy", "Join"
	Algorithm string  // chosen algorithm with knobs, e.g. "SegS(0.31)"
	Pinned    bool    // true when the caller fixed the algorithm
	InputRows int     // estimated input cardinality (left side for joins)
	Buffers   float64 // estimated input size in buffers (t; joins also use v)
	RightBuf  float64 // v for joins, 0 otherwise
	Cost      float64 // predicted price in buffer-read units (0 when pinned)
}

// Explain describes the compiled physical plan.
type Explain struct {
	Root        string // the physical operator tree, root first
	RecordSize  int    // byte width of the plan's output records
	Stages      int    // blocking stages sharing the budget
	TotalBudget int64  // plan M in bytes
	StageBudget int64  // per-stage share in bytes
	Lambda      float64
	Choices     []Choice
}

// String renders the explanation for CLIs and examples.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan    %s\n", e.Root)
	fmt.Fprintf(&b, "memory  %d B across %d blocking stage(s): %d B each (λ=%.1f)\n",
		e.TotalBudget, e.Stages, e.StageBudget, e.Lambda)
	for _, c := range e.Choices {
		origin := "cost model"
		if c.Pinned {
			origin = "pinned"
		}
		if c.RightBuf > 0 {
			fmt.Fprintf(&b, "choice  %-8s → %-14s (%s; t=%.0f v=%.0f buffers, est cost %.3g)\n",
				c.Operator, c.Algorithm, origin, c.Buffers, c.RightBuf, c.Cost)
		} else {
			fmt.Fprintf(&b, "choice  %-8s → %-14s (%s; t=%.0f buffers, est cost %.3g)\n",
				c.Operator, c.Algorithm, origin, c.Buffers, c.Cost)
		}
	}
	return b.String()
}

// Compile turns a logical plan into a physical operator tree, consulting
// the cost model for every sort and join the plan left open: the device
// λ, the per-stage share of the context's memory budget, and bottom-up
// cardinality estimates select the algorithm and place its
// write-intensity knob.
func Compile(ctx *Ctx, p *Plan) (Operator, *Explain, error) {
	return CompileWith(ctx, p, CompileOptions{})
}

// CompileWith is Compile with options.
func CompileWith(ctx *Ctx, p *Plan, opts CompileOptions) (Operator, *Explain, error) {
	if err := ctx.validate(); err != nil {
		return nil, nil, err
	}
	if p == nil {
		return nil, nil, fmt.Errorf("exec: nil plan")
	}
	if p.err != nil {
		return nil, nil, p.err
	}
	stages := countLogicalStages(p)
	if stages < 1 {
		stages = 1
	}
	stageBudget := ctx.MemoryBudget / int64(stages)
	if stageBudget < 1 {
		stageBudget = 1
	}
	c := &compiler{
		opts:        opts,
		lambda:      ctx.Factory.Device().Lambda(),
		blockSize:   ctx.Factory.BlockSize(),
		stageBudget: stageBudget,
	}
	root, _, err := c.build(p)
	if err != nil {
		return nil, nil, err
	}
	ex := &Explain{
		Root:        root.Name(),
		RecordSize:  root.RecordSize(),
		Stages:      stages,
		TotalBudget: ctx.MemoryBudget,
		StageBudget: stageBudget,
		Lambda:      c.lambda,
		Choices:     c.choices,
	}
	return root, ex, nil
}

// countLogicalStages counts the plan's blocking stages (order-by,
// group-by, join), mirroring Ctx.init's walk over the physical tree.
func countLogicalStages(p *Plan) int {
	if p == nil {
		return 0
	}
	n := countLogicalStages(p.left) + countLogicalStages(p.right)
	switch p.kind {
	case planOrderBy, planGroupBy, planJoin:
		n++
	}
	return n
}

type compiler struct {
	opts        CompileOptions
	lambda      float64
	blockSize   int
	stageBudget int64
	choices     []Choice
}

// memBuffers is the per-stage memory budget in buffer units (m of the
// cost model), floored at 2 like algo.Env.BudgetBuffers.
func (c *compiler) memBuffers() float64 {
	m := float64(c.stageBudget) / float64(c.blockSize)
	if m < 2 {
		m = 2
	}
	return m
}

// buffers converts a (rows, recordSize) estimate to buffer units (t or v
// of the cost model), floored at 1.
func (c *compiler) buffers(rows, recSize int) float64 {
	b := math.Ceil(float64(rows) * float64(recSize) / float64(c.blockSize))
	if b < 1 {
		b = 1
	}
	return b
}

// breaker wraps op in a Materialize barrier in MaterializeEveryStep
// mode. Blocking operators are left alone — they already materialize
// their output once, exactly like the hand-wired compose-by-collections
// caller the mode models; wrapping them too would double-count their
// writes and flatter the pipelined comparison.
func (c *compiler) breaker(op Operator) Operator {
	if !c.opts.MaterializeEveryStep {
		return op
	}
	if m, ok := op.(memoryConsumer); ok && m.consumesMemory() {
		return op
	}
	return NewMaterialize(op)
}

// build compiles the node and returns the operator plus an output
// cardinality estimate.
func (c *compiler) build(p *Plan) (Operator, int, error) {
	if p.err != nil {
		return nil, 0, p.err
	}
	switch p.kind {
	case planScan:
		return NewScan(p.col), p.col.Len(), nil

	case planFilter:
		child, rows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		if err := p.pred.validate(child.RecordSize()); err != nil {
			return nil, 0, err
		}
		est := int(float64(rows) * p.pred.Selectivity())
		if est < 1 {
			est = 1
		}
		return c.breaker(NewFilter(child, p.pred)), est, nil

	case planProject:
		child, rows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		if len(p.attrs) == 0 {
			return nil, 0, fmt.Errorf("exec: projection with no attributes")
		}
		for _, a := range p.attrs {
			if a < 0 || (a+1)*record.AttrSize > child.RecordSize() {
				return nil, 0, fmt.Errorf("exec: projected attribute a%d outside %d-byte record", a, child.RecordSize())
			}
		}
		return c.breaker(NewProject(child, p.attrs...)), rows, nil

	case planLimit:
		child, rows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		if p.n < rows {
			rows = p.n
		}
		return c.breaker(NewLimit(child, p.n)), rows, nil

	case planOrderBy:
		child, rows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		t, m := c.buffers(rows, child.RecordSize()), c.memBuffers()
		a := p.sortA
		ch := Choice{Operator: "OrderBy", InputRows: rows, Buffers: t, Pinned: a != nil}
		if a == nil {
			var prof cost.Profile
			a, prof = ChooseSort(t, m, c.lambda)
			ch.Cost = prof.Price(1, c.lambda)
		}
		ch.Algorithm = a.Name()
		c.choices = append(c.choices, ch)
		return c.breaker(NewOrderBy(child, a)), rows, nil

	case planGroupBy:
		child, rows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		// Fail width mismatches at plan time so Explain never prices a
		// group-by that cannot execute.
		if child.RecordSize() != record.Size {
			return nil, 0, fmt.Errorf("exec: group-by needs %d-byte benchmark records, input emits %d (project first)",
				record.Size, child.RecordSize())
		}
		if p.attr < 0 || p.attr >= record.NumAttrs {
			return nil, 0, fmt.Errorf("exec: aggregate attribute a%d out of schema (0..%d)", p.attr, record.NumAttrs-1)
		}
		hint := p.left.hint // GroupHint annotates the group-by's input
		groups := hint
		if groups <= 0 || groups > rows {
			groups = rows // no statistics: assume aggregation doesn't shrink
		}
		t, m := c.buffers(rows, child.RecordSize()), c.memBuffers()
		ch := Choice{Operator: "GroupBy", InputRows: rows, Buffers: t, Pinned: p.sortA != nil}
		if p.sortA != nil {
			ch.Algorithm = p.sortA.Name()
			c.choices = append(c.choices, ch)
			return c.breaker(NewGroupBy(child, p.attr, p.sortA)), groups, nil
		}
		// The hash table must fit the stage share with the paper's f
		// expansion and headroom for estimate error.
		hashCap := int(float64(c.stageBudget) / (2 * algo.HashTableExpansion * float64(record.Size)))
		if hint > 0 && groups <= hashCap {
			ch.Algorithm = "HashAgg"
			c.choices = append(c.choices, ch)
			return c.breaker(NewHashAggregate(child, p.attr)), groups, nil
		}
		a, prof := ChooseSort(t, m, c.lambda)
		ch.Algorithm = a.Name()
		ch.Cost = prof.Price(1, c.lambda)
		c.choices = append(c.choices, ch)
		return c.breaker(NewGroupBy(child, p.attr, a)), groups, nil

	case planJoin:
		left, lrows, err := c.build(p.left)
		if err != nil {
			return nil, 0, err
		}
		right, rrows, err := c.build(p.right)
		if err != nil {
			return nil, 0, err
		}
		t := c.buffers(lrows, left.RecordSize())
		v := c.buffers(rrows, right.RecordSize())
		m := c.memBuffers()
		a := p.joinA
		ch := Choice{Operator: "Join", InputRows: lrows, Buffers: t, RightBuf: v, Pinned: a != nil}
		if a == nil {
			var prof cost.Profile
			a, prof = ChooseJoin(t, v, m, c.lambda)
			ch.Cost = prof.Price(1, c.lambda)
		}
		ch.Algorithm = a.Name()
		c.choices = append(c.choices, ch)
		// The paper's microbenchmark estimate: every probe record
		// matches, so the output has |V| rows.
		return c.breaker(NewJoin(left, right, a)), rrows, nil
	}
	return nil, 0, fmt.Errorf("exec: unknown plan node %d", p.kind)
}

// ChooseSort returns the cost-model-optimal sort for t input buffers
// with m buffers of stage memory at write/read ratio λ, along with its
// predicted I/O profile. Candidates are the shipped implementations'
// profiles: ExMS, SelS, LaS, and SegS/HybS with their intensity knob
// placed by solver-seeded grid search.
func ChooseSort(t, m, lambda float64) (sorts.Algorithm, cost.Profile) {
	var (
		best     sorts.Algorithm
		bestProf cost.Profile
		bestCost = math.Inf(1)
	)
	consider := func(a sorts.Algorithm, p cost.Profile) {
		if c := p.Price(1, lambda); c < bestCost {
			best, bestProf, bestCost = a, p, c
		}
	}
	consider(sorts.NewExternalMergeSort(), cost.ExMSProfile(t, m))
	consider(sorts.NewSelectionSort(), cost.SelSProfile(t, m))
	consider(sorts.NewLazySort(), cost.LaSProfile(t, m, lambda))
	xSeg := bestKnob(lambda, func(x float64) cost.Profile { return cost.SegSProfile(x, t, m) },
		cost.SegmentSortOptimalX(t, m, lambda))
	consider(sorts.NewSegmentSort(xSeg), cost.SegSProfile(xSeg, t, m))
	xHyb := bestKnob(lambda, func(x float64) cost.Profile { return cost.HybSProfile(x, t, m) })
	consider(sorts.NewHybridSort(xHyb), cost.HybSProfile(xHyb, t, m))
	return best, bestProf
}

// ChooseJoin returns the cost-model-optimal equi-join for t build-side
// and v probe-side buffers with m buffers of stage memory at ratio λ,
// along with its predicted I/O profile. Candidates: NLJ, GJ, HJ, LaJ,
// and HybJ/SegJ with knobs placed by saddle-seeded grid search.
func ChooseJoin(t, v, m, lambda float64) (joins.Algorithm, cost.Profile) {
	var (
		best     joins.Algorithm
		bestProf cost.Profile
		bestCost = math.Inf(1)
	)
	consider := func(a joins.Algorithm, p cost.Profile) {
		if c := p.Price(1, lambda); c < bestCost {
			best, bestProf, bestCost = a, p, c
		}
	}
	consider(joins.NewNestedLoops(), cost.NLJProfile(t, v, m))
	consider(joins.NewGrace(), cost.GJProfile(t, v))
	consider(joins.NewHash(), cost.HJProfile(t, v, m))
	consider(joins.NewLazyHash(), cost.LaJProfile(t, v, m, lambda))
	sx, sy := cost.HybridJoinSaddle(t, v, m, lambda)
	bx, by, bp := 0.0, 0.0, cost.HybJProfile(0, 0, t, v, m)
	bc := bp.Price(1, lambda)
	tryXY := func(x, y float64) {
		if x < 0 || x > 1 || y < 0 || y > 1 {
			return
		}
		p := cost.HybJProfile(x, y, t, v, m)
		if c := p.Price(1, lambda); c < bc {
			bx, by, bp, bc = x, y, p, c
		}
	}
	for xi := 0; xi <= 4; xi++ {
		for yi := 0; yi <= 4; yi++ {
			tryXY(float64(xi)*0.25, float64(yi)*0.25)
		}
	}
	tryXY(sx, sy)
	consider(joins.NewHybridGraceNL(bx, by), bp)
	xSeg := bestKnob(lambda, func(x float64) cost.Profile { return cost.SegJProfile(x, t, v, m) })
	consider(joins.NewSegmentedGrace(xSeg), cost.SegJProfile(xSeg, t, v, m))
	return best, bestProf
}

// bestKnob grid-searches x ∈ [0, 1] (step 0.05) plus any analytic seeds
// for the cheapest profile price.
func bestKnob(lambda float64, f func(x float64) cost.Profile, seeds ...float64) float64 {
	bestX, bestC := 0.0, math.Inf(1)
	try := func(x float64) {
		if x < 0 || x > 1 {
			return
		}
		if c := f(x).Price(1, lambda); c < bestC {
			bestX, bestC = x, c
		}
	}
	for i := 0; i <= 20; i++ {
		try(float64(i) * 0.05)
	}
	for _, s := range seeds {
		try(s)
	}
	return bestX
}
