package exec

import (
	"context"
	"fmt"
	"io"

	"wlpm/internal/joins"
	"wlpm/internal/storage"
)

// Join equi-joins its two inputs on their key attributes (attribute 0 of
// each side) with one of the paper's join algorithms, emitting
// left‖right concatenations. The left input is the build side — plans
// put the smaller input left. Blocking: one stage share of the budget;
// at the plan root it joins straight into the output collection.
type Join struct {
	left, right Operator
	algo        joins.Algorithm
	rc          *runtimeChoice // planner handle: Open-time estimate clamping
	joined      storage.Collection
	sc          *batchScanner
}

// NewJoin returns a join of left ⋈ right with the given algorithm (the
// physical planner chooses one from the cost model).
func NewJoin(left, right Operator, a joins.Algorithm) *Join {
	return &Join{left: left, right: right, algo: a}
}

func (j *Join) Name() string {
	return fmt.Sprintf("Join[%s](%s, %s)", j.algo.Name(), j.left.Name(), j.right.Name())
}
func (j *Join) RecordSize() int      { return j.left.RecordSize() + j.right.RecordSize() }
func (j *Join) Children() []Operator { return []Operator{j.left, j.right} }
func (j *Join) consumesMemory() bool { return true }

func (j *Join) joinInto(ctx context.Context, ec *Ctx, dst storage.Collection) error {
	lcoll, lclean, err := inputCollection(ctx, ec, j.left)
	if err != nil {
		return err
	}
	rcoll, rclean, err := inputCollection(ctx, ec, j.right)
	if err != nil {
		lclean() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	// Clamp the compile-time estimates against the materialized inputs: a
	// planner-owned choice is re-priced at the actual cardinalities, and
	// the stage's budget share is re-split from the actuals first.
	j.algo = j.rc.clampJoin(lcoll.Len(), lcoll.RecordSize(), rcoll.Len(), rcoll.RecordSize(), j.algo)
	env := ec.StageEnvFor(j.rc)
	if err := j.algo.Join(env, lcoll, rcoll, dst); err != nil {
		lclean() //nolint:errcheck // best-effort cleanup after failure
		rclean() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	if err := lclean(); err != nil {
		return err
	}
	return rclean()
}

func (j *Join) Open(ctx context.Context, ec *Ctx) error {
	tmp, err := ec.tempEnv().CreateTemp("joined", j.RecordSize())
	if err != nil {
		return err
	}
	if err := j.joinInto(ctx, ec, tmp); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	if err := tmp.Close(); err != nil {
		tmp.Destroy() //nolint:errcheck // best-effort cleanup after failure
		return err
	}
	j.joined = tmp
	j.sc = newBatchScanner(tmp.Scan(), tmp.RecordSize(), ec.batchSize())
	return nil
}

func (j *Join) emitTo(ctx context.Context, ec *Ctx, out storage.Collection) error {
	return j.joinInto(ctx, ec, out)
}

func (j *Join) Next(context.Context) (*Batch, error) {
	if j.sc == nil {
		return nil, io.EOF
	}
	return j.sc.next()
}

// limitHint caps the reads of the joined result; the join itself ran in
// full at Open, exactly like the record engine.
func (j *Join) limitHint(n int) {
	if j.sc != nil {
		j.sc.limit(n)
	}
}

func (j *Join) Close() error {
	var first error
	if j.sc != nil {
		first = j.sc.Close()
		j.sc = nil
	}
	if j.joined != nil {
		if err := j.joined.Destroy(); err != nil && first == nil {
			first = err
		}
		j.joined = nil
	}
	if err := closeAll(j.left, j.right); err != nil && first == nil {
		first = err
	}
	return first
}

func (j *Join) source() (storage.Collection, bool) { return j.joined, j.joined != nil }
