package exec

import (
	"bytes"
	"math"
	"testing"
	"time"

	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage/all"
)

// plannerGrid is the (λ, memory-fraction) sweep of the planner tests:
// write/read ratios from near-symmetric to deeply asymmetric media, and
// the paper's 1–15% memory sweep endpoints plus its middle.
var plannerGrid = struct {
	lambdas []float64
	fracs   []float64
}{
	lambdas: []float64{1.5, 2, 5, 15, 40},
	fracs:   []float64{0.01, 0.05, 0.15},
}

// sortCandidates enumerates exactly the planner's candidate set for the
// test's independent argmin.
func sortCandidates(t, m, lambda float64) map[string]cost.Profile {
	c := map[string]cost.Profile{
		sorts.NewExternalMergeSort().Name(): cost.ExMSProfile(t, m),
		sorts.NewSelectionSort().Name():     cost.SelSProfile(t, m),
		sorts.NewLazySort().Name():          cost.LaSProfile(t, m, lambda),
	}
	xSeg := cost.BestKnob(lambda, func(x float64) cost.Profile { return cost.SegSProfile(x, t, m) },
		cost.SegmentSortOptimalX(t, m, lambda))
	c[sorts.NewSegmentSort(xSeg).Name()] = cost.SegSProfile(xSeg, t, m)
	xHyb := cost.BestKnob(lambda, func(x float64) cost.Profile { return cost.HybSProfile(x, t, m) })
	c[sorts.NewHybridSort(xHyb).Name()] = cost.HybSProfile(xHyb, t, m)
	return c
}

func TestChooseSortAgreesWithCheapestPrediction(t *testing.T) {
	const tBuf = 4000.0
	for _, lambda := range plannerGrid.lambdas {
		for _, frac := range plannerGrid.fracs {
			m := tBuf * frac
			a, prof := ChooseSort(tBuf, m, lambda)
			price := prof.Price(1, lambda)

			bestName, bestPrice := "", math.Inf(1)
			for name, p := range sortCandidates(tBuf, m, lambda) {
				if c := p.Price(1, lambda); c < bestPrice {
					bestName, bestPrice = name, c
				}
			}
			if price > bestPrice*(1+1e-12) {
				t.Errorf("λ=%.1f m=%.0f: planner chose %s at %.4g, cheapest prediction is %s at %.4g",
					lambda, m, a.Name(), price, bestName, bestPrice)
			}
			t.Logf("λ=%4.1f mem=%4.0f%%: sort → %-12s (est %.4g)", lambda, frac*100, a.Name(), price)
		}
	}
}

func joinCandidates(t, v, m, lambda float64) map[string]cost.Profile {
	c := map[string]cost.Profile{
		joins.NewNestedLoops().Name(): cost.NLJProfile(t, v, m),
		joins.NewGrace().Name():       cost.GJProfile(t, v),
		joins.NewHash().Name():        cost.HJProfile(t, v, m),
		joins.NewLazyHash().Name():    cost.LaJProfile(t, v, m, lambda),
	}
	sx, sy := cost.HybridJoinSaddle(t, v, m, lambda)
	bx, by, bc := 0.0, 0.0, math.Inf(1)
	try := func(x, y float64) {
		if p := cost.HybJProfile(x, y, t, v, m).Price(1, lambda); p < bc {
			bx, by, bc = x, y, p
		}
	}
	for xi := 0; xi <= 4; xi++ {
		for yi := 0; yi <= 4; yi++ {
			try(float64(xi)*0.25, float64(yi)*0.25)
		}
	}
	if sx >= 0 && sx <= 1 && sy >= 0 && sy <= 1 {
		try(sx, sy)
	}
	c[joins.NewHybridGraceNL(bx, by).Name()] = cost.HybJProfile(bx, by, t, v, m)
	xSeg := cost.BestKnob(lambda, func(x float64) cost.Profile { return cost.SegJProfile(x, t, v, m) })
	c[joins.NewSegmentedGrace(xSeg).Name()] = cost.SegJProfile(xSeg, t, v, m)
	return c
}

func TestChooseJoinAgreesWithCheapestPrediction(t *testing.T) {
	const tBuf = 1000.0
	const vBuf = 10 * tBuf
	for _, lambda := range plannerGrid.lambdas {
		for _, frac := range plannerGrid.fracs {
			m := tBuf * frac
			a, prof := ChooseJoin(tBuf, vBuf, m, lambda)
			price := prof.Price(1, lambda)

			bestName, bestPrice := "", math.Inf(1)
			for name, p := range joinCandidates(tBuf, vBuf, m, lambda) {
				if c := p.Price(1, lambda); c < bestPrice {
					bestName, bestPrice = name, c
				}
			}
			if price > bestPrice*(1+1e-12) {
				t.Errorf("λ=%.1f m=%.0f: planner chose %s at %.4g, cheapest prediction is %s at %.4g",
					lambda, m, a.Name(), price, bestName, bestPrice)
			}
			t.Logf("λ=%4.1f mem=%4.0f%%: join → %-14s (est %.4g)", lambda, frac*100, a.Name(), price)
		}
	}
}

// TestPlannerRespondsToLambda pins the qualitative behaviour the paper
// predicts: as writes get more expensive, the planner trades reads for
// writes — the chosen plan's predicted write volume is non-increasing
// in λ and strictly drops across the sweep.
func TestPlannerRespondsToLambda(t *testing.T) {
	const tBuf, m = 4000.0, 200.0 // 5% memory
	prevWrites := math.Inf(1)
	first, last := 0.0, 0.0
	for _, lambda := range []float64{1, 2, 5, 15, 40, 100} {
		_, prof := ChooseSort(tBuf, m, lambda)
		if prof.Writes > prevWrites {
			t.Errorf("λ=%.0f: chosen writes %v above cheaper-λ choice %v", lambda, prof.Writes, prevWrites)
		}
		prevWrites = prof.Writes
		if lambda == 1 {
			first = prof.Writes
		}
		last = prof.Writes
	}
	if last >= first {
		t.Errorf("write volume never dropped across λ sweep (%.0f → %.0f)", first, last)
	}
}

// TestCompileConsultsCostModel checks the wiring: the Explain choices of
// a compiled plan are exactly what ChooseSort/ChooseJoin return for the
// cardinalities and stage budget the compiler derives.
func TestCompileConsultsCostModel(t *testing.T) {
	r := newRig(t)
	dim1, _, fact := r.loadStar(t, testDim, testFact)
	ctx := r.ctx(testBudget, 1)
	plan := Table(dim1).Join(Table(fact)).OrderBy()
	_, ex, err := Compile(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Choices) != 2 {
		t.Fatalf("explain has %d choices, want 2 (join, orderby): %+v", len(ex.Choices), ex.Choices)
	}
	lambda := r.fac.Device().Lambda()
	bs := float64(r.fac.BlockSize())
	// Each choice is priced at the budget allocator's share for its
	// stage, surfaced both on the choice and in StageShares.
	if len(ex.StageShares) != 2 {
		t.Fatalf("stage shares %v, want 2 entries", ex.StageShares)
	}
	mOf := func(share int64) float64 {
		m := float64(share) / bs
		if m < 2 {
			m = 2
		}
		return m
	}
	for i, c := range ex.Choices {
		if c.Share != ex.StageShares[i] {
			t.Errorf("choice %d share %d, want stage share %d", i, c.Share, ex.StageShares[i])
		}
	}
	tJoin := math.Ceil(float64(testDim) * record.Size / bs)
	vJoin := math.Ceil(float64(testFact) * record.Size / bs)
	wantJoin, _ := ChooseJoin(tJoin, vJoin, mOf(ex.Choices[0].Share), lambda)
	if ex.Choices[0].Algorithm != wantJoin.Name() {
		t.Errorf("join choice %s, want %s", ex.Choices[0].Algorithm, wantJoin.Name())
	}
	// Order-by input: the join output estimate (|V| rows of 160 B).
	tSort := math.Ceil(float64(testFact) * 2 * record.Size / bs)
	wantSort, _ := ChooseSort(tSort, mOf(ex.Choices[1].Share), lambda)
	if ex.Choices[1].Algorithm != wantSort.Name() {
		t.Errorf("orderby choice %s, want %s", ex.Choices[1].Algorithm, wantSort.Name())
	}
}

// TestAutoPlanByteIdenticalToFixedPlans runs the star pipeline with the
// planner free, then pins every sort and join algorithm in turn: all
// outputs must be byte-identical (the final order-by canonicalizes
// emission order).
func TestAutoPlanByteIdenticalToFixedPlans(t *testing.T) {
	runPlan := func(sortA sorts.Algorithm, joinA joins.Algorithm) []byte {
		r := newRig(t)
		dim1, dim2, fact := r.loadStar(t, testDim, testFact)
		ctx := r.ctx(testBudget, 1)
		root, _, err := Compile(ctx, starPlan(dim1, dim2, fact, sortA, joinA))
		if err != nil {
			t.Fatal(err)
		}
		out := r.create(t, "out", record.Size)
		if err := Run(ctx, root, out); err != nil {
			t.Fatal(err)
		}
		return readBytes(t, out)
	}

	auto := runPlan(nil, nil) // both choices left to the planner
	if len(auto) == 0 {
		t.Fatal("auto plan produced no output")
	}
	for _, sortA := range []sorts.Algorithm{
		sorts.NewExternalMergeSort(),
		sorts.NewSelectionSort(),
		sorts.NewSegmentSort(0.5),
		sorts.NewHybridSort(0.5),
		sorts.NewLazySort(),
	} {
		if got := runPlan(sortA, joins.NewGrace()); !bytes.Equal(got, auto) {
			t.Errorf("fixed sort %s: output differs from auto plan", sortA.Name())
		}
	}
	for _, joinA := range []joins.Algorithm{
		joins.NewNestedLoops(),
		joins.NewHash(),
		joins.NewGrace(),
		joins.NewHybridGraceNL(0.5, 0.5),
		joins.NewSegmentedGrace(0.5),
		joins.NewLazyHash(),
	} {
		if got := runPlan(sorts.NewExternalMergeSort(), joinA); !bytes.Equal(got, auto) {
			t.Errorf("fixed join %s: output differs from auto plan", joinA.Name())
		}
	}
}

// TestPlannerLambdaFromDevice checks the λ plumbed into Compile is the
// device's, not a constant: a near-symmetric device must yield ExMS for
// a large sort while the default λ=15 device does not at tight memory.
func TestPlannerLambdaFromDevice(t *testing.T) {
	build := func(read, write time.Duration) string {
		dev := pmem.MustOpen(pmem.Config{Capacity: 64 << 20, ReadLatency: read, WriteLatency: write})
		fac, err := all.New("blocked", dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		in, err := fac.Create("in", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		if err := record.Generate(20000, 5, in.Append); err != nil {
			t.Fatal(err)
		}
		in.Close()
		ctx := NewCtx(fac, int64(20000*record.Size/100), 1) // 1% memory
		_, ex, err := Compile(ctx, Table(in).OrderBy())
		if err != nil {
			t.Fatal(err)
		}
		return ex.Choices[0].Algorithm
	}
	sym := build(10*time.Nanosecond, 10*time.Nanosecond)
	asym := build(10*time.Nanosecond, 1500*time.Nanosecond) // λ=150
	if asym == sym {
		t.Errorf("λ=1 and λ=150 devices both choose %s: device λ not consulted", asym)
	}
}
