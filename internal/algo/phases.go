package algo

import (
	"sort"
	"sync"
	"time"

	"wlpm/internal/pmem"
)

// PhaseStat aggregates one named phase of an operator invocation: real
// wall time plus the device-counter delta (cacheline reads and writes,
// serial and overlapped simulated I/O, software overhead) charged while
// the phase ran.
type PhaseStat struct {
	Wall  time.Duration
	Stats pmem.Stats
}

// PhaseRecorder collects PhaseStats by name. One recorder is shared by
// all environments of an invocation (Split children, Derive siblings);
// its methods are safe for concurrent use, though phases themselves must
// not nest or overlap — the device counters they snapshot are global.
type PhaseRecorder struct {
	mu     sync.Mutex
	phases map[string]PhaseStat
}

// NewPhaseRecorder returns an empty recorder.
func NewPhaseRecorder() *PhaseRecorder {
	return &PhaseRecorder{phases: make(map[string]PhaseStat)}
}

func (r *PhaseRecorder) add(name string, wall time.Duration, st pmem.Stats) {
	r.mu.Lock()
	p := r.phases[name]
	p.Wall += wall
	p.Stats = p.Stats.Add(st)
	r.phases[name] = p
	r.mu.Unlock()
}

// Phase returns the accumulated stats for one phase name (zero value if
// the phase never ran).
func (r *PhaseRecorder) Phase(name string) PhaseStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases[name]
}

// Phases returns a copy of every recorded phase.
func (r *PhaseRecorder) Phases() map[string]PhaseStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]PhaseStat, len(r.phases))
	for k, v := range r.phases {
		out[k] = v
	}
	return out
}

// Names returns the recorded phase names in sorted order.
func (r *PhaseRecorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.phases))
	for k := range r.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WithPhases attaches a phase recorder to the environment and returns
// it. Split children and Derive siblings inherit the recorder.
func (e *Env) WithPhases(r *PhaseRecorder) *Env {
	e.phases = r
	return e
}

// Phases returns the environment's phase recorder, nil when none is
// attached.
func (e *Env) Phases() *PhaseRecorder { return e.phases }

// TimePhase runs fn, accounting its wall time and device-counter delta
// to the named phase. Without a recorder (the default) it is fn()
// verbatim — phase bracketing never changes execution, only attribution.
func (e *Env) TimePhase(name string, fn func() error) error {
	if e.phases == nil || e.Factory == nil {
		return fn()
	}
	dev := e.Factory.Device()
	if dev == nil {
		return fn()
	}
	before := dev.Stats()
	start := time.Now()
	err := fn()
	e.phases.add(name, time.Since(start), dev.Stats().Sub(before))
	return err
}
