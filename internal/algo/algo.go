// Package algo holds the execution environment shared by the sort and
// join operators: the persistence-layer factory for spilling intermediate
// results, the DRAM working-memory budget M, and the device cost ratio λ
// that the write-limited algorithms consult when placing their knobs.
package algo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"wlpm/internal/storage"
)

// HashTableExpansion is f, the growth of a partition when a hash table is
// built over it; the paper assumes f = 1.2 (§2.2.1, Fig. 2 discussion).
const HashTableExpansion = 1.2

// Env is the execution environment of one operator invocation.
//
// An Env (and the collections it creates) is owned by one goroutine at a
// time. Parallel operators obtain per-worker child environments via Split,
// whose budgets sum to the parent's M so the paper's cost model keeps
// holding under parallel execution.
type Env struct {
	// Factory creates temporary collections (runs, partitions,
	// intermediate inputs) on the persistence layer under test.
	Factory storage.Factory
	// MemoryBudget is M: the DRAM working memory in bytes available to
	// the operator (heaps, hash tables, merge buffers).
	MemoryBudget int64
	// Parallelism is P: the number of workers independent phases (run
	// formation, intermediate merges, partitioning, probing) may fan out
	// to. Zero or one means serial execution, the paper's configuration.
	Parallelism int

	ns     string // temp-name namespace ("" for the root environment)
	tmpSeq int

	// ctx carries the invocation's cancellation signal. Algorithms poll
	// it between batches via Poll/Canceled; nil means "never cancelled".
	ctx context.Context
	// temps registers every live temporary created through this
	// environment (shared across Split children and Derive siblings), so
	// an aborted or cancelled operator can sweep its spill/partition
	// collections instead of leaking them.
	temps *tempTracker
	// phases optionally attributes wall time and device traffic to named
	// operator phases (see TimePhase); nil means no attribution.
	phases *PhaseRecorder
}

// tempTracker records live temporary collections by name. Shared by the
// worker environments of one operator invocation, hence the mutex.
type tempTracker struct {
	mu   sync.Mutex
	live map[string]storage.Collection
}

func (t *tempTracker) add(c storage.Collection) {
	t.mu.Lock()
	t.live[c.Name()] = c
	t.mu.Unlock()
}

func (t *tempTracker) remove(name string) {
	t.mu.Lock()
	delete(t.live, name)
	t.mu.Unlock()
}

// trackedCollection deregisters itself from the tracker on Destroy, so
// the sweep only ever sees genuinely live temporaries.
type trackedCollection struct {
	storage.Collection
	t *tempTracker
}

func (c *trackedCollection) Destroy() error {
	c.t.remove(c.Name())
	return c.Collection.Destroy()
}

// Unwrap exposes the underlying collection for capability probes
// (storage.AsRangeAppender) that must see through decorators.
func (c *trackedCollection) Unwrap() storage.Collection { return c.Collection }

// envSeq numbers root environments so that concurrent operator
// invocations sharing one factory create temporaries in disjoint name
// spaces.
var envSeq atomic.Int64

// NewEnv builds an environment with the given factory and budget.
func NewEnv(f storage.Factory, memoryBudget int64) *Env {
	return &Env{
		Factory:      f,
		MemoryBudget: memoryBudget,
		ns:           fmt.Sprintf("e%d.", envSeq.Add(1)),
		temps:        &tempTracker{live: make(map[string]storage.Collection)},
	}
}

// NewParallelEnv builds an environment that fans independent work out to
// up to parallelism workers.
func NewParallelEnv(f storage.Factory, memoryBudget int64, parallelism int) *Env {
	e := NewEnv(f, memoryBudget)
	e.Parallelism = parallelism
	return e
}

// WithContext attaches a cancellation context to the environment and
// returns it. Split children and Derive siblings inherit the context.
func (e *Env) WithContext(ctx context.Context) *Env {
	e.ctx = ctx
	return e
}

// Context returns the environment's cancellation context (Background
// when none was attached).
func (e *Env) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Canceled reports the environment's cancellation error, nil while the
// invocation may keep running. It is cheap enough to call between
// batches; record loops should amortize it through Poll.
func (e *Env) Canceled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// PollInterval is the record granularity at which the operators' tight
// loops check cancellation: fine enough that a cancelled query stops
// mid-run/mid-merge/mid-probe even when parallel workers hold small
// per-chunk record counts, coarse enough that the check never shows up
// in a profile.
const PollInterval = 256

// Poll returns a per-record cancellation check that consults the
// context only every PollInterval calls. The returned closure is not
// safe for concurrent use; create one per worker.
func (e *Env) Poll() func() error {
	if e.ctx == nil {
		return func() error { return nil }
	}
	n := 0
	return func() error {
		n++
		if n < PollInterval {
			return nil
		}
		n = 0
		return e.ctx.Err()
	}
}

// Derive returns an environment with the given budget that shares e's
// factory, parallelism, context and temp tracker — the per-stage
// environment of a plan whose blocking stages split one budget.
func (e *Env) Derive(memoryBudget int64) *Env {
	e.tmpSeq++
	return &Env{
		Factory:      e.Factory,
		MemoryBudget: memoryBudget,
		Parallelism:  e.Parallelism,
		ns:           fmt.Sprintf("%sd%d.", e.ns, e.tmpSeq),
		ctx:          e.ctx,
		temps:        e.temps,
		phases:       e.phases,
	}
}

// LiveTemps reports the number of live temporaries created through this
// environment (including Split children and Derive siblings) — zero
// after a clean run or a complete sweep; leak tests assert on it.
func (e *Env) LiveTemps() int {
	if e.temps == nil {
		return 0
	}
	e.temps.mu.Lock()
	defer e.temps.mu.Unlock()
	return len(e.temps.live)
}

// SweepTemps destroys every live temporary created through this
// environment, returning the first destroy error. It is the
// error-and-cancellation janitor: operators that abort mid-phase leave
// their runs and partitions behind, and the owner of the environment
// sweeps them instead of leaking device space.
func (e *Env) SweepTemps() error {
	if e.temps == nil {
		return nil
	}
	e.temps.mu.Lock()
	live := make([]storage.Collection, 0, len(e.temps.live))
	for _, c := range e.temps.live {
		live = append(live, c)
	}
	e.temps.mu.Unlock()
	var first error
	for _, c := range live {
		if err := c.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Validate reports configuration errors.
func (e *Env) Validate() error {
	if e.Factory == nil {
		return fmt.Errorf("algo: nil storage factory")
	}
	if e.MemoryBudget <= 0 {
		return fmt.Errorf("algo: memory budget must be positive, got %d", e.MemoryBudget)
	}
	if e.Parallelism < 0 {
		return fmt.Errorf("algo: parallelism must be non-negative, got %d", e.Parallelism)
	}
	return nil
}

// TempName returns a fresh collection name with the given prefix.
func (e *Env) TempName(prefix string) string {
	e.tmpSeq++
	return fmt.Sprintf("%s%s.%d", e.ns, prefix, e.tmpSeq)
}

// CreateTemp creates a temporary collection for intermediate results.
// The temporary is tracked until destroyed, so SweepTemps can clean up
// after an aborted or cancelled invocation.
func (e *Env) CreateTemp(prefix string, recSize int) (storage.Collection, error) {
	c, err := e.Factory.Create(e.TempName(prefix), recSize)
	if err != nil {
		return nil, err
	}
	if e.temps == nil {
		return c, nil
	}
	tc := &trackedCollection{Collection: c, t: e.temps}
	e.temps.add(tc)
	return tc, nil
}

// Lambda is the device's current write/read cost ratio λ.
func (e *Env) Lambda() float64 { return e.Factory.Device().Lambda() }

// BudgetRecords converts the byte budget to whole records of size recSize.
func (e *Env) BudgetRecords(recSize int) int {
	n := int(e.MemoryBudget / int64(recSize))
	if n < 1 {
		n = 1
	}
	return n
}

// BudgetHashRecords is the number of records of size recSize whose hash
// table fits in the budget, accounting for the expansion factor f.
func (e *Env) BudgetHashRecords(recSize int) int {
	n := int(float64(e.MemoryBudget) / (HashTableExpansion * float64(recSize)))
	if n < 1 {
		n = 1
	}
	return n
}

// BudgetBuffers converts the byte budget to persistence-layer blocks, the
// unit that bounds merge fan-in.
func (e *Env) BudgetBuffers() int {
	n := int(e.MemoryBudget / int64(e.Factory.BlockSize()))
	if n < 2 {
		n = 2
	}
	return n
}
