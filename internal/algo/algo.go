// Package algo holds the execution environment shared by the sort and
// join operators: the persistence-layer factory for spilling intermediate
// results, the DRAM working-memory budget M, and the device cost ratio λ
// that the write-limited algorithms consult when placing their knobs.
package algo

import (
	"fmt"
	"sync/atomic"

	"wlpm/internal/storage"
)

// HashTableExpansion is f, the growth of a partition when a hash table is
// built over it; the paper assumes f = 1.2 (§2.2.1, Fig. 2 discussion).
const HashTableExpansion = 1.2

// Env is the execution environment of one operator invocation.
//
// An Env (and the collections it creates) is owned by one goroutine at a
// time. Parallel operators obtain per-worker child environments via Split,
// whose budgets sum to the parent's M so the paper's cost model keeps
// holding under parallel execution.
type Env struct {
	// Factory creates temporary collections (runs, partitions,
	// intermediate inputs) on the persistence layer under test.
	Factory storage.Factory
	// MemoryBudget is M: the DRAM working memory in bytes available to
	// the operator (heaps, hash tables, merge buffers).
	MemoryBudget int64
	// Parallelism is P: the number of workers independent phases (run
	// formation, intermediate merges, partitioning, probing) may fan out
	// to. Zero or one means serial execution, the paper's configuration.
	Parallelism int

	ns     string // temp-name namespace ("" for the root environment)
	tmpSeq int
}

// envSeq numbers root environments so that concurrent operator
// invocations sharing one factory create temporaries in disjoint name
// spaces.
var envSeq atomic.Int64

// NewEnv builds an environment with the given factory and budget.
func NewEnv(f storage.Factory, memoryBudget int64) *Env {
	return &Env{Factory: f, MemoryBudget: memoryBudget, ns: fmt.Sprintf("e%d.", envSeq.Add(1))}
}

// NewParallelEnv builds an environment that fans independent work out to
// up to parallelism workers.
func NewParallelEnv(f storage.Factory, memoryBudget int64, parallelism int) *Env {
	e := NewEnv(f, memoryBudget)
	e.Parallelism = parallelism
	return e
}

// Validate reports configuration errors.
func (e *Env) Validate() error {
	if e.Factory == nil {
		return fmt.Errorf("algo: nil storage factory")
	}
	if e.MemoryBudget <= 0 {
		return fmt.Errorf("algo: memory budget must be positive, got %d", e.MemoryBudget)
	}
	if e.Parallelism < 0 {
		return fmt.Errorf("algo: parallelism must be non-negative, got %d", e.Parallelism)
	}
	return nil
}

// TempName returns a fresh collection name with the given prefix.
func (e *Env) TempName(prefix string) string {
	e.tmpSeq++
	return fmt.Sprintf("%s%s.%d", e.ns, prefix, e.tmpSeq)
}

// CreateTemp creates a temporary collection for intermediate results.
func (e *Env) CreateTemp(prefix string, recSize int) (storage.Collection, error) {
	return e.Factory.Create(e.TempName(prefix), recSize)
}

// Lambda is the device's current write/read cost ratio λ.
func (e *Env) Lambda() float64 { return e.Factory.Device().Lambda() }

// BudgetRecords converts the byte budget to whole records of size recSize.
func (e *Env) BudgetRecords(recSize int) int {
	n := int(e.MemoryBudget / int64(recSize))
	if n < 1 {
		n = 1
	}
	return n
}

// BudgetHashRecords is the number of records of size recSize whose hash
// table fits in the budget, accounting for the expansion factor f.
func (e *Env) BudgetHashRecords(recSize int) int {
	n := int(float64(e.MemoryBudget) / (HashTableExpansion * float64(recSize)))
	if n < 1 {
		n = 1
	}
	return n
}

// BudgetBuffers converts the byte budget to persistence-layer blocks, the
// unit that bounds merge fan-in.
func (e *Env) BudgetBuffers() int {
	n := int(e.MemoryBudget / int64(e.Factory.BlockSize()))
	if n < 2 {
		n = 2
	}
	return n
}
