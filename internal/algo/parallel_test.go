package algo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/storage/blocked"
)

func newParallelTestEnv(t *testing.T, budget int64, parallelism int) *Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 16 << 20})
	e := NewParallelEnv(blocked.New(dev, 0), budget, parallelism)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		parallelism, tasks, want int
	}{
		{0, 10, 1},
		{1, 10, 1},
		{4, 10, 4},
		{4, 3, 3},
		{4, 0, 1},
		{8, 1, 1},
	}
	for _, c := range cases {
		e := &Env{Parallelism: c.parallelism}
		if got := e.Workers(c.tasks); got != c.want {
			t.Errorf("Workers(P=%d, tasks=%d) = %d, want %d", c.parallelism, c.tasks, got, c.want)
		}
	}
}

func TestSplitBudgetsSumToM(t *testing.T) {
	e := newParallelTestEnv(t, 1<<20, 4)
	children := e.Split(4)
	if len(children) != 4 {
		t.Fatalf("Split(4) returned %d children", len(children))
	}
	var sum int64
	for _, c := range children {
		if c.Parallelism != 1 {
			t.Errorf("child parallelism = %d, want 1 (no nested fan-out)", c.Parallelism)
		}
		if c.Factory != e.Factory {
			t.Error("child does not share the parent factory")
		}
		sum += c.MemoryBudget
	}
	if sum > e.MemoryBudget {
		t.Errorf("children budgets sum to %d > parent M %d", sum, e.MemoryBudget)
	}
}

// TestSplitTempNamesDisjoint creates temporaries concurrently from every
// child of two successive Split generations; all names must be unique
// (the factory rejects duplicates).
func TestSplitTempNamesDisjoint(t *testing.T) {
	e := newParallelTestEnv(t, 1<<20, 4)
	for gen := 0; gen < 2; gen++ {
		children := e.Split(4)
		var wg sync.WaitGroup
		errCh := make(chan error, len(children))
		for _, c := range children {
			wg.Add(1)
			go func(c *Env) {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					if _, err := c.CreateTemp("run", 80); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("generation %d: %v", gen, err)
		}
	}
}

func TestRunWorkersError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := RunWorkers(4, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunWorkers error = %v, want %v", err, sentinel)
	}
	if ran.Load() != 4 {
		t.Fatalf("only %d workers ran; all must run to completion", ran.Load())
	}
}

func TestRunWorkersInline(t *testing.T) {
	calls := 0
	if err := RunWorkers(1, func(i int) error {
		calls++
		if i != 0 {
			t.Errorf("worker index %d, want 0", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

// TestTurnstileOrders checks that ordered sections execute in worker-index
// order even when workers arrive in reverse.
func TestTurnstileOrders(t *testing.T) {
	const w = 8
	ts := NewTurnstile(w)
	var order []int
	var mu sync.Mutex
	err := RunWorkers(w, func(i int) error {
		ts.Wait(i)
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		ts.Done(i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("ordered sections ran as %v", order)
		}
	}
}

func TestSplitRangeCovers(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, w := range []int{1, 3, 8} {
			next := 0
			for i := 0; i < w; i++ {
				lo, hi := SplitRange(n, w, i)
				if lo != next {
					t.Fatalf("SplitRange(%d,%d,%d) = [%d,%d), want lo %d", n, w, i, lo, hi, next)
				}
				if hi < lo {
					t.Fatalf("SplitRange(%d,%d,%d) = [%d,%d): inverted", n, w, i, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("SplitRange(%d,%d,·) covers [0,%d), want [0,%d)", n, w, next, n)
			}
		}
	}
}

func TestValidateRejectsNegativeParallelism(t *testing.T) {
	e := newParallelTestEnv(t, 1<<20, 0)
	e.Parallelism = -1
	if err := e.Validate(); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
