package algo

import (
	"testing"

	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage/all"
)

func testEnv(t *testing.T, budget int64) *Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 8 << 20})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(f, budget)
}

func TestValidate(t *testing.T) {
	if err := testEnv(t, 1024).Validate(); err != nil {
		t.Errorf("valid env rejected: %v", err)
	}
	if err := testEnv(t, 0).Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	if err := (&Env{MemoryBudget: 10}).Validate(); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestTempNamesUnique(t *testing.T) {
	env := testEnv(t, 1024)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		name := env.TempName("run")
		if seen[name] {
			t.Fatalf("duplicate temp name %q", name)
		}
		seen[name] = true
	}
}

func TestCreateTemp(t *testing.T) {
	env := testEnv(t, 1024)
	c1, err := env.CreateTemp("t", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := env.CreateTemp("t", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Name() == c2.Name() {
		t.Error("temps share a name")
	}
}

func TestBudgetConversions(t *testing.T) {
	env := testEnv(t, 8000)
	if got := env.BudgetRecords(80); got != 100 {
		t.Errorf("BudgetRecords = %d, want 100", got)
	}
	if got := env.BudgetHashRecords(80); got != 83 { // 8000/(1.2·80)
		t.Errorf("BudgetHashRecords = %d, want 83", got)
	}
	if got := env.BudgetBuffers(); got != 7 { // 8000/1024
		t.Errorf("BudgetBuffers = %d, want 7", got)
	}
	// Degenerate budgets clamp to usable minima.
	small := testEnv(t, 10)
	if small.BudgetRecords(80) != 1 || small.BudgetHashRecords(80) != 1 || small.BudgetBuffers() != 2 {
		t.Errorf("degenerate budget clamps: %d %d %d",
			small.BudgetRecords(80), small.BudgetHashRecords(80), small.BudgetBuffers())
	}
}

func TestLambda(t *testing.T) {
	env := testEnv(t, 1024)
	if got := env.Lambda(); got != 15 {
		t.Errorf("Lambda = %v, want 15", got)
	}
}
