package algo

import (
	"fmt"
	"sync"
)

// Workers reports the effective worker count for tasks independent units
// of work: the environment's parallelism clamped to [1, tasks].
func (e *Env) Workers(tasks int) int {
	w := e.Parallelism
	if w < 1 {
		w = 1
	}
	if tasks < 1 {
		tasks = 1
	}
	if w > tasks {
		w = tasks
	}
	return w
}

// Split returns w child environments for one parallel phase. Each child
// shares the parent's factory, runs serially (Parallelism 1), and receives
// a 1/w share of the parent's memory budget, so the children's budgets sum
// to M and the write-limited cost model's memory accounting is preserved.
// Children create temporary collections in disjoint name spaces, so they
// may be used concurrently (one child per goroutine) without coordinating
// on the parent's name sequence.
func (e *Env) Split(w int) []*Env {
	if w < 1 {
		w = 1
	}
	e.tmpSeq++ // one generation number per Split, so successive phases never collide
	gen := e.tmpSeq
	share := e.MemoryBudget / int64(w)
	if share < 1 {
		share = 1
	}
	children := make([]*Env, w)
	for i := range children {
		children[i] = &Env{
			Factory:      e.Factory,
			MemoryBudget: share,
			Parallelism:  1,
			ns:           fmt.Sprintf("%sg%d.w%d.", e.ns, gen, i),
			ctx:          e.ctx,
			temps:        e.temps,
			phases:       e.phases,
		}
	}
	return children
}

// RunWorkers runs fn(0..w-1) on w goroutines and waits for all of them.
// Every worker runs to completion regardless of other workers' errors (a
// worker participating in ordered emission must reach its turn hand-off);
// the first error by worker index is returned. w ≤ 1 calls fn(0) inline.
func RunWorkers(w int, fn func(worker int) error) error {
	if w <= 1 {
		return fn(0)
	}
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWorkers is the package function plus device worker registration:
// the whole parallel section is bracketed by w entries on the
// environment's device overlap clock (pmem EnterWorker/LeaveWorker), so
// the simulated response time of the phase reflects w partition accesses
// in flight at once instead of summing them serially. Registering the
// section rather than each worker goroutine keeps the overlap credit
// deterministic — it models the declared width w, not however many
// workers the host's scheduler happened to interleave. w ≤ 1 is the
// package function unchanged — the serial clock and the overlap clock
// advance identically.
func (e *Env) RunWorkers(w int, fn func(worker int) error) error {
	if w <= 1 || e.Factory == nil {
		return RunWorkers(w, fn)
	}
	dev := e.Factory.Device()
	if dev == nil {
		return RunWorkers(w, fn)
	}
	for i := 0; i < w; i++ {
		dev.EnterWorker()
	}
	defer func() {
		for i := 0; i < w; i++ {
			dev.LeaveWorker()
		}
	}()
	return RunWorkers(w, fn)
}

// Turnstile serializes one ordered section across w concurrent workers:
// worker i's Wait(i) returns only after workers 0..i-1 have called
// Done. Operators use it to emit into a shared output collection in task
// order while the work that produces the emissions runs in parallel.
type Turnstile struct {
	gates []chan struct{}
}

// NewTurnstile returns a turnstile for w workers with worker 0's gate open.
func NewTurnstile(w int) *Turnstile {
	t := &Turnstile{gates: make([]chan struct{}, w+1)}
	for i := range t.gates {
		t.gates[i] = make(chan struct{})
	}
	close(t.gates[0])
	return t
}

// Wait blocks until it is worker i's turn. It may be called repeatedly;
// once open, a gate stays open.
func (t *Turnstile) Wait(i int) { <-t.gates[i] }

// Done opens worker i+1's gate. It must be called exactly once per worker,
// even on error paths — deferring it is the usual pattern.
func (t *Turnstile) Done(i int) { close(t.gates[i+1]) }

// SplitRange divides n items into w contiguous chunks and reports chunk
// i's half-open range [lo, hi). Chunks differ in size by at most one and
// preserve item order across chunk index order.
func SplitRange(n, w, i int) (lo, hi int) {
	if w < 1 {
		w = 1
	}
	q, r := n/w, n%w
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}
