package joins

import (
	"bytes"
	"fmt"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// joinKeyDistributions shape the grid's build-side keys: unique keys,
// a quadratically clustered domain, and a duplicate-heavy domain.
// Probe keys are drawn from the same domain so matches occur at every
// multiplicity.
var joinKeyDistributions = []struct {
	name string
	key  func(i, n int, rng *buildRNG) uint64
}{
	{"uniform", func(i, n int, rng *buildRNG) uint64 { return uint64(i) }},
	{"skewed", func(i, n int, rng *buildRNG) uint64 {
		v := rng.next() % uint64(n)
		return v * v / uint64(n)
	}},
	{"dups", func(i, n int, rng *buildRNG) uint64 { return rng.next() % 50 }},
}

type buildRNG struct{ s uint64 }

func (r *buildRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// loadDistJoinInputs builds left under the named key distribution and
// right with keys drawn from the same generator (same domain, different
// sequence).
func loadDistJoinInputs(t *testing.T, env *algo.Env, nLeft, nRight int, dist func(i, n int, rng *buildRNG) uint64) (left, right storage.Collection) {
	t.Helper()
	mk := func(name string, n int, rng *buildRNG) storage.Collection {
		c, err := env.Factory.Create(name, record.Size)
		if err != nil {
			t.Fatal(err)
		}
		rec := make([]byte, record.Size)
		for i := 0; i < n; i++ {
			record.Fill(rec, dist(i, nLeft, rng))
			if err := c.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	left = mk("gl", nLeft, &buildRNG{s: 0x6a09e667f3bcc909})
	right = mk("gr", nRight, &buildRNG{s: 0xbb67ae8584caa73b})
	return left, right
}

// newSpinJoinEnv builds an environment whose device actually delays for
// the simulated latencies (yielding between spin checks), so concurrent
// workers interleave even on a single-CPU machine.
func newSpinJoinEnv(t testing.TB, budgetRecords int) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20, Spin: true})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewEnv(f, int64(budgetRecords*record.Size))
}

// joinGrid runs a at parallelism P under a key distribution and returns
// the output records, device stats, and build-phase accounting. spin
// selects a device that physically delays (see newSpinJoinEnv).
func joinGrid(t *testing.T, a Algorithm, dist func(i, n int, rng *buildRNG) uint64, nLeft, nRight, budgetRecords, parallelism int, spin bool) ([][]byte, pmem.Stats, algo.PhaseStat) {
	t.Helper()
	var env *algo.Env
	if spin {
		env = newSpinJoinEnv(t, budgetRecords)
	} else {
		env = newEnv(t, "blocked", budgetRecords)
	}
	env.Parallelism = parallelism
	rec := algo.NewPhaseRecorder()
	env.WithPhases(rec)
	left, right := loadDistJoinInputs(t, env, nLeft, nRight, dist)
	out, err := env.Factory.Create("out", 2*record.Size)
	if err != nil {
		t.Fatal(err)
	}
	env.Factory.Device().ResetStats()
	if err := a.Join(env, left, right, out); err != nil {
		t.Fatalf("%s (P=%d): %v", a.Name(), parallelism, err)
	}
	st := env.Factory.Device().Stats()
	recs, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	return recs, st, rec.Phase(BuildPhase)
}

// TestParallelBuildIdentityGrid is the joins half of the byte-identity
// grid: P ∈ {2,4,8} × algorithms × key distributions. The parallel
// hash-table builds must emit the serial output record-for-record, the
// build phase must write nothing at every P (it is read-only), and total
// I/O stays within the 5% tolerance.
func TestParallelBuildIdentityGrid(t *testing.T) {
	const nLeft, nRight, budget = 3_000, 9_000, 700
	algos := []Algorithm{
		NewGrace(),
		NewNestedLoops(),
		NewSegmentedGrace(0.5),
		NewHybridGraceNL(0.5, 0.5),
	}
	for _, a := range algos {
		for _, dist := range joinKeyDistributions {
			serial, serialStats, serialPhase := joinGrid(t, a, dist.key, nLeft, nRight, budget, 1, false)
			if serialPhase.Stats.Writes != 0 {
				t.Fatalf("%s/%s: serial build phase wrote %d cachelines, want 0",
					a.Name(), dist.name, serialPhase.Stats.Writes)
			}
			for _, p := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/P=%d", a.Name(), dist.name, p), func(t *testing.T) {
					parallel, parStats, parPhase := joinGrid(t, a, dist.key, nLeft, nRight, budget, p, false)
					if len(serial) != len(parallel) {
						t.Fatalf("P=%d emitted %d records, serial %d", p, len(parallel), len(serial))
					}
					for i := range serial {
						if !bytes.Equal(serial[i], parallel[i]) {
							t.Fatalf("record %d differs: serial keys (%d,%d), P=%d keys (%d,%d)",
								i, record.Key(serial[i]), record.Key(serial[i][record.Size:]),
								p, record.Key(parallel[i]), record.Key(parallel[i][record.Size:]))
						}
					}
					if parPhase.Stats.Writes != 0 {
						t.Errorf("build phase wrote %d cachelines at P=%d, want 0", parPhase.Stats.Writes, p)
					}
					assertWithinTol(t, "total writes", serialStats.Writes, parStats.Writes, 0.05)
					assertWithinTol(t, "total reads", serialStats.Reads, parStats.Reads, 0.05)
				})
			}
		}
	}
}

// TestParallelBuildEngages proves the build phase actually fans out: at
// P=8 its overlap clock must run strictly below its serial clock.
func TestParallelBuildEngages(t *testing.T) {
	const nLeft, nRight, budget = 3_000, 9_000, 700
	_, _, phase := joinGrid(t, NewGrace(), joinKeyDistributions[0].key, nLeft, nRight, budget, 8, true)
	if phase.Stats.Reads == 0 {
		t.Fatal("build phase recorded no reads; phase bracketing broken")
	}
	if phase.Stats.SimIOOverlap >= phase.Stats.SimIOTime {
		t.Errorf("build overlap clock %v not below serial clock %v at P=8: builds ran serial",
			phase.Stats.SimIOOverlap, phase.Stats.SimIOTime)
	}
}
