package joins

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/storage"
)

// SegmentedGrace is SegJ (§2.2.2): of the k partitions Grace join would
// create, only a fraction (the write intensity) is actually offloaded to
// persistent memory during the initial scan of both inputs. The
// materialized partitions are then joined Grace-style; every remaining
// partition is processed by re-scanning both inputs and filtering — reads
// traded for the writes that were never made (Eq. 9; Eq. 10 bounds when
// this beats plain Grace join).
//
// Under env.Parallelism > 1 the offload scans, the hash-table builds
// (worker sub-tables merged back into serial insertion order), the
// materialized partitions' probes and the filtered re-scans all fan out
// to workers. Output order and I/O counts match the serial run.
type SegmentedGrace struct {
	// Intensity ∈ [0, 1] is the fraction of partitions materialized.
	Intensity float64
}

// NewSegmentedGrace returns SegJ with the given write intensity.
func NewSegmentedGrace(intensity float64) *SegmentedGrace {
	return &SegmentedGrace{Intensity: intensity}
}

// Name implements Algorithm.
func (j *SegmentedGrace) Name() string { return fmt.Sprintf("SegJ(%.2f)", j.Intensity) }

// Join implements Algorithm.
func (j *SegmentedGrace) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	if j.Intensity < 0 || j.Intensity > 1 {
		return fmt.Errorf("joins: SegJ intensity %v out of [0,1]", j.Intensity)
	}
	k := partitionCount(env, left.Len(), left.RecordSize())
	x := int(j.Intensity * float64(k))
	em := newEmitter(out, left.RecordSize(), right.RecordSize())

	// Initial scan of both inputs: offload partitions 0..x-1 only.
	var lp, rp [][]storage.Collection
	if x > 0 {
		var err error
		if lp, err = partitionInto(env, left, k, x, "segl"); err != nil {
			return err
		}
		if rp, err = partitionInto(env, right, k, x, "segr"); err != nil {
			return err
		}
	}

	// Grace-style join of the materialized partitions.
	for p := 0; p < x; p++ {
		if err := joinPartition(env, lp[p], rp[p], em); err != nil {
			return err
		}
		if err := destroyAll(lp[p]); err != nil {
			return err
		}
		if err := destroyAll(rp[p]); err != nil {
			return err
		}
	}

	// Remaining partitions: one filtered re-scan of both inputs each. Both
	// the build re-scan and the probe re-scan fan out over contiguous
	// chunks of their input; the build's worker sub-tables merge back into
	// the serial insertion (= emission) order.
	for p := x; p < k; p++ {
		part := p
		table, err := buildTableParallel(env, []storage.Collection{left}, func(rec []byte) bool {
			return partitionOf(rec, k) == part
		})
		if err != nil {
			return err
		}
		if err := probeRange(env, right, table, func(r []byte) bool {
			return partitionOf(r, k) == part
		}, em); err != nil {
			return err
		}
	}
	return out.Close()
}
