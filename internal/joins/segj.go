package joins

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// SegmentedGrace is SegJ (§2.2.2): of the k partitions Grace join would
// create, only a fraction (the write intensity) is actually offloaded to
// persistent memory during the initial scan of both inputs. The
// materialized partitions are then joined Grace-style; every remaining
// partition is processed by re-scanning both inputs and filtering — reads
// traded for the writes that were never made (Eq. 9; Eq. 10 bounds when
// this beats plain Grace join).
type SegmentedGrace struct {
	// Intensity ∈ [0, 1] is the fraction of partitions materialized.
	Intensity float64
}

// NewSegmentedGrace returns SegJ with the given write intensity.
func NewSegmentedGrace(intensity float64) *SegmentedGrace {
	return &SegmentedGrace{Intensity: intensity}
}

// Name implements Algorithm.
func (j *SegmentedGrace) Name() string { return fmt.Sprintf("SegJ(%.2f)", j.Intensity) }

// Join implements Algorithm.
func (j *SegmentedGrace) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	if j.Intensity < 0 || j.Intensity > 1 {
		return fmt.Errorf("joins: SegJ intensity %v out of [0,1]", j.Intensity)
	}
	k := partitionCount(env, left.Len(), left.RecordSize())
	x := int(j.Intensity * float64(k))
	em := newEmitter(out, left.RecordSize(), right.RecordSize())

	// Initial scan of both inputs: offload partitions 0..x-1 only.
	lp := make([]storage.Collection, x)
	rp := make([]storage.Collection, x)
	for p := 0; p < x; p++ {
		var err error
		if lp[p], err = env.CreateTemp(fmt.Sprintf("segl%d", p), left.RecordSize()); err != nil {
			return err
		}
		if rp[p], err = env.CreateTemp(fmt.Sprintf("segr%d", p), right.RecordSize()); err != nil {
			return err
		}
	}
	if x > 0 {
		if err := scanInto(left, func(rec []byte) error {
			if p := partitionOf(rec, k); p < x {
				return lp[p].Append(rec)
			}
			return nil
		}); err != nil {
			return err
		}
		if err := scanInto(right, func(rec []byte) error {
			if p := partitionOf(rec, k); p < x {
				return rp[p].Append(rec)
			}
			return nil
		}); err != nil {
			return err
		}
		for p := 0; p < x; p++ {
			if err := lp[p].Close(); err != nil {
				return err
			}
			if err := rp[p].Close(); err != nil {
				return err
			}
		}
	}

	// Grace-style join of the materialized partitions.
	for p := 0; p < x; p++ {
		if err := joinPartition(env, lp[p], rp[p], em); err != nil {
			return err
		}
		if err := lp[p].Destroy(); err != nil {
			return err
		}
		if err := rp[p].Destroy(); err != nil {
			return err
		}
	}

	// Remaining partitions: one filtered re-scan of both inputs each.
	table := newHashTable(left.RecordSize(), buildCap(env, left.RecordSize()))
	for p := x; p < k; p++ {
		table.reset()
		if err := scanInto(left, func(rec []byte) error {
			if partitionOf(rec, k) == p {
				table.insert(rec)
			}
			return nil
		}); err != nil {
			return err
		}
		if err := scanInto(right, func(r []byte) error {
			if partitionOf(r, k) != p {
				return nil
			}
			return table.probe(record.Key(r), func(l []byte) error {
				return em.emit(l, r)
			})
		}); err != nil {
			return err
		}
	}
	return out.Close()
}
