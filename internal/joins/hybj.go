package joins

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/storage"
)

// HybridGraceNL is HybJ (§2.2.1): fractions x of the left input and y of
// the right are processed with Grace join (write-inducing but fast); the
// remainders are handled with read-only nested loops. The three partial
// results of the split are composed as:
//
//	Tx ⋈ Vy     — Grace join over the materialized partitions
//	Tx ⋈ V(1−y) — piggybacked: while partition p's table is in memory,
//	              the unpartitioned right suffix is scanned and probed
//	T(1−x) ⋈ V  — block nested loops over the left suffix and all of V
//
// x and y are the algorithm's write intensities (Eq. 6; Fig. 2 heatmaps).
//
// Under env.Parallelism > 1 the partitioning scans, the hash-table
// builds (worker sub-tables merged back into serial insertion order) and
// all three probe streams fan out to workers with serial-identical
// output order.
type HybridGraceNL struct {
	// X and Y are the Grace fractions of the left and right inputs.
	X, Y float64
	// Auto places (X, Y) at the cost model's recommendation: the Eq. 7–8
	// saddle values clamped to the heuristic x+y = 1, x ≥ y region the
	// paper suggests when inputs diverge in size.
	Auto bool
}

// NewHybridGraceNL returns HybJ with fixed write intensities.
func NewHybridGraceNL(x, y float64) *HybridGraceNL { return &HybridGraceNL{X: x, Y: y} }

// NewAutoHybridGraceNL returns HybJ that places its knobs via the cost model.
func NewAutoHybridGraceNL() *HybridGraceNL { return &HybridGraceNL{Auto: true} }

// Name implements Algorithm.
func (j *HybridGraceNL) Name() string {
	if j.Auto {
		return "HybJ(auto)"
	}
	return fmt.Sprintf("HybJ(%.2f,%.2f)", j.X, j.Y)
}

// Join implements Algorithm.
func (j *HybridGraceNL) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	x, y := j.X, j.Y
	if j.Auto {
		bs := float64(env.Factory.BlockSize())
		t := float64(left.Len()*left.RecordSize()) / bs
		v := float64(right.Len()*right.RecordSize()) / bs
		m := float64(env.MemoryBudget) / bs
		x, y = cost.HybridJoinSaddle(t, v, m, env.Lambda())
	}
	if x < 0 || x > 1 || y < 0 || y > 1 {
		return fmt.Errorf("joins: HybJ intensities (%v, %v) out of [0,1]", x, y)
	}
	splitT := int(x * float64(left.Len()))
	splitV := int(y * float64(right.Len()))
	em := newEmitter(out, left.RecordSize(), right.RecordSize())

	// Phase 1: partition the Grace fractions (the scans fan out over
	// input chunks under env.Parallelism).
	k := partitionCount(env, splitT, left.RecordSize())
	var lp, rp [][]storage.Collection
	if splitT > 0 {
		var err error
		if lp, err = partitionInto(env, storage.Slice(left, 0, splitT), k, k, "hybl"); err != nil {
			return err
		}
		if rp, err = partitionInto(env, storage.Slice(right, 0, splitV), k, k, "hybr"); err != nil {
			return err
		}
	}

	// Phase 2: per-partition Grace join, with the unpartitioned right
	// suffix V(1−y) piggybacked onto each resident partition table. The
	// builds and both probe streams fan out to workers.
	vSuffix := storage.Slice(right, splitV, right.Len())
	for p := 0; p < len(lp); p++ {
		table, err := buildTableParallel(env, lp[p], nil)
		if err != nil {
			return err
		}
		if err := parallelProbe(env, rp[p], table, nil, em); err != nil {
			return err
		}
		if vSuffix.Len() > 0 {
			if err := probeRange(env, vSuffix, table, nil, em); err != nil {
				return err
			}
		}
		if err := destroyAll(lp[p]); err != nil {
			return err
		}
		if err := destroyAll(rp[p]); err != nil {
			return err
		}
	}

	// Phase 3: block nested loops between the left suffix T(1−x) and the
	// whole right input. Each memory-sized block's table build fans out to
	// workers over contiguous chunks of the block.
	if splitT < left.Len() {
		capRecords := buildCap(env, left.RecordSize())
		done := splitT
		for done < left.Len() {
			end := done + capRecords
			if end > left.Len() {
				end = left.Len()
			}
			table, err := buildTableParallel(env, []storage.Collection{storage.Slice(left, done, end)}, nil)
			if err != nil {
				return err
			}
			done = end
			if err := probeRange(env, right, table, nil, em); err != nil {
				return err
			}
		}
	}
	return out.Close()
}
