package joins

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage/all"
)

// Algorithm-level leak discipline (the wlvet/tempsweep contract): a join
// that fails mid-run must destroy every intermediate input and partition
// sub-collection it created before returning. These tests call Join
// directly, without JoinCtx's outer SweepTemps, so the algorithms' own
// error-path sweeps are what is under test.

// countingCtx counts Err calls without ever cancelling (calibration).
type countingCtx struct {
	context.Context
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	c.calls.Add(1)
	return c.Context.Err()
}

// countdownCtx reports Canceled from the n-th Err call onwards.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

func newLeakEnv(t testing.TB, budgetRecords, par int) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	f, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewParallelEnv(f, int64(budgetRecords*record.Size), par)
}

// TestJoinCancelSweepsTemps cancels HJ, LaJ and GJ at increasing depths
// — partitioning, builds, probes, intermediate-input rotation — and
// asserts the algorithm itself left no live temporaries.
func TestJoinCancelSweepsTemps(t *testing.T) {
	const nLeft, nRight, budget = 600, 6000, 40
	for _, par := range []int{1, 4} {
		for _, a := range []Algorithm{NewHash(), NewLazyHash(), NewGrace()} {
			a, par := a, par
			t.Run(fmt.Sprintf("%s/p%d", a.Name(), par), func(t *testing.T) {
				calib := &countingCtx{Context: context.Background()}
				env := newLeakEnv(t, budget, par).WithContext(calib)
				left, right := loadJoinInputs(t, env, nLeft, nRight, 9)
				out, err := env.Factory.Create("out", 2*record.Size)
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Join(env, left, right, out); err != nil {
					t.Fatalf("calibration run: %v", err)
				}
				if live := env.LiveTemps(); live != 0 {
					t.Fatalf("clean run left %d live temps", live)
				}
				total := calib.calls.Load()
				if total < 4 {
					t.Fatalf("algorithm polls cancellation only %d times; input too small to steer", total)
				}

				for _, frac := range []float64{0, 0.25, 0.5, 0.85} {
					polls := int64(float64(total) * frac)
					env := newLeakEnv(t, budget, par).WithContext(newCountdownCtx(polls))
					left, right := loadJoinInputs(t, env, nLeft, nRight, 9)
					out, err := env.Factory.Create("out", 2*record.Size)
					if err != nil {
						t.Fatal(err)
					}
					err = a.Join(env, left, right, out)
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", polls, total, err)
					}
					if live := env.LiveTemps(); live != 0 {
						t.Fatalf("cancel at poll %d/%d leaked %d temp collections", polls, total, live)
					}
				}
			})
		}
	}
}
