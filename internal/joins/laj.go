package joins

import (
	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// LazyHash is LaJ (§2.2.3): standard hash join made lazy. When a scanned
// record does not belong to the partition currently being processed, the
// algorithm does not write it back as HJ would; it pays the penalty of
// rescanning the whole input on the next iteration instead. Per Table 1
// the savings are (k−i)(M+M_T)·λ·r per iteration and the cumulative
// penalty (i−1)(M+M_T)·r; once the penalty overtakes the savings —
// iteration n = ⌊k/(λ+1)⌋ of the current input (Eq. 11) — the iteration
// materializes the surviving records as fresh intermediate inputs and the
// algorithm reverts to being lazy.
//
// Like HJ, LaJ's builds are fused with its (re)scans — a scanned record
// either enters the current table or flows to the materialization — so
// the build order is the survivor order and the phase stays serial at
// every parallelism level.
type LazyHash struct{}

// NewLazyHash returns the LaJ operator.
func NewLazyHash() *LazyHash { return &LazyHash{} }

// Name implements Algorithm.
func (j *LazyHash) Name() string { return "LaJ" }

// Join implements Algorithm.
func (j *LazyHash) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	k := partitionCount(env, left.Len(), left.RecordSize())
	lambda := env.Lambda()
	em := newEmitter(out, left.RecordSize(), right.RecordSize())
	table := newHashTable(left.RecordSize(), buildCap(env, left.RecordSize()))

	curT, curV := left, right
	var tmpT, tmpV storage.Collection   // owned temps backing curT/curV
	var nextT, nextV storage.Collection // next materialized intermediate inputs
	joined := false
	defer func() {
		if joined {
			return
		}
		// Error exit: sweep every live intermediate. Destroy is
		// idempotent, so the aliases (tmpT==nextT after rotation) are
		// safe to sweep twice.
		for _, c := range []storage.Collection{tmpT, tmpV, nextT, nextV} {
			if c != nil {
				_ = c.Destroy()
			}
		}
	}()
	sinceMat := 1 // iterations since the last materialization (Algorithm's n)

	for p := 0; p < k; p++ {
		kRem := k - p
		materialize := sinceMat >= cost.LazyHashJoinMaterializeIteration(kRem, lambda) && p < k-1

		nextT, nextV = nil, nil
		if materialize {
			var err error
			if nextT, err = env.CreateTemp("lajt", left.RecordSize()); err != nil {
				return err
			}
			if nextV, err = env.CreateTemp("lajv", right.RecordSize()); err != nil {
				return err
			}
		}

		table.reset()
		if err := scanInto(curT, pollRecords(env, func(rec []byte) error {
			part := partitionOf(rec, k)
			if part == p {
				table.insert(rec)
				return nil
			}
			if nextT != nil && part > p {
				return nextT.Append(rec)
			}
			return nil
		})); err != nil {
			return err
		}
		if err := scanInto(curV, pollRecords(env, func(r []byte) error {
			part := partitionOf(r, k)
			if part == p {
				return table.probe(record.Key(r), func(l []byte) error {
					return em.emit(l, r)
				})
			}
			if nextV != nil && part > p {
				return nextV.Append(r)
			}
			return nil
		})); err != nil {
			return err
		}

		if materialize {
			if err := nextT.Close(); err != nil {
				return err
			}
			if err := nextV.Close(); err != nil {
				return err
			}
			if tmpT != nil {
				if err := tmpT.Destroy(); err != nil {
					return err
				}
				if err := tmpV.Destroy(); err != nil {
					return err
				}
			}
			curT, curV = nextT, nextV
			tmpT, tmpV = nextT, nextV
			sinceMat = 1
		} else {
			sinceMat++
		}
	}
	if tmpT != nil {
		if err := tmpT.Destroy(); err != nil {
			return err
		}
		if err := tmpV.Destroy(); err != nil {
			return err
		}
	}
	joined = true
	return out.Close()
}
