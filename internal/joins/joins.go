// Package joins implements the paper's equi-join algorithms (§2.2):
//
//   - NLJ  — block nested loops: minimal writes, maximal reads
//   - HJ   — standard iterative hash join (§2.2.3's baseline)
//   - GJ   — Grace join: partition both inputs, then join partition-wise
//   - HybJ — hybrid Grace-nested-loops join (§2.2.1, Eq. 6)
//   - SegJ — segmented Grace join (§2.2.2, Eqs. 9–10)
//   - LaJ  — lazy hash join (§2.2.3, Table 1, Eq. 11)
//
// All algorithms join on key equality (attribute 0 of each record) and
// emit left‖right concatenations into the output collection.
package joins

import (
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Algorithm is a persistent-memory equi-join operator.
type Algorithm interface {
	// Name is the experiment identifier ("GJ", "HybJ(0.5,0.5)"…).
	Name() string
	// Join appends every matching left‖right pair to out. The output
	// record size must be the sum of the input record sizes.
	Join(env *algo.Env, left, right, out storage.Collection) error
}

// checkArgs validates the common preconditions of all Join calls. The
// output record size selects the result shape: left+right concatenation,
// or a projection to the probe-side (right) record — the paper's
// evaluation materializes single-record result tuples (its NLJ writes
// exactly |V| buffers).
func checkArgs(env *algo.Env, left, right, out storage.Collection) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if left == nil || right == nil || out == nil {
		return fmt.Errorf("joins: nil collection")
	}
	if out.RecordSize() != left.RecordSize()+right.RecordSize() && out.RecordSize() != right.RecordSize() {
		return fmt.Errorf("joins: output record size %d, want %d+%d (concatenation) or %d (projection)",
			out.RecordSize(), left.RecordSize(), right.RecordSize(), right.RecordSize())
	}
	if out.Len() != 0 {
		return fmt.Errorf("joins: output collection %q not empty", out.Name())
	}
	return nil
}

// hashKey scrambles a join key; partition functions take it modulo the
// partition count. (Fibonacci hashing: adequate dispersion, deterministic
// across scans, cheap.)
func hashKey(k uint64) uint64 {
	k *= 0x9E3779B97F4A7C15
	return k ^ (k >> 32)
}

// partitionOf maps a record's key to one of k partitions.
func partitionOf(rec []byte, k int) int {
	return int(hashKey(record.Key(rec)) % uint64(k))
}

// hashTable is the in-memory build side: records in a flat vector indexed
// by key. It reflects the paper's f = 1.2 space expansion — the index
// adds roughly 20% to the raw partition footprint.
type hashTable struct {
	vec *record.Vec
	idx map[uint64][]int32
}

func newHashTable(recSize, capHint int) *hashTable {
	if capHint < 0 {
		capHint = 0
	}
	return &hashTable{
		vec: record.NewVec(recSize, capHint),
		idx: make(map[uint64][]int32, capHint),
	}
}

func (t *hashTable) insert(rec []byte) {
	t.vec.Append(rec)
	k := record.Key(rec)
	t.idx[k] = append(t.idx[k], int32(t.vec.Len()-1))
}

func (t *hashTable) len() int { return t.vec.Len() }

func (t *hashTable) reset() {
	t.vec.Reset()
	clear(t.idx)
}

// probe calls emit for every build record matching rec's key.
func (t *hashTable) probe(key uint64, emit func(build []byte) error) error {
	for _, i := range t.idx[key] {
		if err := emit(t.vec.At(int(i))); err != nil {
			return err
		}
	}
	return nil
}

// emitter materializes matched pairs into the output collection, either
// as left‖right concatenations or as probe-side projections, depending on
// the output's record size (see checkArgs).
type emitter struct {
	out     storage.Collection
	scratch []byte
	lsize   int
	project bool // emit only the right record
	matches int
}

func newEmitter(out storage.Collection, lsize, rsize int) *emitter {
	return &emitter{
		out:     out,
		scratch: make([]byte, lsize+rsize),
		lsize:   lsize,
		project: out.RecordSize() == rsize,
	}
}

func (e *emitter) emit(left, right []byte) error {
	e.matches++
	if e.project {
		return e.out.Append(right)
	}
	copy(e.scratch, left)
	copy(e.scratch[e.lsize:], right)
	return e.out.Append(e.scratch)
}

// emitRaw appends an already-materialized output record; the ordered
// parallel emitter uses it to flush DRAM-staged matches.
func (e *emitter) emitRaw(rec []byte) error {
	e.matches++
	return e.out.Append(rec)
}

// pollRecords wraps fn with the environment's amortized cancellation
// check, so partitioning and probe scans stop mid-stream when the
// invocation's context is cancelled.
func pollRecords(env *algo.Env, fn func(rec []byte) error) func(rec []byte) error {
	poll := env.Poll()
	return func(rec []byte) error {
		if err := poll(); err != nil {
			return err
		}
		return fn(rec)
	}
}

// scanInto iterates src and applies fn to each record.
func scanInto(src storage.Collection, fn func(rec []byte) error) error {
	it := src.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// buildCap is the number of build-side records whose hash table fits the
// budget (the paper's M/f).
func buildCap(env *algo.Env, recSize int) int {
	return env.BudgetHashRecords(recSize)
}

// partitionCount is k = ⌈f·|T|/M⌉: the fewest partitions whose hash
// tables fit in memory.
func partitionCount(env *algo.Env, leftRecords, recSize int) int {
	cap := buildCap(env, recSize)
	k := (leftRecords + cap - 1) / cap
	if k < 1 {
		k = 1
	}
	return k
}
