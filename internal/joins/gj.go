package joins

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Grace is GJ: classic Grace hash join. Both inputs are partitioned to
// persistent memory in one pass, then each partition pair is joined with
// an in-memory hash table. Cost r(|T|+|V|)(2+λ): the symmetric-I/O
// baseline the write-limited joins are measured against.
type Grace struct{}

// NewGrace returns the GJ operator.
func NewGrace() *Grace { return &Grace{} }

// Name implements Algorithm.
func (j *Grace) Name() string { return "GJ" }

// Join implements Algorithm.
func (j *Grace) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	k := partitionCount(env, left.Len(), left.RecordSize())

	lp, err := partitionInto(env, left, k, "gjl")
	if err != nil {
		return err
	}
	rp, err := partitionInto(env, right, k, "gjr")
	if err != nil {
		return err
	}
	em := newEmitter(out, left.RecordSize(), right.RecordSize())
	for p := 0; p < k; p++ {
		if err := joinPartition(env, lp[p], rp[p], em); err != nil {
			return err
		}
		if err := lp[p].Destroy(); err != nil {
			return err
		}
		if err := rp[p].Destroy(); err != nil {
			return err
		}
	}
	return out.Close()
}

// partitionInto hashes src into k fresh collections.
func partitionInto(env *algo.Env, src storage.Collection, k int, prefix string) ([]storage.Collection, error) {
	parts := make([]storage.Collection, k)
	for p := range parts {
		c, err := env.CreateTemp(fmt.Sprintf("%s%d", prefix, p), src.RecordSize())
		if err != nil {
			return nil, err
		}
		parts[p] = c
	}
	if err := scanInto(src, func(rec []byte) error {
		return parts[partitionOf(rec, k)].Append(rec)
	}); err != nil {
		return nil, err
	}
	for _, p := range parts {
		if err := p.Close(); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// joinPartition builds a table over lp and probes it with rp.
func joinPartition(env *algo.Env, lp, rp storage.Collection, em *emitter) error {
	table := newHashTable(lp.RecordSize(), lp.Len())
	if err := scanInto(lp, func(rec []byte) error {
		table.insert(rec)
		return nil
	}); err != nil {
		return err
	}
	_ = env
	return scanInto(rp, func(r []byte) error {
		return table.probe(record.Key(r), func(l []byte) error {
			return em.emit(l, r)
		})
	})
}
