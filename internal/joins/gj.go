package joins

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/storage"
)

// Grace is GJ: classic Grace hash join. Both inputs are partitioned to
// persistent memory in one pass, then each partition pair is joined with
// an in-memory hash table. Cost r(|T|+|V|)(2+λ): the symmetric-I/O
// baseline the write-limited joins are measured against.
//
// Under env.Parallelism > 1 the partitioning scans fan out over input
// chunks and each partition's probe fans out over its probe stream; the
// output order and the cacheline I/O counts match the serial run (see
// parallel.go).
type Grace struct{}

// NewGrace returns the GJ operator.
func NewGrace() *Grace { return &Grace{} }

// Name implements Algorithm.
func (j *Grace) Name() string { return "GJ" }

// Join implements Algorithm.
func (j *Grace) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	k := partitionCount(env, left.Len(), left.RecordSize())

	var lp, rp [][]storage.Collection
	joined := false
	defer func() {
		if joined {
			return
		}
		// Error exit: sweep every partition sub-collection still live.
		// Destroy is idempotent, so partitions already reclaimed by the
		// per-partition destroyAll are safe to sweep again.
		destroyParts(lp)
		destroyParts(rp)
	}()

	lp, err := partitionInto(env, left, k, k, "gjl")
	if err != nil {
		return err
	}
	rp, err = partitionInto(env, right, k, k, "gjr")
	if err != nil {
		return err
	}
	em := newEmitter(out, left.RecordSize(), right.RecordSize())
	for p := 0; p < k; p++ {
		if err := joinPartition(env, lp[p], rp[p], em); err != nil {
			return err
		}
		if err := destroyAll(lp[p]); err != nil {
			return err
		}
		if err := destroyAll(rp[p]); err != nil {
			return err
		}
	}
	joined = true
	return out.Close()
}

// partitionInto hashes src into the first x of k partitions (x = k keeps
// everything; SegJ materializes only a prefix). The scan fans out over
// env.Parallelism contiguous chunks of src, each worker appending to its
// own sub-collections; partition p is returned as the ordered list of the
// workers' sub-collections, whose concatenation reproduces the serial
// partition contents record-for-record.
//
// Like the serial algorithm's x output partitions, every open
// sub-collection holds one block-sized DRAM tail buffer outside the
// modelled budget M (the paper does not count partition output buffers
// against M either); parallelism multiplies that infrastructure class by
// w, i.e. w·x blocks during the scan.
func partitionInto(env *algo.Env, src storage.Collection, k, x int, prefix string) ([][]storage.Collection, error) {
	w := env.Workers(src.Len())
	var envs []*algo.Env
	if w > 1 {
		envs = env.Split(w)
	} else {
		envs = []*algo.Env{env}
	}
	subs := make([][]storage.Collection, w) // [worker][partition]
	err := env.RunWorkers(w, func(i int) error {
		mine := make([]storage.Collection, x)
		ok := false
		defer func() {
			// Error exit: this worker sweeps its own sub-collections;
			// they are published to subs only once fully closed.
			if !ok {
				destroySubs(mine)
			}
		}()
		for p := range mine {
			c, err := envs[i].CreateTemp(fmt.Sprintf("%s%d", prefix, p), src.RecordSize())
			if err != nil {
				return err
			}
			mine[p] = c
		}
		lo, hi := algo.SplitRange(src.Len(), w, i)
		if err := scanInto(storage.Slice(src, lo, hi), pollRecords(envs[i], func(rec []byte) error {
			if p := partitionOf(rec, k); p < x {
				return mine[p].Append(rec)
			}
			return nil
		})); err != nil {
			return err
		}
		if err := closeAll(mine); err != nil {
			return err
		}
		subs[i] = mine
		ok = true
		return nil
	})
	if err != nil {
		// Workers that failed swept their own temps; sweep the ones
		// published by workers that finished before the failure.
		destroyParts(subs)
		return nil, err
	}
	parts := make([][]storage.Collection, x)
	for p := range parts {
		for i := 0; i < w; i++ {
			parts[p] = append(parts[p], subs[i][p])
		}
	}
	return parts, nil
}

// joinPartition builds a table over partition lp (worker-built
// sub-tables merged back into the serial insertion order) and probes it
// with partition rp, one probe worker per sub-collection (the
// partitioning phase's worker count, itself bounded by env.Parallelism,
// fixes the probe fan-out).
func joinPartition(env *algo.Env, lp, rp []storage.Collection, em *emitter) error {
	table, err := buildTableParallel(env, lp, nil)
	if err != nil {
		return err
	}
	return parallelProbe(env, rp, table, nil, em)
}
