package joins

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

func newEnv(t testing.TB, backend string, budgetRecords int) *algo.Env {
	t.Helper()
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	f, err := all.New(backend, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return algo.NewEnv(f, int64(budgetRecords*record.Size))
}

// loadJoinInputs creates the paper's join microbenchmark at the given
// scale: left with unique keys, right with fanOut matches per left key.
func loadJoinInputs(t testing.TB, env *algo.Env, nLeft, nRight int, seed uint64) (left, right storage.Collection) {
	t.Helper()
	l, err := env.Factory.Create(fmt.Sprintf("L%d", seed), record.Size)
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.Factory.Create(fmt.Sprintf("R%d", seed), record.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.GenerateJoin(nLeft, nRight, seed, l.Append, r.Append); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return l, r
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		NewNestedLoops(),
		NewHash(),
		NewGrace(),
		NewHybridGraceNL(0.5, 0.5),
		NewHybridGraceNL(0.2, 0.8),
		NewHybridGraceNL(0.8, 0.2),
		NewHybridGraceNL(0, 0),
		NewHybridGraceNL(1, 1),
		NewAutoHybridGraceNL(),
		NewSegmentedGrace(0),
		NewSegmentedGrace(0.5),
		NewSegmentedGrace(1),
		NewLazyHash(),
	}
}

// referenceJoin computes the expected multiset of joined pairs in memory.
func referenceJoin(t testing.TB, left, right storage.Collection) map[string]int {
	t.Helper()
	lrecs, err := storage.ReadAll(left)
	if err != nil {
		t.Fatal(err)
	}
	rrecs, err := storage.ReadAll(right)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[uint64][][]byte)
	for _, l := range lrecs {
		byKey[record.Key(l)] = append(byKey[record.Key(l)], l)
	}
	want := make(map[string]int)
	for _, r := range rrecs {
		for _, l := range byKey[record.Key(r)] {
			want[string(l)+string(r)]++
		}
	}
	return want
}

func collectOutput(t testing.TB, out storage.Collection) map[string]int {
	t.Helper()
	got := make(map[string]int)
	it := out.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		got[string(rec)]++
	}
}

func runJoin(t testing.TB, env *algo.Env, a Algorithm, left, right storage.Collection) storage.Collection {
	t.Helper()
	out, err := env.CreateTemp("out", left.RecordSize()+right.RecordSize())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Join(env, left, right, out); err != nil {
		t.Fatalf("%s.Join: %v", a.Name(), err)
	}
	return out
}

func equalMultisets(t testing.TB, name string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct pairs, want %d", name, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: pair count %d, want %d", name, got[k], c)
		}
	}
}

func TestAllAlgorithmsJoinMicrobenchmark(t *testing.T) {
	const nLeft, nRight = 400, 4000
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			env := newEnv(t, "blocked", 60) // M well below |T|
			left, right := loadJoinInputs(t, env, nLeft, nRight, 21)
			want := referenceJoin(t, left, right)
			out := runJoin(t, env, a, left, right)
			if out.Len() != nRight {
				t.Errorf("%s: %d output records, want %d", a.Name(), out.Len(), nRight)
			}
			equalMultisets(t, a.Name(), collectOutput(t, out), want)
		})
	}
}

func TestJoinAcrossBackends(t *testing.T) {
	const nLeft, nRight = 200, 1000
	for _, backend := range storage.Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, a := range []Algorithm{NewGrace(), NewHybridGraceNL(0.5, 0.5), NewSegmentedGrace(0.5), NewLazyHash()} {
				env := newEnv(t, backend, 50)
				left, right := loadJoinInputs(t, env, nLeft, nRight, 5)
				want := referenceJoin(t, left, right)
				out := runJoin(t, env, a, left, right)
				equalMultisets(t, backend+"/"+a.Name(), collectOutput(t, out), want)
			}
		})
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 50)
		left, right := loadJoinInputs(t, env, 1, 0, 3)
		out := runJoin(t, env, a, left, right)
		if out.Len() != 0 {
			t.Errorf("%s: empty right produced %d records", a.Name(), out.Len())
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 50)
		left, err := env.Factory.Create("L", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		right, err := env.Factory.Create("R", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := left.Append(record.New(uint64(i))); err != nil {
				t.Fatal(err)
			}
			if err := right.Append(record.New(uint64(1000 + i))); err != nil {
				t.Fatal(err)
			}
		}
		out := runJoin(t, env, a, left, right)
		if out.Len() != 0 {
			t.Errorf("%s: disjoint keys produced %d records", a.Name(), out.Len())
		}
	}
}

func TestJoinSkewedDuplicates(t *testing.T) {
	// Both sides carry duplicate keys: output is a cross product per key.
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			env := newEnv(t, "blocked", 30)
			left, _ := env.Factory.Create("L", record.Size)
			right, _ := env.Factory.Create("R", record.Size)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 150; i++ {
				if err := left.Append(record.New(uint64(rng.Intn(10)))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 300; i++ {
				if err := right.Append(record.New(uint64(rng.Intn(10)))); err != nil {
					t.Fatal(err)
				}
			}
			want := referenceJoin(t, left, right)
			out := runJoin(t, env, a, left, right)
			equalMultisets(t, a.Name(), collectOutput(t, out), want)
		})
	}
}

func TestJoinArgumentValidation(t *testing.T) {
	env := newEnv(t, "blocked", 50)
	left, right := loadJoinInputs(t, env, 10, 20, 1)
	badOut, _ := env.Factory.Create("bad", record.Size+1) // neither concat nor projection
	if err := NewGrace().Join(env, left, right, badOut); err == nil {
		t.Error("wrong output record size accepted")
	}
	if err := NewHybridGraceNL(2, 0).Join(env, left, right, badOut); err == nil {
		t.Error("HybJ intensity 2 accepted")
	}
	if err := NewSegmentedGrace(-1).Join(env, left, right, badOut); err == nil {
		t.Error("SegJ intensity -1 accepted")
	}
}

// An output collection sized like the right input selects the projected
// result shape (the paper's materialized 80-byte result tuples).
func TestJoinProjectedOutput(t *testing.T) {
	const nLeft, nRight = 100, 1000
	for _, a := range allAlgorithms() {
		env := newEnv(t, "blocked", 30)
		left, right := loadJoinInputs(t, env, nLeft, nRight, 13)
		out, err := env.CreateTemp("proj", record.Size)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Join(env, left, right, out); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if out.Len() != nRight {
			t.Fatalf("%s: %d projected matches, want %d", a.Name(), out.Len(), nRight)
		}
		// Every projected record must be a right-input record; the
		// multiset must match the right input exactly (10 matches each).
		got := collectOutput(t, out)
		want := make(map[string]int)
		rrecs, err := storage.ReadAll(right)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rrecs {
			want[string(r)]++
		}
		equalMultisets(t, a.Name()+" projection", got, want)
	}
}

// The paper's headline write behaviour: NLJ writes only the output; the
// write-limited joins write less than their symmetric-I/O counterparts;
// LaJ writes less than HJ; reads grow as writes shrink.
func TestJoinWriteProfileOrdering(t *testing.T) {
	const nLeft, nRight = 1000, 10000
	outLines := uint64(0)
	writes := map[string]uint64{}
	reads := map[string]uint64{}
	for _, a := range []Algorithm{NewNestedLoops(), NewHash(), NewGrace(), NewSegmentedGrace(0.5), NewLazyHash()} {
		env := newEnv(t, "blocked", 100)
		left, right := loadJoinInputs(t, env, nLeft, nRight, 31)
		dev := env.Factory.Device()
		dev.ResetStats()
		out := runJoin(t, env, a, left, right)
		st := dev.Stats()
		writes[a.Name()] = st.Writes
		reads[a.Name()] = st.Reads
		if out.Len() != nRight {
			t.Fatalf("%s: bad output size %d", a.Name(), out.Len())
		}
		outLines = uint64(out.Len()*out.RecordSize()) / uint64(dev.CachelineSize())
	}
	if writes["NLJ"] > outLines*110/100 {
		t.Errorf("NLJ wrote %d lines, want ≈ output footprint %d", writes["NLJ"], outLines)
	}
	if writes["LaJ"] >= writes["HJ"] {
		t.Errorf("LaJ writes %d not below HJ %d", writes["LaJ"], writes["HJ"])
	}
	if writes["SegJ(0.50)"] >= writes["GJ"] {
		t.Errorf("SegJ(0.5) writes %d not below GJ %d", writes["SegJ(0.50)"], writes["GJ"])
	}
	if reads["LaJ"] <= reads["GJ"] {
		t.Errorf("LaJ reads %d not above GJ %d (no write/read trade visible)", reads["LaJ"], reads["GJ"])
	}
}

// HybJ write intensity must modulate writes monotonically-ish: full Grace
// (1,1) writes more than half-and-half, which writes more than pure NL (0,0).
func TestHybridIntensityWriteKnob(t *testing.T) {
	const nLeft, nRight = 600, 3000
	w := func(x, y float64) uint64 {
		env := newEnv(t, "blocked", 60)
		left, right := loadJoinInputs(t, env, nLeft, nRight, 17)
		env.Factory.Device().ResetStats()
		runJoin(t, env, NewHybridGraceNL(x, y), left, right)
		return env.Factory.Device().Stats().Writes
	}
	w00, w55, w11 := w(0, 0), w(0.5, 0.5), w(1, 1)
	if !(w00 < w55 && w55 < w11) {
		t.Errorf("HybJ writes not ordered by intensity: (0,0)=%d (.5,.5)=%d (1,1)=%d", w00, w55, w11)
	}
}

// Property: random inputs with random knobs produce exactly the reference
// join result.
func TestQuickJoinersAreCorrect(t *testing.T) {
	algos := allAlgorithms()
	f := func(seed int64, budgetRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := int(nRaw)%300 + 1
		nR := rng.Intn(600) + 1
		budget := int(budgetRaw)%80 + 8
		a := algos[rng.Intn(len(algos))]
		env := newEnv(t, "blocked", budget)
		left, _ := env.Factory.Create("L", record.Size)
		right, _ := env.Factory.Create("R", record.Size)
		domain := rng.Intn(100) + 1
		for i := 0; i < nL; i++ {
			if err := left.Append(record.New(uint64(rng.Intn(domain)))); err != nil {
				return false
			}
		}
		for i := 0; i < nR; i++ {
			if err := right.Append(record.New(uint64(rng.Intn(domain)))); err != nil {
				return false
			}
		}
		want := referenceJoin(t, left, right)
		out, err := env.CreateTemp("out", 2*record.Size)
		if err != nil {
			return false
		}
		if err := a.Join(env, left, right, out); err != nil {
			t.Logf("%s: %v", a.Name(), err)
			return false
		}
		got := collectOutput(t, out)
		if len(got) != len(want) {
			t.Logf("%s: %d distinct pairs, want %d", a.Name(), len(got), len(want))
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
