package joins

import (
	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// The partitioned joins parallelize the two phases that dominate their
// cost while leaving the emission order byte-for-byte identical to the
// serial algorithms:
//
//   - partitioning: the input scan fans out over contiguous chunks, each
//     worker hashing into its own set of sub-collections; partition p is
//     the ordered list of the workers' sub-collections, whose
//     concatenation in worker order reproduces the serial partition
//     contents record-for-record.
//   - building: each partition's hash table is built by workers over
//     contiguous chunks of the build stream, each filling a private record
//     vector; an order-restoring merge concatenates the vectors in worker
//     order and indexes the result in one pass, reconstituting the exact
//     serial insertion order (which determines per-key match order) before
//     any probe runs.
//   - probing: the table is probed by several workers over contiguous
//     chunks of the probe stream. Matches are staged in small per-worker
//     DRAM buffers and appended to the output through a turnstile in chunk
//     order, so the output sequence equals the serial one for every
//     parallelism level.
//
// The device I/O counts are preserved up to block-boundary effects: every
// record is still partitioned once, read once per the algorithm's scan
// plan and emitted once; the only extra traffic is the partial head/tail
// blocks of chunked scans and of the additional sub-collections.

// orderedOutputCap bounds each probe worker's DRAM staging buffer in
// bytes. It is deliberately small — the analogue of the single output
// block buffer every external algorithm holds outside M — because a worker
// whose buffer fills simply blocks until its turn and then streams
// directly to the output.
const orderedOutputCap = 64 << 10

// orderedEmit is one probe worker's view of the shared emitter: matches
// are buffered in DRAM until the worker's turn in the output order
// arrives, then flushed and streamed directly.
type orderedEmit struct {
	em        *emitter
	ts        *algo.Turnstile
	i         int
	buf       *record.Vec
	scratch   []byte
	bufCap    int
	turnTaken bool
	done      bool
}

func newOrderedEmit(em *emitter, ts *algo.Turnstile, i int) *orderedEmit {
	recSize := em.out.RecordSize()
	bufCap := orderedOutputCap / recSize
	if bufCap < 1 {
		bufCap = 1
	}
	return &orderedEmit{
		em:      em,
		ts:      ts,
		i:       i,
		buf:     record.NewVec(recSize, 0),
		scratch: make([]byte, recSize),
		bufCap:  bufCap,
	}
}

func (o *orderedEmit) emit(left, right []byte) error {
	if o.turnTaken {
		return o.em.emit(left, right)
	}
	if o.em.project {
		o.buf.Append(right)
	} else {
		copy(o.scratch, left)
		copy(o.scratch[o.em.lsize:], right)
		o.buf.Append(o.scratch)
	}
	if o.buf.Len() >= o.bufCap {
		return o.takeTurn()
	}
	return nil
}

// takeTurn waits for the worker's slot in the output order and flushes the
// staged matches; subsequent emissions stream directly.
func (o *orderedEmit) takeTurn() error {
	o.ts.Wait(o.i)
	o.turnTaken = true
	for j := 0; j < o.buf.Len(); j++ {
		if err := o.em.emitRaw(o.buf.At(j)); err != nil {
			return err
		}
	}
	o.buf.Reset()
	return nil
}

// finish flushes any staged matches and hands the output over to the next
// worker.
func (o *orderedEmit) finish() error {
	if !o.turnTaken {
		if err := o.takeTurn(); err != nil {
			return err
		}
	}
	o.done = true
	o.ts.Done(o.i)
	return nil
}

// release guarantees the turn hand-off happens even when the worker's scan
// failed, so successors blocked on the turnstile never deadlock. It is a
// no-op after a successful finish.
func (o *orderedEmit) release() {
	if o.done {
		return
	}
	if !o.turnTaken {
		o.ts.Wait(o.i)
		o.turnTaken = true
	}
	o.done = true
	o.ts.Done(o.i)
}

// parallelProbe probes the record streams of srcs, in order, against
// table, emitting matches through em exactly as the serial algorithm
// would: stream-major, then probe-record-major, then build-insertion
// order. Stream i is handled by worker i; records failing filter (when
// non-nil) are skipped. Each worker polls env's cancellation between
// probe records, so a cancelled join stops mid-probe.
func parallelProbe(env *algo.Env, srcs []storage.Collection, table *hashTable, filter func(rec []byte) bool, em *emitter) error {
	probeOne := func(src storage.Collection, emit func(l, r []byte) error) error {
		return scanInto(src, pollRecords(env, func(r []byte) error {
			if filter != nil && !filter(r) {
				return nil
			}
			return table.probe(record.Key(r), func(l []byte) error {
				return emit(l, r)
			})
		}))
	}
	if len(srcs) == 0 {
		return nil
	}
	if len(srcs) == 1 {
		return probeOne(srcs[0], em.emit)
	}
	ts := algo.NewTurnstile(len(srcs))
	return env.RunWorkers(len(srcs), func(i int) error {
		oe := newOrderedEmit(em, ts, i)
		defer oe.release()
		if err := probeOne(srcs[i], oe.emit); err != nil {
			return err
		}
		return oe.finish()
	})
}

// probeRange probes src against table with env.Parallelism workers over
// contiguous record ranges; emission order equals a serial scan of src.
func probeRange(env *algo.Env, src storage.Collection, table *hashTable, filter func(rec []byte) bool, em *emitter) error {
	w := env.Workers(src.Len())
	if w <= 1 {
		return parallelProbe(env, []storage.Collection{src}, table, filter, em)
	}
	srcs := make([]storage.Collection, w)
	for i := range srcs {
		lo, hi := algo.SplitRange(src.Len(), w, i)
		srcs[i] = storage.Slice(src, lo, hi)
	}
	return parallelProbe(env, srcs, table, filter, em)
}

// BuildPhase names the hash-table build passes of the partitioned joins
// in the environment's phase recorder. The phase is read-only on the
// device: its cacheline write count is zero at every parallelism level.
const BuildPhase = "build"

// buildTableParallel builds the in-memory hash table over the
// concatenated record stream of subs, skipping records that fail filter
// (when non-nil). Under env.Parallelism > 1 the stream is split into
// contiguous chunks and each worker fills a private record vector — the
// device-read-bound half of the build, which is what overlapping
// workers speed up. An order-restoring merge then concatenates the
// vectors in worker order and indexes the merged vector in one DRAM
// pass, so the vector and every per-key index list are exactly what the
// serial scan would have produced and per-key match order (and with it
// the join's output byte stream) is unchanged. Keeping the workers free
// of index-map work means the parallel build does no more total CPU
// than the serial one — the index is built exactly once either way. The
// per-worker vectors are transient DRAM; the merged table is the same
// size as the serial one.
func buildTableParallel(env *algo.Env, subs []storage.Collection, filter func(rec []byte) bool) (*hashTable, error) {
	var table *hashTable
	err := env.TimePhase(BuildPhase, func() error {
		n := lenAll(subs)
		recSize := subs[0].RecordSize()
		w := env.Workers(n)
		if w <= 1 {
			t := newHashTable(recSize, n)
			err := scanAllInto(subs, pollRecords(env, func(rec []byte) error {
				if filter == nil || filter(rec) {
					t.insert(rec)
				}
				return nil
			}))
			if err != nil {
				return err
			}
			table = t
			return nil
		}
		parts := make([]*record.Vec, w)
		err := env.RunWorkers(w, func(i int) error {
			lo, hi := algo.SplitRange(n, w, i)
			part := record.NewVec(recSize, hi-lo)
			keep := pollRecords(env, func(rec []byte) error {
				if filter == nil || filter(rec) {
					part.Append(rec)
				}
				return nil
			})
			base := 0
			for _, c := range subs {
				clo, chi := lo-base, hi-base
				base += c.Len()
				if clo < 0 {
					clo = 0
				}
				if chi > c.Len() {
					chi = c.Len()
				}
				if clo >= chi {
					continue
				}
				if err := scanInto(storage.Slice(c, clo, chi), keep); err != nil {
					return err
				}
			}
			parts[i] = part
			return nil
		})
		if err != nil {
			return err
		}
		merged := newHashTable(recSize, n)
		for _, part := range parts {
			merged.vec.AppendVec(part)
		}
		for pos := 0; pos < merged.vec.Len(); pos++ {
			k := record.Key(merged.vec.At(pos))
			merged.idx[k] = append(merged.idx[k], int32(pos))
		}
		table = merged
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// scanAllInto streams every record of subs, in order, into fn.
func scanAllInto(subs []storage.Collection, fn func(rec []byte) error) error {
	for _, c := range subs {
		if err := scanInto(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// closeAll closes every collection in subs.
func closeAll(subs []storage.Collection) error {
	for _, c := range subs {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// destroyAll destroys every collection in subs.
func destroyAll(subs []storage.Collection) error {
	for _, c := range subs {
		if err := c.Destroy(); err != nil {
			return err
		}
	}
	return nil
}

// destroySubs is the best-effort, nil-tolerant form of destroyAll used
// by error-path sweeps: partially-built slices hold nils and the
// original failure is the error worth reporting.
func destroySubs(subs []storage.Collection) {
	for _, c := range subs {
		if c != nil {
			c.Destroy() //nolint:errcheck // best-effort cleanup after failure
		}
	}
}

// destroyParts sweeps a [worker][partition] or [partition][worker]
// matrix of sub-collections, tolerating nil rows and cells.
func destroyParts(parts [][]storage.Collection) {
	for _, subs := range parts {
		destroySubs(subs)
	}
}

// lenAll is the total record count of subs.
func lenAll(subs []storage.Collection) int {
	n := 0
	for _, c := range subs {
		n += c.Len()
	}
	return n
}
