package joins

import (
	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Hash is HJ: the standard iterative hash join of §2.2.3 (Table 1's left
// half). Iteration i builds an in-memory table from the current left
// input's partition-i records and offloads every other record back to
// persistent memory; the right input is processed symmetrically. Each
// iteration therefore shrinks both inputs by one partition — at the price
// of rewriting the survivors every time, the write pathology lazy hash
// join removes.
//
// HJ's build is fused with the offload scan (each scanned record either
// enters the table or is appended to the survivor collection, in scan
// order), so the build cannot be lifted to workers without reordering the
// survivor stream; HJ stays serial at every parallelism level.
type Hash struct{}

// NewHash returns the HJ operator.
func NewHash() *Hash { return &Hash{} }

// Name implements Algorithm.
func (j *Hash) Name() string { return "HJ" }

// Join implements Algorithm.
func (j *Hash) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	k := partitionCount(env, left.Len(), left.RecordSize())
	em := newEmitter(out, left.RecordSize(), right.RecordSize())

	curT, curV := left, right
	var tmpT, tmpV storage.Collection   // owned temps backing curT/curV
	var nextT, nextV storage.Collection // next iteration's intermediate inputs
	joined := false
	defer func() {
		if joined {
			return
		}
		// Error exit: sweep every live intermediate. Destroy is
		// idempotent, so the aliases (tmpT==nextT after rotation) are
		// safe to sweep twice.
		for _, c := range []storage.Collection{tmpT, tmpV, nextT, nextV} {
			if c != nil {
				_ = c.Destroy()
			}
		}
	}()
	table := newHashTable(left.RecordSize(), buildCap(env, left.RecordSize()))

	for p := 0; p < k; p++ {
		last := p == k-1
		table.reset()

		nextT, nextV = nil, nil
		if !last {
			var err error
			if nextT, err = env.CreateTemp("hjt", left.RecordSize()); err != nil {
				return err
			}
			if nextV, err = env.CreateTemp("hjv", right.RecordSize()); err != nil {
				return err
			}
		}

		// Build side: partition-p records enter the table, the rest are
		// offloaded to the next intermediate input.
		if err := scanInto(curT, pollRecords(env, func(rec []byte) error {
			if partitionOf(rec, k) == p {
				table.insert(rec)
				return nil
			}
			if nextT != nil {
				return nextT.Append(rec)
			}
			return nil
		})); err != nil {
			return err
		}
		// Probe side.
		if err := scanInto(curV, pollRecords(env, func(r []byte) error {
			if partitionOf(r, k) == p {
				return table.probe(record.Key(r), func(l []byte) error {
					return em.emit(l, r)
				})
			}
			if nextV != nil {
				return nextV.Append(r)
			}
			return nil
		})); err != nil {
			return err
		}

		if !last {
			if err := nextT.Close(); err != nil {
				return err
			}
			if err := nextV.Close(); err != nil {
				return err
			}
		}
		if tmpT != nil {
			if err := tmpT.Destroy(); err != nil {
				return err
			}
			if err := tmpV.Destroy(); err != nil {
				return err
			}
		}
		curT, curV = nextT, nextV
		tmpT, tmpV = nextT, nextV
	}
	joined = true
	return out.Close()
}
