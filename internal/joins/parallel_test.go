package joins

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// parallelJoinAlgorithms are the partitioned joins whose execution plan
// changes under env.Parallelism > 1.
func parallelJoinAlgorithms() []Algorithm {
	return []Algorithm{
		NewGrace(),
		NewSegmentedGrace(0.5),
		NewSegmentedGrace(1),
		NewHybridGraceNL(0.5, 0.5),
		NewHybridGraceNL(0.8, 0.2),
	}
}

// joinWith runs a on a fresh device at the given parallelism and returns
// the output records plus the device I/O stats of the join alone.
func joinWith(t *testing.T, a Algorithm, nLeft, nRight, budgetRecords, parallelism int) ([][]byte, pmem.Stats) {
	t.Helper()
	env := newEnv(t, "blocked", budgetRecords)
	env.Parallelism = parallelism
	left, right := loadJoinInputs(t, env, nLeft, nRight, 11)
	out, err := env.Factory.Create("out", 2*record.Size)
	if err != nil {
		t.Fatal(err)
	}
	env.Factory.Device().ResetStats()
	if err := a.Join(env, left, right, out); err != nil {
		t.Fatalf("%s (P=%d): %v", a.Name(), parallelism, err)
	}
	st := env.Factory.Device().Stats()
	recs, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != nRight {
		t.Fatalf("%s (P=%d): %d matches, want %d", a.Name(), parallelism, len(recs), nRight)
	}
	return recs, st
}

// TestParallelJoinDeterminism asserts that the parallel plans emit the
// exact serial output: P=4 equals P=1 record-for-record.
func TestParallelJoinDeterminism(t *testing.T) {
	const nLeft, nRight, budget = 4_000, 20_000, 700
	for _, a := range parallelJoinAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			serial, _ := joinWith(t, a, nLeft, nRight, budget, 1)
			parallel, _ := joinWith(t, a, nLeft, nRight, budget, 4)
			if len(serial) != len(parallel) {
				t.Fatalf("P=4 emitted %d records, P=1 emitted %d", len(parallel), len(serial))
			}
			for i := range serial {
				if !bytes.Equal(serial[i], parallel[i]) {
					t.Fatalf("record %d differs: P=1 keys (%d,%d), P=4 keys (%d,%d)",
						i, record.Key(serial[i]), record.Key(serial[i][record.Size:]),
						record.Key(parallel[i]), record.Key(parallel[i][record.Size:]))
				}
			}
		})
	}
}

// TestParallelJoinIOInvariance asserts the write-limited invariant: the
// cacheline read/write counts under P=4 stay within 5% of the serial
// counts.
func TestParallelJoinIOInvariance(t *testing.T) {
	const nLeft, nRight, budget = 4_000, 20_000, 700
	for _, a := range parallelJoinAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			_, serial := joinWith(t, a, nLeft, nRight, budget, 1)
			_, parallel := joinWith(t, a, nLeft, nRight, budget, 4)
			assertWithinTol(t, "writes", serial.Writes, parallel.Writes, 0.05)
			assertWithinTol(t, "reads", serial.Reads, parallel.Reads, 0.05)
		})
	}
}

func assertWithinTol(t *testing.T, what string, serial, parallel uint64, tol float64) {
	t.Helper()
	if serial == 0 {
		if parallel != 0 {
			t.Errorf("%s: serial 0, parallel %d", what, parallel)
		}
		return
	}
	ratio := float64(parallel)/float64(serial) - 1
	if ratio < -tol || ratio > tol {
		t.Errorf("%s drifted %.2f%% under parallelism: serial %d, parallel %d",
			what, ratio*100, serial, parallel)
	}
}

// TestConcurrentJoinsSharedDevice runs several parallel joins at once on
// one device and factory (run with -race).
func TestConcurrentJoinsSharedDevice(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	fac, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	const nLeft, nRight, budget = 2_000, 8_000, 300

	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env := algo.NewParallelEnv(fac, int64(budget*record.Size), 2)
			left, err := env.CreateTemp("cl", record.Size)
			if err != nil {
				errCh <- err
				return
			}
			right, err := env.CreateTemp("cr", record.Size)
			if err != nil {
				errCh <- err
				return
			}
			if err := record.GenerateJoin(nLeft, nRight, uint64(g), left.Append, right.Append); err != nil {
				errCh <- err
				return
			}
			if err := left.Close(); err != nil {
				errCh <- err
				return
			}
			if err := right.Close(); err != nil {
				errCh <- err
				return
			}
			out, err := env.CreateTemp("co", 2*record.Size)
			if err != nil {
				errCh <- err
				return
			}
			if err := NewGrace().Join(env, left, right, out); err != nil {
				errCh <- err
				return
			}
			if out.Len() != nRight {
				errCh <- fmt.Errorf("concurrent join emitted %d matches, want %d", out.Len(), nRight)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
