package joins

import (
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// NestedLoops is NLJ: block nested loops with an in-memory index per
// left-input block. It writes nothing but the output — the read-intensive
// floor the paper's write-limited algorithms approximate — at the price of
// one full scan of the right input per memory-sized block of the left.
type NestedLoops struct{}

// NewNestedLoops returns the NLJ operator.
func NewNestedLoops() *NestedLoops { return &NestedLoops{} }

// Name implements Algorithm.
func (j *NestedLoops) Name() string { return "NLJ" }

// Join implements Algorithm.
func (j *NestedLoops) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	em := newEmitter(out, left.RecordSize(), right.RecordSize())
	cap := buildCap(env, left.RecordSize())
	table := newHashTable(left.RecordSize(), cap)
	poll := env.Poll()

	done := 0
	for done < left.Len() {
		table.reset()
		it := left.ScanFrom(done)
		for table.len() < cap {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				it.Close()
				return err
			}
			table.insert(rec)
		}
		it.Close()
		done += table.len()

		if err := scanInto(right, func(r []byte) error {
			if err := poll(); err != nil {
				return err
			}
			return table.probe(record.Key(r), func(l []byte) error {
				return em.emit(l, r)
			})
		}); err != nil {
			return err
		}
	}
	return out.Close()
}
