package joins

import (
	"wlpm/internal/algo"
	"wlpm/internal/storage"
)

// NestedLoops is NLJ: block nested loops with an in-memory index per
// left-input block. It writes nothing but the output — the read-intensive
// floor the paper's write-limited algorithms approximate — at the price of
// one full scan of the right input per memory-sized block of the left.
//
// Under env.Parallelism > 1 each block's index build fans out to workers
// over contiguous chunks (sub-tables merged back into serial insertion
// order) and the right-input probe scans fan out over chunks with
// serial-identical emission order.
type NestedLoops struct{}

// NewNestedLoops returns the NLJ operator.
func NewNestedLoops() *NestedLoops { return &NestedLoops{} }

// Name implements Algorithm.
func (j *NestedLoops) Name() string { return "NLJ" }

// Join implements Algorithm.
func (j *NestedLoops) Join(env *algo.Env, left, right, out storage.Collection) error {
	if err := checkArgs(env, left, right, out); err != nil {
		return err
	}
	em := newEmitter(out, left.RecordSize(), right.RecordSize())
	capRecords := buildCap(env, left.RecordSize())

	done := 0
	for done < left.Len() {
		end := done + capRecords
		if end > left.Len() {
			end = left.Len()
		}
		table, err := buildTableParallel(env, []storage.Collection{storage.Slice(left, done, end)}, nil)
		if err != nil {
			return err
		}
		done = end
		if err := probeRange(env, right, table, nil, em); err != nil {
			return err
		}
	}
	return out.Close()
}
