package bench

import (
	"fmt"

	"wlpm/internal/cost"
	"wlpm/internal/pmem"
	"wlpm/internal/storage"
)

// Table1 regenerates Table 1: the per-iteration ledger of standard hash
// join versus lazy hash join — reads, writes, savings and penalty — for a
// representative configuration (k iterations over portions M and M_T).
func Table1(cfg Config) ([]*Report, error) {
	const (
		k  = 8
		m  = 60.0 // M: per-iteration left-input portion, in buffers
		mt = 40.0 // M_T: per-iteration right-input portion, in buffers
	)
	lambda := float64(cfg.WriteLatency) / float64(cfg.ReadLatency)
	rep := &Report{
		ID: "table1",
		Title: fmt.Sprintf("Standard vs lazy hash join ledger (k=%d, M=%.0f, M_T=%.0f, λ=%.0f; buffers and cost units)",
			k, m, mt, lambda),
		Columns: []string{
			"iteration",
			"std reads", "std writes",
			"lazy reads", "lazy writes",
			"savings (λ·r units)", "penalty (r units)",
		},
	}
	rows := cost.LazyHashJoinLedger(k, m, mt, lambda)
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r.Iteration),
			fmt.Sprintf("%.0f", r.StandardReads),
			fmt.Sprintf("%.0f", r.StandardWrites),
			fmt.Sprintf("%.0f", r.LazyReads),
			fmt.Sprintf("%.0f", r.LazyWrites),
			fmt.Sprintf("%.0f", r.Savings),
			fmt.Sprintf("%.0f", r.Penalty),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Lazy materializes when the penalty overtakes the savings: iteration %d here (λ-consistent Eq. 11).",
		cost.LazyHashJoinMaterializeIteration(k, lambda)))
	return []*Report{rep}, nil
}

// Table2 replaces Table 2's hardware profile with the simulated device
// configuration the harness runs on.
func Table2(cfg Config) ([]*Report, error) {
	rep := &Report{
		ID:      "table2",
		Title:   "Simulated persistent-memory profile (stands in for the paper's hardware table)",
		Columns: []string{"characteristic", "value"},
	}
	lambda := float64(cfg.WriteLatency) / float64(cfg.ReadLatency)
	rep.Rows = [][]string{
		{"medium", "simulated byte-addressable persistent memory"},
		{"cacheline (buffer) size", fmt.Sprintf("%d B", pmem.DefaultCachelineSize)},
		{"block size", fmt.Sprintf("%d B", cfg.BlockSize)},
		{"read latency", cfg.ReadLatency.String()},
		{"write latency", cfg.WriteLatency.String()},
		{"λ (write/read)", fmt.Sprintf("%.1f", lambda)},
		{"persistence layers", fmt.Sprintf("%v", storage.Backends)},
		{"record schema", "10 × 8-byte integers (80 B), Wisconsin-style keys"},
		{"scale", fmt.Sprintf("%.4f of the paper's cardinalities", cfg.Scale)},
	}
	return []*Report{rep}, nil
}
