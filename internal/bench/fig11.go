package bench

import (
	"fmt"
	"time"

	"wlpm/internal/joins"
	"wlpm/internal/sorts"
)

// Fig11 regenerates Figure 11: sensitivity of selected write-limited
// sorts (left plot) and joins (right plot) to the device write latency,
// 50–200 ns, blocked memory, ≤50% write intensity.
func Fig11(cfg Config) ([]*Report, error) {
	latencies := []time.Duration{50, 100, 150, 200}
	for i := range latencies {
		latencies[i] *= time.Nanosecond
	}
	n := cfg.SortRows()
	nLeft, nRight := cfg.JoinRows()
	const mem = 0.05

	sortAlgos := []sorts.Algorithm{
		sorts.NewLazySort(),
		sorts.NewHybridSort(0.2),
		sorts.NewHybridSort(0.5),
		sorts.NewSegmentSort(0.2),
		sorts.NewSegmentSort(0.5),
	}
	sortRep := &Report{
		ID:      "fig11",
		Title:   fmt.Sprintf("Impact of write latency on sorting (n=%d, memory %s, backend=%s)", n, fmtPct(mem), cfg.Backend),
		Columns: append([]string{"write latency (ns)"}, algoNames(sortAlgos)...),
	}
	for _, lat := range latencies {
		c := cfg
		c.WriteLatency = lat
		row := []string{fmt.Sprintf("%d", lat.Nanoseconds())}
		for _, a := range sortAlgos {
			cfg.logf("fig11: %s at w=%v", a.Name(), lat)
			m, err := measureSort(c, cfg.Backend, a, n, mem)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Response))
		}
		sortRep.Rows = append(sortRep.Rows, row)
	}

	joinAlgos := []joins.Algorithm{
		joins.NewHybridGraceNL(0.5, 0.2),
		joins.NewHybridGraceNL(0.5, 0.5),
		joins.NewSegmentedGrace(0.2),
		joins.NewSegmentedGrace(0.5),
		joins.NewLazyHash(),
	}
	joinRep := &Report{
		ID:      "fig11",
		Title:   fmt.Sprintf("Impact of write latency on joins (|T|=%d, |V|=%d, memory %s, backend=%s)", nLeft, nRight, fmtPct(mem), cfg.Backend),
		Columns: append([]string{"write latency (ns)"}, algoNames(joinAlgos)...),
	}
	for _, lat := range latencies {
		c := cfg
		c.WriteLatency = lat
		row := []string{fmt.Sprintf("%d", lat.Nanoseconds())}
		for _, a := range joinAlgos {
			cfg.logf("fig11: %s at w=%v", a.Name(), lat)
			m, err := measureJoin(c, cfg.Backend, a, nLeft, nRight, mem)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Response))
		}
		joinRep.Rows = append(joinRep.Rows, row)
	}
	note := "Paper shape: write-limited algorithms are resilient to write latency — and algorithm rankings are latency-stable. " +
		"Absolute sensitivity differs by construction: the paper's responses were dominated by native CPU (hence its ≤5% change across a 4× latency sweep), " +
		"while this harness charges a small uniform CPU-per-line, so the latency share — and thus the sweep's slope — is larger here. " +
		"The reproduction criterion is that relative order among the write-limited algorithms does not change across the sweep."
	sortRep.Notes = append(sortRep.Notes, note)
	joinRep.Notes = append(joinRep.Notes, note)
	return []*Report{sortRep, joinRep}, nil
}
