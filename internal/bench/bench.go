// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§4), regenerating the same rows and
// series. Scale is a knob — cardinalities shrink proportionally while
// memory percentages, join fan-out and λ stay fixed, so the *shapes*
// (who wins, by what factor, where crossovers fall) are preserved.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"wlpm/internal/pmem"
)

// Paper-scale cardinalities (§4.1): ten million rows for sorting, one
// million joining ten million for joins.
const (
	PaperSortRows      = 10_000_000
	PaperJoinLeftRows  = 1_000_000
	PaperJoinRightRows = 10_000_000
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies the paper's cardinalities (1.0 = full size;
	// default 0.02 keeps the suite minutes-fast while preserving shapes).
	Scale float64
	// Backend used by single-implementation experiments (default
	// "blocked", the minimal-overhead layer the paper reports on).
	Backend string
	// BlockSize of the persistence layer (default 1024, the paper's).
	BlockSize int
	// ReadLatency and WriteLatency of the device (defaults 10 ns/150 ns).
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// CPUPerLine models the native processing cost per cacheline touched
	// (scan, compare, copy, heap work — the paper's pre-delay C++ CPU
	// time on a 2.5 GHz Xeon, ~20 cycles per line). Default 8 ns. See
	// Metrics.Response.
	CPUPerLine time.Duration
	// MemoryPoints overrides the default memory sweep (fractions of the
	// relevant input size).
	MemoryPoints []float64
	// Parallelism is the operator worker count (0 and 1 both mean the
	// paper's serial execution). The scaling experiment sweeps it.
	Parallelism int
	// Sessions is K, the number of concurrent sessions of the concurrency
	// experiment (default 4).
	Sessions int
	// BatchSize is the operator batch size of the exec-engine experiments
	// (pipeline, concurrency, budget, batch). 0 keeps the engine default
	// (1024); 1 is record-at-a-time execution. Output bytes and simulated
	// cacheline writes are identical at every setting.
	BatchSize int
	// BatchJSON, when non-empty, is the path where the batch experiment
	// writes its machine-readable result (BENCH_batch.json). Other
	// experiments ignore it.
	BatchJSON string
	// ServeJSON, when non-empty, is the path where the serve experiment
	// writes its machine-readable result (BENCH_serve.json). Other
	// experiments ignore it.
	ServeJSON string
	// ScalingJSON, when non-empty, is the path where the scaling
	// experiment writes its machine-readable result (BENCH_scaling.json).
	// Other experiments ignore it.
	ScalingJSON string
	// Spin injects device latencies as real (overlappable) delays instead
	// of only accounting them, like the paper's idle-loop
	// instrumentation. The scaling experiment forces it on: overlapping
	// device latency across workers is the speedup partition parallelism
	// buys, and it shows even on a single-core host.
	Spin bool
	// Verbose emits progress lines to Log.
	Verbose bool
	Log     io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Backend == "" {
		c.Backend = "blocked"
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = pmem.DefaultReadLatency
	}
	if c.WriteLatency <= 0 {
		c.WriteLatency = pmem.DefaultWriteLatency
	}
	if c.CPUPerLine <= 0 {
		c.CPUPerLine = 8 * time.Nanosecond
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose && c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// SortRows is the sort-benchmark cardinality at this scale.
func (c Config) SortRows() int { return scaled(PaperSortRows, c.Scale) }

// JoinRows is the join-benchmark cardinality pair at this scale.
func (c Config) JoinRows() (left, right int) {
	return scaled(PaperJoinLeftRows, c.Scale), scaled(PaperJoinRightRows, c.Scale)
}

func scaled(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}

// Metrics is one measured run.
type Metrics struct {
	Reads    uint64        // cachelines
	Writes   uint64        // cachelines
	SimIO    time.Duration // device latencies, summed serially (reads·r + writes·w)
	SimIOOvl time.Duration // device latencies on the overlap clock (≤ SimIO; equal when serial)
	Soft     time.Duration // modelled filesystem software overhead
	CPU      time.Duration // modelled native CPU: (reads+writes)·CPUPerLine, overlap-scaled
	Wall     time.Duration // actual Go wall time (not in Response)
	Response time.Duration // SimIOOvl + Soft + CPU, the reported figure
}

func (m Metrics) String() string {
	return fmt.Sprintf("resp=%v reads=%d writes=%d", m.Response.Round(time.Microsecond), m.Reads, m.Writes)
}

// Report is one regenerated table or figure series.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print renders the report as a markdown table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
	if len(r.Columns) > 0 {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r.Columns, " | "))
		seps := make([]string, len(r.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range r.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner produces the reports of one experiment.
type Runner func(cfg Config) ([]*Report, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig2":        Fig2,
	"fig5":        Fig5,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"fig11":       Fig11,
	"fig12":       Fig12,
	"table1":      Table1,
	"table2":      Table2,
	"scaling":     Scaling,
	"pipeline":    Pipeline,
	"concurrency": Concurrency,
	"budget":      Budget,
	"batch":       BatchExec,
}

// Register adds an experiment living outside this package — the serve
// experiment, whose runner needs the façade and client layers this
// package sits below, registers itself through it from the façade's
// init. Registering an existing id replaces it.
func Register(id string, r Runner) { registry[id] = r }

// Experiments lists the registered experiment ids in presentation order.
func Experiments() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric-aware: fig2 < fig5 < … < fig12 < table1 < table2.
		return padID(ids[i]) < padID(ids[j])
	})
	return ids
}

func padID(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			return fmt.Sprintf("%s%04s", id[:i], id[i:])
		}
	}
	return id
}

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments())
	}
	return r(cfg.withDefaults())
}

// fmtDur renders a duration in milliseconds with fixed precision, the
// harness's response-time unit.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// fmtMillions renders a cacheline count in millions, matching the paper's
// tables.
func fmtMillions(n uint64) string {
	return fmt.Sprintf("%.3f", float64(n)/1e6)
}

func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
