package bench

// The budget experiment is not a paper artifact: it measures the
// cost-driven memory planning this repository adds on top of Viglas'14.
// A deliberately skewed star pipeline — a large fact-table join feeding
// a group-by that collapses to a handful of rows, then a tiny final
// sort — is run per memory point with (a) the legacy even budget split,
// (b) the marginal-benefit allocator's shares, and (c) K concurrent
// copies admitted through the broker with fixed grants vs grant bidding.
// The even-vs-cost-driven rows show where shifting memory toward the
// stage whose cost curve bends most buys writes and response; the
// fixed-vs-bidding rows show broker wait time falling when queries bid
// for the smaller grants their plans price well at.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wlpm/internal/broker"
	"wlpm/internal/exec"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// budgetContenders is K, the concurrent copies of the contended phase.
const budgetContenders = 3

// budgetBidSlack is the accepted predicted slowdown of a smaller grant:
// candidates within 2× of the full-budget prediction join the bid.
const budgetBidSlack = 2.0

// Budget measures even vs cost-driven stage shares and fixed-grant vs
// grant-bidding admission on the skewed star pipeline.
func Budget(cfg Config) ([]*Report, error) {
	cfg.Spin = true // overlap device latencies, like the concurrency experiment
	nDim, nFact := cfg.JoinRows()
	rep := &Report{
		ID: "budget",
		Title: fmt.Sprintf("Cost-driven memory planning, skewed star pipeline (%d ⋈ %d ⋈ %d, backend=%s, K=%d)",
			nDim, nFact, nDim, cfg.Backend, budgetContenders),
		Columns: []string{"memory", "mode", "resp/wall (ms)", "writes (M)", "predicted cost",
			"broker wait (ms)"},
	}
	for _, frac := range cfg.memFracs(pipelineMemPoints) {
		budget := int64(frac * float64(nFact) * record.Size)
		if budget < int64(record.Size) {
			budget = record.Size
		}
		for _, mode := range []struct {
			name string
			even bool
		}{{"even split", true}, {"cost-driven", false}} {
			cfg.logf("budget: mem=%.1f%% %s", frac*100, mode.name)
			m, predicted, err := measureBudgetSplit(cfg, nDim, nFact, budget, mode.even)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmtPct(frac), mode.name, fmtDur(m.Response), fmtMillions(m.Writes),
				fmt.Sprintf("%.4g", predicted), "—",
			})
		}
		for _, mode := range []struct {
			name string
			bid  bool
		}{{fmt.Sprintf("K=%d fixed grants", budgetContenders), false},
			{fmt.Sprintf("K=%d grant bidding", budgetContenders), true}} {
			cfg.logf("budget: mem=%.1f%% %s", frac*100, mode.name)
			wall, wait, writes, err := measureBudgetContention(cfg, nDim, nFact, budget, mode.bid)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmtPct(frac), mode.name, fmtDur(wall), fmtMillions(writes), "—", fmtDur(wait),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"The pipeline is skewed on purpose: the group-by collapses the join output to the dimension "+
			"cardinality, so the final sort's cost curve is flat and the allocator shifts its share to "+
			"the join and the aggregation. Results are byte-identical under both splits.",
		fmt.Sprintf("Contended rows run K=%d copies against a broker budget of 1.5 grants: fixed-size "+
			"requests serialize, while bidding sessions accept a half or quarter grant (within %.1fx "+
			"predicted cost) and overlap. Broker wait is the summed time queries spent waiting for memory.",
			budgetContenders, budgetBidSlack),
	)
	return []*Report{rep}, nil
}

// budgetRig loads the skewed star tables and returns the plan builder.
func budgetRig(cfg Config, nDim, nFact int, capMul int64) (*rig, func() *exec.Plan, error) {
	payload := int64(nDim*2+nFact) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload*2*capMul)
	if err != nil {
		return nil, nil, err
	}
	dim1, fact, err := r.loadJoinInputs(nDim, nFact)
	if err != nil {
		return nil, nil, err
	}
	dim2, err := r.fac.Create("dim2", record.Size)
	if err != nil {
		return nil, nil, err
	}
	if err := record.Generate(nDim, 43, dim2.Append); err != nil {
		return nil, nil, err
	}
	if err := dim2.Close(); err != nil {
		return nil, nil, err
	}
	plan := func() *exec.Plan {
		p := exec.Table(dim1).Join(exec.Table(fact))
		p = exec.Table(dim2).Join(p)
		// GroupHint: the skew the allocator exploits — the aggregation
		// collapses to nDim groups, so everything above it is tiny.
		return p.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupHint(nDim).GroupBy(3).OrderBy()
	}
	return r, plan, nil
}

// measureBudgetSplit runs the pipeline once under the chosen split and
// reports the metrics plus the allocator's predicted plan cost.
func measureBudgetSplit(cfg Config, nDim, nFact int, budget int64, even bool) (Metrics, float64, error) {
	r, plan, err := budgetRig(cfg, nDim, nFact, 1)
	if err != nil {
		return Metrics{}, 0, err
	}
	ctx := cfg.newExecCtx(r.fac, budget)
	root, ex, err := exec.CompileWith(ctx, plan(), exec.CompileOptions{EvenBudgetSplit: even})
	if err != nil {
		return Metrics{}, 0, err
	}
	out, err := r.fac.Create("result", record.Size)
	if err != nil {
		return Metrics{}, 0, err
	}
	m, err := r.measure(cfg, func() error { return exec.Run(ctx, root, out) })
	if err != nil {
		return Metrics{}, 0, fmt.Errorf("budget (mem %d B, even %v): %w", budget, even, err)
	}
	if out.Len() != nDim {
		return Metrics{}, 0, fmt.Errorf("budget: %d result groups, want %d", out.Len(), nDim)
	}
	return m, ex.PlanCost, nil
}

// measureBudgetContention runs K copies of the pipeline against a
// broker holding 1.5 grants' worth of memory. Fixed mode: every query
// demands the full grant (they serialize). Bidding mode: queries price
// the plan at full/half/quarter budgets (exec.PlanCosts, the same
// pricing sessions bid with) and AcquireBest admits the largest feasible
// candidate. Returns wall time, summed admission wait and per-query
// writes.
func measureBudgetContention(cfg Config, nDim, nFact int, perQuery int64, bid bool) (wall, wait time.Duration, writes uint64, err error) {
	r, plan, err := budgetRig(cfg, nDim, nFact, budgetContenders)
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := broker.New(perQuery + perQuery/2)
	if err != nil {
		return 0, 0, 0, err
	}
	candidates := []int64{perQuery}
	if bid {
		ec := exec.NewCtx(r.fac, perQuery, cfg.Parallelism)
		budgets := []int64{perQuery, perQuery / 2, perQuery / 4}
		costs, err := exec.PlanCosts(ec, plan(), budgets)
		if err != nil {
			return 0, 0, 0, err
		}
		for i := 1; i < len(budgets); i++ {
			if budgets[i] > 0 && costs[i] <= budgetBidSlack*costs[0] {
				candidates = append(candidates, budgets[i])
			}
		}
	}
	outs := make([]storage.Collection, budgetContenders)
	for i := range outs {
		if outs[i], err = r.fac.Create(fmt.Sprintf("result%d", i), record.Size); err != nil {
			return 0, 0, 0, err
		}
	}
	waits := make([]time.Duration, budgetContenders)
	runOne := func(i int) error {
		t0 := time.Now()
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; measured queries must run to completion
		g, err := b.AcquireBest(context.Background(), candidates, broker.Block)
		if err != nil {
			return err
		}
		waits[i] = time.Since(t0)
		defer g.Release()
		ec := cfg.newExecCtx(r.fac, g.Bytes())
		root, _, err := exec.Compile(ec, plan())
		if err != nil {
			return err
		}
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; measured queries must run to completion
		return exec.RunCtx(context.Background(), ec, root, outs[i])
	}
	r.dev.ResetStats()
	start := time.Now()
	errs := make([]error, budgetContenders)
	var wg sync.WaitGroup
	for i := 0; i < budgetContenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runOne(i)
		}(i)
	}
	wg.Wait()
	wall = time.Since(start)
	for i, err := range errs {
		if err != nil {
			return 0, 0, 0, fmt.Errorf("budget contender %d (bid %v): %w", i, bid, err)
		}
	}
	for i, out := range outs {
		if out.Len() != nDim {
			return 0, 0, 0, fmt.Errorf("budget contender %d: %d result groups, want %d", i, out.Len(), nDim)
		}
	}
	if hw := b.HighWater(); hw > b.Total() {
		return 0, 0, 0, fmt.Errorf("broker high water %d B exceeds budget %d B", hw, b.Total())
	}
	for _, w := range waits {
		wait += w
	}
	return wall, wait, r.dev.Stats().Writes / budgetContenders, nil
}
