package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests: a few
// thousand records, two memory points.
func tiny() Config {
	return Config{Scale: 0.0005, MemoryPoints: []float64{0.05, 0.10}}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := Experiments()
	want := []string{"batch", "budget", "concurrency", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "pipeline", "scaling", "table1", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry order %v, want %v", ids, want)
		}
	}
	if _, err := Run("fig99", tiny()); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestReportPrint(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"## x — t", "| a | b |", "| 1 | 2 |", "> n"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run end to end at tiny scale and produce
// non-empty reports. This is the integration test of the whole stack:
// device, backends, algorithms, cost model, harness.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			reps, err := Run(id, tiny())
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if len(reps) == 0 {
				t.Fatalf("Run(%s): no reports", id)
			}
			for _, r := range reps {
				if len(r.Rows) == 0 {
					t.Errorf("Run(%s): report %q has no rows", id, r.Title)
				}
				var buf bytes.Buffer
				r.Print(&buf)
				if buf.Len() == 0 {
					t.Errorf("Run(%s): report %q prints nothing", id, r.Title)
				}
			}
		})
	}
}

// TestBatchExperimentJSON runs the batch experiment at tiny scale and
// checks the machine-readable output: the JSON file exists, covers every
// mode in both variants, and records zero cacheline write drift between
// record and batch execution.
func TestBatchExperimentJSON(t *testing.T) {
	cfg := tiny()
	cfg.BatchJSON = t.TempDir() + "/BENCH_batch.json"
	if _, err := Run("batch", cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(cfg.BatchJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc batchDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("BENCH_batch.json does not parse: %v", err)
	}
	if doc.BatchSize != 1024 {
		t.Errorf("batch_size = %d, want engine default 1024", doc.BatchSize)
	}
	if len(doc.Summary) == 0 || len(doc.Rows) != 2*len(doc.Summary) {
		t.Fatalf("doc has %d rows for %d modes", len(doc.Rows), len(doc.Summary))
	}
	for mode, s := range doc.Summary {
		if s.WriteDrift != 0 {
			t.Errorf("%s: write drift %+d cachelines, want 0", mode, s.WriteDrift)
		}
		if s.WallSpeedup <= 0 {
			t.Errorf("%s: non-positive wall speedup %v", mode, s.WallSpeedup)
		}
	}
}

func TestScaledCardinalities(t *testing.T) {
	cfg := Config{Scale: 0.001}.withDefaults()
	if got := cfg.SortRows(); got != 10000 {
		t.Errorf("SortRows = %d, want 10000", got)
	}
	l, r := cfg.JoinRows()
	if l != 1000 || r != 10000 {
		t.Errorf("JoinRows = %d, %d", l, r)
	}
	if cfg.Backend != "blocked" || cfg.BlockSize != 1024 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
