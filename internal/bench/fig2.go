package bench

import (
	"fmt"

	"wlpm/internal/cost"
)

// shades render normalized cost as ASCII, light to dark: the paper's
// heatmaps use a lighter shade for better (lower-cost) settings.
var shades = []byte(" .:-=+*#%@")

// Fig2 regenerates Figure 2: heatmaps of the hybrid Grace-nested-loops
// cost function over (x, y) as the |T|/|V| ratio and λ scale. Purely
// analytic — no simulation.
func Fig2(cfg Config) ([]*Report, error) {
	const n = 21
	var reps []*Report
	for _, lambda := range []float64{2, 5, 8} {
		for _, ratio := range []float64{1, 10, 100} {
			h := cost.HybridJoinHeatmap(ratio, lambda, n)
			min, max := h.MinMax()
			rep := &Report{
				ID:    "fig2",
				Title: fmt.Sprintf("|T|/|V| = 1/%.0f, λ = %.0f — Jh(x,y); lighter is better", ratio, lambda),
			}
			rep.Columns = []string{"y\\x →"}
			rep.Columns = append(rep.Columns, "0.0 → 1.0")
			// Rows printed top-down as y descends from 1 to 0, matching
			// the paper's axes.
			for iy := h.N - 1; iy >= 0; iy-- {
				line := make([]byte, h.N)
				for ix := 0; ix < h.N; ix++ {
					norm := 0.0
					if max > min {
						norm = (h.Cost[iy][ix] - min) / (max - min)
					}
					line[ix] = shades[int(norm*float64(len(shades)-1))]
				}
				rep.Rows = append(rep.Rows, []string{
					fmt.Sprintf("y=%.2f", float64(iy)/float64(h.N-1)),
					"`" + string(line) + "`",
				})
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf("cost range [%.3g, %.3g] buffer-reads", min, max))
			reps = append(reps, rep)
		}
	}
	reps[0].Notes = append(reps[0].Notes,
		"Paper shape: similarly sized inputs favour large (x, y) (Grace); growing λ and |V|/|T| shift the advantage toward nested loops (small x, y / the x ≥ y, x+y = 1 diagonal).")
	return reps, nil
}
