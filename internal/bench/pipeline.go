package bench

// The pipeline experiment is not a paper artifact: it measures the
// query-execution engine this repository layers over Viglas'14 — a
// star-join + group-by + order-by plan run four ways per memory point:
// pipelined vs materialize-every-step composition, each with the
// cost-model physical planner free vs pinned to the symmetric-I/O
// baselines (ExMS + GJ).

import (
	"fmt"

	"wlpm/internal/exec"
	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/stats"
)

// pipelineMemPoints is the memory sweep of the pipeline experiment, in
// fractions of the fact table.
var pipelineMemPoints = []float64{0.01, 0.05, 0.10, 0.15}

// Pipeline measures the execution engine: response and cacheline I/O of
// a dimension ⋈ fact ⋈ dimension star plan with group-by and order-by,
// across the memory sweep. Rows compare pipelined against
// materialize-every-step execution (the write savings of streaming
// operators) and auto-planned against fixed symmetric-baseline physical
// operators (the write savings of cost-model choice).
func Pipeline(cfg Config) ([]*Report, error) {
	nDim, nFact := cfg.JoinRows()

	rep := &Report{
		ID: "pipeline",
		Title: fmt.Sprintf("Pipelined star join + group-by + order-by (%d ⋈ %d ⋈ %d, backend=%s, P=%d)",
			nDim, nFact, nDim, cfg.Backend, max(cfg.Parallelism, 1)),
		Columns: []string{"memory", "mode", "planner", "chosen (join, sort)", "resp (ms)",
			"reads (M)", "writes (M)", "Δwrites vs naive"},
	}

	for _, frac := range cfg.memFracs(pipelineMemPoints) {
		var naiveWrites uint64
		for _, mode := range []struct {
			name        string
			materialize bool
			auto        bool
			stats       bool
		}{
			// The naive row first: materialized composition with the
			// paper's symmetric baselines is what a pre-engine caller
			// would hand-wire; the Δwrites column is measured against it.
			{"materialized", true, false, false},
			{"materialized", true, true, false},
			{"pipelined", false, false, false},
			{"pipelined", false, true, false},
			// Cost model fed by collected column statistics instead of
			// the textbook defaults (the ANALYZE pass runs before the
			// measured window, like a warm catalog).
			{"pipelined", false, true, true},
		} {
			planner := "fixed ExMS+GJ"
			if mode.auto {
				planner = "cost model"
			}
			if mode.stats {
				planner = "cost model+stats"
			}
			cfg.logf("pipeline: mem=%.1f%% %s %s", frac*100, mode.name, planner)
			m, chosen, err := measurePipeline(cfg, nDim, nFact, frac, mode.materialize, mode.auto, mode.stats)
			if err != nil {
				return nil, err
			}
			if naiveWrites == 0 {
				naiveWrites = m.Writes
			}
			rep.Rows = append(rep.Rows, []string{
				fmtPct(frac), mode.name, planner, chosen,
				fmtDur(m.Response), fmtMillions(m.Reads), fmtMillions(m.Writes),
				fmtDrift(naiveWrites, m.Writes),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"All variants produce byte-identical results; only device traffic and response differ.",
		"Streaming operators (filter, project, limit) write nothing in pipelined mode; blocking "+
			"operators (join, group-by, order-by) split the plan budget M evenly and spill through "+
			"the persistence layer.")
	return []*Report{rep}, nil
}

// measurePipeline runs the star plan once and reports the metrics plus
// the planner's join/sort picks. With useStats the planner estimates
// cardinalities from a pre-collected statistics catalog.
func measurePipeline(cfg Config, nDim, nFact int, memFrac float64, materialize, auto, useStats bool) (Metrics, string, error) {
	payload := int64(nDim*2+nFact) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload*2)
	if err != nil {
		return Metrics{}, "", err
	}
	dim1, fact, err := r.loadJoinInputs(nDim, nFact)
	if err != nil {
		return Metrics{}, "", err
	}
	dim2, err := r.fac.Create("dim2", record.Size)
	if err != nil {
		return Metrics{}, "", err
	}
	if err := record.Generate(nDim, 43, dim2.Append); err != nil {
		return Metrics{}, "", err
	}
	if err := dim2.Close(); err != nil {
		return Metrics{}, "", err
	}

	var sortA sorts.Algorithm
	var joinA joins.Algorithm
	if !auto {
		sortA, joinA = sorts.NewExternalMergeSort(), joins.NewGrace()
	}
	plan := exec.Table(dim1).JoinWith(exec.Table(fact), joinA)
	plan = exec.Table(dim2).JoinWith(plan, joinA)
	plan = plan.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).
		GroupByWith(3, sortA).
		OrderByWith(sortA)

	budget := int64(memFrac * float64(nFact) * record.Size)
	if budget < int64(record.Size) {
		budget = record.Size
	}
	ctx := cfg.newExecCtx(r.fac, budget)
	if useStats {
		cache := stats.NewCache(false)
		if _, err := cache.Collect(dim1); err != nil {
			return Metrics{}, "", err
		}
		if _, err := cache.Collect(dim2); err != nil {
			return Metrics{}, "", err
		}
		if _, err := cache.Collect(fact); err != nil {
			return Metrics{}, "", err
		}
		ctx.Stats = cache
	}
	root, ex, err := exec.CompileWith(ctx, plan, exec.CompileOptions{MaterializeEveryStep: materialize})
	if err != nil {
		return Metrics{}, "", err
	}
	out, err := r.fac.Create("result", record.Size)
	if err != nil {
		return Metrics{}, "", err
	}
	m, err := r.measure(cfg, func() error { return exec.Run(ctx, root, out) })
	if err != nil {
		return Metrics{}, "", fmt.Errorf("pipeline (mem %.1f%%, materialize %v, auto %v): %w",
			memFrac*100, materialize, auto, err)
	}
	if out.Len() != nDim {
		return Metrics{}, "", fmt.Errorf("pipeline: %d result groups, want %d", out.Len(), nDim)
	}
	// Summarize after the run: open-time clamping may have replaced a
	// compile-time pick, and the shared choices now name what actually ran.
	return m, chosenSummary(ex), nil
}

// chosenSummary compresses the Explain choices to "join algo, sort algo"
// for the report table (the two joins and two sorts share choices in
// this plan shape; distinct picks are all listed).
func chosenSummary(ex *exec.Explain) string {
	var joinsSeen, sortsSeen []string
	for _, c := range ex.Choices {
		switch c.Operator {
		case "Join":
			joinsSeen = appendUnique(joinsSeen, c.Algorithm)
		default:
			sortsSeen = appendUnique(sortsSeen, c.Algorithm)
		}
	}
	return fmt.Sprintf("%s, %s", joinList(joinsSeen), joinList(sortsSeen))
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

func joinList(list []string) string {
	out := ""
	for i, s := range list {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	if out == "" {
		return "—"
	}
	return out
}

// memFracs returns the configured override or the experiment default.
func (c Config) memFracs(def []float64) []float64 {
	if len(c.MemoryPoints) > 0 {
		return c.MemoryPoints
	}
	return def
}
