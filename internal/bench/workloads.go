package bench

import (
	"fmt"
	"time"

	"wlpm/internal/algo"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// rig is one isolated measurement environment: a fresh device, factory
// and pre-loaded inputs, so runs never share state.
type rig struct {
	dev *pmem.Device
	fac storage.Factory
}

// newRig sizes a device for the given payload with generous headroom for
// runs, partitions and output, then loads nothing.
func newRig(cfg Config, backend string, payloadBytes int64) (*rig, error) {
	capacity := payloadBytes*8 + (64 << 20)
	dev, err := pmem.Open(pmem.Config{
		Capacity:      capacity,
		ReadLatency:   cfg.ReadLatency,
		WriteLatency:  cfg.WriteLatency,
		CachelineSize: pmem.DefaultCachelineSize,
		Spin:          cfg.Spin,
	})
	if err != nil {
		return nil, err
	}
	fac, err := all.New(backend, dev, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	return &rig{dev: dev, fac: fac}, nil
}

// loadSortInput creates and fills the sort benchmark input.
func (r *rig) loadSortInput(n int) (storage.Collection, error) {
	in, err := r.fac.Create("input", record.Size)
	if err != nil {
		return nil, err
	}
	if err := record.Generate(n, 42, in.Append); err != nil {
		return nil, err
	}
	if err := in.Close(); err != nil {
		return nil, err
	}
	return in, nil
}

// loadJoinInputs creates and fills the join benchmark inputs.
func (r *rig) loadJoinInputs(nLeft, nRight int) (left, right storage.Collection, err error) {
	l, err := r.fac.Create("left", record.Size)
	if err != nil {
		return nil, nil, err
	}
	rr, err := r.fac.Create("right", record.Size)
	if err != nil {
		return nil, nil, err
	}
	if err := record.GenerateJoin(nLeft, nRight, 42, l.Append, rr.Append); err != nil {
		return nil, nil, err
	}
	if err := l.Close(); err != nil {
		return nil, nil, err
	}
	if err := rr.Close(); err != nil {
		return nil, nil, err
	}
	return l, rr, nil
}

// measure runs fn with device counters reset and returns the metrics.
//
// Response is fully simulated: device latencies plus filesystem software
// overhead plus a modelled native CPU cost per cacheline touched. The
// paper's response times fold in optimized C++ CPU; charging our Go
// wall-clock instead would penalize the read-heavy write-limited
// algorithms for constant factors of the reproduction language rather
// than of the medium, so wall time is recorded separately and the CPU
// share is modelled with the uniform per-line constant Config.CPUPerLine.
//
// Parallel phases register their workers with the device overlap clock
// (pmem EnterWorker/LeaveWorker), so SimIOOverlap advances by 1/w of each
// latency charged while w workers are in flight. Response is built on that
// overlap clock, with the modelled CPU share scaled by the same overlap
// ratio — a phase that overlaps its device accesses overlaps its per-line
// CPU too. Serial runs have SimIOOverlap == SimIOTime and are numerically
// unchanged.
func (r *rig) measure(cfg Config, fn func() error) (Metrics, error) {
	r.dev.ResetStats()
	start := time.Now()
	if err := fn(); err != nil {
		return Metrics{}, err
	}
	wall := time.Since(start)
	st := r.dev.Stats()
	cpu := time.Duration(st.Reads+st.Writes) * cfg.CPUPerLine
	if st.SimIOTime > 0 && st.SimIOOverlap < st.SimIOTime {
		cpu = time.Duration(float64(cpu) * float64(st.SimIOOverlap) / float64(st.SimIOTime))
	}
	return Metrics{
		Reads:    st.Reads,
		Writes:   st.Writes,
		SimIO:    st.SimIOTime,
		SimIOOvl: st.SimIOOverlap,
		Soft:     st.SoftTime,
		CPU:      cpu,
		Wall:     wall,
		Response: st.SimIOOverlap + st.SoftTime + cpu,
	}, nil
}

// measureSort runs one sort algorithm at the given memory fraction of the
// input size on a fresh rig.
func measureSort(cfg Config, backend string, a sorts.Algorithm, n int, memFrac float64) (Metrics, error) {
	payload := int64(n) * record.Size
	r, err := newRig(cfg, backend, payload)
	if err != nil {
		return Metrics{}, err
	}
	in, err := r.loadSortInput(n)
	if err != nil {
		return Metrics{}, err
	}
	out, err := r.fac.Create("output", record.Size)
	if err != nil {
		return Metrics{}, err
	}
	budget := int64(memFrac * float64(payload))
	if budget < int64(record.Size) {
		budget = record.Size
	}
	env := algo.NewParallelEnv(r.fac, budget, cfg.Parallelism)
	m, err := r.measure(cfg, func() error { return a.Sort(env, in, out) })
	if err != nil {
		return Metrics{}, fmt.Errorf("%s (backend %s, mem %.1f%%): %w", a.Name(), backend, memFrac*100, err)
	}
	if out.Len() != n {
		return Metrics{}, fmt.Errorf("%s: output %d records, want %d", a.Name(), out.Len(), n)
	}
	return m, nil
}

// measureJoin runs one join algorithm at the given memory fraction of the
// left input size on a fresh rig.
func measureJoin(cfg Config, backend string, a joins.Algorithm, nLeft, nRight int, memFrac float64) (Metrics, error) {
	payload := int64(nLeft+nRight) * record.Size
	r, err := newRig(cfg, backend, payload*2)
	if err != nil {
		return Metrics{}, err
	}
	left, right, err := r.loadJoinInputs(nLeft, nRight)
	if err != nil {
		return Metrics{}, err
	}
	// The paper's evaluation materializes single-record result tuples
	// (80 B projections — its NLJ writes exactly |V| buffers), not full
	// left‖right concatenations.
	out, err := r.fac.Create("output", record.Size)
	if err != nil {
		return Metrics{}, err
	}
	budget := int64(memFrac * float64(nLeft) * record.Size)
	if budget < int64(record.Size) {
		budget = record.Size
	}
	env := algo.NewParallelEnv(r.fac, budget, cfg.Parallelism)
	m, err := r.measure(cfg, func() error { return a.Join(env, left, right, out) })
	if err != nil {
		return Metrics{}, fmt.Errorf("%s (backend %s, mem %.1f%%): %w", a.Name(), backend, memFrac*100, err)
	}
	if out.Len() != nRight {
		return Metrics{}, fmt.Errorf("%s: output %d records, want %d", a.Name(), out.Len(), nRight)
	}
	return m, nil
}

// defaultSortMemPoints is the paper's 1–15%-of-input sweep.
var defaultSortMemPoints = []float64{0.01, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15}

// defaultJoinMemPoints is the paper's 1–15%-of-left-input sweep.
var defaultJoinMemPoints = []float64{0.0125, 0.025, 0.05, 0.075, 0.10, 0.125}

func (c Config) sortMemPoints() []float64 {
	if len(c.MemoryPoints) > 0 {
		return c.MemoryPoints
	}
	return defaultSortMemPoints
}

func (c Config) joinMemPoints() []float64 {
	if len(c.MemoryPoints) > 0 {
		return c.MemoryPoints
	}
	return defaultJoinMemPoints
}
