package bench

// The batch experiment is not a paper artifact: it measures the
// vectorized Volcano layer this repository adds over Viglas'14 — the same
// workloads run record-at-a-time (batch size 1, the original engine) and
// batched (the default 1024-record batches). The write-limited invariant
// extends to vectorization: output bytes and simulated cacheline writes
// are identical in both variants; only interpretation overhead — and
// therefore wall clock — changes. The streaming mode is the headline:
// with no blocking algorithm work to hide behind, the per-record
// interpretation cost of the Volcano loop dominates and batching must
// show a wall-clock speedup at zero write drift.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"wlpm/internal/exec"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// newExecCtx builds the execution context of an engine experiment,
// applying the configured operator batch size.
func (c Config) newExecCtx(fac storage.Factory, budget int64) *exec.Ctx {
	ec := exec.NewCtx(fac, budget, c.Parallelism)
	if c.BatchSize > 0 {
		ec.BatchSize = c.BatchSize
	}
	return ec
}

// effBatch is the batch variant's operator batch size.
func (c Config) effBatch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return exec.DefaultBatchSize
}

// batchRow is one measured (mode, variant) cell of BENCH_batch.json.
type batchRow struct {
	Mode       string  `json:"mode"`
	Variant    string  `json:"variant"` // "record" or "batch"
	BatchSize  int     `json:"batch_size"`
	WallMs     float64 `json:"wall_ms"`
	ResponseMs float64 `json:"response_ms"`
	SimReads   uint64  `json:"sim_reads"`
	SimWrites  uint64  `json:"sim_writes"`
}

// batchSummary compares a mode's batch variant against its record variant.
type batchSummary struct {
	WallSpeedup float64 `json:"wall_speedup"`
	ReadDrift   int64   `json:"read_drift"`  // batch − record, cachelines
	WriteDrift  int64   `json:"write_drift"` // batch − record, cachelines; must be 0
}

// batchDoc is the BENCH_batch.json document.
type batchDoc struct {
	Scale       float64                 `json:"scale"`
	Backend     string                  `json:"backend"`
	BatchSize   int                     `json:"batch_size"`
	Parallelism int                     `json:"parallelism"`
	Sessions    int                     `json:"sessions"`
	Rows        []batchRow              `json:"rows"`
	Summary     map[string]batchSummary `json:"summary"`
}

// BatchExec measures record-at-a-time against batched execution over a
// streaming pipeline, the star plan (pipelined and materialized) and K
// concurrent star sessions, reporting wall clock and the simulated
// cacheline traffic of each variant. With Config.BatchJSON set, the
// measurements are also written as JSON.
func BatchExec(cfg Config) ([]*Report, error) {
	bs := cfg.effBatch()
	nDim, nFact := cfg.JoinRows()
	nStream := cfg.SortRows()
	k := cfg.Sessions
	if k <= 0 {
		k = 4
	}
	frac := 0.05
	if len(cfg.MemoryPoints) > 0 {
		frac = cfg.MemoryPoints[0]
	}

	modes := []struct {
		name string
		run  func(c Config) (Metrics, error)
	}{
		{"stream", func(c Config) (Metrics, error) {
			return measureStream(c, nStream)
		}},
		{"star-pipelined", func(c Config) (Metrics, error) {
			m, _, err := measurePipeline(c, nDim, nFact, frac, false, false, false)
			return m, err
		}},
		{"star-materialized", func(c Config) (Metrics, error) {
			m, _, err := measurePipeline(c, nDim, nFact, frac, true, false, false)
			return m, err
		}},
		{fmt.Sprintf("concurrent-star-k%d", k), func(c Config) (Metrics, error) {
			perQuery := int64(frac * float64(nFact) * record.Size)
			if perQuery < int64(record.Size) {
				perQuery = record.Size
			}
			sm, err := runSessions(c, nDim, nFact, perQuery, k, concurrencyAdmit)
			if err != nil {
				return Metrics{}, err
			}
			return Metrics{Wall: sm.wall, Reads: sm.readsPerQuery, Writes: sm.writesPerQuery}, nil
		}},
	}

	rep := &Report{
		ID: "batch",
		Title: fmt.Sprintf("Vectorized batch execution: record vs batch=%d (backend=%s, P=%d)",
			bs, cfg.Backend, max(cfg.Parallelism, 1)),
		Columns: []string{"mode", "variant", "batch", "wall (ms)", "resp (ms)",
			"reads (M)", "writes (M)", "wall speedup", "Δwrites vs record"},
	}
	doc := &batchDoc{
		Scale:       cfg.Scale,
		Backend:     cfg.Backend,
		BatchSize:   bs,
		Parallelism: max(cfg.Parallelism, 1),
		Sessions:    k,
		Summary:     map[string]batchSummary{},
	}

	for _, mode := range modes {
		var byVariant [2]Metrics
		for i, v := range []struct {
			name string
			bs   int
		}{{"record", 1}, {"batch", bs}} {
			c := cfg
			c.BatchSize = v.bs
			cfg.logf("batch: %s %s (batch=%d)", mode.name, v.name, v.bs)
			m, err := mode.run(c)
			if err != nil {
				return nil, fmt.Errorf("batch %s/%s: %w", mode.name, v.name, err)
			}
			byVariant[i] = m
			doc.Rows = append(doc.Rows, batchRow{
				Mode:       mode.name,
				Variant:    v.name,
				BatchSize:  v.bs,
				WallMs:     float64(m.Wall) / float64(time.Millisecond),
				ResponseMs: float64(m.Response) / float64(time.Millisecond),
				SimReads:   m.Reads,
				SimWrites:  m.Writes,
			})
			rep.Rows = append(rep.Rows, []string{
				mode.name, v.name, fmt.Sprint(v.bs),
				fmtDur(m.Wall), fmtDur(m.Response),
				fmtMillions(m.Reads), fmtMillions(m.Writes),
				fmt.Sprintf("%.2fx", speedup(byVariant[0].Wall, m.Wall)),
				fmtDrift(byVariant[0].Writes, m.Writes),
			})
		}
		doc.Summary[mode.name] = batchSummary{
			WallSpeedup: speedup(byVariant[0].Wall, byVariant[1].Wall),
			ReadDrift:   int64(byVariant[1].Reads) - int64(byVariant[0].Reads),
			WriteDrift:  int64(byVariant[1].Writes) - int64(byVariant[0].Writes),
		}
	}

	for name, s := range doc.Summary {
		if s.WriteDrift != 0 {
			return nil, fmt.Errorf("batch %s: %+d cacheline write drift between record and batch execution",
				name, s.WriteDrift)
		}
	}
	rep.Notes = append(rep.Notes,
		"Record and batch variants produce byte-identical output and identical simulated cacheline "+
			"writes; batching changes interpretation overhead (wall clock) only.",
		"The stream mode has no blocking algorithm work, so the Volcano interpretation loop dominates "+
			"its wall clock — the regime vectorization targets.")
	if cfg.BatchJSON != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.BatchJSON, append(blob, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("batch: writing %s: %w", cfg.BatchJSON, err)
		}
		cfg.logf("batch: wrote %s", cfg.BatchJSON)
	}
	return []*Report{rep}, nil
}

// measureStream runs the streaming pipeline — a four-stage filter chain
// and a projection, no blocking stage — over n permuted-key records.
// Three filters are near-total (they drop the keys divisible by the
// Wisconsin moduli of attributes 1, 3 and 5) and the last keeps the top
// tenth of the key domain, so the record engine interprets the full
// five-operator chain for every input record while the output — and with
// it the Append path both variants share — stays small. The expected
// output cardinality is recomputed exactly from the key domain.
func measureStream(cfg Config, n int) (Metrics, error) {
	payload := int64(n) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload)
	if err != nil {
		return Metrics{}, err
	}
	in, err := r.loadSortInput(n)
	if err != nil {
		return Metrics{}, err
	}
	plan := exec.Table(in).
		Filter(exec.Predicate{Attr: 1, Op: exec.Ge, Value: 1}).
		Filter(exec.Predicate{Attr: 3, Op: exec.Ge, Value: 1}).
		Filter(exec.Predicate{Attr: 5, Op: exec.Ge, Value: 1}).
		Filter(exec.Predicate{Attr: 0, Op: exec.Ge, Value: uint64(n - n/10)}).
		Project(0, 2, 4, 6)
	ec := cfg.newExecCtx(r.fac, 64<<10)
	root, _, err := exec.Compile(ec, plan)
	if err != nil {
		return Metrics{}, err
	}
	out, err := r.fac.Create("result", root.RecordSize())
	if err != nil {
		return Metrics{}, err
	}
	m, err := r.measure(cfg, func() error { return exec.Run(ec, root, out) })
	if err != nil {
		return Metrics{}, fmt.Errorf("stream (n=%d): %w", n, err)
	}
	want := 0
	for k := n - n/10; k < n; k++ {
		if k%1001 != 0 && k%3001 != 0 && k%5001 != 0 {
			want++
		}
	}
	if out.Len() != want {
		return Metrics{}, fmt.Errorf("stream: %d output records, want %d", out.Len(), want)
	}
	return m, nil
}
