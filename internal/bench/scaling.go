package bench

// The scaling experiment is not a paper artifact: it measures the
// partition-parallel execution subsystem this repository adds on top of
// Viglas'14 — wall-clock speedup versus worker count, with the simulated
// cacheline I/O held to the serial counts (the write-limited invariant).

import (
	"fmt"
	"runtime"
	"time"

	"wlpm/internal/joins"
	"wlpm/internal/sorts"
)

// scalingWorkers is the P sweep of the scaling experiment.
var scalingWorkers = []int{1, 2, 4, 8}

// scalingMemFrac is the memory budget of both scaling workloads, as a
// fraction of the relevant input: the middle of the paper's sweeps.
const scalingMemFrac = 0.05

// Scaling measures partition-parallel speedup for one sort (SegS at
// x = 0.5) and one join (GJ) over P ∈ {1, 2, 4, 8} workers.
//
// The device runs in spin mode: every charged cacheline latency is a real
// deadline-based delay, so concurrent workers overlap their device waits
// exactly as they would on real asymmetric-memory hardware. Wall is
// therefore the full response time (CPU plus overlapped I/O) and is the
// quantity parallelism improves — notably even on a single-core host,
// where only the I/O share overlaps. Δreads and Δwrites report the
// cacheline-count drift against the serial run, which the parallel plans
// keep within a few percent: the write-limited invariant.
func Scaling(cfg Config) ([]*Report, error) {
	cfg.Spin = true
	n := cfg.SortRows()
	nLeft, nRight := cfg.JoinRows()

	sortRep := &Report{
		ID: "scaling-sort",
		Title: fmt.Sprintf("Partition-parallel SegS(0.50) sort (n=%d, mem=%.0f%%, backend=%s)",
			n, scalingMemFrac*100, cfg.Backend),
		Columns: []string{"workers", "wall (ms)", "speedup", "sim I/O (ms)", "reads (M)", "Δreads", "writes (M)", "Δwrites"},
	}
	joinRep := &Report{
		ID: "scaling-join",
		Title: fmt.Sprintf("Partition-parallel GJ join (%d ⋈ %d, mem=%.0f%% of left, backend=%s)",
			nLeft, nRight, scalingMemFrac*100, cfg.Backend),
		Columns: []string{"workers", "wall (ms)", "speedup", "sim I/O (ms)", "reads (M)", "Δreads", "writes (M)", "Δwrites"},
	}

	var sortBase, joinBase Metrics
	for _, p := range scalingWorkers {
		pcfg := cfg
		pcfg.Parallelism = p

		cfg.logf("scaling: SegS(0.50) at P=%d", p)
		sm, err := measureSort(pcfg, cfg.Backend, sorts.NewSegmentSort(0.5), n, scalingMemFrac)
		if err != nil {
			return nil, err
		}
		if p == 1 {
			sortBase = sm
		}
		sortRep.Rows = append(sortRep.Rows, scalingRow(p, sm, sortBase))

		cfg.logf("scaling: GJ at P=%d", p)
		jm, err := measureJoin(pcfg, cfg.Backend, joins.NewGrace(), nLeft, nRight, scalingMemFrac)
		if err != nil {
			return nil, err
		}
		if p == 1 {
			joinBase = jm
		}
		joinRep.Rows = append(joinRep.Rows, scalingRow(p, jm, joinBase))
	}
	note := "Δ columns are cacheline-count drift vs the serial run; the " +
		"write-limited invariant keeps them within a few percent at every P."
	hostNote := fmt.Sprintf("Host has %d core(s): the CPU share of the response parallelizes "+
		"only across real cores, so single-core hosts show just the overlapped-device-latency "+
		"share of the speedup; the flat sim I/O column is the per-access latency sum, unchanged by P.",
		runtime.NumCPU())
	sortRep.Notes = append(sortRep.Notes, note, hostNote)
	joinRep.Notes = append(joinRep.Notes, note, hostNote)
	return []*Report{sortRep, joinRep}, nil
}

func scalingRow(p int, m, base Metrics) []string {
	return []string{
		fmt.Sprintf("%d", p),
		fmtDur(m.Wall),
		fmt.Sprintf("%.2fx", speedup(base.Wall, m.Wall)),
		fmtDur(m.SimIO),
		fmtMillions(m.Reads),
		fmtDrift(base.Reads, m.Reads),
		fmtMillions(m.Writes),
		fmtDrift(base.Writes, m.Writes),
	}
}

func speedup(base, cur time.Duration) float64 {
	if cur == 0 {
		return 1
	}
	return float64(base) / float64(cur)
}

func fmtDrift(base, cur uint64) string {
	if base == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.2f%%", (float64(cur)/float64(base)-1)*100)
}
