package bench

// The scaling experiment is not a paper artifact: it measures the
// partition-parallel execution subsystem this repository adds on top of
// Viglas'14 — wall-clock and modelled-response speedup versus worker
// count, with the simulated cacheline writes of the parallelized phases
// held byte-exactly to the serial counts (the write-limited invariant).
//
// Two workloads run per worker count: an ExMS sort, whose final merge is
// the splitter-partitioned parallel merge (sorts.FinalMergePhase), and a
// GJ join, whose hash-table builds fan out to per-range sub-tables
// (joins.BuildPhase). Both phases are bracketed by the environment's
// phase recorder, so the experiment reports the lifted phase's own
// speedup next to the whole operator's — and gates on the phase's write
// count, which parallelism must not move at all.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// scalingWorkers is the P sweep of the scaling experiment.
var scalingWorkers = []int{1, 2, 4, 8}

// scalingMemFrac is the memory budget of both scaling workloads, as a
// fraction of the relevant input: the middle of the paper's sweeps.
const scalingMemFrac = 0.05

// scalingReps repeats each (workload, P) cell and keeps the fastest wall
// clocks: spin-mode walls carry scheduler noise of the same order as the
// smaller phase times on small hosts, and the minimum is the usual
// low-noise estimator for a deterministic workload. Counters, responses
// and checksums are identical across repetitions (the output checksum is
// verified to be), so only the walls are folded.
const scalingReps = 3

// scalingRun is one measured (workload, P) cell: whole-operator metrics,
// the lifted phase's accounting, the cost model's response prediction at
// this P, and an FNV-1a checksum of the output byte stream.
type scalingRun struct {
	m         Metrics
	phase     algo.PhaseStat
	predicted time.Duration
	checksum  uint64
}

// scalingJSONRow is one cell of BENCH_scaling.json.
type scalingJSONRow struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	WallMs      float64 `json:"wall_ms"`
	ResponseMs  float64 `json:"response_ms"`
	PredictedMs float64 `json:"predicted_response_ms"`
	SimReads    uint64  `json:"sim_reads"`
	SimWrites   uint64  `json:"sim_writes"`
	Checksum    string  `json:"output_checksum"`
	PhaseWallMs float64 `json:"phase_wall_ms"`
	PhaseRespMs float64 `json:"phase_response_ms"`
	PhaseWrites uint64  `json:"phase_writes"`
}

// scalingSummary compares a workload's P=8 run against its serial run.
type scalingSummary struct {
	WallSpeedup      float64 `json:"wall_speedup"`
	ResponseSpeedup  float64 `json:"response_speedup"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	PhaseWallSpeedup float64 `json:"phase_wall_speedup"`
	PhaseRespSpeedup float64 `json:"phase_response_speedup"`
	ByteIdentical    bool    `json:"byte_identical"` // checksums equal at every P
	WriteDrift       int64   `json:"write_drift"`    // lifted phase, max |P − serial| cachelines; must be 0
}

// scalingDoc is the BENCH_scaling.json document.
type scalingDoc struct {
	Scale   float64                   `json:"scale"`
	Backend string                    `json:"backend"`
	MemFrac float64                   `json:"mem_frac"`
	Workers []int                     `json:"workers"`
	Rows    []scalingJSONRow          `json:"rows"`
	Summary map[string]scalingSummary `json:"summary"`
}

// Scaling measures partition-parallel speedup for one sort (ExMS, the
// fully parallelizable profile) and one join (GJ) over P ∈ {1, 2, 4, 8}
// workers, reporting measured wall clock and modelled response next to
// the cost model's PriceP prediction at each P.
//
// The device runs in spin mode: every charged cacheline latency is a real
// deadline-based delay, so concurrent workers overlap their device waits
// exactly as they would on real asymmetric-memory hardware. Wall is
// therefore the full response time (CPU plus overlapped I/O) and is the
// quantity parallelism improves — notably even on a single-core host,
// where only the I/O share overlaps. The lifted phases (the sort's final
// merge, the join's table builds) are reported separately: their writes
// must not move by a single cacheline, and the output byte stream must be
// identical at every P. Both gates fail the experiment, and the JSON
// summary records them for CI.
func Scaling(cfg Config) ([]*Report, error) {
	cfg.Spin = true
	n := cfg.SortRows()
	nLeft, nRight := cfg.JoinRows()
	bs := float64(cfg.BlockSize)
	// Price profiles in nanoseconds per buffer exactly as fig12 does:
	// device latency plus the engine's CPU charge, per block of
	// cachelines. The prediction excludes the filesystem software
	// overhead, which parallelism does not move.
	linesPerBuf := bs / 64
	readNs := (float64(cfg.ReadLatency) + float64(cfg.CPUPerLine)) * linesPerBuf
	writeNs := (float64(cfg.WriteLatency) + float64(cfg.CPUPerLine)) * linesPerBuf

	tSort := float64(n) * record.Size / bs
	tJoin := float64(nLeft) * record.Size / bs
	vJoin := float64(nRight) * record.Size / bs

	workloads := []struct {
		name    string
		phase   string
		profile cost.Profile
		run     func(c Config) (Metrics, algo.PhaseStat, uint64, error)
	}{
		{
			name:    "sort-ExMS",
			phase:   sorts.FinalMergePhase,
			profile: cost.ExMSProfile(tSort, scalingMemFrac*tSort),
			run: func(c Config) (Metrics, algo.PhaseStat, uint64, error) {
				return runScalingSort(c, n)
			},
		},
		{
			name:    "join-GJ",
			phase:   joins.BuildPhase,
			profile: cost.GJProfile(tJoin, vJoin),
			run: func(c Config) (Metrics, algo.PhaseStat, uint64, error) {
				return runScalingJoin(c, nLeft, nRight)
			},
		},
	}

	doc := &scalingDoc{
		Scale:   cfg.Scale,
		Backend: cfg.Backend,
		MemFrac: scalingMemFrac,
		Workers: scalingWorkers,
		Summary: map[string]scalingSummary{},
	}
	cols := []string{"workers", "wall (ms)", "speedup", "resp (ms)", "resp speedup",
		"pred resp (ms)", "pred speedup", "Δreads", "Δwrites"}
	sortRep := &Report{
		ID: "scaling-sort",
		Title: fmt.Sprintf("Partition-parallel ExMS sort (n=%d, mem=%.0f%%, backend=%s)",
			n, scalingMemFrac*100, cfg.Backend),
		Columns: cols,
	}
	joinRep := &Report{
		ID: "scaling-join",
		Title: fmt.Sprintf("Partition-parallel GJ join (%d ⋈ %d, mem=%.0f%% of left, backend=%s)",
			nLeft, nRight, scalingMemFrac*100, cfg.Backend),
		Columns: cols,
	}
	phaseRep := &Report{
		ID:    "scaling-phases",
		Title: "The lifted phases: final sort merge and hash-table builds",
		Columns: []string{"workload", "phase", "workers", "wall (ms)", "speedup",
			"resp (ms)", "resp speedup", "phase writes"},
	}
	reps := map[string]*Report{"sort-ExMS": sortRep, "join-GJ": joinRep}

	for _, w := range workloads {
		var base scalingRun
		runs := make([]scalingRun, 0, len(scalingWorkers))
		for _, p := range scalingWorkers {
			pcfg := cfg
			pcfg.Parallelism = p
			cfg.logf("scaling: %s at P=%d", w.name, p)
			m, phase, sum, err := w.run(pcfg)
			if err != nil {
				return nil, fmt.Errorf("scaling %s (P=%d): %w", w.name, p, err)
			}
			for rep := 1; rep < scalingReps; rep++ {
				m2, phase2, sum2, err := w.run(pcfg)
				if err != nil {
					return nil, fmt.Errorf("scaling %s (P=%d, rep %d): %w", w.name, p, rep, err)
				}
				if sum2 != sum {
					return nil, fmt.Errorf("scaling %s (P=%d): output bytes differ across repetitions", w.name, p)
				}
				if m2.Wall < m.Wall {
					m.Wall = m2.Wall
				}
				if phase2.Wall < phase.Wall {
					phase.Wall = phase2.Wall
				}
			}
			r := scalingRun{
				m:         m,
				phase:     phase,
				predicted: time.Duration(w.profile.PriceP(readNs, writeNs, float64(p))),
				checksum:  sum,
			}
			if p == 1 {
				base = r
			}
			runs = append(runs, r)

			phaseResp := phaseResponse(cfg, phase.Stats)
			doc.Rows = append(doc.Rows, scalingJSONRow{
				Workload:    w.name,
				Workers:     p,
				WallMs:      float64(m.Wall) / float64(time.Millisecond),
				ResponseMs:  float64(m.Response) / float64(time.Millisecond),
				PredictedMs: float64(r.predicted) / float64(time.Millisecond),
				SimReads:    m.Reads,
				SimWrites:   m.Writes,
				Checksum:    fmt.Sprintf("%016x", sum),
				PhaseWallMs: float64(phase.Wall) / float64(time.Millisecond),
				PhaseRespMs: float64(phaseResp) / float64(time.Millisecond),
				PhaseWrites: phase.Stats.Writes,
			})
			reps[w.name].Rows = append(reps[w.name].Rows, []string{
				fmt.Sprintf("%d", p),
				fmtDur(m.Wall),
				fmt.Sprintf("%.2fx", speedup(base.m.Wall, m.Wall)),
				fmtDur(m.Response),
				fmt.Sprintf("%.2fx", speedup(base.m.Response, m.Response)),
				fmtDur(r.predicted),
				fmt.Sprintf("%.2fx", speedup(base.predicted, r.predicted)),
				fmtDrift(base.m.Reads, m.Reads),
				fmtDrift(base.m.Writes, m.Writes),
			})
			phaseRep.Rows = append(phaseRep.Rows, []string{
				w.name, w.phase, fmt.Sprintf("%d", p),
				fmtDur(phase.Wall),
				fmt.Sprintf("%.2fx", speedup(base.phase.Wall, phase.Wall)),
				fmtDur(phaseResp),
				fmt.Sprintf("%.2fx", speedup(phaseResponse(cfg, base.phase.Stats), phaseResp)),
				fmt.Sprintf("%d", phase.Stats.Writes),
			})
		}

		s := scalingSummary{ByteIdentical: true}
		last := runs[len(runs)-1]
		s.WallSpeedup = speedup(base.m.Wall, last.m.Wall)
		s.ResponseSpeedup = speedup(base.m.Response, last.m.Response)
		s.PredictedSpeedup = speedup(base.predicted, last.predicted)
		s.PhaseWallSpeedup = speedup(base.phase.Wall, last.phase.Wall)
		s.PhaseRespSpeedup = speedup(phaseResponse(cfg, base.phase.Stats), phaseResponse(cfg, last.phase.Stats))
		for _, r := range runs {
			if r.checksum != base.checksum {
				s.ByteIdentical = false
			}
			d := int64(r.phase.Stats.Writes) - int64(base.phase.Stats.Writes)
			if d < 0 {
				d = -d
			}
			if d > s.WriteDrift {
				s.WriteDrift = d
			}
		}
		doc.Summary[w.name] = s
		if !s.ByteIdentical {
			return nil, fmt.Errorf("scaling %s: output bytes differ across worker counts", w.name)
		}
		if s.WriteDrift != 0 {
			return nil, fmt.Errorf("scaling %s: %d cacheline write drift in the %s phase across worker counts",
				w.name, s.WriteDrift, w.phase)
		}
	}

	notes := []string{
		"Δ columns are cacheline-count drift vs the serial run; the lifted phases' writes are " +
			"byte-exact at every P (gated), total drift stays within a few percent.",
		"pred resp prices the workload's I/O profile with cost.PriceP at each P — the same " +
			"phase-level parallelism model the planner uses — excluding filesystem software overhead.",
		fmt.Sprintf("Host has %d core(s): the CPU share of the response parallelizes only across real "+
			"cores, so single-core hosts show just the overlapped-device-latency share of the speedup.",
			runtime.NumCPU()),
	}
	sortRep.Notes = append(sortRep.Notes, notes...)
	joinRep.Notes = append(joinRep.Notes, notes...)
	phaseRep.Notes = append(phaseRep.Notes,
		"The sort's final merge reads runs and writes the output (its writes equal the serial merge's); "+
			"the join's builds are read-only, so their phase writes are 0 at every P.",
		"A read-only phase's device share is reads at 10 ns/line, so on a single-core host the build "+
			"phase is CPU-bound and its wall clock stays near parity while its modelled response scales; "+
			"the write-heavy final merge shows the wall speedup directly.")

	if cfg.ScalingJSON != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ScalingJSON, append(blob, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("scaling: writing %s: %w", cfg.ScalingJSON, err)
		}
		cfg.logf("scaling: wrote %s", cfg.ScalingJSON)
	}
	return []*Report{sortRep, joinRep, phaseRep}, nil
}

// runScalingSort is measureSort with a phase recorder attached and the
// output checksummed after measurement.
func runScalingSort(cfg Config, n int) (Metrics, algo.PhaseStat, uint64, error) {
	payload := int64(n) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	in, err := r.loadSortInput(n)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	out, err := r.fac.Create("output", record.Size)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	budget := int64(scalingMemFrac * float64(payload))
	rec := algo.NewPhaseRecorder()
	env := algo.NewParallelEnv(r.fac, budget, cfg.Parallelism).WithPhases(rec)
	a := sorts.NewExternalMergeSort()
	m, err := r.measure(cfg, func() error { return a.Sort(env, in, out) })
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	if out.Len() != n {
		return Metrics{}, algo.PhaseStat{}, 0, fmt.Errorf("output %d records, want %d", out.Len(), n)
	}
	sum, err := checksumRecords(out)
	return m, rec.Phase(sorts.FinalMergePhase), sum, err
}

// runScalingJoin is measureJoin's phase-recording, checksumming twin.
func runScalingJoin(cfg Config, nLeft, nRight int) (Metrics, algo.PhaseStat, uint64, error) {
	payload := int64(nLeft+nRight) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload*2)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	left, right, err := r.loadJoinInputs(nLeft, nRight)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	out, err := r.fac.Create("output", record.Size)
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	budget := int64(scalingMemFrac * float64(nLeft) * record.Size)
	rec := algo.NewPhaseRecorder()
	env := algo.NewParallelEnv(r.fac, budget, cfg.Parallelism).WithPhases(rec)
	a := joins.NewGrace()
	m, err := r.measure(cfg, func() error { return a.Join(env, left, right, out) })
	if err != nil {
		return Metrics{}, algo.PhaseStat{}, 0, err
	}
	if out.Len() != nRight {
		return Metrics{}, algo.PhaseStat{}, 0, fmt.Errorf("output %d records, want %d", out.Len(), nRight)
	}
	sum, err := checksumRecords(out)
	return m, rec.Phase(joins.BuildPhase), sum, err
}

// checksumRecords is the FNV-1a hash of the collection's byte stream in
// record order — the byte-identity witness of BENCH_scaling.json.
func checksumRecords(c storage.Collection) (uint64, error) {
	h := fnv.New64a()
	it := c.Scan()
	defer it.Close()
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return h.Sum64(), nil
		}
		if err != nil {
			return 0, err
		}
		h.Write(rec)
	}
}

// phaseResponse is measure's response model applied to one phase's
// counter delta: overlapped device latency plus software overhead plus
// the modelled CPU share, overlap-scaled.
func phaseResponse(cfg Config, st pmem.Stats) time.Duration {
	cpu := time.Duration(st.Reads+st.Writes) * cfg.CPUPerLine
	if st.SimIOTime > 0 && st.SimIOOverlap < st.SimIOTime {
		cpu = time.Duration(float64(cpu) * float64(st.SimIOOverlap) / float64(st.SimIOTime))
	}
	return st.SimIOOverlap + st.SoftTime + cpu
}

func speedup(base, cur time.Duration) float64 {
	if cur == 0 {
		return 1
	}
	return float64(base) / float64(cur)
}

func fmtDrift(base, cur uint64) string {
	if base == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.2f%%", (float64(cur)/float64(base)-1)*100)
}
