package bench

import (
	"fmt"

	"wlpm/internal/joins"
	"wlpm/internal/storage"
)

// fig7Algorithms is the union of the paper's Fig. 7 panels.
func fig7Algorithms() []joins.Algorithm {
	return []joins.Algorithm{
		joins.NewNestedLoops(),
		joins.NewHash(),
		joins.NewGrace(),
		joins.NewLazyHash(),
		joins.NewSegmentedGrace(0.2),
		joins.NewSegmentedGrace(0.5),
		joins.NewSegmentedGrace(0.8),
		joins.NewHybridGraceNL(0.2, 0.8),
		joins.NewHybridGraceNL(0.5, 0.5),
		joins.NewHybridGraceNL(0.8, 0.2),
	}
}

// fig7Panels maps each panel to its algorithm names.
var fig7Panels = []struct {
	name  string
	algos []string
}{
	{"(a) Overall", []string{"NLJ", "HJ", "GJ", "LaJ", "SegJ(0.50)", "HybJ(0.50,0.50)"}},
	{"(b) HybJ compared to GJ", []string{"GJ", "HybJ(0.20,0.80)", "HybJ(0.50,0.50)", "HybJ(0.80,0.20)"}},
	{"(c) SegJ compared to GJ", []string{"GJ", "SegJ(0.20)", "SegJ(0.50)", "SegJ(0.80)"}},
	{"(d) LaJ compared to HJ, GJ", []string{"HJ", "GJ", "LaJ"}},
}

// Fig7 regenerates Figure 7: join performance panels (a)–(d) plus the
// min/max writes (reads) table.
func Fig7(cfg Config) ([]*Report, error) {
	nLeft, nRight := cfg.JoinRows()
	algos := fig7Algorithms()
	mems := cfg.joinMemPoints()

	// Measure every algorithm once per memory point; panels share data.
	resp := make(map[string]map[float64]Metrics)
	for _, a := range algos {
		resp[a.Name()] = make(map[float64]Metrics)
		for _, mem := range mems {
			cfg.logf("fig7: %s at mem %.2f%%", a.Name(), mem*100)
			m, err := measureJoin(cfg, cfg.Backend, a, nLeft, nRight, mem)
			if err != nil {
				return nil, err
			}
			resp[a.Name()][mem] = m
		}
	}

	var reps []*Report
	for _, panel := range fig7Panels {
		rep := &Report{
			ID:      "fig7",
			Title:   fmt.Sprintf("%s (|T|=%d, |V|=%d, backend=%s)", panel.name, nLeft, nRight, cfg.Backend),
			Columns: append([]string{"memory (% of left)"}, panel.algos...),
		}
		for _, mem := range mems {
			row := []string{fmtPct(mem)}
			for _, name := range panel.algos {
				row = append(row, fmtDur(resp[name][mem].Response))
			}
			rep.Rows = append(rep.Rows, row)
		}
		reps = append(reps, rep)
	}

	ioRep := &Report{
		ID:      "fig7-table",
		Title:   "Join writes and reads in millions of cachelines (min/max over the memory sweep)",
		Columns: []string{"algorithm", "min writes (reads)", "max writes (reads)"},
	}
	for _, a := range algos {
		var minM, maxM Metrics
		set := false
		for _, mem := range mems { // deterministic sweep order
			m := resp[a.Name()][mem]
			if !set || m.Writes < minM.Writes {
				minM = m
			}
			if !set || m.Writes > maxM.Writes {
				maxM = m
			}
			set = true
		}
		ioRep.Rows = append(ioRep.Rows, []string{
			a.Name(),
			fmt.Sprintf("%s (%s)", fmtMillions(minM.Writes), fmtMillions(minM.Reads)),
			fmt.Sprintf("%s (%s)", fmtMillions(maxM.Writes), fmtMillions(maxM.Reads)),
		})
	}
	ioRep.Notes = append(ioRep.Notes,
		"Paper shape: write-limited joins write less than GJ/HJ and read more; NLJ is the write floor and read ceiling; LaJ beats HJ by up to ~3× at small memory.")
	return append(reps, ioRep), nil
}

// Fig8 regenerates Figure 8: the Fig. 7(a) join algorithms under the four
// implementation alternatives.
func Fig8(cfg Config) ([]*Report, error) {
	nLeft, nRight := cfg.JoinRows()
	mems := cfg.MemoryPoints
	if len(mems) == 0 {
		mems = []float64{0.025, 0.05, 0.10}
	}
	algos := []joins.Algorithm{
		joins.NewGrace(),
		joins.NewHash(),
		joins.NewNestedLoops(),
		joins.NewHybridGraceNL(0.5, 0.5),
		joins.NewSegmentedGrace(0.5),
		joins.NewLazyHash(),
	}
	var reps []*Report
	for _, a := range algos {
		rep := &Report{
			ID:      "fig8",
			Title:   fmt.Sprintf("%s under the four implementation alternatives (|T|=%d, |V|=%d)", a.Name(), nLeft, nRight),
			Columns: append([]string{"memory (% of left)"}, storage.Backends...),
		}
		for _, mem := range mems {
			row := []string{fmtPct(mem)}
			for _, backend := range storage.Backends {
				cfg.logf("fig8: %s/%s at mem %.2f%%", a.Name(), backend, mem*100)
				m, err := measureJoin(cfg, backend, a, nLeft, nRight, mem)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(m.Response))
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes,
			"Paper shape: blocked minimal, pmfs close behind, dynarray worst (up to 2× for symmetric-I/O algorithms).")
		reps = append(reps, rep)
	}
	return reps, nil
}

// Fig10 regenerates Figure 10: the impact of write intensity on the join
// algorithms, blocked memory, fixed budget.
func Fig10(cfg Config) ([]*Report, error) {
	nLeft, nRight := cfg.JoinRows()
	const mem = 0.05
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	fixed := []float64{0.2, 0.5, 0.8}

	rep := &Report{
		ID:    "fig10",
		Title: fmt.Sprintf("Impact of write intensity on join algorithms (|T|=%d, |V|=%d, memory %s of left, backend=%s)", nLeft, nRight, fmtPct(mem), cfg.Backend),
	}
	rep.Columns = []string{"intensity x", "SegJ"}
	for _, f := range fixed {
		rep.Columns = append(rep.Columns, fmt.Sprintf("HybJ(x,%.0f%%)", f*100))
	}
	for _, f := range fixed {
		rep.Columns = append(rep.Columns, fmt.Sprintf("HybJ(%.0f%%,x)", f*100))
	}
	for _, x := range xs {
		row := []string{fmtPct(x)}
		m, err := measureJoin(cfg, cfg.Backend, joins.NewSegmentedGrace(x), nLeft, nRight, mem)
		if err != nil {
			return nil, err
		}
		row = append(row, fmtDur(m.Response))
		for _, f := range fixed {
			m, err := measureJoin(cfg, cfg.Backend, joins.NewHybridGraceNL(x, f), nLeft, nRight, mem)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Response))
		}
		for _, f := range fixed {
			m, err := measureJoin(cfg, cfg.Backend, joins.NewHybridGraceNL(f, x), nLeft, nRight, mem)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Response))
		}
		rep.Rows = append(rep.Rows, row)
		cfg.logf("fig10: intensity %.0f%% done", x*100)
	}
	rep.Notes = append(rep.Notes,
		"Paper shape: SegJ improves gradually (≈20% end to end); HybJ is dictated by the left-input intensity (up to ~50% gain), stable as the right-input intensity varies.")
	return []*Report{rep}, nil
}
