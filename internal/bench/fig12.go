package bench

import (
	"fmt"

	"wlpm/internal/cost"
	"wlpm/internal/joins"
	"wlpm/internal/record"
	"wlpm/internal/sorts"
)

// Fig12 regenerates Figure 12: the concordance (Kendall's τ) between the
// cost model's ranking of the algorithms and their true measured ranking,
// as available memory scales. Estimates come from the implementation-
// faithful I/O profiles (cost.Profile) priced with the harness's medium
// constants; the lazy algorithms are excluded exactly as in the paper
// (their decisions are dynamic, not static estimates).
func Fig12(cfg Config) ([]*Report, error) {
	n := cfg.SortRows()
	nLeft, nRight := cfg.JoinRows()
	bs := float64(cfg.BlockSize)
	mems := cfg.MemoryPoints
	if len(mems) == 0 {
		mems = []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14}
	}
	// Price profiles in nanoseconds per buffer: device latency plus the
	// engine's CPU charge, per block of cachelines.
	linesPerBuf := bs / 64
	readNs := (float64(cfg.ReadLatency) + float64(cfg.CPUPerLine)) * linesPerBuf
	writeNs := (float64(cfg.WriteLatency) + float64(cfg.CPUPerLine)) * linesPerBuf

	type sortCand struct {
		algo         sorts.Algorithm
		writeLimited bool
		profile      func(t, m float64) cost.Profile
	}
	sortCands := []sortCand{
		{sorts.NewExternalMergeSort(), false, cost.ExMSProfile},
		{sorts.NewSegmentSort(0.2), true, func(t, m float64) cost.Profile { return cost.SegSProfile(0.2, t, m) }},
		{sorts.NewSegmentSort(0.5), true, func(t, m float64) cost.Profile { return cost.SegSProfile(0.5, t, m) }},
		{sorts.NewSegmentSort(0.8), true, func(t, m float64) cost.Profile { return cost.SegSProfile(0.8, t, m) }},
		{sorts.NewHybridSort(0.2), true, func(t, m float64) cost.Profile { return cost.HybSProfile(0.2, t, m) }},
		{sorts.NewHybridSort(0.8), true, func(t, m float64) cost.Profile { return cost.HybSProfile(0.8, t, m) }},
	}
	type joinCand struct {
		algo         joins.Algorithm
		writeLimited bool
		profile      func(t, v, m float64) cost.Profile
	}
	joinCands := []joinCand{
		{joins.NewGrace(), false, func(t, v, m float64) cost.Profile { return cost.GJProfile(t, v) }},
		{joins.NewHash(), false, cost.HJProfile},
		{joins.NewNestedLoops(), false, cost.NLJProfile},
		{joins.NewHybridGraceNL(0.2, 0.8), true, func(t, v, m float64) cost.Profile { return cost.HybJProfile(0.2, 0.8, t, v, m) }},
		{joins.NewHybridGraceNL(0.5, 0.5), true, func(t, v, m float64) cost.Profile { return cost.HybJProfile(0.5, 0.5, t, v, m) }},
		{joins.NewHybridGraceNL(0.8, 0.2), true, func(t, v, m float64) cost.Profile { return cost.HybJProfile(0.8, 0.2, t, v, m) }},
		{joins.NewSegmentedGrace(0.2), true, func(t, v, m float64) cost.Profile { return cost.SegJProfile(0.2, t, v, m) }},
		{joins.NewSegmentedGrace(0.5), true, func(t, v, m float64) cost.Profile { return cost.SegJProfile(0.5, t, v, m) }},
		{joins.NewSegmentedGrace(0.8), true, func(t, v, m float64) cost.Profile { return cost.SegJProfile(0.8, t, v, m) }},
	}

	rep := &Report{
		ID:    "fig12",
		Title: fmt.Sprintf("Concordance between estimated and true performance (Kendall's τ; sort n=%d, join %d⋈%d)", n, nLeft, nRight),
		Columns: []string{
			"memory (% of (left) input)",
			"sorting - all", "join processing - all",
			"sorting - write-limited", "join processing - write-limited",
		},
	}

	for _, mem := range mems {
		tSort := float64(n) * record.Size / bs
		mSort := mem * tSort
		var estS, trueS, estSW, trueSW []float64
		for _, c := range sortCands {
			cfg.logf("fig12: sort %s at mem %.1f%%", c.algo.Name(), mem*100)
			m, err := measureSort(cfg, cfg.Backend, c.algo, n, mem)
			if err != nil {
				return nil, err
			}
			est := c.profile(tSort, mSort).Price(readNs, writeNs)
			estS = append(estS, est)
			trueS = append(trueS, float64(m.Response))
			if c.writeLimited {
				estSW = append(estSW, est)
				trueSW = append(trueSW, float64(m.Response))
			}
		}

		tJoin := float64(nLeft) * record.Size / bs
		vJoin := float64(nRight) * record.Size / bs
		mJoin := mem * tJoin
		var estJ, trueJ, estJW, trueJW []float64
		for _, c := range joinCands {
			cfg.logf("fig12: join %s at mem %.1f%%", c.algo.Name(), mem*100)
			m, err := measureJoin(cfg, cfg.Backend, c.algo, nLeft, nRight, mem)
			if err != nil {
				return nil, err
			}
			est := c.profile(tJoin, vJoin, mJoin).Price(readNs, writeNs)
			estJ = append(estJ, est)
			trueJ = append(trueJ, float64(m.Response))
			if c.writeLimited {
				estJW = append(estJW, est)
				trueJW = append(trueJW, float64(m.Response))
			}
		}

		rep.Rows = append(rep.Rows, []string{
			fmtPct(mem),
			fmt.Sprintf("%.3f", cost.KendallTau(estS, trueS)),
			fmt.Sprintf("%.3f", cost.KendallTau(estJ, trueJ)),
			fmt.Sprintf("%.3f", cost.KendallTau(estSW, trueSW)),
			fmt.Sprintf("%.3f", cost.KendallTau(estJW, trueJW)),
		})
	}
	rep.Rows = append(rep.Rows, summaryRow(rep.Rows))
	rep.Notes = append(rep.Notes,
		"Paper shape: concordance ≥ 0.94 throughout; join concordance above sorting; restricting to write-limited algorithms improves both.")
	return []*Report{rep}, nil
}

// summaryRow appends the per-column means of the τ table.
func summaryRow(rows [][]string) []string {
	sums := make([]float64, 4)
	for _, r := range rows {
		for i := 0; i < 4; i++ {
			var v float64
			fmt.Sscanf(r[i+1], "%f", &v)
			sums[i] += v
		}
	}
	out := []string{"mean"}
	for i := 0; i < 4; i++ {
		out = append(out, fmt.Sprintf("%.3f", sums[i]/float64(len(rows))))
	}
	return out
}
