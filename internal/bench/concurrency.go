package bench

// The concurrency experiment is not a paper artifact: it measures the
// session/broker subsystem this repository adds on top of Viglas'14 — K
// concurrent sessions running the pipeline workload on one device under
// one System-wide memory budget, against the same K queries run
// serially. The broker admits two grants at a time, so the device sees
// genuinely overlapping queries while the working-memory total never
// exceeds what a single administrator budgeted; per-query cacheline
// writes must not drift versus the serial run (the write-limited
// invariant extended from parallel operators to concurrent queries).

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wlpm/internal/broker"
	"wlpm/internal/exec"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// concurrencyAdmit is the number of grants the broker hands out at once:
// the system budget of each sweep point is admit·perQuery, so with K >
// admit sessions the admission queue is actually exercised.
const concurrencyAdmit = 2

// Concurrency measures K sessions running the star pipeline concurrently
// under one broker-rationed memory budget, per memory point, against the
// serial execution of the same K queries (admitting one grant at a time).
//
// The device runs in spin mode, like the scaling experiment: charged
// latencies are real delays, so concurrent queries overlap their device
// waits and wall-clock throughput reflects what concurrency buys on
// asymmetric-memory hardware. Writes are per query; the Δ column is the
// drift against the serial run.
func Concurrency(cfg Config) ([]*Report, error) {
	cfg.Spin = true
	k := cfg.Sessions
	if k <= 0 {
		k = 4
	}
	nDim, nFact := cfg.JoinRows()
	rep := &Report{
		ID: "concurrency",
		Title: fmt.Sprintf("K=%d sessions, star pipeline (%d ⋈ %d ⋈ %d, backend=%s, admit %d grants)",
			k, nDim, nFact, nDim, cfg.Backend, concurrencyAdmit),
		Columns: []string{"memory", "mode", "wall (ms)", "queries/s", "speedup",
			"writes/query (M)", "Δwrites vs serial", "peak grant use"},
	}
	for _, frac := range cfg.memFracs(pipelineMemPoints) {
		perQuery := int64(frac * float64(nFact) * record.Size)
		if perQuery < int64(record.Size) {
			perQuery = record.Size
		}
		cfg.logf("concurrency: mem=%.1f%% serial", frac*100)
		serial, err := runSessions(cfg, nDim, nFact, perQuery, k, 1)
		if err != nil {
			return nil, err
		}
		cfg.logf("concurrency: mem=%.1f%% K=%d concurrent", frac*100, k)
		conc, err := runSessions(cfg, nDim, nFact, perQuery, k, concurrencyAdmit)
		if err != nil {
			return nil, err
		}
		for _, row := range []struct {
			name string
			m    sessionsMetrics
		}{{"serial", serial}, {fmt.Sprintf("K=%d concurrent", k), conc}} {
			rep.Rows = append(rep.Rows, []string{
				fmtPct(frac), row.name,
				fmtDur(row.m.wall),
				fmt.Sprintf("%.1f", float64(k)/row.m.wall.Seconds()),
				fmt.Sprintf("%.2fx", speedup(serial.wall, row.m.wall)),
				fmtMillions(row.m.writesPerQuery),
				fmtDrift(serial.writesPerQuery, row.m.writesPerQuery),
				fmt.Sprintf("%d/%d B", row.m.highWater, row.m.total),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"Every query requests its working-memory grant from one broker before planning; the peak "+
			"grant column shows the high-water mark against the System budget — it never exceeds it.",
		"Writes per query must not drift between serial and concurrent execution: admission control "+
			"shares the device, not the operators' budgets.")
	return []*Report{rep}, nil
}

// sessionsMetrics is one runSessions measurement.
type sessionsMetrics struct {
	wall             time.Duration
	readsPerQuery    uint64
	writesPerQuery   uint64
	highWater, total int64
}

// runSessions runs k star-pipeline queries on one freshly loaded rig,
// admitting at most `admit` broker grants of perQuery bytes at a time
// (admit=1 is the serial baseline). Each query compiles at its granted
// budget and writes its own result collection; result cardinalities are
// verified.
func runSessions(cfg Config, nDim, nFact int, perQuery int64, k, admit int) (sessionsMetrics, error) {
	payload := int64(nDim*2+nFact) * record.Size
	r, err := newRig(cfg, cfg.Backend, payload*2*int64(k))
	if err != nil {
		return sessionsMetrics{}, err
	}
	dim1, fact, err := r.loadJoinInputs(nDim, nFact)
	if err != nil {
		return sessionsMetrics{}, err
	}
	dim2, err := r.fac.Create("dim2", record.Size)
	if err != nil {
		return sessionsMetrics{}, err
	}
	if err := record.Generate(nDim, 43, dim2.Append); err != nil {
		return sessionsMetrics{}, err
	}
	if err := dim2.Close(); err != nil {
		return sessionsMetrics{}, err
	}

	b, err := broker.New(perQuery * int64(admit))
	if err != nil {
		return sessionsMetrics{}, err
	}
	outs := make([]storage.Collection, k)
	for i := range outs {
		if outs[i], err = r.fac.Create(fmt.Sprintf("result%d", i), record.Size); err != nil {
			return sessionsMetrics{}, err
		}
	}

	runOne := func(out storage.Collection) error {
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; measured queries must run to completion
		g, err := b.Acquire(context.Background(), perQuery, broker.Block)
		if err != nil {
			return err
		}
		defer g.Release()
		plan := exec.Table(dim1).Join(exec.Table(fact))
		plan = exec.Table(dim2).Join(plan)
		plan = plan.Project(0, 1, 12, 13, 23, 24, 5, 16, 27, 8).GroupBy(3).OrderBy()
		ec := cfg.newExecCtx(r.fac, g.Bytes())
		root, _, err := exec.Compile(ec, plan)
		if err != nil {
			return err
		}
		//lint:allow wlvet/ctxparam bench harness owns the run lifetime; measured queries must run to completion
		return exec.RunCtx(context.Background(), ec, root, out)
	}

	r.dev.ResetStats()
	start := time.Now()
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runOne(outs[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return sessionsMetrics{}, fmt.Errorf("session %d (mem %d B, admit %d): %w", i, perQuery, admit, err)
		}
	}
	for i, out := range outs {
		if out.Len() != nDim {
			return sessionsMetrics{}, fmt.Errorf("session %d: %d result groups, want %d", i, out.Len(), nDim)
		}
	}
	if hw := b.HighWater(); hw > b.Total() {
		return sessionsMetrics{}, fmt.Errorf("broker high water %d B exceeds budget %d B", hw, b.Total())
	}
	st := r.dev.Stats()
	return sessionsMetrics{
		wall:           wall,
		readsPerQuery:  st.Reads / uint64(k),
		writesPerQuery: st.Writes / uint64(k),
		highWater:      b.HighWater(),
		total:          b.Total(),
	}, nil
}
