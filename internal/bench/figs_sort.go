package bench

import (
	"fmt"

	"wlpm/internal/sorts"
	"wlpm/internal/storage"
)

// fig5Algorithms is the paper's Fig. 5 line-up.
func fig5Algorithms() []sorts.Algorithm {
	return []sorts.Algorithm{
		sorts.NewExternalMergeSort(),
		sorts.NewLazySort(),
		sorts.NewHybridSort(0.2),
		sorts.NewHybridSort(0.8),
		sorts.NewSegmentSort(0.2),
		sorts.NewSegmentSort(0.8),
	}
}

// Fig5 regenerates Figure 5: sorting response time for varying memory
// sizes, plus the min/max writes (reads) table beneath it.
func Fig5(cfg Config) ([]*Report, error) {
	n := cfg.SortRows()
	algos := fig5Algorithms()
	mems := cfg.sortMemPoints()

	timeRep := &Report{
		ID:      "fig5",
		Title:   fmt.Sprintf("Sorting performance for varying memory sizes (n=%d, backend=%s)", n, cfg.Backend),
		Columns: append([]string{"memory (% of input)"}, algoNames(algos)...),
	}
	type extrema struct {
		minW, maxW Metrics
		set        bool
	}
	ext := make(map[string]*extrema)
	for _, mem := range mems {
		row := []string{fmtPct(mem)}
		for _, a := range algos {
			cfg.logf("fig5: %s at mem %.1f%%", a.Name(), mem*100)
			m, err := measureSort(cfg, cfg.Backend, a, n, mem)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Response))
			e := ext[a.Name()]
			if e == nil {
				e = &extrema{}
				ext[a.Name()] = e
			}
			if !e.set || m.Writes < e.minW.Writes {
				e.minW = m
			}
			if !e.set || m.Writes > e.maxW.Writes {
				e.maxW = m
			}
			e.set = true
		}
		timeRep.Rows = append(timeRep.Rows, row)
	}

	ioRep := &Report{
		ID:      "fig5-table",
		Title:   "Sorting writes and reads in millions of cachelines (min/max over the memory sweep)",
		Columns: []string{"algorithm", "min writes (reads)", "max writes (reads)"},
	}
	for _, a := range algos {
		e := ext[a.Name()]
		ioRep.Rows = append(ioRep.Rows, []string{
			a.Name(),
			fmt.Sprintf("%s (%s)", fmtMillions(e.minW.Writes), fmtMillions(e.minW.Reads)),
			fmt.Sprintf("%s (%s)", fmtMillions(e.maxW.Writes), fmtMillions(e.maxW.Reads)),
		})
	}
	ioRep.Notes = append(ioRep.Notes,
		"Paper shape: LaS ≈ half of ExMS's writes with the most reads; SegS/HybS between; reads rise as writes fall.")
	return []*Report{timeRep, ioRep}, nil
}

// Fig6 regenerates Figure 6: each sorting algorithm under the four
// persistence-layer implementations.
func Fig6(cfg Config) ([]*Report, error) {
	n := cfg.SortRows()
	mems := cfg.MemoryPoints
	if len(mems) == 0 {
		mems = []float64{0.025, 0.05, 0.10, 0.15}
	}
	var reps []*Report
	for _, a := range fig5Algorithms() {
		rep := &Report{
			ID:      "fig6",
			Title:   fmt.Sprintf("%s under the four implementation alternatives (n=%d)", a.Name(), n),
			Columns: append([]string{"memory (% of input)"}, storage.Backends...),
		}
		for _, mem := range mems {
			row := []string{fmtPct(mem)}
			for _, backend := range storage.Backends {
				cfg.logf("fig6: %s/%s at mem %.1f%%", a.Name(), backend, mem*100)
				m, err := measureSort(cfg, backend, a, n, mem)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(m.Response))
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes,
			"Paper shape: blocked ≤ pmfs ≤ ramdisk ≤ dynarray, except LaS where the memory-based layers beat the filesystems.")
		reps = append(reps, rep)
	}
	return reps, nil
}

// Fig9 regenerates Figure 9: the impact of write intensity on SegS and
// HybS under all four implementations, at a fixed memory budget.
func Fig9(cfg Config) ([]*Report, error) {
	n := cfg.SortRows()
	const mem = 0.05
	intensities := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rep := &Report{
		ID:    "fig9",
		Title: fmt.Sprintf("Impact of write intensity on sorting (n=%d, memory %s of input)", n, fmtPct(mem)),
	}
	rep.Columns = []string{"intensity"}
	for _, fam := range []string{"HybS", "SegS"} {
		for _, backend := range storage.Backends {
			rep.Columns = append(rep.Columns, fmt.Sprintf("%s/%s", fam, backend))
		}
	}
	for _, x := range intensities {
		row := []string{fmtPct(x)}
		for _, fam := range []string{"HybS", "SegS"} {
			for _, backend := range storage.Backends {
				var a sorts.Algorithm
				if fam == "HybS" {
					a = sorts.NewHybridSort(x)
				} else {
					a = sorts.NewSegmentSort(x)
				}
				cfg.logf("fig9: %s/%s", a.Name(), backend)
				m, err := measureSort(cfg, backend, a, n, mem)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(m.Response))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"Paper shape: HybS improves substantially (up to ~45%) as intensity grows; SegS is flatter (≤ ~18%), reaching good performance at low intensity.")
	return []*Report{rep}, nil
}

func algoNames[T interface{ Name() string }](as []T) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return names
}
