package wlvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
)

// TempSweep enforces the PR 4 temp-hygiene contract: a function that
// creates tracked temporaries (Env.CreateTemp, or a local closure that
// wraps it) must not return an error while a temp it created is still
// live — every error-return path needs a Destroy/SweepTemps-class
// cleanup, or a deferred one. Temps whose ownership demonstrably
// leaves the function (returned, or stored into captured/field state)
// are the enclosing owner's problem and are exempt, as is the
// `if err != nil` guard immediately after the create (the temp is nil
// there).
var TempSweep = &analysis.Analyzer{
	Name: "tempsweep",
	Doc:  "error-return paths must destroy or sweep live CreateTemp temporaries (PR 4 contract)",
	Run:  runTempSweep,
}

// cleanupNameRe matches the verbs the engine uses to reclaim temps:
// Destroy/SweepTemps methods and the destroyRuns/destroyAll/cleanup/
// fail helper family.
var cleanupNameRe = regexp.MustCompile(`(?i)^(destroy|sweep|clean|fail|abort)`)

func isCleanupCall(call *ast.CallExpr) bool {
	return cleanupNameRe.MatchString(calleeName(call))
}

func runTempSweep(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "tempsweep")
	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		for _, u := range unitsOf(pass, file) {
			tempSweepUnit(pass, sup, u)
		}
	}
	return nil, nil
}

// creatorClosures returns the objects of local closures whose bodies
// call CreateTemp — e.g. `openRun := func() error { ... CreateTemp ... }`.
// Calling one is a creation site of the enclosing unit.
func creatorClosures(pass *analysis.Pass, u funcUnit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	walkLocal(u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if containsCall(lit.Body, false, func(c *ast.CallExpr) bool { return calleeName(c) == "CreateTemp" }) {
			if obj := objOf(pass, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func tempSweepUnit(pass *analysis.Pass, sup *suppressor, u funcUnit) {
	creators := creatorClosures(pass, u)

	// A creation site plus the variable bound to the temp (nil for
	// closure creators) and the error variable bound alongside it (for
	// the immediate-guard exemption).
	type site struct {
		call   *ast.CallExpr
		bind   ast.Stmt
		obj    types.Object
		errObj types.Object
	}
	var sites []site

	classify := func(stmt ast.Stmt, as *ast.AssignStmt) {
		// Find creation calls in this statement and decide whether the
		// result stays local (tracked) or escapes the unit.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			direct := calleeName(call) == "CreateTemp"
			viaClosure := false
			if id, ok := call.Fun.(*ast.Ident); ok && creators[objOf(pass, id)] {
				viaClosure = true
			}
			if !direct && !viaClosure {
				return true
			}
			var obj, errObj types.Object
			if direct {
				// The result escapes if returned or assigned beyond the
				// unit's own locals; closure creators store into captured
				// state by construction and always charge this unit.
				if _, ok := stmt.(*ast.ReturnStmt); ok {
					return true
				}
				if as != nil {
					if len(as.Lhs) >= 1 {
						if escapesTarget(pass, u, as.Lhs[0]) {
							return true
						}
						if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							obj = objOf(pass, id)
						}
					}
					if len(as.Lhs) == 2 {
						if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
							errObj = objOf(pass, id)
						}
					}
				}
			} else if as != nil && len(as.Lhs) == 1 {
				// `if err := openRun(); err != nil` style binding.
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					errObj = objOf(pass, id)
				}
			}
			sites = append(sites, site{call, stmt, obj, errObj})
			return true
		})
	}

	walkLocal(u.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			classify(s, s)
		case *ast.ExprStmt:
			classify(s, nil)
		case *ast.ReturnStmt:
			classify(s, nil)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	// A deferred cleanup anywhere in the unit covers every return.
	deferred := false
	walkLocal(u.body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if isCleanupCall(d.Call) {
				deferred = true
			} else if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				if containsCall(lit.Body, false, isCleanupCall) {
					deferred = true
				}
			}
		}
		return !deferred
	})
	if deferred {
		return
	}

	for _, s := range sites {
		s := s
		// A path is safe once it cleans up, or — for a temp bound to a
		// local — once that local's ownership demonstrably moves out of
		// the unit (stored into a field or captured state, or returned):
		// the new owner's sweep is responsible from there.
		barrier := func(n ast.Node) bool {
			if containsCall(n, false, isCleanupCall) {
				return true
			}
			return s.obj != nil && tempHandsOff(pass, u, n, s.obj)
		}
		lo, hi := token.NoPos, token.NoPos
		if s.errObj != nil {
			if l, h, ok := errGuardRange(pass, u, s.bind, s.errObj); ok {
				lo, hi = l, h
			}
		}
		for _, ret := range leakReturns(u, s.call, barrier, true, lo, hi) {
			sup.reportf(pass, ret.Pos(), "error return leaks the temp created at line %d: Destroy it or SweepTemps on this path, or defer a cleanup (wlvet/tempsweep)",
				pass.Fset.Position(s.call.Pos()).Line)
		}
	}
}

// tempHandsOff reports whether the node moves the tracked temp's
// ownership out of the unit: an assignment whose RHS mentions the temp
// and whose LHS escapes (a field, captured variable, or a cell of
// either), or a return mentioning it. Passing the temp to a call does
// NOT hand it off — callees stream into temps they do not own.
func tempHandsOff(pass *analysis.Pass, u funcUnit, n ast.Node, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := m.(*ast.Ident); ok && objOf(pass, id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		// Returns and assignments inside nested closures belong to the
		// closure, not this unit — a scan callback's `return t.Append(r)`
		// is not a hand-off.
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if usesObj(r) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				var rhs ast.Expr
				if len(m.Rhs) == len(m.Lhs) {
					rhs = m.Rhs[i]
				} else if len(m.Rhs) == 1 {
					rhs = m.Rhs[0]
				} else {
					continue
				}
				if usesObj(rhs) && escapesTarget(pass, u, lhs) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// escapesTarget reports whether assigning to target moves ownership
// out of the unit: a field/selector, an index into captured state, or
// a variable declared outside the unit.
func escapesTarget(pass *analysis.Pass, u funcUnit, target ast.Expr) bool {
	switch t := target.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return false
		}
		return !declaredWithin(u, objOf(pass, t))
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return escapesTarget(pass, u, t.X)
	case *ast.StarExpr:
		return escapesTarget(pass, u, t.X)
	}
	return true
}
