// Package syncfield exercises the field-synchronization contract:
// mixed guarded/bare access to mutex-protected struct fields, the
// *Locked naming convention, and the shapes that must stay silent —
// constructors, read-only fields, aliased fields, and synchronous
// call-argument closures.
package syncfield

import (
	"sort"
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) peek() int {
	return c.n // want "counter.n is guarded by counter.mu"
}

func (c *counter) reset() {
	c.n = 0 // want "counter.n is guarded by counter.mu"
}

// Constructors touch fields before the object is published.
func newCounter(n int) *counter {
	c := &counter{}
	c.n = n
	return c
}

// The *Locked suffix is the caller-holds-the-lock contract: accesses
// inside are guarded, calls without the mutex are flagged.
type depot struct {
	mu sync.Mutex
	v  int
}

func (d *depot) bumpLocked() {
	d.v++
}

func (d *depot) use() {
	d.mu.Lock()
	d.bumpLocked()
	d.v = 3
	d.mu.Unlock()
}

func (d *depot) badCall() {
	d.bumpLocked() // want "call to depot.bumpLocked without holding depot.mu"
}

// Read-only after construction: mixed reads, no write, no race.
type tagged struct {
	mu   sync.Mutex
	name string
	seen int
}

func newTagged(name string) *tagged {
	t := &tagged{}
	t.name = name
	return t
}

func (t *tagged) get() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	return t.name
}

func (t *tagged) label() string {
	return t.name
}

// A field that escapes by address leaves the mutex discipline; atomics
// are their own synchronization.
type mixedsync struct {
	mu   sync.Mutex
	hits int64
	tick atomic.Int64
}

func (m *mixedsync) locked() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

func (m *mixedsync) lockless() {
	atomic.AddInt64(&m.hits, 1)
	m.tick.Add(1)
}

// Call-argument closures run within the caller's dynamic extent and
// inherit its locks (the sort.Search comparator pattern).
type arena struct {
	mu   sync.Mutex
	free []int
}

func (a *arena) insert(x int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i] >= x })
	a.free = append(a.free, 0)
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = x
}

func (a *arena) drop() {
	a.mu.Lock()
	a.free = a.free[:0]
	a.mu.Unlock()
}

// A reasoned allow silences the bare site.
type quota struct {
	mu   sync.Mutex
	left int
}

func (q *quota) take() {
	q.mu.Lock()
	q.left--
	q.mu.Unlock()
}

func (q *quota) estimate() int {
	//lint:allow wlvet/syncfield fixture: racy read is documented as an estimate, staleness is acceptable
	return q.left
}
