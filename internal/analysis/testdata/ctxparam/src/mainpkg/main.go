// Package main is exempt from the Background rule: binaries own the
// process-lifetime root context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
