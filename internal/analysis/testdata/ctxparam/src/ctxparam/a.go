// Package ctxparam models the context-threading contract: exported
// signatures take ctx first, and library code never mints its own
// root context.
package ctxparam

import "context"

// Process takes ctx in second position: flagged.
func Process(n int, ctx context.Context) error { // want "context.Context must be the first parameter of exported Process"
	_ = n
	return ctx.Err()
}

// Run threads ctx first: fine.
func Run(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// helper is unexported: position is the package's own business.
func helper(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

func mint() context.Context {
	return context.Background() // want "library code must not mint context.Background"
}

func todo() context.Context {
	return context.TODO() // want "library code must not mint context.TODO"
}

// fallback uses the documented nil-guard idiom: exempt.
func fallback(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

//lint:allow wlvet/ctxparam fixture models a process-lifetime root
var root = context.Background()

func useAll(ctx context.Context) {
	_ = helper(0, ctx)
	_ = mint()
	_ = todo()
	_ = fallback(ctx)
	_ = root
}
