package lockblock

import "blockdep"

// The blocksFact on blockdep.Recv crosses the package boundary.
func (s *S) crossRecv() {
	s.mu.Lock()
	defer s.mu.Unlock()
	blockdep.Recv(s.ch) // want "call to Recv"
}

func (s *S) crossQuick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	blockdep.Quick(1)
}
