// Package lockblock exercises the blocking-under-lock contract: chan
// ops, selects, WaitGroup.Wait, sleeps, named blockers, transitive
// taint, and the non-blocking shapes that must stay silent.
package lockblock

import (
	"context"
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) sendUnder() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while S.mu is held"
	s.mu.Unlock()
}

func (s *S) recvUnder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want "channel receive while S.mu is held"
}

func (s *S) selectUnder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while S.mu is held"
	case v := <-s.ch:
		_ = v
	case s.ch <- 2:
	}
}

// A select with a default never commits to blocking.
func (s *S) selectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *S) sleepUnder() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while S.mu is held"
	s.mu.Unlock()
}

func (s *S) waitUnder(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while S.mu is held"
}

// The same operations after Unlock are fine.
func (s *S) afterUnlock(wg *sync.WaitGroup) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
	wg.Wait()
}

// Blocking taints callers transitively…
func (s *S) drainOne() {
	<-s.ch
}

func (s *S) viaHelper() {
	s.mu.Lock()
	s.drainOne() // want "call to drainOne"
	s.mu.Unlock()
}

// …but time.Sleep does not: the pmem device models hardware latency
// with sleeps, and device I/O under a catalog lock is priced, not
// forbidden.
func (s *S) sleeper() {
	time.Sleep(time.Millisecond)
}

func (s *S) viaSleeper() {
	s.mu.Lock()
	s.sleeper()
	s.mu.Unlock()
}

// Named blockers by contract: cursor Next and broker Acquire*.
type cursor interface {
	Next(ctx context.Context) ([]byte, error)
}

func (s *S) nextUnder(ctx context.Context, c cursor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Next(ctx) // want "cursor Next while S.mu is held"
}

type fakeBroker struct{}

func (*fakeBroker) Acquire(n int64) {}

func (s *S) acquireUnder(b *fakeBroker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Acquire(1) // want "broker Acquire while S.mu is held"
}

// A reasoned allow silences the site.
func (s *S) allowedSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow wlvet/lockblock fixture: the channel is buffered and private to this S, capacity proven by construction
	s.ch <- 1
}
