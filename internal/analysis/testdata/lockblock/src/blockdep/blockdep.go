// Package blockdep is the imported half of the lockblock cross-package
// fixtures: Recv's channel receive travels to importers as a
// blocksFact.
package blockdep

// Recv blocks on the channel.
func Recv(ch chan int) int {
	return <-ch
}

// Quick is non-blocking; callers under locks stay clean.
func Quick(n int) int {
	return n + 1
}
