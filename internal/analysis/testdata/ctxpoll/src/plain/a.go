// Package plain sits outside the kernel scope (no internal/algo|sorts|
// joins|aggregate|exec in its path): ctxpoll must not fire here even on
// a probe-less unbounded loop.
package plain

type iter struct{}

func (iter) Next() ([]byte, error) { return nil, nil }

func drain(it iter) error {
	for {
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}
