// Package sorts is a ctxpoll fixture: the import path places it inside
// the kernel scope, so unbounded iterator loops must carry a probe.
package sorts

import "context"

type iter struct{}

func (iter) Next() ([]byte, error)      { return nil, nil }
func (iter) NextChunk() ([]byte, error) { return nil, nil }

type env struct{ ctx context.Context }

func (e env) Poll() func() error { return func() error { return nil } }

// consumeNoPoll drains the iterator with no cancellation probe.
func consumeNoPoll(it iter) error {
	for { // want "unbounded iterator loop has no cancellation probe"
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}

// chunkNoPoll consumes via NextChunk; same contract.
func chunkNoPoll(it iter) error {
	for { // want "unbounded iterator loop has no cancellation probe"
		if _, err := it.NextChunk(); err != nil {
			return err
		}
	}
}

// consumePollChecker probes through the Env.Poll checker.
func consumePollChecker(it iter, e env) error {
	poll := e.Poll()
	for {
		if err := poll(); err != nil {
			return err
		}
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}

// consumeCtxErr probes through ctx.Err directly.
func consumeCtxErr(ctx context.Context, it iter) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}

// consumeCtxArg delegates the probe to a callee that threads the
// context.
func consumeCtxArg(ctx context.Context, it iter) error {
	for {
		if err := step(ctx, it); err != nil {
			return err
		}
	}
}

func step(ctx context.Context, it iter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := it.Next()
	return err
}

// consumeDone probes by selecting on ctx.Done.
func consumeDone(ctx context.Context, it iter) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}

// consumeCallback calls an injected func-typed value: by engine
// convention the caller poll-wraps callbacks (pollEmit, pollRecords),
// so the callback owns the probe.
func consumeCallback(it iter, emit func([]byte) error) error {
	for {
		rec, err := it.Next()
		if err != nil {
			return err
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

// boundedLoop has a condition: coarse-grained polling by construction.
func boundedLoop(it iter) error {
	for i := 0; i < 64; i++ {
		if _, err := it.Next(); err != nil {
			return err
		}
	}
	return nil
}

// allowedLoop documents a legitimate exception.
func allowedLoop(it iter) error {
	//lint:allow wlvet/ctxpoll fixture models a bounded in-memory drain
	for {
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}
