// Package badallow is a fixture for the mandatory-reason rule: an
// allow comment without a reason is itself diagnosed and suppresses
// nothing. Checked through raw diagnostics (a want comment cannot
// annotate another comment line).
package badallow

type iter struct{}

func (iter) Next() ([]byte, error) { return nil, nil }

func badAllow(it iter) error {
	//lint:allow wlvet/ctxpoll
	for {
		if _, err := it.Next(); err != nil {
			return err
		}
	}
}
