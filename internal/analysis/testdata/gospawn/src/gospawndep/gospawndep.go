// Package gospawndep gives the gospawn fixtures an out-of-package
// callee: its body is invisible to the analyzer, so spawns of Run are
// judged by what the call threads in.
package gospawndep

import "context"

// Run pretends to respect ctx.
func Run(ctx context.Context) {
	_ = ctx
}

// Opaque takes nothing an owner could wait on.
func Opaque(n int) {
	_ = n
}
