// Package gospawn exercises the goroutine-lifecycle contract: every
// spawn must be tied to a completion mechanism an owner can wait on.
package gospawn

import (
	"context"
	"sync"

	"gospawndep"
)

func fire() {
	go func() { // want "fire-and-forget goroutine"
		println("orphan")
	}()
}

func wgTied(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func closeTied(done chan struct{}) {
	go func() {
		defer close(done)
		println("work")
	}()
}

func sendTied(res chan int) {
	go func() {
		res <- 42
	}()
}

func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func rangeTied(in chan int) {
	go func() {
		for range in {
		}
	}()
}

// A named spawn is judged by the callee's body.
func spawnLoop() {
	go loop() // want "fire-and-forget goroutine"
}

func loop() {
	for i := 0; i < 10; i++ {
		println(i)
	}
}

func spawnDrain(ch chan int) {
	go drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}

// The mechanism may sit one call deeper in the same package.
func spawnIndirect(ch chan int) {
	go outer(ch)
}

func outer(ch chan int) {
	drain(ch)
}

// Out-of-package callees are trusted when the call threads a context,
// channel, or WaitGroup in…
func spawnDepCtx(ctx context.Context) {
	go gospawndep.Run(ctx)
}

// …and flagged when it threads nothing an owner could wait on.
func spawnDepOpaque() {
	go gospawndep.Opaque(7) // want "fire-and-forget goroutine"
}

// A reasoned allow silences the spawn.
func allowedFire() {
	//lint:allow wlvet/gospawn fixture: process-lifetime janitor, owner documented in the package comment
	go func() {
		println("sanctioned")
	}()
}
