// Command gospawnmain proves package main is exempt: a process's own
// lifetime is its completion mechanism.
package main

func main() {
	go func() {
		println("fine here")
	}()
	select {}
}
