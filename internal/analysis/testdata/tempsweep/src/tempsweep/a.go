// Package tempsweep models the Env.CreateTemp discipline: error
// returns with a live temp must clean up (Destroy/SweepTemps-class
// call or a deferred one) unless ownership demonstrably leaves the
// function.
package tempsweep

type coll struct{}

func (*coll) Append([]byte) error { return nil }
func (*coll) Close() error        { return nil }
func (*coll) Destroy() error      { return nil }

type env struct{}

func (*env) CreateTemp(width int) (*coll, error) { return &coll{}, nil }
func (*env) SweepTemps()                         {}

// leaky returns mid-function with the temp still live.
func leaky(e *env, recs [][]byte) error {
	t, err := e.CreateTemp(8)
	if err != nil {
		return err // the immediate guard: t is nil here
	}
	for _, r := range recs {
		if err := t.Append(r); err != nil {
			return err // want "error return leaks the temp created at line \d+"
		}
	}
	return t.Destroy()
}

// sweeps reclaims on the error path before returning.
func sweeps(e *env, recs [][]byte) error {
	t, err := e.CreateTemp(8)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := t.Append(r); err != nil {
			e.SweepTemps()
			return err
		}
	}
	return t.Close()
}

// deferred covers every return with one deferred sweep.
func deferred(e *env, recs [][]byte) error {
	t, err := e.CreateTemp(8)
	if err != nil {
		return err
	}
	defer e.SweepTemps()
	for _, r := range recs {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	return t.Close()
}

type holder struct{ spill *coll }

// adopt hands the temp to captured state: the new owner sweeps.
func (h *holder) adopt(e *env) error {
	t, err := e.CreateTemp(8)
	if err != nil {
		return err
	}
	h.spill = t
	if err := t.Append(nil); err != nil {
		return err
	}
	return nil
}

// spill creates through a local closure: the creation is charged to
// the enclosing function, and the post-verify error path leaks.
func spill(e *env, n int) error {
	var runs []*coll
	openRun := func() error {
		t, err := e.CreateTemp(8)
		if err != nil {
			return err
		}
		runs = append(runs, t)
		return nil
	}
	for i := 0; i < n; i++ {
		if err := openRun(); err != nil {
			return err // the immediate guard on the creating call
		}
	}
	if err := verify(runs); err != nil {
		return err // want "error return leaks the temp created at line \d+"
	}
	for _, t := range runs {
		_ = t.Destroy()
	}
	return nil
}

func verify([]*coll) error { return nil }

// allowed documents a legitimate exception.
func allowed(e *env, recs [][]byte) error {
	t, err := e.CreateTemp(8)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := t.Append(r); err != nil {
			//lint:allow wlvet/tempsweep fixture models a temp owned by a pool that sweeps on close
			return err
		}
	}
	return t.Destroy()
}
