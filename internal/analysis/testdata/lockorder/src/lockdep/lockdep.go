// Package lockdep is the imported half of the lockorder cross-package
// fixtures: Bump's acquisition of Dep.Mu travels to importers as an
// analysis fact.
package lockdep

import "sync"

type Dep struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires Dep.Mu; importers calling it under their own locks
// inherit the edge.
func (d *Dep) Bump() {
	d.Mu.Lock()
	d.n++
	d.Mu.Unlock()
}
