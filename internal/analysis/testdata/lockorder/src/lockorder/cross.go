package lockorder

import (
	"sync"

	"lockdep"
)

// High vs lockdep.Dep: the High.mu → Dep.Mu edge comes from the
// imported locksFact on Bump; Dep.Mu → High.mu is direct. Both close
// the cross-package cycle.
type High struct {
	mu sync.Mutex
	d  lockdep.Dep
}

func (h *High) highThenDep() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.d.Bump() // want "mutex acquisition order cycle"
}

func (h *High) depThenHigh() {
	h.d.Mu.Lock()
	defer h.d.Mu.Unlock()
	h.mu.Lock() // want "mutex acquisition order cycle"
	h.mu.Unlock()
}
