// Package lockorder exercises the acquisition-order graph: inverted
// orders, transitive edges through calls, same-type nesting, and a
// consistent hierarchy that must stay silent.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab establishes A.mu → B.mu; with ba below, both edges close a cycle
// and both sites report.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "mutex acquisition order cycle"
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "mutex acquisition order cycle"
	a.mu.Unlock()
}

// C before D everywhere: a consistent hierarchy, no diagnostics.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

func cdAgain(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// S nests two instances of one type: one key, a self-edge.
type S struct{ mu sync.Mutex }

func pair(x, y *S) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "same-type nesting"
	y.mu.Unlock()
}

// G/H cycle through an intra-package call: lockG's summary taints the
// call site under H.mu.
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

func lockG(g *G) {
	g.mu.Lock()
	g.mu.Unlock()
}

func gThenH(g *G, h *H) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h.mu.Lock() // want "mutex acquisition order cycle"
	h.mu.Unlock()
}

func hThenG(g *G, h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	lockG(g) // want "mutex acquisition order cycle"
}

// E/F cycle carries reasoned allows on both closing edges: silent.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func ef(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:allow wlvet/lockorder fixture: sanctioned inversion, the F instance is private to this call
	f.mu.Lock()
	f.mu.Unlock()
}

func fe(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	//lint:allow wlvet/lockorder fixture: sanctioned inversion, the E instance is private to this call
	e.mu.Lock()
	e.mu.Unlock()
}
