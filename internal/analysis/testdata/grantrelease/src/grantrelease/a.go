// Package grantrelease models the two release protocols: broker
// grants (Acquire* returning a Grant, released with Release) and row
// streams (Rows returning a Close-able cursor).
package grantrelease

type Grant struct{}

func (*Grant) Release() {}

type Broker struct{}

func (*Broker) Acquire(n int) (*Grant, error) { return &Grant{}, nil }

type Stream struct{}

func (*Stream) Close() error { return nil }

type Query struct{}

func (Query) Rows() (*Stream, error) { return &Stream{}, nil }

// leakyGrant releases on success but not on the work-error path.
func leakyGrant(b *Broker, work func() error) error {
	g, err := b.Acquire(1)
	if err != nil {
		return err // the immediate guard: g is nil here
	}
	if err := work(); err != nil {
		return err // want "return leaks the broker grant acquired at line \d+"
	}
	g.Release()
	return nil
}

// discard throws the grant away: a leak on every path.
func discard(b *Broker) {
	_, _ = b.Acquire(1) // want "broker grant from Acquire is discarded"
}

// deferredGrant covers every return with one deferred release.
func deferredGrant(b *Broker, work func() error) error {
	g, err := b.Acquire(1)
	if err != nil {
		return err
	}
	defer g.Release()
	return work()
}

// handOff returns the grant: the caller owns the release.
func handOff(b *Broker) (*Grant, error) {
	g, err := b.Acquire(1)
	if err != nil {
		return nil, err
	}
	return g, nil
}

func park(func()) {}

// armed hands the release method itself to another call (the
// context.AfterFunc shape): ownership moved.
func armed(b *Broker) error {
	g, err := b.Acquire(1)
	if err != nil {
		return err
	}
	park(g.Release)
	return nil
}

type session struct{ g *Grant }

// adopt stores the grant into longer-lived state: the session's
// teardown owns the release.
func (s *session) adopt(b *Broker) error {
	g, err := b.Acquire(1)
	if err != nil {
		return err
	}
	s.g = g
	return nil
}

// leakyRows forgets the cursor on the work-error path.
func leakyRows(q Query, work func() error) error {
	rows, err := q.Rows()
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want "return leaks the row stream acquired at line \d+"
	}
	return rows.Close()
}

// allowedLeak documents a legitimate exception.
func allowedLeak(b *Broker, work func() error) error {
	g, err := b.Acquire(1)
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		//lint:allow wlvet/grantrelease fixture models a grant reclaimed by the caller's teardown
		return err
	}
	g.Release()
	return nil
}
