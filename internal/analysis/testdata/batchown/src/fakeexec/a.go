// Package fakeexec models the exec batch-ownership contract: the
// import path ends in "exec" so Next results typed *Batch are
// tracked, and views of them must not outlive the call.
package fakeexec

type Batch struct {
	Recs [][]byte
	Sel  []int
}

type Operator struct{}

func (*Operator) Next() (*Batch, error) { return nil, nil }

type sink struct {
	b    *Batch
	held [][]byte
}

// retain stores the whole batch into a field.
func (s *sink) retain(op *Operator) error {
	b, err := op.Next()
	if err != nil {
		return err
	}
	s.b = b // want "stores a view of a batch returned by Next into s.b"
	return nil
}

// retainRecs stores a record view reachable through the batch.
func (s *sink) retainRecs(op *Operator) error {
	b, err := op.Next()
	if err != nil {
		return err
	}
	s.held = b.Recs[:1] // want "stores a view of a batch returned by Next into s.held"
	return nil
}

// copies deep-copies through a clone-named helper: alias broken.
func (s *sink) copies(op *Operator) error {
	b, err := op.Next()
	if err != nil {
		return err
	}
	s.held = cloneRecs(b.Recs)
	return nil
}

func cloneRecs(in [][]byte) [][]byte {
	out := make([][]byte, len(in))
	for i, r := range in {
		out[i] = append([]byte(nil), r...)
	}
	return out
}

// consume re-binds a local each pull: the producer loop's normal
// shape, not retention.
func consume(op *Operator) (int, error) {
	n := 0
	var b *Batch
	for {
		nb, err := op.Next()
		if err != nil {
			return n, err
		}
		if nb == nil {
			break
		}
		b = nb
		n += len(b.Recs)
	}
	return n, nil
}

// aliased documents a deliberate streaming alias.
func (s *sink) aliased(op *Operator) error {
	b, err := op.Next()
	if err != nil {
		return err
	}
	//lint:allow wlvet/batchown fixture view is re-pulled before the child's next Next
	s.b = b
	return nil
}
