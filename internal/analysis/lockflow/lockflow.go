// Package lockflow computes must-hold mutex locksets over function
// bodies for the wlvet wave-2 concurrency analyzers. It builds the
// control-flow graph of one function unit (via the vendored
// golang.org/x/tools/go/cfg) and runs a forward dataflow: a mutex
// enters the set at a Lock/RLock call, leaves it at Unlock/RUnlock,
// and survives to every exit when the unlock is deferred. Block entry
// sets are the intersection of the predecessors' exits — the analysis
// reports only locks that are held on *every* path, so downstream
// diagnostics are must-alarms, not may-alarms.
//
// Mutex identity is type-shaped, not instance-shaped: b.mu.Lock() on
// any *broker.Broker contributes the one key
// "wlpm/internal/broker.Broker.mu". That is the right granularity for
// lock-order graphs (a hierarchy is a property of the code, not of the
// heap) and for guarded-field checks, at the price of conflating
// distinct instances of one type — acceptable while the engine never
// nests two locks of the same type.
//
// Function literals are separate units with empty entry locksets, the
// same unit boundary the wave-1 analyzers use: a goroutine or callback
// does not inherit its creator's locks (it runs later), and creators
// that call a literal inline under a lock are rare enough to accept
// the missed edge.
package lockflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// Lock is one mutex in a lockset.
type Lock struct {
	Key      string    // stable identity, e.g. "wlpm/internal/broker.Broker.mu"
	Name     string    // display form, e.g. "Broker.mu"
	Pos      token.Pos // acquisition site within the analyzed unit
	Read     bool      // acquired via RLock
	Deferred bool      // its release is deferred: held to every exit
}

// OpKind classifies a mutex method call.
type OpKind int

const (
	OpLock OpKind = iota
	OpUnlock
	OpRLock
	OpRUnlock
)

// Op is a recognized mutex acquisition or release.
type Op struct {
	Kind OpKind
	Key  string
	Name string
}

// Site is one program point of interest with the locks held on entry
// to it. Sites are emitted for calls, channel sends and receives, go
// statements, and struct field accesses; positions inside defer
// statements and nested function literals are not emitted (defers run
// at return, literals are units of their own).
type Site struct {
	Node ast.Node
	Held []Lock
}

// Flow is the lockset analysis of one function unit.
type Flow struct {
	Sites []Site
	spans []heldSpan
}

type heldSpan struct {
	lo, hi token.Pos
	held   []Lock
}

// HeldAt returns the must-hold lockset at the innermost analyzed node
// containing pos, or nil when pos lies outside the analyzed nodes
// (e.g. inside a nested literal).
func (f *Flow) HeldAt(pos token.Pos) []Lock {
	var best *heldSpan
	for i := range f.spans {
		s := &f.spans[i]
		if pos < s.lo || pos >= s.hi {
			continue
		}
		if best == nil || (s.lo >= best.lo && s.hi <= best.hi) {
			best = s
		}
	}
	if best == nil {
		return nil
	}
	return best.held
}

// Analyze runs the lockset dataflow over one function body.
func Analyze(pass *analysis.Pass, body *ast.BlockStmt) *Flow {
	g := cfg.New(body, func(*ast.CallExpr) bool { return true })
	if len(g.Blocks) == 0 {
		return &Flow{}
	}
	f := &Flow{}

	// Fixpoint: entry starts empty, every other block starts "unknown"
	// (top); block entry = intersection over predecessor exits.
	in := make([][]Lock, len(g.Blocks))
	defined := make([]bool, len(g.Blocks))
	defined[g.Blocks[0].Index] = true
	work := []*cfg.Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := f.scan(pass, b, in[b.Index], nil)
		for _, s := range b.Succs {
			if !defined[s.Index] {
				defined[s.Index] = true
				in[s.Index] = cloneSet(out)
				work = append(work, s)
			} else if merged, changed := intersect(in[s.Index], out); changed {
				in[s.Index] = merged
				work = append(work, s)
			}
		}
	}

	// Emission pass over the stabilized entry sets.
	for _, b := range g.Blocks {
		if !defined[b.Index] {
			continue // unreachable
		}
		f.scan(pass, b, in[b.Index], func(s Site) { f.Sites = append(f.Sites, s) })
	}
	return f
}

// scan walks one block's nodes in order, applying mutex effects to a
// copy of entry and emitting sites (when emit is non-nil). It returns
// the block's exit set.
func (f *Flow) scan(pass *analysis.Pass, b *cfg.Block, entry []Lock, emit func(Site)) []Lock {
	set := cloneSet(entry)
	for _, n := range b.Nodes {
		if emit != nil {
			f.spans = append(f.spans, heldSpan{n.Pos(), n.End(), cloneSet(set)})
		}
		set = f.scanNode(pass, n, set, emit)
	}
	return set
}

func (f *Flow) scanNode(pass *analysis.Pass, n ast.Node, set []Lock, emit func(Site)) []Lock {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to every exit; any
			// other deferred work runs at return and is not a site.
			set = applyDeferred(pass, m.Call, set)
			return false
		case *ast.CallExpr:
			if emit != nil {
				emit(Site{Node: m, Held: cloneSet(set)})
			}
			if op, ok := MutexOp(pass, m); ok {
				set = applyOp(op, m.Pos(), set)
			}
		case *ast.SendStmt, *ast.GoStmt:
			if emit != nil {
				emit(Site{Node: m, Held: cloneSet(set)})
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && emit != nil {
				emit(Site{Node: m, Held: cloneSet(set)})
			}
		case *ast.SelectorExpr:
			if emit != nil {
				if sel := pass.TypesInfo.Selections[m]; sel != nil && sel.Kind() == types.FieldVal {
					emit(Site{Node: m, Held: cloneSet(set)})
				}
			}
		}
		return true
	})
	return set
}

// applyDeferred marks locks whose release is the deferred call — either
// `defer mu.Unlock()` or `defer func() { ...; mu.Unlock() }()`.
func applyDeferred(pass *analysis.Pass, call *ast.CallExpr, set []Lock) []Lock {
	mark := func(op Op) {
		if op.Kind != OpUnlock && op.Kind != OpRUnlock {
			return
		}
		for i := range set {
			if set[i].Key == op.Key {
				set = cloneSet(set)
				set[i].Deferred = true
				return
			}
		}
	}
	if op, ok := MutexOp(pass, call); ok {
		mark(op)
		return set
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if op, ok := MutexOp(pass, c); ok {
					mark(op)
				}
			}
			return true
		})
	}
	return set
}

func applyOp(op Op, pos token.Pos, set []Lock) []Lock {
	switch op.Kind {
	case OpLock, OpRLock:
		for _, l := range set {
			if l.Key == op.Key {
				return set // re-entrant misuse; keep one entry
			}
		}
		out := cloneSet(set)
		return append(out, Lock{Key: op.Key, Name: op.Name, Pos: pos, Read: op.Kind == OpRLock})
	case OpUnlock, OpRUnlock:
		out := set[:0:0]
		for _, l := range set {
			if l.Key != op.Key || l.Deferred {
				out = append(out, l)
			}
		}
		return out
	}
	return set
}

func cloneSet(set []Lock) []Lock {
	if len(set) == 0 {
		return nil
	}
	out := make([]Lock, len(set))
	copy(out, set)
	return out
}

// intersect keeps a's locks that also appear in b (by key), preserving
// a's order and OR-ing the Deferred flags. The second result reports
// whether the merge shrank or changed a.
func intersect(a, b []Lock) ([]Lock, bool) {
	out := make([]Lock, 0, len(a))
	changed := false
	for _, l := range a {
		found := false
		for _, m := range b {
			if m.Key == l.Key {
				if m.Deferred && !l.Deferred {
					l.Deferred = true
					changed = true
				}
				found = true
				break
			}
		}
		if found {
			out = append(out, l)
		} else {
			changed = true
		}
	}
	return out, changed
}

// MutexOp recognizes a call as a sync.Mutex/sync.RWMutex Lock, Unlock,
// RLock or RUnlock and resolves the mutex's identity key.
func MutexOp(pass *analysis.Pass, call *ast.CallExpr) (Op, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	var kind OpKind
	switch fun.Sel.Name {
	case "Lock":
		kind = OpLock
	case "Unlock":
		kind = OpUnlock
	case "RLock":
		kind = OpRLock
	case "RUnlock":
		kind = OpRUnlock
	default:
		return Op{}, false
	}
	fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Op{}, false
	}

	// Embedded mutex: x.Lock() where x's type embeds sync.Mutex. The
	// selection's index path names the embedded field.
	if sel := pass.TypesInfo.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
		recv := derefType(sel.Recv())
		if !isSyncMutex(recv) {
			key, name, ok := embeddedMutexKey(recv, sel.Index())
			if !ok {
				return Op{}, false
			}
			return Op{Kind: kind, Key: key, Name: name}, true
		}
	}
	key, name, ok := KeyOf(pass, fun.X)
	if !ok {
		return Op{}, false
	}
	return Op{Kind: kind, Key: key, Name: name}, true
}

// KeyOf resolves a mutex-valued expression to its identity key: the
// owning struct type plus field name for field mutexes, the package
// path plus variable name for package-level mutexes, and a
// position-qualified name for locals (which never cross packages).
func KeyOf(pass *analysis.Pass, expr ast.Expr) (key, name string, ok bool) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return KeyOf(pass, e.X)
	case *ast.UnaryExpr:
		return KeyOf(pass, e.X)
	case *ast.StarExpr:
		return KeyOf(pass, e.X)
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			if named, ok := derefType(sel.Recv()).(*types.Named); ok {
				return FieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), field.Name()),
					named.Obj().Name() + "." + field.Name(), true
			}
			if field.Pkg() != nil {
				return FieldKey(field.Pkg().Path(), "<anon>", field.Name()), field.Name(), true
			}
			return "", "", false
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return keyOfVar(v)
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return keyOfVar(v)
		}
	}
	return "", "", false
}

func keyOfVar(v *types.Var) (key, name string, ok bool) {
	if v.Pkg() == nil {
		return "", "", false
	}
	if v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), v.Name(), true
	}
	// Local mutex: position-qualified, never exported across packages.
	return fmt.Sprintf("%s.%s@%d", v.Pkg().Path(), v.Name(), v.Pos()), v.Name(), true
}

// FieldKey is the canonical identity of a struct-field mutex; the
// syncfield analyzer derives guard keys through it so the format lives
// in one place.
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// embeddedMutexKey resolves x.Lock() through the selection index path
// to the embedded sync.Mutex field.
func embeddedMutexKey(recv types.Type, index []int) (key, name string, ok bool) {
	named, ok := derefType(recv).(*types.Named)
	if !ok {
		return "", "", false
	}
	t := derefType(recv)
	var fieldName string
	for _, idx := range index[:len(index)-1] {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return "", "", false
		}
		f := st.Field(idx)
		fieldName = f.Name()
		t = derefType(f.Type())
	}
	if fieldName == "" {
		return "", "", false
	}
	return FieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), fieldName),
		named.Obj().Name() + "." + fieldName, true
}

// StructMutex returns the mutex fields of a struct type (declared or
// embedded sync.Mutex/sync.RWMutex), in declaration order.
func StructMutex(st *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if isSyncMutex(derefType(st.Field(i).Type())) {
			out = append(out, st.Field(i))
		}
	}
	return out
}

// IsMutexType reports whether t (after deref) is sync.Mutex or
// sync.RWMutex.
func IsMutexType(t types.Type) bool { return isSyncMutex(derefType(t)) }

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
