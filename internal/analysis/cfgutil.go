package wlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// funcUnit is one independently analyzed function body: a FuncDecl or
// a FuncLit. Nested literals are units of their own, so each unit's
// walks see only its local control flow — ownership that crosses a
// closure boundary is modeled explicitly by the analyzers (captured
// variables count as escapes, creator closures as creation sites).
type funcUnit struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	sig  *types.Signature
}

// unitsOf returns every function unit in the file, outermost first.
func unitsOf(pass *analysis.Pass, file *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return false
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				units = append(units, funcUnit{fn, fn.Body, obj.Type().(*types.Signature)})
			}
		case *ast.FuncLit:
			if sig, ok := pass.TypesInfo.TypeOf(fn).(*types.Signature); ok {
				units = append(units, funcUnit{fn, fn.Body, sig})
			}
		}
		return true
	})
	return units
}

// walkLocal walks the unit body without descending into nested
// function literals.
func walkLocal(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		return f(n)
	})
}

// declaredWithin reports whether obj's declaration lies inside the
// unit. Objects declared outside (captured variables, fields, package
// state) are escape targets: assigning a tracked resource to one moves
// ownership out of the unit.
func declaredWithin(u funcUnit, obj types.Object) bool {
	return obj != nil && obj.Pos() >= u.node.Pos() && obj.Pos() < u.node.End()
}

// errGuardRange returns the source range of the `if <err> != nil`
// guard that immediately follows (or encloses) the statement binding a
// resource, if any. Returns in that guard are exempt from leak checks:
// the resource is nil on that path by the binding's own contract. The
// suite assumes the engine convention of checking the error before
// using the resource.
func errGuardRange(pass *analysis.Pass, u funcUnit, bind ast.Stmt, errObj types.Object) (token.Pos, token.Pos, bool) {
	if errObj == nil {
		return 0, 0, false
	}
	isGuard := func(s ast.Stmt) (*ast.IfStmt, bool) {
		ifs, ok := s.(*ast.IfStmt)
		if !ok {
			return nil, false
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return nil, false
		}
		for _, side := range []ast.Expr{cond.X, cond.Y} {
			if id, ok := side.(*ast.Ident); ok && objOf(pass, id) == errObj {
				return ifs, true
			}
		}
		return nil, false
	}
	var lo, hi token.Pos
	found := false
	walkLocal(u.body, func(n ast.Node) bool {
		if found {
			return false
		}
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		case *ast.IfStmt:
			// `if x, err := bind(); err != nil { ... }`
			if b.Init == bind {
				if ifs, ok := isGuard(b); ok {
					lo, hi, found = ifs.Body.Pos(), ifs.Body.End(), true
				}
				return false
			}
			return true
		default:
			return true
		}
		for i, s := range list {
			if s == bind && i+1 < len(list) {
				if ifs, ok := isGuard(list[i+1]); ok {
					lo, hi, found = ifs.Body.Pos(), ifs.Body.End(), true
				}
				return false
			}
		}
		return true
	})
	return lo, hi, found
}

// objOf resolves an identifier against the pass's type info.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// leakReturns walks the unit's control-flow graph from the statement
// containing origin and collects the return statements reachable
// without first passing a node for which barrier reports true. When
// errorOnly is set, only error returns are collected (a return whose
// last result is not the nil literal, in a unit whose final result is
// an error); otherwise every reachable return counts. Returns inside
// [exemptLo, exemptHi) are skipped.
func leakReturns(u funcUnit, origin ast.Node, barrier func(ast.Node) bool, errorOnly bool, exemptLo, exemptHi token.Pos) []*ast.ReturnStmt {
	g := cfg.New(u.body, func(*ast.CallExpr) bool { return true })

	var startB *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= origin.Pos() && origin.End() <= n.End() {
				startB, startIdx = b, i
			}
		}
	}
	if startB == nil {
		return nil
	}

	var leaks []*ast.ReturnStmt
	seenRet := make(map[token.Pos]bool)
	record := func(ret *ast.ReturnStmt) {
		if exemptLo.IsValid() && ret.Pos() >= exemptLo && ret.Pos() < exemptHi {
			return
		}
		if errorOnly && !isErrorReturn(u, ret) {
			return
		}
		if !seenRet[ret.Pos()] {
			seenRet[ret.Pos()] = true
			leaks = append(leaks, ret)
		}
	}

	type visit struct {
		b   *cfg.Block
		idx int
	}
	seen := make(map[*cfg.Block]bool)
	queue := []visit{{startB, startIdx + 1}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ended := false
		for i := v.idx; i < len(v.b.Nodes); i++ {
			n := v.b.Nodes[i]
			if barrier(n) {
				ended = true
				break
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				record(ret)
				ended = true
				break
			}
		}
		if ended {
			continue
		}
		for _, s := range v.b.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, visit{s, 0})
			}
		}
	}
	return leaks
}

// isErrorReturn reports whether ret is an error-carrying return: the
// unit's last result is an error and the returned value for it is not
// the nil literal. Naked returns (named results) are treated as
// success returns — the suite cannot see the named value.
func isErrorReturn(u funcUnit, ret *ast.ReturnStmt) bool {
	res := u.sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func isErrorType(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	return ok && it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}

// containsCall reports whether the node's subtree (excluding nested
// function literals' bodies when skipLits is set) has a call matching
// the predicate.
func containsCall(n ast.Node, skipLits bool, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if skipLits && m != n {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
		}
		if call, ok := m.(*ast.CallExpr); ok && pred(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
