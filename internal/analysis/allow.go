package wlvet

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// allowRe matches the suppression comment the suite honors:
//
//	//lint:allow wlvet/<analyzer> <reason>
//
// The reason is mandatory — suppressions must say why the contract
// does not apply at the site.
var allowRe = regexp.MustCompile(`^//lint:allow\s+wlvet/([A-Za-z0-9_]+)(?:\s+(.*))?$`)

// suppressor indexes a package's //lint:allow comments for one
// analyzer. A comment suppresses diagnostics on its own line and on
// the line below it (so it can sit above the offending statement); an
// allow in a function's doc comment covers the whole declaration.
// Generated files are skipped entirely — the suite does not police
// them, so it neither honors nor complains about their comments.
type suppressor struct {
	name  string                    // analyzer short name, e.g. "ctxpoll"
	lines map[string]map[int]string // filename → line → reason
	spans []allowSpan
}

type allowSpan struct {
	pos, end token.Pos
	reason   string
}

func newSuppressor(pass *analysis.Pass, name string) *suppressor {
	s := &suppressor{name: name, lines: make(map[string]map[int]string)}
	for _, f := range pass.Files {
		if ast.IsGenerated(f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || m[1] != name {
					continue
				}
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					pass.Reportf(c.Pos(), "lint:allow wlvet/%s needs a reason: //lint:allow wlvet/%s <why this site is exempt>", name, name)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				fl := s.lines[p.Filename]
				if fl == nil {
					fl = make(map[int]string)
					s.lines[p.Filename] = fl
				}
				fl[p.Line] = reason
				fl[p.Line+1] = reason
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil && m[1] == name && strings.TrimSpace(m[2]) != "" {
					s.spans = append(s.spans, allowSpan{fd.Pos(), fd.End(), strings.TrimSpace(m[2])})
				}
			}
		}
	}
	return s
}

// allowReason returns the reason of the allow comment covering pos, if
// any.
func (s *suppressor) allowReason(pass *analysis.Pass, pos token.Pos) (string, bool) {
	p := pass.Fset.Position(pos)
	if r, ok := s.lines[p.Filename][p.Line]; ok {
		return r, true
	}
	for _, sp := range s.spans {
		if pos >= sp.pos && pos < sp.end {
			return sp.reason, true
		}
	}
	return "", false
}

// reportf reports unless the position carries an allow comment, in
// which case the suppression is logged for `wlvet -json` audit output.
func (s *suppressor) reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if reason, ok := s.allowReason(pass, pos); ok {
		logSuppression(pass, pos, s.name, reason)
		return
	}
	pass.Reportf(pos, format, args...)
}

// AllowEntry is one suppressed finding: where, which analyzer, and the
// reason the site's //lint:allow comment gave. `wlvet -json` emits
// these alongside live diagnostics so suppressions stay auditable.
type AllowEntry struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

var allowLog struct {
	sync.Mutex
	entries []AllowEntry
}

func logSuppression(pass *analysis.Pass, pos token.Pos, analyzer, reason string) {
	allowLog.Lock()
	defer allowLog.Unlock()
	allowLog.entries = append(allowLog.entries, AllowEntry{
		Pos:      pass.Fset.Position(pos),
		Analyzer: analyzer,
		Reason:   reason,
	})
}

// TakeAllowLog drains the accumulated suppression log. The standalone
// driver calls it once after all packages are analyzed; under
// `go vet -vettool` the log is simply never drained.
func TakeAllowLog() []AllowEntry {
	allowLog.Lock()
	defer allowLog.Unlock()
	out := allowLog.entries
	allowLog.entries = nil
	return out
}
