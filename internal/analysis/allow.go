package wlvet

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// allowRe matches the suppression comment the suite honors:
//
//	//lint:allow wlvet/<analyzer> <reason>
//
// The reason is mandatory — suppressions must say why the contract
// does not apply at the site.
var allowRe = regexp.MustCompile(`^//lint:allow\s+wlvet/([A-Za-z0-9_]+)(?:\s+(.*))?$`)

// suppressor indexes a package's //lint:allow comments for one
// analyzer. A comment suppresses diagnostics on its own line and on
// the line below it (so it can sit above the offending statement); an
// allow in a function's doc comment covers the whole declaration.
type suppressor struct {
	name  string // analyzer short name, e.g. "ctxpoll"
	lines map[string]map[int]bool
	spans []allowSpan
}

type allowSpan struct{ pos, end token.Pos }

func newSuppressor(pass *analysis.Pass, name string) *suppressor {
	s := &suppressor{name: name, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || m[1] != name {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					pass.Reportf(c.Pos(), "lint:allow wlvet/%s needs a reason: //lint:allow wlvet/%s <why this site is exempt>", name, name)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				fl := s.lines[p.Filename]
				if fl == nil {
					fl = make(map[int]bool)
					s.lines[p.Filename] = fl
				}
				fl[p.Line] = true
				fl[p.Line+1] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil && m[1] == name && strings.TrimSpace(m[2]) != "" {
					s.spans = append(s.spans, allowSpan{fd.Pos(), fd.End()})
				}
			}
		}
	}
	return s
}

func (s *suppressor) allowed(pass *analysis.Pass, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	if s.lines[p.Filename][p.Line] {
		return true
	}
	for _, sp := range s.spans {
		if pos >= sp.pos && pos < sp.end {
			return true
		}
	}
	return false
}

// reportf reports unless the position carries an allow comment.
func (s *suppressor) reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if s.allowed(pass, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
