package wlvet

import (
	"strings"
	"testing"

	"wlpm/internal/analysis/analyzertest"
)

func TestCtxPollGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/ctxpoll", CtxPoll, "internal/sorts", "plain")
}

// TestCtxPollAllowNeedsReason: a reason-less allow comment is itself
// diagnosed and suppresses nothing. Checked through raw diagnostics —
// a want comment cannot annotate another comment's line.
func TestCtxPollAllowNeedsReason(t *testing.T) {
	msgs := analyzertest.Diagnostics(t, "testdata/ctxpoll", CtxPoll, "internal/sorts/badallow")
	if len(msgs) != 2 {
		t.Fatalf("got %d diagnostics %q, want 2 (the reason-less allow and the unsuppressed loop)", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "needs a reason") {
		t.Errorf("first diagnostic = %q, want the needs-a-reason complaint", msgs[0])
	}
	if !strings.Contains(msgs[1], "no cancellation probe") {
		t.Errorf("second diagnostic = %q, want the loop diagnostic (allow must not suppress)", msgs[1])
	}
}

func TestTempSweepGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/tempsweep", TempSweep, "tempsweep")
}

func TestGrantReleaseGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/grantrelease", GrantRelease, "grantrelease")
}

func TestBatchOwnGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/batchown", BatchOwn, "fakeexec")
}

func TestCtxParamGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/ctxparam", CtxParam, "ctxparam", "mainpkg")
}

func TestLockOrderGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/lockorder", LockOrder, "lockorder")
}

func TestLockBlockGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/lockblock", LockBlock, "lockblock")
}

func TestGoSpawnGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/gospawn", GoSpawn, "gospawn", "gospawnmain")
}

func TestSyncFieldGolden(t *testing.T) {
	analyzertest.Run(t, "testdata/syncfield", SyncField, "syncfield")
}

// TestGeneratedFilesSkipped: generated files are invisible to both the
// analyzers and the allow auditor — the probe-less loop and the
// reason-less allow in the generated fixture draw no diagnostics.
func TestGeneratedFilesSkipped(t *testing.T) {
	msgs := analyzertest.Diagnostics(t, "testdata/ctxpoll", CtxPoll, "internal/sorts/generated")
	if len(msgs) != 0 {
		t.Fatalf("got %d diagnostics %q from a generated file, want 0", len(msgs), msgs)
	}
}
