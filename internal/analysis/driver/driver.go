// Package driver runs go/analysis analyzers over module packages
// without golang.org/x/tools/go/packages (not vendored): it shells out
// to `go list -deps -export -json` for the import graph and compiled
// export data, typechecks every module package from source in
// import-DAG order, and runs the analyzers with their Requires graph.
//
// Unlike the wave-1 driver, analysis facts propagate across the import
// graph: after a package is analyzed, its exported facts are gob- and
// objectpath-serialized exactly as the unitchecker protocol would ship
// them between `go vet` actions, then decoded back against the live
// type information for dependent packages to import. Packages whose
// module dependencies are all analyzed run concurrently on a worker
// pool; output order stays deterministic because diagnostics are
// collected per package and emitted in import-path order at the end.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"golang.org/x/tools/go/analysis"
)

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Diagnostic is one finding, resolved to a printable position and
// tagged with the analyzer that produced it (for -json output and the
// CI problem matcher).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Result is one driver run: the findings of the matched packages plus
// the run's shape for the wall-clock report.
type Result struct {
	Diags    []Diagnostic
	Packages int           // packages analyzed (matched + module deps)
	Reported int           // packages whose diagnostics were reported
	Elapsed  time.Duration // wall clock of the analysis phase
	Workers  int
}

// Run loads the packages matching patterns, analyzes every module
// package in the import closure (dependencies first, so facts flow),
// and returns the diagnostics of the matched ones in import-path and
// position order.
func Run(analyzers []*analysis.Analyzer, patterns []string) (*Result, error) {
	modPath, err := goModulePath()
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	inModule := func(p *listPackage) bool {
		return !p.Standard && (p.ImportPath == modPath || strings.HasPrefix(p.ImportPath, modPath+"/"))
	}
	// Every module package in the closure is analyzed so its facts
	// exist; only non-DepOnly (pattern-matched) packages report.
	var units []*unit
	byPath := make(map[string]*unit)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if inModule(p) && len(p.GoFiles) > 0 {
			u := &unit{pkg: p, report: !p.DepOnly}
			units = append(units, u)
			byPath[p.ImportPath] = u
		}
	}
	for _, u := range units {
		for _, imp := range u.pkg.Imports {
			if dep, ok := byPath[imp]; ok {
				u.deps = append(u.deps, dep)
				dep.dependents = append(dep.dependents, u)
			}
		}
	}

	fset := token.NewFileSet()
	var impMu sync.Mutex
	checked := make(map[string]*types.Package)
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	// Module packages resolve to their source-checked form so facts and
	// type identities line up; everything else comes from export data.
	// The gc importer and its shared caches are not otherwise
	// synchronized, so one mutex serializes all import requests.
	imp := importerFunc(func(path string) (*types.Package, error) {
		impMu.Lock()
		defer impMu.Unlock()
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return gc.Import(path)
	})

	store := NewFactStore(analyzers)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	// Import-DAG scheduling: a unit becomes ready when its last module
	// dependency finishes. Workers pull from the ready queue; the first
	// error wins and drains the run.
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		ready  []*unit
		done   int
		runErr error
	)
	for _, u := range units {
		u.waiting = len(u.deps)
		if u.waiting == 0 {
			ready = append(ready, u)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(units) && runErr == nil {
					cond.Wait()
				}
				if runErr != nil || done == len(units) {
					mu.Unlock()
					return
				}
				u := ready[0]
				ready = ready[1:]
				mu.Unlock()

				diags, pkg, err := analyzePackage(fset, imp, u.pkg, analyzers, store, u.report)

				mu.Lock()
				if err != nil && runErr == nil {
					runErr = err
				}
				if err == nil {
					u.diags = diags
					impMu.Lock()
					checked[u.pkg.ImportPath] = pkg
					impMu.Unlock()
					for _, d := range u.dependents {
						d.waiting--
						if d.waiting == 0 {
							ready = append(ready, d)
						}
					}
				}
				done++
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{
		Packages: len(units),
		Elapsed:  time.Since(start),
		Workers:  workers,
	}
	sort.Slice(units, func(i, j int) bool { return units[i].pkg.ImportPath < units[j].pkg.ImportPath })
	for _, u := range units {
		if !u.report {
			continue
		}
		res.Reported++
		res.Diags = append(res.Diags, u.diags...)
	}
	return res, nil
}

// unit is one module package in the run's dependency graph.
type unit struct {
	pkg        *listPackage
	report     bool
	deps       []*unit
	dependents []*unit
	waiting    int
	diags      []Diagnostic
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func goModulePath() (string, error) {
	out, err := exec.Command("go", "list", "-m").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Imports,Export,DepOnly,Standard", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	return pkgs, nil
}

func analyzePackage(fset *token.FileSet, imp types.Importer, p *listPackage, analyzers []*analysis.Analyzer, store *FactStore, report bool) ([]Diagnostic, *types.Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	diags, err := RunOnPackage(fset, files, pkg, info, analyzers, store)
	if err != nil {
		return nil, nil, err
	}
	if !report {
		diags = nil
	}
	return diags, pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunOnPackage applies the analyzers (and, transitively, their
// Requires) to one typechecked package, returning the diagnostics in
// position order. It is shared by the standalone driver and the
// analyzertest golden harness. store may be nil for fact-free suites;
// with a store, facts exported here become importable by packages
// analyzed later (after a serialization round-trip — see FactStore).
func RunOnPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	results := make(map[*analysis.Analyzer]any)
	running := make(map[*analysis.Analyzer]bool)

	var pf *pkgFacts
	if store != nil {
		pf = store.open(pkg)
	}

	var run func(a *analysis.Analyzer, report bool) error
	run = func(a *analysis.Analyzer, report bool) error {
		if _, done := results[a]; done {
			return nil
		}
		if running[a] {
			return fmt.Errorf("analyzer dependency cycle at %s", a.Name)
		}
		running[a] = true
		defer delete(running, a)
		resultOf := make(map[*analysis.Analyzer]any)
		for _, dep := range a.Requires {
			if err := run(dep, false); err != nil {
				return err
			}
			resultOf[dep] = results[dep]
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if report {
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(d.Pos),
						Analyzer: name,
						Message:  d.Message,
					})
				}
			},
			ReadFile: os.ReadFile,
		}
		if pf != nil {
			pass.ImportObjectFact = pf.importObjectFact
			pass.ImportPackageFact = pf.importPackageFact
			pass.ExportObjectFact = pf.exportObjectFact
			pass.ExportPackageFact = pf.exportPackageFact
			pass.AllObjectFacts = pf.allObjectFacts
			pass.AllPackageFacts = pf.allPackageFacts
		} else {
			if len(a.FactTypes) > 0 {
				return fmt.Errorf("analyzer %s uses facts but RunOnPackage was given no fact store", a.Name)
			}
			pass.ImportObjectFact = func(types.Object, analysis.Fact) bool { return false }
			pass.ImportPackageFact = func(*types.Package, analysis.Fact) bool { return false }
			pass.ExportObjectFact = func(types.Object, analysis.Fact) {}
			pass.ExportPackageFact = func(analysis.Fact) {}
			pass.AllObjectFacts = func() []analysis.ObjectFact { return nil }
			pass.AllPackageFacts = func() []analysis.PackageFact { return nil }
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path(), err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := run(a, true); err != nil {
			return diags, err
		}
	}
	if pf != nil {
		if err := pf.seal(); err != nil {
			return diags, fmt.Errorf("encode facts for %s: %v", pkg.Path(), err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Column < diags[j].Pos.Column
	})
	return diags, nil
}
