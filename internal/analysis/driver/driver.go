// Package driver runs go/analysis analyzers over module packages
// without golang.org/x/tools/go/packages (not vendored): it shells out
// to `go list -deps -export -json` for the import graph and compiled
// export data, typechecks the matched packages from source, and runs
// the analyzers with their Requires graph. Facts are not supported —
// the wlvet suite is intra-package by design.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Run loads the packages matching patterns, applies the analyzers to
// each non-dependency match, and prints diagnostics to w. It returns
// the number of diagnostics, or an error for load/typecheck failures.
func Run(w io.Writer, analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}

	exports := make(map[string]string)
	var roots []*listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	total := 0
	for _, p := range roots {
		diags, err := analyzePackage(fset, imp, p, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s\n", fset.Position(d.Pos), d.Message)
			total++
		}
	}
	return total, nil
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	return pkgs, nil
}

func analyzePackage(fset *token.FileSet, imp types.Importer, p *listPackage, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return RunOnPackage(fset, files, pkg, info, analyzers)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunOnPackage applies the analyzers (and, transitively, their
// Requires) to one typechecked package, returning the diagnostics in
// position order. It is shared by the standalone driver and the
// analyzertest golden harness.
func RunOnPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	running := make(map[*analysis.Analyzer]bool)

	var run func(a *analysis.Analyzer, report bool) error
	run = func(a *analysis.Analyzer, report bool) error {
		if _, done := results[a]; done {
			return nil
		}
		if running[a] {
			return fmt.Errorf("analyzer dependency cycle at %s", a.Name)
		}
		running[a] = true
		defer delete(running, a)
		resultOf := make(map[*analysis.Analyzer]any)
		for _, dep := range a.Requires {
			if err := run(dep, false); err != nil {
				return err
			}
			resultOf[dep] = results[dep]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if report {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		if len(a.FactTypes) > 0 {
			return fmt.Errorf("analyzer %s uses facts; the wlvet driver does not support them", a.Name)
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path(), err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := run(a, true); err != nil {
			return diags, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
