package driver

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sync"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/objectpath"
)

// FactStore carries analysis facts between per-package analyses. It
// reproduces the unitchecker contract in one process: facts a package
// exports are gob-encoded with objectpath-addressed owners when the
// package's analysis completes (seal), and only what survives that
// round-trip is visible to importing packages — a fact on an object
// unreachable from the package's declarations is dropped here exactly
// as it would be between separate `go vet` processes. Decoding
// resolves paths against the live source-checked packages, so object
// identities line up without a separate import step.
//
// Keys follow go/analysis semantics: one fact per (owner, concrete
// fact type); analyzers are separated by each declaring its own types.
type FactStore struct {
	mu       sync.RWMutex
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
	blobs    map[string][]byte // pkgPath → sealed gob blob, for inspection/tests
	packages map[string]*types.Package
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

// gobFact is the wire form of one fact.
type gobFact struct {
	PkgPath string // owning package
	Object  string // objectpath within it; "" for a package fact
	Fact    analysis.Fact
}

// NewFactStore registers the analyzers' fact types with gob (as
// unitchecker does at startup) and returns an empty store.
func NewFactStore(analyzers []*analysis.Analyzer) *FactStore {
	seen := make(map[reflect.Type]bool)
	var register func(a *analysis.Analyzer)
	register = func(a *analysis.Analyzer) {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if !seen[t] {
				seen[t] = true
				gob.Register(f)
			}
		}
		for _, dep := range a.Requires {
			register(dep)
		}
	}
	for _, a := range analyzers {
		register(a)
	}
	return &FactStore{
		objFacts: make(map[objFactKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
		blobs:    make(map[string][]byte),
		packages: make(map[string]*types.Package),
	}
}

// Blob returns the sealed fact blob of a package (empty until its
// analysis completes). Tests use it to assert that propagation really
// crosses a serialization boundary.
func (s *FactStore) Blob(pkgPath string) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blobs[pkgPath]
}

// open begins fact accumulation for one package's analyses.
func (s *FactStore) open(pkg *types.Package) *pkgFacts {
	s.mu.Lock()
	s.packages[pkg.Path()] = pkg
	s.mu.Unlock()
	return &pkgFacts{
		store:    s,
		pkg:      pkg,
		objFresh: make(map[objFactKey]analysis.Fact),
		pkgFresh: make(map[reflect.Type]analysis.Fact),
	}
}

// pkgFacts is the fact view of one package under analysis: fresh facts
// exported by its own passes layered over the store's sealed facts.
// Analyzers within one package run sequentially, so fresh maps need no
// locking; the store is shared across worker goroutines and does.
type pkgFacts struct {
	store    *FactStore
	pkg      *types.Package
	objFresh map[objFactKey]analysis.Fact
	pkgFresh map[reflect.Type]analysis.Fact
}

func (p *pkgFacts) importObjectFact(obj types.Object, ptr analysis.Fact) bool {
	if obj == nil {
		panic("nil object")
	}
	k := objFactKey{obj, reflect.TypeOf(ptr)}
	if f, ok := p.objFresh[k]; ok {
		copyFact(ptr, f)
		return true
	}
	p.store.mu.RLock()
	f, ok := p.store.objFacts[k]
	p.store.mu.RUnlock()
	if ok {
		copyFact(ptr, f)
	}
	return ok
}

func (p *pkgFacts) importPackageFact(pkg *types.Package, ptr analysis.Fact) bool {
	if pkg == p.pkg {
		if f, ok := p.pkgFresh[reflect.TypeOf(ptr)]; ok {
			copyFact(ptr, f)
			return true
		}
		return false
	}
	p.store.mu.RLock()
	f, ok := p.store.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(ptr)}]
	p.store.mu.RUnlock()
	if ok {
		copyFact(ptr, f)
	}
	return ok
}

func (p *pkgFacts) exportObjectFact(obj types.Object, fact analysis.Fact) {
	if obj.Pkg() != p.pkg {
		panic(fmt.Sprintf("exporting fact for object %v of foreign package %v", obj, obj.Pkg()))
	}
	p.objFresh[objFactKey{obj, reflect.TypeOf(fact)}] = fact
}

func (p *pkgFacts) exportPackageFact(fact analysis.Fact) {
	p.pkgFresh[reflect.TypeOf(fact)] = fact
}

func (p *pkgFacts) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, f := range p.objFresh {
		out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
	}
	return out
}

func (p *pkgFacts) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for _, f := range p.pkgFresh {
		out = append(out, analysis.PackageFact{Package: p.pkg, Fact: f})
	}
	p.store.mu.RLock()
	for k, f := range p.store.pkgFacts {
		out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
	}
	p.store.mu.RUnlock()
	return out
}

// seal serializes the package's fresh facts and publishes the decoded
// result to the store. Object facts whose owners have no objectpath
// (local or unexported package-level objects) are dropped, matching
// what export data would carry between compiler actions.
func (p *pkgFacts) seal() error {
	enc := new(objectpath.Encoder)
	var wire []gobFact
	for k, f := range p.objFresh {
		path, err := enc.For(k.obj)
		if err != nil {
			continue // not addressable across packages
		}
		wire = append(wire, gobFact{PkgPath: p.pkg.Path(), Object: string(path), Fact: f})
	}
	for _, f := range p.pkgFresh {
		wire = append(wire, gobFact{PkgPath: p.pkg.Path(), Fact: f})
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return err
	}
	var decoded []gobFact
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		return err
	}

	s := p.store
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[p.pkg.Path()] = buf.Bytes()
	for _, gf := range decoded {
		owner := s.packages[gf.PkgPath]
		if owner == nil {
			continue
		}
		if gf.Object == "" {
			s.pkgFacts[pkgFactKey{owner, reflect.TypeOf(gf.Fact)}] = gf.Fact
			continue
		}
		obj, err := objectpath.Object(owner, objectpath.Path(gf.Object))
		if err != nil {
			continue
		}
		s.objFacts[objFactKey{obj, reflect.TypeOf(gf.Fact)}] = gf.Fact
	}
	return nil
}

func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}
