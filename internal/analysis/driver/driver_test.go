package driver

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// markFact tags exported functions whose names start with "Mark".
type markFact struct{ Tag string }

func (*markFact) AFact() {}

// TestFactPropagation drives RunOnPackage over two hand-typechecked
// packages through one FactStore and asserts that an object fact
// exported while analyzing the dependency survives the gob+objectpath
// round-trip and is visible when the dependent imports it.
func TestFactPropagation(t *testing.T) {
	tagger := &analysis.Analyzer{
		Name:      "tagger",
		Doc:       "exports markFact on Mark* functions, reports callers of tagged functions",
		FactTypes: []analysis.Fact{new(markFact)},
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if fn == nil {
						continue
					}
					if strings.HasPrefix(fn.Name(), "Mark") {
						pass.ExportObjectFact(fn, &markFact{Tag: "marked:" + fn.Name()})
					}
					ast.Inspect(fd, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						sel, ok := call.Fun.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						callee, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
						if callee == nil || callee.Pkg() == pass.Pkg {
							return true
						}
						var mf markFact
						if pass.ImportObjectFact(callee, &mf) {
							pass.Reportf(call.Pos(), "calls tagged %s (%s)", callee.Name(), mf.Tag)
						}
						return true
					})
				}
			}
			return nil, nil
		},
	}

	fset := token.NewFileSet()
	check := func(path, src string, imp types.Importer) (*types.Package, []*ast.File, *types.Info) {
		t.Helper()
		f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatal(err)
		}
		return pkg, []*ast.File{f}, info
	}

	depPkg, depFiles, depInfo := check("factdep", `package factdep
func MarkDone() {}
func Plain()    {}
`, nil)

	store := NewFactStore([]*analysis.Analyzer{tagger})
	depDiags, err := RunOnPackage(fset, depFiles, depPkg, depInfo, []*analysis.Analyzer{tagger}, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(depDiags) != 0 {
		t.Fatalf("dependency diagnostics = %v, want none", depDiags)
	}
	if len(store.Blob("factdep")) == 0 {
		t.Fatal("sealed fact blob for factdep is empty; facts would not survive a unitchecker run")
	}

	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "factdep" {
			return depPkg, nil
		}
		return importer.Default().Import(path)
	})
	rootPkg, rootFiles, rootInfo := check("factroot", `package factroot
import "factdep"
func use() {
	factdep.MarkDone()
	factdep.Plain()
}
`, imp)

	rootDiags, err := RunOnPackage(fset, rootFiles, rootPkg, rootInfo, []*analysis.Analyzer{tagger}, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(rootDiags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the MarkDone call", len(rootDiags), rootDiags)
	}
	if want := "calls tagged MarkDone (marked:MarkDone)"; rootDiags[0].Message != want {
		t.Errorf("diagnostic = %q, want %q", rootDiags[0].Message, want)
	}
}

// TestFactStoreRoundTrip: only facts that survive encoding are
// published — mirroring unitchecker, where facts travel as files.
func TestFactStoreRoundTrip(t *testing.T) {
	store := NewFactStore([]*analysis.Analyzer{{
		Name:      "t",
		FactTypes: []analysis.Fact{new(markFact)},
	}})
	pkg := types.NewPackage("roundtrip", "roundtrip")
	fn := types.NewFunc(token.NoPos, pkg, "Exported", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	pkg.Scope().Insert(fn)
	pkg.MarkComplete()

	pf := store.open(pkg)
	pf.exportObjectFact(fn, &markFact{Tag: "survives"})
	if err := pf.seal(); err != nil {
		t.Fatal(err)
	}

	var got markFact
	reader := store.open(types.NewPackage("other", "other"))
	if !reader.importObjectFact(fn, &got) {
		t.Fatal("fact on exported func did not survive seal/import")
	}
	if got.Tag != "survives" {
		t.Errorf("Tag = %q, want %q", got.Tag, "survives")
	}
	if reflect.TypeOf(&got) != reflect.TypeOf(new(markFact)) {
		t.Error("fact type mangled in round-trip")
	}
}
