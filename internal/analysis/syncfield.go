package wlvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"wlpm/internal/analysis/lockflow"
)

// SyncField flags a struct field that is guarded by the struct's own
// mutex at some access sites but read or written bare at others — the
// half-synchronized state go test -race only catches when a schedule
// happens to interleave the two sites. A field is in scope once the
// struct declares (or embeds) a sync.Mutex/RWMutex and at least one
// access runs under it; every further access must then hold the mutex
// too, except:
//
//   - accesses through a base constructed in the same function body
//     (the not-yet-published object of a constructor);
//   - accesses inside a method whose name ends in "Locked" — the
//     engine's convention that the caller already holds the lock. The
//     convention cuts both ways: SyncField also flags calls to
//     *Locked methods made without the mutex held;
//   - fields that escape by address (&x.f) or live in sync/atomic
//     types — aliased or atomic state is outside the mutex discipline
//     this analyzer can see.
//
// Read-only fields (set at construction, never written after) are not
// flagged even when reads are mixed: without a write there is no race.
var SyncField = &analysis.Analyzer{
	Name: "syncfield",
	Doc:  "struct fields guarded by the struct's mutex somewhere must be guarded everywhere; *Locked methods require the lock at the call site (PR 4/7 contract)",
	Run:  runSyncField,
}

type fieldAccess struct {
	pos     token.Pos
	guarded bool
	write   bool
}

type fieldState struct {
	field     *types.Var
	owner     string // display name of the struct
	mutexKeys map[string]bool
	mutexName string
	accesses  []fieldAccess
	aliased   bool
}

func runSyncField(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "syncfield")

	// Structs of this package that carry a mutex, their guarded-field
	// candidates, and their *Locked methods.
	states := make(map[*types.Var]*fieldState)
	lockedMethods := make(map[*types.Func]*fieldState) // method → receiver's mutex expectation
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mutexes := lockflow.StructMutex(st)
		if len(mutexes) == 0 {
			continue
		}
		keys := make(map[string]bool, len(mutexes))
		for _, mu := range mutexes {
			keys[lockflow.FieldKey(pass.Pkg.Path(), tn.Name(), mu.Name())] = true
		}
		proto := fieldState{
			owner:     tn.Name(),
			mutexKeys: keys,
			mutexName: tn.Name() + "." + mutexes[0].Name(),
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if lockflow.IsMutexType(f.Type()) || isAtomicType(f.Type()) {
				continue
			}
			fs := proto
			fs.field = f
			states[f] = &fs
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if strings.HasSuffix(m.Name(), "Locked") {
				fs := proto
				lockedMethods[m] = &fs
			}
		}
	}
	if len(states) == 0 && len(lockedMethods) == 0 {
		return nil, nil
	}

	type lockedCall struct {
		pos  token.Pos
		want *fieldState
		fn   *types.Func
	}
	var badCalls []lockedCall

	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		units := unitsOf(pass, file)
		flows := make([]*lockflow.Flow, len(units))
		for i, u := range units {
			flows[i] = lockflow.Analyze(pass, u.body)
		}
		// A literal passed directly as a call argument runs within the
		// caller's dynamic extent (sort.Search comparators, map Range
		// visitors), so its accesses inherit the parent's held locks at
		// the literal's position. Stored or go'ed literals do not — they
		// run later, lockless.
		callArgLit := make(map[ast.Node]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						callArgLit[lit] = true
					}
				}
			}
			return true
		})
		inheritedHolds := func(unit funcUnit, keys map[string]bool) bool {
			node := unit.node
			for {
				lit, ok := node.(*ast.FuncLit)
				if !ok || !callArgLit[lit] {
					return false
				}
				var parent *funcUnit
				var parentFlow *lockflow.Flow
				for i := range units {
					p := &units[i]
					if p.node == node || p.body.Pos() > lit.Pos() || lit.Pos() >= p.body.End() {
						continue
					}
					if parent == nil || p.body.Pos() >= parent.body.Pos() {
						parent, parentFlow = p, flows[i]
					}
				}
				if parent == nil {
					return false
				}
				for _, l := range parentFlow.HeldAt(lit.Pos()) {
					if keys[l.Key] {
						return true
					}
				}
				node = parent.node
			}
		}

		for ui, u := range units {
			flow := flows[ui]

			// Inside Type.xLocked the caller holds Type's mutex by the
			// naming contract — accesses there count as guarded.
			inLockedMethod := func(keys map[string]bool) bool {
				fd, ok := u.node.(*ast.FuncDecl)
				if !ok || !strings.HasSuffix(fd.Name.Name, "Locked") {
					return false
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				want, ok := lockedMethods[fn]
				if !ok {
					return false
				}
				for k := range want.mutexKeys {
					if keys[k] {
						return true
					}
				}
				return false
			}

			holds := func(pos token.Pos, keys map[string]bool) bool {
				for _, l := range flow.HeldAt(pos) {
					if keys[l.Key] {
						return true
					}
				}
				return inLockedMethod(keys) || inheritedHolds(u, keys)
			}

			// Writes and aliasing are properties of the surrounding
			// statement, collected before classifying the sites.
			writes := make(map[*ast.SelectorExpr]bool)
			aliased := make(map[*ast.SelectorExpr]bool)
			walkLocal(u.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := unwrapSelector(lhs); ok {
							writes[sel] = true
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := unwrapSelector(n.X); ok {
						writes[sel] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if sel, ok := unwrapSelector(n.X); ok {
							aliased[sel] = true
						}
					}
				}
				return true
			})

			walkLocal(u.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					sel := pass.TypesInfo.Selections[n]
					if sel == nil || sel.Kind() != types.FieldVal {
						return true
					}
					fv, ok := sel.Obj().(*types.Var)
					if !ok {
						return true
					}
					fs, tracked := states[fv]
					if !tracked {
						return true
					}
					if aliased[n] {
						fs.aliased = true
						return true
					}
					if baseInBody(pass, u, n) {
						return true // constructor pattern: unpublished object
					}
					fs.accesses = append(fs.accesses, fieldAccess{
						pos:     n.Sel.Pos(),
						guarded: holds(n.Pos(), fs.mutexKeys),
						write:   writes[n],
					})
				case *ast.CallExpr:
					fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
					if !ok {
						return true
					}
					want, ok := lockedMethods[fn]
					if !ok {
						return true
					}
					if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel && baseInBody(pass, u, sel) {
						return true
					}
					if !holds(n.Pos(), want.mutexKeys) {
						badCalls = append(badCalls, lockedCall{n.Pos(), want, fn})
					}
				}
				return true
			})
		}
	}

	// A field is reported only when the mix is real: at least one
	// guarded access, at least one bare one, and a write somewhere.
	fields := make([]*types.Var, 0, len(states))
	for f := range states {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		fs := states[f]
		if fs.aliased {
			continue
		}
		var nGuarded, nWrite int
		for _, a := range fs.accesses {
			if a.guarded {
				nGuarded++
			}
			if a.write {
				nWrite++
			}
		}
		if nGuarded == 0 || nWrite == 0 {
			continue
		}
		for _, a := range fs.accesses {
			if a.guarded {
				continue
			}
			sup.reportf(pass, a.pos, "%s.%s is guarded by %s at %d other site(s) but accessed here without it (wlvet/syncfield)",
				fs.owner, f.Name(), fs.mutexName, nGuarded)
		}
	}
	for _, c := range badCalls {
		sup.reportf(pass, c.pos, "call to %s.%s without holding %s: the Locked suffix is the engine's caller-holds-the-lock contract (wlvet/syncfield)",
			c.want.owner, c.fn.Name(), c.want.mutexName)
	}
	return nil, nil
}

// unwrapSelector strips parens and stars off an lvalue and returns the
// field selector underneath, if any.
func unwrapSelector(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

// baseInBody reports whether the selector chain bottoms out in an
// identifier declared inside the unit's body — a locally constructed,
// not-yet-published object whose fields need no lock yet. Receivers
// and parameters are declared in the signature, before the body, and
// do not qualify.
func baseInBody(pass *analysis.Pass, u funcUnit, sel *ast.SelectorExpr) bool {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := objOf(pass, x)
			return obj != nil && obj.Pos() >= u.body.Pos() && obj.Pos() < u.body.End()
		default:
			return false
		}
	}
}

func isAtomicType(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}
