package wlvet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxPoll enforces the PR 4 cancellation contract: in the kernel
// packages, an unbounded record loop (a `for {}` that consumes an
// iterator via Next/NextChunk) must carry a cancellation probe — the
// Env.Poll checker, a ctx.Err/Canceled check, a select on ctx.Done,
// or a call that threads a context. Bounded loops (any loop with a
// condition) poll at a coarser grain by construction and are exempt.
var CtxPoll = &analysis.Analyzer{
	Name:     "ctxpoll",
	Doc:      "unbounded iterator loops in kernel packages must carry a cancellation probe (PR 4 contract)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxPoll,
}

// ctxPollScope names the packages whose loops walk unbounded device
// input: the sort/join kernels, their shared runtime, the aggregates,
// and the Volcano layer.
var ctxPollScope = regexp.MustCompile(`(^|/)internal/(algo|sorts|joins|aggregate|exec)(/|$)`)

func runCtxPoll(pass *analysis.Pass) (any, error) {
	if !ctxPollScope.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "ctxpoll")
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node) {
		loop := n.(*ast.ForStmt)
		if loop.Cond != nil || exemptPos(pass, loop.Pos()) {
			return
		}
		consumes, probes := false, false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if isCancellationProbe(pass, m) {
					probes = true
					return true
				}
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Next" || sel.Sel.Name == "NextChunk" {
						consumes = true
					}
				}
			case *ast.UnaryExpr:
				// <-ctx.Done() (bare or in a select) is a probe.
				if call, ok := m.X.(*ast.CallExpr); ok && calleeName(call) == "Done" {
					probes = true
				}
			}
			return true
		})
		if consumes && !probes {
			sup.reportf(pass, loop.Pos(), "unbounded iterator loop has no cancellation probe: poll the Env.Poll checker, check ctx.Err, or thread a context (wlvet/ctxpoll)")
		}
	})
	return nil, nil
}

// isCancellationProbe reports whether the call checks for
// cancellation: any poll-named callee, an Err/Canceled/Poll method, a
// callee that receives a context argument (the callee then owns
// polling), or a call through a func-typed value — the engine
// convention is that injected callbacks are poll-wrapped by the caller
// (pollEmit, pollRecords), so the callback owns the probe.
func isCancellationProbe(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if strings.Contains(strings.ToLower(name), "poll") {
		return true
	}
	switch name {
	case "Err", "Canceled", "Done":
		return true
	}
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if v, ok := objOf(pass, id).(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return t.String() == "context.Context"
}
