package wlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// GrantRelease enforces the PR 4/7 resource-release contracts: a
// broker grant (Acquire/AcquireBest/AcquireBestFunc) must be Released
// on every path out of the acquiring function, and a streaming cursor
// (a Rows-method result with a Close method) must be Closed — directly,
// via defer, or by handing the resource off (returning it, storing it
// into longer-lived state, or passing it — or its release method — to
// another call, e.g. context.AfterFunc(ctx, g.Release)). Discarding
// either result with `_` is always a leak. The `if err != nil` guard
// immediately after the acquisition is exempt: the resource is nil
// there.
var GrantRelease = &analysis.Analyzer{
	Name: "grantrelease",
	Doc:  "broker grants and row streams must be released/closed or handed off on every path (PR 4/7 contracts)",
	Run:  runGrantRelease,
}

// releaseProtocol describes one resource discipline.
type releaseProtocol struct {
	kind        string          // diagnostic noun
	methods     map[string]bool // acquiring method names
	release     string          // releasing method name
	resultNamed string          // named type (possibly behind a pointer) of result 0, "" = any with release method
}

var grantProtocols = []releaseProtocol{
	{
		kind:        "broker grant",
		methods:     map[string]bool{"Acquire": true, "AcquireBest": true, "AcquireBestFunc": true},
		release:     "Release",
		resultNamed: "Grant",
	},
	{
		kind:    "row stream",
		methods: map[string]bool{"Rows": true},
		release: "Close",
	},
}

func runGrantRelease(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "grantrelease")
	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		for _, u := range unitsOf(pass, file) {
			grantReleaseUnit(pass, sup, u)
		}
	}
	return nil, nil
}

// acquisitionOf matches a call against the protocols, requiring the
// first result's type to fit (named Grant for the broker protocol; any
// type whose method set has Close for Rows).
func acquisitionOf(pass *analysis.Pass, call *ast.CallExpr) *releaseProtocol {
	name := calleeName(call)
	for i := range grantProtocols {
		p := &grantProtocols[i]
		if !p.methods[name] {
			continue
		}
		t := pass.TypesInfo.TypeOf(call)
		if t == nil {
			continue
		}
		if tup, ok := t.(*types.Tuple); ok {
			if tup.Len() == 0 {
				continue
			}
			t = tup.At(0).Type()
		}
		if p.resultNamed != "" {
			if named, ok := derefNamed(t); !ok || named.Obj().Name() != p.resultNamed {
				continue
			}
		} else if !hasMethod(t, p.release) {
			continue
		}
		return p
	}
	return nil
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

func grantReleaseUnit(pass *analysis.Pass, sup *suppressor, u funcUnit) {
	type site struct {
		proto  *releaseProtocol
		obj    types.Object // tracked variable, nil when discarded
		call   *ast.CallExpr
		bind   ast.Stmt
		errObj types.Object
	}
	var sites []site

	walkLocal(u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		proto := acquisitionOf(pass, call)
		if proto == nil {
			return true
		}
		var errObj types.Object
		if len(as.Lhs) == 2 {
			if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				errObj = objOf(pass, id)
			}
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			sup.reportf(pass, as.Pos(), "%s from %s is discarded: it must be %sd on every path, including unexpected success (wlvet/grantrelease)",
				proto.kind, calleeName(call), lower(proto.release))
			return true
		}
		sites = append(sites, site{proto, objOf(pass, id), call, as, errObj})
		return true
	})

	for _, s := range sites {
		if s.obj == nil {
			continue
		}
		releasesOrEscapes := func(n ast.Node) bool {
			return nodeReleasesOrHandsOff(pass, u, n, s.obj, s.proto.release)
		}
		// A deferred release anywhere covers every return.
		deferred := false
		walkLocal(u.body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if releasesOrEscapes(d) {
					deferred = true
				}
			}
			return !deferred
		})
		if deferred {
			continue
		}
		lo, hi := token.NoPos, token.NoPos
		if l, h, ok := errGuardRange(pass, u, s.bind, s.errObj); ok {
			lo, hi = l, h
		}
		for _, ret := range leakReturns(u, s.call, releasesOrEscapes, false, lo, hi) {
			sup.reportf(pass, ret.Pos(), "return leaks the %s acquired at line %d: %s it, defer that, or hand it off before returning (wlvet/grantrelease)",
				s.proto.kind, pass.Fset.Position(s.call.Pos()).Line, s.proto.release)
		}
	}
}

// nodeReleasesOrHandsOff reports whether the node's subtree releases
// the tracked resource or moves its ownership elsewhere: calls
// obj.<Release>(), returns obj, passes obj (or its release method
// value) to a call, or stores obj into a field, captured variable,
// composite literal, channel, or map/slice cell of such.
func nodeReleasesOrHandsOff(pass *analysis.Pass, u funcUnit, n ast.Node, obj types.Object, release string) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && objOf(pass, id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == release {
				if id, ok := sel.X.(*ast.Ident); ok && objOf(pass, id) == obj {
					found = true
					return false
				}
			}
			for _, arg := range m.Args {
				if usesObj(arg) {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if usesObj(r) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i < len(m.Rhs) && usesObj(m.Rhs[i]) && escapesTarget(pass, u, lhs) {
					found = true
					return false
				}
			}
			if len(m.Rhs) == 1 && usesObj(m.Rhs[0]) {
				for _, lhs := range m.Lhs {
					if escapesTarget(pass, u, lhs) {
						found = true
						return false
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if usesObj(el) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesObj(m.Value) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func lower(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}
