// Package analyzertest is a self-contained golden-file harness for the
// wlvet analyzers (golang.org/x/tools/go/analysis/analysistest is not
// vendored). Test packages live under a GOPATH-style testdata tree:
//
//	testdata/src/<import/path>/*.go
//
// Every line that should produce a diagnostic carries a trailing
// comment of the form
//
//	// want "regexp"
//
// (repeatable on one line for multiple diagnostics). Run typechecks the
// requested packages — resolving imports first against the testdata
// tree, then against the standard library from source — applies the
// analyzer through the same scheduler as cmd/wlvet, and reports any
// mismatch between produced diagnostics and want annotations.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"wlpm/internal/analysis/driver"
)

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// loader typechecks testdata packages, memoizing so packages can import
// siblings from the same tree.
type loader struct {
	fset     *token.FileSet
	srcdir   string
	std      types.Importer
	loaded   map[string]*loadedPackage
	visiting map[string]bool
}

type loadedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		srcdir:   filepath.Join(testdata, "src"),
		std:      importer.ForCompiler(fset, "source", nil),
		loaded:   make(map[string]*loadedPackage),
		visiting: make(map[string]bool),
	}
}

// Import implements types.Importer over the testdata tree with a
// standard-library fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcdir, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPackage, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.visiting[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.visiting[path] = true
	defer delete(l.visiting, path)

	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &loadedPackage{pkg: pkg, files: files, info: info}
	l.loaded[path] = p
	return p, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantsOf collects the // want annotations of the package's files.
func wantsOf(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), m[1], err)
					}
					p := fset.Position(c.Pos())
					wants = append(wants, &want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants
}

// analyzeWithDeps runs the analyzer over path after analyzing every
// testdata dependency (report-off, depth-first), so analysis facts
// flow across fixture package boundaries exactly as they do in the
// real driver. done memoizes which paths already contributed facts to
// the shared store.
func analyzeWithDeps(t *testing.T, l *loader, store *driver.FactStore, a *analysis.Analyzer, path string, done map[string]bool) []driver.Diagnostic {
	t.Helper()
	p, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	var visit func(path string, p *loadedPackage, report bool) []driver.Diagnostic
	visit = func(path string, p *loadedPackage, report bool) []driver.Diagnostic {
		for _, imp := range p.pkg.Imports() {
			if dep, ok := l.loaded[imp.Path()]; ok && !done[imp.Path()] {
				visit(imp.Path(), dep, false)
			}
		}
		if done[path] && !report {
			return nil
		}
		done[path] = true
		diags, err := driver.RunOnPackage(l.fset, p.files, p.pkg, p.info, []*analysis.Analyzer{a}, store)
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}
	return visit(path, p, true)
}

// Diagnostics loads one testdata package and returns the analyzer's
// raw diagnostic messages in position order — for cases a want comment
// cannot express, like diagnostics reported at comment positions.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, path string) []string {
	t.Helper()
	l := newLoader(testdata)
	diags := analyzeWithDeps(t, l, driver.NewFactStore([]*analysis.Analyzer{a}), a, path, make(map[string]bool))
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

// Run applies the analyzer to each testdata package and compares
// diagnostics against the packages' want annotations. Packages share
// one loader and one fact store, so a fixture package may import a
// sibling and observe its exported facts.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(testdata)
	store := driver.NewFactStore([]*analysis.Analyzer{a})
	done := make(map[string]bool)
	for _, path := range paths {
		path := path
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			diags := analyzeWithDeps(t, l, store, a, path, done)
			p := l.loaded[path]
			wants := wantsOf(t, l.fset, p.files)
			sort.SliceStable(wants, func(i, j int) bool {
				if wants[i].file != wants[j].file {
					return wants[i].file < wants[j].file
				}
				return wants[i].line < wants[j].line
			})
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}
