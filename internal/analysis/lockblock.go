package wlvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"wlpm/internal/analysis/lockflow"
)

// LockBlock flags blocking operations on paths between Lock and
// Unlock: channel sends and receives, select without a default,
// WaitGroup.Wait, broker Acquire*, cursor Next, and time.Sleep. A
// goroutine that blocks while holding a mutex stalls every contender
// of that mutex behind an event the mutex does not order — under the
// serving layer's fan-in (PR 7) that is a convoy, and if the event is
// itself gated on the mutex, a deadlock. Blocking propagates through
// static calls as an analysis fact, so a helper that receives from a
// channel taints its callers across package boundaries. time.Sleep is
// flagged only when it appears directly under a lock: the pmem device
// sleeps to model hardware latency, and that simulation detail must
// not taint every storage path that does device I/O.
var LockBlock = &analysis.Analyzer{
	Name:      "lockblock",
	Doc:       "no blocking operations (chan ops, bare select, WaitGroup.Wait, Acquire*, cursor Next, time.Sleep) while holding a mutex (PR 4/7 contract)",
	Run:       runLockBlock,
	FactTypes: []analysis.Fact{new(blocksFact)},
}

// blocksFact marks a function that may block on an event not ordered
// by the caller's locks. Why names the root operation.
type blocksFact struct {
	Why string
}

func (*blocksFact) AFact()           {}
func (f *blocksFact) String() string { return "blocks(" + f.Why + ")" }

func runLockBlock(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "lockblock")

	// Select statements are lowered away by go/cfg: their comm-clause
	// channel ops surface as ordinary block nodes. Pre-scan the syntax
	// so those ops are attributed to their select — a select with a
	// default never commits to blocking, one without is reported once,
	// at the select.
	type selectInfo struct {
		sel        *ast.SelectStmt
		hasDefault bool
		comms      []ast.Stmt
	}
	var selects []selectInfo
	goCalls := make(map[*ast.CallExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				info := selectInfo{sel: n}
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					if cc.Comm == nil {
						info.hasDefault = true
					} else {
						info.comms = append(info.comms, cc.Comm)
					}
				}
				selects = append(selects, info)
			case *ast.GoStmt:
				goCalls[n.Call] = true
			}
			return true
		})
	}
	commOf := func(pos token.Pos) (selectInfo, bool) {
		for _, info := range selects {
			for _, comm := range info.comms {
				if pos >= comm.Pos() && pos < comm.End() {
					return info, true
				}
			}
		}
		return selectInfo{}, false
	}

	// Pass 1 per function: does the body itself block? Channel ops in
	// select headers defer to the select's verdict; defers and nested
	// literals run outside the function's own locked spans.
	type fnInfo struct {
		fn  *types.Func
		why string
	}
	directWhy := make(map[*types.Func]string)
	callsOf := make(map[*types.Func][]*types.Func)
	var order []fnInfo

	directBlock := func(n ast.Node) (string, bool) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if info, ok := commOf(n.Pos()); ok {
				if info.hasDefault {
					return "", false
				}
				return "select without default", true
			}
			return "channel send", true
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return "", false
			}
			if info, ok := commOf(n.Pos()); ok {
				if info.hasDefault {
					return "", false
				}
				return "select without default", true
			}
			return "channel receive", true
		case *ast.CallExpr:
			if goCalls[n] {
				return "", false
			}
			why, ok := namedBlocker(pass, n)
			if why == "time.Sleep" {
				// Direct sites still report in pass 2; the simulation
				// sleep in pmem must not taint callers transitively.
				return "", false
			}
			return why, ok
		}
		return "", false
	}

	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		for _, u := range unitsOf(pass, file) {
			fd, ok := u.node.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			order = append(order, fnInfo{fn: fn})
			walkLocal(u.body, func(n ast.Node) bool {
				if _, ok := n.(*ast.DeferStmt); ok {
					return false
				}
				if _, set := directWhy[fn]; !set {
					if why, ok := directBlock(n); ok {
						directWhy[fn] = why
					}
				}
				if call, ok := n.(*ast.CallExpr); ok && !goCalls[call] {
					if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
						callsOf[fn] = append(callsOf[fn], callee)
					}
				}
				return true
			})
		}
	}

	// Fixpoint: a function that calls a blocker blocks. Cross-package
	// callees contribute via imported facts at the call-site check, but
	// must also taint local wrappers here.
	blocksWhy := func(callee *types.Func) (string, bool) {
		if why, ok := directWhy[callee]; ok {
			return why, true
		}
		var f blocksFact
		if callee.Pkg() != pass.Pkg && pass.ImportObjectFact(callee, &f) {
			return f.Why, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range callsOf {
			if _, ok := directWhy[fn]; ok {
				continue
			}
			for _, callee := range callees {
				if why, ok := blocksWhy(callee); ok {
					directWhy[fn] = fmt.Sprintf("calls %s: %s", callee.Name(), why)
					changed = true
					break
				}
			}
		}
	}
	for _, fi := range order {
		if why, ok := directWhy[fi.fn]; ok {
			pass.ExportObjectFact(fi.fn, &blocksFact{Why: why})
		}
	}

	// Pass 2: walk every unit's lock-held sites and report blocking
	// ones. Selects report once each.
	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		selDone := make(map[*ast.SelectStmt]bool)
		for _, u := range unitsOf(pass, file) {
			flow := lockflow.Analyze(pass, u.body)
			report := func(pos token.Pos, held []lockflow.Lock, what string) {
				sup.reportf(pass, pos, "%s while %s is held: blocking under a lock stalls every contender (wlvet/lockblock)", what, heldNames(held))
			}
			chanOp := func(pos token.Pos, held []lockflow.Lock, what string) {
				if info, ok := commOf(pos); ok {
					if info.hasDefault || selDone[info.sel] {
						return
					}
					// go/cfg lowers the select away, so the comm op's
					// lockset stands in for the select's: no mutex op can
					// sit between the keyword and its cases.
					selDone[info.sel] = true
					report(info.sel.Pos(), held, "select without default")
					return
				}
				report(pos, held, what)
			}
			for _, site := range flow.Sites {
				if len(site.Held) == 0 {
					continue
				}
				switch n := site.Node.(type) {
				case *ast.SendStmt:
					chanOp(n.Pos(), site.Held, "channel send")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						chanOp(n.Pos(), site.Held, "channel receive")
					}
				case *ast.CallExpr:
					if goCalls[n] {
						continue
					}
					if _, isMu := lockflow.MutexOp(pass, n); isMu {
						continue // nesting is lockorder's domain
					}
					if why, ok := namedBlocker(pass, n); ok {
						report(n.Pos(), site.Held, why)
						continue
					}
					callee := typeutil.StaticCallee(pass.TypesInfo, n)
					if callee == nil {
						continue
					}
					if why, ok := blocksWhy(callee); ok {
						report(n.Pos(), site.Held, fmt.Sprintf("call to %s (%s)", callee.Name(), why))
					}
				}
			}
		}
	}
	return nil, nil
}

// namedBlocker recognizes calls that block by contract, independent of
// whether their bodies are visible: sync.WaitGroup.Wait, time.Sleep,
// broker Acquire* (they queue on grant channels), and cursor
// Next/NextChunk taking a context (they wait on device I/O and
// admission). Interface calls resolve here too, via typeutil.Callee.
func namedBlocker(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		return "time.Sleep", true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named, ok := derefNamed(recv.Type()); ok && named.Obj().Name() == "WaitGroup" {
				return "WaitGroup.Wait", true
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recvName := ""
	if named, ok := derefNamed(sig.Recv().Type()); ok {
		recvName = named.Obj().Name()
	}
	if strings.HasPrefix(fn.Name(), "Acquire") && strings.Contains(recvName, "Broker") {
		return "broker " + fn.Name(), true
	}
	if (fn.Name() == "Next" || fn.Name() == "NextChunk") && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
		return "cursor " + fn.Name(), true
	}
	return "", false
}

func heldNames(held []lockflow.Lock) string {
	names := make([]string, len(held))
	for i, l := range held {
		names[i] = l.Name
	}
	return strings.Join(names, ", ")
}
