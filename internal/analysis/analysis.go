// Package wlvet is the engine's static-analysis suite: go/analysis
// analyzers that machine-check the unwritten contracts PRs 4–7
// introduced — cancellation polling in record loops, temp hygiene on
// error paths, broker-grant release discipline, batch ownership, and
// context threading. The cmd/wlvet binary runs them standalone
// (`wlvet ./...`) or as a `go vet -vettool` plugin; CI fails on any
// diagnostic.
//
// Legitimate exceptions are annotated in source with
//
//	//lint:allow wlvet/<analyzer> <reason>
//
// on the offending line, the line above it, or in the enclosing
// function's doc comment. The reason is mandatory; an allow comment
// without one is itself a diagnostic. Test files are exempt — suites
// deliberately violate the invariants to probe the engine. See
// INVARIANTS.md for the contract each analyzer enforces and the PR
// that introduced it.
package wlvet

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// exemptPos reports whether the position lies in a file the suite does
// not police: a _test.go file (suites deliberately discard grants,
// drain iterators probe-free, and mint root contexts to put the engine
// in the states under test) or a generated file per the standard
// `// Code generated ... DO NOT EDIT.` convention (the generator, not
// the generated text, is what a human can fix).
func exemptPos(pass *analysis.Pass, pos token.Pos) bool {
	if strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go") {
		return true
	}
	f := fileOf(pass, pos)
	return f != nil && ast.IsGenerated(f)
}

// fileOf returns the syntax file containing pos, or nil.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// All returns the full wlvet suite in reporting order. Wave 1 (PR 8)
// covers the resource contracts; wave 2 adds the concurrency
// contracts: lock ordering, blocking under locks, goroutine lifecycle,
// and field synchronization.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxPoll,
		TempSweep,
		GrantRelease,
		BatchOwn,
		CtxParam,
		LockOrder,
		LockBlock,
		GoSpawn,
		SyncField,
	}
}
