// Package wlvet is the engine's static-analysis suite: go/analysis
// analyzers that machine-check the unwritten contracts PRs 4–7
// introduced — cancellation polling in record loops, temp hygiene on
// error paths, broker-grant release discipline, batch ownership, and
// context threading. The cmd/wlvet binary runs them standalone
// (`wlvet ./...`) or as a `go vet -vettool` plugin; CI fails on any
// diagnostic.
//
// Legitimate exceptions are annotated in source with
//
//	//lint:allow wlvet/<analyzer> <reason>
//
// on the offending line, the line above it, or in the enclosing
// function's doc comment. The reason is mandatory; an allow comment
// without one is itself a diagnostic. Test files are exempt — suites
// deliberately violate the invariants to probe the engine. See
// INVARIANTS.md for the contract each analyzer enforces and the PR
// that introduced it.
package wlvet

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// inTestFile reports whether the position lies in a _test.go file.
// The invariants bind library code only: suites deliberately discard
// grants, drain iterators probe-free, and mint root contexts to put
// the engine in the states under test.
func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full wlvet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxPoll,
		TempSweep,
		GrantRelease,
		BatchOwn,
		CtxParam,
	}
}
