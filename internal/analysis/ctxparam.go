package wlvet

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxParam enforces the PR 4 context-threading contract: exported
// functions and methods that take a context.Context must take it as
// the first parameter, and library code must not mint its own root
// context with context.Background/context.TODO — callers own
// cancellation. Recognized exceptions, exempt without annotation:
// package main, test files, and the documented nil-context fallback
// idiom (Background inside an `if x == nil` guard). Anything else —
// process-lifetime roots, deprecated shims, bench harnesses — needs a
// lint:allow with the reason.
var CtxParam = &analysis.Analyzer{
	Name:     "ctxparam",
	Doc:      "context.Context goes first in exported signatures; no context.Background/TODO in library code (PR 4 contract)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxParam,
}

func runCtxParam(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "ctxparam")
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !fd.Name.IsExported() || exemptPos(pass, fd.Pos()) {
			return
		}
		pos := 0
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) && pos > 0 {
				sup.reportf(pass, field.Pos(), "context.Context must be the first parameter of exported %s (wlvet/ctxparam)", fd.Name.Name)
			}
			pos += n
		}
	})

	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "context" {
			return true
		}
		fname := pass.Fset.Position(call.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			return true
		}
		for _, anc := range stack {
			if ifs, ok := anc.(*ast.IfStmt); ok && isNilGuard(ifs.Cond) {
				return true // the documented nil-context fallback idiom
			}
		}
		sup.reportf(pass, call.Pos(), "library code must not mint context.%s: thread the caller's context (or lint:allow a process-lifetime root) (wlvet/ctxparam)", sel.Sel.Name)
		return true
	})
	return nil, nil
}

// isNilGuard matches `x == nil` (either side).
func isNilGuard(cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if id, ok := side.(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
	}
	return false
}
