package wlvet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// BatchOwn enforces the PR 6 batch-ownership contract: a *exec.Batch
// returned by Operator.Next (and the record views / selection vectors
// reachable through it) is valid only until the producer's next
// Next/Close call, so it must not be stored into fields, package
// state, or other locations that outlive the call. Explicit deep
// copies are exempt when made through a copy-named helper
// (clone*/copy*/materialize*); deliberate aliasing (e.g. streaming
// operators re-exposing a child's records) must carry a lint:allow
// with the reason the alias cannot outlive the child's next pull.
var BatchOwn = &analysis.Analyzer{
	Name: "batchown",
	Doc:  "batches returned by Next must not be retained beyond the call (PR 6 ownership contract)",
	Run:  runBatchOwn,
}

// copyNameRe matches helpers that deep-copy batch data, breaking the
// alias and with it the retention hazard.
var copyNameRe = regexp.MustCompile(`(?i)^(clone|copy|materialize|dup)`)

func runBatchOwn(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "batchown")
	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		for _, u := range unitsOf(pass, file) {
			batchOwnUnit(pass, sup, u)
		}
	}
	return nil, nil
}

// isBatchNext matches `x.Next(...)` calls whose first result is a
// *Batch from an exec package.
func isBatchNext(pass *analysis.Pass, call *ast.CallExpr) bool {
	if calleeName(call) != "Next" {
		return false
	}
	if _, ok := call.Fun.(*ast.SelectorExpr); !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		t = tup.At(0).Type()
	}
	named, ok := derefNamed(t)
	if !ok || named.Obj().Name() != "Batch" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "exec")
}

func batchOwnUnit(pass *analysis.Pass, sup *suppressor, u funcUnit) {
	// Batch-typed locals bound from Next calls in this unit.
	tracked := make(map[types.Object]bool)
	walkLocal(u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBatchNext(pass, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(pass, id); obj != nil {
				tracked[obj] = true
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// aliasesBatch reports whether the expression exposes a tracked
	// batch's storage: mentions the batch variable outside of a
	// copy-named call.
	var aliasesBatch func(e ast.Expr) bool
	aliasesBatch = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if found {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok && copyNameRe.MatchString(calleeName(call)) {
				return false // deep copy breaks the alias
			}
			if id, ok := m.(*ast.Ident); ok && tracked[objOf(pass, id)] {
				found = true
			}
			return !found
		})
		return found
	}

	walkLocal(u.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			} else {
				continue
			}
			// Re-binding the batch variable itself is the producer loop's
			// normal shape; storing it beyond the unit's locals is not.
			if !escapesTarget(pass, u, lhs) {
				continue
			}
			if id, ok := lhs.(*ast.Ident); ok && tracked[objOf(pass, id)] {
				continue
			}
			if aliasesBatch(rhs) {
				sup.reportf(pass, as.Pos(), "stores a view of a batch returned by Next into %s, which outlives the call: copy the records (clone*/copy* helper) or document the alias with lint:allow (wlvet/batchown)",
					exprString(lhs))
			}
		}
		return true
	})
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "a non-local location"
}
