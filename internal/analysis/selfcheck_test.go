package wlvet

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestWlvetSelfCheck runs the full suite over the module itself: the
// tree must stay diagnostic-free (true violations get fixed,
// legitimate exceptions get a reasoned lint:allow).
func TestWlvetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/wlvet over the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))

	for _, pattern := range []string{"./...", "./examples/..."} {
		cmd := exec.Command("go", "run", "./cmd/wlvet", pattern)
		cmd.Dir = root
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		if err := cmd.Run(); err != nil {
			t.Fatalf("wlvet %s failed: %v\n%s", pattern, err, buf.String())
		}
	}
}
