package wlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// GoSpawn requires every `go` statement in a library package to tie
// the goroutine to a completion mechanism: a WaitGroup Done, a send or
// close on a channel (turnstile, done channel, result channel), a
// ctx-done receive, or a for-range over a channel (the goroutine ends
// when its feed closes). A fire-and-forget goroutine has no owner: the
// engine cannot drain it at Close, the server cannot wait for it at
// shutdown, and the leak tests (PR 4/7) cannot see it finish. Only
// package main is exempt — a process's own lifetime is its completion
// mechanism.
var GoSpawn = &analysis.Analyzer{
	Name: "gospawn",
	Doc:  "goroutines in library packages must be tied to a completion mechanism: WaitGroup, done/result channel, ctx-done, or a closable feed (PR 4/7 contract)",
	Run:  runGoSpawn,
}

func runGoSpawn(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	sup := newSuppressor(pass, "gospawn")

	// Bodies of package-local functions, so `go b.drain()` is judged by
	// drain's body, not just its call site.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = fd.Body
				}
			}
		}
	}

	// hasMechanism: the body contains a completion signal. Nested
	// literals count — they run (or are spawned) within the goroutine's
	// dynamic extent. Same-package callees are followed transitively.
	var hasMechanism func(body *ast.BlockStmt, visited map[*types.Func]bool) bool
	hasMechanism = func(body *ast.BlockStmt, visited map[*types.Func]bool) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				found = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = true
				}
			case *ast.RangeStmt:
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						found = true
						return false
					}
				}
				if fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && (fn.Name() == "Done" || fn.Name() == "Wait") {
						found = true
						return false
					}
					if fn.Pkg() == pass.Pkg && !visited[fn] {
						visited[fn] = true
						if b := bodies[fn]; b != nil && hasMechanism(b, visited) {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		return found
	}

	// tied: judge one go statement. A spawn that threads a context,
	// channel, or WaitGroup into an out-of-package callee is trusted —
	// the mechanism crossed the boundary with the call.
	tied := func(g *ast.GoStmt) bool {
		call := g.Call
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			return hasMechanism(lit.Body, map[*types.Func]bool{})
		}
		if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
			if b := bodies[fn]; b != nil {
				return hasMechanism(b, map[*types.Func]bool{fn: true})
			}
		}
		for _, arg := range call.Args {
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil {
				continue
			}
			if isContextType(t) {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Chan:
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				if named, ok := p.Elem().(*types.Named); ok &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
					return true
				}
			}
		}
		// Method value / bound receiver with no visible body and no
		// mechanism-bearing argument: fire-and-forget.
		return false
	}

	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !tied(g) {
				sup.reportf(pass, g.Pos(), "fire-and-forget goroutine in a library package: tie it to a WaitGroup, done/result channel, or ctx-done select so an owner can wait for it (wlvet/gospawn)")
			}
			return true
		})
	}
	return nil, nil
}
