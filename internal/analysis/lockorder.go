package wlvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"wlpm/internal/analysis/lockflow"
)

// LockOrder builds the module-wide mutex acquisition-order graph and
// flags cycles — the static shape of a deadlock. An edge A → B is
// recorded whenever B is locked (directly, or transitively through a
// statically resolved call) while A is held; edges propagate across
// packages as analysis facts, so the cycle Broker.mu → Server.mu →
// Broker.mu is caught even when each half lives in a different
// package. A cycle is reported once, at an edge discovered in the
// package under analysis. The module's sanctioned hierarchy is
// documented in INVARIANTS.md; residual intentional edges carry a
// reasoned lint:allow.
var LockOrder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition order must form a module-wide hierarchy: cycles are potential deadlocks (PR 4/7 contract)",
	Run:       runLockOrder,
	FactTypes: []analysis.Fact{new(locksFact), new(lockGraphFact)},
}

// locksFact summarizes the mutexes a function may acquire, directly or
// through the static calls it makes. Attached to exported functions and
// methods so that callers in importing packages inherit the edges.
type locksFact struct {
	Keys  []string
	Names []string
}

func (*locksFact) AFact() {}
func (f *locksFact) String() string {
	return fmt.Sprintf("acquires(%v)", f.Names)
}

// lockGraphFact is the accumulated acquisition-order graph: the
// package's own edges merged with every direct import's graph, so the
// module-wide relation reaches any package that (transitively) imports
// the packages contributing a cycle's edges.
type lockGraphFact struct {
	Edges []lockEdge
}

func (*lockGraphFact) AFact() {}
func (f *lockGraphFact) String() string {
	return fmt.Sprintf("lockgraph(%d edges)", len(f.Edges))
}

// lockEdge records "To was acquired while From was held" with the
// source position of the acquiring site, pre-rendered since positions
// do not travel across packages.
type lockEdge struct {
	From, FromName string
	To, ToName     string
	Pos            string
}

// localEdge is an edge discovered in the package under analysis, with
// a live position to report at.
type localEdge struct {
	lockEdge
	pos token.Pos
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "lockorder")

	// Pass 1: per-function direct acquisitions, static call sites with
	// their held locksets, and direct held→lock edges.
	direct := make(map[*types.Func][]lockflow.Lock) // defined funcs → locks acquired directly
	type callSite struct {
		callee *types.Func
		held   []lockflow.Lock
		pos    token.Pos
	}
	var calls []callSite
	callsOf := make(map[*types.Func][]*types.Func) // intra-package static call graph
	var edges []localEdge

	addEdge := func(from lockflow.Lock, toKey, toName string, pos token.Pos) {
		edges = append(edges, localEdge{
			lockEdge: lockEdge{
				From: from.Key, FromName: from.Name,
				To: toKey, ToName: toName,
				Pos: pass.Fset.Position(pos).String(),
			},
			pos: pos,
		})
	}

	for _, file := range pass.Files {
		if exemptPos(pass, file.Pos()) {
			continue
		}
		for _, u := range unitsOf(pass, file) {
			var fn *types.Func
			if fd, ok := u.node.(*ast.FuncDecl); ok {
				fn, _ = pass.TypesInfo.Defs[fd.Name].(*types.Func)
			}
			flow := lockflow.Analyze(pass, u.body)
			for _, site := range flow.Sites {
				call, ok := site.Node.(*ast.CallExpr)
				if !ok {
					continue
				}
				if op, ok := lockflow.MutexOp(pass, call); ok {
					if op.Kind != lockflow.OpLock && op.Kind != lockflow.OpRLock {
						continue
					}
					if fn != nil {
						direct[fn] = appendLock(direct[fn], lockflow.Lock{Key: op.Key, Name: op.Name})
					}
					for _, held := range site.Held {
						addEdge(held, op.Key, op.Name, call.Pos())
					}
					continue
				}
				callee := typeutil.StaticCallee(pass.TypesInfo, call)
				if callee == nil {
					continue
				}
				if len(site.Held) > 0 {
					calls = append(calls, callSite{callee, site.Held, call.Pos()})
				}
				if fn != nil && callee.Pkg() == pass.Pkg {
					callsOf[fn] = append(callsOf[fn], callee)
				}
			}
		}
	}

	// Pass 2: close the intra-package call graph so a function's
	// summary covers the locks its (transitive) callees acquire.
	// Cross-package callees contribute through imported facts.
	summary := make(map[*types.Func][]lockflow.Lock, len(direct))
	for fn, locks := range direct {
		summary[fn] = append([]lockflow.Lock(nil), locks...)
	}
	imported := func(callee *types.Func) []lockflow.Lock {
		var f locksFact
		if !pass.ImportObjectFact(callee, &f) {
			return nil
		}
		out := make([]lockflow.Lock, len(f.Keys))
		for i := range f.Keys {
			out[i] = lockflow.Lock{Key: f.Keys[i], Name: f.Names[i]}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range callsOf {
			for _, callee := range callees {
				for _, l := range summary[callee] {
					if withLock := appendLock(summary[fn], l); len(withLock) != len(summary[fn]) {
						summary[fn] = withLock
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: edges through calls — anything a callee may acquire is
	// acquired while the caller's locks are held.
	calleeLocks := func(callee *types.Func) []lockflow.Lock {
		if callee.Pkg() == pass.Pkg {
			return summary[callee]
		}
		return imported(callee)
	}
	for _, cs := range calls {
		for _, acquired := range calleeLocks(cs.callee) {
			for _, held := range cs.held {
				if held.Key == acquired.Key {
					continue // re-entry is its own self-edge, reported at the direct site
				}
				addEdge(held, acquired.Key, acquired.Name, cs.pos)
			}
		}
	}

	// Export per-function summaries (Encode prunes the ones invisible
	// to importers) and the merged graph.
	fns := make([]*types.Func, 0, len(summary))
	for fn := range summary {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		locks := summary[fn]
		if len(locks) == 0 {
			continue
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i].Key < locks[j].Key })
		f := &locksFact{}
		for _, l := range locks {
			f.Keys = append(f.Keys, l.Key)
			f.Names = append(f.Names, l.Name)
		}
		pass.ExportObjectFact(fn, f)
	}

	merged := make(map[[2]string]lockEdge)
	for _, imp := range pass.Pkg.Imports() {
		var gf lockGraphFact
		if !pass.ImportPackageFact(imp, &gf) {
			continue
		}
		for _, e := range gf.Edges {
			k := [2]string{e.From, e.To}
			if _, ok := merged[k]; !ok {
				merged[k] = e
			}
		}
	}
	local := make(map[[2]string]bool)
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		local[k] = true
		if _, ok := merged[k]; !ok {
			merged[k] = e.lockEdge
		}
	}
	var all []lockEdge
	for _, e := range merged {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		return all[i].To < all[j].To
	})
	pass.ExportPackageFact(&lockGraphFact{Edges: all})

	// Cycle check: report each local edge that closes a cycle in the
	// merged module-wide graph, once, at its own acquisition site.
	adj := make(map[string][]lockEdge)
	for _, e := range all {
		adj[e.From] = append(adj[e.From], e)
	}
	reported := make(map[[2]string]bool)
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if reported[k] {
			continue
		}
		if e.From == e.To {
			reported[k] = true
			sup.reportf(pass, e.pos, "%s is acquired while %s is already held: same-type nesting self-deadlocks on one instance and needs an instance order on two (wlvet/lockorder)", e.ToName, e.FromName)
			continue
		}
		if path := lockPath(adj, e.To, e.From); path != nil {
			reported[k] = true
			sup.reportf(pass, e.pos, "mutex acquisition order cycle: %s (wlvet/lockorder)", cycleString(e.lockEdge, path))
		}
	}
	return nil, nil
}

// lockPath returns the edges of a path from → to in the graph, or nil.
func lockPath(adj map[string][]lockEdge, from, to string) []lockEdge {
	type state struct {
		key  string
		path []lockEdge
	}
	seen := map[string]bool{from: true}
	queue := []state{{from, nil}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range adj[s.key] {
			path := append(append([]lockEdge(nil), s.path...), e)
			if e.To == to {
				return path
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, state{e.To, path})
			}
		}
	}
	return nil
}

// cycleString renders "A → B (here) → C (pkg/file.go:12) → A".
func cycleString(closing lockEdge, back []lockEdge) string {
	s := closing.FromName + " → " + closing.ToName + " (this edge)"
	for _, e := range back {
		s += fmt.Sprintf(" → %s (%s)", e.ToName, e.Pos)
	}
	return s
}

func appendLock(locks []lockflow.Lock, l lockflow.Lock) []lockflow.Lock {
	for _, have := range locks {
		if have.Key == l.Key {
			return locks
		}
	}
	return append(locks, l)
}
