// Package sorts implements the paper's sorting algorithms (§2.1):
//
//   - ExMS — external mergesort with replacement-selection run formation,
//     the symmetric-I/O baseline
//   - SelS — multi-pass selection sort, the write-minimal building block
//     (one write per input record, quadratic reads)
//   - SegS — segment sort: an x-fraction of the input through external
//     mergesort, the rest through selection sort (§2.1.1, Eqs. 1–4)
//   - HybS — hybrid sort: memory split into a selection region and a
//     replacement-selection region (§2.1.2, Algorithm 1)
//   - LaS — lazy sort: repeated minimum extraction with cost-driven
//     intermediate-input materialization (§2.1.3, Algorithm 2, Eq. 5)
//   - Cycle — in-memory cycle sort, the write-optimality reference
//
// Every algorithm sorts a persistent collection of fixed-size records into
// an output collection, using at most the environment's DRAM budget M for
// working state and spilling runs through the environment's persistence
// layer.
package sorts

import (
	"fmt"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// Algorithm is a persistent-memory sort operator.
type Algorithm interface {
	// Name is the short identifier used in experiments ("ExMS", "SegS(0.2)"…).
	Name() string
	// Sort reads in and appends its records to out in ascending key
	// order. out must be empty and have the same record size as in.
	Sort(env *algo.Env, in, out storage.Collection) error
}

// checkArgs validates the common preconditions of all Sort calls.
func checkArgs(env *algo.Env, in, out storage.Collection) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if in == nil || out == nil {
		return fmt.Errorf("sorts: nil collection")
	}
	if in.RecordSize() != out.RecordSize() {
		return fmt.Errorf("sorts: record size mismatch: in %d, out %d", in.RecordSize(), out.RecordSize())
	}
	if out.Len() != 0 {
		return fmt.Errorf("sorts: output collection %q not empty", out.Name())
	}
	return nil
}

// less orders records by (key, full bytes); shared total order.
func less(a, b []byte) bool { return record.Less(a, b) }

// pollEmit wraps emit with the environment's amortized cancellation
// check, so the long merge and emission loops stop mid-stream when the
// invocation's context is cancelled.
func pollEmit(env *algo.Env, emit func(rec []byte) error) func(rec []byte) error {
	poll := env.Poll()
	return func(rec []byte) error {
		if err := poll(); err != nil {
			return err
		}
		return emit(rec)
	}
}
