package sorts

import (
	"wlpm/internal/algo"
	"wlpm/internal/cost"
	"wlpm/internal/storage"
)

// LazySort is LaS (§2.1.3, Algorithm 2). Each iteration scans the current
// input and extracts the next M smallest records into the output, paying
// repeated-read penalties instead of writes. Once the accumulated rescan
// penalty would exceed the cost of writing the remaining input (Eq. 5,
// n ≥ ⌊|T|λ/M(λ+1)⌋), the iteration materializes the surviving records as
// a fresh intermediate input and the algorithm reverts to being lazy.
//
// Note on Algorithm 2 as printed: line 9 appends only heap-displaced
// records to the intermediate input Ti, which would lose records that
// never entered the heap. The accompanying text ("the algorithm
// materializes the next input") requires Ti to hold every record that
// remains unsorted after the iteration, which is what this implementation
// does.
type LazySort struct{}

// NewLazySort returns the LaS operator.
func NewLazySort() *LazySort { return &LazySort{} }

// Name implements Algorithm.
func (s *LazySort) Name() string { return "LaS" }

// Sort implements Algorithm.
func (s *LazySort) Sort(env *algo.Env, in, out storage.Collection) error {
	if err := checkArgs(env, in, out); err != nil {
		return err
	}
	recSize := in.RecordSize()
	budget := env.BudgetRecords(recSize)
	lambda := env.Lambda()

	cur := in                      // current input (in, or the latest materialized Ti)
	var curTemp storage.Collection // owned temp backing cur, nil when cur == in
	var ti storage.Collection      // this iteration's materialization target
	var bound *ranked
	poll := env.Poll()
	n := 1 // iteration number on the current input (Algorithm 2's n)
	emitted := 0

	sorted := false
	defer func() {
		if sorted {
			return
		}
		// Error exit: reclaim whichever temps are still live. Destroy is
		// idempotent, so sweeping both is safe even when ti backs cur.
		if ti != nil && ti != curTemp {
			_ = ti.Destroy()
		}
		if curTemp != nil {
			_ = curTemp.Destroy()
		}
	}()

	for emitted < in.Len() {
		materialize := n >= cost.LazySortMaterializeIteration(float64(cur.Len()), float64(budget), lambda)

		ti = nil
		var onSurvivor func(rec []byte) error
		if materialize {
			t, err := env.CreateTemp("lazyin", recSize)
			if err != nil {
				return err
			}
			ti = t
			onSurvivor = func(rec []byte) error { return ti.Append(rec) }
		}
		batch, err := selectionPass(cur, budget, bound, onSurvivor, poll)
		if err != nil {
			return err
		}
		if len(batch) == 0 && ti == nil {
			break // defensive: no progress possible
		}
		for _, r := range batch {
			if err := out.Append(r.rec); err != nil {
				return err
			}
		}
		emitted += len(batch)

		if materialize {
			if err := ti.Close(); err != nil {
				return err
			}
			if curTemp != nil {
				if err := curTemp.Destroy(); err != nil {
					return err
				}
			}
			cur, curTemp = ti, ti
			bound = nil // Ti holds exactly the unemitted records
			n = 1
			continue
		}
		if len(batch) > 0 {
			last := batch[len(batch)-1]
			bound = &ranked{append([]byte(nil), last.rec...), last.pos}
		}
		n++
	}
	if curTemp != nil {
		if err := curTemp.Destroy(); err != nil {
			return err
		}
	}
	sorted = true
	return out.Close()
}
