package sorts

import (
	"errors"
	"sort"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
)

// FinalMergePhase names the last merge pass — runs (plus any streaming
// sources) into the output collection — in the environment's phase
// recorder. It is the phase parallelFinalMerge lifts at P > 1.
const FinalMergePhase = "final-merge"

// minParallelMergeRecords is the per-worker record floor below which the
// final merge stays serial: splitting tiny merges buys no overlap but
// still pays the splitter selection and per-worker iterator buffers.
const minParallelMergeRecords = 2048

// sampledRun decorates a run collection with a DRAM key sidecar: the key
// of every appended record, in append (= sorted) order. The sidecar is
// what lets the final merge split the key domain without touching the
// device: splitter candidates are quantiles of the pooled sidecars, and
// a splitter's exact boundary within a run is a binary search. Like the
// block-offset chains of the blocked store, the sidecar is
// thin-persistence-layer metadata held in DRAM outside the modelled
// budget M (8 bytes per spilled record, and only while the run lives).
type sampledRun struct {
	storage.Collection
	keys []uint64
}

// sampleRun wraps a freshly created run collection.
func sampleRun(c storage.Collection) storage.Collection {
	return &sampledRun{Collection: c}
}

func (r *sampledRun) Append(rec []byte) error {
	r.keys = append(r.keys, record.Key(rec))
	return r.Collection.Append(rec)
}

// Unwrap exposes the underlying collection for capability probes.
func (r *sampledRun) Unwrap() storage.Collection { return r.Collection }

// parallelFinalMerge merges runs into out with an order-preserving
// key-domain split: pooled run samples yield up to P−1 splitter keys,
// each worker k-way merges its key range from every run, and the ranges
// concatenate in splitter order through a storage range-append session.
// Equal keys never straddle a splitter (range i is keys in [Kᵢ₋₁, Kᵢ),
// and ties beyond the key are resolved identically by every worker's
// merge comparator), so the concatenation is exactly the serial merge's
// output, and the session's reserved-block discipline keeps cacheline
// writes identical to serial appends. The only read overhead is the
// block straddling each (run, splitter) boundary, fetched by both
// adjacent workers; the worker count is capped so that overhead stays
// ≤10% of the merge's read volume.
//
// Per-worker scan buffers (one block per run per worker) are
// infrastructure-class DRAM outside the modelled budget, like the
// per-worker tail buffers of parallel partitioning.
//
// It reports handled=false — leaving runs untouched — when the phase
// must stay serial: P < 2, too few records, unsampled runs, or a
// backend without block reservation. When handled, runs are destroyed
// (success) or swept (error) exactly as the serial path would.
func parallelFinalMerge(env *algo.Env, runs []storage.Collection, out storage.Collection, recSize int) (handled bool, err error) {
	if len(runs) == 0 {
		return false, nil
	}
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	w := env.Workers(total / minParallelMergeRecords)
	// Boundary-straddle cap: each extra range re-reads ≤1 block per run,
	// so (w−1)·runs blocks must stay within 10% of the merge's
	// total·recSize bytes of run reads.
	bs := env.Factory.BlockSize()
	if maxW := 1 + total*recSize/(10*len(runs)*bs); w > maxW {
		w = maxW
	}
	if w < 2 {
		return false, nil
	}
	appender, ok := storage.AsRangeAppender(out)
	if !ok {
		return false, nil
	}
	sampled := make([]*sampledRun, len(runs))
	for i, r := range runs {
		sr, ok := r.(*sampledRun)
		if !ok {
			return false, nil
		}
		sampled[i] = sr
	}
	splitters := chooseSplitters(sampled, w)
	if len(splitters) == 0 {
		return false, nil // key domain too narrow to split
	}
	nRanges := len(splitters) + 1

	// cuts[i][r] is the first record index of run r belonging to range i;
	// range i of run r is [cuts[i][r], cuts[i+1][r]). Pure DRAM binary
	// searches over the key sidecars — no device reads.
	cuts := make([][]int, nRanges+1)
	cuts[0] = make([]int, len(runs))
	cuts[nRanges] = make([]int, len(runs))
	for r, run := range runs {
		cuts[nRanges][r] = run.Len()
	}
	for si, key := range splitters {
		row := make([]int, len(runs))
		for r, sr := range sampled {
			ks := sr.keys
			row[r] = sort.Search(len(ks), func(i int) bool { return ks[i] >= key })
		}
		cuts[si+1] = row
	}
	counts := make([]int, nRanges)
	for i := 0; i < nRanges; i++ {
		for r := range runs {
			counts[i] += cuts[i+1][r] - cuts[i][r]
		}
	}

	session, err := appender.AppendRanges(counts)
	if err != nil {
		if errors.Is(err, storage.ErrRangeAppendUnsupported) {
			return false, nil
		}
		destroyRuns(runs)
		return true, err
	}
	workErr := env.RunWorkers(nRanges, func(i int) error {
		writer := session.Writer(i)
		defer writer.Abort()
		iters := make([]storage.Iterator, 0, len(runs))
		for r, run := range runs {
			lo, hi := cuts[i][r], cuts[i+1][r]
			if lo < hi {
				iters = append(iters, storage.Slice(run, lo, hi).Scan())
			}
		}
		if err := mergeIters(iters, pollEmit(env, writer.Append)); err != nil {
			return err
		}
		return writer.Finish()
	})
	if workErr != nil {
		session.Rollback() //nolint:errcheck // best-effort unwind after failure
		destroyRuns(runs)
		return true, workErr
	}
	if err := session.Commit(); err != nil {
		destroyRuns(runs)
		return true, err
	}
	for _, r := range runs {
		if err := r.Destroy(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// splitterSamplesPerRange bounds the splitter-selection work: the pooled
// candidate set holds about this many keys per output range, regardless
// of run sizes. Each sidecar is already sorted (append order is run
// order), so evenly spaced per-run samples are themselves quantile
// estimates; a denser pool would only refine range balance, never
// correctness — every strictly increasing splitter set yields the same
// concatenated output.
const splitterSamplesPerRange = 32

// chooseSplitters samples every run's key sidecar proportionally and
// picks up to w−1 strictly increasing quantile keys from the pooled
// sample. Fewer splitters (down to zero, when the key domain is a single
// value) simply mean fewer ranges.
func chooseSplitters(runs []*sampledRun, w int) []uint64 {
	n := 0
	for _, r := range runs {
		n += len(r.keys)
	}
	if n == 0 {
		return nil
	}
	target := splitterSamplesPerRange * w
	pool := make([]uint64, 0, target+len(runs))
	for _, r := range runs {
		if len(r.keys) == 0 {
			continue
		}
		quota := 1 + target*len(r.keys)/n
		step := (len(r.keys) + quota - 1) / quota
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(r.keys); i += step {
			pool = append(pool, r.keys[i])
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	splitters := make([]uint64, 0, w-1)
	for i := 1; i < w; i++ {
		k := pool[i*len(pool)/w]
		if len(splitters) == 0 || k > splitters[len(splitters)-1] {
			splitters = append(splitters, k)
		}
	}
	// A splitter at or below the global minimum only produces an empty
	// leading range; harmless, so it is kept for simplicity.
	return splitters
}
