package sorts

import (
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/xheap"
)

// HybridSort is HybS (§2.1.2, Algorithm 1). The memory budget is split
// into a selection region Rs (fraction x of M, the "write intensity") and
// a replacement-selection region Rr. Rs accumulates the globally smallest
// records — written exactly once, directly to the output — while Rr runs
// ordinary two-heap replacement selection over everything Rs displaces.
// The runs Rr produces are merged and appended after Rs's records.
//
// The pass that fills Rs and Rr is order-dependent (Rs tracks the global
// minima seen so far) and stays serial; under env.Parallelism > 1 the
// merging of Rr's runs fans merge groups out to workers, and the final
// merge appending after Rs's records splits the key domain across
// workers with byte-identical output.
type HybridSort struct {
	// Intensity is x ∈ (0, 1]: the fraction of M given to the selection
	// region. Larger x means fewer writes (more records bypass run
	// formation) but shorter replacement-selection runs.
	Intensity float64
}

// NewHybridSort returns HybS with the given selection-region fraction.
func NewHybridSort(x float64) *HybridSort { return &HybridSort{Intensity: x} }

// Name implements Algorithm.
func (s *HybridSort) Name() string { return fmt.Sprintf("HybS(%.2f)", s.Intensity) }

// Sort implements Algorithm.
func (s *HybridSort) Sort(env *algo.Env, in, out storage.Collection) error {
	if err := checkArgs(env, in, out); err != nil {
		return err
	}
	if s.Intensity < 0 || s.Intensity > 1 {
		return fmt.Errorf("sorts: HybS intensity %v out of [0,1]", s.Intensity)
	}
	recSize := in.RecordSize()
	m := env.BudgetRecords(recSize)
	rsCap := int(s.Intensity * float64(m))
	if rsCap < 1 {
		rsCap = 1
	}
	rrCap := m - rsCap
	if rrCap < 1 {
		rrCap = 1
	}

	rs := xheap.New(func(a, b []byte) bool { return less(b, a) }, rsCap) // max-heap
	cur := xheap.New(less, rrCap)                                        // min-heap, current run
	next := record.NewVec(recSize, rrCap)

	var runs []storage.Collection
	sorted := false
	defer func() {
		// Error exit: sweep every run temp opened so far. Destroy is
		// idempotent, so runs already emptied or reclaimed by the merge
		// are safe to sweep again.
		if !sorted {
			destroyRuns(runs)
		}
	}()
	var run storage.Collection
	openRun := func() error {
		r, err := env.CreateTemp("hybrun", recSize)
		if err != nil {
			return err
		}
		sr := sampleRun(r)
		runs = append(runs, sr)
		run = sr
		return nil
	}

	// insertRr places rec into the replacement-selection region,
	// spilling the region's minimum to the current run when full and
	// rotating runs when the current heap is exhausted (Algorithm 1,
	// lines 6–16).
	insertRr := func(rec []byte) error {
		for {
			if cur.Len()+next.Len() < rrCap {
				cp := make([]byte, recSize)
				copy(cp, rec)
				cur.Push(cp)
				return nil
			}
			if cur.Len() > 0 {
				break
			}
			// Current run's heap exhausted: close the run and promote the
			// next-run records to a fresh current heap.
			if run != nil {
				if err := run.Close(); err != nil {
					return err
				}
			}
			items := make([][]byte, 0, next.Len())
			for i := 0; i < next.Len(); i++ {
				items = append(items, append(make([]byte, 0, recSize), next.At(i)...))
			}
			cur = xheap.Heapify(items, less)
			next.Reset()
			if err := openRun(); err != nil {
				return err
			}
		}
		if run == nil {
			if err := openRun(); err != nil {
				return err
			}
		}
		n := cur.Pop()
		if err := run.Append(n); err != nil {
			return err
		}
		if !less(rec, n) {
			cp := n[:recSize] // reuse the spilled record's buffer
			copy(cp, rec)
			cur.Push(cp)
		} else {
			next.Append(rec)
		}
		return nil
	}

	it := in.Scan()
	defer it.Close()
	poll := env.Poll()
	for {
		if err := poll(); err != nil {
			return err
		}
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rs.Len() < rsCap {
			cp := make([]byte, recSize)
			copy(cp, rec)
			rs.Push(cp)
			continue
		}
		if less(rec, rs.Peek()) {
			// rec joins the global minima; the displaced maximum moves to
			// the replacement-selection region.
			displaced := rs.ReplaceRoot(append(make([]byte, 0, recSize), rec...))
			if err := insertRr(displaced); err != nil {
				return err
			}
		} else if err := insertRr(rec); err != nil {
			return err
		}
	}

	// Rs holds the global minimum |Rs| records: sort and emit them first.
	rsSorted := record.NewVec(recSize, rs.Len())
	for _, r := range rs.Drain() { // ascending via inverted comparator? Drain pops max-first.
		rsSorted.Append(r)
	}
	rsSorted.SortByKey()
	for i := 0; i < rsSorted.Len(); i++ {
		if err := out.Append(rsSorted.At(i)); err != nil {
			return err
		}
	}

	// Flush the replacement-selection region: the current heap finishes
	// the open run; the deferred records form one final run.
	if cur.Len() > 0 {
		if run == nil {
			if err := openRun(); err != nil {
				return err
			}
		}
		for cur.Len() > 0 {
			if err := run.Append(cur.Pop()); err != nil {
				return err
			}
		}
	}
	if run != nil {
		if err := run.Close(); err != nil {
			return err
		}
	}
	if next.Len() > 0 {
		if err := openRun(); err != nil {
			return err
		}
		next.SortByKey()
		for i := 0; i < next.Len(); i++ {
			if err := run.Append(next.At(i)); err != nil {
				return err
			}
		}
		if err := run.Close(); err != nil {
			return err
		}
	}
	live := runs[:0]
	for _, r := range runs {
		if r.Len() > 0 {
			live = append(live, r)
		} else if err := r.Destroy(); err != nil {
			return err
		}
	}
	if err := mergeRuns(env, live, out, recSize); err != nil {
		return err
	}
	sorted = true
	return out.Close()
}
