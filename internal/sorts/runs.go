package sorts

import (
	"fmt"
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/xheap"
)

// formRuns writes sorted runs over in, fanning contiguous input chunks out
// to env.Parallelism workers. Each worker runs replacement selection with a
// 1/w share of the memory budget, so per-worker budgets sum to M and every
// record is still written exactly once during run formation — the serial
// write count is preserved (runs are shorter by a factor of w, which only
// matters if it pushes the run count past the merge fan-in). With
// parallelism ≤ 1 this is exactly the serial algorithm.
func formRuns(env *algo.Env, in storage.Collection, recSize int) ([]storage.Collection, error) {
	w := env.Workers(in.Len())
	if w > 1 {
		w = capRunWorkers(env, in.Len(), recSize, w)
	}
	if w <= 1 {
		it := in.Scan()
		defer it.Close()
		return formRunsReplacementSelection(env, it, recSize, env.BudgetRecords(recSize))
	}
	children := env.Split(w)
	perWorker := make([][]storage.Collection, w)
	err := env.RunWorkers(w, func(i int) error {
		lo, hi := algo.SplitRange(in.Len(), w, i)
		it := storage.Slice(in, lo, hi).Scan()
		defer it.Close()
		runs, err := formRunsReplacementSelection(children[i], it, recSize, children[i].BudgetRecords(recSize))
		if err != nil {
			return err
		}
		perWorker[i] = runs
		return nil
	})
	if err != nil {
		// A failed or cancelled worker leaves the successful workers' runs
		// orphaned: destroy them here so mid-formation aborts leak nothing.
		for _, rs := range perWorker {
			destroyRuns(rs)
		}
		return nil, err
	}
	var runs []storage.Collection
	for _, r := range perWorker {
		runs = append(runs, r...)
	}
	return runs, nil
}

// destroyRuns best-effort-destroys a batch of temporary runs on an error
// path (Destroy is idempotent; the first error has already been chosen).
func destroyRuns(runs []storage.Collection) {
	for _, r := range runs {
		if r != nil {
			r.Destroy() //nolint:errcheck // best-effort cleanup after failure
		}
	}
}

// capRunWorkers bounds the parallel run-formation fan-out by the merge
// fan-in: w workers with 1/w budget shares form runs of ≈ 2M/w records,
// multiplying the expected run count by w, and once the count crosses
// what the merge phase can absorb, every crossing costs intermediate
// merge passes — reads and writes of the whole input — that the serial
// execution does not pay. At tiny memory budgets (the paper's 1% point)
// that used to turn one merge pass into several. The worker count is
// reduced until the parallel plan's expected pass count, simulated with
// mergePass's own worker grouping (whose per-group fan-in also shrinks
// with P), matches the serial plan's.
func capRunWorkers(env *algo.Env, records, recSize, w int) int {
	budget := env.BudgetRecords(recSize)
	serialRuns := (records + 2*budget - 1) / (2 * budget)
	if serialRuns < 1 {
		serialRuns = 1
	}
	// Merge fan-in with one buffer reserved for a streaming source
	// (segment sort's selection segment), the conservative assumption.
	fanIn := env.BudgetBuffers() - 2
	if fanIn < 2 {
		fanIn = 2
	}
	serialPasses := mergePassesFor(serialRuns, fanIn)
	for w > 1 && mergePassesFor(serialRuns*w, fanIn) > serialPasses {
		w--
	}
	return w
}

// mergePassesFor counts the merge passes beyond the final one needed to
// bring a run count within the serial merge fan-in.
func mergePassesFor(runs, fanIn int) int {
	passes := 0
	for runs > fanIn {
		runs = (runs + fanIn - 1) / fanIn
		passes++
	}
	return passes
}

// formRunsReplacementSelection consumes it and writes sorted runs using
// the classic two-heap replacement-selection scheme with budget records of
// working memory. Runs average twice the memory size on random input,
// which is the 2M assumption of the segment-sort cost model (Eq. 1).
// Returned runs are closed. On error (including cancellation) every run
// created so far is destroyed before returning.
func formRunsReplacementSelection(env *algo.Env, it storage.Iterator, recSize, budget int) ([]storage.Collection, error) {
	var runs []storage.Collection
	done := false
	defer func() {
		if !done {
			destroyRuns(runs)
		}
	}()
	if budget < 1 {
		budget = 1
	}
	poll := env.Poll()
	cur := xheap.New(less, budget) // current run's heap
	var next *record.Vec           // records destined for the next run
	next = record.NewVec(recSize, budget)

	newRun := func() (storage.Collection, error) {
		r, err := env.CreateTemp("run", recSize)
		if err != nil {
			return nil, err
		}
		return sampleRun(r), nil
	}
	run, err := newRun()
	if err != nil {
		return nil, err
	}
	runs = append(runs, run)

	closeRun := func() error {
		if err := run.Close(); err != nil {
			return err
		}
		// Rebuild the current heap from the deferred records and open a
		// fresh run.
		items := make([][]byte, 0, next.Len())
		for i := 0; i < next.Len(); i++ {
			cp := make([]byte, recSize)
			copy(cp, next.At(i))
			items = append(items, cp)
		}
		cur = xheap.Heapify(items, less)
		next.Reset()
		r, err := newRun()
		if err != nil {
			return err
		}
		runs = append(runs, r)
		run = r
		return nil
	}

	for {
		if err := poll(); err != nil {
			return nil, err
		}
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cur.Len()+next.Len() < budget {
			cp := make([]byte, recSize)
			copy(cp, rec)
			cur.Push(cp)
			continue
		}
		// Memory full: emit the current minimum and place the newcomer.
		min := cur.Pop()
		if err := run.Append(min); err != nil {
			return nil, err
		}
		if !less(rec, min) {
			cp := min[:recSize] // reuse the popped record's storage
			copy(cp, rec)
			cur.Push(cp)
		} else {
			next.Append(rec)
		}
		if cur.Len() == 0 {
			if err := closeRun(); err != nil {
				return nil, err
			}
		}
	}
	// Drain: current heap finishes the current run, the deferred records
	// form one final run.
	for cur.Len() > 0 {
		if err := run.Append(cur.Pop()); err != nil {
			return nil, err
		}
	}
	if err := run.Close(); err != nil {
		return nil, err
	}
	if next.Len() > 0 {
		r, err := newRun()
		if err != nil {
			return nil, err
		}
		next.SortByKey()
		for i := 0; i < next.Len(); i++ {
			if err := r.Append(next.At(i)); err != nil {
				return nil, err
			}
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	// Drop trailing empty runs (possible on empty input).
	out := runs[:0]
	for _, r := range runs {
		if r.Len() > 0 {
			out = append(out, r)
		} else if err := r.Destroy(); err != nil {
			return nil, err
		}
	}
	done = true
	return out, nil
}

// mergeRuns merges sorted runs into out with fan-in bounded by the memory
// budget (one block buffer per open run plus one for the output).
// Intermediate merge passes create and destroy temporary runs; input runs
// are destroyed as they are consumed.
func mergeRuns(env *algo.Env, runs []storage.Collection, out storage.Collection, recSize int) error {
	return mergeRunsWith(env, runs, nil, out, recSize)
}

// mergeRunsWith additionally merges streaming sorted sources into the
// final pass. Streams participate only in the last merge — they are the
// write-avoidance mechanism of segment sort's selection segment, whose
// records must be written exactly once, at their final location in out.
// The final pass — the last generation of runs plus the streams into out
// — is phase-bracketed as FinalMergePhase. With no streams it fans out
// across workers through parallelFinalMerge (order-preserving key-domain
// split, byte-identical output and cacheline writes); streaming sources
// are single-cursor by construction, so any stream keeps the final pass
// serial.
func mergeRunsWith(env *algo.Env, runs []storage.Collection, streams []storage.Iterator, out storage.Collection, recSize int) error {
	fanIn := env.BudgetBuffers() - 1 - len(streams)
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > fanIn {
		var err error
		// A failed pass destroys both generations inside mergePass.
		if runs, err = mergePass(env, runs, recSize, len(streams)); err != nil {
			return err
		}
	}
	return env.TimePhase(FinalMergePhase, func() error {
		if len(streams) == 0 {
			if handled, err := parallelFinalMerge(env, runs, out, recSize); handled {
				return err
			}
		}
		iters := make([]storage.Iterator, 0, len(runs)+len(streams))
		for _, r := range runs {
			iters = append(iters, r.Scan())
		}
		iters = append(iters, streams...)
		if err := mergeIters(iters, pollEmit(env, out.Append)); err != nil {
			destroyRuns(runs)
			return err
		}
		for _, r := range runs {
			if err := r.Destroy(); err != nil {
				return err
			}
		}
		return nil
	})
}

// mergePass merges one generation of runs into the next, fanning
// independent merge groups out to env.Parallelism workers. The per-group
// fan-in shrinks with the worker count so the total number of open block
// buffers stays within the memory budget (w groups of g runs plus one
// output buffer each: w·(g+1) ≤ M/B − reserved, where reserved keeps the
// buffers set aside for the final merge's streaming sources — at w = 1
// this reproduces the serial grouping exactly).
func mergePass(env *algo.Env, runs []storage.Collection, recSize, reserved int) ([]storage.Collection, error) {
	w := env.Workers((len(runs) + 1) / 2)
	// Run-count-aware cap, the merge-phase twin of capRunWorkers: w
	// concurrent merge groups share the buffer budget, so the per-group
	// fan-in shrinks with w and the pass leaves more runs behind. Never
	// let that cost a later pass the serial grouping avoids.
	fullFan := env.BudgetBuffers() - reserved - 1
	if fullFan < 2 {
		fullFan = 2
	}
	serialNext := (len(runs) + fullFan - 1) / fullFan
	for w > 1 {
		fan := (env.BudgetBuffers()-reserved)/w - 1
		if fan < 2 {
			fan = 2
		}
		next := (len(runs) + fan - 1) / fan
		if mergePassesFor(next, fullFan) <= mergePassesFor(serialNext, fullFan) {
			break
		}
		w--
	}
	var groupFan, nGroups int
	for {
		groupFan = (env.BudgetBuffers()-reserved)/w - 1
		if groupFan < 2 {
			groupFan = 2
		}
		nGroups = (len(runs) + groupFan - 1) / groupFan
		if w <= nGroups {
			break
		}
		// Fewer groups than workers: surviving workers may take the
		// freed-up buffers as extra fan-in.
		w = nGroups
	}
	var children []*algo.Env
	if w > 1 {
		children = env.Split(w)
	} else {
		children = []*algo.Env{env}
	}
	nextGen := make([]storage.Collection, nGroups)
	workErr := env.RunWorkers(w, func(wi int) error {
		child := children[wi]
		for g := wi; g < nGroups; g += w {
			lo := g * groupFan
			hi := lo + groupFan
			if hi > len(runs) {
				hi = len(runs)
			}
			group := runs[lo:hi]
			if len(group) == 1 {
				nextGen[g] = group[0]
				continue
			}
			mergedTemp, err := child.CreateTemp("merge", recSize)
			if err != nil {
				return err
			}
			merged := sampleRun(mergedTemp)
			if err := mergeInto(child, group, merged); err != nil {
				merged.Destroy() //nolint:errcheck // best-effort cleanup after failure
				return err
			}
			if err := merged.Close(); err != nil {
				merged.Destroy() //nolint:errcheck // best-effort cleanup after failure
				return err
			}
			for _, r := range group {
				if err := r.Destroy(); err != nil {
					return err
				}
			}
			nextGen[g] = merged
		}
		return nil
	})
	if workErr != nil {
		// Destroy both generations: already-merged groups, the failed
		// worker's leftovers and the untouched input runs (Destroy is
		// idempotent for the runs that were consumed before the error).
		destroyRuns(nextGen)
		destroyRuns(runs)
		return nil, workErr
	}
	return nextGen, nil
}

// mergeInto k-way merges the sorted runs into a collection, polling
// env's cancellation between emissions.
func mergeInto(env *algo.Env, runs []storage.Collection, out storage.Collection) error {
	iters := make([]storage.Iterator, len(runs))
	for i, r := range runs {
		iters[i] = r.Scan()
	}
	return mergeIters(iters, pollEmit(env, out.Append))
}

// mergeIters k-way merges sorted iterators into emit, closing them.
func mergeIters(iters []storage.Iterator, emit func(rec []byte) error) error {
	for _, it := range iters {
		defer it.Close()
	}
	if len(iters) == 0 {
		return nil
	}
	if len(iters) == 1 {
		for {
			rec, err := iters[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
	type head struct {
		rec []byte
		src int
	}
	h := xheap.New(func(a, b head) bool { return less(a.rec, b.rec) }, len(iters))
	advance := func(src int) error {
		rec, err := iters[src].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		h.Push(head{cp, src})
		return nil
	}
	for i := range iters {
		if err := advance(i); err != nil {
			return err
		}
	}
	for h.Len() > 0 {
		top := h.Pop()
		if err := emit(top.rec); err != nil {
			return err
		}
		if err := advance(top.src); err != nil {
			return err
		}
	}
	return nil
}

// verifySortedInvariant is a debugging helper used by tests.
//
//lint:allow wlvet/ctxpoll test-only invariant check over small fixtures, never run on a live query path
func verifySortedInvariant(c storage.Collection) error {
	it := c.Scan()
	defer it.Close()
	prev := make([]byte, 0, c.RecordSize())
	first := true
	idx := 0
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !first && less(rec, prev) {
			return fmt.Errorf("sorts: output %q out of order at record %d", c.Name(), idx)
		}
		prev = append(prev[:0], rec...)
		first = false
		idx++
	}
}
