package sorts

import (
	"wlpm/internal/algo"
	"wlpm/internal/storage"
)

// ExternalMergeSort is ExMS: the paper's symmetric-I/O baseline. Run
// formation uses replacement selection (runs ≈ 2M); runs are merged in
// passes bounded by the memory budget's fan-in. Under env.Parallelism > 1
// run formation fans contiguous input chunks out to workers with per-worker
// budgets summing to M, intermediate merge passes merge groups
// concurrently, and the final merge into out splits the key domain across
// workers on splitters sampled from the runs (order-preserving, with
// output bytes and cacheline writes identical to the serial merge).
type ExternalMergeSort struct{}

// NewExternalMergeSort returns the ExMS operator.
func NewExternalMergeSort() *ExternalMergeSort { return &ExternalMergeSort{} }

// Name implements Algorithm.
func (s *ExternalMergeSort) Name() string { return "ExMS" }

// Sort implements Algorithm.
func (s *ExternalMergeSort) Sort(env *algo.Env, in, out storage.Collection) error {
	if err := checkArgs(env, in, out); err != nil {
		return err
	}
	runs, err := formRuns(env, in, in.RecordSize())
	if err != nil {
		return err
	}
	if err := mergeRuns(env, runs, out, in.RecordSize()); err != nil {
		return err
	}
	return out.Close()
}
