package sorts

import (
	"io"

	"wlpm/internal/algo"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/xheap"
)

// ranked pairs a record with its position in the input so that duplicate
// keys are totally ordered by (record, position): the multi-pass selection
// scans rely on a strict progression through this order (§2.1.1's
// "position must be greater than the position of the maximum element of
// the previous run").
type ranked struct {
	rec []byte
	pos int
}

func rankedLess(a, b ranked) bool {
	if ka, kb := record.Key(a.rec), record.Key(b.rec); ka != kb {
		return ka < kb
	}
	if sa, sb := string(a.rec), string(b.rec); sa != sb {
		return sa < sb
	}
	return a.pos < b.pos
}

func rankedGreater(a, b ranked) bool { return rankedLess(b, a) }

// selectionPass scans src once and collects into a bounded max-heap the
// budget smallest elements strictly greater (in ranked order) than bound.
// It returns them in ascending order. A nil bound means no lower bound.
// onSurvivor, when non-nil, receives every element that is beyond the
// selected set (still unsorted business for later passes); this is the
// hook lazy sort uses to materialize its intermediate inputs. poll, when
// non-nil, is consulted per record so a cancelled invocation stops
// mid-pass.
func selectionPass(src storage.Collection, budget int, bound *ranked, onSurvivor func(rec []byte) error, poll func() error) ([]ranked, error) {
	h := xheap.New(rankedGreater, budget) // max-heap of the current minima
	it := src.Scan()
	defer it.Close()
	pos := 0
	for {
		if poll != nil {
			if err := poll(); err != nil {
				return nil, err
			}
		}
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cand := ranked{rec, pos}
		pos++
		if bound != nil && !rankedLess(*bound, cand) {
			// Already emitted in a previous pass.
			continue
		}
		if h.Len() < budget {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			h.Push(ranked{cp, cand.pos})
			continue
		}
		if rankedLess(cand, h.Peek()) {
			// Displace the current maximum; the displaced element remains
			// unsorted input for later passes.
			displaced := h.ReplaceRoot(ranked{append(make([]byte, 0, len(rec)), rec...), cand.pos})
			if onSurvivor != nil {
				if err := onSurvivor(displaced.rec); err != nil {
					return nil, err
				}
			}
		} else if onSurvivor != nil {
			if err := onSurvivor(rec); err != nil {
				return nil, err
			}
		}
	}
	// Drain the max-heap and reverse into ascending order.
	desc := h.Drain()
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	return desc, nil
}

// selectionStream is a sorted, lazily produced view of a collection: each
// refill runs one bounded selection pass, so records are *read* once per
// pass but never written until the consumer (the final merge) places them
// at their final location. This is how segment sort's selection segment
// achieves one write per record (§2.1.1).
type selectionStream struct {
	src     storage.Collection
	budget  int
	poll    func() error
	bound   *ranked
	batch   []ranked
	pos     int
	emitted int
	done    bool
}

// newSelectionStream builds a stream over src extracting budget records
// per pass, polling the environment's cancellation during each pass.
func newSelectionStream(env *algo.Env, src storage.Collection, budget int) *selectionStream {
	if budget < 1 {
		budget = 1
	}
	return &selectionStream{src: src, budget: budget, poll: env.Poll()}
}

// Next implements storage.Iterator.
func (s *selectionStream) Next() ([]byte, error) {
	for s.pos >= len(s.batch) {
		if s.done || s.emitted >= s.src.Len() {
			s.done = true
			return nil, io.EOF
		}
		batch, err := selectionPass(s.src, s.budget, s.bound, nil, s.poll)
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			s.done = true
			return nil, io.EOF
		}
		last := batch[len(batch)-1]
		s.bound = &ranked{append([]byte(nil), last.rec...), last.pos}
		s.batch = batch
		s.pos = 0
		s.emitted += len(batch)
	}
	rec := s.batch[s.pos].rec
	s.pos++
	return rec, nil
}

// Close implements storage.Iterator.
func (s *selectionStream) Close() error {
	s.done = true
	s.batch = nil
	return nil
}

// SelectionSort is SelS: the write-minimal multi-pass generalization of
// selection sort (§2.1.1). Each pass scans the whole input and extracts
// the next M smallest records, so the input is written exactly once (as
// output) at the price of |T|/M read passes.
type SelectionSort struct{}

// NewSelectionSort returns the SelS operator.
func NewSelectionSort() *SelectionSort { return &SelectionSort{} }

// Name implements Algorithm.
func (s *SelectionSort) Name() string { return "SelS" }

// Sort implements Algorithm.
func (s *SelectionSort) Sort(env *algo.Env, in, out storage.Collection) error {
	if err := checkArgs(env, in, out); err != nil {
		return err
	}
	if err := selectionSortInto(env, in, out); err != nil {
		return err
	}
	return out.Close()
}

// selectionSortInto appends the fully sorted contents of in to dst using
// repeated bounded selection passes. Shared by SelS and segment sort's
// write-limited segment.
func selectionSortInto(env *algo.Env, in storage.Collection, dst storage.Collection) error {
	budget := env.BudgetRecords(in.RecordSize())
	poll := env.Poll()
	var bound *ranked
	emitted := 0
	for emitted < in.Len() {
		batch, err := selectionPass(in, budget, bound, nil, poll)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			break
		}
		for _, r := range batch {
			if err := dst.Append(r.rec); err != nil {
				return err
			}
		}
		last := batch[len(batch)-1]
		bound = &ranked{append([]byte(nil), last.rec...), last.pos}
		emitted += len(batch)
	}
	return nil
}
