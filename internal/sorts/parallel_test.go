package sorts

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"wlpm/internal/algo"
	"wlpm/internal/pmem"
	"wlpm/internal/record"
	"wlpm/internal/storage"
	"wlpm/internal/storage/all"
)

// parallelSortAlgorithms are the operators whose execution plan changes
// under env.Parallelism > 1.
func parallelSortAlgorithms() []Algorithm {
	return []Algorithm{
		NewExternalMergeSort(),
		NewSegmentSort(0.3),
		NewSegmentSort(0.8),
		NewHybridSort(0.3),
	}
}

// sortWith runs a on a fresh device at the given parallelism and returns
// the output records plus the device I/O stats of the sort alone.
func sortWith(t *testing.T, a Algorithm, n, budgetRecords, parallelism int) ([][]byte, pmem.Stats) {
	t.Helper()
	env := newEnv(t, "blocked", budgetRecords)
	env.Parallelism = parallelism
	in := loadInput(t, env, n, 7)
	out, err := env.Factory.Create("out", record.Size)
	if err != nil {
		t.Fatal(err)
	}
	env.Factory.Device().ResetStats()
	if err := a.Sort(env, in, out); err != nil {
		t.Fatalf("%s (P=%d): %v", a.Name(), parallelism, err)
	}
	st := env.Factory.Device().Stats()
	recs, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	return recs, st
}

// TestParallelSortDeterminism asserts the paper-preserving property of the
// parallel plans: P=4 output equals P=1 output record-for-record.
func TestParallelSortDeterminism(t *testing.T) {
	const n, budget = 20_000, 1200
	for _, a := range parallelSortAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			serial, _ := sortWith(t, a, n, budget, 1)
			parallel, _ := sortWith(t, a, n, budget, 4)
			if len(serial) != len(parallel) {
				t.Fatalf("P=4 emitted %d records, P=1 emitted %d", len(parallel), len(serial))
			}
			for i := range serial {
				if !bytes.Equal(serial[i], parallel[i]) {
					t.Fatalf("record %d differs: P=1 key %d, P=4 key %d",
						i, record.Key(serial[i]), record.Key(parallel[i]))
				}
			}
		})
	}
}

// TestParallelSortIOInvariance asserts the write-limited invariant: the
// cacheline read/write counts under P=4 stay within 5% of the serial
// counts (the paper's cost model must keep holding under parallelism).
func TestParallelSortIOInvariance(t *testing.T) {
	const n, budget = 20_000, 1200
	for _, a := range parallelSortAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			_, serial := sortWith(t, a, n, budget, 1)
			_, parallel := sortWith(t, a, n, budget, 4)
			assertWithin(t, "writes", serial.Writes, parallel.Writes, 0.05)
			assertWithin(t, "reads", serial.Reads, parallel.Reads, 0.05)
		})
	}
}

func assertWithin(t *testing.T, what string, serial, parallel uint64, tol float64) {
	t.Helper()
	if serial == 0 {
		if parallel != 0 {
			t.Errorf("%s: serial 0, parallel %d", what, parallel)
		}
		return
	}
	ratio := float64(parallel)/float64(serial) - 1
	if ratio < -tol || ratio > tol {
		t.Errorf("%s drifted %.2f%% under parallelism: serial %d, parallel %d",
			what, ratio*100, serial, parallel)
	}
}

// TestParallelRunFormationCappedByFanIn is the regression test for the
// run-count-aware worker cap: at a tiny (1%) memory budget, parallel run
// formation used to multiply the run count past the merge fan-in and pay
// an extra merge pass — a full read+write of the input — that the serial
// plan did not. With the cap, the high-P write count stays at the serial
// level.
func TestParallelRunFormationCappedByFanIn(t *testing.T) {
	const n = 20_000
	const budget = n / 100 // the 1% memory point: 200 records, ~15 buffers
	for _, a := range []Algorithm{NewExternalMergeSort(), NewSegmentSort(0.8)} {
		t.Run(a.Name(), func(t *testing.T) {
			serialOut, serial := sortWith(t, a, n, budget, 1)
			parallelOut, parallel := sortWith(t, a, n, budget, 8)
			assertWithin(t, "writes", serial.Writes, parallel.Writes, 0.05)
			if len(serialOut) != len(parallelOut) {
				t.Fatalf("P=8 emitted %d records, P=1 emitted %d", len(parallelOut), len(serialOut))
			}
			for i := range serialOut {
				if !bytes.Equal(serialOut[i], parallelOut[i]) {
					t.Fatalf("record %d differs between P=1 and P=8", i)
				}
			}
		})
	}
}

// TestCapRunWorkersNeverBlocksAmplePlans: with room in the merge fan-in
// the cap must leave the requested parallelism alone.
func TestCapRunWorkersNeverBlocksAmplePlans(t *testing.T) {
	env := newEnv(t, "blocked", 4000) // 4000 records ≈ 312 buffers of fan-in
	env.Parallelism = 8
	if got := capRunWorkers(env, 20_000, record.Size, 8); got != 8 {
		t.Errorf("ample fan-in capped workers to %d, want 8", got)
	}
	// And at an absurdly tiny budget it degrades gracefully to ≥ 1.
	tiny := newEnv(t, "blocked", 4)
	tiny.Parallelism = 8
	if got := capRunWorkers(tiny, 20_000, record.Size, 8); got < 1 {
		t.Errorf("cap returned %d workers", got)
	}
}

// TestConcurrentSortsSharedDevice runs several sorts at once on one device
// and factory — the situation the storage-catalog and allocator locking
// must survive (run with -race).
func TestConcurrentSortsSharedDevice(t *testing.T) {
	dev := pmem.MustOpen(pmem.Config{Capacity: 256 << 20})
	fac, err := all.New("blocked", dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n, budget = 8_000, 300

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env := algo.NewParallelEnv(fac, int64(budget*record.Size), 2)
			in, err := env.CreateTemp("cin", record.Size)
			if err != nil {
				errCh <- err
				return
			}
			if err := record.Generate(n, uint64(g), in.Append); err != nil {
				errCh <- err
				return
			}
			if err := in.Close(); err != nil {
				errCh <- err
				return
			}
			out, err := env.CreateTemp("cout", record.Size)
			if err != nil {
				errCh <- err
				return
			}
			if err := NewSegmentSort(0.5).Sort(env, in, out); err != nil {
				errCh <- err
				return
			}
			if out.Len() != n {
				errCh <- fmt.Errorf("concurrent sort output has %d records, want %d", out.Len(), n)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
